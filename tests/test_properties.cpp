// Cross-cutting property tests: metric invariance (L∞ vs L2), weighted
// inputs through every pipeline, failure injection for the sketches, and
// the exact-solver path for the (1+ε) end-to-end guarantee.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/cost.hpp"
#include "core/mbc.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
#include "mpc/partition.hpp"
#include "mpc/two_round.hpp"
#include "sketch/sparse_recovery.hpp"
#include "stream/insertion_only.hpp"
#include "test_support.hpp"
#include "workload/streams.hpp"

namespace kc {
namespace {

class NormSweep : public ::testing::TestWithParam<Norm> {};

TEST_P(NormSweep, MbcGuaranteesHoldInEveryNorm) {
  const Metric metric{GetParam()};
  PlantedConfig cfg;
  cfg.n = 600;
  cfg.k = 3;
  cfg.z = 8;
  cfg.dim = 2;
  cfg.seed = 303;
  cfg.norm = GetParam();
  const auto inst = make_planted(cfg);
  const MiniBallCovering mbc =
      mbc_construct(inst.points, 3, 8, 0.5, metric);
  EXPECT_TRUE(check_mbc_structure(inst.points, mbc));
  EXPECT_LE(max_assignment_dist(inst.points, mbc, metric),
            0.5 * inst.opt_hi + 1e-9);
}

TEST_P(NormSweep, StreamingHoldsInEveryNorm) {
  const Metric metric{GetParam()};
  PlantedConfig cfg;
  cfg.n = 900;
  cfg.k = 2;
  cfg.z = 6;
  cfg.dim = 1;
  cfg.seed = 307;
  cfg.norm = GetParam();
  const auto inst = make_planted(cfg);
  stream::InsertionOnlyStream s(2, 6, 1.0, 1, metric);
  for (const auto& wp : inst.points) s.insert(wp.p);
  EXPECT_LE(s.r(), inst.opt_hi + 1e-9);
  EXPECT_LE(s.coreset().size(), s.threshold());
}

TEST_P(NormSweep, TwoRoundHoldsInEveryNorm) {
  const Metric metric{GetParam()};
  PlantedConfig cfg;
  cfg.n = 800;
  cfg.k = 2;
  cfg.z = 6;
  cfg.dim = 2;
  cfg.seed = 311;
  cfg.norm = GetParam();
  const auto inst = make_planted(cfg);
  const auto parts = mpc::partition_points(
      inst.points, 4, mpc::PartitionKind::EvenSorted, 0);
  mpc::TwoRoundOptions opt;
  opt.eps = 0.5;
  const auto res = mpc::two_round_coreset(parts, 2, 6, metric, {}, opt);
  EXPECT_EQ(total_weight(res.coreset),
            static_cast<std::int64_t>(inst.points.size()));
  EXPECT_LE(res.sum_outlier_guesses, 12);
  const double r =
      radius_with_outliers(res.coreset, inst.planted_centers, 6, metric);
  EXPECT_LE(r, (1.0 + res.eps_effective) * inst.opt_hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllNorms, NormSweep,
                         ::testing::Values(Norm::L2, Norm::Linf, Norm::L1),
                         [](const auto& info) {
                           switch (info.param) {
                             case Norm::L2: return "L2";
                             case Norm::Linf: return "Linf";
                             case Norm::L1: return "L1";
                             default: return "other";
                           }
                         });

TEST(WeightedStream, ArrivalWeightsRespectBudget) {
  const Metric metric{Norm::L2};
  stream::InsertionOnlyStream s(1, 3, 1.0, 1, metric);
  // Heavy point far away: weight 4 > z = 3, so it can never be an outlier.
  s.insert_weighted(Point{0.0}, 1);
  s.insert_weighted(Point{100.0}, 4);
  for (double x : {1.0, 2.0, 3.0, 0.5, 1.5, 2.5}) s.insert(Point{x});
  EXPECT_EQ(total_weight(s.coreset()), 1 + 4 + 6);
  // The solver must keep the heavy point covered.
  const Solution sol = solve_kcenter_outliers(s.coreset(), 1, 3, metric);
  const double d_heavy = metric.dist(sol.centers.front(), Point{100.0});
  const double d_near = metric.dist(sol.centers.front(), Point{1.5});
  EXPECT_TRUE(d_heavy <= sol.radius + 1e-9 || d_near > sol.radius + 1e-9)
      << "solution must cover the weight-4 point or pay for the cluster";
}

TEST(WeightedMbc, HeavyPointsStayRepresentativeExact) {
  const Metric metric{Norm::L2};
  WeightedSet pts;
  pts.push_back({Point{0.0}, 10});
  pts.push_back({Point{0.1}, 1});
  pts.push_back({Point{50.0}, 3});
  const MiniBallCovering mbc = mbc_with_radius(pts, 0.5, metric);
  ASSERT_EQ(mbc.reps.size(), 2u);
  EXPECT_EQ(mbc.reps[0].w, 11);
  EXPECT_EQ(mbc.reps[1].w, 3);
}

TEST(ExactSolver, MatchesBruteForceOnSmallCoreset) {
  const Metric metric{Norm::L2};
  const auto inst = testing::tiny_planted(2, 2, 1, 313);
  WeightedSet small(inst.points.begin(), inst.points.begin() + 12);
  const Solution exact = solve_kcenter_outliers_exact(small, 2, 2, metric);
  const Solution greedy = solve_kcenter_outliers(small, 2, 2, metric);
  EXPECT_LE(exact.radius, greedy.radius + 1e-9);
}

TEST(ExactSolver, FallsBackGracefullyOnLargeInput) {
  const Metric metric{Norm::L2};
  const auto inst = testing::tiny_planted(3, 4, 2, 317);
  // Tiny budget forces the greedy fallback.
  const Solution sol =
      solve_kcenter_outliers_exact(inst.points, 3, 4, metric, /*budget=*/10);
  EXPECT_GT(sol.centers.size(), 0u);
  EXPECT_GE(sol.radius, 0.0);
}

TEST(ExactSolver, OnCoresetGivesOnePlusEpsPath) {
  // The paper's (1+ε) path: exact solve on the coreset, evaluated on P,
  // must be within (1+O(ε)) of the exact solve on P itself.
  const Metric metric{Norm::L2};
  PlantedConfig cfg;
  cfg.n = 60;
  cfg.k = 2;
  cfg.z = 2;
  cfg.dim = 1;
  cfg.seed = 331;
  const auto inst = make_planted(cfg);
  const double eps = 0.25;
  const MiniBallCovering mbc =
      mbc_construct(inst.points, 2, 2, eps, metric);
  const Solution via = solve_kcenter_outliers_exact(mbc.reps, 2, 2, metric);
  const double on_full =
      radius_with_outliers(inst.points, via.centers, 2, metric);
  const Solution direct =
      solve_kcenter_outliers_exact(inst.points, 2, 2, metric);
  EXPECT_LE(on_full, (1.0 + 3.0 * eps) * direct.radius + 1e-9);
}

TEST(Classify, LabelsMatchCostModel) {
  const Metric metric{Norm::L2};
  PlantedConfig cfg;
  cfg.n = 400;
  cfg.k = 3;
  cfg.z = 7;
  cfg.dim = 2;
  cfg.seed = 401;
  const auto inst = make_planted(cfg);
  const Solution sol = evaluate(inst.points, inst.planted_centers, 7, metric);
  const Labeling lab = classify(inst.points, sol, metric);
  ASSERT_EQ(lab.labels.size(), inst.points.size());
  // Outlier weight must not exceed z (sol.radius came from the evaluator).
  EXPECT_LE(lab.outlier_weight, 7);
  // Every labelled point is within the radius of its assigned center; every
  // planted outlier is labelled −1.
  for (std::size_t i = 0; i < inst.points.size(); ++i) {
    if (lab.labels[i] >= 0) {
      EXPECT_LE(metric.dist(inst.points[i].p,
                            sol.centers[static_cast<std::size_t>(lab.labels[i])]),
                sol.radius * (1 + 1e-9));
    }
  }
  std::size_t planted_outliers_flagged = 0;
  for (auto idx : inst.outlier_indices)
    if (lab.labels[idx] == -1) ++planted_outliers_flagged;
  EXPECT_EQ(planted_outliers_flagged, inst.outlier_indices.size());
}

TEST(Classify, NoOutliersWhenRadiusCoversAll) {
  const Metric metric{Norm::L2};
  WeightedSet pts;
  for (double x : {0.0, 1.0, 2.0}) pts.push_back({Point{x}, 1});
  Solution sol;
  sol.centers = {Point{1.0}};
  sol.radius = 5.0;
  const Labeling lab = classify(pts, sol, metric);
  EXPECT_EQ(lab.outlier_weight, 0);
  for (int l : lab.labels) EXPECT_EQ(l, 0);
}

TEST(FailureInjection, SparseRecoveryNeverFabricatesKeys) {
  // Feed far more keys than capacity; whatever decode returns must be a
  // subset of the true support with true counts.
  sketch::SparseRecovery sk(8, 99);
  std::map<std::uint64_t, std::int64_t> truth;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng() % 1000;
    truth[key] += 1;
    sk.update(key, 1);
  }
  const auto dec = sk.decode();
  EXPECT_FALSE(dec.complete);
  for (const auto& item : dec.items) {
    auto it = truth.find(item.key);
    ASSERT_NE(it, truth.end()) << "fabricated key " << item.key;
    EXPECT_EQ(item.count, it->second);
  }
}

TEST(FailureInjection, StreamSurvivesPathologicalOrder) {
  // Geometric distances (worst case for doubling): 1, 2, 4, 8, …
  const Metric metric{Norm::L2};
  stream::InsertionOnlyStream s(2, 2, 1.0, 1, metric);
  double x = 1.0;
  for (int i = 0; i < 40; ++i) {
    s.insert(Point{x});
    x *= 2.0;
    ASSERT_LE(s.coreset().size(), s.threshold());
  }
  EXPECT_EQ(total_weight(s.coreset()), 40);
}

TEST(FailureInjection, DuplicateHeavyStreamNeverDividesByZero) {
  const Metric metric{Norm::L2};
  stream::InsertionOnlyStream s(1, 0, 0.5, 1, metric);
  for (int i = 0; i < 100; ++i) s.insert(Point{7.0});
  // k+z+1 = 2 distinct points never reached: r stays 0, no crash.
  EXPECT_DOUBLE_EQ(s.r(), 0.0);
  EXPECT_EQ(s.coreset().size(), 1u);
}

}  // namespace
}  // namespace kc
