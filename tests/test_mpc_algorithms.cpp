// Tests of the MPC coreset algorithms (Algorithm 2, Algorithm 6,
// Algorithm 7) and the baselines, against planted-optimum instances.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost.hpp"
#include "core/solver.hpp"
#include "mpc/ceccarello.hpp"
#include "mpc/guha.hpp"
#include "mpc/multi_round.hpp"
#include "mpc/one_round.hpp"
#include "mpc/partition.hpp"
#include "mpc/two_round.hpp"
#include "test_support.hpp"

namespace kc::mpc {
namespace {

const Metric kL2{Norm::L2};

PlantedInstance medium_planted(std::uint64_t seed, std::size_t n = 1200,
                               int k = 3, std::int64_t z = 12) {
  PlantedConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.z = z;
  cfg.dim = 2;
  cfg.seed = seed;
  return make_planted(cfg);
}

// Shared validation: the produced coreset must preserve total weight, stay
// within the size regime, and the planted centers must cover it within
// (1+ε')·opt_hi with outlier budget z.
void validate_coreset(const PlantedInstance& inst, const WeightedSet& coreset,
                      double eps_eff, std::int64_t z) {
  EXPECT_EQ(total_weight(coreset), total_weight(inst.points));
  ASSERT_FALSE(coreset.empty());
  const double r =
      radius_with_outliers(coreset, inst.planted_centers, z, kL2);
  EXPECT_LE(r, (1.0 + eps_eff) * inst.opt_hi + 1e-9);
}

TEST(TwoRound, AdversarialPartitionValid) {
  const auto inst = medium_planted(3);
  const auto parts =
      partition_points(inst.points, 8, PartitionKind::EvenSorted, 0);
  TwoRoundOptions opt;
  opt.eps = 0.5;
  const auto res = two_round_coreset(parts, 3, 12, kL2, {}, opt);

  EXPECT_EQ(res.stats.rounds, 2);
  validate_coreset(inst, res.coreset, res.eps_effective, 12);
  // The guessing mechanism must bound the total outlier slots by 2z.
  EXPECT_LE(res.sum_outlier_guesses, 2 * 12);
  EXPECT_GT(res.r_hat, 0.0);
}

TEST(TwoRound, RHatIsBoundedByRhoTimesOpt) {
  // Lemma 8 (ρ-generalised): r̂ ≤ ρ·optk,z(P).  With the planted bracket,
  // assert r̂ ≤ ρ_max·opt_hi where ρ_max is the Charikar factor (3(1+β)
  // = 3.75) — the Auto oracle may add the summary slack, so allow the
  // summary ρ as the generous cap.
  const auto inst = medium_planted(5);
  const auto parts =
      partition_points(inst.points, 6, PartitionKind::RoundRobin, 0);
  const auto res = two_round_coreset(parts, 3, 12, kL2, {});
  EXPECT_LE(res.r_hat, 12.0 * inst.opt_hi + 1e-9);
  // And r̂ cannot be smaller than the smallest conceivable local optimum.
  EXPECT_GE(res.r_hat, 0.0);
}

TEST(TwoRound, MergedUnionIsMiniBallCovering) {
  // Lemma 9: every original point is within ε·opt of some merged rep.
  const auto inst = medium_planted(7, 900, 3, 8);
  const auto parts =
      partition_points(inst.points, 5, PartitionKind::EvenSorted, 0);
  TwoRoundOptions opt;
  opt.eps = 0.5;
  const auto res = two_round_coreset(parts, 3, 8, kL2, {}, opt);
  for (const auto& wp : inst.points) {
    double best = 1e300;
    for (const auto& rep : res.merged)
      best = std::min(best, kL2.dist(wp.p, rep.p));
    EXPECT_LE(best, opt.eps * inst.opt_hi + 1e-9);
  }
}

TEST(TwoRound, WorkerStorageExcludesZ) {
  // The headline improvement: worker-machine coreset sizes must not carry
  // an additive z each.  With all z outliers on one machine, the total of
  // all local coreset sizes stays ≤ m·k·(4ρ/ε)^d + 2z + m (slack for
  // rounding), not m·z.
  const std::int64_t z = 64;
  const auto inst = medium_planted(11, 2500, 2, z);
  const int m = 10;
  const auto parts =
      partition_points(inst.points, m, PartitionKind::EvenSorted, 0);
  TwoRoundOptions opt;
  opt.eps = 1.0;
  const auto res = two_round_coreset(parts, 2, z, kL2, {}, opt);
  std::size_t total_local = 0;
  for (auto s : res.local_coreset_sizes) total_local += s;
  // Generous structural bound: the z-dependence must be additive (2z over
  // ALL machines), not multiplicative in m.
  const double per_machine_kterm =
      2.0 * std::pow(4.0 * 12.0 / opt.eps, 2);  // k(4ρ/ε)^d with ρ ≤ 12
  EXPECT_LT(static_cast<double>(total_local),
            m * per_machine_kterm + 2.0 * z + m);
}

TEST(OneRound, RandomPartitionValid) {
  const auto inst = medium_planted(13);
  const auto parts =
      partition_points(inst.points, 8, PartitionKind::Random, 99);
  OneRoundOptions opt;
  opt.eps = 0.5;
  const auto res =
      one_round_coreset(parts, 3, 12, inst.points.size(), kL2, {}, opt);
  EXPECT_EQ(res.stats.rounds, 1);
  validate_coreset(inst, res.coreset, res.eps_effective, 12);
  EXPECT_LE(res.z_local, 12);
}

TEST(OneRound, ZLocalFormula) {
  const auto inst = medium_planted(17, 1000, 2, 10);
  const auto parts =
      partition_points(inst.points, 10, PartitionKind::Random, 1);
  const auto res = one_round_coreset(parts, 2, 10, 1000, kL2, {});
  // z' = min(z, ⌈6z/m + 3·log2 n⌉) = min(10, ⌈6 + 29.9⌉) = 10.
  EXPECT_EQ(res.z_local, 10);
}

TEST(MultiRound, ErrorComposesAcrossRounds) {
  const auto inst = medium_planted(19);
  const auto parts =
      partition_points(inst.points, 9, PartitionKind::RoundRobin, 0);
  MultiRoundOptions opt;
  opt.eps = 0.25;
  opt.rounds = 2;
  const auto res = multi_round_coreset(parts, 3, 12, kL2, {}, opt);
  EXPECT_EQ(res.stats.rounds, 2);
  EXPECT_NEAR(res.eps_effective, std::pow(1.25, 2) - 1.0, 1e-12);
  validate_coreset(inst, res.coreset, res.eps_effective, 12);
}

TEST(MultiRound, MoreRoundsLessStorage) {
  const auto inst = medium_planted(23, 4000, 2, 8);
  const auto parts =
      partition_points(inst.points, 16, PartitionKind::RoundRobin, 0);
  MultiRoundOptions r1, r3;
  r1.eps = r3.eps = 0.5;
  r1.rounds = 1;
  r3.rounds = 3;  // β shrinks: 16 → ⌈16^{1/3}⌉ = 3
  const auto res1 = multi_round_coreset(parts, 2, 8, kL2, {}, r1);
  const auto res3 = multi_round_coreset(parts, 2, 8, kL2, {}, r3);
  validate_coreset(inst, res1.coreset, res1.eps_effective, 8);
  validate_coreset(inst, res3.coreset, res3.eps_effective, 8);
  // With R=1 the coordinator receives all m local coresets at once; with
  // R=3 fan-in is β per round, so its peak storage is smaller.
  EXPECT_LT(res3.stats.coordinator_words(), res1.stats.coordinator_words());
}

TEST(Ceccarello, ValidButZHeavy) {
  const std::int64_t z = 24;
  const auto inst = medium_planted(29, 2000, 2, z);
  const auto parts =
      partition_points(inst.points, 8, PartitionKind::EvenSorted, 0);
  CeccarelloOptions copt;
  copt.eps = 1.0;
  const auto res = ceccarello_coreset(parts, 2, z, kL2, {}, copt);
  validate_coreset(inst, res.coreset, 3.0 * copt.eps, z);
  // The per-machine budget must carry the multiplicative z term.
  EXPECT_GE(res.tau, (2 + z) * 16);  // (k+z)·⌈4/ε⌉^d, d=2, ε=1 → 16
}

TEST(Guha, LocalZBaselineValid) {
  const auto inst = medium_planted(31, 1500, 3, 10);
  const auto parts =
      partition_points(inst.points, 6, PartitionKind::EvenSorted, 0);
  GuhaOptions gopt;
  gopt.eps = 0.5;
  const auto res = guha_local_z_coreset(parts, 3, 10, kL2, {}, gopt);
  validate_coreset(inst, res.coreset, 3.0 * gopt.eps, 10);
}

// The separating workload for the outlier-guessing ablation (ABL-GUESS):
// points that look like outliers *locally* but are globally structured.
// Each machine holds dense cluster points plus a slice of a wide uniform
// cloud.  The local-z baseline [29] spends its full budget z per machine,
// gets a tiny local radius, and keeps every cloud point; Algorithm 2's r̂
// rule caps Σ(2^ĵ−1) ≤ 2z globally, forcing a realistic (large) radius and
// a compact covering.
WeightedSet cloud_and_clusters(std::size_t n_cluster, std::size_t n_cloud,
                               std::uint64_t seed) {
  PlantedConfig cfg;
  cfg.n = n_cluster;
  cfg.k = 2;
  cfg.z = 0;
  cfg.dim = 2;
  cfg.seed = seed;
  const auto planted = make_planted(cfg);
  WeightedSet pts = planted.points;
  Rng rng(seed ^ 0xabcdef);
  for (std::size_t i = 0; i < n_cloud; ++i) {
    Point p{rng.uniform_real(-5.0, 45.0), rng.uniform_real(-5.0, 45.0)};
    pts.push_back({p, 1});
  }
  return pts;
}

TEST(AblationShape, TwoRoundBeatsGuhaOnOutlierVolume) {
  const std::int64_t z = 48;
  const WeightedSet pts = cloud_and_clusters(2000, 240, 37);
  const int m = 10;
  const auto parts = partition_points(pts, m, PartitionKind::RoundRobin, 0);

  TwoRoundOptions topt;
  topt.eps = 0.5;
  GuhaOptions gopt;
  gopt.eps = 0.5;
  const auto ours = two_round_coreset(parts, 2, z, kL2, {}, topt);
  const auto guha = guha_local_z_coreset(parts, 2, z, kL2, {}, gopt);

  EXPECT_LE(ours.sum_outlier_guesses, 2 * z);
  EXPECT_LT(ours.merged.size(), guha.merged.size());
}

TEST(EndToEnd, SolveOnTwoRoundCoresetMatchesDirect) {
  const auto inst = medium_planted(41, 800, 3, 6);
  const auto parts =
      partition_points(inst.points, 4, PartitionKind::RoundRobin, 0);
  TwoRoundOptions opt;
  opt.eps = 0.25;
  const auto res = two_round_coreset(parts, 3, 6, kL2, {}, opt);
  const PipelineQuality q =
      compare_on_full(inst.points, res.coreset, 3, 6, kL2);
  EXPECT_LE(q.ratio, 3.0 * (1.0 + res.eps_effective) + 1e-9);
}

}  // namespace
}  // namespace kc::mpc
