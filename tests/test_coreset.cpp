// Composition lemmas (Lemma 4 union, Lemma 5 transitivity) and the
// end-of-pipeline solver quality.

#include <gtest/gtest.h>

#include <cmath>

#include "core/coreset.hpp"
#include "core/cost.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
#include "test_support.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

TEST(ComposeEps, Formulae) {
  EXPECT_DOUBLE_EQ(compose_eps(0.5, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(compose_eps(0.5, 0.5), 1.25);  // ε+γ+εγ
  EXPECT_NEAR(compose_eps_rounds(0.1, 3), std::pow(1.1, 3) - 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(compose_eps_rounds(0.2, 1), 0.2);
}

TEST(TransitiveProperty, RecompressKeepsCoveringWithComposedEps) {
  // Build a γ-covering, recompress with ε: result must cover P within
  // (ε+γ+εγ)·opt (Lemma 5), weight preserved.
  const auto inst = testing::tiny_planted(3, 4, 2, 101);
  const double gamma = 0.5, eps = 0.5;
  const MiniBallCovering first =
      mbc_construct(inst.points, 3, 4, gamma, kL2);
  const MiniBallCovering second = recompress(first.reps, 3, 4, eps, kL2);

  EXPECT_EQ(total_weight(second.reps), total_weight(inst.points));

  // Composed covering radius: trace each original point through both
  // assignments.
  const double budget = compose_eps(eps, gamma) * inst.opt_hi;
  for (std::size_t i = 0; i < inst.points.size(); ++i) {
    const auto mid = first.assignment[i];
    const auto rep = second.assignment[mid];
    const double d =
        kL2.dist(inst.points[i].p, second.reps[rep].p);
    EXPECT_LE(d, budget + 1e-9);
  }
}

TEST(UnionProperty, DisjointPartsUnionCovers) {
  // Split a planted instance arbitrarily into 3 parts, build an MBC per
  // part with the global z (optk,z(P_i) ≤ optk,z(P) holds for subsets),
  // and check the union is a covering of P with radius ≤ ε·opt.
  const auto inst = testing::tiny_planted(3, 6, 2, 103);
  const double eps = 0.5;
  std::vector<WeightedSet> parts(3);
  for (std::size_t i = 0; i < inst.points.size(); ++i)
    parts[i % 3].push_back(inst.points[i]);

  std::vector<WeightedSet> coresets;
  double worst = 0.0;
  for (const auto& part : parts) {
    const MiniBallCovering mbc = mbc_construct(part, 3, 6, eps, kL2);
    EXPECT_TRUE(check_mbc_structure(part, mbc));
    worst = std::max(worst, max_assignment_dist(part, mbc, kL2));
    coresets.push_back(mbc.reps);
  }
  const WeightedSet merged = merge_coresets(coresets);
  EXPECT_EQ(total_weight(merged), total_weight(inst.points));
  EXPECT_LE(worst, eps * inst.opt_hi + 1e-9);
}

TEST(Solver, FindsPlantedStructure) {
  const auto inst = testing::tiny_planted(3, 4, 2, 107);
  const Solution sol = solve_kcenter_outliers(inst.points, 3, 4, kL2);
  // Charikar end-solver: radius ≤ ρ·opt ≤ ρ·opt_hi with ρ = 3(1+β)+slack.
  EXPECT_LE(sol.radius, 4.0 * inst.opt_hi + 1e-9);
  EXPECT_GE(sol.radius, 0.0);
}

TEST(Solver, PipelineQualityNearOne) {
  const auto inst = testing::tiny_planted(3, 4, 2, 109);
  const double eps = 0.25;
  const MiniBallCovering mbc = mbc_construct(inst.points, 3, 4, eps, kL2);
  const PipelineQuality q =
      compare_on_full(inst.points, mbc.reps, 3, 4, kL2);
  // Solving on the coreset must cost at most (1+O(ε)) of solving directly.
  // The end solver itself is a ~3-approx, so allow generous but bounded
  // slack; the QUALITY bench tracks the tight ratios.
  EXPECT_GT(q.radius_via_coreset, 0.0);
  EXPECT_LE(q.ratio, 3.0 * (1.0 + eps) + 1e-9);
}

TEST(Solver, CoresetRadiusSandwichAgainstDirect) {
  // optk,z on the coreset within (1±ε) of optk,z on P — verified through
  // the exact evaluator with shared candidate centers.
  const auto inst = testing::tiny_planted(2, 3, 2, 113);
  const double eps = 0.25;
  const MiniBallCovering mbc = mbc_construct(inst.points, 2, 3, eps, kL2);
  const double r_full =
      radius_with_outliers(inst.points, inst.planted_centers, 3, kL2);
  const double r_core =
      radius_with_outliers(mbc.reps, inst.planted_centers, 3, kL2);
  // Same centers: coreset radius within ±ε·opt_hi of the full radius.
  EXPECT_LE(std::abs(r_core - r_full), eps * inst.opt_hi + 1e-9);
}

}  // namespace
}  // namespace kc
