// Tests of Algorithm 3 (insertion-only streaming) and the threshold-policy
// baseline, including the r ≤ opt invariant, the covering property, and
// the space bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cost.hpp"
#include "stream/insertion_only.hpp"
#include "test_support.hpp"
#include "workload/streams.hpp"

namespace kc::stream {
namespace {

const Metric kL2{Norm::L2};

// Feed a planted instance in the given order; return the stream state.
InsertionOnlyStream feed(const PlantedInstance& inst,
                         const std::vector<std::size_t>& order, int k,
                         std::int64_t z, double eps, int dim,
                         ThresholdPolicy policy = ThresholdPolicy::Ours) {
  InsertionOnlyStream s(k, z, eps, dim, kL2, policy);
  for (auto idx : order) s.insert(inst.points[idx].p);
  return s;
}

TEST(InsertionOnly, ThresholdFormulas) {
  EXPECT_EQ(stream_threshold(2, 5, 1.0, 1, ThresholdPolicy::Ours),
            2u * 16u + 5u);
  EXPECT_EQ(stream_threshold(2, 5, 1.0, 1, ThresholdPolicy::Ceccarello),
            7u * 16u);
  EXPECT_EQ(stream_threshold(1, 0, 0.5, 2, ThresholdPolicy::Ours),
            static_cast<std::size_t>(32 * 32));
}

TEST(InsertionOnly, WeightConservation) {
  const auto inst = testing::tiny_planted(2, 3, 1, 51);
  const auto order = shuffled_order(inst.points.size(), 5);
  const auto s = feed(inst, order, 2, 3, 1.0, 1);
  EXPECT_EQ(total_weight(s.coreset()),
            static_cast<std::int64_t>(inst.points.size()));
}

TEST(InsertionOnly, SizeBoundHolds) {
  PlantedConfig cfg;
  cfg.n = 3000;
  cfg.k = 2;
  cfg.z = 8;
  cfg.dim = 1;
  cfg.seed = 53;
  const auto inst = make_planted(cfg);
  const auto order = shuffled_order(inst.points.size(), 7);
  const auto s = feed(inst, order, 2, 8, 1.0, 1);
  EXPECT_LE(s.coreset().size(), s.threshold());
  EXPECT_LE(s.peak_size(), s.threshold());
  EXPECT_GT(s.doublings(), 0);  // the instance is big enough to recompress
}

TEST(InsertionOnly, RIsLowerBoundOnOpt) {
  // Invariant from Lemma 17: r ≤ optk,z(P(t)) ≤ opt_hi at the end.
  PlantedConfig cfg;
  cfg.n = 2000;
  cfg.k = 3;
  cfg.z = 6;
  cfg.dim = 1;
  cfg.seed = 59;
  const auto inst = make_planted(cfg);
  const auto order = shuffled_order(inst.points.size(), 9);
  const auto s = feed(inst, order, 3, 6, 1.0, 1);
  EXPECT_LE(s.r(), inst.opt_hi + 1e-9);
}

TEST(InsertionOnly, CoveringPropertyAfterStream) {
  // Lemma 16: every inserted point is within ε·r of some representative.
  PlantedConfig cfg;
  cfg.n = 1500;
  cfg.k = 2;
  cfg.z = 5;
  cfg.dim = 1;
  cfg.seed = 61;
  const auto inst = make_planted(cfg);
  const auto order = shuffled_order(inst.points.size(), 11);
  const auto s = feed(inst, order, 2, 5, 1.0, 1);
  const double budget =
      std::max(1.0, s.r() > 0 ? 1.0 : 1.0) * s.r() + 1e-9;  // ε = 1
  for (const auto& wp : inst.points) {
    double best = 1e300;
    for (const auto& rep : s.coreset())
      best = std::min(best, kL2.dist(wp.p, rep.p));
    EXPECT_LE(best, budget);
  }
}

TEST(InsertionOnly, CoresetCoversWithinEpsOpt) {
  // End-to-end coreset property: planted centers cover the coreset within
  // (1+ε)·opt_hi with z outliers.
  PlantedConfig cfg;
  cfg.n = 1500;
  cfg.k = 2;
  cfg.z = 6;
  cfg.dim = 2;
  cfg.seed = 67;
  const auto inst = make_planted(cfg);
  const auto order = shuffled_order(inst.points.size(), 13);
  const auto s = feed(inst, order, 2, 6, 1.0, 2);
  const double r =
      radius_with_outliers(s.coreset(), inst.planted_centers, 6, kL2);
  EXPECT_LE(r, (1.0 + 1.0) * inst.opt_hi + 1e-9);
}

TEST(InsertionOnly, AdversarialOrderSameGuarantees) {
  PlantedConfig cfg;
  cfg.n = 1200;
  cfg.k = 2;
  cfg.z = 10;
  cfg.dim = 1;
  cfg.seed = 71;
  const auto inst = make_planted(cfg);
  const auto order =
      adversarial_order(strip_weights(inst.points), inst.outlier_indices);
  const auto s = feed(inst, order, 2, 10, 1.0, 1);
  EXPECT_LE(s.peak_size(), s.threshold());
  EXPECT_LE(s.r(), inst.opt_hi + 1e-9);
  EXPECT_EQ(total_weight(s.coreset()),
            static_cast<std::int64_t>(inst.points.size()));
}

TEST(InsertionOnly, DuplicatesAbsorbedBeforeBootstrap) {
  InsertionOnlyStream s(1, 0, 1.0, 1, kL2);
  for (int i = 0; i < 10; ++i) s.insert(Point{5.0});
  EXPECT_EQ(s.coreset().size(), 1u);
  EXPECT_EQ(s.coreset()[0].w, 10);
  EXPECT_DOUBLE_EQ(s.r(), 0.0);  // never saw k+z+1 distinct points
}

TEST(InsertionOnly, OursVsCeccarelloSpaceShape) {
  // Same stream, both policies: our threshold (additive z) must yield a
  // smaller-or-equal peak than the Ceccarello-style multiplicative one, and
  // strictly smaller when z is large.
  PlantedConfig cfg;
  cfg.n = 4000;
  cfg.k = 2;
  cfg.z = 40;
  cfg.dim = 1;
  cfg.seed = 73;
  const auto inst = make_planted(cfg);
  const auto order = shuffled_order(inst.points.size(), 15);
  const auto ours = feed(inst, order, 2, 40, 1.0, 1, ThresholdPolicy::Ours);
  const auto base =
      feed(inst, order, 2, 40, 1.0, 1, ThresholdPolicy::Ceccarello);
  EXPECT_LT(ours.threshold(), base.threshold());
  EXPECT_LE(ours.peak_size(), base.peak_size());
}

class StreamSweep : public ::testing::TestWithParam<testing::SweepParam> {};

TEST_P(StreamSweep, InvariantsAcrossParameters) {
  const auto p = GetParam();
  // The (dim > 1, eps < 0.5) cells are unreachable for the *size* part of
  // the sweep in principle at test scale: the recompression threshold
  // k(16/ε)^d + z is ≥ k·4096 representatives there, while n stays in the
  // hundreds (growing n past the threshold would put a Θ(n·|P*|) scan in
  // the suite's hot path).  Instead of skipping, those cells exercise the
  // assertions that bite from the very first insertion — the r ≤ opt lower
  // bound, weight conservation, and the end-to-end covering property
  // checked below for every cell.
  PlantedConfig cfg;
  cfg.n = 600 + static_cast<std::size_t>(p.k) *
                    (static_cast<std::size_t>(p.z) + 6);
  cfg.k = p.k;
  cfg.z = p.z;
  cfg.dim = p.dim;
  cfg.seed = p.seed;
  const auto inst = make_planted(cfg);
  const auto order = shuffled_order(inst.points.size(), p.seed);
  InsertionOnlyStream s(p.k, p.z, p.eps, p.dim, kL2);
  for (auto idx : order) {
    s.insert(inst.points[idx].p);
    ASSERT_LT(s.coreset().size(), s.threshold());
  }
  EXPECT_LE(s.r(), inst.opt_hi + 1e-9);
  EXPECT_EQ(total_weight(s.coreset()),
            static_cast<std::int64_t>(inst.points.size()));
  // Covering property (Lemma 16 end-to-end): the planted centers cover the
  // coreset within (1+ε)·opt_hi leaving outlier weight ≤ z.  Holds in
  // every cell — coreset reps sit within ε·r ≤ ε·opt_hi of input points,
  // and outlier reps cannot absorb cluster weight (the planted separation
  // dwarfs ε·opt_hi) — so it is a real assertion even where the threshold
  // is out of reach.
  const double cover =
      radius_with_outliers(s.coreset(), inst.planted_centers, p.z, kL2);
  EXPECT_LE(cover, (1.0 + p.eps) * inst.opt_hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, StreamSweep,
                         ::testing::ValuesIn(testing::default_sweep()),
                         [](const auto& info) { return info.param.name(); });

}  // namespace
}  // namespace kc::stream
