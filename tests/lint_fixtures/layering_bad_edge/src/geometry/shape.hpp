// Fixture: a legal geometry header (includes nothing above util).
#pragma once

namespace fixture {
struct Shape {
  int sides = 3;
};
}  // namespace fixture
