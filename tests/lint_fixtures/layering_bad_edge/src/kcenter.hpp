// Fixture umbrella: keeps the reachability check quiet so the case pins
// only the illegal util -> geometry edge.
#pragma once

#include "geometry/shape.hpp"
#include "util/bad.hpp"
