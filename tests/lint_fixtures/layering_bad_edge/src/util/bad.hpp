// Fixture: util is the bottom layer and must not reach into geometry.
#pragma once

#include "geometry/shape.hpp"

namespace fixture {
inline int twice(int x) { return 2 * x; }
}  // namespace fixture
