// Fixture: every banned entropy source outside util/rng.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int roll() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return std::rand() % 6;
}

unsigned hw_seed() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
