// Fixture umbrella: both headers reachable, so the only diagnostic is the
// cycle itself.
#pragma once

#include "core/a.hpp"
