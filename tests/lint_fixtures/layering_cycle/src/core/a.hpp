// Fixture: half of an include cycle (a -> b -> a).
#pragma once

#include "core/b.hpp"

namespace fixture {
inline int a_value() { return 1; }
}  // namespace fixture
