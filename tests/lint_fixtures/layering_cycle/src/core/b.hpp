// Fixture: the other half of the include cycle.
#pragma once

#include "core/a.hpp"

namespace fixture {
inline int b_value() { return 2; }
}  // namespace fixture
