// Fixture: accumulating into a float breaks the float64-reduction contract.
namespace fixture {

double total(const float* xs, int n) {
  float sum = 0.0F;
  for (int i = 0; i < n; ++i) sum += xs[i];
  return static_cast<double>(sum);
}

}  // namespace fixture
