// Fixture: discarded I/O and process-control returns in dataset code.
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fixture {

void flush(int fd, void* addr, unsigned long len, int pid) {
  ::fsync(fd);
  (void)::posix_madvise(addr, len, POSIX_MADV_DONTNEED);
  ::waitpid(pid, nullptr, 0);
}

}  // namespace fixture
