// Fixture umbrella that misses core/hidden.hpp.
#pragma once

#include "core/exported.hpp"
