// Fixture: a header the umbrella does export.
#pragma once

namespace fixture {
inline int exported() { return 7; }
}  // namespace fixture
