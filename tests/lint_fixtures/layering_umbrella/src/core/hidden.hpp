// Fixture: a public header the umbrella forgot to export.
#pragma once

namespace fixture {
inline int hidden() { return 42; }
}  // namespace fixture
