// Fixture: a reasoned kc-lint-allow suppresses the diagnostic and shows up
// in the report's allowlist budget.
namespace fixture {

bool converged(double r) {
  // kc-lint-allow(numerics): exact sentinel — r is assigned 0.0 verbatim.
  return r == 0.0;
}

}  // namespace fixture
