// Fixture: Options structs must stay lean; MPC entry points take an
// ExecContext instead of raw execution resources.
#pragma once

namespace fixture {

class ThreadPool;
struct ExecContext;

struct RunnerOptions {
  int rounds = 4;
  ThreadPool* pool = nullptr;
};

int run_rounds(const RunnerOptions& opts);

int run_rounds_ctx(const RunnerOptions& opts, ExecContext& ctx);

}  // namespace fixture
