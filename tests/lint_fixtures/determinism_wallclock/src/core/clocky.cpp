// Fixture: raw wall-clock reads belong in util/timer and bench only.
#include <chrono>
#include <ctime>

namespace fixture {

long stamp() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

long unix_now() { return static_cast<long>(::time(nullptr)); }

}  // namespace fixture
