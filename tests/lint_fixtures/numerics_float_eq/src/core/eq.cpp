// Fixture: exact compares against float literals need an allowlist reason.
namespace fixture {

bool is_zero(double x) { return x == 0.0; }

bool not_one(double x) { return x != 1.0; }

}  // namespace fixture
