// Fixture: allowlist hygiene — an annotation with no reason does not
// suppress, a stale annotation is flagged, an unknown rule is flagged.
namespace fixture {

bool empty_reason(double r) {
  // kc-lint-allow(numerics):
  return r == 0.0;
}

// kc-lint-allow(determinism): nothing below trips the determinism rule.
inline int stale() { return 3; }

// kc-lint-allow(quantum): not a rule this tool knows.
inline int unknown() { return 4; }

}  // namespace fixture
