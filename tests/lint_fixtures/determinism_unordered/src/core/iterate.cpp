// Fixture: iterating an unordered container is order-nondeterministic.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int sum_values() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int total = 0;
  for (const auto& [k, v] : counts) total += v;
  return total;
}

int first_key() {
  std::unordered_set<int> seen = {1, 2, 3};
  return *seen.begin();
}

}  // namespace fixture
