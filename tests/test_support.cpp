#include "test_support.hpp"

#include <sstream>

namespace kc::testing {

PlantedInstance tiny_planted(int k, std::int64_t z, int dim,
                             std::uint64_t seed) {
  PlantedConfig cfg;
  cfg.k = k;
  cfg.z = z;
  cfg.dim = dim;
  cfg.seed = seed;
  cfg.n = static_cast<std::size_t>(k) * (static_cast<std::size_t>(z) + 6) +
          static_cast<std::size_t>(z) + 20;
  return make_planted(cfg);
}

std::string SweepParam::name() const {
  std::ostringstream out;
  out << "k" << k << "_z" << z << "_eps";
  // gtest parameter names must be alphanumeric.
  out << static_cast<int>(eps * 100) << "_d" << dim << "_s" << seed;
  return out.str();
}

std::vector<SweepParam> default_sweep() {
  std::vector<SweepParam> grid;
  for (int k : {1, 3, 5}) {
    for (std::int64_t z : {0LL, 4LL, 16LL}) {
      for (double eps : {0.25, 0.5, 1.0}) {
        for (int dim : {1, 2}) {
          grid.push_back(SweepParam{k, z, eps, dim, 7});
        }
      }
    }
  }
  return grid;
}

}  // namespace kc::testing
