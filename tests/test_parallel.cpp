// Tests of the deterministic threading layer: kc::ThreadPool semantics
// (chunking, exceptions, reuse), bit-equality of the chunk-parallel batch
// kernels against their scalar references, and the end-to-end guarantee the
// layer exists for — every registered engine pipeline produces identical
// reports at num_threads ∈ {1, 2, 8}.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "geometry/kernels.hpp"
#include "util/parallel.hpp"
#include "workload/generators.hpp"

namespace kc {
namespace {

// Bitwise double equality: the layer's contract is bit-identical outputs,
// not approximate ones.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(3), 3);
  EXPECT_GE(resolve_num_threads(0), 1);
  EXPECT_GE(resolve_num_threads(-5), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {0UL, 1UL, 7UL, 64UL, 1000UL}) {
    for (const std::size_t grain : {1UL, 3UL, 64UL, 5000UL}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ThreadPool, ChunkCountIsDeterministicAndGrainBounded) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.chunk_count(0, 1), 0u);
  EXPECT_EQ(pool.chunk_count(5, 100), 1u);   // one under-grain chunk
  EXPECT_EQ(pool.chunk_count(100, 10), 10u); // ceil(100/10)
  EXPECT_EQ(pool.chunk_count(100, 0), 16u);  // grain clamps to 1, cap 4*4
  EXPECT_EQ(pool.chunk_count(1000000, 1), 16u);  // capped at 4/thread
  // Pure function of (n, grain, num_threads): repeated calls agree.
  EXPECT_EQ(pool.chunk_count(12345, 7), pool.chunk_count(12345, 7));
}

TEST(ThreadPool, ChunkRangesArePureAndOrdered) {
  ThreadPool pool(3);
  const std::size_t n = 1001, grain = 10;
  const std::size_t chunks = pool.chunk_count(n, grain);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks);
  pool.parallel_for_chunks(
      n, grain, [&](std::size_t c, std::size_t begin, std::size_t end) {
        ranges[c] = {begin, end};
      });
  std::size_t expect_begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[c].first, expect_begin);
    EXPECT_LT(ranges[c].first, ranges[c].second);
    expect_begin = ranges[c].second;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(ThreadPool, SingleThreadRunsInlineWithSameChunks) {
  ThreadPool seq(1);
  ThreadPool par(8);
  // A sequential pool never spawns threads but must expose the same
  // parallel_for_chunks interface (its own chunk ids, ascending order).
  const std::size_t n = 100, grain = 9;
  std::vector<std::size_t> order;
  seq.parallel_for_chunks(n, grain,
                          [&](std::size_t c, std::size_t, std::size_t) {
                            order.push_back(c);
                          });
  ASSERT_EQ(order.size(), seq.chunk_count(n, grain));
  for (std::size_t c = 0; c < order.size(); ++c) EXPECT_EQ(order[c], c);
  EXPECT_EQ(seq.num_threads(), 1);
  EXPECT_EQ(par.num_threads(), 8);
}

TEST(ThreadPool, ExceptionFromLowestChunkPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  // Two chunks throw; the lowest-numbered one's exception must surface.
  try {
    pool.parallel_for_chunks(
        n, 10, [&](std::size_t c, std::size_t, std::size_t) {
          if (c == 3) throw std::runtime_error("chunk 3");
          if (c == 9) throw std::runtime_error("chunk 9");
        });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
  // Pool reuse after an exception: the next job runs normally.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(n, 10, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), n);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = pool.parallel_map<int>(
      257, 8, [](std::size_t i) { return static_cast<int>(i * 2); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * 2));
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Nested fan-out from a pool task: must complete (inline), not
      // deadlock on the shared queue.
      pool.parallel_for(10, 1, [&](std::size_t b, std::size_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 80u);
}

TEST(ThreadPool, ReuseAcrossManyJobs) {
  ThreadPool pool(3);
  std::size_t sum = 0;
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(end - begin);
    });
    sum += count.load();
  }
  EXPECT_EQ(sum, 5000u);
}

// ---- Kernel bit-equality ------------------------------------------------

class ParallelKernelTest : public ::testing::TestWithParam<Norm> {};

TEST_P(ParallelKernelTest, RelaxMinKeysMatchesScalarBitForBit) {
  const Norm norm = GetParam();
  const WeightedSet pts = make_uniform(5000, 3, 10.0, 7);
  const kernels::PointBuffer buf(pts);
  const std::size_t n = pts.size();
  ThreadPool pool(4);

  // Run several relaxation sweeps (as Gonzalez would) in both modes.
  std::vector<double> keys_a(n, std::numeric_limits<double>::infinity());
  std::vector<double> keys_b = keys_a;
  std::vector<std::uint32_t> assign_a(n, 0), assign_b(n, 0);
  std::vector<double> scratch(n);

  const auto sweep = [&](Norm nm, auto&& run) {
    switch (nm) {
      case Norm::L2: return run.template operator()<Norm::L2>();
      case Norm::Linf: return run.template operator()<Norm::Linf>();
      case Norm::L1: return run.template operator()<Norm::L1>();
      case Norm::Custom: break;
    }
    return kernels::RelaxResult{};
  };

  std::size_t q_idx = 0;
  for (std::uint32_t label = 0; label < 8; ++label) {
    const double* q = pts[q_idx].p.coords().data();
    const auto scalar = sweep(norm, [&]<Norm N>() {
      return kernels::relax_min_keys<N>(buf, q, label, keys_a.data(),
                                        assign_a.data(), scratch.data());
    });
    const auto parallel = sweep(norm, [&]<Norm N>() {
      return kernels::relax_min_keys_parallel<N>(buf, q, label, keys_b.data(),
                                                 assign_b.data(),
                                                 scratch.data(), &pool,
                                                 /*grain=*/512);
    });
    EXPECT_EQ(scalar.far_idx, parallel.far_idx) << "label " << label;
    EXPECT_TRUE(BitEqual(scalar.far_key, parallel.far_key));
    q_idx = scalar.far_idx;  // follow the Gonzalez traversal
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(BitEqual(keys_a[i], keys_b[i])) << "i=" << i;
    ASSERT_EQ(assign_a[i], assign_b[i]) << "i=" << i;
  }
}

TEST_P(ParallelKernelTest, CountAndMarkWithinMatchScalar) {
  const Norm norm = GetParam();
  const WeightedSet pts = make_uniform(4000, 2, 10.0, 11);
  const kernels::PointBuffer buf(pts);
  const std::size_t n = pts.size();
  ThreadPool pool(4);

  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::vector<std::int64_t> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = pts[i].w;
  const double* q = pts[42].p.coords().data();
  const double thresh = kernels::dist_to_key(norm, 2.5);

  const auto run = [&](auto&& fn) {
    switch (norm) {
      case Norm::L2: return fn.template operator()<Norm::L2>();
      case Norm::Linf: return fn.template operator()<Norm::Linf>();
      case Norm::L1: return fn.template operator()<Norm::L1>();
      case Norm::Custom: break;
    }
    return std::int64_t{0};
  };

  const std::int64_t scalar_count = run([&]<Norm N>() {
    return kernels::count_within<N>(buf, idx.data(), n, q, thresh, w.data(),
                                    nullptr);
  });
  const std::int64_t parallel_count = run([&]<Norm N>() {
    return kernels::count_within_parallel<N>(buf, idx.data(), n, q, thresh,
                                             w.data(), nullptr, &pool,
                                             /*grain=*/256);
  });
  EXPECT_EQ(scalar_count, parallel_count);
  EXPECT_GT(scalar_count, 0);

  // mark_within: covered bytes, removed weight, and the on_covered
  // invocation order must all match.
  std::vector<std::uint8_t> covered_a(n, 0), covered_b(n, 0);
  std::vector<std::uint32_t> order_a, order_b;
  const std::int64_t removed_a = run([&]<Norm N>() {
    return kernels::mark_within<N>(buf, idx.data(), n, q, thresh, w.data(),
                                   covered_a.data(),
                                   [&](std::uint32_t j) { order_a.push_back(j); });
  });
  const std::int64_t removed_b = run([&]<Norm N>() {
    return kernels::mark_within_parallel<N>(
        buf, idx.data(), n, q, thresh, w.data(), covered_b.data(),
        [&](std::uint32_t j) { order_b.push_back(j); }, &pool,
        /*grain=*/256);
  });
  EXPECT_EQ(removed_a, removed_b);
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(covered_a, covered_b);
  EXPECT_EQ(removed_a, scalar_count);  // same ball, nothing pre-covered
}

INSTANTIATE_TEST_SUITE_P(Norms, ParallelKernelTest,
                         ::testing::Values(Norm::L2, Norm::Linf, Norm::L1),
                         [](const ::testing::TestParamInfo<Norm>& info) {
                           switch (info.param) {
                             case Norm::L2: return std::string("L2");
                             case Norm::Linf: return std::string("Linf");
                             case Norm::L1: return std::string("L1");
                             case Norm::Custom: break;
                           }
                           return std::string("Custom");
                         });

// ---- End-to-end: every pipeline is thread-count invariant ---------------

class PipelineThreadSweepTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(PipelineThreadSweepTest, ReportIsIdenticalAcrossThreadCounts) {
  const std::string name = GetParam();
  engine::PipelineConfig cfg;
  cfg.k = 3;
  cfg.z = 8;
  cfg.eps = 0.5;
  cfg.dim = 2;
  cfg.seed = 4242;
  cfg.machines = 6;
  cfg.partition_seed = 17;
  cfg.rounds = 2;
  cfg.delta = 1 << 10;

  const engine::Workload w = engine::make_workload(900, cfg);

  cfg.num_threads = 1;
  const engine::PipelineResult ref = engine::run(name, w, cfg);

  for (const int threads : {2, 8}) {
    cfg.num_threads = threads;
    const engine::PipelineResult res = engine::run(name, w, cfg);
    const auto& a = ref.report;
    const auto& b = res.report;
    SCOPED_TRACE(name + " @ " + std::to_string(threads) + " threads");
    EXPECT_TRUE(BitEqual(a.radius, b.radius));
    EXPECT_TRUE(BitEqual(a.radius_direct, b.radius_direct));
    EXPECT_TRUE(BitEqual(a.quality, b.quality));
    EXPECT_EQ(a.coreset_size, b.coreset_size);
    EXPECT_EQ(a.words, b.words);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.comm_words, b.comm_words);

    // The summary and the extracted centers too, coordinate by coordinate.
    ASSERT_EQ(ref.coreset.size(), res.coreset.size());
    for (std::size_t i = 0; i < ref.coreset.size(); ++i) {
      ASSERT_EQ(ref.coreset[i].w, res.coreset[i].w) << "i=" << i;
      for (int d = 0; d < cfg.dim; ++d)
        ASSERT_TRUE(BitEqual(ref.coreset[i].p[d], res.coreset[i].p[d]))
            << "i=" << i << " d=" << d;
    }
    ASSERT_EQ(ref.solution.centers.size(), res.solution.centers.size());
    for (std::size_t c = 0; c < ref.solution.centers.size(); ++c)
      for (int d = 0; d < cfg.dim; ++d)
        ASSERT_TRUE(
            BitEqual(ref.solution.centers[c][d], res.solution.centers[c][d]))
            << "c=" << c << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, PipelineThreadSweepTest,
    ::testing::ValuesIn(engine::registry().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace kc
