#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geometry/grid.hpp"

namespace kc {
namespace {

TEST(GridHierarchy, LevelCountMatchesLogDelta) {
  EXPECT_EQ(GridHierarchy(16, 2).levels(), 5);   // 2^4 = 16 → levels 0..4
  EXPECT_EQ(GridHierarchy(17, 2).levels(), 6);   // ⌈log2 17⌉ = 5
  EXPECT_EQ(GridHierarchy(2, 1).levels(), 2);
}

TEST(GridHierarchy, TopLevelIsSingleCell) {
  const GridHierarchy g(64, 2);
  EXPECT_EQ(g.universe_size(g.levels() - 1), 1u);
}

TEST(GridHierarchy, UniverseSizeShrinksWithLevel) {
  const GridHierarchy g(256, 2);
  EXPECT_EQ(g.universe_size(0), 256u * 256u);
  EXPECT_EQ(g.universe_size(1), 128u * 128u);
  for (int l = 1; l < g.levels(); ++l)
    EXPECT_LT(g.universe_size(l), g.universe_size(l - 1));
}

TEST(GridHierarchy, CellIdStableWithinCell) {
  const GridHierarchy g(64, 2);
  GridPoint a{{8, 9}, 2};
  GridPoint b{{11, 10}, 2};  // same cell at level 2 (side 4): cells (2,2)
  EXPECT_EQ(g.cell_id(a, 2), g.cell_id(b, 2));
  EXPECT_NE(g.cell_id(a, 0), g.cell_id(b, 0));
}

TEST(GridHierarchy, DistinctCellsDistinctIds) {
  const GridHierarchy g(16, 2);
  // All level-1 cells must have unique ids.
  std::vector<std::uint64_t> ids;
  for (std::int64_t x = 0; x < 16; x += 2)
    for (std::int64_t y = 0; y < 16; y += 2)
      ids.push_back(g.cell_id(GridPoint{{x, y}, 2}, 1));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), 64u);
}

TEST(GridHierarchy, CellCenterRoundTrip) {
  const GridHierarchy g(64, 3);
  const GridPoint p{{13, 50, 7}, 3};
  for (int level = 0; level < g.levels(); ++level) {
    const auto id = g.cell_id(p, level);
    const Point center = g.cell_center(id, level);
    // The center must lie inside the cell containing p.
    const double side = static_cast<double>(g.cell_side(level));
    for (int i = 0; i < 3; ++i) {
      const double cell_lo =
          std::floor(static_cast<double>(p.c[static_cast<std::size_t>(i)]) / side) * side;
      EXPECT_GE(center[i], cell_lo);
      EXPECT_LE(center[i], cell_lo + side);
    }
    // Center distance to the point is at most (side/2)·dim in L∞ terms.
    EXPECT_LE(std::abs(center[0] - static_cast<double>(p.c[0])), side);
  }
}

TEST(GridHierarchy, CellCornerMatchesId) {
  const GridHierarchy g(32, 2);
  const GridPoint p{{21, 9}, 2};
  for (int level = 0; level < g.levels(); ++level) {
    const auto id = g.cell_id(p, level);
    const GridPoint corner = g.cell_corner(id, level);
    EXPECT_EQ(g.cell_id(corner, level), id);
    for (int i = 0; i < 2; ++i) {
      EXPECT_LE(corner.c[static_cast<std::size_t>(i)], p.c[static_cast<std::size_t>(i)]);
      EXPECT_GT(corner.c[static_cast<std::size_t>(i)] + g.cell_side(level),
                p.c[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(GridHierarchy, NonPowerOfTwoDelta) {
  const GridHierarchy g(100, 2);
  const GridPoint p{{99, 99}, 2};
  for (int level = 0; level < g.levels(); ++level) {
    const auto id = g.cell_id(p, level);
    EXPECT_LT(id, g.universe_size(level));
  }
}

TEST(SnapToGrid, RoundsAndClamps) {
  const GridPoint g = snap_to_grid(Point{3.4, 7.6}, 8);
  EXPECT_EQ(g.c[0], 3);
  EXPECT_EQ(g.c[1], 7);  // 7.6 rounds to 8, clamps to Δ−1 = 7
  const GridPoint h = snap_to_grid(Point{-2.0, 3.0}, 8);
  EXPECT_EQ(h.c[0], 0);
}

}  // namespace
}  // namespace kc
