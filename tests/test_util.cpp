#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace kc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> counts{};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform(8)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 8 - 600);
    EXPECT_LT(c, trials / 8 + 600);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(9);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Splitmix, KnownFixedPointFree) {
  // splitmix64 must not be the identity on small values.
  for (std::uint64_t v = 0; v < 64; ++v) EXPECT_NE(splitmix64(v), v);
}

TEST(Summary, MeanStdDevPercentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.9), 90.1, 0.5);
  EXPECT_NEAR(s.stddev(), 29.011, 0.01);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 3.5);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.5));
  }
  EXPECT_NEAR(loglog_slope(x, y), 1.5, 1e-9);
}

TEST(Table, AlignsAndCounts) {
  Table t({"alg", "n", "storage"});
  t.add_row({"ours", "1024", "33"});
  t.add_row({"baseline", "1024", "71"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("baseline"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Fmt, TrimsZeros) {
  EXPECT_EQ(fmt(1.5, 3), "1.5");
  EXPECT_EQ(fmt(2.0, 3), "2");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
}

TEST(Fmt, CountSeparators) {
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(12), "12");
  EXPECT_EQ(fmt_count(-1000), "-1,000");
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = ::testing::TempDir() + "/kc_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.write_row({"x,y", "plain"});
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "a,b\n\"x,y\",plain\n");
}

TEST(Flags, ParsesAllSyntaxes) {
  // Note: a bare boolean flag must come last or be followed by another
  // --flag, otherwise the next token is consumed as its value.
  const char* argv[] = {"prog", "pos", "--n=100", "--eps", "0.5", "--quick"};
  Flags f(6, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(f.get_double("eps", 0.0), 0.5);
  EXPECT_TRUE(f.has("quick"));
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.get_int("missing", 42), 42);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
}

}  // namespace
}  // namespace kc
