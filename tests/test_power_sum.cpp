// Deterministic s-sparse recovery (power sums + Berlekamp–Massey): the
// Vandermonde determinisation the paper sketches in §1/§5.

#include <gtest/gtest.h>

#include <map>

#include "sketch/power_sum.hpp"
#include "util/rng.hpp"

namespace kc::sketch {
namespace {

TEST(PowerSum, EmptyDecodesEmpty) {
  PowerSumSketch sk(4);
  EXPECT_TRUE(sk.empty());
  const auto dec = sk.decode(100);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->empty());
}

TEST(PowerSum, SingleKey) {
  PowerSumSketch sk(4);
  sk.update(17, 3);
  const auto dec = sk.decode(64);
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->size(), 1u);
  EXPECT_EQ((*dec)[0].key, 17u);
  EXPECT_EQ((*dec)[0].count, 3);
}

TEST(PowerSum, FullCapacityExact) {
  PowerSumSketch sk(8);
  std::map<std::uint64_t, std::int64_t> truth = {{3, 1},  {9, 4}, {15, 2},
                                                 {22, 7}, {31, 1}, {40, 9},
                                                 {41, 2}, {63, 5}};
  for (const auto& [k, c] : truth) sk.update(k, c);
  const auto dec = sk.decode(64);
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->size(), truth.size());
  for (const auto& item : *dec) {
    ASSERT_TRUE(truth.count(item.key));
    EXPECT_EQ(item.count, truth[item.key]);
  }
}

TEST(PowerSum, DeletionsCancel) {
  PowerSumSketch sk(4);
  sk.update(5, 2);
  sk.update(9, 1);
  sk.update(5, -2);
  const auto dec = sk.decode(32);
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->size(), 1u);
  EXPECT_EQ((*dec)[0].key, 9u);
}

TEST(PowerSum, IncrementalUpdatesAccumulate) {
  PowerSumSketch sk(4);
  for (int i = 0; i < 10; ++i) sk.update(7, 1);
  const auto dec = sk.decode(16);
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->size(), 1u);
  EXPECT_EQ((*dec)[0].count, 10);
}

TEST(PowerSum, OverCapacityFailsSafely) {
  PowerSumSketch sk(3);
  for (std::uint64_t k = 0; k < 10; ++k) sk.update(k, 1);
  EXPECT_FALSE(sk.decode(16).has_value());
}

TEST(PowerSum, DeterministicAcrossInstances) {
  // No randomness at all: two sketches fed identically decode identically.
  PowerSumSketch a(4), b(4);
  for (const auto& [k, c] :
       std::map<std::uint64_t, std::int64_t>{{2, 1}, {5, 2}, {11, 3}}) {
    a.update(k, c);
    b.update(k, c);
  }
  const auto da = a.decode(16), db = b.decode(16);
  ASSERT_TRUE(da.has_value() && db.has_value());
  ASSERT_EQ(da->size(), db->size());
  for (std::size_t i = 0; i < da->size(); ++i) {
    EXPECT_EQ((*da)[i].key, (*db)[i].key);
    EXPECT_EQ((*da)[i].count, (*db)[i].count);
  }
}

TEST(PowerSum, CandidateDecodeAvoidsUniverseScan) {
  PowerSumSketch sk(4);
  sk.update(1000003, 2);
  sk.update(2000003, 5);
  const auto dec = sk.decode_candidates({1000003, 2000003, 999, 12345});
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->size(), 2u);
  EXPECT_EQ((*dec)[0].key, 1000003u);
  EXPECT_EQ((*dec)[1].key, 2000003u);
}

TEST(PowerSum, CandidateDecodeFailsIfSupportMissing) {
  PowerSumSketch sk(4);
  sk.update(77, 1);
  sk.update(88, 1);
  // 88 missing from candidates → support mismatch → failure, not a wrong
  // answer.
  EXPECT_FALSE(sk.decode_candidates({77, 99}).has_value());
}

TEST(PowerSum, RandomizedStress) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t s = 1 + rng.uniform(6);
    PowerSumSketch sk(s);
    std::map<std::uint64_t, std::int64_t> truth;
    const auto keys = 1 + rng.uniform(s);
    for (std::uint64_t i = 0; i < keys; ++i) {
      const std::uint64_t key = rng.uniform(128);
      const auto count = static_cast<std::int64_t>(1 + rng.uniform(5));
      truth[key] += count;
      sk.update(key, count);
    }
    const auto dec = sk.decode(128);
    ASSERT_TRUE(dec.has_value()) << "trial " << trial;
    ASSERT_EQ(dec->size(), truth.size()) << "trial " << trial;
    for (const auto& item : *dec) EXPECT_EQ(item.count, truth[item.key]);
  }
}

TEST(PowerSum, WordsIsTwiceCapacity) {
  EXPECT_EQ(PowerSumSketch(6).words(), 12u);
}

}  // namespace
}  // namespace kc::sketch
