// Tests of the engine layer: every pipeline registered in
// kc::engine::registry() must run by name on a small
// clustered-with-outliers instance and produce a validated result — a
// solution within its certified quality bound, and (for weight-preserving
// summaries) the coreset sandwich of Definition 1 via core/verify.hpp.
// Registering a broken pipeline, or adding a pipeline without registering
// it (the catalogue test pins the expected names), fails here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "core/cost.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
#include "engine/registry.hpp"
#include "test_support.hpp"
#include "workload/adversarial.hpp"

namespace kc::engine {
namespace {

/// One small clustered-with-outliers configuration shared by every
/// pipeline (700 points, 3 clusters, 8 outliers, d=2).
PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.k = 3;
  cfg.z = 8;
  cfg.eps = 0.5;
  cfg.dim = 2;
  cfg.seed = 4242;
  cfg.machines = 6;
  cfg.partition_seed = 17;
  cfg.rounds = 2;
  cfg.delta = 1 << 10;
  return cfg;
}

constexpr std::size_t kSmallN = 700;

class EnginePipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EnginePipelineTest, RunsByNameAndValidates) {
  const std::string name = GetParam();
  ASSERT_TRUE(registry().contains(name));
  const auto pipeline = registry().make(name);
  ASSERT_NE(pipeline, nullptr);
  EXPECT_EQ(pipeline->name(), name);
  EXPECT_FALSE(pipeline->description().empty());

  const PipelineConfig cfg = small_config();
  const Metric metric = cfg.metric();
  const Workload w = make_workload(kSmallN, cfg);
  const PipelineResult res = pipeline->execute(w, cfg);
  const auto& r = res.report;

  // Identification fields are stamped by execute().
  EXPECT_EQ(r.pipeline, name);
  EXPECT_EQ(r.model, pipeline->model());
  EXPECT_EQ(r.n, kSmallN);
  EXPECT_EQ(r.k, cfg.k);
  EXPECT_EQ(r.z, cfg.z);
  EXPECT_EQ(r.coreset_size, res.coreset.size());
  EXPECT_GT(r.words, 0u);

  // Every pipeline must extract a usable solution on this instance.
  ASSERT_FALSE(res.solution.centers.empty());
  EXPECT_LE(static_cast<int>(res.solution.centers.size()), cfg.k);
  EXPECT_GT(r.radius, 0.0);

  // Radius vs the direct solve on the pipeline's own ground-truth set
  // (with_direct_solve is on by default), within the certified bound.
  EXPECT_GT(r.radius_direct, 0.0);
  EXPECT_LE(r.quality, pipeline->quality_bound());

  // Radius vs the planted optimum bracket.  The dynamic pipeline evaluates
  // in grid coordinates, where the planted bracket does not apply.
  if (name != "dynamic") {
    EXPECT_LE(r.radius, pipeline->quality_bound() * w.planted.opt_hi + 1e-9);
  }

  if (res.coreset.empty() || !pipeline->preserves_weight()) return;

  // Definition-2 weight preservation: the summary accounts for every
  // (unit-weight) input point.
  EXPECT_EQ(total_weight(res.coreset), static_cast<std::int64_t>(kSmallN));

  // Coreset sandwich (Definition 1(2) via core/verify.hpp): a solution
  // feasible on the coreset, expanded by the covering slack, stays
  // feasible on the original set.
  if (name == "dynamic") {
    // Grid space: cell centers displace live points by ≤ (√d/2)·cell_side.
    const double cell_side = r.get("cell_side");
    ASSERT_GT(cell_side, 0.0);
    const double slack = std::sqrt(static_cast<double>(cfg.dim)) * cell_side;
    WeightedSet live;
    for (const auto& g : discretize(w.planted.points, cfg.delta))
      live.push_back({g.to_point(), 1});
    const Solution on_core =
        solve_kcenter_outliers(res.coreset, cfg.k, cfg.z, metric);
    EXPECT_TRUE(check_expansion_property(live, res.coreset, on_core.centers,
                                         on_core.radius, slack, cfg.z,
                                         metric));
  } else {
    // Composed coverings stay within a few ε of opt ≤ opt_hi (2ε+ε² for
    // the 2-round recompression, (1+ε)^R−1 for R rounds, ε elsewhere);
    // 4ε·opt_hi bounds them all at ε = 0.5, R = 2.
    const double slack = 4.0 * cfg.eps * w.planted.opt_hi;
    const Solution on_core =
        solve_kcenter_outliers(res.coreset, cfg.k, cfg.z, metric);
    EXPECT_TRUE(check_expansion_property(w.planted.points, res.coreset,
                                         on_core.centers, on_core.radius,
                                         slack, cfg.z, metric));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EnginePipelineTest, ::testing::ValuesIn(registry().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Robustness sweep: every registered pipeline must survive every
// adversarial workload generator (outlier burst, near-duplicate flood,
// heavy-tailed cluster masses) and stay within its certified quality bound
// against the scenario's still-certified planted bracket.
TEST_P(EnginePipelineTest, SurvivesAdversarialWorkloads) {
  const std::string name = GetParam();
  const auto pipeline = registry().make(name);
  const PipelineConfig cfg = small_config();
  for (const auto& scenario : adversarial_scenarios()) {
    SCOPED_TRACE(scenario.name);
    Workload w;
    w.planted =
        scenario.make(kSmallN, cfg.k, cfg.z, cfg.dim, cfg.norm, cfg.seed);
    w.order = shuffled_order(w.n(), cfg.seed + 1);
    const PipelineResult res = pipeline->execute(w, cfg);
    const auto& r = res.report;

    ASSERT_FALSE(res.solution.centers.empty());
    EXPECT_LE(static_cast<int>(res.solution.centers.size()), cfg.k);
    EXPECT_GT(r.radius, 0.0);
    EXPECT_LE(r.quality, pipeline->quality_bound());
    if (name != "dynamic") {
      EXPECT_LE(r.radius, pipeline->quality_bound() * w.planted.opt_hi + 1e-9);
    }
    if (!res.coreset.empty() && pipeline->preserves_weight()) {
      EXPECT_EQ(total_weight(res.coreset),
                static_cast<std::int64_t>(kSmallN));
    }
  }
}

TEST(AdversarialGenerators, BracketsStayCertified) {
  // The scenario families keep the certified optimum bracket structure:
  // outliers stay declared, opt_lo ≤ opt_hi, and the heavy tail plants its
  // exact mass split.
  for (const auto& scenario : adversarial_scenarios()) {
    SCOPED_TRACE(scenario.name);
    const PlantedInstance inst =
        scenario.make(500, 4, 10, 2, Norm::L2, 7);
    EXPECT_EQ(inst.points.size(), 500u);
    EXPECT_EQ(inst.outlier_indices.size(), 10u);
    EXPECT_GT(inst.opt_lo, 0.0);
    EXPECT_LE(inst.opt_lo, inst.opt_hi * (1.0 + 1e-12));
  }
  // Burst: the z outliers form one clump of diameter ≤ 2R.
  const PlantedInstance burst = make_outlier_burst(500, 4, 10, 2, Norm::L2, 7);
  const Metric metric{Norm::L2};
  double diam = 0.0;
  for (std::size_t a : burst.outlier_indices)
    for (std::size_t b : burst.outlier_indices)
      diam = std::max(diam, metric.dist(burst.points[a].p, burst.points[b].p));
  EXPECT_LE(diam, 2.0 * burst.config.cluster_radius + 1e-12);
  // Heavy tail: first cluster dominates (more than a third of all mass).
  const PlantedInstance heavy = make_heavy_tailed(600, 4, 10, 2, Norm::L2, 7);
  EXPECT_GT(heavy.config.cluster_sizes[0], (600 - 10) / 3u);
}

TEST(EngineRegistry, CatalogueCoversEveryModel) {
  // The full Table-1 cast must be registered; adding a pipeline to the
  // engine without registering it (or renaming one silently) fails here.
  const auto names = registry().names();
  const std::set<std::string> expected{
      "offline",        "mpc-2round",  "mpc-1round",       "mpc-rround",
      "mpc-ceccarello", "mpc-guha",    "stream-insertion", "stream-mk",
      "stream-sliding", "dynamic"};
  for (const auto& name : expected)
    EXPECT_TRUE(registry().contains(name)) << name;
  EXPECT_GE(names.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  std::set<std::string> models;
  for (const auto& name : names) models.insert(registry().make(name)->model());
  EXPECT_EQ(models,
            (std::set<std::string>{"offline", "mpc", "stream", "dynamic"}));
}

TEST(EngineRegistry, UnknownNameIsAbsent) {
  EXPECT_FALSE(registry().contains("no-such-pipeline"));
}

TEST(EngineWorkload, MakeWorkloadIsDeterministic) {
  const PipelineConfig cfg = small_config();
  const Workload a = make_workload(300, cfg);
  const Workload b = make_workload(300, cfg);
  ASSERT_EQ(a.n(), 300u);
  ASSERT_EQ(a.order.size(), 300u);
  EXPECT_EQ(a.order, b.order);
  ASSERT_EQ(b.n(), a.n());
  for (std::size_t i = 0; i < a.n(); ++i) {
    EXPECT_EQ(a.planted.points[i].w, b.planted.points[i].w);
    EXPECT_EQ(a.planted.points[i].p.coords().size(),
              b.planted.points[i].p.coords().size());
    for (int d = 0; d < cfg.dim; ++d)
      EXPECT_DOUBLE_EQ(a.planted.points[i].p[d], b.planted.points[i].p[d]);
  }
}

TEST(EngineReport, ExtraKeyValueRoundTrip) {
  PipelineReport r;
  EXPECT_DOUBLE_EQ(r.get("missing", -3.0), -3.0);
  r.set("alpha", 1.5);
  r.set("beta", 2.0);
  r.set("alpha", 2.5);  // overwrite, no duplicate key
  EXPECT_DOUBLE_EQ(r.get("alpha"), 2.5);
  EXPECT_DOUBLE_EQ(r.get("beta"), 2.0);
  EXPECT_EQ(r.extra.size(), 2u);
  // json_fields carries the common fields plus both extras.
  const auto fields = r.json_fields();
  EXPECT_GE(fields.size(), 15u + 2u);
}

TEST(EngineConfig, ExtractionCanBeDisabled) {
  // Storage-shape-only consumers skip the extraction tail entirely.
  PipelineConfig cfg = small_config();
  cfg.with_extraction = false;
  const Workload w = make_workload(200, cfg);
  const PipelineResult res = run("mpc-2round", w, cfg);
  EXPECT_FALSE(res.coreset.empty());           // summary still built
  EXPECT_TRUE(res.solution.centers.empty());   // …but nothing extracted
  EXPECT_DOUBLE_EQ(res.report.radius, 0.0);
  EXPECT_GT(res.report.words, 0u);
}

TEST(EngineWorkload, DirectSolveIsMemoizedAcrossRuns) {
  // Two pipelines on one workload share the direct solve on the planted
  // points (the CLI's --pipeline all path pays for it once).
  PipelineConfig cfg = small_config();
  const Workload w = make_workload(300, cfg);
  const PipelineResult a = run("offline", w, cfg);
  const PipelineResult b = run("mpc-2round", w, cfg);
  EXPECT_GT(a.report.radius_direct, 0.0);
  EXPECT_DOUBLE_EQ(a.report.radius_direct, b.report.radius_direct);
  ASSERT_NE(w.direct_cache, nullptr);
  EXPECT_EQ(w.direct_cache->entries.size(), 1u);
  // The second run hit the cache: it never timed a direct solve.
  EXPECT_DOUBLE_EQ(b.report.get("direct_ms", -1.0), -1.0);
}

TEST(EngineConfig, SameWorkloadDrivesDifferentMetrics) {
  // The same instance runs under every built-in norm through the offline
  // pipeline (the CLI's --norm path).
  for (const Norm norm : {Norm::L2, Norm::L1, Norm::Linf}) {
    PipelineConfig cfg = small_config();
    cfg.norm = norm;
    const Workload w = make_workload(200, cfg);
    const PipelineResult res = run("offline", w, cfg);
    EXPECT_GT(res.report.radius, 0.0) << cfg.metric().name();
    EXPECT_FALSE(res.coreset.empty()) << cfg.metric().name();
  }
}

}  // namespace
}  // namespace kc::engine
