// Transport layer: wire round-trips, the process backend's physical
// delivery path, and the backend-differential guarantee — every MPC
// pipeline's report (minus wire/timing extras) is byte-identical between
// the local and the forked-worker backend, healthy or under injected
// faults at every recovery policy.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "engine/pipeline.hpp"
#include "engine/registry.hpp"
#include "mpc/message.hpp"
#include "mpc/transport.hpp"
#include "mpc/wire.hpp"
#include "test_support.hpp"

namespace kc::mpc {
namespace {

Message make_message(int from, int to, std::size_t n_scalars,
                     std::size_t rows, int dim) {
  Message msg;
  msg.from = from;
  msg.to = to;
  for (std::size_t i = 0; i < n_scalars; ++i)
    msg.scalars.push_back(0.5 * static_cast<double>(i) - 3.0);
  if (rows > 0) {
    WeightedSet pts;
    for (std::size_t i = 0; i < rows; ++i) {
      Point p(dim);
      for (int j = 0; j < dim; ++j)
        p[j] = static_cast<double>(i) * 1.25 + static_cast<double>(j) / 7.0;
      pts.push_back({std::move(p), static_cast<std::int64_t>(i % 5 + 1)});
    }
    msg.payload = PointPayload(pts);
  }
  return msg;
}

void expect_same_message(const Message& a, const Message& b) {
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.to, b.to);
  EXPECT_EQ(a.scalars, b.scalars);
  EXPECT_EQ(a.payload.size(), b.payload.size());
  EXPECT_EQ(a.payload.full_size(), b.payload.full_size());
  EXPECT_EQ(a.payload.weights(), b.payload.weights());
  const auto& ca = a.payload.coords();
  const auto& cb = b.payload.coords();
  ASSERT_EQ(ca.size(), cb.size());
  if (ca.size() > 0) {
    ASSERT_EQ(ca.dim(), cb.dim());
    for (int j = 0; j < ca.dim(); ++j)
      for (std::size_t i = 0; i < ca.size(); ++i)
        // Bit-exact: host-endian memcpy on both sides of the frame.
        EXPECT_EQ(ca.col(j)[i], cb.col(j)[i]) << "row " << i << " col " << j;
  }
}

// ---------------------------------------------------------------------------
// Wire frames.
// ---------------------------------------------------------------------------

TEST(Wire, RoundTripsAcrossShapes) {
  // Empty, scalars-only, single row, and sizes straddling SIMD lane
  // boundaries (the SoA columns cross the wire as contiguous runs).
  const struct {
    std::size_t scalars, rows;
    int dim;
  } shapes[] = {{0, 0, 1}, {3, 0, 1},  {0, 1, 2},  {2, 1, 7},
                {0, 5, 3}, {11, 7, 2}, {1, 9, 4}, {4, 16, 3}};
  for (const auto& sh : shapes) {
    const Message msg = make_message(2, 0, sh.scalars, sh.rows, sh.dim);
    const std::vector<std::uint8_t> frame = wire::encode(msg);
    EXPECT_EQ(frame.size(), wire::encoded_size(msg));
    Message back;
    ASSERT_EQ(wire::decode(frame.data(), frame.size(), &back),
              wire::DecodeStatus::Ok)
        << sh.scalars << " scalars, " << sh.rows << " rows, dim " << sh.dim;
    expect_same_message(msg, back);
  }
}

TEST(Wire, TruncatedPayloadKeepsItsCutTail) {
  Message msg = make_message(1, 0, 0, 6, 2);
  msg.payload.truncate_to(2);
  const std::int64_t cut_before = msg.payload.cut_weight();
  ASSERT_GT(cut_before, 0);

  const auto frame = wire::encode(msg);
  Message back;
  ASSERT_EQ(wire::decode(frame.data(), frame.size(), &back),
            wire::DecodeStatus::Ok);
  // Full rows travel; the delivered prefix and the cut-weight accounting
  // both survive the crossing.
  EXPECT_EQ(back.payload.size(), 2u);
  EXPECT_EQ(back.payload.full_size(), 6u);
  EXPECT_TRUE(back.payload.truncated());
  EXPECT_EQ(back.payload.cut_weight(), cut_before);
}

TEST(Wire, RejectsShortFrames) {
  const Message msg = make_message(0, 1, 4, 3, 2);
  const auto frame = wire::encode(msg);
  Message out;
  // Every proper prefix is Truncated (too short for the header) or — once
  // the header is readable but the body is short — also Truncated; never
  // Ok, never a crash.
  for (std::size_t len = 0; len < frame.size(); ++len)
    ASSERT_EQ(wire::decode(frame.data(), len, &out),
              wire::DecodeStatus::Truncated)
        << "prefix length " << len;
}

TEST(Wire, RejectsFlippedBytes) {
  const Message msg = make_message(0, 1, 2, 4, 3);
  const auto frame = wire::encode(msg);
  Message out;
  // Flip one byte at a time: decode must never silently accept.  (A flip
  // in a length field can masquerade as a short frame — Truncated — but
  // most land on the checksum: Corrupt.)
  for (std::size_t i = 0; i < frame.size(); i += 7) {
    auto bad = frame;
    bad[i] ^= 0x40u;
    ASSERT_NE(wire::decode(bad.data(), bad.size(), &out),
              wire::DecodeStatus::Ok)
        << "flipped byte " << i;
  }
}

TEST(Wire, RejectsTrailingBytes) {
  const Message msg = make_message(0, 1, 2, 0, 1);
  auto frame = wire::encode(msg);
  frame.push_back(0);  // longer than the header claims → framing bug
  Message out;
  EXPECT_EQ(wire::decode(frame.data(), frame.size(), &out),
            wire::DecodeStatus::Corrupt);
}

// ---------------------------------------------------------------------------
// Backends.
// ---------------------------------------------------------------------------

TEST(LocalTransport, PassesThroughWithZeroWireBytes) {
  LocalTransport t;
  t.open(3, 2);
  Message msg = make_message(1, 0, 2, 3, 2);
  const Message copy = msg;
  Delivery d = t.deliver(std::move(msg));
  EXPECT_EQ(d.status, DeliveryStatus::Delivered);
  expect_same_message(copy, d.msg);
  t.end_round();
  EXPECT_EQ(t.wire().bytes, 0u);
  EXPECT_EQ(t.wire().frames, 0u);
}

TEST(ProcessTransport, DeliversThroughWorkerEchoes) {
  ProcessTransport t;
  t.open(4, 3);
  ASSERT_EQ(t.workers(), 4);
  for (int id = 0; id < 4; ++id) EXPECT_TRUE(t.worker_alive(id));

  const Message msg = make_message(2, 1, 3, 8, 3);
  const std::size_t frame_bytes = wire::encoded_size(msg);
  Delivery d = t.deliver(Message(msg));
  ASSERT_EQ(d.status, DeliveryStatus::Delivered);
  // The delivered message is the one reconstructed from the echoed wire
  // bytes — serialization is on the result path.
  expect_same_message(msg, d.msg);
  EXPECT_GE(t.wire().bytes, frame_bytes);
  EXPECT_EQ(t.wire().frames, 1u);
  t.end_round();
  ASSERT_EQ(t.wire().bytes_per_round.size(), 1u);
  EXPECT_EQ(t.wire().bytes_per_round[0], t.wire().bytes);
  t.close_all();
  for (int id = 0; id < 4; ++id) EXPECT_FALSE(t.worker_alive(id));
}

TEST(ProcessTransport, LostWorkerSurfacesAsWorkerLost) {
  ProcessTransport t;
  t.open(3, 2);
  t.kill_worker(1);  // socket stays registered: next send sees real EOF
  Delivery d = t.deliver(make_message(0, 1, 1, 2, 2));
  EXPECT_EQ(d.status, DeliveryStatus::WorkerLost);
  EXPECT_FALSE(t.worker_alive(1));
  EXPECT_EQ(t.wire().worker_failures, 1);
  // Other endpoints are unaffected.
  Delivery ok = t.deliver(make_message(0, 2, 1, 2, 2));
  EXPECT_EQ(ok.status, DeliveryStatus::Delivered);
  // Deliveries to a known-dead endpoint fail fast, and teardown with a
  // dead worker in the set stays clean (ASan leg exercises this dtor).
  Delivery again = t.deliver(make_message(2, 1, 1, 0, 2));
  EXPECT_EQ(again.status, DeliveryStatus::WorkerLost);
}

TEST(ProcessTransport, OpenIsIdempotentForMatchingTopology) {
  ProcessTransport t;
  t.open(2, 2);
  const int workers_before = t.workers();
  t.open(2, 2);  // the simulator's constructor re-open
  EXPECT_EQ(t.workers(), workers_before);
}

// ---------------------------------------------------------------------------
// Backend differential: process == local, healthy and under chaos.
// ---------------------------------------------------------------------------

bool is_backend_varying(const std::string& key) {
  // Measured traffic and wall-clock extras legitimately differ across
  // backends; every other report field must match byte-for-byte.
  return key.rfind("wire_", 0) == 0 || key == "route_ms" ||
         key == "map_ms" || key == "eval_ms" || key == "direct_ms";
}

void expect_same_report(const engine::PipelineReport& a,
                        const engine::PipelineReport& b) {
  EXPECT_EQ(a.coreset_size, b.coreset_size);
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.comm_words, b.comm_words);
  EXPECT_EQ(a.radius, b.radius);  // bit-exact, not approximate
  EXPECT_EQ(a.radius_direct, b.radius_direct);
  EXPECT_EQ(a.quality, b.quality);
  for (const auto& [key, value] : a.extra) {
    if (is_backend_varying(key)) continue;
    EXPECT_EQ(value, b.get(key, std::nan(""))) << "extra '" << key << "'";
  }
  for (const auto& [key, value] : b.extra) {
    if (is_backend_varying(key)) continue;
    EXPECT_EQ(value, a.get(key, std::nan(""))) << "extra '" << key << "'";
  }
}

struct DiffCase {
  std::string pipeline;
  bool chaos;
  RecoveryPolicy policy;

  [[nodiscard]] std::string name() const {
    std::string out = pipeline;
    for (auto& c : out)
      if (c == '-') c = '_';
    return out + (chaos ? std::string("_chaos_") + to_string(policy)
                        : std::string("_healthy"));
  }
};

class BackendDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(BackendDifferentialTest, ProcessMatchesLocalByteForByte) {
  const DiffCase& param = GetParam();
  engine::PipelineConfig cfg;
  cfg.k = 3;
  cfg.z = 8;
  cfg.eps = 0.5;
  cfg.dim = 2;
  cfg.seed = 4242;
  cfg.machines = 5;
  cfg.partition_seed = 17;
  cfg.rounds = 2;
  if (param.chaos) {
    cfg.fault_seed = 99;
    cfg.fault_crash = 0.2;
    cfg.fault_drop = 0.1;
    cfg.fault_truncate = 0.05;
    cfg.fault_policy = param.policy;
  }
  const engine::Workload w = engine::make_workload(650, cfg);
  const auto pipeline = engine::registry().make(param.pipeline);

  cfg.backend = Backend::Local;
  const engine::PipelineResult local = pipeline->execute(w, cfg);
  cfg.backend = Backend::Process;
  const engine::PipelineResult process = pipeline->execute(w, cfg);

  expect_same_report(local.report, process.report);

  // The process run measured real traffic, consistent with the model's
  // words accounting (comm_words at 8 bytes/word, ratio in (0, 2]).
  EXPECT_EQ(local.report.get("wire_bytes"), 0.0);
  if (process.report.comm_words > 0) {
    EXPECT_GT(process.report.get("wire_bytes"), 0.0);
    const double ratio = process.report.get("wire_ratio");
    EXPECT_GT(ratio, 0.0);
    EXPECT_LE(ratio, 2.0);
  }
}

std::vector<DiffCase> differential_cases() {
  std::vector<DiffCase> cases;
  for (const auto& name : engine::registry().names()) {
    if (engine::registry().make(name)->model() != "mpc") continue;
    cases.push_back({name, false, RecoveryPolicy::Retry});
    for (auto policy : {RecoveryPolicy::Retry, RecoveryPolicy::Reassign,
                        RecoveryPolicy::Degrade})
      cases.push_back({name, true, policy});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMpcPipelines, BackendDifferentialTest,
                         ::testing::ValuesIn(differential_cases()),
                         [](const auto& info) { return info.param.name(); });

}  // namespace
}  // namespace kc::mpc
