// Numeric verification of the lower-bound constructions (Figures 2–8):
// Claims 13, 14/38, Lemma 41 for the insertion-only instance; Lemma 15's
// line instance; the Δ′ ≤ Δ and ratio claims of Theorem 28; the σ′ ≤ σ and
// Claim-31 quantities of Theorem 30.

#include <gtest/gtest.h>

#include <cmath>

#include "core/brute_force.hpp"
#include "geometry/box.hpp"
#include "core/cost.hpp"
#include "lowerbound/dynamic_lb.hpp"
#include "lowerbound/insertion_lb.hpp"
#include "lowerbound/sliding_lb.hpp"

namespace kc::lowerbound {
namespace {

const Metric kL2{Norm::L2};
const Metric kLinf{Norm::Linf};

TEST(InsertionLb, DerivedQuantities) {
  InsertionLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 3;
  const auto lb = make_insertion_lb(cfg);
  // Default ε = 1/(8d) = 1/16 → λ = 1/(4dε) = 2.
  EXPECT_EQ(lb.lambda, 2.0);
  EXPECT_DOUBLE_EQ(lb.h, 2.0 * (2 + 2) / 2.0);  // d(λ+2)/2 = 4
  EXPECT_DOUBLE_EQ(lb.r, std::sqrt(16.0 - 8.0 + 2.0));
  EXPECT_EQ(lb.clusters, 5 - 4 + 1);
  EXPECT_EQ(lb.cluster_size, 9u);  // (λ+1)² = 9
  EXPECT_EQ(lb.points.size(), 3u + 2u * 9u);
}

TEST(InsertionLb, Lemma41Inequality) {
  for (int d : {1, 2, 3}) {
    InsertionLbConfig cfg;
    cfg.dim = d;
    cfg.k = 2 * d + 1;
    cfg.z = 2;
    const auto lb = make_insertion_lb(cfg);
    EXPECT_TRUE(lb.lemma41_holds()) << "d=" << d;
  }
  // Smaller ε (larger λ) must also satisfy it.
  InsertionLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 1;
  cfg.eps = 1.0 / 64.0;
  const auto lb = make_insertion_lb(cfg);
  EXPECT_TRUE(lb.lemma41_holds());
}

TEST(InsertionLb, Claim38WitnessCover) {
  // The 2d balls of radius r at the witness centers cover the cluster of
  // p* plus P⁺ ∪ P⁻, except p* itself.
  InsertionLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 2;
  const auto lb = make_insertion_lb(cfg);
  // Pick p* = an interior grid point of cluster 0 (not the one at origin,
  // to exercise asymmetry).
  const std::size_t c0 = lb.cluster_offsets[0];
  for (std::size_t off = 0; off < lb.cluster_size; ++off) {
    const Point p_star = lb.points[c0 + off];
    const PointSet centers = lb.witness_centers(p_star);
    const WeightedSet continuation = lb.continuation(p_star);

    // Every cluster-0 point except p* is within r of some witness center.
    for (std::size_t i = 0; i < lb.cluster_size; ++i) {
      const Point& q = lb.points[c0 + i];
      if (q == p_star) continue;
      double best = 1e300;
      for (const auto& c : centers) best = std::min(best, kL2.dist(q, c));
      EXPECT_LE(best, lb.r + 1e-9) << "grid point " << i << " p* " << off;
    }
    // And the P± points are at distance exactly r from their centers.
    for (const auto& wp : continuation) {
      double best = 1e300;
      for (const auto& c : centers) best = std::min(best, kL2.dist(wp.p, c));
      EXPECT_LE(best, lb.r + 1e-9);
    }
  }
}

TEST(InsertionLb, Claim13OptAfterContinuationIsLarge) {
  // optk,z(P(t')) ≥ (h+r)/2: verified via the witness set X of k+z+1
  // pairwise-far points (one per other cluster + p* + P± + outliers).
  InsertionLbConfig cfg;
  cfg.dim = 1;  // keep brute force cheap
  cfg.k = 3;
  cfg.z = 2;
  const auto lb = make_insertion_lb(cfg);
  const Point p_star = lb.points[lb.cluster_offsets[0]];
  const WeightedSet cont = lb.continuation(p_star);

  PointSet witness;
  witness.push_back(p_star);
  for (const auto& wp : cont) witness.push_back(wp.p);
  for (int c = 1; c < lb.clusters; ++c)
    witness.push_back(lb.points[lb.cluster_offsets[static_cast<std::size_t>(c)]]);
  for (auto idx : lb.outlier_indices) witness.push_back(lb.points[idx]);
  ASSERT_GE(witness.size(),
            static_cast<std::size_t>(cfg.k) + static_cast<std::size_t>(cfg.z) + 1);
  // Pairwise distances ≥ h+r ⇒ optk,z ≥ (h+r)/2.
  for (std::size_t i = 0; i < witness.size(); ++i)
    for (std::size_t j = i + 1; j < witness.size(); ++j)
      EXPECT_GE(kL2.dist(witness[i], witness[j]), lb.h + lb.r - 1e-9);
}

TEST(InsertionLb, Claim14CoresetWithoutPStarUnderestimates) {
  // Dropping p* lets k balls of radius r cover everything the coreset
  // retains: verified by evaluating the explicit cover of the proof.
  InsertionLbConfig cfg;
  cfg.dim = 1;
  cfg.k = 3;
  cfg.z = 1;
  const auto lb = make_insertion_lb(cfg);
  const std::size_t c0 = lb.cluster_offsets[0];
  const Point p_star = lb.points[c0 + 1];  // middle of cluster 0 (λ = 2)

  // Coreset = P(t') minus p*, weights 1 (P± weight 2).
  WeightedSet coreset;
  for (std::size_t i = 0; i < lb.points.size(); ++i)
    if (!(lb.points[i] == p_star)) coreset.push_back({lb.points[i], 1});
  for (const auto& wp : lb.continuation(p_star)) coreset.push_back(wp);

  // The proof's cover: witness centers (2d balls of radius r) for cluster
  // 0 ∪ P±, one ball per other cluster; outliers are the z outliers.
  PointSet centers = lb.witness_centers(p_star);
  for (int c = 1; c < lb.clusters; ++c) {
    // Center of cluster c: offset grid by λ/2.
    Point mid = lb.points[lb.cluster_offsets[static_cast<std::size_t>(c)]];
    mid[0] += lb.lambda / 2.0;
    centers.push_back(mid);
  }
  ASSERT_LE(centers.size(), static_cast<std::size_t>(cfg.k) + 2u * 1u);
  // k = 2d + (k−2d) balls in the proof; evaluate with the full center set
  // (2d + clusters−1 = 2+2 = … ≤ k+1 — use radius_with_outliers on exactly
  // these centers and budget z).
  const double r_est = radius_with_outliers(coreset, centers, cfg.z, kL2);
  EXPECT_LE(r_est, lb.r + 1e-9);
  // And the contradiction: r < (1−ε)(h+r)/2 (Lemma 41 chain).
  EXPECT_LT(lb.r, (1.0 - lb.config.eps) * (lb.h + lb.r) / 2.0);
}

TEST(OmegaZLb, LineInstanceProperties) {
  const auto lb = make_omega_z_lb(3, 4);
  ASSERT_EQ(lb.points.size(), 7u);
  // After the next point arrives, the continuous optimum is 1/2 (one ball
  // straddles two unit-spaced points); with centers restricted to input
  // points (our brute force) the optimum is exactly 1.
  WeightedSet all = with_unit_weights(lb.points);
  all.push_back({lb.next, 1});
  const double opt = brute_force_radius(all, 3, 4, kL2);
  EXPECT_DOUBLE_EQ(opt, 1.0);
  // A coreset missing any point p_i* admits a radius-0 solution.
  for (std::size_t drop = 0; drop < lb.points.size(); ++drop) {
    WeightedSet coreset;
    for (std::size_t i = 0; i < lb.points.size(); ++i)
      if (i != drop) coreset.push_back({lb.points[i], 1});
    coreset.push_back({lb.next, 1});
    EXPECT_DOUBLE_EQ(brute_force_radius(coreset, 3, 4, kL2), 0.0);
  }
}

TEST(DynamicLb, StructureAndSpan) {
  DynamicLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 2;
  cfg.delta = 1 << 12;
  const auto lb = make_dynamic_lb(cfg);
  EXPECT_EQ(lb.groups, 4);  // ½·12 − 2
  EXPECT_EQ(lb.clusters, 2);
  // Each group has (λ+1)^d − (λ/2+1)^d points, λ = 2 → 9 − 4 = 5.
  std::size_t per_group = 0;
  for (std::size_t i = 0; i < lb.points.size(); ++i)
    if (lb.group_of[i] == 1 && lb.cluster_of[i] == 0) ++per_group;
  EXPECT_EQ(per_group, 5u);
  // Total non-outlier points = clusters · groups · 5.
  EXPECT_EQ(lb.points.size(),
            static_cast<std::size_t>(cfg.z) +
                static_cast<std::size_t>(lb.clusters) *
                    static_cast<std::size_t>(lb.groups) * per_group);
  EXPECT_GT(lb.coordinate_span(), 0.0);
}

TEST(DynamicLb, SpanWithinDeltaWhenDeltaLargeEnough) {
  DynamicLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 2;
  // Paper requires Δ ≥ ((2k+z)(1/(4ε)+d))²: with ε=1/16, that is
  // (12·(4+2))² = 5184 → Δ = 2^13 = 8192.
  cfg.delta = 1 << 13;
  const auto lb = make_dynamic_lb(cfg);
  EXPECT_LE(lb.coordinate_span(), static_cast<double>(cfg.delta));
}

TEST(DynamicLb, ContinuationRatioAtScale) {
  // At scale m*, the Claim-29 chain: witness cover of radius 2^{m*}·r for
  // the coreset-without-p*, versus pairwise separation 2^{m*}(h+r) for the
  // witness set — ratio identical to the insertion-only case.
  DynamicLbConfig cfg;
  cfg.dim = 1;
  cfg.k = 3;
  cfg.z = 1;
  cfg.delta = 1 << 13;
  const auto lb = make_dynamic_lb(cfg);
  const int m_star = 2;
  // p* = first point of cluster 0 at scale m*.
  Point p_star(1);
  bool found = false;
  for (std::size_t i = 0; i < lb.points.size(); ++i) {
    if (lb.group_of[i] == m_star && lb.cluster_of[i] == 0) {
      p_star = lb.points[i];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const double scale = std::pow(2.0, m_star);

  // Remaining points after deletions + continuation, minus p*.
  WeightedSet coreset;
  for (const auto& p : lb.after_deletions(m_star))
    if (!(p == p_star)) coreset.push_back({p, 1});
  for (const auto& wp : lb.continuation(p_star, m_star)) coreset.push_back(wp);

  PointSet centers = lb.witness_centers(p_star, m_star);
  // One generous ball per other cluster (center at the cluster's points'
  // mean — any interior point works since cluster extent ≤ λ·2^{m*}).
  for (int c = 1; c < lb.clusters; ++c) {
    Point any(1);
    for (std::size_t i = 0; i < lb.points.size(); ++i)
      if (lb.cluster_of[i] == c && lb.group_of[i] <= m_star) {
        any = lb.points[i];
        break;
      }
    centers.push_back(any);
  }
  const double r_est = radius_with_outliers(coreset, centers, cfg.z, kL2);
  // Cover radius ≤ 2^{m*}·r for cluster 0 ∪ P±; other clusters need their
  // own extent ≤ λ·2^{m*} ≤ 2^{m*}·r (λ=2 < r for d=1? r=√(h²−2h+1), λ=2,
  // h=1.5 → r=0.5 < λ… so allow the cluster-extent term).
  const double lam_extent = lb.lambda * scale;
  EXPECT_LE(r_est, std::max(scale * lb.r, lam_extent) + 1e-9);
}

TEST(SlidingLb, StructureCounts) {
  SlidingLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 4;
  cfg.sigma = 1 << 10;
  const auto lb = make_sliding_lb(cfg);
  EXPECT_EQ(lb.lambda, 3);  // 1/(8·1/24) = 3, odd
  EXPECT_EQ(lb.groups, 4);  // ½·10 − 1
  EXPECT_EQ(lb.zeta, 2);    // ⌊√4⌋
  EXPECT_EQ(lb.subgroups, 9 - 4);  // λ² − ((λ+1)/2)²
  // Points: clusters(2) · groups(4) · subgroups(5) · (z+1)(5).
  EXPECT_EQ(lb.points.size(), 2u * 4u * 5u * 5u);
}

TEST(SlidingLb, ArrivalOrderDecreasingGroups) {
  SlidingLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 4;
  cfg.sigma = 1 << 10;
  const auto lb = make_sliding_lb(cfg);
  for (std::size_t i = 1; i < lb.tags.size(); ++i)
    EXPECT_LE(lb.tags[i].group, lb.tags[i - 1].group);
}

TEST(SlidingLb, SpreadWithinSigma) {
  SlidingLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 4;
  // σ ≥ (kz/ε)² = (5·4·24)² ≈ 2.3e5 → use 2^18.
  cfg.sigma = 1 << 18;
  const auto lb = make_sliding_lb(cfg);
  EXPECT_LE(lb.spread_ratio(), cfg.sigma + 1e-6);
  EXPECT_GT(lb.spread_ratio(), 1.0);
}

TEST(SlidingLb, Claim31RatioQuantities) {
  SlidingLbConfig cfg;
  cfg.dim = 2;
  cfg.k = 5;
  cfg.z = 4;
  cfg.sigma = 1 << 12;
  const auto lb = make_sliding_lb(cfg);
  // Pick the subgroup of p*: group j*=2, subgroup ℓ*=2 of cluster 0.
  const int j_star = 2;
  PointSet subgroup;
  for (std::size_t i = 0; i < lb.points.size(); ++i)
    if (lb.tags[i].cluster == 0 && lb.tags[i].group == j_star &&
        lb.tags[i].subgroup == 2)
      subgroup.push_back(lb.points[i]);
  ASSERT_EQ(subgroup.size(), static_cast<std::size_t>(cfg.z) + 1);

  const auto adv = lb.adversarial_sets(subgroup, j_star);
  EXPECT_EQ(adv.size(), 2u * 2u * (static_cast<std::size_t>(cfg.z) + 1));

  // The adversarial sets sit at L∞ distance exactly 2^{j*}ζ·2λ from the
  // subgroup's bounding box.
  const double expected =
      std::pow(2.0, j_star) * lb.zeta * 2.0 * lb.lambda;
  double min_gap = 1e300;
  for (const auto& a : adv)
    for (const auto& s : subgroup)
      min_gap = std::min(min_gap, kLinf.dist(a, s));
  EXPECT_NEAR(min_gap, expected, 1e-6);

  // opt(t⁺) cover: one ball of radius 2^{j*}ζ(2λ−1)/2 covers the whole
  // group j* region of a cluster (diameter 2^{j*}ζ(2λ−1)).
  const double diam = std::pow(2.0, j_star) * lb.zeta * (2.0 * lb.lambda - 1);
  PointSet group_pts;
  for (std::size_t i = 0; i < lb.points.size(); ++i)
    if (lb.tags[i].cluster == 0 && lb.tags[i].group <= j_star)
      group_pts.push_back(lb.points[i]);
  const Spread sp = compute_spread(group_pts, kLinf);
  EXPECT_LE(sp.d_max, diam + 1e-9);

  // The claimed ratio: (2λ−1)/(2λ) = 1 − 4ε.
  const double ratio = (2.0 * lb.lambda - 1.0) / (2.0 * lb.lambda);
  EXPECT_NEAR(ratio, 1.0 - 4.0 * lb.config.eps, 1e-12);
  EXPECT_LT(ratio, 1.0 - 3.0 * lb.config.eps);
}

}  // namespace
}  // namespace kc::lowerbound
