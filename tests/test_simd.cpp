// Differential suite pinning the vectorized SoA kernels to the scalar
// reference paths (geometry/kernels.hpp, geometry/point_buffer.hpp).
//
// The contract under test:
//  * float64 storage — the dimension-dispatched fused kernel bodies
//    (compute_keys_range / relax_min_keys / min_keys / first_within) are
//    BIT-IDENTICAL to both the retained column-at-a-time reference
//    (compute_keys_generic) and a freshly written AoS scalar loop, across
//    norms × dimensions (fixed-D specializations AND the generic fallback,
//    including d = 9 > Point::kMaxDim) × sizes covering SIMD lane-width
//    tails × unaligned slice offsets.
//  * float32 storage (PointBufferF) — kernels accumulate in float64, so
//    their results are EXACTLY equal to double kernels run on the
//    float-rounded coordinates, and within the documented ~2⁻²³ relative
//    bound of the unrounded float64 keys (cancellation-free queries).
//
// Sizes are chosen around the interesting boundaries: SSE/AVX lane counts
// (2/4/8 doubles), the first_within block (kFirstWithinBlock = 128), and
// ±1 off each so remainder loops execute.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "geometry/kernels.hpp"
#include "geometry/point_buffer.hpp"
#include "util/rng.hpp"

namespace kc {
namespace {

const Norm kNorms[] = {Norm::L2, Norm::Linf, Norm::L1};
const int kDims[] = {1, 2, 3, 4, 8, 9};  // 9 exercises the generic fallback
const std::size_t kSizes[] = {1,  2,  3,  5,  7,   8,   15,  16, 17,
                              31, 33, 64, 127, 128, 129, 257};

/// Row-major coordinate rows, quantized to a coarse lattice so exact ties
/// and exactly-on-the-threshold keys are common (where a sloppy
/// reimplementation diverges from the reference).
std::vector<std::vector<double>> lattice_rows(std::size_t n, int dim,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(dim));
  for (auto& row : rows)
    for (int j = 0; j < dim; ++j)
      row[j] = 0.25 * static_cast<double>(rng.uniform_int(-20, 20));
  // A few exact duplicates: guarantees ties in far-point scans.
  if (n >= 4) {
    rows[n - 1] = rows[0];
    rows[n / 2] = rows[1 % n];
  }
  return rows;
}

std::vector<double> lattice_query(int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(dim);
  for (int j = 0; j < dim; ++j)
    q[j] = 0.25 * static_cast<double>(rng.uniform_int(-20, 20));
  return q;
}

template <typename T>
kernels::BasicPointBuffer<T> pack(const std::vector<std::vector<double>>& rows,
                                  int dim) {
  kernels::BasicPointBuffer<T> buf(dim);
  buf.reserve(rows.size());
  for (const auto& row : rows) buf.append(row.data());
  return buf;
}

/// Freshly written AoS scalar key, dimension-ascending — the historical
/// reference the whole kernel layer is pinned to.
double scalar_key(Norm norm, const double* a, const double* q, int dim) {
  if (norm == Norm::L2) {
    double s = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double diff = a[j] - q[j];
      s += diff * diff;
    }
    return s;
  }
  if (norm == Norm::Linf) {
    double m = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double diff = std::fabs(a[j] - q[j]);
      if (diff > m) m = diff;
    }
    return m;
  }
  double s = 0.0;
  for (int j = 0; j < dim; ++j) s += std::fabs(a[j] - q[j]);
  return s;
}

template <Norm N, typename Buf>
void check_keys_bitwise(const Buf& buf,
                        const std::vector<std::vector<double>>& rows,
                        const std::vector<double>& q, int dim) {
  const std::size_t n = rows.size();
  std::vector<double> dispatched(n, -1.0), generic(n, -1.0);
  kernels::compute_keys<N>(buf, q.data(), dispatched.data());
  kernels::compute_keys_generic<N>(buf, q.data(), generic.data());
  for (std::size_t i = 0; i < n; ++i) {
    const double ref = scalar_key(N, rows[i].data(), q.data(), dim);
    EXPECT_EQ(dispatched[i], ref) << "dim " << dim << " n " << n << " i " << i;
    EXPECT_EQ(generic[i], ref) << "dim " << dim << " n " << n << " i " << i;
    EXPECT_EQ(buf.template key_to<N>(i, q.data()), ref);
  }
}

TEST(Simd, DispatchedKeysBitIdenticalToScalarAllDims) {
  for (const int dim : kDims) {
    for (const std::size_t n : kSizes) {
      const auto rows = lattice_rows(n, dim, 1000 + n * 10 + dim);
      const auto q = lattice_query(dim, 17 * dim + n);
      const auto buf = pack<double>(rows, dim);
      ASSERT_EQ(buf.size(), n);
      check_keys_bitwise<Norm::L2>(buf, rows, q, dim);
      check_keys_bitwise<Norm::Linf>(buf, rows, q, dim);
      check_keys_bitwise<Norm::L1>(buf, rows, q, dim);
    }
  }
}

TEST(Simd, UnalignedViewOffsetsBitIdentical) {
  const std::size_t n = 300;
  for (const int dim : kDims) {
    const auto rows = lattice_rows(n, dim, 77 + dim);
    const auto q = lattice_query(dim, 91 + dim);
    const auto buf = pack<double>(rows, dim);
    for (const std::size_t offset : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}, std::size_t{5},
                                     std::size_t{7}, std::size_t{13},
                                     std::size_t{17}, std::size_t{31}}) {
      for (const std::size_t count :
           {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{33},
            std::size_t{128}, n - offset}) {
        if (offset + count > n) continue;
        const auto view = buf.view(offset, count);
        std::vector<double> out(count, -1.0);
        kernels::compute_keys<Norm::L2>(view, q.data(), out.data());
        for (std::size_t i = 0; i < count; ++i)
          EXPECT_EQ(out[i],
                    scalar_key(Norm::L2, rows[offset + i].data(), q.data(), dim))
              << "dim " << dim << " offset " << offset << " i " << i;
        // Nested subview: rows [offset+1, offset+count) through two hops.
        if (count >= 2) {
          const auto nested = view.subview(1, count - 1);
          std::vector<double> out2(count - 1, -1.0);
          kernels::compute_keys<Norm::Linf>(nested, q.data(), out2.data());
          for (std::size_t i = 0; i + 1 < count; ++i)
            EXPECT_EQ(out2[i], scalar_key(Norm::Linf,
                                          rows[offset + 1 + i].data(),
                                          q.data(), dim));
        }
      }
    }
  }
}

TEST(Simd, RelaxMatchesScalarSweepWithTies) {
  for (const int dim : kDims) {
    for (const Norm norm : kNorms) {
      const std::size_t n = 257;
      const auto rows = lattice_rows(n, dim, 311 + dim);
      const auto buf = pack<double>(rows, dim);

      std::vector<double> keys(n, std::numeric_limits<double>::infinity());
      std::vector<double> ref_keys = keys;
      std::vector<std::uint32_t> assign(n, 0), ref_assign(n, 0);
      std::vector<double> scratch(n);

      for (std::uint32_t label = 0; label < 6; ++label) {
        const std::vector<double>& c = rows[(label * 41) % n];
        kernels::RelaxResult rr;
        switch (norm) {
          case Norm::L2:
            rr = kernels::relax_min_keys<Norm::L2>(
                buf, c.data(), label, keys.data(), assign.data(),
                scratch.data());
            break;
          case Norm::Linf:
            rr = kernels::relax_min_keys<Norm::Linf>(
                buf, c.data(), label, keys.data(), assign.data(),
                scratch.data());
            break;
          default:
            rr = kernels::relax_min_keys<Norm::L1>(
                buf, c.data(), label, keys.data(), assign.data(),
                scratch.data());
            break;
        }
        // Historical scalar sweep: branchy relax + inline first-max-wins
        // far tracking.  Duplicated rows make exact far-key ties real.
        double far_key = -1.0;
        std::size_t far_idx = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double k2 = scalar_key(norm, rows[i].data(), c.data(), dim);
          if (k2 < ref_keys[i]) {
            ref_keys[i] = k2;
            ref_assign[i] = label;
          }
          if (ref_keys[i] > far_key) {
            far_key = ref_keys[i];
            far_idx = i;
          }
        }
        EXPECT_EQ(rr.far_key, far_key) << "dim " << dim << " label " << label;
        EXPECT_EQ(rr.far_idx, far_idx) << "dim " << dim << " label " << label;
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(keys[i], ref_keys[i]) << "dim " << dim << " i " << i;
          ASSERT_EQ(assign[i], ref_assign[i]) << "dim " << dim << " i " << i;
        }
      }
    }
  }
}

TEST(Simd, MinKeysMatchesPerPointScalarMin) {
  for (const int dim : kDims) {
    const std::size_t n = 129;
    const auto rows = lattice_rows(n, dim, 53 + dim);
    const auto buf = pack<double>(rows, dim);
    const std::size_t centers[] = {0, 3, n / 2, n - 1};

    std::vector<double> keys(n, std::numeric_limits<double>::infinity());
    std::vector<double> scratch(n);
    for (const std::size_t c : centers)
      kernels::min_keys<Norm::L2>(buf, rows[c].data(), keys.data(),
                                  scratch.data());
    for (std::size_t i = 0; i < n; ++i) {
      double ref = std::numeric_limits<double>::infinity();
      for (const std::size_t c : centers) {
        const double k2 = scalar_key(Norm::L2, rows[i].data(), rows[c].data(),
                                     dim);
        if (k2 < ref) ref = k2;
      }
      EXPECT_EQ(keys[i], ref) << "dim " << dim << " i " << i;
    }
  }
}

TEST(Simd, FirstWithinMatchesScalarEarlyExitScan) {
  // Sizes straddle the kFirstWithinBlock = 128 blocking.
  for (const int dim : {2, 9}) {
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{7}, std::size_t{127}, std::size_t{128},
          std::size_t{129}, std::size_t{255}, std::size_t{256},
          std::size_t{300}}) {
      const auto rows = lattice_rows(n, dim, 600 + n + dim);
      const auto q = lattice_query(dim, 5 * n + dim);
      const auto buf = pack<double>(rows, dim);
      // Thresholds: impossible, exact key of a mid row (boundary tie,
      // `<=` must hit), just below that key, and +infinity.
      const double mid_key =
          scalar_key(Norm::L2, rows[n / 2].data(), q.data(), dim);
      const double thresholds[] = {-1.0, mid_key,
                                   std::nextafter(mid_key, -1.0),
                                   std::numeric_limits<double>::infinity()};
      for (const double t : thresholds) {
        std::size_t ref = n;
        for (std::size_t i = 0; i < n; ++i) {
          if (scalar_key(Norm::L2, rows[i].data(), q.data(), dim) <= t) {
            ref = i;
            break;
          }
        }
        EXPECT_EQ(kernels::first_within<Norm::L2>(buf, q.data(), t), ref)
            << "dim " << dim << " n " << n << " thresh " << t;
      }
    }
  }
}

TEST(Simd, FirstWithinOnSlicesMatchesScalar) {
  const std::size_t n = 300;
  const int dim = 3;
  const auto rows = lattice_rows(n, dim, 415);
  const auto q = lattice_query(dim, 416);
  const auto buf = pack<double>(rows, dim);
  for (const std::size_t offset : {std::size_t{0}, std::size_t{17}}) {
    const std::size_t count = n - 2 * offset;
    const auto view = buf.view(offset, count);
    const double t =
        scalar_key(Norm::L2, rows[offset + count / 3].data(), q.data(), dim);
    std::size_t ref = count;
    for (std::size_t i = 0; i < count; ++i) {
      if (scalar_key(Norm::L2, rows[offset + i].data(), q.data(), dim) <= t) {
        ref = i;
        break;
      }
    }
    EXPECT_EQ(kernels::first_within<Norm::L2>(view, q.data(), t), ref);
  }
}

// ---------------------------------------------------------------------------
// float32 storage mode
// ---------------------------------------------------------------------------

/// Rounds a coordinate through float32 exactly the way PointBufferF's
/// append does.
double round_f32(double x) { return static_cast<double>(static_cast<float>(x)); }

TEST(SimdF32, KernelsExactlyEqualDoubleOnRoundedCoords) {
  // float32 storage + float64 accumulation == float64 kernel over the
  // float-rounded coordinates, bit for bit: the rounding at append time is
  // the ONLY error source.
  for (const int dim : kDims) {
    const std::size_t n = 129;
    Rng rng(900 + static_cast<std::uint64_t>(dim));
    std::vector<std::vector<double>> rows(n, std::vector<double>(dim));
    std::vector<std::vector<double>> rounded = rows;
    for (std::size_t i = 0; i < n; ++i)
      for (int j = 0; j < dim; ++j) {
        rows[i][j] = rng.uniform_real(-10.0, 10.0);
        rounded[i][j] = round_f32(rows[i][j]);
      }
    const auto q = lattice_query(dim, 901 + dim);
    const auto fbuf = pack<float>(rows, dim);
    const auto dbuf = pack<double>(rounded, dim);
    std::vector<double> fkeys(n), dkeys(n);
    for (const Norm norm : kNorms) {
      switch (norm) {
        case Norm::L2:
          kernels::compute_keys<Norm::L2>(fbuf, q.data(), fkeys.data());
          kernels::compute_keys<Norm::L2>(dbuf, q.data(), dkeys.data());
          break;
        case Norm::Linf:
          kernels::compute_keys<Norm::Linf>(fbuf, q.data(), fkeys.data());
          kernels::compute_keys<Norm::Linf>(dbuf, q.data(), dkeys.data());
          break;
        default:
          kernels::compute_keys<Norm::L1>(fbuf, q.data(), fkeys.data());
          kernels::compute_keys<Norm::L1>(dbuf, q.data(), dkeys.data());
          break;
      }
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(fkeys[i], dkeys[i]) << "dim " << dim << " i " << i;
    }
  }
}

TEST(SimdF32, FixedDispatchBitIdenticalToGenericOnFloatStorage) {
  // The fixed-D bodies and the generic fallback agree bitwise for float
  // storage too (same loads, same float64 accumulation order).
  for (const int dim : kDims) {
    const std::size_t n = 97;
    const auto rows = lattice_rows(n, dim, 950 + dim);
    const auto q = lattice_query(dim, 951 + dim);
    const auto fbuf = pack<float>(rows, dim);
    std::vector<double> dispatched(n, -1.0), generic(n, -2.0);
    kernels::compute_keys<Norm::L2>(fbuf, q.data(), dispatched.data());
    kernels::compute_keys_generic<Norm::L2>(fbuf, q.data(), generic.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(dispatched[i], generic[i]) << "dim " << dim << " i " << i;
  }
}

TEST(SimdF32, KeysWithinDocumentedRelativeBound) {
  // Cancellation-free configuration (coordinates in [1, 2), query at the
  // origin): each stored coordinate is perturbed by ≤ 2⁻²⁴ relative, so an
  // L2 key (sum of squares) drifts ≤ ~2·2⁻²⁴ ≈ 2⁻²³ relative, and L1/L∞
  // keys ≤ 2⁻²⁴.  Asserted with one bit of slack (2⁻²²).
  constexpr double kBound = 0x1.0p-22;
  for (const int dim : kDims) {
    const std::size_t n = 257;
    Rng rng(970 + static_cast<std::uint64_t>(dim));
    std::vector<std::vector<double>> rows(n, std::vector<double>(dim));
    for (auto& row : rows)
      for (int j = 0; j < dim; ++j) row[j] = rng.uniform_real(1.0, 2.0);
    const std::vector<double> q(static_cast<std::size_t>(dim), 0.0);
    const auto fbuf = pack<float>(rows, dim);
    const auto dbuf = pack<double>(rows, dim);
    std::vector<double> fkeys(n), dkeys(n);
    kernels::compute_keys<Norm::L2>(fbuf, q.data(), fkeys.data());
    kernels::compute_keys<Norm::L2>(dbuf, q.data(), dkeys.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_GT(dkeys[i], 0.0);
      EXPECT_LE(std::fabs(fkeys[i] - dkeys[i]) / dkeys[i], kBound)
          << "dim " << dim << " i " << i;
    }
  }
}

TEST(SimdF32, RelaxOnFloatStorageMatchesScalarOverRoundedCoords) {
  const int dim = 2;
  const std::size_t n = 200;
  Rng rng(991);
  std::vector<std::vector<double>> rows(n, std::vector<double>(dim));
  std::vector<std::vector<double>> rounded = rows;
  for (std::size_t i = 0; i < n; ++i)
    for (int j = 0; j < dim; ++j) {
      rows[i][j] = rng.uniform_real(-5.0, 5.0);
      rounded[i][j] = round_f32(rows[i][j]);
    }
  const auto fbuf = pack<float>(rows, dim);

  std::vector<double> keys(n, std::numeric_limits<double>::infinity());
  std::vector<double> ref_keys = keys;
  std::vector<std::uint32_t> assign(n, 0), ref_assign(n, 0);
  std::vector<double> scratch(n);
  for (std::uint32_t label = 0; label < 4; ++label) {
    // Query coordinates stay double (e.g. a center from the AoS side).
    const std::vector<double>& c = rows[(label * 29) % n];
    const kernels::RelaxResult rr = kernels::relax_min_keys<Norm::L2>(
        fbuf, c.data(), label, keys.data(), assign.data(), scratch.data());
    double far_key = -1.0;
    std::size_t far_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double k2 = scalar_key(Norm::L2, rounded[i].data(), c.data(), dim);
      if (k2 < ref_keys[i]) {
        ref_keys[i] = k2;
        ref_assign[i] = label;
      }
      if (ref_keys[i] > far_key) {
        far_key = ref_keys[i];
        far_idx = i;
      }
    }
    EXPECT_EQ(rr.far_key, far_key);
    EXPECT_EQ(rr.far_idx, far_idx);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(keys[i], ref_keys[i]) << "i " << i;
      ASSERT_EQ(assign[i], ref_assign[i]) << "i " << i;
    }
  }
}

}  // namespace
}  // namespace kc
