// Tests of Algorithm 5 (fully dynamic coreset) and the derived dynamic
// (3+ε) k-center application.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/cost.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "dynamic/dynamic_kcenter.hpp"
#include "test_support.hpp"
#include "workload/streams.hpp"

namespace kc::dynamic {
namespace {

const Metric kL2{Norm::L2};

DynamicCoresetOptions small_opts(std::uint64_t seed,
                                 bool deterministic = false) {
  DynamicCoresetOptions opt;
  opt.k = 2;
  opt.z = 4;
  opt.eps = 1.0;
  opt.delta = 64;
  opt.dim = 2;
  opt.seed = seed;
  opt.deterministic_recovery = deterministic;
  return opt;
}

TEST(DynamicCoreset, SampleBudgetFormula) {
  // s = k(4√d/ε)^d + z.
  EXPECT_EQ(dynamic_sample_budget(2, 4, 1.0, 2), 2 * 32 + 4);
  EXPECT_EQ(dynamic_sample_budget(1, 0, 0.5, 1), 8 + 0);
}

TEST(DynamicCoreset, EmptyQueryOk) {
  DynamicCoreset dc(small_opts(1));
  const auto q = dc.query();
  EXPECT_TRUE(q.ok);
  EXPECT_TRUE(q.coreset.empty());
}

TEST(DynamicCoreset, InsertThenFullDeleteReturnsEmpty) {
  DynamicCoreset dc(small_opts(2));
  const GridPoint p{{10, 20}, 2};
  dc.update(p, +1);
  dc.update(p, -1);
  const auto q = dc.query();
  EXPECT_TRUE(q.ok);
  EXPECT_TRUE(q.coreset.empty());
  EXPECT_EQ(dc.live_points(), 0);
}

TEST(DynamicCoreset, WeightsMatchLiveMultiset) {
  DynamicCoreset dc(small_opts(3));
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> truth;
  Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    GridPoint p{{static_cast<std::int64_t>(rng.uniform(64)),
                 static_cast<std::int64_t>(rng.uniform(64))},
                2};
    dc.update(p, +1);
    ++truth[{p.c[0], p.c[1]}];
  }
  const auto q = dc.query();
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(total_weight(q.coreset), 40);
  // At a fine level every non-empty cell count must match the truth; at
  // coarser levels cells merge, so only totals are comparable.  The level
  // chosen for 40 points with s = 68 should be 0 (all cells fit).
  EXPECT_EQ(q.level, 0);
  EXPECT_EQ(q.nonempty_cells, truth.size());
}

TEST(DynamicCoreset, ScriptEquivalentToFinalSet) {
  // Run a full insert/delete script; the final coreset must equal the one
  // obtained by inserting only the surviving points.
  const WeightedSet pts = make_uniform(60, 2, 50.0, 5);
  const auto final_set = discretize(pts, 64);
  const auto script = make_dynamic_script(final_set, 50, 64, 2, 6);

  DynamicCoreset via_script(small_opts(7));
  for (const auto& up : script) via_script.update(up.p, up.sign);
  DynamicCoreset direct(small_opts(7));
  for (const auto& g : final_set) direct.update(g, +1);

  const auto qa = via_script.query();
  const auto qb = direct.query();
  ASSERT_TRUE(qa.ok && qb.ok);
  EXPECT_EQ(qa.level, qb.level);
  ASSERT_EQ(qa.coreset.size(), qb.coreset.size());
  for (std::size_t i = 0; i < qa.coreset.size(); ++i) {
    EXPECT_EQ(qa.coreset[i].p, qb.coreset[i].p);
    EXPECT_EQ(qa.coreset[i].w, qb.coreset[i].w);
  }
}

TEST(DynamicCoreset, CoarsensWhenOverBudget) {
  // More than s distinct cells at level 0 forces a coarser level.
  DynamicCoresetOptions opt = small_opts(8);
  opt.delta = 256;
  DynamicCoreset dc(opt);
  const std::int64_t s = dc.sample_budget();
  // Insert 4s points on a fine diagonal: level 0 has 4s non-empty cells.
  for (std::int64_t i = 0; i < 4 * s && i < 256; ++i)
    dc.update(GridPoint{{i, i}, 2}, +1);
  const auto q = dc.query();
  ASSERT_TRUE(q.ok);
  EXPECT_GT(q.level, 0);
  EXPECT_LE(static_cast<std::int64_t>(q.nonempty_cells), s);
}

TEST(DynamicCoreset, RelaxedCoresetCoversPoints) {
  // Every live point must be within (√d/2)·cell_side of a coreset rep.
  DynamicCoresetOptions opt = small_opts(9);
  opt.delta = 128;
  DynamicCoreset dc(opt);
  std::vector<GridPoint> pts;
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    GridPoint p{{static_cast<std::int64_t>(rng.uniform(128)),
                 static_cast<std::int64_t>(rng.uniform(128))},
                2};
    pts.push_back(p);
    dc.update(p, +1);
  }
  const auto q = dc.query();
  ASSERT_TRUE(q.ok);
  const double slack = q.cell_side * std::sqrt(2.0) / 2.0 + 1e-9;
  for (const auto& g : pts) {
    double best = 1e300;
    for (const auto& rep : q.coreset)
      best = std::min(best, kL2.dist(g.to_point(), rep.p));
    EXPECT_LE(best, slack);
  }
}

TEST(DynamicCoreset, DeterministicRecoveryPath) {
  DynamicCoreset dc(small_opts(11, /*deterministic=*/true));
  Rng rng(12);
  for (int i = 0; i < 30; ++i)
    dc.update(GridPoint{{static_cast<std::int64_t>(rng.uniform(64)),
                         static_cast<std::int64_t>(rng.uniform(64))},
                        2},
              +1);
  const auto q = dc.query();
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(total_weight(q.coreset), 30);
}

TEST(DynamicCoreset, WordsGrowWithLogDelta) {
  DynamicCoresetOptions small = small_opts(13);
  small.delta = 64;
  DynamicCoresetOptions large = small_opts(13);
  large.delta = 4096;
  DynamicCoreset a(small), b(large);
  EXPECT_LT(a.words(), b.words());
  // Δ ×64 doubles log Δ; storage is Θ(log²Δ) here (grid levels × per-level
  // F0 ladder), so words grow ≤ ~4× — far below the ×64 of a linear-in-Δ
  // structure and within the paper's polylog budget.
  EXPECT_LT(static_cast<double>(b.words()),
            4.0 * static_cast<double>(a.words()));
}

TEST(DynamicKCenter, SolvesPlantedGridInstance) {
  PlantedConfig cfg;
  cfg.n = 400;
  cfg.k = 2;
  cfg.z = 4;
  cfg.dim = 2;
  cfg.seed = 15;
  const auto inst = make_planted(cfg);
  const auto grid_pts = discretize(inst.points, 1 << 10);

  DynamicCoresetOptions opt;
  opt.k = 2;
  opt.z = 4;
  opt.eps = 0.5;
  opt.delta = 1 << 10;
  opt.dim = 2;
  opt.seed = 16;
  DynamicKCenter dyn(opt);
  for (const auto& g : grid_pts) dyn.insert(g);

  const auto sol = dyn.solve();
  ASSERT_TRUE(sol.ok);
  EXPECT_GT(sol.coreset_size, 0u);
  // Evaluate the solution against the exact (discretized) point set.
  WeightedSet exact;
  for (const auto& g : grid_pts) exact.push_back({g.to_point(), 1});
  const double r =
      radius_with_outliers(exact, sol.solution.centers, 4, kL2);
  const Solution direct = solve_kcenter_outliers(exact, 2, 4, kL2);
  EXPECT_LE(r, 4.0 * direct.radius + 4.0 * sol.solution.radius + 1e-9);
}

}  // namespace
}  // namespace kc::dynamic
