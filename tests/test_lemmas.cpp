// Direct numeric tests of the paper's quantitative lemmas, independent of
// any algorithm: Lemma 6 (packing), Lemma 25 (grid choice), and the
// naive-store baseline used by the T1-DYN comparison.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/cost.hpp"
#include "core/gonzalez.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "dynamic/naive_store.hpp"
#include "geometry/grid.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

TEST(Lemma6, PackingBoundOnSeparatedSubsets) {
  // Any δ-separated subset Q of P has |Q| ≤ k(4·opt/δ)^d + z.  We extract a
  // maximal δ-separated subset greedily and compare against the bound with
  // opt ≤ opt_hi from the planted bracket.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    PlantedConfig cfg;
    cfg.n = 1200;
    cfg.k = 3;
    cfg.z = 10;
    cfg.dim = 2;
    cfg.seed = seed;
    const auto inst = make_planted(cfg);
    for (const double frac : {0.5, 0.25}) {
      const double delta = frac * inst.opt_lo;  // δ ≤ opt required
      // Greedy maximal δ-separated subset.
      PointSet sep;
      for (const auto& wp : inst.points) {
        bool far = true;
        for (const auto& q : sep)
          if (kL2.dist(wp.p, q) <= delta) {
            far = false;
            break;
          }
        if (far) sep.push_back(wp.p);
      }
      const double bound =
          3.0 * std::pow(4.0 * inst.opt_hi / delta, 2) + 10.0;
      EXPECT_LE(static_cast<double>(sep.size()), bound)
          << "seed " << seed << " frac " << frac;
    }
  }
}

TEST(Lemma25, GridAtOptScaleHasFewNonEmptyCells) {
  // If 2^j ≤ (ε/√d)·opt < 2^{j+1}, grid G_j has ≤ k(4√d/ε)^d + z non-empty
  // cells.  Build a planted instance on [Δ]^2, locate j from the bracket,
  // and count cells exactly.
  PlantedConfig cfg;
  cfg.n = 900;
  cfg.k = 3;
  cfg.z = 8;
  cfg.dim = 2;
  cfg.seed = 7;
  const auto inst = make_planted(cfg);
  const std::int64_t delta = 1 << 12;
  const auto grid_pts = discretize(inst.points, delta);
  // The discretization scales distances; recompute the bracket in grid
  // space via the planted centers mapped through the same transform: use
  // the exact radius of the discretized set under the planted structure.
  WeightedSet grid_set;
  for (const auto& g : grid_pts) grid_set.push_back({g.to_point(), 1});
  // opt in grid space is certified by solving against a Gonzalez summary:
  // get a 2-sided estimate via the k+z+1 farthest-point pigeonhole.
  const GonzalezResult gz =
      gonzalez(grid_set, cfg.k + static_cast<int>(cfg.z) + 1, kL2);
  const double lo = gz.delta.back() / 2.0;  // opt ≥ δ_{k+z+1}/2

  const double eps = 0.5;
  const GridHierarchy grids(delta, 2);
  // j from the paper with the certified lower bound (a finer grid than the
  // true j only strengthens the cell count's meaning here).
  const int j = std::max(
      0, static_cast<int>(std::floor(
             std::log2(eps / std::sqrt(2.0) * lo))));
  ASSERT_LT(j, grids.levels());
  std::set<std::uint64_t> cells;
  for (const auto& g : grid_pts) cells.insert(grids.cell_id(g, j));
  const double bound =
      3.0 * std::pow(4.0 * std::sqrt(2.0) / eps, 2) + 8.0;
  EXPECT_LE(static_cast<double>(cells.size()), bound);
}

TEST(NaiveStore, TracksMultisetExactly) {
  dynamic::NaivePointStore store(2);
  const GridPoint a{{1, 2}, 2}, b{{3, 4}, 2};
  store.update(a, +1);
  store.update(a, +1);
  store.update(b, +1);
  EXPECT_EQ(store.live_points(), 3);
  EXPECT_EQ(store.words(), 2u * 3u);
  store.update(a, -1);
  const WeightedSet live = store.live_set();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(total_weight(live), 2);
  store.update(a, -1);
  store.update(b, -1);
  EXPECT_EQ(store.live_points(), 0);
  EXPECT_EQ(store.words(), 0u);
  EXPECT_EQ(store.peak_words(), 2u * 3u);
}

TEST(NaiveStore, WordsGrowLinearlyWhileSketchStaysFlat) {
  // The Table-1 separation: naive words ~ live points, sketch words flat.
  dynamic::DynamicCoresetOptions opt;
  opt.k = 2;
  opt.z = 4;
  opt.eps = 1.0;
  opt.delta = 256;
  opt.dim = 2;
  opt.seed = 3;
  dynamic::DynamicCoreset sketch(opt);
  dynamic::NaivePointStore naive(2);
  const std::size_t before_sketch = sketch.words();

  Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    GridPoint p{{static_cast<std::int64_t>(rng.uniform(256)),
                 static_cast<std::int64_t>(rng.uniform(256))},
                2};
    sketch.update(p, +1);
    naive.update(p, +1);
  }
  EXPECT_EQ(sketch.words(), before_sketch);  // exactly constant
  EXPECT_GT(naive.words(), 3000u);           // ~ one entry per distinct cell
}

}  // namespace
}  // namespace kc
