// Property tests of the mini-ball-covering constructions (paper §2):
// Definition-2 structure, covering radius, Lemma-6/7 size bounds, and the
// Lemma-3 coreset sandwich, swept over (k, z, ε, d) with TEST_P.

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/mbc.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
#include "test_support.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

class MbcSweep : public ::testing::TestWithParam<testing::SweepParam> {};

TEST_P(MbcSweep, StructureAndCoveringAndSize) {
  const auto p = GetParam();
  const auto inst = testing::tiny_planted(p.k, p.z, p.dim, p.seed);
  const MiniBallCovering mbc =
      mbc_construct(inst.points, p.k, p.z, p.eps, kL2);

  // Definition 2: partition + weight preservation + subset property.
  EXPECT_TRUE(check_mbc_structure(inst.points, mbc));

  // Covering property: every point within ε·opt ≤ ε·opt_hi of its rep.
  EXPECT_LE(max_assignment_dist(inst.points, mbc, kL2),
            p.eps * inst.opt_hi + 1e-9);

  // Separation invariant → Lemma 7 size bound k(4ρ/ε)^d + z.
  EXPECT_TRUE(check_separation(mbc.reps, mbc.cover_radius, kL2));
  EXPECT_LE(static_cast<double>(mbc.reps.size()),
            mbc_size_bound(p.k, p.z, p.eps, mbc.rho, p.dim) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, MbcSweep,
                         ::testing::ValuesIn(testing::default_sweep()),
                         [](const auto& info) { return info.param.name(); });

class GonzalezMbcSweep : public ::testing::TestWithParam<testing::SweepParam> {
};

TEST_P(GonzalezMbcSweep, OracleFreeConstruction) {
  const auto p = GetParam();
  const auto inst = testing::tiny_planted(p.k, p.z, p.dim, p.seed);
  const MiniBallCovering mbc =
      mbc_via_gonzalez(inst.points, p.k, p.z, p.eps, kL2);

  EXPECT_TRUE(check_mbc_structure(inst.points, mbc));
  EXPECT_LE(max_assignment_dist(inst.points, mbc, kL2),
            p.eps * inst.opt_hi + 1e-9);
  // Size ≤ τ = k⌈4/ε⌉^d + z + 1 by construction.
  EXPECT_LE(static_cast<double>(mbc.reps.size()),
            static_cast<double>(
                summary_center_budget(p.k, p.z, p.eps, p.dim)));
}

INSTANTIATE_TEST_SUITE_P(Grid, GonzalezMbcSweep,
                         ::testing::ValuesIn(testing::default_sweep()),
                         [](const auto& info) { return info.param.name(); });

TEST(MbcWithRadius, ZeroRadiusKeepsDistinctPoints) {
  WeightedSet pts;
  pts.push_back({Point{0.0}, 1});
  pts.push_back({Point{0.0}, 2});  // duplicate location
  pts.push_back({Point{1.0}, 1});
  const MiniBallCovering mbc = mbc_with_radius(pts, 0.0, kL2);
  EXPECT_EQ(mbc.reps.size(), 2u);  // duplicates merge even at radius 0
  EXPECT_EQ(total_weight(mbc.reps), 4);
}

TEST(MbcWithRadius, LargeRadiusCollapsesToOne) {
  const auto inst = testing::tiny_planted(3, 2, 2, 71);
  const MiniBallCovering mbc = mbc_with_radius(inst.points, 1e9, kL2);
  EXPECT_EQ(mbc.reps.size(), 1u);
  EXPECT_EQ(total_weight(mbc.reps), total_weight(inst.points));
}

TEST(MbcWithRadius, RepsAreFirstFit) {
  // Points 0..6 spacing 1, radius 1.5: rep 0 absorbs {0,1}, rep 2 absorbs
  // {2,3}, rep 4 absorbs {4,5}, rep 6 absorbs {6}.
  WeightedSet pts;
  for (double x = 0; x < 7; x += 1) pts.push_back({Point{x}, 1});
  const MiniBallCovering mbc = mbc_with_radius(pts, 1.5, kL2);
  ASSERT_EQ(mbc.reps.size(), 4u);
  EXPECT_DOUBLE_EQ(mbc.reps[0].p[0], 0.0);
  EXPECT_DOUBLE_EQ(mbc.reps[1].p[0], 2.0);
  EXPECT_DOUBLE_EQ(mbc.reps[2].p[0], 4.0);
  EXPECT_DOUBLE_EQ(mbc.reps[3].p[0], 6.0);
  EXPECT_EQ(mbc.reps[0].w, 2);
  EXPECT_EQ(mbc.reps[3].w, 1);
}

TEST(Mbc, ExpansionPropertyDefinitionOne) {
  // Definition 1(2): a solution feasible on the coreset, expanded by
  // ε·opt, stays feasible on P.  Use the planted opt_hi as the opt proxy
  // (valid since slack only grows with opt).
  const auto inst = testing::tiny_planted(3, 5, 2, 73);
  const double eps = 0.5;
  const MiniBallCovering mbc = mbc_construct(inst.points, 3, 5, eps, kL2);
  const Solution sol = solve_kcenter_outliers(mbc.reps, 3, 5, kL2);
  EXPECT_TRUE(check_expansion_property(inst.points, mbc.reps, sol.centers,
                                       sol.radius, eps * inst.opt_hi, 5,
                                       kL2));
}

TEST(Mbc, SandwichOnRadius) {
  // Lemma 3 ⇒ (1−ε)opt ≤ opt(P*) ≤ (1+ε)opt.  With the bracket
  // [opt_lo, opt_hi] we can assert opt(P*) ≤ (1+ε)opt_hi and
  // opt(P*) ≥ (1−ε)opt_lo using the exact evaluator on candidate centers.
  const auto inst = testing::tiny_planted(2, 4, 2, 79);
  const double eps = 0.25;
  const MiniBallCovering mbc = mbc_construct(inst.points, 2, 4, eps, kL2);
  // Upper: planted centers on the coreset give radius ≤ opt_hi + ε·opt_hi.
  const double up =
      radius_with_outliers(mbc.reps, inst.planted_centers, 4, kL2);
  EXPECT_LE(up, (1 + eps) * inst.opt_hi + 1e-9);
}

TEST(MergeCoresets, ConcatenatesAndPreservesWeight) {
  const auto a = testing::tiny_planted(2, 2, 2, 83);
  const auto b = testing::tiny_planted(2, 2, 2, 89);
  const MiniBallCovering ca = mbc_construct(a.points, 2, 2, 0.5, kL2);
  const MiniBallCovering cb = mbc_construct(b.points, 2, 2, 0.5, kL2);
  const WeightedSet merged = merge_coresets({ca.reps, cb.reps});
  EXPECT_EQ(merged.size(), ca.reps.size() + cb.reps.size());
  EXPECT_EQ(total_weight(merged),
            total_weight(a.points) + total_weight(b.points));
}

TEST(Mbc, EmptyInput) {
  const MiniBallCovering mbc = mbc_construct({}, 2, 1, 0.5, kL2);
  EXPECT_TRUE(mbc.reps.empty());
}

}  // namespace
}  // namespace kc
