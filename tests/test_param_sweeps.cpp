// Broad parameterized sweeps (TEST_P) over the configuration spaces of the
// dynamic sketch, the R-round MPC algorithm, and the sliding window —
// checking the structural invariants at every grid point.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/cost.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "mpc/multi_round.hpp"
#include "mpc/partition.hpp"
#include "stream/sliding_window.hpp"
#include "test_support.hpp"
#include "workload/streams.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

// ---------------------------------------------------------------- dynamic
struct DynParam {
  std::int64_t delta;
  std::int64_t z;
  double eps;
  std::string name() const {
    std::ostringstream o;
    o << "d" << delta << "_z" << z << "_e" << static_cast<int>(eps * 100);
    return o.str();
  }
};

class DynamicSweep : public ::testing::TestWithParam<DynParam> {};

TEST_P(DynamicSweep, InvariantsAtEveryGridPoint) {
  const auto p = GetParam();
  dynamic::DynamicCoresetOptions opt;
  opt.k = 2;
  opt.z = p.z;
  opt.eps = p.eps;
  opt.delta = p.delta;
  opt.dim = 2;
  opt.seed = 17;
  dynamic::DynamicCoreset dc(opt);

  // Sample budget formula.
  EXPECT_EQ(dc.sample_budget(),
            dynamic::dynamic_sample_budget(2, p.z, p.eps, 2));

  // Feed a script, query, and check the structural invariants.
  PlantedConfig cfg;
  cfg.n = 500;
  cfg.k = 2;
  cfg.z = p.z;
  cfg.dim = 2;
  cfg.seed = 21;
  const auto inst = make_planted(cfg);
  const auto grid = discretize(inst.points, p.delta);
  const auto script = make_dynamic_script(grid, 200, p.delta, 2, 23);
  for (const auto& up : script) dc.update(up.p, up.sign);

  const auto q = dc.query();
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(total_weight(q.coreset), 500);
  EXPECT_LE(static_cast<std::int64_t>(q.nonempty_cells), dc.sample_budget());
  EXPECT_GE(q.level, 0);
  EXPECT_LT(q.level, dc.grids().levels());
  // Covering: every live point within half a cell diagonal of its center.
  const double slack = q.cell_side * std::sqrt(2.0) / 2.0 + 1e-9;
  for (const auto& g : grid) {
    double best = 1e300;
    for (const auto& rep : q.coreset)
      best = std::min(best, kL2.dist(g.to_point(), rep.p));
    ASSERT_LE(best, slack);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DynamicSweep,
    ::testing::Values(DynParam{64, 2, 1.0}, DynParam{64, 16, 0.5},
                      DynParam{256, 2, 1.0}, DynParam{256, 16, 1.0},
                      DynParam{1024, 8, 0.5}, DynParam{4096, 4, 1.0}),
    [](const auto& info) { return info.param.name(); });

// ------------------------------------------------------------ multi-round
struct RoundParam {
  int m;
  int rounds;
  std::string name() const {
    std::ostringstream o;
    o << "m" << m << "_R" << rounds;
    return o.str();
  }
};

class MultiRoundSweep : public ::testing::TestWithParam<RoundParam> {};

TEST_P(MultiRoundSweep, BetaAndValidityAtEveryGridPoint) {
  const auto p = GetParam();
  PlantedConfig cfg;
  cfg.n = 1200;
  cfg.k = 2;
  cfg.z = 8;
  cfg.dim = 2;
  cfg.seed = 29;
  const auto inst = make_planted(cfg);
  const auto parts = mpc::partition_points(
      inst.points, p.m, mpc::PartitionKind::RoundRobin, 0);
  mpc::MultiRoundOptions opt;
  opt.eps = 0.25;
  opt.rounds = p.rounds;
  const auto res = mpc::multi_round_coreset(parts, 2, 8, kL2, {}, opt);

  // β = max(2, ⌈m^{1/R}⌉) and after R rounds one machine remains.
  EXPECT_EQ(res.beta,
            std::max(2, static_cast<int>(std::ceil(
                            std::pow(p.m, 1.0 / p.rounds)))));
  EXPECT_EQ(res.stats.rounds, p.rounds);
  EXPECT_NEAR(res.eps_effective, std::pow(1.25, p.rounds) - 1.0, 1e-12);

  // Validity: weights preserved, planted centers cover within budget.
  EXPECT_EQ(total_weight(res.coreset), 1200);
  const double r =
      radius_with_outliers(res.coreset, inst.planted_centers, 8, kL2);
  EXPECT_LE(r, (1.0 + res.eps_effective) * inst.opt_hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiRoundSweep,
    ::testing::Values(RoundParam{5, 1}, RoundParam{5, 2}, RoundParam{16, 1},
                      RoundParam{16, 2}, RoundParam{16, 4}, RoundParam{27, 3},
                      RoundParam{27, 2}),
    [](const auto& info) { return info.param.name(); });

// -------------------------------------------------------- sliding window
struct SwParam {
  std::int64_t window;
  std::int64_t z;
  std::string name() const {
    std::ostringstream o;
    o << "W" << window << "_z" << z;
    return o.str();
  }
};

class SlidingSweep : public ::testing::TestWithParam<SwParam> {};

TEST_P(SlidingSweep, WindowInvariantsAtEveryGridPoint) {
  const auto p = GetParam();
  stream::SlidingWindow sw(2, p.z, 1.0, 1, p.window, 0.5, 128.0, kL2);
  Rng rng(31);
  std::vector<Point> history;
  const std::int64_t n = 3 * p.window;
  for (std::int64_t t = 1; t <= n; ++t) {
    Point pt{rng.bernoulli(0.1) ? rng.uniform_real(0, 100)
                                : 50.0 + rng.uniform_real(0, 2)};
    history.push_back(pt);
    sw.insert(pt, t);
  }
  const auto q = sw.query(n);
  ASSERT_GE(q.level, 0);
  // Coverage of the alive window.
  for (std::int64_t t = n - p.window + 1; t <= n; ++t) {
    double best = 1e300;
    for (const auto& rep : q.coreset)
      best = std::min(best,
                      kL2.dist(history[static_cast<std::size_t>(t - 1)], rep.p));
    ASSERT_LE(best, q.cover_radius + 1e-9);
  }
  // Weight caps: no rep may claim more than z+1, and the total is within
  // the window length.
  std::int64_t total = 0;
  for (const auto& rep : q.coreset) {
    EXPECT_LE(rep.w, p.z + 1);
    total += rep.w;
  }
  EXPECT_LE(total, p.window);
  EXPECT_GT(total, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlidingSweep,
    ::testing::Values(SwParam{50, 1}, SwParam{50, 8}, SwParam{200, 2},
                      SwParam{200, 16}, SwParam{500, 4}),
    [](const auto& info) { return info.param.name(); });

}  // namespace
}  // namespace kc
