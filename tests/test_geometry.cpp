#include <gtest/gtest.h>

#include <cmath>

#include "geometry/box.hpp"
#include "geometry/metric.hpp"
#include "geometry/point.hpp"

namespace kc {
namespace {

TEST(Point, ConstructionAndAccess) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
}

TEST(Point, EqualityRequiresSameDimAndCoords) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_NE((Point{1.0, 2.0}), (Point{1.0, 2.1}));
  EXPECT_NE((Point{1.0}), (Point{1.0, 0.0}));
}

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0}, b{3.0, 5.0};
  EXPECT_EQ(a + b, (Point{4.0, 7.0}));
  EXPECT_EQ(b - a, (Point{2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
}

TEST(WeightedSetHelpers, RoundTrip) {
  PointSet ps{{1.0, 0.0}, {2.0, 0.0}};
  WeightedSet ws = with_unit_weights(ps);
  EXPECT_EQ(total_weight(ws), 2);
  ws[0].w = 5;
  EXPECT_EQ(total_weight(ws), 6);
  EXPECT_EQ(strip_weights(ws), ps);
}

class MetricNorms : public ::testing::TestWithParam<Norm> {};

TEST_P(MetricNorms, IdentityAndSymmetry) {
  const Metric m{GetParam()};
  const Point a{1.0, -2.0, 0.5}, b{0.0, 4.0, -1.0};
  EXPECT_DOUBLE_EQ(m.dist(a, a), 0.0);
  EXPECT_DOUBLE_EQ(m.dist(a, b), m.dist(b, a));
  EXPECT_GT(m.dist(a, b), 0.0);
}

TEST_P(MetricNorms, TriangleInequalityRandom) {
  const Metric m{GetParam()};
  // Deterministic probe points.
  const Point pts[] = {Point{0.0, 0.0}, Point{3.0, 4.0}, Point{-1.0, 2.0},
                       Point{5.0, -2.0}};
  for (const auto& a : pts)
    for (const auto& b : pts)
      for (const auto& c : pts)
        EXPECT_LE(m.dist(a, c), m.dist(a, b) + m.dist(b, c) + 1e-12);
}

TEST_P(MetricNorms, DistKeyMonotoneInDist) {
  const Metric m{GetParam()};
  const Point o{0.0, 0.0};
  const Point near{1.0, 1.0}, far{3.0, 3.0};
  EXPECT_LT(m.dist_key(o, near), m.dist_key(o, far));
  EXPECT_DOUBLE_EQ(m.key_to_dist(m.dist_key(o, far)), m.dist(o, far));
}

INSTANTIATE_TEST_SUITE_P(AllNorms, MetricNorms,
                         ::testing::Values(Norm::L2, Norm::Linf, Norm::L1));

TEST(Metric, KnownValues) {
  const Point a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Metric{Norm::L2}.dist(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Metric{Norm::Linf}.dist(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Metric{Norm::L1}.dist(a, b), 7.0);
}

TEST(Metric, DoublingDimensionIsDim) {
  EXPECT_EQ(Metric::doubling_dimension(2), 2);
  EXPECT_EQ(Metric::doubling_dimension(3), 3);
}

TEST(Box, ExtendAndContain) {
  Box b = Box::empty(2);
  EXPECT_TRUE(b.is_empty());
  b.extend({1.0, 1.0});
  b.extend({-1.0, 3.0});
  EXPECT_FALSE(b.is_empty());
  EXPECT_TRUE(b.contains({0.0, 2.0}));
  EXPECT_FALSE(b.contains({2.0, 2.0}));
  EXPECT_DOUBLE_EQ(b.side(0), 2.0);
  EXPECT_DOUBLE_EQ(b.max_side(), 2.0);
}

TEST(Box, BoundingBoxOfSet) {
  const PointSet pts{{0.0, 0.0}, {2.0, -1.0}, {1.0, 5.0}};
  const Box b = bounding_box(pts);
  EXPECT_DOUBLE_EQ(b.lo()[1], -1.0);
  EXPECT_DOUBLE_EQ(b.hi()[1], 5.0);
}

TEST(Spread, MinMaxPairwise) {
  const Metric m{Norm::L2};
  const PointSet pts{{0.0, 0.0}, {1.0, 0.0}, {10.0, 0.0}};
  const Spread s = compute_spread(pts, m);
  EXPECT_DOUBLE_EQ(s.d_min, 1.0);
  EXPECT_DOUBLE_EQ(s.d_max, 10.0);
  EXPECT_DOUBLE_EQ(s.ratio(), 10.0);
}

TEST(Spread, IgnoresZeroDistances) {
  const Metric m{Norm::L2};
  const PointSet pts{{0.0, 0.0}, {0.0, 0.0}, {4.0, 0.0}};
  const Spread s = compute_spread(pts, m);
  EXPECT_DOUBLE_EQ(s.d_min, 4.0);
}

}  // namespace
}  // namespace kc
