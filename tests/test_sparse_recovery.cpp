#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sketch/one_sparse.hpp"
#include "sketch/sparse_recovery.hpp"
#include "util/rng.hpp"

namespace kc::sketch {
namespace {

TEST(OneSparse, RecoversSingleton) {
  OneSparseCell cell(7);
  cell.update(42, 5);
  const auto rec = cell.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->key, 42u);
  EXPECT_EQ(rec->count, 5);
}

TEST(OneSparse, EmptyAfterCancellation) {
  OneSparseCell cell(7);
  cell.update(42, 5);
  cell.update(42, -5);
  EXPECT_TRUE(cell.empty());
  EXPECT_FALSE(cell.recover().has_value());
}

TEST(OneSparse, RejectsTwoKeys) {
  OneSparseCell cell(7);
  cell.update(1, 1);
  cell.update(2, 1);
  EXPECT_FALSE(cell.recover().has_value());
  EXPECT_FALSE(cell.empty());
}

TEST(OneSparse, RecoveryAfterPartialDeletes) {
  OneSparseCell cell(13);
  cell.update(100, 3);
  cell.update(200, 2);
  cell.update(200, -2);  // back to singleton
  const auto rec = cell.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->key, 100u);
  EXPECT_EQ(rec->count, 3);
}

TEST(OneSparse, LargeKeyRoundTrip) {
  OneSparseCell cell(5);
  const std::uint64_t key = (1ULL << 59) + 12345;
  cell.update(key, 7);
  const auto rec = cell.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->key, key);
}

TEST(SparseRecovery, ExactRecoveryWithinCapacity) {
  SparseRecovery sk(32, /*seed=*/1);
  std::map<std::uint64_t, std::int64_t> truth;
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const std::uint64_t key = rng() % 100000;
    const auto count = static_cast<std::int64_t>(1 + rng.uniform(9));
    truth[key] += count;
    sk.update(key, count);
  }
  const auto dec = sk.decode();
  ASSERT_TRUE(dec.complete);
  ASSERT_EQ(dec.items.size(), truth.size());
  for (const auto& item : dec.items) {
    ASSERT_TRUE(truth.count(item.key));
    EXPECT_EQ(item.count, truth[item.key]);
  }
}

TEST(SparseRecovery, DeletionsCancelExactly) {
  SparseRecovery sk(16, 3);
  for (int i = 0; i < 500; ++i) sk.update(static_cast<std::uint64_t>(i), 1);
  for (int i = 0; i < 500; ++i)
    if (i % 2 == 0) sk.update(static_cast<std::uint64_t>(i), -1);
  // 250 keys remain — above capacity, decode must not report complete.
  EXPECT_FALSE(sk.decode().complete);
  for (int i = 0; i < 500; ++i)
    if (i % 2 == 1 && i > 20) sk.update(static_cast<std::uint64_t>(i), -1);
  // Keys 1..19 odd remain: 10 keys ≤ 16 capacity.
  const auto dec = sk.decode();
  ASSERT_TRUE(dec.complete);
  EXPECT_EQ(dec.items.size(), 10u);
  for (const auto& item : dec.items) {
    EXPECT_EQ(item.key % 2, 1u);
    EXPECT_LT(item.key, 21u);
    EXPECT_EQ(item.count, 1);
  }
}

TEST(SparseRecovery, EmptyDecodesComplete) {
  SparseRecovery sk(8, 4);
  const auto dec = sk.decode();
  EXPECT_TRUE(dec.complete);
  EXPECT_TRUE(dec.items.empty());
}

TEST(SparseRecovery, OvercapacityReportsIncomplete) {
  SparseRecovery sk(8, 5);
  for (int i = 0; i < 1000; ++i) sk.update(static_cast<std::uint64_t>(i * 7), 1);
  const auto dec = sk.decode();
  EXPECT_FALSE(dec.complete);
}

TEST(SparseRecovery, SuccessProbabilityAcrossSeeds) {
  // At exactly capacity s, decoding must succeed for the vast majority of
  // seeds (peeling threshold is ~2× capacity per row).
  int successes = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    SparseRecovery sk(24, static_cast<std::uint64_t>(t) + 100);
    Rng rng(static_cast<std::uint64_t>(t));
    for (int i = 0; i < 24; ++i) sk.update(rng(), 1);
    if (sk.decode().complete) ++successes;
  }
  EXPECT_GE(successes, trials - 1);
}

TEST(SparseRecovery, WordsAccounting) {
  SparseRecovery sk(10, 1, 4);
  // 4 rows × max(2·10, 8) buckets × 3 words + hash + header.
  EXPECT_GE(sk.words(), 4u * 20u * 3u);
  EXPECT_LE(sk.words(), 4u * 20u * 3u + 64u);
}

}  // namespace
}  // namespace kc::sketch
