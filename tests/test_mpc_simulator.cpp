#include <gtest/gtest.h>

#include "mpc/partition.hpp"
#include "mpc/simulator.hpp"
#include "workload/generators.hpp"

namespace kc::mpc {
namespace {

TEST(Simulator, RoutesMessages) {
  Simulator sim(3, 2);
  sim.round([&](int id, std::vector<Message>&, std::vector<Message>& out) {
    if (id != 0) {
      Message m;
      m.to = 0;
      m.scalars = {static_cast<double>(id)};
      out.push_back(std::move(m));
    }
  });
  EXPECT_EQ(sim.stats().rounds, 1);
  auto& inbox = sim.inbox(0);
  ASSERT_EQ(inbox.size(), 2u);
  double sum = 0;
  for (const auto& m : inbox) sum += m.scalars.at(0);
  EXPECT_DOUBLE_EQ(sum, 3.0);  // from machines 1 and 2
}

TEST(Simulator, CommunicationAccounting) {
  Simulator sim(2, 3);  // dim 3 → weighted point = 4 words
  sim.round([&](int id, std::vector<Message>&, std::vector<Message>& out) {
    if (id == 1) {
      Message m;
      m.to = 0;
      m.scalars = {1.0, 2.0};  // 2 words
      m.payload = PointPayload(WeightedSet{{Point{1.0, 2.0, 3.0}, 1}});  // 4
      out.push_back(std::move(m));
    }
  });
  EXPECT_EQ(sim.stats().total_comm_words, 6u);
  EXPECT_EQ(sim.stats().comm_words_per_round.at(0), 6u);
}

TEST(Simulator, SelfMessagesAreFree) {
  Simulator sim(2, 2);
  sim.round([&](int id, std::vector<Message>&, std::vector<Message>& out) {
    Message m;
    m.to = id;  // self
    m.scalars = {1.0, 2.0, 3.0};
    out.push_back(std::move(m));
  });
  EXPECT_EQ(sim.stats().total_comm_words, 0u);
  EXPECT_EQ(sim.inbox(0).size(), 1u);  // still delivered
}

TEST(Simulator, PeakStorageIsMax) {
  Simulator sim(2, 2);
  sim.record_storage(1, 100);
  sim.record_storage(1, 50);
  sim.record_storage(0, 10);
  EXPECT_EQ(sim.stats().peak_words.at(1), 100u);
  EXPECT_EQ(sim.stats().max_worker_words(), 100u);
  EXPECT_EQ(sim.stats().coordinator_words(), 10u);
}

TEST(Simulator, InboxClearedEachRound) {
  Simulator sim(2, 2);
  sim.round([&](int id, std::vector<Message>&, std::vector<Message>& out) {
    if (id == 1) {
      Message m;
      m.to = 0;
      m.scalars = {1.0};
      out.push_back(std::move(m));
    }
  });
  EXPECT_EQ(sim.inbox(0).size(), 1u);
  sim.round([&](int, std::vector<Message>&, std::vector<Message>&) {});
  EXPECT_TRUE(sim.inbox(0).empty());
  EXPECT_EQ(sim.stats().rounds, 2);
}

TEST(Partition, RoundRobinEven) {
  const WeightedSet pts = make_uniform(103, 2, 10.0, 1);
  const auto parts = partition_points(pts, 10, PartitionKind::RoundRobin, 0);
  ASSERT_EQ(parts.size(), 10u);
  std::size_t total = 0;
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 10u);
    EXPECT_LE(p.size(), 11u);
    total += p.size();
  }
  EXPECT_EQ(total, 103u);
}

TEST(Partition, EvenSortedIsContiguousAndEven) {
  const WeightedSet pts = make_uniform(100, 2, 10.0, 2);
  const auto parts = partition_points(pts, 4, PartitionKind::EvenSorted, 0);
  std::size_t total = 0;
  double prev_max = -1e300;
  for (const auto& part : parts) {
    EXPECT_EQ(part.size(), 25u);
    total += part.size();
    double lo = 1e300, hi = -1e300;
    for (const auto& wp : part) {
      lo = std::min(lo, wp.p[0]);
      hi = std::max(hi, wp.p[0]);
    }
    EXPECT_GE(lo, prev_max - 1e-12);  // blocks ordered along x
    prev_max = hi;
  }
  EXPECT_EQ(total, 100u);
}

TEST(Partition, RandomCoversAllPoints) {
  const WeightedSet pts = make_uniform(500, 2, 10.0, 3);
  const auto parts = partition_points(pts, 7, PartitionKind::Random, 42);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 500u);
  // Deterministic for a fixed seed.
  const auto parts2 = partition_points(pts, 7, PartitionKind::Random, 42);
  for (std::size_t i = 0; i < parts.size(); ++i)
    EXPECT_EQ(parts[i].size(), parts2[i].size());
}

TEST(Partition, AdversarialConcentratesOutliers) {
  // Planted outliers have the most-negative x coordinates, so EvenSorted
  // puts all of them on machine 0 — the adversarial case for Algorithm 2.
  PlantedConfig cfg;
  cfg.n = 400;
  cfg.k = 3;
  cfg.z = 12;
  cfg.seed = 9;
  const auto inst = make_planted(cfg);
  const auto parts =
      partition_points(inst.points, 8, PartitionKind::EvenSorted, 0);
  // Machine 0 holds the 50 smallest x's, which include all 12 outliers.
  std::size_t outliers_on_m0 = 0;
  for (const auto& wp : parts[0])
    if (wp.p[0] < -10.0) ++outliers_on_m0;
  EXPECT_EQ(outliers_on_m0, 12u);
}

}  // namespace
}  // namespace kc::mpc
