#include <gtest/gtest.h>

#include "sketch/f0_estimator.hpp"
#include "util/rng.hpp"

namespace kc::sketch {
namespace {

TEST(F0, ExactForSmallSupports) {
  F0Estimator est(0.5, 1);
  for (int i = 0; i < 10; ++i) est.update(static_cast<std::uint64_t>(i), 1);
  EXPECT_DOUBLE_EQ(est.estimate(), 10.0);
}

TEST(F0, ZeroWhenEmpty) {
  F0Estimator est(0.5, 2);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
}

TEST(F0, DeletionsReduceCount) {
  F0Estimator est(0.5, 3);
  for (int i = 0; i < 20; ++i) est.update(static_cast<std::uint64_t>(i), 1);
  for (int i = 0; i < 15; ++i) est.update(static_cast<std::uint64_t>(i), -1);
  EXPECT_DOUBLE_EQ(est.estimate(), 5.0);
}

TEST(F0, MultiplicityDoesNotInflate) {
  F0Estimator est(0.5, 4);
  for (int rep = 0; rep < 50; ++rep)
    for (int i = 0; i < 7; ++i) est.update(static_cast<std::uint64_t>(i), 1);
  EXPECT_DOUBLE_EQ(est.estimate(), 7.0);
}

TEST(F0, LargeSupportWithinTolerance) {
  // F0 = 20000 with ε = 0.25: estimate within ±35 % across seeds (the
  // constant in s₀ is modest; the bench tracks the real accuracy curve).
  const double f0 = 20000;
  int good = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    F0Estimator est(0.25, seed);
    for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(f0); ++i)
      est.update(i * 2654435761ULL, 1);
    const double e = est.estimate();
    if (std::abs(e - f0) <= 0.35 * f0) ++good;
  }
  EXPECT_GE(good, 4);
}

TEST(F0, TurnstileChurnStaysAccurate) {
  F0Estimator est(0.25, 9);
  Rng rng(5);
  // Insert 5000, delete a random 2500 of them.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    keys.push_back(i * 11400714819323198485ULL);
    est.update(keys.back(), 1);
  }
  for (std::size_t i = 0; i < 2500; ++i) est.update(keys[i * 2], -1);
  const double e = est.estimate();
  EXPECT_NEAR(e, 2500.0, 2500.0 * 0.35);
}

TEST(F0, WordsAccountingPositive) {
  F0Estimator est(0.5, 10);
  EXPECT_GT(est.words(), 100u);
}

}  // namespace
}  // namespace kc::sketch
