// Shared helpers for the test suite: small deterministic instances and
// parameter grids used by the property-style TEST_P sweeps.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "workload/generators.hpp"

namespace kc::testing {

/// Small planted instance intended for exact cross-checks.
[[nodiscard]] PlantedInstance tiny_planted(int k, std::int64_t z, int dim,
                                           std::uint64_t seed);

/// Parameter grid for property sweeps: (k, z, eps, dim, seed).
struct SweepParam {
  int k;
  std::int64_t z;
  double eps;
  int dim;
  std::uint64_t seed;

  [[nodiscard]] std::string name() const;
};

/// Canonical sweep used across modules (kept modest so the full suite runs
/// in seconds).
[[nodiscard]] std::vector<SweepParam> default_sweep();

}  // namespace kc::testing
