// The performance layer's correctness contract (geometry/kernels.hpp,
// geometry/grid_index.hpp): inline kernels are bit-identical to the Metric
// scalar path, the grid index yields a superset of every ball query, and
// the grid-accelerated hot paths (mbc_with_radius, charikar_run) produce
// exactly the same output as the retained scalar references across norms
// and dimensions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/charikar.hpp"
#include "core/mbc.hpp"
#include "geometry/grid_index.hpp"
#include "geometry/kernels.hpp"
#include "geometry/metric.hpp"
#include "util/rng.hpp"

namespace kc {
namespace {

// Random weighted points on a coarse lattice: quantized coordinates make
// exact-tie and exactly-on-the-boundary distances common, which is where a
// sloppy reimplementation would diverge from the reference.
WeightedSet lattice_points(std::size_t n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  WeightedSet pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (int j = 0; j < dim; ++j)
      p[j] = 0.25 * static_cast<double>(rng.uniform_int(-20, 20));
    pts.push_back({p, static_cast<std::int64_t>(rng.uniform(5)) + 1});
  }
  return pts;
}

const Norm kNorms[] = {Norm::L2, Norm::Linf, Norm::L1};

TEST(Kernels, DistKeyMatchesMetricExactly) {
  Rng rng(7);
  for (const Norm norm : kNorms) {
    const Metric metric{norm};
    for (int dim = 1; dim <= Point::kMaxDim; ++dim) {
      for (int rep = 0; rep < 50; ++rep) {
        Point a(dim), b(dim);
        for (int j = 0; j < dim; ++j) {
          a[j] = rng.uniform_real(-10.0, 10.0);
          b[j] = rng.uniform_real(-10.0, 10.0);
        }
        const double key = kernels::dist_key(norm, a.coords().data(),
                                             b.coords().data(), dim);
        // Bit-identical, not just close: the grid paths rely on exact
        // threshold agreement with the scalar code.
        EXPECT_EQ(key, metric.dist_key(a, b));
        EXPECT_EQ(metric.key_to_dist(key), metric.dist(a, b));
      }
    }
  }
}

TEST(Kernels, PointBufferKeysMatchScalar) {
  const int dim = 3;
  const WeightedSet pts = lattice_points(200, dim, 11);
  const kernels::PointBuffer buf(pts);
  ASSERT_EQ(buf.size(), pts.size());
  ASSERT_EQ(buf.dim(), dim);
  const Point q{1.25, -0.5, 3.0};
  for (const Norm norm : kNorms) {
    const Metric metric{norm};
    std::vector<double> batch(pts.size());
    switch (norm) {
      case Norm::L2:
        kernels::compute_keys<Norm::L2>(buf, q.coords().data(), batch.data());
        break;
      case Norm::Linf:
        kernels::compute_keys<Norm::Linf>(buf, q.coords().data(),
                                          batch.data());
        break;
      default:
        kernels::compute_keys<Norm::L1>(buf, q.coords().data(), batch.data());
        break;
    }
    for (std::size_t i = 0; i < pts.size(); ++i)
      EXPECT_EQ(batch[i], metric.dist_key(pts[i].p, q))
          << metric.name() << " point " << i;
  }
}

TEST(Kernels, RelaxMinKeysMatchesScalarSweep) {
  const int dim = 2;
  const WeightedSet pts = lattice_points(300, dim, 13);
  const Metric metric{Norm::L2};
  const kernels::PointBuffer buf(pts);
  const std::size_t n = pts.size();

  std::vector<double> keys(n, std::numeric_limits<double>::infinity());
  std::vector<double> ref_keys = keys;
  std::vector<std::uint32_t> assign(n, 0), ref_assign(n, 0);
  std::vector<double> scratch(n);

  for (std::uint32_t label = 0; label < 5; ++label) {
    const Point& c = pts[label * 37].p;
    const kernels::RelaxResult rr = kernels::relax_min_keys<Norm::L2>(
        buf, c.coords().data(), label, keys.data(), assign.data(),
        scratch.data());
    // Scalar reference sweep (the historical gonzalez inner loop).
    double far_key = -1.0;
    std::size_t far_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double k2 = metric.dist_key(pts[i].p, c);
      if (k2 < ref_keys[i]) {
        ref_keys[i] = k2;
        ref_assign[i] = label;
      }
      if (ref_keys[i] > far_key) {
        far_key = ref_keys[i];
        far_idx = i;
      }
    }
    EXPECT_EQ(rr.far_idx, far_idx);
    EXPECT_EQ(rr.far_key, far_key);
    EXPECT_EQ(keys, ref_keys);
    EXPECT_EQ(assign, ref_assign);
  }
}

TEST(GridIndex, CandidatesAreASupersetOfEveryBall) {
  for (const Norm norm : kNorms) {
    const Metric metric{norm};
    for (int dim = 1; dim <= 3; ++dim) {
      const WeightedSet pts = lattice_points(150, dim, 17 + dim);
      for (const double radius : {0.25, 0.8, 2.0}) {
        GridIndex grid(radius, dim);
        for (std::size_t i = 0; i < pts.size(); ++i)
          grid.insert(pts[i].p, static_cast<std::uint32_t>(i));
        for (std::size_t qi = 0; qi < pts.size(); qi += 7) {
          std::vector<bool> seen(pts.size(), false);
          std::size_t yielded = 0;
          grid.for_each_candidate(
              pts[qi].p.coords().data(), grid.reach_for(radius),
              [&](std::span<const std::uint32_t> cell) {
                for (const std::uint32_t j : cell) {
                  EXPECT_FALSE(seen[j]) << "index yielded twice";
                  seen[j] = true;
                  ++yielded;
                }
              });
          for (std::size_t j = 0; j < pts.size(); ++j) {
            if (metric.dist(pts[qi].p, pts[j].p) <= radius) {
              EXPECT_TRUE(seen[j])
                  << metric.name() << " d=" << dim << " r=" << radius
                  << ": point " << j << " within radius but not yielded";
            }
          }
          (void)yielded;
        }
      }
    }
  }
}

void expect_same_covering(const MiniBallCovering& got,
                          const MiniBallCovering& want) {
  ASSERT_EQ(got.reps.size(), want.reps.size());
  for (std::size_t r = 0; r < want.reps.size(); ++r) {
    EXPECT_EQ(got.reps[r].p, want.reps[r].p) << "rep " << r;
    EXPECT_EQ(got.reps[r].w, want.reps[r].w) << "rep " << r;
  }
  EXPECT_EQ(got.assignment, want.assignment);
  EXPECT_EQ(got.cover_radius, want.cover_radius);
}

TEST(GridEquivalence, MbcWithRadiusMatchesScalarReference) {
  for (const Norm norm : kNorms) {
    const Metric metric{norm};
    for (int dim = 1; dim <= 3; ++dim) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const WeightedSet pts = lattice_points(400, dim, seed * 101);
        // 0.25-quantized coordinates make 0.5 / 1.0 exact-boundary radii.
        for (const double radius : {0.5, 1.0, 2.75}) {
          SCOPED_TRACE(std::string(metric.name()) + " d=" +
                       std::to_string(dim) + " r=" + std::to_string(radius));
          const MiniBallCovering ref =
              mbc_with_radius_scalar(pts, radius, metric);
          // Pure grid path and the adaptive public entry point must both
          // reproduce the scalar reference exactly.
          expect_same_covering(mbc_with_radius_grid(pts, radius, metric),
                               ref);
          expect_same_covering(mbc_with_radius(pts, radius, metric), ref);
        }
      }
    }
  }
}

TEST(GridEquivalence, CharikarRunMatchesScalarReference) {
  for (const Norm norm : kNorms) {
    const Metric metric{norm};
    for (int dim = 1; dim <= 3; ++dim) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const WeightedSet pts = lattice_points(300, dim, seed * 211);
        for (const int k : {1, 3}) {
          for (const std::int64_t z : {0LL, 25LL}) {
            for (const double r : {0.25, 0.75, 3.0}) {
              const CharikarRun grid = charikar_run(pts, k, z, r, metric);
              const CharikarRun ref =
                  charikar_run_scalar(pts, k, z, r, metric);
              SCOPED_TRACE(std::string(metric.name()) + " d=" +
                           std::to_string(dim) + " k=" + std::to_string(k) +
                           " z=" + std::to_string(z) +
                           " r=" + std::to_string(r));
              ASSERT_EQ(grid.centers.size(), ref.centers.size());
              for (std::size_t c = 0; c < ref.centers.size(); ++c)
                EXPECT_EQ(grid.centers[c], ref.centers[c]) << "center " << c;
              EXPECT_EQ(grid.uncovered, ref.uncovered);
              EXPECT_EQ(grid.success, ref.success);
            }
          }
        }
      }
    }
  }
}

TEST(GridEquivalence, CustomMetricStillWorksViaScalarFallback) {
  // A weighted L1 variant: no kernels, no grid — but the public entry
  // points must keep producing the reference answer.
  const Metric metric{DistanceFn([](const Point& a, const Point& b) {
    double s = 0.0;
    for (int j = 0; j < a.dim(); ++j) s += 2.0 * std::fabs(a[j] - b[j]);
    return s;
  })};
  const WeightedSet pts = lattice_points(100, 2, 5);
  const MiniBallCovering got = mbc_with_radius(pts, 1.0, metric);
  const MiniBallCovering want = mbc_with_radius_scalar(pts, 1.0, metric);
  expect_same_covering(got, want);
  const CharikarRun run = charikar_run(pts, 2, 5, 1.0, metric);
  const CharikarRun ref = charikar_run_scalar(pts, 2, 5, 1.0, metric);
  EXPECT_EQ(run.uncovered, ref.uncovered);
  EXPECT_EQ(run.success, ref.success);
}

}  // namespace
}  // namespace kc
