#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "sketch/field.hpp"
#include "sketch/hashing.hpp"

namespace kc::sketch {
namespace {

TEST(Field, AddSubInverse) {
  const std::uint64_t a = kPrime - 2, b = 5;
  EXPECT_EQ(add_mod(a, b), 3u);  // wraps
  EXPECT_EQ(sub_mod(3, 5), kPrime - 2);
  EXPECT_EQ(sub_mod(5, 3), 2u);
}

TEST(Field, MulMatchesSmallCases) {
  EXPECT_EQ(mul_mod(7, 9), 63u);
  EXPECT_EQ(mul_mod(kPrime - 1, kPrime - 1), 1u);  // (−1)² = 1
  EXPECT_EQ(mul_mod(kPrime - 1, 2), kPrime - 2);   // −2
}

TEST(Field, Reduce128EdgeCases) {
  EXPECT_EQ(reduce128(0), 0u);
  EXPECT_EQ(reduce128(kPrime), 0u);
  EXPECT_EQ(reduce128(static_cast<__uint128_t>(kPrime) * 2), 0u);
  EXPECT_EQ(reduce128(static_cast<__uint128_t>(kPrime) + 5), 5u);
}

TEST(Field, PowAndInverse) {
  EXPECT_EQ(pow_mod(2, 10), 1024u);
  EXPECT_EQ(pow_mod(3, 0), 1u);
  for (std::uint64_t a : std::initializer_list<std::uint64_t>{2, 12345, kPrime - 7}) {
    EXPECT_EQ(mul_mod(a, inv_mod(a)), 1u) << a;
  }
}

TEST(Field, FermatHolds) {
  // a^(p−1) = 1 for a ≠ 0.
  EXPECT_EQ(pow_mod(987654321, kPrime - 1), 1u);
}

TEST(Field, EmbedKeyNonZero) {
  EXPECT_EQ(embed_key(0), 1u);
  EXPECT_GT(embed_key(~0ULL), 0u);
}

TEST(PolyHash, DeterministicAndSeedSensitive) {
  PolyHash h1(5, 1), h2(5, 1), h3(5, 2);
  EXPECT_EQ(h1(42), h2(42));
  int diff = 0;
  for (std::uint64_t x = 0; x < 50; ++x)
    if (h1(x) != h3(x)) ++diff;
  EXPECT_GT(diff, 45);
}

TEST(PolyHash, BucketsRoughlyUniform) {
  PolyHash h(7, 9);
  std::array<int, 16> counts{};
  const int n = 64000;
  for (int x = 0; x < n; ++x)
    ++counts[h.bucket(static_cast<std::uint64_t>(x), 16)];
  for (int c : counts) {
    EXPECT_GT(c, n / 16 - 500);
    EXPECT_LT(c, n / 16 + 500);
  }
}

TEST(PolyHash, UnitInRange) {
  PolyHash h(3, 4);
  for (std::uint64_t x = 0; x < 1000; ++x) {
    const double u = h.unit(x);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PolyHash, LevelsGeometric) {
  PolyHash h(7, 11);
  std::array<int, 8> level_counts{};
  const int n = 100000;
  for (int x = 0; x < n; ++x) {
    const int l = h.level(static_cast<std::uint64_t>(x), 7);
    for (int i = 0; i <= l; ++i) ++level_counts[static_cast<std::size_t>(i)];
  }
  // Level ℓ retains ≈ n/2^ℓ keys.
  for (int l = 1; l <= 5; ++l) {
    const double expected = n / std::pow(2.0, l);
    EXPECT_NEAR(level_counts[static_cast<std::size_t>(l)], expected,
                expected * 0.15 + 50);
  }
}

TEST(PolyHash, PairwiseDistinctness) {
  // Different keys collide with probability ~1/p — never in this sample.
  PolyHash h(2, 21);
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 2000; ++x) seen.insert(h(x));
  EXPECT_EQ(seen.size(), 2000u);
}

}  // namespace
}  // namespace kc::sketch
