#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/brute_force.hpp"
#include "core/gonzalez.hpp"
#include "test_support.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

TEST(Gonzalez, SelectsRequestedCenters) {
  const WeightedSet pts = with_unit_weights(
      {Point{0.0}, Point{10.0}, Point{20.0}, Point{30.0}});
  const GonzalezResult g = gonzalez(pts, 3, kL2);
  EXPECT_EQ(g.center_indices.size(), 3u);
  EXPECT_EQ(g.delta.size(), 3u);
}

TEST(Gonzalez, DeltaNonIncreasing) {
  const auto inst = testing::tiny_planted(3, 4, 2, 17);
  const GonzalezResult g = gonzalez(inst.points, 20, kL2);
  for (std::size_t t = 1; t < g.delta.size(); ++t)
    EXPECT_LE(g.delta[t], g.delta[t - 1] + 1e-12);
}

TEST(Gonzalez, CentersArePairwiseSeparated) {
  // Selected centers must be pairwise ≥ δ_final apart.
  const auto inst = testing::tiny_planted(3, 2, 2, 5);
  const GonzalezResult g = gonzalez(inst.points, 12, kL2);
  const double delta = g.delta.back();
  const PointSet cs = g.centers(inst.points);
  for (std::size_t i = 0; i < cs.size(); ++i)
    for (std::size_t j = i + 1; j < cs.size(); ++j)
      EXPECT_GE(kL2.dist(cs[i], cs[j]), delta - 1e-9);
}

TEST(Gonzalez, AssignmentIsNearestSelected) {
  const auto inst = testing::tiny_planted(2, 0, 2, 11);
  const GonzalezResult g = gonzalez(inst.points, 6, kL2);
  const PointSet cs = g.centers(inst.points);
  for (std::size_t i = 0; i < inst.points.size(); ++i) {
    const double assigned = kL2.dist(inst.points[i].p, cs[g.assignment[i]]);
    for (const auto& c : cs)
      EXPECT_LE(assigned, kL2.dist(inst.points[i].p, c) + 1e-9);
  }
}

TEST(Gonzalez, TwoApproxOfKCenterNoOutliers) {
  // δ_k ≤ 2·opt_k (classic guarantee), checked against brute force.
  const auto inst = testing::tiny_planted(3, 0, 1, 23);
  WeightedSet small(inst.points.begin(),
                    inst.points.begin() + std::min<std::size_t>(
                                              inst.points.size(), 14));
  const int k = 3;
  const GonzalezResult g = gonzalez(small, k, kL2);
  const double opt = brute_force_radius(small, k, 0, kL2);
  EXPECT_LE(g.delta.back(), 2.0 * opt + 1e-9);
}

TEST(Gonzalez, StopRadiusHonored) {
  const auto inst = testing::tiny_planted(4, 0, 2, 3);
  const GonzalezResult g = gonzalez(inst.points, 1000, kL2, 0.5);
  // Stops as soon as covering radius ≤ 0.5 (well before 1000 centers for a
  // clustered instance).
  EXPECT_LE(g.delta.back(), 0.5);
  EXPECT_LT(g.center_indices.size(), inst.points.size());
}

TEST(Gonzalez, SummaryPreservesWeight) {
  auto inst = testing::tiny_planted(3, 4, 2, 29);
  inst.points[0].w = 7;  // exercise non-unit weights
  const GonzalezResult g = gonzalez(inst.points, 9, kL2);
  const WeightedSet s = gonzalez_summary(inst.points, g);
  EXPECT_EQ(total_weight(s), total_weight(inst.points));
  EXPECT_EQ(s.size(), g.center_indices.size());
}

TEST(Gonzalez, SummaryCoveringRadiusIsDelta) {
  const auto inst = testing::tiny_planted(2, 2, 2, 31);
  const GonzalezResult g = gonzalez(inst.points, 8, kL2);
  const WeightedSet s = gonzalez_summary(inst.points, g);
  const double delta = g.delta.back();
  for (std::size_t i = 0; i < inst.points.size(); ++i) {
    EXPECT_LE(kL2.dist(inst.points[i].p, s[g.assignment[i]].p), delta + 1e-9);
  }
}

TEST(Gonzalez, DegenerateAllEqualPoints) {
  WeightedSet pts(5, WeightedPoint{Point{1.0, 1.0}, 1});
  const GonzalezResult g = gonzalez(pts, 3, kL2);
  // All points coincide: one center suffices, radius 0, early stop.
  EXPECT_EQ(g.center_indices.size(), 1u);
  EXPECT_DOUBLE_EQ(g.delta.back(), 0.0);
}

TEST(Gonzalez, PackingBoundDrivesDeltaBelowEpsOpt) {
  // With τ = k(4/ε)^d + z + 1 centers, δ_τ ≤ ε·opt (Lemma 6 packing).
  const auto inst = testing::tiny_planted(2, 3, 1, 37);
  const double eps = 1.0;
  const int dim = 1;
  const auto tau = static_cast<int>(
      2 * std::pow(std::ceil(4.0 / eps), dim) + 3 + 1);
  const GonzalezResult g = gonzalez(inst.points, tau, kL2);
  // opt ≥ opt_lo from the planted bracket.
  EXPECT_LE(g.delta.back(), eps * inst.opt_hi + 1e-9);
}

}  // namespace
}  // namespace kc
