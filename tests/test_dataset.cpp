// Tests of the dataset layer (dataset/): the .kcb container's write ->
// mmap -> read bit-identity and zero-copy contract, the ChunkedReader's
// chunking-invariance, the strict text importers, and the engine's
// out-of-core paths (disk-backed runs must reproduce the in-memory reports
// column for column).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "dataset/kcb.hpp"
#include "dataset/source.hpp"
#include "dataset/text_import.hpp"
#include "engine/registry.hpp"
#include "workload/generators.hpp"

namespace kc::dataset {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "kc_dataset_" + name;
}

/// A small deterministic buffer with spread-out values in every column.
kernels::PointBuffer small_buffer(std::size_t n, int dim) {
  kernels::PointBuffer buf(dim);
  buf.reserve(n);
  std::vector<double> row(static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j)
      row[static_cast<std::size_t>(j)] =
          static_cast<double>(i) * 1.25 - static_cast<double>(j) * 0.5 +
          (i % 7) * 1e-3;
    buf.append(row.data());
  }
  return buf;
}

/// Rewrites the header of a written .kcb file through `mutate`, fixing the
/// header checksum afterwards unless `break_checksum`.
void rewrite_header(const std::string& path,
                    const std::function<void(KcbHeader&)>& mutate,
                    bool fix_checksum) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  KcbHeader h{};
  f.read(reinterpret_cast<char*>(&h), sizeof h);
  mutate(h);
  if (fix_checksum) {
    h.header_checksum = 0;
    h.header_checksum = fnv1a(&h, sizeof h);
  }
  f.seekp(0);
  f.write(reinterpret_cast<const char*>(&h), sizeof h);
}

TEST(KcbFormatTest, WriteMmapReadBitIdentity) {
  const std::string path = tmp_path("roundtrip.kcb");
  const kernels::PointBuffer buf = small_buffer(257, 3);
  write_kcb(path, buf);

  MappedKcb map(path);
  EXPECT_EQ(map.dim(), 3);
  EXPECT_EQ(map.size(), 257u);
  const auto view = map.view();
  for (int j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < buf.size(); ++i)
      // Bitwise, not approximate: the file is a memory image.
      EXPECT_EQ(std::memcmp(&view.col(j)[i], &buf.col(j)[i], sizeof(double)),
                0)
          << "row " << i << " col " << j;
  EXPECT_TRUE(map.verify_data());
  std::remove(path.c_str());
}

TEST(KcbFormatTest, BoundingBoxMatchesColumnExtremes) {
  const std::string path = tmp_path("bbox.kcb");
  const kernels::PointBuffer buf = small_buffer(100, 2);
  write_kcb(path, buf);
  MappedKcb map(path);
  for (int j = 0; j < 2; ++j) {
    double lo = buf.col(j)[0], hi = buf.col(j)[0];
    for (std::size_t i = 1; i < buf.size(); ++i) {
      lo = std::min(lo, buf.col(j)[i]);
      hi = std::max(hi, buf.col(j)[i]);
    }
    EXPECT_EQ(map.box_lo()[static_cast<std::size_t>(j)], lo);
    EXPECT_EQ(map.box_hi()[static_cast<std::size_t>(j)], hi);
  }
  std::remove(path.c_str());
}

TEST(KcbFormatTest, ChunksAliasTheMappingPointerIdentity) {
  const std::string path = tmp_path("zerocopy.kcb");
  write_kcb(path, small_buffer(500, 2));
  KcbSource src(path);
  const double* base = src.mapped().data();
  // Column j of rows [offset, ...) must point into the mapping at
  // j * n + offset — no copy anywhere on the read path.
  const auto chunk = src.chunk(123, 77);
  EXPECT_EQ(chunk.col(0), base + 123);
  EXPECT_EQ(chunk.col(1), base + 500 + 123);
  std::remove(path.c_str());
}

TEST(KcbFormatTest, RejectsTruncatedFile) {
  const std::string path = tmp_path("truncated.kcb");
  write_kcb(path, small_buffer(64, 2));
  // Chop off the last 100 bytes of data.
  {
    std::fstream f(path, std::ios::in | std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 100);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(MappedKcb{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(KcbFormatTest, RejectsCorruptedHeader) {
  const std::string path = tmp_path("corrupt_header.kcb");
  write_kcb(path, small_buffer(64, 2));
  rewrite_header(
      path, [](KcbHeader& h) { h.n += 1; }, /*fix_checksum=*/false);
  try {
    MappedKcb map(path);
    FAIL() << "corrupted header accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(KcbFormatTest, RejectsWrongEndianness) {
  const std::string path = tmp_path("endian.kcb");
  write_kcb(path, small_buffer(64, 2));
  // A byte-swapped endian marker with a *valid* checksum: specifically the
  // endianness check must fire, not the checksum one.
  rewrite_header(
      path, [](KcbHeader& h) { h.endian = 0x04030201u; },
      /*fix_checksum=*/true);
  try {
    MappedKcb map(path);
    FAIL() << "wrong-endian file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("endian"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(KcbFormatTest, RejectsBadMagicAndWrongVersion) {
  const std::string path = tmp_path("magic.kcb");
  write_kcb(path, small_buffer(8, 2));
  rewrite_header(
      path, [](KcbHeader& h) { h.magic[0] = 'X'; }, /*fix_checksum=*/true);
  EXPECT_THROW(MappedKcb{path}, std::runtime_error);
  write_kcb(path, small_buffer(8, 2));
  rewrite_header(
      path, [](KcbHeader& h) { h.version = 99; }, /*fix_checksum=*/true);
  EXPECT_THROW(MappedKcb{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(KcbFormatTest, DetectsFlippedDataByte) {
  const std::string path = tmp_path("bitrot.kcb");
  write_kcb(path, small_buffer(64, 2));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kKcbDataOffset) + 321);
    char b = 0;
    f.seekg(static_cast<std::streamoff>(kKcbDataOffset) + 321);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(kKcbDataOffset) + 321);
    f.write(&b, 1);
  }
  MappedKcb map(path);  // opening is O(1) and does not touch the data
  EXPECT_FALSE(map.verify_data());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sources and the chunked reader

TEST(GeneratedSourceTest, ContentIsChunkingInvariant) {
  GeneratedConfig cfg;
  cfg.n = 4001;
  cfg.dim = 3;
  cfg.seed = 11;
  GeneratedSource a(cfg), b(cfg);
  ReaderOptions small_chunks;
  small_chunks.chunk_points = 37;  // adversarially odd
  ReaderOptions one_chunk;
  one_chunk.chunk_points = 100000;
  ChunkedReader ra(a, small_chunks), rb(b, one_chunk);

  std::vector<double> flat_a, flat_b;
  ChunkedReader::Chunk ch;
  while (ra.next(ch))
    for (std::size_t i = 0; i < ch.view.size(); ++i)
      for (int j = 0; j < ch.view.dim(); ++j)
        flat_a.push_back(ch.view.col(j)[i]);
  while (rb.next(ch))
    for (std::size_t i = 0; i < ch.view.size(); ++i)
      for (int j = 0; j < ch.view.dim(); ++j)
        flat_b.push_back(ch.view.col(j)[i]);
  ASSERT_EQ(flat_a.size(), flat_b.size());
  for (std::size_t i = 0; i < flat_a.size(); ++i)
    ASSERT_EQ(flat_a[i], flat_b[i]) << "index " << i;
}

TEST(GeneratedSourceTest, BboxIsExactMinMax) {
  GeneratedConfig cfg;
  cfg.n = 2000;
  cfg.dim = 2;
  cfg.seed = 5;
  GeneratedSource src(cfg);
  std::vector<double> row(2), lo(2, 1e300), hi(2, -1e300);
  for (std::uint64_t i = 0; i < cfg.n; ++i) {
    src.point_at(i, row.data());
    for (int j = 0; j < 2; ++j) {
      lo[static_cast<std::size_t>(j)] =
          std::min(lo[static_cast<std::size_t>(j)], row[j]);
      hi[static_cast<std::size_t>(j)] =
          std::max(hi[static_cast<std::size_t>(j)], row[j]);
    }
  }
  EXPECT_EQ(src.box_lo(), lo);
  EXPECT_EQ(src.box_hi(), hi);
}

TEST(ChunkedReaderTest, SweepsChunkBoundariesWithoutLossOrDuplication) {
  const std::string path = tmp_path("sweep.kcb");
  const std::size_t n = 1000;
  write_kcb(path, small_buffer(n, 2));
  KcbSource src(path);
  const auto full = src.mapped().view();
  // Boundary-adversarial chunk sizes: 1, primes, n-1, n, > n.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{999},
                                  std::size_t{1000}, std::size_t{5000}}) {
    ReaderOptions opts;
    opts.chunk_points = chunk;
    ChunkedReader reader(src, opts);
    std::size_t rows = 0;
    ChunkedReader::Chunk ch;
    while (reader.next(ch)) {
      ASSERT_EQ(ch.offset, rows);
      for (std::size_t i = 0; i < ch.view.size(); ++i)
        for (int j = 0; j < 2; ++j)
          ASSERT_EQ(ch.view.col(j)[i], full.col(j)[rows + i])
              << "chunk=" << chunk;
      rows += ch.view.size();
    }
    EXPECT_EQ(rows, n) << "chunk=" << chunk;
  }
  std::remove(path.c_str());
}

TEST(ChunkedReaderTest, ReleasedPagesRefaultWithIdenticalBytes) {
  const std::string path = tmp_path("release.kcb");
  const std::size_t n = 9000;
  write_kcb(path, small_buffer(n, 2));
  KcbSource src(path);
  ReaderOptions opts;
  opts.chunk_points = 512;  // many chunks -> many release() calls
  ChunkedReader reader(src, opts);
  ChunkedReader::Chunk ch;
  while (reader.next(ch)) {
  }
  // After the pass dropped its pages, a fresh read must still see the
  // exact file image (DONTNEED on a read-only mapping is non-destructive).
  const kernels::PointBuffer buf = small_buffer(n, 2);
  const auto view = src.mapped().view();
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(view.col(1)[i], buf.col(1)[i]) << i;
  std::remove(path.c_str());
}

TEST(ChunkedRadiusTest, MatchesInMemoryEvaluationAtEveryChunkSize) {
  GeneratedConfig gcfg;
  gcfg.n = 3000;
  gcfg.dim = 2;
  gcfg.seed = 3;
  GeneratedSource src(gcfg);

  // Materialize once for the in-memory reference.
  WeightedSet pts;
  std::vector<double> row(2);
  for (std::uint64_t i = 0; i < gcfg.n; ++i) {
    src.point_at(i, row.data());
    pts.push_back({Point(std::span<const double>(row)), 1});
  }
  PointSet centers{Point({0.0, 0.0}), Point({40.0, 0.0}), Point({0.0, 40.0})};
  for (const Norm norm : {Norm::L2, Norm::Linf, Norm::L1}) {
    const Metric metric{norm};
    const double want = radius_with_outliers(pts, centers, 25, metric);
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{999}, std::size_t{100000}}) {
      ReaderOptions opts;
      opts.chunk_points = chunk;
      const double got =
          chunked_radius_with_outliers(src, centers, 25, metric, opts);
      // Bit-identity, not tolerance: same per-point kernel accumulation.
      EXPECT_EQ(got, want) << metric.name() << " chunk=" << chunk;
    }
  }
}

TEST(SourceWriteTest, GeneratedToKcbRoundTripsExactly) {
  const std::string path = tmp_path("gen.kcb");
  GeneratedConfig cfg;
  cfg.n = 1234;
  cfg.dim = 2;
  cfg.seed = 9;
  GeneratedSource gen(cfg);
  EXPECT_EQ(write_kcb(path, gen), cfg.n);

  KcbSource disk(path);
  EXPECT_EQ(disk.box_lo(), gen.box_lo());
  EXPECT_EQ(disk.box_hi(), gen.box_hi());
  const auto view = disk.mapped().view();
  std::vector<double> row(2);
  for (std::uint64_t i = 0; i < cfg.n; ++i) {
    gen.point_at(i, row.data());
    for (int j = 0; j < 2; ++j)
      ASSERT_EQ(view.col(j)[i], row[j]) << "row " << i;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Text importers

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

TEST(CsvImportTest, ParsesPointsTolerantOfHeaderCommentsAndBlanks) {
  const std::string path = tmp_path("points.csv");
  write_file(path,
             "# a comment\n"
             "x,y\n"
             "\n"
             "1.5,2.5\n"
             "-3.0,4.0\n");
  const WeightedSet pts = read_csv_points(path);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].p[0], 1.5);
  EXPECT_EQ(pts[1].p[1], 4.0);
  EXPECT_EQ(pts[0].w, 1);
  std::remove(path.c_str());
}

TEST(CsvImportTest, RejectsTrailingGarbageInsideACell) {
  const std::string path = tmp_path("garbage.csv");
  write_file(path, "1.0,2.0\n1.5abc,2.0\n");
  try {
    (void)read_csv_points(path);
    FAIL() << "trailing garbage accepted";
  } catch (const std::runtime_error& e) {
    // The diagnostic names the line and column.
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("column 1"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CsvImportTest, RejectsNonFiniteAndInconsistentRows) {
  const std::string path = tmp_path("nan.csv");
  write_file(path, "1.0,nan\n");
  EXPECT_THROW(read_csv_points(path), std::runtime_error);
  write_file(path, "1.0,inf\n");
  EXPECT_THROW(read_csv_points(path), std::runtime_error);
  write_file(path, "1.0,2.0\n3.0,4.0,5.0\n");
  EXPECT_THROW(read_csv_points(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CsvImportTest, WeightedModeParsesAndValidatesWeights) {
  const std::string path = tmp_path("weighted.csv");
  write_file(path, "1.0,2.0,3\n4.0,5.0,1\n");
  const WeightedSet pts = read_csv_points(path, /*weighted=*/true);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].w, 3);
  EXPECT_EQ(pts[0].p.dim(), 2);
  write_file(path, "1.0,2.0,0\n");
  EXPECT_THROW(read_csv_points(path, true), std::runtime_error);
  write_file(path, "1.0,2.0,1.5\n");
  EXPECT_THROW(read_csv_points(path, true), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CsvImportTest, CsvToKcbRoundTrip) {
  const std::string csv = tmp_path("rt.csv");
  const std::string kcb = tmp_path("rt.kcb");
  write_file(csv,
             "x,y\n"
             "0.125,7.5\n"
             "1e-3,-2.25\n"
             "1000.5,3.75\n");
  EXPECT_EQ(csv_to_kcb(csv, kcb), 3u);
  MappedKcb map(kcb);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.dim(), 2);
  const auto view = map.view();
  EXPECT_EQ(view.col(0)[0], 0.125);
  EXPECT_EQ(view.col(0)[1], 1e-3);
  EXPECT_EQ(view.col(1)[2], 3.75);
  EXPECT_TRUE(map.verify_data());
  std::remove(csv.c_str());
  std::remove(kcb.c_str());
}

TEST(MtxImportTest, DenseArrayRoundTripAndRejections) {
  const std::string mtx = tmp_path("m.mtx");
  const std::string kcb = tmp_path("m.kcb");
  // Matrix-Market dense arrays list values column-major: column 0's three
  // rows, then column 1's.
  write_file(mtx,
             "%%MatrixMarket matrix array real general\n"
             "% comment\n"
             "3 2\n"
             "1.0\n2.0\n3.0\n"
             "4.0\n5.0\n6.0\n");
  EXPECT_EQ(mtx_to_kcb(mtx, kcb), 3u);
  MappedKcb map(kcb);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.dim(), 2);
  const auto view = map.view();
  EXPECT_EQ(view.col(0)[1], 2.0);
  EXPECT_EQ(view.col(1)[0], 4.0);
  EXPECT_TRUE(map.verify_data());

  // Coordinate (sparse) banners, short files, and trailing values are
  // errors, not silent near-misses.
  write_file(mtx, "%%MatrixMarket matrix coordinate real general\n3 2 6\n");
  EXPECT_THROW(mtx_to_kcb(mtx, kcb), std::runtime_error);
  write_file(mtx,
             "%%MatrixMarket matrix array real general\n3 2\n1\n2\n3\n4\n5\n");
  EXPECT_THROW(mtx_to_kcb(mtx, kcb), std::runtime_error);
  write_file(
      mtx,
      "%%MatrixMarket matrix array real general\n1 2\n1\n2\n3\n");
  EXPECT_THROW(mtx_to_kcb(mtx, kcb), std::runtime_error);
  std::remove(mtx.c_str());
  std::remove(kcb.c_str());
}

// ---------------------------------------------------------------------------
// Engine out-of-core paths

TEST(EngineDatasetTest, DiskRunsReproduceInMemoryReports) {
  const std::string path = tmp_path("engine.kcb");
  GeneratedConfig gcfg;
  gcfg.n = 20000;
  gcfg.dim = 2;
  gcfg.seed = 21;
  GeneratedSource gen(gcfg);
  write_kcb(path, gen);

  engine::PipelineConfig cfg;
  cfg.k = 3;
  cfg.z = 40;
  cfg.dim = 2;
  cfg.eps = 0.5;
  cfg.seed = 2;
  cfg.delta = 1 << 9;
  cfg.with_direct_solve = false;  // mirrored by the out-of-core path

  auto src = std::make_shared<KcbSource>(path);
  const engine::Workload disk = engine::make_dataset_workload(src);
  const engine::Workload mem = engine::materialize_workload(*src);
  ASSERT_TRUE(disk.from_dataset());
  ASSERT_FALSE(mem.from_dataset());

  for (const std::string name : {"stream-insertion", "dynamic"}) {
    const auto d = engine::run(name, disk, cfg);
    const auto m = engine::run(name, mem, cfg);
    // Bit-identical reports: the disk path is the same computation fed by
    // chunks, not an approximation of it.
    EXPECT_EQ(d.report.coreset_size, m.report.coreset_size) << name;
    EXPECT_EQ(d.report.words, m.report.words) << name;
    EXPECT_EQ(d.report.radius, m.report.radius) << name;
    EXPECT_EQ(d.report.quality, m.report.quality) << name;
    EXPECT_EQ(d.solution.centers.size(), m.solution.centers.size()) << name;
  }
  std::remove(path.c_str());
}

TEST(EngineDatasetTest, NonStreamingPipelineRefusesDatasetWorkload) {
  const std::string path = tmp_path("refuse.kcb");
  GeneratedConfig gcfg;
  gcfg.n = 500;
  gcfg.dim = 2;
  GeneratedSource gen(gcfg);
  write_kcb(path, gen);
  auto src = std::make_shared<KcbSource>(path);
  const engine::Workload w = engine::make_dataset_workload(src);
  engine::PipelineConfig cfg;
  cfg.k = 3;
  cfg.z = 4;
  cfg.dim = 2;
  EXPECT_THROW((void)engine::run("offline", w, cfg), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EngineDatasetTest, MaterializeGuardsAgainstOversizedSources) {
  GeneratedConfig gcfg;
  gcfg.n = 2000;
  gcfg.dim = 2;
  GeneratedSource gen(gcfg);
  EXPECT_THROW((void)engine::materialize_workload(gen, /*max_points=*/1000),
               std::runtime_error);
}

}  // namespace
}  // namespace kc::dataset
