#include <gtest/gtest.h>

#include "core/radius_oracle.hpp"
#include "test_support.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

class OracleKinds : public ::testing::TestWithParam<OracleKind> {};

TEST_P(OracleKinds, TwoSidedOnPlanted) {
  OracleOptions opt;
  opt.kind = GetParam();
  for (std::uint64_t seed : {10ULL, 20ULL, 30ULL}) {
    const auto inst = testing::tiny_planted(3, 4, 2, seed);
    const RadiusEstimate est =
        estimate_radius(inst.points, 3, 4, kL2, opt);
    EXPECT_GE(est.radius, inst.opt_lo - 1e-9) << "seed " << seed;
    EXPECT_LE(est.radius, est.rho * inst.opt_hi + 1e-9) << "seed " << seed;
    EXPECT_GE(est.rho, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OracleKinds,
                         ::testing::Values(OracleKind::Charikar,
                                           OracleKind::Summary,
                                           OracleKind::Auto),
                         [](const auto& info) {
                           switch (info.param) {
                             case OracleKind::Charikar: return "Charikar";
                             case OracleKind::Summary: return "Summary";
                             case OracleKind::Auto: return "Auto";
                           }
                           return "?";
                         });

TEST(SummaryOracle, BudgetFormula) {
  // τ = k·⌈4/γ⌉^d + z + 1
  EXPECT_EQ(summary_center_budget(2, 5, 0.5, 2), 2 * 64 + 5 + 1);
  EXPECT_EQ(summary_center_budget(1, 0, 1.0, 1), 4 + 0 + 1);
}

TEST(SummaryOracle, LargeInstanceStillTwoSided) {
  PlantedConfig cfg;
  cfg.n = 4000;
  cfg.k = 3;
  cfg.z = 8;
  cfg.dim = 2;
  cfg.seed = 99;
  const auto inst = make_planted(cfg);
  OracleOptions opt;
  opt.kind = OracleKind::Summary;
  const RadiusEstimate est = estimate_radius(inst.points, 3, 8, kL2, opt);
  EXPECT_GE(est.radius, inst.opt_lo - 1e-9);
  EXPECT_LE(est.radius, est.rho * inst.opt_hi + 1e-9);
}

TEST(AutoOracle, SwitchesOnSize) {
  // Just a smoke check that Auto works below and above the threshold and
  // produces sane estimates in both regimes.
  OracleOptions opt;
  opt.kind = OracleKind::Auto;
  opt.auto_threshold = 100;

  const auto small = testing::tiny_planted(2, 2, 2, 5);
  const RadiusEstimate a = estimate_radius(small.points, 2, 2, kL2, opt);
  EXPECT_GT(a.radius, 0.0);

  PlantedConfig cfg;
  cfg.n = 1500;
  cfg.k = 2;
  cfg.z = 2;
  cfg.seed = 6;
  const auto big = make_planted(cfg);
  const RadiusEstimate b = estimate_radius(big.points, 2, 2, kL2, opt);
  EXPECT_GE(b.radius, big.opt_lo - 1e-9);
  EXPECT_LE(b.radius, b.rho * big.opt_hi + 1e-9);
}

}  // namespace
}  // namespace kc
