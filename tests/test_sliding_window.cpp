// Tests of the sliding-window structure (reconstruction of [18]): window
// semantics, weight capping, level safety, and space shape.

#include <gtest/gtest.h>

#include <map>

#include "core/cost.hpp"
#include "core/solver.hpp"
#include "stream/sliding_window.hpp"
#include "test_support.hpp"

namespace kc::stream {
namespace {

const Metric kL2{Norm::L2};

TEST(SlidingWindow, LevelLadderCoversRange) {
  SlidingWindow sw(2, 2, 0.5, 1, 100, 1.0, 64.0, kL2);
  // Levels 1, 2, 4, …, ≥ 64 → at least 7 levels.
  EXPECT_GE(sw.levels(), 7);
}

TEST(SlidingWindow, CoresetCoversAliveWindow) {
  // Feed a moving cluster; at query time every alive point must be within
  // cover_radius of some coreset rep.
  const std::int64_t W = 50;
  SlidingWindow sw(1, 2, 0.5, 1, W, 0.5, 64.0, kL2);
  std::vector<std::pair<Point, std::int64_t>> all;
  Rng rng(3);
  for (std::int64_t t = 1; t <= 200; ++t) {
    Point p{static_cast<double>(t) * 0.3 + rng.uniform_real(0, 1)};
    sw.insert(p, t);
    all.emplace_back(p, t);
  }
  const std::int64_t now = 200;
  const auto q = sw.query(now);
  ASSERT_GE(q.level, 0);
  for (const auto& [p, t] : all) {
    if (t <= now - W) continue;  // expired
    double best = 1e300;
    for (const auto& rep : q.coreset) best = std::min(best, kL2.dist(p, rep.p));
    EXPECT_LE(best, q.cover_radius + 1e-9) << "point at t=" << t;
  }
}

TEST(SlidingWindow, WeightsMatchAliveCountsWhenBelowCap) {
  const std::int64_t W = 30;
  const std::int64_t z = 5;
  SlidingWindow sw(1, z, 1.0, 1, W, 0.5, 16.0, kL2);
  // Two fixed locations; insert alternately.  Alive counts ≤ z+1 per
  // location must be exact.
  for (std::int64_t t = 1; t <= 8; ++t)
    sw.insert(Point{t % 2 == 0 ? 0.0 : 100.0}, t);
  const auto q = sw.query(8);
  ASSERT_GE(q.level, 0);
  std::int64_t total = 0;
  for (const auto& rep : q.coreset) total += rep.w;
  EXPECT_EQ(total, 8);  // all alive, 4+4
}

TEST(SlidingWindow, WeightsCappedAtZPlusOne) {
  const std::int64_t W = 100;
  const std::int64_t z = 3;
  SlidingWindow sw(1, z, 1.0, 1, W, 0.5, 16.0, kL2);
  for (std::int64_t t = 1; t <= 20; ++t) sw.insert(Point{0.0}, t);
  const auto q = sw.query(20);
  ASSERT_GE(q.level, 0);
  ASSERT_EQ(q.coreset.size(), 1u);
  EXPECT_EQ(q.coreset[0].w, z + 1);  // 20 alive, capped
}

TEST(SlidingWindow, ExpiredPointsLeaveCoreset) {
  const std::int64_t W = 10;
  SlidingWindow sw(1, 1, 1.0, 1, W, 0.5, 256.0, kL2);
  sw.insert(Point{0.0}, 1);
  for (std::int64_t t = 2; t <= 30; ++t) sw.insert(Point{200.0}, t);
  const auto q = sw.query(30);
  ASSERT_GE(q.level, 0);
  // The point at 0.0 expired at t=11; only the 200.0 location remains.
  for (const auto& rep : q.coreset) EXPECT_GT(rep.p[0], 100.0);
}

TEST(SlidingWindow, SpaceWithinKzPerLevelShape) {
  const std::int64_t W = 200;
  const std::int64_t z = 4;
  SlidingWindow sw(2, z, 1.0, 1, W, 0.5, 128.0, kL2);
  Rng rng(7);
  for (std::int64_t t = 1; t <= 2000; ++t)
    sw.insert(Point{rng.uniform_real(0, 100)}, t);
  const std::size_t per_level_cap = (sw.cap_per_level() + 1) *
                                    (static_cast<std::size_t>(z) + 2);
  EXPECT_LE(sw.peak_records(),
            per_level_cap * static_cast<std::size_t>(sw.levels()));
}

TEST(SlidingWindow, QueryMatchesOfflineRecompute) {
  // Compare the radius obtained from the window coreset against an offline
  // solve of the exact window contents.
  const std::int64_t W = 120;
  PlantedConfig cfg;
  cfg.n = 360;
  cfg.k = 2;
  cfg.z = 4;
  cfg.dim = 2;
  cfg.seed = 91;
  const auto inst = make_planted(cfg);
  SlidingWindow sw(2, 4, 0.5, 2, W, 0.05, 200.0, kL2);
  for (std::size_t i = 0; i < inst.points.size(); ++i)
    sw.insert(inst.points[i].p, static_cast<std::int64_t>(i + 1));
  const auto now = static_cast<std::int64_t>(inst.points.size());
  const auto q = sw.query(now);
  ASSERT_GE(q.level, 0);

  WeightedSet window;
  for (std::size_t i = inst.points.size() - static_cast<std::size_t>(W);
       i < inst.points.size(); ++i)
    window.push_back(inst.points[i]);

  // Solve on the window coreset, evaluate on the exact window.
  const Solution via = solve_kcenter_outliers(q.coreset, 2, 4, kL2);
  const double on_window =
      radius_with_outliers(window, via.centers, 4, kL2);
  const Solution direct = solve_kcenter_outliers(window, 2, 4, kL2);
  // Generous but bounded factor: end solver ~3.75, covering slack 2ε·guess.
  EXPECT_LE(on_window, 4.0 * direct.radius + 4.0 * q.cover_radius + 1e-9);
}

}  // namespace
}  // namespace kc::stream
