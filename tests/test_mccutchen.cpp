#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "stream/mccutchen_khuller.hpp"
#include "test_support.hpp"
#include "workload/streams.hpp"

namespace kc::stream {
namespace {

const Metric kL2{Norm::L2};

TEST(McCutchenKhuller, LadderSizeScalesWithEps) {
  McCutchenKhuller coarse(2, 2, 1.0, kL2);
  McCutchenKhuller fine(2, 2, 0.25, kL2);
  EXPECT_LT(coarse.instances(), fine.instances());
  EXPECT_GE(coarse.instances(), 1);
}

TEST(McCutchenKhuller, HandlesTinyStreams) {
  McCutchenKhuller mk(2, 1, 0.5, kL2);
  mk.insert(Point{0.0});
  mk.insert(Point{1.0});
  const Solution sol = mk.query();
  EXPECT_GE(sol.radius, 0.0);
}

TEST(McCutchenKhuller, SolutionQualityOnPlanted) {
  PlantedConfig cfg;
  cfg.n = 900;
  cfg.k = 3;
  cfg.z = 5;
  cfg.dim = 2;
  cfg.seed = 81;
  const auto inst = make_planted(cfg);
  McCutchenKhuller mk(3, 5, 0.5, kL2);
  for (auto idx : shuffled_order(inst.points.size(), 3))
    mk.insert(inst.points[idx].p);
  const Solution sol = mk.query();
  // Evaluate the reported centers on the ground truth: (4+ε)-style approx,
  // generous constant to absorb the summary displacement.
  const double r =
      radius_with_outliers(inst.points, sol.centers, 5, kL2);
  EXPECT_LE(r, 8.0 * inst.opt_hi + 1e-9);
}

TEST(McCutchenKhuller, SpaceIsBoundedByKZShape) {
  // Peak stored points ≤ instances · (k+z) · (z+2) + slack — the Θ(kz/ε)
  // shape; must hold even under adversarial order.
  PlantedConfig cfg;
  cfg.n = 2000;
  cfg.k = 2;
  cfg.z = 8;
  cfg.dim = 2;
  cfg.seed = 83;
  const auto inst = make_planted(cfg);
  McCutchenKhuller mk(2, 8, 0.5, kL2);
  const auto order =
      adversarial_order(strip_weights(inst.points), inst.outlier_indices);
  for (auto idx : order) mk.insert(inst.points[idx].p);
  const auto cap = static_cast<std::size_t>(mk.instances()) *
                   static_cast<std::size_t>((2 + 8)) *
                   static_cast<std::size_t>(8 + 2) * 2;
  EXPECT_LE(mk.peak_points(), cap);
}

TEST(McCutchenKhuller, WeightConservationInSummary) {
  // All inserted points are represented (support + overflow) in each
  // instance; total weight equals points seen.
  McCutchenKhuller mk(2, 2, 1.0, kL2);
  Rng rng(5);
  const int n = 300;
  for (int i = 0; i < n; ++i)
    mk.insert(Point{rng.uniform_real(0, 100), rng.uniform_real(0, 100)});
  // Indirect check: a query solution must exist and have finite radius.
  const Solution sol = mk.query();
  EXPECT_GE(sol.radius, 0.0);
  EXPECT_FALSE(sol.centers.empty());
}

}  // namespace
}  // namespace kc::stream
