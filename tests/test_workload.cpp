#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cost.hpp"
#include "workload/generators.hpp"
#include "workload/streams.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

TEST(Planted, SizesAndWeights) {
  PlantedConfig cfg;
  cfg.n = 500;
  cfg.k = 4;
  cfg.z = 10;
  cfg.seed = 1;
  const PlantedInstance inst = make_planted(cfg);
  EXPECT_EQ(inst.points.size(), 500u);
  EXPECT_EQ(inst.outlier_indices.size(), 10u);
  EXPECT_EQ(total_weight(inst.points), 500);
  EXPECT_EQ(inst.planted_centers.size(), 4u);
}

TEST(Planted, BracketIsConsistent) {
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    PlantedConfig cfg;
    cfg.n = 400;
    cfg.k = 3;
    cfg.z = 8;
    cfg.seed = seed;
    const PlantedInstance inst = make_planted(cfg);
    EXPECT_GT(inst.opt_lo, 0.0);
    EXPECT_LE(inst.opt_lo, inst.opt_hi + 1e-12);
    EXPECT_LE(inst.opt_hi, cfg.cluster_radius + 1e-12);
  }
}

TEST(Planted, PlantedCentersAchieveOptHi) {
  PlantedConfig cfg;
  cfg.n = 300;
  cfg.k = 3;
  cfg.z = 6;
  cfg.seed = 3;
  const PlantedInstance inst = make_planted(cfg);
  const double r =
      radius_with_outliers(inst.points, inst.planted_centers, cfg.z, kL2);
  EXPECT_LE(r, inst.opt_hi + 1e-9);
}

TEST(Planted, OutliersAreFar) {
  PlantedConfig cfg;
  cfg.n = 300;
  cfg.k = 2;
  cfg.z = 5;
  cfg.seed = 4;
  const PlantedInstance inst = make_planted(cfg);
  for (auto idx : inst.outlier_indices) {
    double nearest_center = 1e300;
    for (const auto& c : inst.planted_centers)
      nearest_center = std::min(nearest_center,
                                kL2.dist(inst.points[idx].p, c));
    EXPECT_GE(nearest_center, cfg.separation * cfg.cluster_radius);
  }
}

TEST(Planted, SkewConcentratesMass) {
  PlantedConfig even, skewed;
  even.n = skewed.n = 1000;
  even.k = skewed.k = 4;
  even.z = skewed.z = 4;
  even.seed = skewed.seed = 8;
  skewed.skew = 0.9;
  const auto e = make_planted(even);
  const auto s = make_planted(skewed);
  // Count points near the first planted center.
  auto near_first = [&](const PlantedInstance& inst) {
    std::size_t c = 0;
    for (const auto& wp : inst.points)
      if (kL2.dist(wp.p, inst.planted_centers[0]) <= 1.5) ++c;
    return c;
  };
  EXPECT_GT(near_first(s), near_first(e) + 100);
}

TEST(Planted, DeterministicForSeed) {
  PlantedConfig cfg;
  cfg.n = 200;
  cfg.k = 2;
  cfg.z = 3;
  cfg.seed = 12;
  const auto a = make_planted(cfg);
  const auto b = make_planted(cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i)
    EXPECT_EQ(a.points[i].p, b.points[i].p);
}

TEST(Uniform, InBounds) {
  const WeightedSet pts = make_uniform(200, 3, 10.0, 5);
  EXPECT_EQ(pts.size(), 200u);
  for (const auto& wp : pts)
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(wp.p[i], 0.0);
      EXPECT_LE(wp.p[i], 10.0);
    }
}

TEST(Discretize, FitsUniverse) {
  const WeightedSet pts = make_uniform(300, 2, 7.0, 6);
  const auto grid = discretize(pts, 64);
  ASSERT_EQ(grid.size(), pts.size());
  for (const auto& g : grid)
    for (int i = 0; i < 2; ++i) {
      EXPECT_GE(g.c[static_cast<std::size_t>(i)], 0);
      EXPECT_LT(g.c[static_cast<std::size_t>(i)], 64);
    }
}

TEST(Discretize, PreservesRelativeGeometry) {
  WeightedSet pts;
  pts.push_back({Point{0.0, 0.0}, 1});
  pts.push_back({Point{100.0, 0.0}, 1});
  pts.push_back({Point{1.0, 0.0}, 1});
  const auto grid = discretize(pts, 128);
  // Far pair maps far, near pair maps near.
  EXPECT_GT(std::abs(grid[1].c[0] - grid[0].c[0]), 100);
  EXPECT_LE(std::abs(grid[2].c[0] - grid[0].c[0]), 2);
}

TEST(DynamicScript, TurnstileValidAndFinalSetCorrect) {
  // Build final set, run the script, confirm multiset equality and strict
  // turnstile validity (no negative counts at any prefix).
  const WeightedSet pts = make_uniform(120, 2, 50.0, 7);
  const auto final_set = discretize(pts, 64);
  const DynamicScript script =
      make_dynamic_script(final_set, /*chaff=*/80, 64, 2, 11);

  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> alive;
  for (const auto& up : script) {
    auto key = std::make_pair(up.p.c[0], up.p.c[1]);
    alive[key] += up.sign;
    ASSERT_GE(alive[key], 0) << "turnstile violated";
  }
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> expect;
  for (const auto& g : final_set) ++expect[std::make_pair(g.c[0], g.c[1])];
  for (auto& [key, cnt] : alive)
    if (cnt == 0) continue;
  // Remove zero entries for comparison.
  std::erase_if(alive, [](const auto& kv) { return kv.second == 0; });
  EXPECT_EQ(alive, expect);
  EXPECT_EQ(script.size(), final_set.size() + 2u * 80u);
}

TEST(ShuffledOrder, IsPermutation) {
  const auto ord = shuffled_order(100, 13);
  std::set<std::size_t> s(ord.begin(), ord.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(AdversarialOrder, OutliersFirst) {
  PlantedConfig cfg;
  cfg.n = 150;
  cfg.k = 2;
  cfg.z = 6;
  cfg.seed = 21;
  const auto inst = make_planted(cfg);
  const auto order =
      adversarial_order(strip_weights(inst.points), inst.outlier_indices);
  ASSERT_EQ(order.size(), inst.points.size());
  std::set<std::size_t> outliers(inst.outlier_indices.begin(),
                                 inst.outlier_indices.end());
  for (std::size_t i = 0; i < outliers.size(); ++i)
    EXPECT_TRUE(outliers.count(order[i])) << "position " << i;
}

}  // namespace
}  // namespace kc
