// Guards the public umbrella header (src/kcenter.hpp): it must compile
// clean under -Wall -Wextra and expose enough of the API to run a small
// coreset → solve pipeline.  Examples build against this header only, so a
// regression here breaks every downstream consumer.

#include "kcenter.hpp"

#include <gtest/gtest.h>

namespace kc {
namespace {

TEST(Umbrella, ExposesCoreTypes) {
  ParamsKZ params;
  EXPECT_EQ(params.k, 1);
  EXPECT_EQ(params.z, 0);

  const Point p{1.0, 2.0};
  EXPECT_EQ(p.dim(), 2);

  const WeightedSet ws = with_unit_weights({p, Point{3.0, 4.0}});
  EXPECT_EQ(total_weight(ws), 2);
}

TEST(Umbrella, CoresetPipelineRunsEndToEnd) {
  PlantedConfig cfg;
  cfg.n = 400;
  cfg.k = 2;
  cfg.z = 4;
  cfg.dim = 2;
  cfg.seed = 99;
  const PlantedInstance inst = make_planted(cfg);

  const Metric metric{Norm::L2};
  const auto mbc = mbc_construct(inst.points, cfg.k, cfg.z, 0.5, metric);
  ASSERT_FALSE(mbc.reps.empty());
  EXPECT_LE(mbc.reps.size(), inst.points.size());

  const Solution sol =
      solve_kcenter_outliers(mbc.reps, cfg.k, cfg.z, metric);
  EXPECT_EQ(static_cast<int>(sol.centers.size()), cfg.k);

  const double r =
      radius_with_outliers(inst.points, sol.centers, cfg.z, metric);
  EXPECT_GT(r, 0.0);
  // Coreset solutions are (1+ε)-competitive; leave generous slack since
  // this test only guards the umbrella header wiring, not the bounds.
  EXPECT_LE(r, 4.0 * inst.opt_hi);
}

}  // namespace
}  // namespace kc
