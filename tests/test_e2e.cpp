// End-to-end integration tests: every pipeline (offline MBC, MPC 2-round,
// MPC 1-round, R-round, insertion-only stream, dynamic sketch) run on the
// same planted instance, all coresets solved with the same offline solver,
// all radii compared on the ground truth.

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/mbc.hpp"
#include "core/solver.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "mpc/multi_round.hpp"
#include "mpc/one_round.hpp"
#include "mpc/partition.hpp"
#include "mpc/two_round.hpp"
#include "stream/insertion_only.hpp"
#include "test_support.hpp"
#include "workload/streams.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

struct Pipe {
  const char* name;
  WeightedSet coreset;
};

TEST(EndToEnd, AllPipelinesProduceUsableCoresets) {
  PlantedConfig cfg;
  cfg.n = 1600;
  cfg.k = 3;
  cfg.z = 10;
  cfg.dim = 2;
  cfg.seed = 1234;
  const auto inst = make_planted(cfg);
  const int k = cfg.k;
  const std::int64_t z = cfg.z;
  const double eps = 0.5;

  std::vector<Pipe> pipes;

  // Offline MBC.
  pipes.push_back(
      {"offline", mbc_construct(inst.points, k, z, eps, kL2).reps});

  // MPC two-round, adversarial partition.
  {
    const auto parts =
        partition_points(inst.points, 8, mpc::PartitionKind::EvenSorted, 0);
    mpc::TwoRoundOptions opt;
    opt.eps = eps;
    pipes.push_back(
        {"mpc-2round", mpc::two_round_coreset(parts, k, z, kL2, {}, opt).coreset});
  }
  // MPC one-round, random partition.
  {
    const auto parts =
        partition_points(inst.points, 8, mpc::PartitionKind::Random, 7);
    mpc::OneRoundOptions opt;
    opt.eps = eps;
    pipes.push_back(
        {"mpc-1round",
         mpc::one_round_coreset(parts, k, z, inst.points.size(), kL2, {}, opt)
             .coreset});
  }
  // MPC R-round.
  {
    const auto parts =
        partition_points(inst.points, 9, mpc::PartitionKind::RoundRobin, 0);
    mpc::MultiRoundOptions opt;
    opt.eps = 0.25;
    opt.rounds = 2;
    pipes.push_back(
        {"mpc-rround",
         mpc::multi_round_coreset(parts, k, z, kL2, {}, opt).coreset});
  }
  // Insertion-only stream.
  {
    stream::InsertionOnlyStream s(k, z, 1.0, 2, kL2);
    for (auto idx : shuffled_order(inst.points.size(), 3))
      s.insert(inst.points[idx].p);
    pipes.push_back({"stream", s.coreset()});
  }
  // Dynamic sketch (discretized universe).
  {
    dynamic::DynamicCoresetOptions opt;
    opt.k = k;
    opt.z = z;
    opt.eps = 0.5;
    opt.delta = 1 << 11;
    opt.dim = 2;
    opt.seed = 5;
    dynamic::DynamicCoreset dc(opt);
    const auto grid = discretize(inst.points, opt.delta);
    const auto script = make_dynamic_script(grid, 400, opt.delta, 2, 9);
    for (const auto& up : script) dc.update(up.p, up.sign);
    const auto q = dc.query();
    ASSERT_TRUE(q.ok);
    // The dynamic coreset lives in grid coordinates — rescale ground truth
    // checks by evaluating in grid space below; here we only record it for
    // the weight check.
    EXPECT_EQ(total_weight(q.coreset),
              static_cast<std::int64_t>(inst.points.size()));
  }

  const Solution direct = solve_kcenter_outliers(inst.points, k, z, kL2);
  for (const auto& pipe : pipes) {
    SCOPED_TRACE(pipe.name);
    ASSERT_FALSE(pipe.coreset.empty());
    EXPECT_EQ(total_weight(pipe.coreset),
              static_cast<std::int64_t>(inst.points.size()));
    const Solution via = solve_kcenter_outliers(pipe.coreset, k, z, kL2);
    const double on_full =
        radius_with_outliers(inst.points, via.centers, z, kL2);
    // All pipelines: solving on the coreset must stay within a constant ×
    // (1+O(ε)) of the direct solve — the QUALITY bench tracks exact ratios.
    EXPECT_LE(on_full, 4.0 * direct.radius + 1e-9);
    // And at least as good as a trivially valid bound: opt_hi · solver ρ.
    EXPECT_LE(on_full, 4.5 * inst.opt_hi + 1e-9);
  }
}

TEST(EndToEnd, WeightPreservationUnderComposition) {
  // Stream → coreset → MBC recompress → solve: weights preserved at every
  // stage (Lemma 5 chains).
  PlantedConfig cfg;
  cfg.n = 900;
  cfg.k = 2;
  cfg.z = 6;
  cfg.dim = 2;
  cfg.seed = 77;
  const auto inst = make_planted(cfg);
  stream::InsertionOnlyStream s(2, 6, 1.0, 2, kL2);
  for (const auto& wp : inst.points) s.insert(wp.p);
  const auto recompressed = mbc_construct(s.coreset(), 2, 6, 0.5, kL2);
  EXPECT_EQ(total_weight(recompressed.reps),
            static_cast<std::int64_t>(inst.points.size()));
}

TEST(EndToEnd, MpcCoresetFeedsStreamStage) {
  // Cross-model composition: an MPC coreset streamed into the insertion-
  // only algorithm (weights collapse to arrival multiplicity) still yields
  // a usable summary of the reps.
  PlantedConfig cfg;
  cfg.n = 1000;
  cfg.k = 2;
  cfg.z = 4;
  cfg.dim = 2;
  cfg.seed = 88;
  const auto inst = make_planted(cfg);
  const auto parts =
      partition_points(inst.points, 5, mpc::PartitionKind::RoundRobin, 0);
  mpc::TwoRoundOptions opt;
  opt.eps = 0.5;
  const auto res = mpc::two_round_coreset(parts, 2, 4, kL2, {}, opt);

  stream::InsertionOnlyStream s(2, 4, 1.0, 2, kL2);
  for (const auto& wp : res.coreset) s.insert(wp.p);
  EXPECT_LE(s.coreset().size(), s.threshold());
  EXPECT_FALSE(s.coreset().empty());
}

}  // namespace
}  // namespace kc
