#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/cost.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

WeightedSet line_points(std::initializer_list<double> xs) {
  WeightedSet out;
  for (double x : xs) out.push_back({Point{x}, 1});
  return out;
}

TEST(Cost, NearestCenterDist) {
  const WeightedSet pts = line_points({0.0, 5.0, 10.0});
  const PointSet centers{Point{0.0}, Point{10.0}};
  const auto d = nearest_center_dist(pts, centers, kL2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(Cost, RadiusNoOutliers) {
  const WeightedSet pts = line_points({0.0, 1.0, 2.0, 9.0});
  const PointSet centers{Point{0.0}};
  EXPECT_DOUBLE_EQ(radius_with_outliers(pts, centers, 0, kL2), 9.0);
}

TEST(Cost, RadiusOutliersDropFarthest) {
  const WeightedSet pts = line_points({0.0, 1.0, 2.0, 9.0});
  const PointSet centers{Point{0.0}};
  EXPECT_DOUBLE_EQ(radius_with_outliers(pts, centers, 1, kL2), 2.0);
  EXPECT_DOUBLE_EQ(radius_with_outliers(pts, centers, 2, kL2), 1.0);
}

TEST(Cost, RadiusRespectsWeights) {
  WeightedSet pts = line_points({0.0, 9.0});
  pts[1].w = 3;  // the far point has weight 3: budget 2 cannot drop it
  const PointSet centers{Point{0.0}};
  EXPECT_DOUBLE_EQ(radius_with_outliers(pts, centers, 2, kL2), 9.0);
  EXPECT_DOUBLE_EQ(radius_with_outliers(pts, centers, 3, kL2), 0.0);
}

TEST(Cost, RadiusZeroWhenAllOutliers) {
  const WeightedSet pts = line_points({1.0, 2.0});
  const PointSet centers{Point{100.0}};
  EXPECT_DOUBLE_EQ(radius_with_outliers(pts, centers, 2, kL2), 0.0);
  EXPECT_GT(radius_with_outliers(pts, centers, 1, kL2), 0.0);
}

TEST(Cost, UncoveredWeight) {
  const WeightedSet pts = line_points({0.0, 4.0, 8.0});
  const PointSet centers{Point{0.0}};
  EXPECT_EQ(uncovered_weight(pts, centers, 3.0, kL2), 2);
  EXPECT_EQ(uncovered_weight(pts, centers, 4.0, kL2), 1);
  EXPECT_EQ(uncovered_weight(pts, centers, 10.0, kL2), 0);
}

TEST(Cost, EvaluateFillsRadius) {
  const WeightedSet pts = line_points({0.0, 6.0});
  const Solution s = evaluate(pts, {Point{0.0}}, 0, kL2);
  EXPECT_DOUBLE_EQ(s.radius, 6.0);
  ASSERT_EQ(s.centers.size(), 1u);
}

TEST(BruteForce, MatchesHandComputedOptimum) {
  // Points 0,1,10,11 with k=2, z=0: centers {0 or 1, 10 or 11} → radius 1.
  const WeightedSet pts = line_points({0.0, 1.0, 10.0, 11.0});
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 2, 0, kL2), 1.0);
  // z=1 allows dropping one endpoint → radius … centers {0,10}: farthest
  // kept point 1 at distance 1; better: drop 11, centers {1,10} radius 1;
  // actually dropping within a pair gives radius 0+… optimum is 1? With
  // z=2 we can drop one point of each pair → radius 0.
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 2, 2, kL2), 0.0);
}

TEST(BruteForce, OutliersReduceRadius) {
  const WeightedSet pts = line_points({0.0, 1.0, 2.0, 50.0});
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 1, 0, kL2), 48.0);  // center at 2
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 1, 1, kL2), 1.0);   // drop 50
}

TEST(BruteForce, KAtLeastNMeansZeroRadius) {
  const WeightedSet pts = line_points({3.0, 8.0});
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 2, 0, kL2), 0.0);
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 5, 0, kL2), 0.0);
}

TEST(BruteForce, WeightedOutliers) {
  // Heavy endpoints (weight 3) around a light middle point (weight 1).
  WeightedSet pts = line_points({0.0, 10.0, 20.0});
  pts[0].w = 3;
  pts[2].w = 3;
  // z=1 can only drop the light point: best center is the middle → 10.
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 1, 1, kL2), 10.0);
  // z=3 can drop one heavy endpoint but must keep the other → still 10.
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 1, 3, kL2), 10.0);
  // z=4 drops a heavy endpoint plus the light point → radius 0.
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 1, 4, kL2), 0.0);
}

TEST(BruteForce, TwoDimensional) {
  WeightedSet pts;
  pts.push_back({Point{0.0, 0.0}, 1});
  pts.push_back({Point{0.0, 2.0}, 1});
  pts.push_back({Point{10.0, 0.0}, 1});
  pts.push_back({Point{10.0, 2.0}, 1});
  EXPECT_DOUBLE_EQ(brute_force_radius(pts, 2, 0, kL2), 2.0);
}

}  // namespace
}  // namespace kc
