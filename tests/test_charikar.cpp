#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_force.hpp"
#include "core/charikar.hpp"
#include "core/cost.hpp"
#include "test_support.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

TEST(CharikarRun, SucceedsAtLargeRadius) {
  const auto inst = testing::tiny_planted(2, 3, 2, 41);
  const CharikarRun run = charikar_run(inst.points, 2, 3, 1000.0, kL2);
  EXPECT_TRUE(run.success);
  EXPECT_LE(run.centers.size(), 2u);
}

TEST(CharikarRun, FailsAtTinyRadiusOnSpreadData) {
  const auto inst = testing::tiny_planted(2, 0, 2, 43);
  const CharikarRun run = charikar_run(inst.points, 2, 0, 1e-9, kL2);
  EXPECT_FALSE(run.success);
  EXPECT_GT(run.uncovered, 0);
}

TEST(CharikarRun, SuccessMonotoneInRadius) {
  const auto inst = testing::tiny_planted(3, 5, 2, 47);
  bool seen_success = false;
  for (double r : {0.01, 0.1, 0.5, 1.0, 5.0, 50.0, 500.0}) {
    const bool s = charikar_run(inst.points, 3, 5, r, kL2).success;
    if (seen_success) {
      EXPECT_TRUE(s) << "success must be monotone, r=" << r;
    }
    seen_success = seen_success || s;
  }
  EXPECT_TRUE(seen_success);
}

TEST(CharikarRun, ExpandedBallsActuallyCover) {
  // The run's promise: uncovered weight outside the 3r-expanded balls
  // equals run.uncovered.
  const auto inst = testing::tiny_planted(2, 4, 2, 53);
  const double r = inst.opt_hi;  // a feasible guess
  const CharikarRun run = charikar_run(inst.points, 2, 4, r, kL2);
  ASSERT_TRUE(run.success);
  EXPECT_LE(uncovered_weight(inst.points, run.centers, 3.0 * r, kL2), 4);
}

TEST(CharikarOracle, TwoSidedOnPlantedBracket) {
  // opt ≤ radius ≤ ρ·opt, with opt bracketed by [opt_lo, opt_hi].
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto inst = testing::tiny_planted(3, 4, 2, seed);
    const CharikarResult res = charikar_oracle(inst.points, 3, 4, kL2);
    EXPECT_GE(res.radius, inst.opt_lo - 1e-9) << "seed " << seed;
    EXPECT_LE(res.radius, res.rho * inst.opt_hi + 1e-9) << "seed " << seed;
  }
}

TEST(CharikarOracle, RadiusIsFeasibleUpperBound) {
  // By construction radius = 3·r₀ where the run at r₀ succeeded: the
  // reported centers with the reported radius must be feasible.
  const auto inst = testing::tiny_planted(2, 6, 2, 59);
  const CharikarResult res = charikar_oracle(inst.points, 2, 6, kL2);
  EXPECT_LE(uncovered_weight(inst.points, res.centers,
                             res.radius * (1 + 1e-12), kL2),
            6);
}

TEST(CharikarOracle, MatchesBruteForceWithinFactor) {
  const auto inst = testing::tiny_planted(2, 2, 1, 61);
  WeightedSet small(inst.points.begin(),
                    inst.points.begin() + std::min<std::size_t>(
                                              inst.points.size(), 14));
  const double opt = brute_force_radius(small, 2, 2, kL2);
  const CharikarResult res = charikar_oracle(small, 2, 2, kL2);
  if (opt > 0) {
    EXPECT_GE(res.radius, opt / 2.0 - 1e-9);  // discrete vs continuous slack
    EXPECT_LE(res.radius, res.rho * opt + 1e-9);
  }
}

TEST(CharikarOracle, TotalWeightBelowZGivesZeroRadius) {
  WeightedSet pts;
  pts.push_back({Point{0.0}, 1});
  pts.push_back({Point{5.0}, 2});
  const CharikarResult res = charikar_oracle(pts, 1, 3, kL2);
  EXPECT_DOUBLE_EQ(res.radius, 0.0);
  EXPECT_FALSE(res.centers.empty());
}

TEST(CharikarOracle, AllPointsCoincide) {
  WeightedSet pts(6, WeightedPoint{Point{2.0, 2.0}, 1});
  const CharikarResult res = charikar_oracle(pts, 2, 0, kL2);
  EXPECT_DOUBLE_EQ(res.radius, 0.0);
}

TEST(CharikarOracle, WeightedOutlierBudget) {
  // A far point of weight 3 cannot be dropped with z=2.
  WeightedSet pts;
  for (double x : {0.0, 0.5, 1.0}) pts.push_back({Point{x}, 1});
  pts.push_back({Point{100.0}, 3});
  const CharikarResult with_budget = charikar_oracle(pts, 1, 3, kL2);
  const CharikarResult without = charikar_oracle(pts, 1, 2, kL2);
  EXPECT_LT(with_budget.radius, 10.0);
  EXPECT_GE(without.radius, 33.0);  // ≥ opt = 49.75 is 3r₀ ≥ opt… loose check
}

TEST(CharikarOracle, EmptyInput) {
  const CharikarResult res = charikar_oracle({}, 2, 1, kL2);
  EXPECT_DOUBLE_EQ(res.radius, 0.0);
  EXPECT_TRUE(res.centers.empty());
}

}  // namespace
}  // namespace kc
