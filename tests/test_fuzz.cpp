// Randomized differential tests: each compares a sophisticated structure
// against a brute-force reference over many seeds.

#include <gtest/gtest.h>

#include <map>

#include "core/cost.hpp"
#include "core/mbc.hpp"
#include "geometry/point_buffer.hpp"
#include "core/verify.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "mpc/partition.hpp"
#include "mpc/two_round.hpp"
#include "stream/insertion_only.hpp"
#include "stream/sliding_window.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "workload/streams.hpp"

namespace kc {
namespace {

const Metric kL2{Norm::L2};

TEST(Fuzz, DynamicCoresetMatchesExactTrackerAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    dynamic::DynamicCoresetOptions opt;
    opt.k = 2;
    opt.z = 4;
    opt.eps = 1.0;
    opt.delta = 64;
    opt.dim = 2;
    opt.seed = seed;
    dynamic::DynamicCoreset dc(opt);

    std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> exact;
    Rng rng(seed * 977);
    std::vector<GridPoint> alive;
    for (int step = 0; step < 300; ++step) {
      const bool do_delete = !alive.empty() && rng.bernoulli(0.35);
      if (do_delete) {
        const std::size_t pick = rng.uniform(alive.size());
        const GridPoint p = alive[pick];
        alive[pick] = alive.back();
        alive.pop_back();
        dc.update(p, -1);
        auto& cnt = exact[{p.c[0], p.c[1]}];
        --cnt;
        if (cnt == 0) exact.erase({p.c[0], p.c[1]});
      } else {
        GridPoint p{{static_cast<std::int64_t>(rng.uniform(64)),
                     static_cast<std::int64_t>(rng.uniform(64))},
                    2};
        alive.push_back(p);
        dc.update(p, +1);
        ++exact[{p.c[0], p.c[1]}];
      }
    }
    const auto q = dc.query();
    ASSERT_TRUE(q.ok) << "seed " << seed;
    std::int64_t exact_total = 0;
    for (const auto& [_, c] : exact) exact_total += c;
    EXPECT_EQ(total_weight(q.coreset), exact_total) << "seed " << seed;
    if (q.level == 0) {
      // At the finest level the non-empty cells must match exactly.
      EXPECT_EQ(q.nonempty_cells, exact.size()) << "seed " << seed;
    }
  }
}

TEST(Fuzz, SlidingWindowCoversBruteForceWindowAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::int64_t W = 80;
    stream::SlidingWindow sw(2, 3, 0.5, 1, W, 0.5, 300.0, kL2);
    Rng rng(seed * 131);
    std::vector<Point> history;
    for (std::int64_t t = 1; t <= 400; ++t) {
      Point p{rng.bernoulli(0.05) ? rng.uniform_real(0, 250)
                                  : 100.0 + rng.uniform_real(0, 3)};
      history.push_back(p);
      sw.insert(p, t);
    }
    const std::int64_t now = 400;
    const auto q = sw.query(now);
    ASSERT_GE(q.level, 0) << "seed " << seed;
    // Brute-force window: every alive point within cover_radius of a rep.
    for (std::int64_t t = now - W + 1; t <= now; ++t) {
      const Point& p = history[static_cast<std::size_t>(t - 1)];
      double best = 1e300;
      for (const auto& rep : q.coreset) best = std::min(best, kL2.dist(p, rep.p));
      EXPECT_LE(best, q.cover_radius + 1e-9)
          << "seed " << seed << " t " << t;
    }
    // And total weight never exceeds the alive count (caps only shrink).
    std::int64_t total = 0;
    for (const auto& rep : q.coreset) total += rep.w;
    EXPECT_LE(total, W);
    EXPECT_GT(total, 0);
  }
}

TEST(Fuzz, AbsorbedShardsMatchSingleStreamGuarantees) {
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    PlantedConfig cfg;
    cfg.n = 800;
    cfg.k = 2;
    cfg.z = 6;
    cfg.dim = 1;
    cfg.seed = seed;
    const auto inst = make_planted(cfg);
    const double eps = 1.0;

    // Shard the stream 3 ways, absorb into one summary.
    stream::InsertionOnlyStream shards[3] = {
        {2, 6, eps, 1, kL2}, {2, 6, eps, 1, kL2}, {2, 6, eps, 1, kL2}};
    for (std::size_t i = 0; i < inst.points.size(); ++i)
      shards[i % 3].insert(inst.points[i].p);
    stream::InsertionOnlyStream merged = shards[0];
    merged.absorb(shards[1]);
    merged.absorb(shards[2]);

    EXPECT_EQ(total_weight(merged.coreset()),
              static_cast<std::int64_t>(inst.points.size()))
        << "seed " << seed;
    EXPECT_LE(merged.r(), inst.opt_hi + 1e-9) << "seed " << seed;
    EXPECT_LT(merged.coreset().size(), merged.threshold() + 1);
    // Merged covering: every input within 1.5·ε·opt of some rep.
    for (const auto& wp : inst.points) {
      double best = 1e300;
      for (const auto& rep : merged.coreset())
        best = std::min(best, kL2.dist(wp.p, rep.p));
      EXPECT_LE(best, 1.5 * eps * inst.opt_hi + 1e-9) << "seed " << seed;
    }
  }
}

TEST(Fuzz, WeightedPointEquivalentToDuplicates) {
  // MBC of (p, w) must equal MBC of w consecutive unit copies of p.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 31);
    WeightedSet weighted, expanded;
    for (int i = 0; i < 30; ++i) {
      const Point p{rng.uniform_real(0, 20)};
      const auto w = static_cast<std::int64_t>(1 + rng.uniform(4));
      weighted.push_back({p, w});
      for (std::int64_t c = 0; c < w; ++c) expanded.push_back({p, 1});
    }
    const double radius = 1.5;
    const auto a = mbc_with_radius(weighted, radius, kL2);
    const auto b = mbc_with_radius(expanded, radius, kL2);
    ASSERT_EQ(a.reps.size(), b.reps.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.reps.size(); ++i) {
      EXPECT_EQ(a.reps[i].p, b.reps[i].p);
      EXPECT_EQ(a.reps[i].w, b.reps[i].w);
    }
  }
}

TEST(Fuzz, TwoRoundDeterministicAcrossRuns) {
  // The deterministic algorithm must produce bit-identical coresets on
  // repeated runs (also exercises OpenMP scheduling independence).
  PlantedConfig cfg;
  cfg.n = 1000;
  cfg.k = 3;
  cfg.z = 10;
  cfg.dim = 2;
  cfg.seed = 555;
  const auto inst = make_planted(cfg);
  const auto parts = mpc::partition_points(
      inst.points, 7, mpc::PartitionKind::EvenSorted, 0);
  mpc::TwoRoundOptions opt;
  opt.eps = 0.5;
  const auto a = mpc::two_round_coreset(parts, 3, 10, kL2, {}, opt);
  const auto b = mpc::two_round_coreset(parts, 3, 10, kL2, {}, opt);
  ASSERT_EQ(a.coreset.size(), b.coreset.size());
  for (std::size_t i = 0; i < a.coreset.size(); ++i) {
    EXPECT_EQ(a.coreset[i].p, b.coreset[i].p);
    EXPECT_EQ(a.coreset[i].w, b.coreset[i].w);
  }
  EXPECT_DOUBLE_EQ(a.r_hat, b.r_hat);
}

TEST(Fuzz, StreamOrderInvarianceOfGuarantees) {
  // Different arrival orders give different coresets but identical
  // guarantees (weight, threshold, r ≤ opt).
  PlantedConfig cfg;
  cfg.n = 700;
  cfg.k = 2;
  cfg.z = 5;
  cfg.dim = 1;
  cfg.seed = 777;
  const auto inst = make_planted(cfg);
  for (std::uint64_t order_seed = 1; order_seed <= 6; ++order_seed) {
    stream::InsertionOnlyStream s(2, 5, 1.0, 1, kL2);
    for (auto idx : shuffled_order(inst.points.size(), order_seed))
      s.insert(inst.points[idx].p);
    EXPECT_EQ(total_weight(s.coreset()),
              static_cast<std::int64_t>(inst.points.size()));
    EXPECT_LE(s.r(), inst.opt_hi + 1e-9) << "order " << order_seed;
    EXPECT_LE(s.coreset().size(), s.threshold());
  }
}

TEST(Fuzz, AosSoAPackUnpackRoundTripAcrossSeeds) {
  // Pack → unpack is the identity, however the buffer was filled: bulk
  // constructor, reserved append, and growth-forcing append (which
  // relayouts the columns several times) must all agree bitwise.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 53);
    const int dim = 1 + static_cast<int>(rng.uniform(Point::kMaxDim));
    const std::size_t n = 1 + rng.uniform(200);
    WeightedSet pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Point p(dim);
      for (int j = 0; j < dim; ++j) p[j] = rng.uniform_real(-50, 50);
      pts.push_back({p, 1});
    }

    const kernels::PointBuffer bulk(pts);
    kernels::PointBuffer reserved(dim);
    reserved.reserve(n);
    kernels::PointBuffer grown(dim);  // no reserve: forces relayouts
    for (const auto& wp : pts) {
      reserved.append(wp.p);
      grown.append(wp.p.coords().data());
    }

    ASSERT_EQ(bulk.size(), n);
    ASSERT_EQ(bulk.dim(), dim);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bulk.point(i), pts[i].p) << "seed " << seed << " i " << i;
      for (int j = 0; j < dim; ++j) {
        ASSERT_EQ(bulk.col(j)[i], pts[i].p[j]);
        ASSERT_EQ(reserved.col(j)[i], pts[i].p[j]);
        ASSERT_EQ(grown.col(j)[i], pts[i].p[j]);
      }
    }

    // clear() keeps dim/capacity; refilling reproduces the same columns.
    const std::size_t cap = grown.capacity();
    grown.clear();
    EXPECT_EQ(grown.size(), 0u);
    EXPECT_EQ(grown.capacity(), cap);
    for (const auto& wp : pts) grown.append(wp.p);
    for (int j = 0; j < dim; ++j)
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(grown.col(j)[i], pts[i].p[j]);
  }
}

TEST(Fuzz, BufferSliceAliasingAcrossSeeds) {
  // Views are zero-copy: a slice's columns alias the parent's storage
  // (pointer equality), nested subviews compose like index arithmetic, and
  // per-row keys through a view match the parent's rows exactly.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 67);
    const int dim = 1 + static_cast<int>(rng.uniform(Point::kMaxDim));
    const std::size_t n = 16 + rng.uniform(200);
    kernels::PointBuffer buf(dim);
    buf.reserve(n);
    std::vector<double> row(static_cast<std::size_t>(dim));
    for (std::size_t i = 0; i < n; ++i) {
      for (int j = 0; j < dim; ++j) row[static_cast<std::size_t>(j)] =
          rng.uniform_real(-20, 20);
      buf.append(row.data());
    }
    std::vector<double> q(static_cast<std::size_t>(dim));
    for (int j = 0; j < dim; ++j)
      q[static_cast<std::size_t>(j)] = rng.uniform_real(-20, 20);

    for (int rep = 0; rep < 10; ++rep) {
      const std::size_t off = rng.uniform(n);
      const std::size_t cnt = 1 + rng.uniform(n - off);
      const auto v = buf.view(off, cnt);
      ASSERT_EQ(v.size(), cnt);
      ASSERT_EQ(v.dim(), dim);
      for (int j = 0; j < dim; ++j)
        EXPECT_EQ(v.col(j), buf.col(j) + off) << "seed " << seed;  // no copy

      const std::size_t i = rng.uniform(cnt);
      EXPECT_EQ(v.key_to<Norm::L2>(i, q.data()),
                buf.key_to<Norm::L2>(off + i, q.data()));

      if (cnt >= 2) {
        const std::size_t off2 = rng.uniform(cnt - 1);
        const std::size_t cnt2 = 1 + rng.uniform(cnt - off2);
        const auto nested = v.subview(off2, cnt2);
        for (int j = 0; j < dim; ++j)
          EXPECT_EQ(nested.col(j), buf.col(j) + off + off2);
      }
    }
  }
}

TEST(Fuzz, CustomMetricScaledL2BehavesLikeL2) {
  // A custom metric = 2·L2 must produce exactly the same mini-ball
  // covering as L2 with doubled radius.
  const Metric scaled{DistanceFn{[](const Point& a, const Point& b) {
    const Metric l2{Norm::L2};
    return 2.0 * l2.dist(a, b);
  }}};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 7);
    WeightedSet pts;
    for (int i = 0; i < 60; ++i)
      pts.push_back({Point{rng.uniform_real(0, 50)}, 1});
    const auto a = mbc_with_radius(pts, 3.0, scaled);
    const auto b = mbc_with_radius(pts, 1.5, kL2);
    ASSERT_EQ(a.reps.size(), b.reps.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.reps.size(); ++i)
      EXPECT_EQ(a.reps[i].p, b.reps[i].p);
  }
}

}  // namespace
}  // namespace kc
