// Tests of the deterministic fault-injection and recovery layer
// (mpc/faults.hpp, util/retry.hpp, the fault-aware Simulator, and the
// recovery threading through the engine's MPC pipelines).
//
// The acceptance sweep encodes the PR's contract: under a seeded fault
// plan with crash probability up to 0.2 per machine-round, every MPC
// pipeline × every recovery policy returns a Definition-1-valid solution
// that either meets the registered quality bound or carries an explicit
// degraded (k, z + lost_weight) certificate — bit-identical across thread
// counts for a fixed fault seed, and byte-identical to the pre-fault
// reports when injection is off.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "engine/registry.hpp"
#include "mpc/faults.hpp"
#include "mpc/partition.hpp"
#include "mpc/simulator.hpp"
#include "test_support.hpp"
#include "util/retry.hpp"

namespace kc::mpc {
namespace {

FaultConfig chaos_config() {
  FaultConfig fc;
  fc.seed = 99;
  fc.crash_prob = 0.2;
  fc.drop_prob = 0.1;
  fc.truncate_prob = 0.05;
  fc.straggle_prob = 0.1;
  return fc;
}

TEST(Backoff, CappedExponentialSchedule) {
  const Backoff b{1.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(b.delay_ms(1), 1.0);
  EXPECT_DOUBLE_EQ(b.delay_ms(2), 2.0);
  EXPECT_DOUBLE_EQ(b.delay_ms(3), 4.0);
  EXPECT_DOUBLE_EQ(b.delay_ms(4), 8.0);
  EXPECT_DOUBLE_EQ(b.delay_ms(10), 8.0);  // capped
  EXPECT_DOUBLE_EQ(b.total_ms(4), 15.0);
}

TEST(FaultPlan, IsAPureFunctionOfItsCoordinates) {
  const FaultPlan a(chaos_config());
  const FaultPlan b(chaos_config());
  int crashes = 0, drops = 0;
  for (int round = 0; round < 6; ++round)
    for (int machine = 0; machine < 8; ++machine)
      for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(a.crash(round, machine, attempt),
                  b.crash(round, machine, attempt));
        EXPECT_EQ(a.drop(round, machine, (machine + 1) % 8, attempt),
                  b.drop(round, machine, (machine + 1) % 8, attempt));
        crashes += a.crash(round, machine, attempt) ? 1 : 0;
        drops += a.drop(round, machine, (machine + 1) % 8, attempt) ? 1 : 0;
      }
  // The schedule actually injects at these probabilities.
  EXPECT_GT(crashes, 0);
  EXPECT_GT(drops, 0);

  FaultConfig other = chaos_config();
  other.seed = 100;
  const FaultPlan c(other);
  int diff = 0;
  for (int round = 0; round < 6; ++round)
    for (int machine = 1; machine < 8; ++machine)
      if (a.crash(round, machine, 0) != c.crash(round, machine, 0)) ++diff;
  EXPECT_GT(diff, 0);  // a different seed is a different schedule
}

TEST(FaultPlan, CoordinatorAndSelfSendsAreExempt) {
  FaultConfig fc = chaos_config();
  fc.crash_prob = 1.0;
  fc.drop_prob = 1.0;
  fc.truncate_prob = 1.0;
  const FaultPlan plan(fc);
  for (int round = 0; round < 8; ++round) {
    EXPECT_FALSE(plan.crash(round, 0, 0));  // machine 0 never crashes
    EXPECT_FALSE(plan.drop(round, 3, 3, 0));  // self-sends never fault
    EXPECT_FALSE(plan.truncate(round, 3, 3, 0));
    EXPECT_TRUE(plan.crash(round, 1, 0));
    const double keep = plan.truncate_keep_fraction(round, 1, 0);
    EXPECT_GE(keep, 0.25);
    EXPECT_LT(keep, 1.0);
  }
}

TEST(PointPayload, PacksOnceAndTruncatesAsPrefix) {
  WeightedSet pts;
  for (int i = 0; i < 5; ++i)
    pts.push_back({Point{static_cast<double>(i), -static_cast<double>(i)},
                   static_cast<std::int64_t>(i + 1)});
  PointPayload payload(pts);
  EXPECT_EQ(payload.size(), 5u);
  EXPECT_EQ(payload.full_size(), 5u);
  EXPECT_FALSE(payload.truncated());

  // Exact round trip (doubles are stored bit-exactly).
  const WeightedSet back = payload.unpack();
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].w, pts[i].w);
    for (int d = 0; d < 2; ++d) EXPECT_EQ(back[i].p[d], pts[i].p[d]);
  }

  // Message::words accounts delivered rows only.
  Message msg;
  msg.scalars = {1.0};
  msg.payload = PointPayload(pts);
  EXPECT_EQ(msg.words(2), 1u + 5u * 3u);
  msg.payload.truncate_to(2);
  EXPECT_TRUE(msg.payload.truncated());
  EXPECT_EQ(msg.payload.size(), 2u);
  EXPECT_EQ(msg.payload.cut_weight(), 3 + 4 + 5);
  EXPECT_EQ(msg.words(2), 1u + 2u * 3u);
  const WeightedSet prefix = msg.payload.unpack();
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[1].w, 2);
}

TEST(Simulator, CertainCrashKillsWorkersAfterTheBudget) {
  FaultConfig fc;
  fc.crash_prob = 1.0;
  fc.retry_budget = 2;
  FaultInjector faults(fc);
  Simulator sim(4, 2, {nullptr, nullptr, &faults, nullptr});
  int ran = 0;
  sim.round([&](int id, std::vector<Message>&, std::vector<Message>&) {
    ++ran;
    EXPECT_EQ(id, 0);  // only the coordinator survives
  });
  EXPECT_EQ(ran, 1);
  const FaultStats& fs = sim.stats().faults;
  EXPECT_EQ(fs.machines_lost, 3);
  EXPECT_EQ(fs.crashes, 3 * 3);  // budget+1 attempts per worker
  EXPECT_EQ(fs.retries, 3 * 2);
  EXPECT_GT(fs.backoff_ms, 0.0);
  for (int id = 1; id < 4; ++id) EXPECT_FALSE(sim.alive(id));
  // Dead machines stay dead in later rounds.
  ran = 0;
  sim.round([&](int, std::vector<Message>&, std::vector<Message>&) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CertainDropLosesTheMessageButTerminates) {
  FaultConfig fc;
  fc.drop_prob = 1.0;
  fc.retry_budget = 2;
  FaultInjector faults(fc);
  Simulator sim(2, 2, {nullptr, nullptr, &faults, nullptr});
  sim.round([&](int id, std::vector<Message>&, std::vector<Message>& out) {
    if (id == 1) {
      Message m;
      m.to = 0;
      m.scalars = {1.0, 2.0, 3.0};
      out.push_back(std::move(m));
    }
  });
  EXPECT_TRUE(sim.inbox(0).empty());
  const FaultStats& fs = sim.stats().faults;
  EXPECT_EQ(fs.messages_lost, 1);
  EXPECT_EQ(fs.drops, 3);    // budget+1 attempts, all dropped
  EXPECT_EQ(fs.resends, 2);  // every attempt past the first
  EXPECT_EQ(fs.lost_words, 3u);
  // Every attempt burned wire bandwidth.
  EXPECT_EQ(sim.stats().total_comm_words, 9u);
}

TEST(Simulator, InactiveInjectorIsNoInjector) {
  FaultConfig fc;  // all probabilities zero
  FaultInjector faults(fc);
  Simulator sim(3, 2, {nullptr, nullptr, &faults, nullptr});
  EXPECT_EQ(sim.faults(), nullptr);  // nullified: pre-fault code paths
  sim.round([&](int id, std::vector<Message>&, std::vector<Message>& out) {
    if (id != 0) {
      Message m;
      m.to = 0;
      m.scalars = {1.0};
      out.push_back(std::move(m));
    }
  });
  EXPECT_EQ(sim.inbox(0).size(), 2u);
  EXPECT_FALSE(sim.stats().faults.injected_any());
}

// ---------------------------------------------------------------------------
// Engine-level acceptance sweep.
// ---------------------------------------------------------------------------

engine::PipelineConfig chaos_pipeline_config(RecoveryPolicy policy) {
  engine::PipelineConfig cfg;
  cfg.k = 3;
  cfg.z = 8;
  cfg.eps = 0.5;
  cfg.dim = 2;
  cfg.seed = 4242;
  cfg.machines = 6;
  cfg.partition_seed = 17;
  cfg.rounds = 2;
  cfg.fault_seed = 99;
  cfg.fault_crash = 0.2;
  cfg.fault_drop = 0.1;
  cfg.fault_truncate = 0.05;
  cfg.fault_straggle = 0.1;
  cfg.fault_policy = policy;
  return cfg;
}

std::vector<std::string> mpc_pipeline_names() {
  std::vector<std::string> out;
  for (const auto& name : engine::registry().names())
    if (engine::registry().make(name)->model() == "mpc") out.push_back(name);
  return out;
}

struct SweepCase {
  std::string pipeline;
  RecoveryPolicy policy;
};

class FaultSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FaultSweepTest, ValidOrExplicitlyDegraded) {
  const auto& param = GetParam();
  const auto pipeline = engine::registry().make(param.pipeline);
  const engine::PipelineConfig cfg = chaos_pipeline_config(param.policy);
  const Metric metric = cfg.metric();
  const engine::Workload w = engine::make_workload(700, cfg);

  const engine::PipelineResult res = pipeline->execute(w, cfg);
  const auto& r = res.report;

  // Faults were actually injected on this schedule…
  EXPECT_GT(r.get("fault_crashes") + r.get("fault_drops") +
                r.get("fault_truncations") + r.get("fault_straggles"),
            0.0);

  // …and the run still produced a Definition-1-valid (k, z') solution.
  ASSERT_FALSE(res.solution.centers.empty());
  EXPECT_LE(static_cast<int>(res.solution.centers.size()), cfg.k);
  const auto lost = static_cast<std::int64_t>(r.get("fault_lost_weight"));
  EXPECT_GE(lost, 0);
  EXPECT_LE(lost, static_cast<std::int64_t>(w.n()));

  // Honest weight accounting: the summary carries exactly the weight that
  // was not written off.
  EXPECT_EQ(total_weight(res.coreset),
            static_cast<std::int64_t>(w.n()) - lost);

  const double bound = pipeline->quality_bound() * w.planted.opt_hi + 1e-9;
  if (r.get("degraded") > 0.0) {
    // Degraded = explicit (k, z + lost_weight) certificate (Lemma 4): the
    // extracted centers cover all but z + lost_weight of the input within
    // the bound.
    EXPECT_LE(radius_with_outliers(w.planted.points, res.solution.centers,
                                   cfg.z + lost, metric, w.buffer()),
              bound);
  } else {
    // Not degraded = the registered bound still holds outright.
    EXPECT_LE(r.radius, bound);
    EXPECT_EQ(lost, 0);
  }

  // Determinism: the same fault seed gives a bit-identical report at any
  // thread count — including every fault-accounting extra.
  engine::PipelineConfig cfg8 = cfg;
  cfg8.num_threads = 8;
  const engine::PipelineResult res8 = pipeline->execute(w, cfg8);
  EXPECT_EQ(res8.report.coreset_size, r.coreset_size);
  EXPECT_EQ(res8.report.rounds, r.rounds);
  EXPECT_EQ(res8.report.words, r.words);
  EXPECT_EQ(res8.report.comm_words, r.comm_words);
  EXPECT_EQ(res8.report.radius, r.radius);
  for (const auto& [key, value] : r.extra) {
    if (key == "map_ms" || key == "eval_ms" || key == "direct_ms" ||
        key == "threads")
      continue;  // wall-time and pool-shape fields may differ
    EXPECT_EQ(res8.report.get(key), value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, FaultSweepTest, ::testing::ValuesIn([] {
      std::vector<SweepCase> cases;
      for (const auto& name : mpc_pipeline_names())
        for (const RecoveryPolicy policy :
             {RecoveryPolicy::Retry, RecoveryPolicy::Reassign,
              RecoveryPolicy::Degrade})
          cases.push_back({name, policy});
      return cases;
    }()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = info.param.pipeline + "_" +
                         to_string(info.param.policy);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(FaultRecovery, ZeroFaultConfigIsByteIdenticalToBaseline) {
  // An all-zero fault config must not perturb a single reported number on
  // any MPC pipeline (the CI perf gate pins the same property against the
  // committed BENCH_engine.json).
  engine::PipelineConfig base;
  base.k = 3;
  base.z = 8;
  base.seed = 4242;
  base.machines = 6;
  base.partition_seed = 17;
  engine::PipelineConfig zero = base;
  zero.fault_seed = 123;  // a seed alone does not activate injection
  const engine::Workload w = engine::make_workload(700, base);
  for (const auto& name : mpc_pipeline_names()) {
    SCOPED_TRACE(name);
    const auto a = engine::run(name, w, base);
    const auto b = engine::run(name, w, zero);
    EXPECT_EQ(a.report.coreset_size, b.report.coreset_size);
    EXPECT_EQ(a.report.words, b.report.words);
    EXPECT_EQ(a.report.comm_words, b.report.comm_words);
    EXPECT_EQ(a.report.rounds, b.report.rounds);
    EXPECT_EQ(a.report.radius, b.report.radius);
    // No fault extras are stamped when injection is inactive.
    EXPECT_DOUBLE_EQ(b.report.get("degraded", -1.0), -1.0);
    EXPECT_DOUBLE_EQ(b.report.get("fault_crashes", -1.0), -1.0);
  }
}

TEST(FaultRecovery, TotalCrashDegradesToTheCoordinatorPartition) {
  // crash_prob = 1: every worker dies in round 1; the run must degrade to
  // the coordinator's own partition and account every other point as lost.
  engine::PipelineConfig cfg;
  cfg.k = 3;
  cfg.z = 8;
  cfg.seed = 4242;
  cfg.machines = 6;
  cfg.partition_seed = 17;
  cfg.fault_seed = 5;
  cfg.fault_crash = 1.0;
  const engine::Workload w = engine::make_workload(700, cfg);
  const auto parts = partition_points(w.planted.points, cfg.machines,
                                      cfg.partition, cfg.partition_seed);
  const std::int64_t survivor_weight = total_weight(parts[0]);

  const auto res = engine::run("mpc-guha", w, cfg);
  const auto& r = res.report;
  EXPECT_DOUBLE_EQ(r.get("fault_machines_lost"), 5.0);
  EXPECT_DOUBLE_EQ(r.get("degraded"), 1.0);
  EXPECT_EQ(static_cast<std::int64_t>(r.get("fault_lost_weight")),
            static_cast<std::int64_t>(w.n()) - survivor_weight);
  EXPECT_EQ(total_weight(res.coreset), survivor_weight);
  ASSERT_FALSE(res.solution.centers.empty());
}

TEST(FaultRecovery, ReassignRebuildsWhatRetryWritesOff) {
  // On a schedule harsh enough to lose machines for good, Reassign must
  // recover weight that Retry writes off (that is its whole point).
  engine::PipelineConfig retry_cfg;
  retry_cfg.k = 3;
  retry_cfg.z = 8;
  retry_cfg.seed = 4242;
  retry_cfg.machines = 6;
  retry_cfg.partition_seed = 17;
  retry_cfg.fault_seed = 11;
  retry_cfg.fault_crash = 0.6;
  retry_cfg.fault_retries = 0;  // first crash is fatal under Retry
  engine::PipelineConfig reassign_cfg = retry_cfg;
  reassign_cfg.fault_policy = RecoveryPolicy::Reassign;
  const engine::Workload w = engine::make_workload(700, retry_cfg);

  const auto retry = engine::run("mpc-guha", w, retry_cfg);
  const auto reassign = engine::run("mpc-guha", w, reassign_cfg);
  ASSERT_GT(retry.report.get("fault_machines_lost"), 0.0);
  EXPECT_GT(retry.report.get("fault_lost_weight"), 0.0);
  EXPECT_GT(reassign.report.get("fault_reassigned"), 0.0);
  EXPECT_LT(reassign.report.get("fault_lost_weight"),
            retry.report.get("fault_lost_weight"));
  EXPECT_GT(reassign.report.get("fault_recovery_rounds"), 0.0);
}

}  // namespace
}  // namespace kc::mpc
