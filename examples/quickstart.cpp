// Quickstart: build an (ε,k,z)-coreset of a point set, solve k-center with
// outliers on the coreset, and compare with solving on the full data.
//
//   ./quickstart [--n 20000] [--k 4] [--z 50] [--eps 0.25] [--seed 1]
//
// This is the end-to-end pipeline of the paper in its simplest form, run
// through the engine layer: the "offline" pipeline is MBCConstruction
// (Algorithm 1) → offline Charikar greedy on the coreset, and the report
// carries the radius/quality/timing comparison.  `kcenter_cli --list`
// shows every other registered pipeline the same workload can drive.

#include <cstdio>

#include "kcenter.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  const Flags flags(argc, argv);
  engine::PipelineConfig cfg;
  cfg.k = static_cast<int>(flags.get_int("k", 4));
  cfg.z = flags.get_int("z", 50);
  cfg.eps = flags.get_double("eps", 0.25);
  cfg.dim = 2;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto n = static_cast<std::size_t>(flags.get_int("n", 20000));

  std::printf("kcoreset quickstart: n=%zu k=%d z=%lld eps=%g\n", n, cfg.k,
              static_cast<long long>(cfg.z), cfg.eps);
  const engine::Workload workload = engine::make_workload(n, cfg);
  std::printf("  planted optimum bracket: [%.4f, %.4f]\n",
              workload.planted.opt_lo, workload.planted.opt_hi);

  // The offline pipeline: coreset build → solve on coreset → evaluate on
  // the full set → reference direct solve (with_direct_solve).
  const engine::PipelineResult res = engine::run("offline", workload, cfg);
  const auto& r = res.report;

  Table table({"stage", "points", "radius", "time (ms)"});
  table.add_row({"coreset build", fmt_count(static_cast<long long>(n)), "-",
                 fmt(r.build_ms, 1)});
  table.add_row({"solve on coreset",
                 fmt_count(static_cast<long long>(r.coreset_size)),
                 fmt(r.radius, 4), fmt(r.solve_ms, 1)});
  table.add_row({"solve on full set", fmt_count(static_cast<long long>(n)),
                 fmt(r.radius_direct, 4), fmt(r.get("direct_ms"), 1)});
  table.print();

  std::printf("\n  coreset size      : %zu points (%.2f%% of input)\n",
              r.coreset_size,
              100.0 * static_cast<double>(r.coreset_size) /
                  static_cast<double>(n));
  std::printf("  radius ratio      : %.4f (coreset pipeline / direct)\n",
              r.quality);
  std::printf("  speedup, solve    : %.1fx\n",
              r.solve_ms > 0 ? r.get("direct_ms") / r.solve_ms : 0.0);
  return 0;
}
