// Quickstart: build an (ε,k,z)-coreset of a point set, solve k-center with
// outliers on the coreset, and compare with solving on the full data.
//
//   ./quickstart [--n 20000] [--k 4] [--z 50] [--eps 0.25] [--seed 1]
//
// This is the end-to-end pipeline of the paper in its simplest form:
// MBCConstruction (Algorithm 1) → offline Charikar greedy on the coreset.

#include <cstdio>

#include "kcenter.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  const Flags flags(argc, argv);
  PlantedConfig cfg;
  cfg.n = static_cast<std::size_t>(flags.get_int("n", 20000));
  cfg.k = static_cast<int>(flags.get_int("k", 4));
  cfg.z = flags.get_int("z", 50);
  cfg.dim = 2;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double eps = flags.get_double("eps", 0.25);
  const Metric metric{Norm::L2};

  std::printf("kcoreset quickstart: n=%zu k=%d z=%lld eps=%g (planted opt in "
              "[%s, %s])\n",
              cfg.n, cfg.k, static_cast<long long>(cfg.z), eps, "?", "?");
  const PlantedInstance inst = make_planted(cfg);
  std::printf("  planted optimum bracket: [%.4f, %.4f]\n", inst.opt_lo,
              inst.opt_hi);

  // 1. Build the coreset.
  Timer t_coreset;
  const MiniBallCovering mbc =
      mbc_construct(inst.points, cfg.k, cfg.z, eps, metric);
  const double coreset_ms = t_coreset.millis();

  // 2. Solve on the coreset and evaluate the centers on the full data.
  Timer t_small;
  const Solution via =
      solve_kcenter_outliers(mbc.reps, cfg.k, cfg.z, metric);
  const double small_ms = t_small.millis();
  const double radius_on_full =
      radius_with_outliers(inst.points, via.centers, cfg.z, metric);

  // 3. Reference: solve directly on the full data.
  Timer t_full;
  const Solution direct =
      solve_kcenter_outliers(inst.points, cfg.k, cfg.z, metric);
  const double full_ms = t_full.millis();

  Table table({"stage", "points", "radius", "time (ms)"});
  table.add_row({"coreset build", fmt_count(static_cast<long long>(cfg.n)),
                 "-", fmt(coreset_ms, 1)});
  table.add_row({"solve on coreset",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt(radius_on_full, 4), fmt(small_ms, 1)});
  table.add_row({"solve on full set",
                 fmt_count(static_cast<long long>(cfg.n)),
                 fmt(direct.radius, 4), fmt(full_ms, 1)});
  table.print();

  std::printf("\n  coreset size      : %zu points (%.2f%% of input)\n",
              mbc.reps.size(),
              100.0 * static_cast<double>(mbc.reps.size()) /
                  static_cast<double>(cfg.n));
  std::printf("  radius ratio      : %.4f (coreset pipeline / direct)\n",
              direct.radius > 0 ? radius_on_full / direct.radius : 1.0);
  std::printf("  speedup, solve    : %.1fx\n",
              small_ms > 0 ? full_ms / small_ms : 0.0);
  return 0;
}
