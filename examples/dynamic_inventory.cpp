// Fully dynamic example: items appear in and disappear from a discrete
// warehouse grid [Δ]² (think: delivery drones that must park near k depots,
// tolerating z unreachable items).  Algorithm 5's sketches track the live
// set under inserts AND deletes in O((k/ε^d+z)·polylog Δ) space; after each
// batch we extract the relaxed coreset and re-solve — the paper's fully
// dynamic (3+ε) k-center application.
//
//   ./dynamic_inventory [--batches 20] [--batch 400] [--delta 1024]
//                       [--k 3] [--z 16] [--eps 0.5]

#include <algorithm>
#include <cstdio>
#include <deque>

#include "kcenter.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::dynamic;
  const Flags flags(argc, argv);
  const int batches = static_cast<int>(flags.get_int("batches", 20));
  const int batch = static_cast<int>(flags.get_int("batch", 400));
  DynamicCoresetOptions opt;
  opt.delta = flags.get_int("delta", 1024);
  opt.k = static_cast<int>(flags.get_int("k", 3));
  opt.z = flags.get_int("z", 16);
  opt.eps = flags.get_double("eps", 0.5);
  opt.dim = 2;
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  std::printf("dynamic inventory on [%lld]^2: %d batches x %d updates, k=%d "
              "z=%lld eps=%g\n",
              static_cast<long long>(opt.delta), batches, batch, opt.k,
              static_cast<long long>(opt.z), opt.eps);

  DynamicKCenter dyn(opt);
  std::printf("  sketch storage: %zu words (s = %lld per grid)\n\n",
              dyn.coreset().words(),
              static_cast<long long>(dyn.coreset().sample_budget()));

  Rng rng(17);
  std::deque<GridPoint> alive;
  Table table({"batch", "live items", "coreset", "grid level", "radius",
               "batch ms"});
  for (int b = 0; b < batches; ++b) {
    Timer timer;
    for (int i = 0; i < batch; ++i) {
      // 70 % inserts near one of k hot spots, 30 % deletes of random items.
      const bool do_delete = !alive.empty() && rng.bernoulli(0.3);
      if (do_delete) {
        const std::size_t pick = rng.uniform(alive.size());
        dyn.erase(alive[pick]);
        alive[pick] = alive.back();
        alive.pop_back();
      } else {
        const auto hot = rng.uniform(static_cast<std::uint64_t>(opt.k));
        const std::int64_t cx =
            static_cast<std::int64_t>((hot + 1) * static_cast<std::uint64_t>(opt.delta) /
                                      (static_cast<std::uint64_t>(opt.k) + 1));
        GridPoint p;
        p.dim = 2;
        // Occasional far-flung item (unreachable outlier).
        if (rng.bernoulli(0.01)) {
          p.c[0] = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(opt.delta)));
          p.c[1] = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(opt.delta)));
        } else {
          const auto spread = static_cast<std::int64_t>(opt.delta / 20);
          p.c[0] = std::clamp<std::int64_t>(
              cx + rng.uniform_int(-spread, spread), 0, opt.delta - 1);
          p.c[1] = std::clamp<std::int64_t>(
              opt.delta / 2 + rng.uniform_int(-spread, spread), 0,
              opt.delta - 1);
        }
        dyn.insert(p);
        alive.push_back(p);
      }
    }
    const double ms = timer.millis();
    const auto sol = dyn.solve();
    table.add_row({std::to_string(b + 1),
                   fmt_count(static_cast<long long>(alive.size())),
                   fmt_count(static_cast<long long>(sol.coreset_size)),
                   std::to_string(sol.grid_level),
                   sol.ok ? fmt(sol.solution.radius, 2) : "-", fmt(ms, 1)});
  }
  table.print();
  std::printf("\n  final sketch storage: %zu words — independent of the %zu "
              "live items\n",
              dyn.coreset().words(), alive.size());
  return 0;
}
