// MPC example: cluster a dataset distributed (adversarially) over a fleet
// of simulated machines with the paper's deterministic 2-round algorithm,
// and report per-machine storage and communication — the quantities
// Theorem 10 bounds.  Runs through the engine layer: the same
// `mpc-2round` pipeline kcenter_cli and the T1-MPC harness drive.
//
//   ./mpc_cluster [--n 40000] [--m 64] [--k 5] [--z 100] [--eps 0.5]
//                 [--partition adversarial|random|roundrobin]

#include <cstdio>
#include <string>

#include "kcenter.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::mpc;
  const Flags flags(argc, argv);
  engine::PipelineConfig cfg;
  cfg.k = static_cast<int>(flags.get_int("k", 5));
  cfg.z = flags.get_int("z", 100);
  cfg.dim = 2;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.eps = flags.get_double("eps", 0.5);
  cfg.machines = static_cast<int>(flags.get_int("m", 64));
  cfg.partition_seed = 7;
  cfg.with_direct_solve = false;  // report the bracket, not a direct solve
  const auto n = static_cast<std::size_t>(flags.get_int("n", 40000));
  const std::string part_name = flags.get_string("partition", "adversarial");
  cfg.partition = part_name == "random"       ? PartitionKind::Random
                  : part_name == "roundrobin" ? PartitionKind::RoundRobin
                                              : PartitionKind::EvenSorted;

  std::printf("MPC 2-round coreset: n=%zu on m=%d machines (%s partition), "
              "k=%d z=%lld eps=%g\n\n",
              n, cfg.machines, partition_name(cfg.partition), cfg.k,
              static_cast<long long>(cfg.z), cfg.eps);

  const engine::Workload workload = engine::make_workload(n, cfg);
  const engine::PipelineResult res = engine::run("mpc-2round", workload, cfg);
  const auto& r = res.report;

  Table table({"metric", "value"});
  table.add_row({"rounds", std::to_string(r.rounds)});
  table.add_row({"r-hat (agreed radius)", fmt(r.get("r_hat"), 4)});
  table.add_row({"sum of outlier guesses (<= 2z)",
                 fmt_count(static_cast<long long>(r.get("sum_guesses")))});
  table.add_row({"merged coreset at coordinator",
                 fmt_count(static_cast<long long>(r.get("merged_size")))});
  table.add_row({"final coreset size",
                 fmt_count(static_cast<long long>(r.coreset_size))});
  table.add_row({"peak worker storage (words)",
                 fmt_count(static_cast<long long>(r.words))});
  table.add_row({"coordinator storage (words)",
                 fmt_count(static_cast<long long>(r.get("coord_words")))});
  table.add_row({"total communication (words)",
                 fmt_count(static_cast<long long>(r.comm_words))});
  table.add_row({"radius via coreset (on full P)", fmt(r.radius, 4)});
  // std::string first operand sidesteps a GCC 12 -Wrestrict false positive
  // in operator+(const char*, std::string&&).
  table.add_row({"planted optimum bracket",
                 std::string("[") + fmt(workload.planted.opt_lo, 4) + ", " +
                     fmt(workload.planted.opt_hi, 4) + "]"});
  table.add_row({"wall clock (ms)", fmt(r.build_ms + r.solve_ms, 1)});
  table.print();

  std::printf("\nExtracted %zu centers; the same workload drives any "
              "registered pipeline (see kcenter_cli --list).\n",
              res.solution.centers.size());
  return 0;
}
