// MPC example: cluster a dataset distributed (adversarially) over a fleet
// of simulated machines with the paper's deterministic 2-round algorithm,
// and report per-machine storage and communication — the quantities
// Theorem 10 bounds.
//
//   ./mpc_cluster [--n 40000] [--m 64] [--k 5] [--z 100] [--eps 0.5]
//                 [--partition adversarial|random|roundrobin]

#include <cstdio>
#include <string>

#include "kcenter.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::mpc;
  const Flags flags(argc, argv);
  PlantedConfig cfg;
  cfg.n = static_cast<std::size_t>(flags.get_int("n", 40000));
  cfg.k = static_cast<int>(flags.get_int("k", 5));
  cfg.z = flags.get_int("z", 100);
  cfg.dim = 2;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int m = static_cast<int>(flags.get_int("m", 64));
  const double eps = flags.get_double("eps", 0.5);
  const std::string part_name = flags.get_string("partition", "adversarial");
  const PartitionKind kind = part_name == "random" ? PartitionKind::Random
                             : part_name == "roundrobin"
                                 ? PartitionKind::RoundRobin
                                 : PartitionKind::EvenSorted;
  const Metric metric{Norm::L2};

  std::printf("MPC 2-round coreset: n=%zu on m=%d machines (%s partition), "
              "k=%d z=%lld eps=%g\n\n",
              cfg.n, m, partition_name(kind), cfg.k,
              static_cast<long long>(cfg.z), eps);

  const PlantedInstance inst = make_planted(cfg);
  const auto parts = partition_points(inst.points, m, kind, 7);

  Timer timer;
  TwoRoundOptions opt;
  opt.eps = eps;
  const auto res = two_round_coreset(parts, cfg.k, cfg.z, metric, opt);
  const double elapsed = timer.millis();

  const Solution via =
      solve_kcenter_outliers(res.coreset, cfg.k, cfg.z, metric);
  const double on_full =
      radius_with_outliers(inst.points, via.centers, cfg.z, metric);

  Table table({"metric", "value"});
  table.add_row({"rounds", std::to_string(res.stats.rounds)});
  table.add_row({"r-hat (agreed radius)", fmt(res.r_hat, 4)});
  table.add_row({"sum of outlier guesses (<= 2z)",
                 fmt_count(res.sum_outlier_guesses)});
  table.add_row({"merged coreset at coordinator",
                 fmt_count(static_cast<long long>(res.merged.size()))});
  table.add_row({"final coreset size",
                 fmt_count(static_cast<long long>(res.coreset.size()))});
  table.add_row({"peak worker storage (words)",
                 fmt_count(static_cast<long long>(
                     res.stats.max_worker_words()))});
  table.add_row({"coordinator storage (words)",
                 fmt_count(static_cast<long long>(
                     res.stats.coordinator_words()))});
  table.add_row({"total communication (words)",
                 fmt_count(static_cast<long long>(
                     res.stats.total_comm_words))});
  table.add_row({"radius via coreset (on full P)", fmt(on_full, 4)});
  // std::string first operand sidesteps a GCC 12 -Wrestrict false positive
  // in operator+(const char*, std::string&&).
  table.add_row({"planted optimum bracket",
                 std::string("[") + fmt(inst.opt_lo, 4) + ", " +
                     fmt(inst.opt_hi, 4) + "]"});
  table.add_row({"wall clock (ms)", fmt(elapsed, 1)});
  table.print();

  std::printf("\nPer-machine local coreset sizes (first 8): ");
  for (std::size_t i = 0; i < res.local_coreset_sizes.size() && i < 8; ++i)
    std::printf("%zu ", res.local_coreset_sizes[i]);
  std::printf("\n");
  return 0;
}
