// Sliding-window example: monitor the last W events of a drifting stream
// (e.g. network measurements whose geography shifts over time, with bursty
// anomalies).  The De Berg–Monemizadeh–Zhong structure maintains, per
// radius level, the z+1 most recent members of each mini-cluster — the
// O((kz/ε^d)·log σ) space the paper's Theorem 30 proves necessary.
//
//   ./sliding_window_monitor [--n 20000] [--window 2000] [--k 3] [--z 8]
//                            [--eps 0.5]

#include <cstdio>

#include "kcenter.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::int64_t>(flags.get_int("n", 20000));
  const auto W = static_cast<std::int64_t>(flags.get_int("window", 2000));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const std::int64_t z = flags.get_int("z", 8);
  const double eps = flags.get_double("eps", 0.5);
  const Metric metric{Norm::L2};

  std::printf("sliding-window monitor: %lld events, window %lld, k=%d z=%lld "
              "eps=%g\n\n",
              static_cast<long long>(n), static_cast<long long>(W), k,
              static_cast<long long>(z), eps);

  stream::SlidingWindow sw(k, z, eps, 2, W, /*r_min=*/0.25, /*r_max=*/512.0,
                           metric);
  Rng rng(23);
  Table table({"time", "level", "guess", "coreset", "radius",
               "stored records"});
  for (std::int64_t t = 1; t <= n; ++t) {
    // Drifting cluster centers + 1 % anomalies.
    Point p(2);
    if (rng.bernoulli(0.01)) {
      p[0] = rng.uniform_real(0, 2000);
      p[1] = rng.uniform_real(0, 2000);
    } else {
      const auto cluster = rng.uniform(static_cast<std::uint64_t>(k));
      const double drift = static_cast<double>(t) * 0.02;
      p[0] = 100.0 * static_cast<double>(cluster + 1) + drift +
             rng.normal() * 2.0;
      p[1] = 100.0 + rng.normal() * 2.0;
    }
    sw.insert(p, t);
    if (t % (n / 8) == 0) {
      const auto q = sw.query(t);
      std::string radius = "-";
      if (q.level >= 0 && !q.coreset.empty()) {
        const Solution sol = solve_kcenter_outliers(q.coreset, k, z, metric);
        radius = fmt(sol.radius + q.cover_radius, 2);
      }
      table.add_row({fmt_count(static_cast<long long>(t)),
                     std::to_string(q.level), fmt(q.guess, 2),
                     fmt_count(static_cast<long long>(q.coreset.size())),
                     radius,
                     fmt_count(static_cast<long long>(sw.stored_records()))});
    }
  }
  table.print();
  std::printf("\n  levels: %d, cap/level: %zu mini-clusters, peak stored "
              "records: %zu\n",
              sw.levels(), sw.cap_per_level(), sw.peak_records());
  std::printf("  (the window holds %lld points; the structure stores far "
              "fewer)\n",
              static_cast<long long>(W));
  return 0;
}
