// Streaming example: a fleet of sensors reports positions one at a time;
// a fraction of readings are faulty (far-off outliers).  Algorithm 3
// maintains an (ε,k,z)-coreset in O(k/ε^d + z) space; every `--report`
// arrivals we extract a clustering from the coreset and print the current
// radius — without ever storing the stream.
//
//   ./streaming_sensors [--n 50000] [--k 4] [--z 60] [--eps 0.5]
//                       [--report 10000]

#include <cstdio>

#include "kcenter.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 50000));
  const int k = static_cast<int>(flags.get_int("k", 4));
  const std::int64_t z = flags.get_int("z", 60);
  const double eps = flags.get_double("eps", 0.5);
  const auto report = static_cast<std::size_t>(flags.get_int("report", 10000));
  const Metric metric{Norm::L2};

  PlantedConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.z = z;
  cfg.dim = 2;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const PlantedInstance inst = make_planted(cfg);
  const auto order = shuffled_order(n, 11);

  std::printf("streaming sensors: n=%zu arrivals, k=%d clusters, z=%lld "
              "faulty readings, eps=%g\n",
              n, k, static_cast<long long>(z), eps);
  stream::InsertionOnlyStream s(k, z, eps, 2, metric);
  std::printf("  space budget (threshold): %zu points\n\n", s.threshold());

  Table table({"arrivals", "coreset", "r (lower bd)", "radius (coreset)",
               "ingest Mpts/s"});
  Timer timer;
  std::size_t seen = 0;
  for (auto idx : order) {
    s.insert(inst.points[idx].p);
    ++seen;
    if (seen % report == 0 || seen == n) {
      const double secs = timer.seconds();
      const Solution sol = solve_kcenter_outliers(s.coreset(), k, z, metric);
      table.add_row({fmt_count(static_cast<long long>(seen)),
                     fmt_count(static_cast<long long>(s.coreset().size())),
                     fmt(s.r(), 4), fmt(sol.radius, 4),
                     fmt(static_cast<double>(seen) / secs / 1e6, 2)});
    }
  }
  table.print();

  std::printf("\n  peak coreset size : %zu (threshold %zu)\n", s.peak_size(),
              s.threshold());
  std::printf("  doublings of r    : %d\n", s.doublings());
  std::printf("  planted optimum   : [%.4f, %.4f]\n", inst.opt_lo,
              inst.opt_hi);
  return 0;
}
