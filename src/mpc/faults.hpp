// Deterministic fault injection and recovery for the MPC simulator.
//
// The paper's model (§1) assumes m machines that never fail and synchronous
// rounds that always deliver.  The ROADMAP's distributed-backend item needs
// the opposite: machine crashes, lost or truncated messages, and stragglers,
// plus recovery that either restores the guarantee or *honestly degrades*
// it.  The theory already licenses recovery: by Lemma 4 the union of any
// subset of per-machine mini-ball coverings is a valid covering of the
// union of their partitions, so losing a machine loses only that machine's
// points from the guarantee — a (k, z + lost_weight) solution, never a
// silently wrong one.
//
// Determinism contract (the PR 4 rule): every fault decision is a pure
// counter-based hash of (seed, round, machine/edge, attempt) — never of
// execution order — and all decisions are made in the *sequential* sections
// of `Simulator::round` (pre-map crash/straggle resolution, in-order
// routing).  The same seed therefore yields the same fault schedule, the
// same recovery path, and bit-identical reports at every thread count.
//
// Layering:
//  * `FaultPlan`     — the pure schedule oracle (stateless, hash-based);
//  * `FaultInjector` — plan + config + mutable accounting + the permanent
//    dead-machine set, handed to a `Simulator`;
//  * transport recovery (crash re-execution, message re-send with backoff)
//    lives in `Simulator::round`;
//  * semantic recovery (reassigning a dead machine's partition, degrading
//    to the surviving union) lives in the algorithms, via
//    `gather_with_recovery` below and per-algorithm code (multi_round).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace kc::mpc {

class Simulator;  // simulator.hpp (not included here: it includes us)
struct Message;   // simulator.hpp

/// What to do about work lost past the transport retry budget.
enum class RecoveryPolicy : std::uint8_t {
  Retry,     ///< transport retries only; losses degrade to the surviving union
  Reassign,  ///< dead partitions are adopted by survivors in extra rounds
  Degrade,   ///< no retries at all: accept every fault, degrade immediately
};

[[nodiscard]] const char* to_string(RecoveryPolicy policy) noexcept;
/// Parses "retry" / "reassign" / "degrade"; returns false on anything else.
[[nodiscard]] bool parse_recovery_policy(const std::string& name,
                                         RecoveryPolicy* out) noexcept;

struct FaultConfig {
  std::uint64_t seed = 0;      ///< schedule seed (same seed ⇒ same schedule)
  double crash_prob = 0.0;     ///< per machine-round-attempt crash probability
  double drop_prob = 0.0;      ///< per message-attempt drop probability
  double truncate_prob = 0.0;  ///< per point-message-attempt truncation prob
  double straggle_prob = 0.0;  ///< per machine-round straggler probability
  double straggle_ms = 5.0;    ///< simulated delay per straggle event
  int retry_budget = 2;        ///< re-attempts past the first (crash & resend)
  int max_recovery_rounds = 2; ///< Reassign: extra rounds before degrading
  RecoveryPolicy policy = RecoveryPolicy::Retry;
  Backoff backoff{};           ///< simulated retry latency accounting

  /// Injection is active iff any fault has nonzero probability.  Inactive
  /// configs take exactly the pre-fault code paths (byte-identical runs).
  [[nodiscard]] bool active() const noexcept {
    return crash_prob > 0.0 || drop_prob > 0.0 || truncate_prob > 0.0 ||
           straggle_prob > 0.0;
  }

  /// Degrade accepts every fault on first occurrence; the other policies
  /// spend the configured transport budget first.
  [[nodiscard]] int effective_retry_budget() const noexcept {
    return policy == RecoveryPolicy::Degrade ? 0 : retry_budget;
  }
};

/// The pure fault schedule: every query is a counter-based splitmix64 hash
/// of its coordinates, so the schedule is a function of the seed alone —
/// independent of thread count, query order, or how often it is asked.
/// Machine 0 (the coordinator) never crashes: in the paper's model its
/// failure is the job's failure, and production coordinators are replicated.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] bool crash(int round, int machine, int attempt) const noexcept {
    if (machine == 0) return false;
    return u(kCrash, round, machine, attempt) < cfg_.crash_prob;
  }
  [[nodiscard]] bool drop(int round, int from, int to,
                          int attempt) const noexcept {
    if (from == to) return false;  // local data movement cannot be lost
    return u(kDrop, round, edge(from, to), attempt) < cfg_.drop_prob;
  }
  [[nodiscard]] bool truncate(int round, int from, int to,
                              int attempt) const noexcept {
    if (from == to) return false;
    return u(kTrunc, round, edge(from, to), attempt) < cfg_.truncate_prob;
  }
  /// Fraction of a truncated payload that survives, in [1/4, 1).
  [[nodiscard]] double truncate_keep_fraction(int round, int from,
                                              int to) const noexcept {
    return 0.25 + 0.75 * u(kTruncKeep, round, edge(from, to), 0);
  }
  [[nodiscard]] bool straggle(int round, int machine) const noexcept {
    return u(kStraggle, round, machine, 0) < cfg_.straggle_prob;
  }

 private:
  enum Stream : std::uint64_t {
    kCrash = 0x1,
    kDrop = 0x2,
    kTrunc = 0x3,
    kTruncKeep = 0x4,
    kStraggle = 0x5,
  };

  static std::uint64_t edge(int from, int to) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  [[nodiscard]] double u(std::uint64_t stream, int round, std::uint64_t key,
                         int attempt) const noexcept {
    std::uint64_t h = splitmix64(cfg_.seed ^ (stream * 0x9e3779b97f4a7c15ULL));
    h = splitmix64(h ^ static_cast<std::uint64_t>(round));
    h = splitmix64(h ^ key);
    h = splitmix64(h ^ static_cast<std::uint64_t>(attempt));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  FaultConfig cfg_{};
};

/// Honest accounting of everything injected and everything it cost.
/// Transport-level fields are filled by `Simulator::round`; the semantic
/// fields (`lost_weight`, `partitions_reassigned`, `degraded`) by the
/// algorithm-layer recovery.
struct FaultStats {
  int crashes = 0;       ///< crash events injected (incl. retried attempts)
  int drops = 0;         ///< message-attempt drops injected
  int truncations = 0;   ///< truncation events injected
  int straggles = 0;     ///< straggler delays injected
  int retries = 0;       ///< crash re-executions granted
  int resends = 0;       ///< message re-send attempts
  int machines_lost = 0; ///< machines dead past the retry budget
  int messages_lost = 0; ///< messages dropped past the retry budget
  int partitions_reassigned = 0;  ///< orphan shipments rebuilt by survivors
  int recovery_rounds = 0;        ///< extra rounds spent on reassignment
  std::size_t resent_words = 0;   ///< wire words spent on re-sends
  std::size_t lost_words = 0;     ///< wire words of permanently lost payload
  std::int64_t lost_weight = 0;   ///< input weight absent from the summary
  double backoff_ms = 0.0;        ///< simulated retry backoff latency
  double straggle_ms = 0.0;       ///< simulated straggler latency
  /// The run fell back to the surviving union (Lemma 4): the result is a
  /// valid (k, z + lost_weight) solution, but the pipeline's registered
  /// quality bound is no longer certified.  Reports must carry this flag.
  bool degraded = false;

  [[nodiscard]] bool injected_any() const noexcept {
    return crashes > 0 || drops > 0 || truncations > 0 || straggles > 0;
  }
};

/// Plan + policy + accounting + the permanent dead set, shared by one
/// simulator run (and its recovery rounds).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg), plan_(cfg) {}

  [[nodiscard]] bool enabled() const noexcept { return cfg_.active(); }
  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] FaultStats& stats() noexcept { return stats_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  [[nodiscard]] bool alive(int machine) const noexcept {
    return machine < 0 ||
           static_cast<std::size_t>(machine) >= dead_.size() ||
           dead_[static_cast<std::size_t>(machine)] == 0;
  }
  void mark_dead(int machine) {
    if (machine < 0) return;
    if (static_cast<std::size_t>(machine) >= dead_.size())
      dead_.resize(static_cast<std::size_t>(machine) + 1, 0);
    dead_[static_cast<std::size_t>(machine)] = 1;
  }

 private:
  FaultConfig cfg_;
  FaultPlan plan_;
  FaultStats stats_;
  std::vector<char> dead_;
};

/// Deterministic adopter for a dead machine's partition: the first alive
/// machine on the ring (dead+1, …, m−1, 1, …, dead−1), falling back to the
/// coordinator when no worker survives.
[[nodiscard]] int choose_adopter(const FaultInjector& faults, int machines,
                                 int dead) noexcept;

/// Rebuilds machine `i`'s shipment from its resident partition (machines
/// are restartable: partitions are durable, per the index-based
/// partitioning of PR 6).  Runs on the adopting machine during a recovery
/// round; must be a pure function of `i`.
using RebuildFn = std::function<WeightedSet(int machine)>;

struct GatherResult {
  /// Shipments in machine-id order; [0] is the coordinator's own summary.
  /// Missing shipments that could not be recovered stay empty (their
  /// weight is accounted in `FaultStats::lost_weight`).
  std::vector<WeightedSet> shipments;
};

/// Receiver-side accounting for a transport-truncated point payload: the
/// cut rows' weight is gone from the summary, and the registered bound can
/// no longer be certified.  No-op when `faults` is null or nothing was cut.
void account_payload_truncation(FaultInjector* faults, const Message& msg);

/// Coordinator-side gather shared by the single-shipment algorithms
/// (1-round, 2-round round 2, Ceccarello, Guha): collects the one point
/// shipment expected from every machine 1..m−1 with a nonempty partition,
/// then recovers the missing ones according to the injector's policy —
/// Reassign runs up to `max_recovery_rounds` extra rounds in which
/// deterministic adopters rebuild orphan shipments from the durable
/// partitions (storage and communication honestly re-accounted, the fault
/// plan still active); anything still missing afterwards (or under
/// Retry/Degrade) is written off as lost weight and flags the run
/// degraded.  With no active injector this reduces to the pre-fault
/// gather, byte for byte.
[[nodiscard]] GatherResult gather_with_recovery(
    Simulator& sim, const std::vector<WeightedSet>& parts, WeightedSet own,
    const RebuildFn& rebuild);

}  // namespace kc::mpc
