// Ablation baseline: Guha–Li–Zhang-style local-z aggregation [29].
//
// Without the paper's outlier-guessing mechanism a worker cannot know how
// many of the global z outliers it holds, so the safe choice is to build
// its local covering with the *full* budget z (every machine pays the
// additive z in its summary size, and the coordinator receives Θ(m·z)
// outlier candidates in the worst case).  This is the method the paper's
// §3 discussion credits to [29] and improves from linear to logarithmic
// dependence on z (see ABL-GUESS in DESIGN.md).

#pragma once

#include <cstdint>
#include <vector>

#include "core/radius_oracle.hpp"
#include "core/types.hpp"
#include "mpc/simulator.hpp"

namespace kc::mpc {

struct GuhaOptions {
  double eps = 0.5;
  OracleOptions oracle;
};

struct GuhaResult {
  WeightedSet coreset;
  WeightedSet merged;
  std::vector<std::size_t> local_coreset_sizes;
  MpcStats stats;
};

[[nodiscard]] GuhaResult guha_local_z_coreset(
    const std::vector<WeightedSet>& parts, int k, std::int64_t z,
    const Metric& metric, const ExecContext& ctx = {},
    const GuhaOptions& opt = {});

}  // namespace kc::mpc
