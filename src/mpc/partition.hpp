// Input distribution across MPC machines.
//
// The paper distinguishes two regimes: the deterministic 2-round algorithm
// tolerates *arbitrary (adversarial) but even* distributions, while the
// randomized 1-round algorithm assumes each point lands on a uniformly
// random machine.  These generators produce both, plus the specifically
// nasty case where all outliers concentrate on few machines.

#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.hpp"
#include "util/rng.hpp"

namespace kc::mpc {

enum class PartitionKind : std::uint8_t {
  Random,       ///< each point to a uniform machine (1-round assumption)
  EvenSorted,   ///< sort by first coordinate, equal contiguous blocks —
                ///< clusters and outliers concentrate (adversarial)
  RoundRobin,   ///< deterministic even spread in input order
};

/// Splits `pts` over m machines.  EvenSorted and RoundRobin yield sizes
/// differing by at most 1 ("evenly"); Random is even in expectation.
[[nodiscard]] std::vector<WeightedSet> partition_points(
    const WeightedSet& pts, int m, PartitionKind kind, std::uint64_t seed);

[[nodiscard]] const char* partition_name(PartitionKind kind) noexcept;

}  // namespace kc::mpc
