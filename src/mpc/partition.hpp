// Input distribution across MPC machines.
//
// The paper distinguishes two regimes: the deterministic 2-round algorithm
// tolerates *arbitrary (adversarial) but even* distributions, while the
// randomized 1-round algorithm assumes each point lands on a uniformly
// random machine.  These generators produce both, plus the specifically
// nasty case where all outliers concentrate on few machines.

#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.hpp"
#include "util/rng.hpp"

namespace kc::mpc {

enum class PartitionKind : std::uint8_t {
  Random,       ///< each point to a uniform machine (1-round assumption)
  EvenSorted,   ///< sort by first coordinate, equal contiguous blocks —
                ///< clusters and outliers concentrate (adversarial)
  RoundRobin,   ///< deterministic even spread in input order
};

/// Index-level split of `pts` over m machines: part r lists the indices of
/// the points machine r receives, in that machine's arrival order.  The
/// copy-free layer under `partition_points` — consumers that hold the
/// points in a SoA buffer gather slices from these instead of materializing
/// per-machine AoS sets.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> partition_indices(
    const WeightedSet& pts, int m, PartitionKind kind, std::uint64_t seed);

/// Splits `pts` over m machines.  EvenSorted and RoundRobin yield sizes
/// differing by at most 1 ("evenly"); Random is even in expectation.
/// Implemented as a gather over `partition_indices` — the two views of a
/// partition always agree.
[[nodiscard]] std::vector<WeightedSet> partition_points(
    const WeightedSet& pts, int m, PartitionKind kind, std::uint64_t seed);

[[nodiscard]] const char* partition_name(PartitionKind kind) noexcept;

}  // namespace kc::mpc
