#include "mpc/multi_round.hpp"

#include <cmath>
#include <utility>

#include "core/coreset.hpp"
#include "core/mbc.hpp"
#include "util/check.hpp"

namespace kc::mpc {

MultiRoundResult multi_round_coreset(const std::vector<WeightedSet>& parts,
                                     int k, std::int64_t z,
                                     const Metric& metric,
                                     const ExecContext& ctx,
                                     const MultiRoundOptions& opt) {
  KC_EXPECTS(!parts.empty());
  KC_EXPECTS(opt.rounds >= 1);
  const int m = static_cast<int>(parts.size());
  int dim = 1;
  for (const auto& part : parts)
    if (!part.empty()) {
      dim = part.front().p.dim();
      break;
    }

  // β = ⌈m^{1/R}⌉; after R rounds a single machine remains.
  const int beta = std::max(
      2, static_cast<int>(std::ceil(
             std::pow(static_cast<double>(m), 1.0 / opt.rounds))));

  Simulator sim(m, dim, ctx);
  FaultInjector* faults = sim.faults();
  // Holdings are the durable round-boundary checkpoints of the fault model:
  // a recovery adopter may rebuild any machine's stage output from them.
  std::vector<WeightedSet> holdings = parts;

  int active = m;
  for (int t = 0; t < opt.rounds; ++t) {
    const int next_active = (active + beta - 1) / beta;
    const auto summarize = [&](int id) {
      return mbc_construct(holdings[static_cast<std::size_t>(id)], k, z,
                           opt.eps, metric, opt.oracle)
          .reps;
    };
    sim.round([&](int id, std::vector<Message>& /*inbox*/,
                  std::vector<Message>& outbox) {
      if (id >= active) return;
      const auto uid = static_cast<std::size_t>(id);
      const WeightedSet& mine = holdings[uid];
      sim.record_storage(id, sim.point_words(mine.size()));
      WeightedSet reps = summarize(id);
      sim.record_storage(id, sim.point_words(mine.size() + reps.size()));
      Message msg;
      msg.to = id / beta;  // 0-indexed fan-in target (self for id < beta)
      msg.payload = PointPayload(reps);
      outbox.push_back(std::move(msg));
    });

    // Collect stage shipments per sender (stage messages carry no scalars;
    // recovery shipments below are tagged with the orphan sender's id).
    std::vector<WeightedSet> arrived(static_cast<std::size_t>(active));
    std::vector<char> have(static_cast<std::size_t>(active), 0);
    const auto collect = [&](bool tagged) {
      for (int id = 0; id < next_active; ++id) {
        for (auto& msg : sim.inbox(id)) {
          int sender = msg.from;
          if (tagged) {
            if (msg.scalars.empty()) continue;
            sender = static_cast<int>(msg.scalars[0]);
          } else if (!msg.scalars.empty()) {
            continue;
          }
          if (sender < 0 || sender >= active || sender / beta != id ||
              have[static_cast<std::size_t>(sender)] != 0)
            continue;
          account_payload_truncation(faults, msg);
          arrived[static_cast<std::size_t>(sender)] = msg.payload.unpack();
          have[static_cast<std::size_t>(sender)] = 1;
        }
      }
    };
    collect(/*tagged=*/false);

    // A sender with a durable nonempty holding whose shipment never made it
    // (dead machine or lost message) must be recovered or written off.
    const auto missing = [&] {
      std::vector<int> miss;
      for (int s = 0; s < active; ++s)
        if (have[static_cast<std::size_t>(s)] == 0 &&
            !holdings[static_cast<std::size_t>(s)].empty())
          miss.push_back(s);
      return miss;
    };

    std::vector<int> miss = missing();
    if (!miss.empty() && faults != nullptr &&
        faults->config().policy == RecoveryPolicy::Reassign) {
      const FaultConfig& fc = faults->config();
      for (int pass = 0; pass < fc.max_recovery_rounds && !miss.empty();
           ++pass) {
        ++faults->stats().recovery_rounds;
        std::vector<std::pair<int, int>> tasks;  // (orphan, adopter)
        tasks.reserve(miss.size());
        for (int s : miss) tasks.emplace_back(s, choose_adopter(*faults, m, s));
        sim.round([&](int id, std::vector<Message>& /*inbox*/,
                      std::vector<Message>& outbox) {
          for (const auto& [orphan, adopter] : tasks) {
            if (adopter != id) continue;
            WeightedSet reps = summarize(orphan);
            sim.record_storage(
                id, sim.point_words(
                        holdings[static_cast<std::size_t>(id)].size() +
                        holdings[static_cast<std::size_t>(orphan)].size() +
                        reps.size()));
            Message msg;
            msg.to = orphan / beta;
            msg.scalars.push_back(static_cast<double>(orphan));
            msg.payload = PointPayload(reps);
            outbox.push_back(std::move(msg));
          }
        });
        collect(/*tagged=*/true);
        const std::size_t before = miss.size();
        miss = missing();
        faults->stats().partitions_reassigned +=
            static_cast<int>(before - miss.size());
      }
    }
    // Lemma 4: drop the unrecoverable holdings from the guarantee.  A
    // shipment can be missing without an injector too (real transport
    // failure), so the write-off goes through the simulator's fault sink.
    for (int s : miss) {
      sim.fault_sink().lost_weight +=
          total_weight(holdings[static_cast<std::size_t>(s)]);
      sim.fault_sink().degraded = true;
    }

    // New holdings = everything received this stage, in sender order.
    for (auto& h : holdings) h.clear();
    for (int s = 0; s < active; ++s) {
      auto& h = holdings[static_cast<std::size_t>(s / beta)];
      auto& got = arrived[static_cast<std::size_t>(s)];
      h.insert(h.end(), got.begin(), got.end());
    }
    for (int id = 0; id < next_active; ++id)
      sim.record_storage(
          id, sim.point_words(holdings[static_cast<std::size_t>(id)].size()));
    active = next_active;
  }
  KC_ENSURES(active == 1);

  MultiRoundResult result;
  result.coreset = std::move(holdings[0]);
  result.eps_effective = compose_eps_rounds(opt.eps, opt.rounds);
  result.beta = beta;
  result.stats = sim.stats();
  return result;
}

}  // namespace kc::mpc
