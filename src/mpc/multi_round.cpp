#include "mpc/multi_round.hpp"

#include <cmath>

#include "core/coreset.hpp"
#include "core/mbc.hpp"
#include "util/check.hpp"

namespace kc::mpc {

MultiRoundResult multi_round_coreset(const std::vector<WeightedSet>& parts,
                                     int k, std::int64_t z,
                                     const Metric& metric,
                                     const MultiRoundOptions& opt) {
  KC_EXPECTS(!parts.empty());
  KC_EXPECTS(opt.rounds >= 1);
  const int m = static_cast<int>(parts.size());
  int dim = 1;
  for (const auto& part : parts)
    if (!part.empty()) {
      dim = part.front().p.dim();
      break;
    }

  // β = ⌈m^{1/R}⌉; after R rounds a single machine remains.
  const int beta = std::max(
      2, static_cast<int>(std::ceil(
             std::pow(static_cast<double>(m), 1.0 / opt.rounds))));

  Simulator sim(m, dim, opt.pool);
  std::vector<WeightedSet> holdings = parts;

  int active = m;
  for (int t = 0; t < opt.rounds; ++t) {
    const int next_active = (active + beta - 1) / beta;
    sim.round([&](int id, std::vector<Message>& /*inbox*/,
                  std::vector<Message>& outbox) {
      if (id >= active) return;
      const auto uid = static_cast<std::size_t>(id);
      const WeightedSet& mine = holdings[uid];
      sim.record_storage(id, sim.point_words(mine.size()));
      MiniBallCovering mbc =
          mbc_construct(mine, k, z, opt.eps, metric, opt.oracle);
      sim.record_storage(id, sim.point_words(mine.size() + mbc.reps.size()));
      Message msg;
      msg.to = id / beta;  // 0-indexed fan-in target (self for id < beta)
      msg.points = std::move(mbc.reps);
      outbox.push_back(std::move(msg));
    });
    // New holdings = everything received this round.
    for (auto& h : holdings) h.clear();
    for (int id = 0; id < next_active; ++id) {
      auto& h = holdings[static_cast<std::size_t>(id)];
      for (auto& msg : sim.inbox(id))
        h.insert(h.end(), msg.points.begin(), msg.points.end());
      sim.record_storage(id, sim.point_words(h.size()));
    }
    active = next_active;
  }
  KC_ENSURES(active == 1);

  MultiRoundResult result;
  result.coreset = std::move(holdings[0]);
  result.eps_effective = compose_eps_rounds(opt.eps, opt.rounds);
  result.beta = beta;
  result.stats = sim.stats();
  return result;
}

}  // namespace kc::mpc
