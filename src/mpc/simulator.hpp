// MPC round simulator (paper §1, §3).
//
// Implements the abstract Massively Parallel Computing model the paper's
// theorems are stated in: m machines (machine 0 is the coordinator M1),
// synchronous communication rounds, and *measured* storage in machine
// words.  The design mirrors MPI's message-passing discipline: a round is
// local computation followed by message exchange; messages carry either
// scalar vectors (the V_i radius tables of Algorithm 2) or weighted point
// sets (coreset shipments).
//
// What we account, following the model rather than process RSS:
//  * one coordinate = 1 word, so a weighted point in R^d = d+1 words;
//  * a scalar = 1 word;
//  * per-machine peak storage = max over rounds of (resident input points +
//    received messages + locally built summaries), self-reported by the
//    algorithms through `record_storage`;
//  * per-round and total communication volume in words.
//
// Machine-local work within a round is embarrassingly parallel and runs on
// a `kc::ThreadPool` when one is supplied (one machine per task, merged in
// machine-index order), so the simulated machines occupy real cores.  The
// map-phase wall time and the thread count are recorded in MpcStats; with
// no pool (or a single-thread pool) the machines run sequentially with
// bit-identical results.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/point.hpp"
#include "util/parallel.hpp"

namespace kc::mpc {

/// A message between machines.  Either payload may be empty.
struct Message {
  int from = 0;
  int to = 0;
  std::vector<double> scalars;
  WeightedSet points;

  /// Words on the wire: scalars + (dim+1) per weighted point.
  [[nodiscard]] std::size_t words(int dim) const noexcept {
    return scalars.size() + points.size() * static_cast<std::size_t>(dim + 1);
  }
};

struct MpcStats {
  int machines = 0;
  int dim = 0;
  int rounds = 0;  ///< communication rounds executed
  int threads = 1;     ///< pool threads the map phases ran on
  double map_ms = 0.0; ///< total wall time of the map phases (all rounds)
  std::vector<std::size_t> peak_words;  ///< per machine
  std::vector<std::size_t> comm_words_per_round;
  std::size_t total_comm_words = 0;

  /// Peak storage over worker machines (ids ≥ 1).
  [[nodiscard]] std::size_t max_worker_words() const;
  /// Peak storage of the coordinator (id 0).
  [[nodiscard]] std::size_t coordinator_words() const;
};

class Simulator {
 public:
  /// m ≥ 1 machines in dimension dim.  Machine 0 is the coordinator.
  /// `pool` (optional, not owned) runs the per-machine map phase of each
  /// round concurrently; it must outlive the simulator.
  explicit Simulator(int m, int dim, ThreadPool* pool = nullptr);

  [[nodiscard]] int machines() const noexcept { return m_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Registers `words` as currently resident on machine `id`; the peak is
  /// tracked.  Algorithms call this with their full resident footprint at
  /// the moments it is largest (after receiving, after building summaries).
  void record_storage(int id, std::size_t words);

  /// Account for the words of a weighted point set.
  [[nodiscard]] std::size_t point_words(std::size_t count) const noexcept {
    return count * static_cast<std::size_t>(dim_ + 1);
  }

  /// Executes one synchronous round: `fn(id, inbox, outbox)` runs for every
  /// machine (concurrently on the pool when one was supplied — `fn` may
  /// freely touch per-machine state indexed by `id`, but nothing shared
  /// across ids), then outgoing messages are routed in machine-index order
  /// and become the next round's inboxes.  Communication volume is
  /// accounted per round; the map phase's wall time accumulates in
  /// `stats().map_ms`.
  using RoundFn =
      std::function<void(int id, std::vector<Message>& inbox,
                         std::vector<Message>& outbox)>;
  void round(const RoundFn& fn);

  /// Inbox currently waiting at machine `id` (delivered by the last round).
  [[nodiscard]] std::vector<Message>& inbox(int id);

  [[nodiscard]] const MpcStats& stats() const noexcept { return stats_; }

 private:
  int m_;
  int dim_;
  ThreadPool* pool_;  ///< not owned; nullptr = sequential map phase
  std::vector<std::vector<Message>> inboxes_;
  MpcStats stats_;
};

}  // namespace kc::mpc
