// MPC round simulator (paper §1, §3).
//
// Implements the abstract Massively Parallel Computing model the paper's
// theorems are stated in: m machines (machine 0 is the coordinator M1),
// synchronous communication rounds, and *measured* storage in machine
// words.  The design mirrors MPI's message-passing discipline: a round is
// local computation followed by message exchange; messages carry either
// scalar vectors (the V_i radius tables of Algorithm 2) or weighted point
// sets (coreset shipments, packed once into a SoA `PointPayload` — see
// mpc/message.hpp).
//
// What we account, following the model rather than process RSS:
//  * one coordinate = 1 word, so a weighted point in R^d = d+1 words;
//  * a scalar = 1 word;
//  * per-machine peak storage = max over rounds of (resident input points +
//    received messages + locally built summaries), self-reported by the
//    algorithms through `record_storage`;
//  * per-round and total communication volume in words — including, under
//    fault injection, the bandwidth burned by dropped attempts and
//    re-sends.
//
// Machine-local work within a round is embarrassingly parallel and runs on
// a `kc::ThreadPool` when one is supplied (one machine per task, merged in
// machine-index order), so the simulated machines occupy real cores.  The
// map-phase wall time and the thread count are recorded in MpcStats; with
// no pool (or a single-thread pool) the machines run sequentially with
// bit-identical results.
//
// Message routing goes through a `Transport` (mpc/transport.hpp): the
// default `LocalTransport` is the historical in-process hand-off, while
// `ProcessTransport` ships every non-self message through a forked worker
// process as a checksummed wire frame and measures real bytes next to the
// model-predicted words.  Real transport failures (worker exit, EOF,
// timeout) land in the same `FaultStats` as injected faults — with no
// injector attached they accumulate in a simulator-owned sink — so the
// algorithm-layer recovery treats both alike.
//
// Fault model (mpc/faults.hpp): an optional `FaultInjector` adds machine
// crashes, message drops/truncations, and stragglers.  All fault decisions
// are resolved in the sequential sections of `round` (never in the
// parallel map phase), so a fixed fault seed gives the same schedule at
// every thread count.  Crash semantics are crash-at-round-start with
// checkpointed round boundaries: a crashed attempt does no observable work
// and is re-executed (up to the retry budget) from the machine's durable
// state — its resident partition plus previously delivered messages.  A
// machine that exhausts the budget is permanently dead and skips all later
// rounds.  Without an (active) injector every code path below is exactly
// the pre-fault one.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpc/context.hpp"
#include "mpc/faults.hpp"
#include "mpc/message.hpp"
#include "mpc/transport.hpp"
#include "util/parallel.hpp"

namespace kc::mpc {

struct MpcStats {
  int machines = 0;
  int dim = 0;
  int rounds = 0;  ///< communication rounds executed
  int threads = 1;     ///< pool threads the map phases ran on
  double map_ms = 0.0; ///< total wall time of the map phases (all rounds)
  double route_ms = 0.0;  ///< total wall time of the routing phases
  std::vector<std::size_t> peak_words;  ///< per machine
  std::vector<std::size_t> comm_words_per_round;
  std::size_t total_comm_words = 0;
  FaultStats faults;  ///< injected + real failures; all-zero when none
  Backend backend = Backend::Local;  ///< transport the messages rode
  WireStats wire;  ///< measured transport bytes; all-zero on local

  /// Peak storage over worker machines (ids ≥ 1).
  [[nodiscard]] std::size_t max_worker_words() const;
  /// Peak storage of the coordinator (id 0).
  [[nodiscard]] std::size_t coordinator_words() const;
};

class Simulator {
 public:
  /// m ≥ 1 machines in dimension dim.  Machine 0 is the coordinator.
  /// The context supplies the (optional, non-owning) environment:
  /// `ctx.pool` runs the per-machine map phase of each round concurrently;
  /// `ctx.faults` injects the deterministic fault schedule (an inactive
  /// injector is equivalent to none); `ctx.transport` routes messages
  /// (nullptr = a simulator-owned `LocalTransport`).  Everything the
  /// context points at must outlive the simulator.
  explicit Simulator(int m, int dim, const ExecContext& ctx = {});

  [[nodiscard]] int machines() const noexcept { return m_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// The attached injector when it is active, else nullptr.
  [[nodiscard]] FaultInjector* faults() const noexcept { return faults_; }

  /// Where fault accounting lands: the active injector's stats, or the
  /// simulator-owned sink that collects *real* transport failures when no
  /// injector is attached.  Algorithm-layer recovery writes loss accounting
  /// (lost weight, degradation) here so it is honest on both backends.
  [[nodiscard]] FaultStats& fault_sink() noexcept {
    return faults_ != nullptr ? faults_->stats() : real_faults_;
  }

  /// False once the machine crashed past its retry budget.
  [[nodiscard]] bool alive(int id) const noexcept {
    return faults_ == nullptr || faults_->alive(id);
  }

  /// Registers `words` as currently resident on machine `id`; the peak is
  /// tracked.  Algorithms call this with their full resident footprint at
  /// the moments it is largest (after receiving, after building summaries).
  void record_storage(int id, std::size_t words);

  /// Account for the words of a weighted point set.
  [[nodiscard]] std::size_t point_words(std::size_t count) const noexcept {
    return count * static_cast<std::size_t>(dim_ + 1);
  }

  /// Executes one synchronous round: `fn(id, inbox, outbox)` runs for every
  /// machine (concurrently on the pool when one was supplied — `fn` may
  /// freely touch per-machine state indexed by `id`, but nothing shared
  /// across ids), then outgoing messages are routed in machine-index order
  /// through the transport and become the next round's inboxes.
  /// Communication volume is accounted per round; the map phase's wall
  /// time accumulates in `stats().map_ms`, the routing phase's in
  /// `stats().route_ms`.  Under an active injector, crashed machines are
  /// deterministically re-executed up to the retry budget (then skipped
  /// for good), messages are dropped/truncated/re-sent per the plan, and
  /// every attempt's bandwidth is accounted — and physically transmitted,
  /// so the wire-byte measurement matches the words accounting.
  using RoundFn =
      std::function<void(int id, std::vector<Message>& inbox,
                         std::vector<Message>& outbox)>;
  void round(const RoundFn& fn);

  /// Inbox currently waiting at machine `id` (delivered by the last round).
  [[nodiscard]] std::vector<Message>& inbox(int id);

  /// Snapshot of the measured quantities, with fault and wire accounting
  /// folded in.
  [[nodiscard]] MpcStats stats() const;

 private:
  int m_;
  int dim_;
  ThreadPool* pool_;          ///< not owned; nullptr = sequential map phase
  FaultInjector* faults_;     ///< not owned; nullptr = no fault injection
  std::unique_ptr<Transport> owned_transport_;  ///< fallback LocalTransport
  Transport* transport_;      ///< never null after construction
  FaultStats real_faults_;    ///< real-failure sink when no injector
  std::vector<std::vector<Message>> inboxes_;
  MpcStats stats_;
};

}  // namespace kc::mpc
