// MPC round simulator (paper §1, §3).
//
// Implements the abstract Massively Parallel Computing model the paper's
// theorems are stated in: m machines (machine 0 is the coordinator M1),
// synchronous communication rounds, and *measured* storage in machine
// words.  The design mirrors MPI's message-passing discipline: a round is
// local computation followed by message exchange; messages carry either
// scalar vectors (the V_i radius tables of Algorithm 2) or weighted point
// sets (coreset shipments, packed once into a SoA `PointPayload`).
//
// What we account, following the model rather than process RSS:
//  * one coordinate = 1 word, so a weighted point in R^d = d+1 words;
//  * a scalar = 1 word;
//  * per-machine peak storage = max over rounds of (resident input points +
//    received messages + locally built summaries), self-reported by the
//    algorithms through `record_storage`;
//  * per-round and total communication volume in words — including, under
//    fault injection, the bandwidth burned by dropped attempts and
//    re-sends.
//
// Machine-local work within a round is embarrassingly parallel and runs on
// a `kc::ThreadPool` when one is supplied (one machine per task, merged in
// machine-index order), so the simulated machines occupy real cores.  The
// map-phase wall time and the thread count are recorded in MpcStats; with
// no pool (or a single-thread pool) the machines run sequentially with
// bit-identical results.
//
// Fault model (mpc/faults.hpp): an optional `FaultInjector` adds machine
// crashes, message drops/truncations, and stragglers.  All fault decisions
// are resolved in the sequential sections of `round` (never in the
// parallel map phase), so a fixed fault seed gives the same schedule at
// every thread count.  Crash semantics are crash-at-round-start with
// checkpointed round boundaries: a crashed attempt does no observable work
// and is re-executed (up to the retry budget) from the machine's durable
// state — its resident partition plus previously delivered messages.  A
// machine that exhausts the budget is permanently dead and skips all later
// rounds.  Without an (active) injector every code path below is exactly
// the pre-fault one.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/point_buffer.hpp"
#include "mpc/faults.hpp"
#include "util/parallel.hpp"

namespace kc::mpc {

/// Weighted-point message payload, packed once at send time into the
/// canonical SoA layout (coordinates columns + a weight column).  Re-sends
/// under fault retries ship the same packing — no per-attempt re-pack —
/// and transport truncation is a prefix cut: `size()` (and therefore
/// `Message::words`) accounts only the rows that were actually delivered.
class PointPayload {
 public:
  PointPayload() = default;

  explicit PointPayload(const WeightedSet& pts) {
    if (pts.empty()) return;
    coords_ = kernels::PointBuffer(pts);
    weights_.reserve(pts.size());
    for (const auto& wp : pts) weights_.push_back(wp.w);
    shipped_ = pts.size();
  }

  /// Rows delivered (≤ full_size() after truncation).
  [[nodiscard]] std::size_t size() const noexcept { return shipped_; }
  /// Rows packed at send time.
  [[nodiscard]] std::size_t full_size() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return shipped_ == 0; }
  [[nodiscard]] bool truncated() const noexcept {
    return shipped_ < weights_.size();
  }

  /// Transport truncation: keep only the first `keep` rows.
  void truncate_to(std::size_t keep) noexcept {
    if (keep < shipped_) shipped_ = keep;
  }

  /// Weight carried by the rows cut off by truncation.
  [[nodiscard]] std::int64_t cut_weight() const noexcept {
    std::int64_t w = 0;
    for (std::size_t i = shipped_; i < weights_.size(); ++i) w += weights_[i];
    return w;
  }

  /// Delivered rows unpacked to the AoS boundary type.
  [[nodiscard]] WeightedSet unpack() const {
    WeightedSet out;
    append_to(out);
    return out;
  }

  void append_to(WeightedSet& out) const {
    out.reserve(out.size() + shipped_);
    for (std::size_t i = 0; i < shipped_; ++i)
      out.push_back({coords_.point(i), weights_[i]});
  }

 private:
  kernels::PointBuffer coords_;
  std::vector<std::int64_t> weights_;
  std::size_t shipped_ = 0;
};

/// A message between machines.  Either payload may be empty.
struct Message {
  int from = 0;
  int to = 0;
  std::vector<double> scalars;
  PointPayload payload;

  /// Words on the wire: scalars + (dim+1) per *delivered* weighted point
  /// (a truncated payload is accounted at its truncated size).
  [[nodiscard]] std::size_t words(int dim) const noexcept {
    return scalars.size() + payload.size() * static_cast<std::size_t>(dim + 1);
  }
};

struct MpcStats {
  int machines = 0;
  int dim = 0;
  int rounds = 0;  ///< communication rounds executed
  int threads = 1;     ///< pool threads the map phases ran on
  double map_ms = 0.0; ///< total wall time of the map phases (all rounds)
  std::vector<std::size_t> peak_words;  ///< per machine
  std::vector<std::size_t> comm_words_per_round;
  std::size_t total_comm_words = 0;
  FaultStats faults;  ///< all-zero when no injector was attached

  /// Peak storage over worker machines (ids ≥ 1).
  [[nodiscard]] std::size_t max_worker_words() const;
  /// Peak storage of the coordinator (id 0).
  [[nodiscard]] std::size_t coordinator_words() const;
};

class Simulator {
 public:
  /// m ≥ 1 machines in dimension dim.  Machine 0 is the coordinator.
  /// `pool` (optional, not owned) runs the per-machine map phase of each
  /// round concurrently; it must outlive the simulator.  `faults`
  /// (optional, not owned) injects the deterministic fault schedule; an
  /// inactive injector is equivalent to none.
  explicit Simulator(int m, int dim, ThreadPool* pool = nullptr,
                     FaultInjector* faults = nullptr);

  [[nodiscard]] int machines() const noexcept { return m_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// The attached injector when it is active, else nullptr.
  [[nodiscard]] FaultInjector* faults() const noexcept { return faults_; }

  /// False once the machine crashed past its retry budget.
  [[nodiscard]] bool alive(int id) const noexcept {
    return faults_ == nullptr || faults_->alive(id);
  }

  /// Registers `words` as currently resident on machine `id`; the peak is
  /// tracked.  Algorithms call this with their full resident footprint at
  /// the moments it is largest (after receiving, after building summaries).
  void record_storage(int id, std::size_t words);

  /// Account for the words of a weighted point set.
  [[nodiscard]] std::size_t point_words(std::size_t count) const noexcept {
    return count * static_cast<std::size_t>(dim_ + 1);
  }

  /// Executes one synchronous round: `fn(id, inbox, outbox)` runs for every
  /// machine (concurrently on the pool when one was supplied — `fn` may
  /// freely touch per-machine state indexed by `id`, but nothing shared
  /// across ids), then outgoing messages are routed in machine-index order
  /// and become the next round's inboxes.  Communication volume is
  /// accounted per round; the map phase's wall time accumulates in
  /// `stats().map_ms`.  Under an active injector, crashed machines are
  /// deterministically re-executed up to the retry budget (then skipped
  /// for good), messages are dropped/truncated/re-sent per the plan, and
  /// every attempt's bandwidth is accounted.
  using RoundFn =
      std::function<void(int id, std::vector<Message>& inbox,
                         std::vector<Message>& outbox)>;
  void round(const RoundFn& fn);

  /// Inbox currently waiting at machine `id` (delivered by the last round).
  [[nodiscard]] std::vector<Message>& inbox(int id);

  /// Snapshot of the measured quantities, with the injector's fault
  /// accounting folded in.
  [[nodiscard]] MpcStats stats() const;

 private:
  int m_;
  int dim_;
  ThreadPool* pool_;          ///< not owned; nullptr = sequential map phase
  FaultInjector* faults_;     ///< not owned; nullptr = no fault injection
  std::vector<std::vector<Message>> inboxes_;
  MpcStats stats_;
};

}  // namespace kc::mpc
