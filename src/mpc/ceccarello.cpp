#include "mpc/ceccarello.hpp"

#include <cmath>

#include "core/coreset.hpp"
#include "core/gonzalez.hpp"
#include "core/mbc.hpp"
#include "util/check.hpp"

namespace kc::mpc {

CeccarelloResult ceccarello_coreset(const std::vector<WeightedSet>& parts,
                                    int k, std::int64_t z,
                                    const Metric& metric,
                                    const ExecContext& ctx,
                                    const CeccarelloOptions& opt) {
  KC_EXPECTS(!parts.empty());
  const int m = static_cast<int>(parts.size());
  int dim = 1;
  for (const auto& part : parts)
    if (!part.empty()) {
      dim = part.front().p.dim();
      break;
    }

  // τ = (k+z)·⌈4/ε⌉^d + 1: the multiplicative-z per-machine budget.
  const auto per_center = static_cast<std::int64_t>(
      std::pow(std::ceil(4.0 / opt.eps), dim));
  const std::int64_t tau = (static_cast<std::int64_t>(k) + z) * per_center + 1;

  Simulator sim(m, dim, ctx);
  std::vector<WeightedSet> local(static_cast<std::size_t>(m));

  sim.round([&](int id, std::vector<Message>& /*inbox*/,
                std::vector<Message>& outbox) {
    const auto uid = static_cast<std::size_t>(id);
    const WeightedSet& mine = parts[uid];
    sim.record_storage(id, sim.point_words(mine.size()));
    if (!mine.empty()) {
      const GonzalezResult g = gonzalez(
          mine,
          static_cast<int>(std::min<std::int64_t>(
              tau, static_cast<std::int64_t>(mine.size()))),
          metric);
      local[uid] = gonzalez_summary(mine, g);
    }
    sim.record_storage(id, sim.point_words(mine.size() + local[uid].size()));
    if (id != 0) {
      Message msg;
      msg.to = 0;
      msg.payload = PointPayload(local[uid]);
      outbox.push_back(std::move(msg));
    }
  });

  // Missing shipments are recovered (or written off) per the injector's
  // policy; the rebuild re-runs the deterministic Gonzalez summary.
  const GatherResult gathered = gather_with_recovery(
      sim, parts, std::move(local[0]), [&](int machine) -> WeightedSet {
        const WeightedSet& mine = parts[static_cast<std::size_t>(machine)];
        if (mine.empty()) return {};
        const GonzalezResult g = gonzalez(
            mine,
            static_cast<int>(std::min<std::int64_t>(
                tau, static_cast<std::int64_t>(mine.size()))),
            metric);
        return gonzalez_summary(mine, g);
      });

  CeccarelloResult result;
  result.tau = tau;
  std::vector<WeightedSet> received;
  received.reserve(gathered.shipments.size());
  for (const auto& shipment : gathered.shipments) {
    result.local_coreset_sizes.push_back(shipment.size());
    received.push_back(shipment);
  }
  result.merged = merge_coresets(received);
  const MiniBallCovering final_mbc =
      recompress(result.merged, k, z, opt.eps, metric, opt.oracle);
  sim.record_storage(0, sim.point_words(parts[0].size() + result.merged.size() +
                                        final_mbc.reps.size()));
  result.coreset = final_mbc.reps;
  result.stats = sim.stats();
  return result;
}

}  // namespace kc::mpc
