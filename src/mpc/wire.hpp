// Wire serialization of MPC messages (transport layer, paper §1 model).
//
// A `Message` travels as one length-checked frame, laid out so the SoA
// `PointPayload` ships without re-packing: each coordinate column is one
// contiguous run of float64, followed by the weight column — the same
// column-major discipline as the `.kcb` container, checksummed the same
// way (FNV-1a 64 over every byte that precedes the checksum).  Numeric
// fields are memcpy'd host-endian: both endpoints of a `ProcessTransport`
// are forks of one process on one host, so doubles cross bit-exactly and
// decode(encode(msg)) reproduces the message contents exactly — the
// property the backend-differential tests pin.
//
// Frame layout (all offsets byte-packed, no alignment padding):
//
//   u32  magic        'KCW1'
//   u32  dim          payload coordinate dimension (0 when no payload)
//   i32  from, to     machine ids
//   u64  n_scalars
//   u64  full_rows    rows packed at send time
//   u64  shipped_rows delivered prefix (≤ full_rows; < after truncation)
//   f64  scalars[n_scalars]
//   f64  col_j[full_rows]   for j = 0..dim-1   (contiguous columns)
//   i64  weights[full_rows]
//   u64  checksum     FNV-1a 64 of all preceding bytes
//
// The *full* rows travel even for a truncated payload: the receiver's
// `cut_weight()` accounts the weight of the cut tail, so the tail must
// survive the crossing.  (Words-on-the-wire accounting still charges only
// the shipped prefix — wire bytes vs `comm_words` is exactly the
// `wire_ratio` the reports expose.)

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpc/message.hpp"

namespace kc::mpc::wire {

inline constexpr std::uint32_t kMagic = 0x4B435731u;  // 'KCW1'

/// Exact frame size of `encode(msg)` in bytes.
[[nodiscard]] std::size_t encoded_size(const Message& msg) noexcept;

/// Serializes a message into one checksummed frame.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& msg);

enum class DecodeStatus : std::uint8_t {
  Ok = 0,
  Truncated = 1,  ///< frame shorter than its header claims (short read)
  Corrupt = 2,    ///< bad magic, inconsistent lengths, or checksum mismatch
};

[[nodiscard]] const char* to_string(DecodeStatus s) noexcept;

/// Parses one frame.  On Ok, `*out` holds the reconstructed message; on
/// any failure `*out` is untouched.  A frame longer than its header
/// claims is Corrupt (frames are delimited by the transport's length
/// prefix, so trailing bytes mean a framing bug, not a short read).
[[nodiscard]] DecodeStatus decode(const std::uint8_t* data, std::size_t len,
                                  Message* out);

}  // namespace kc::mpc::wire
