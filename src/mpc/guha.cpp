#include "mpc/guha.hpp"

#include "core/coreset.hpp"
#include "core/mbc.hpp"
#include "util/check.hpp"

namespace kc::mpc {

GuhaResult guha_local_z_coreset(const std::vector<WeightedSet>& parts, int k,
                                std::int64_t z, const Metric& metric,
                                const ExecContext& ctx,
                                const GuhaOptions& opt) {
  KC_EXPECTS(!parts.empty());
  const int m = static_cast<int>(parts.size());
  int dim = 1;
  for (const auto& part : parts)
    if (!part.empty()) {
      dim = part.front().p.dim();
      break;
    }

  Simulator sim(m, dim, ctx);
  std::vector<MiniBallCovering> local(static_cast<std::size_t>(m));

  sim.round([&](int id, std::vector<Message>& /*inbox*/,
                std::vector<Message>& outbox) {
    const auto uid = static_cast<std::size_t>(id);
    const WeightedSet& mine = parts[uid];
    sim.record_storage(id, sim.point_words(mine.size()));
    // Full local budget z: correct under any distribution (every subset
    // satisfies optk,z(P_i) ≤ optk,z(P)), but pays +z per machine.
    MiniBallCovering mbc = mbc_construct(mine, k, z, opt.eps, metric, opt.oracle);
    sim.record_storage(id, sim.point_words(mine.size() + mbc.reps.size()));
    if (id != 0) {
      Message msg;
      msg.to = 0;
      msg.payload = PointPayload(mbc.reps);
      outbox.push_back(std::move(msg));
    }
    local[uid] = std::move(mbc);
  });

  // Missing shipments are recovered (or written off) per the injector's
  // policy; the rebuild re-runs the deterministic local construction.
  const GatherResult gathered = gather_with_recovery(
      sim, parts, std::move(local[0].reps), [&](int machine) -> WeightedSet {
        return mbc_construct(parts[static_cast<std::size_t>(machine)], k, z,
                             opt.eps, metric, opt.oracle)
            .reps;
      });

  GuhaResult result;
  std::vector<WeightedSet> received;
  received.reserve(gathered.shipments.size());
  for (const auto& shipment : gathered.shipments) {
    result.local_coreset_sizes.push_back(shipment.size());
    received.push_back(shipment);
  }
  result.merged = merge_coresets(received);
  const MiniBallCovering final_mbc =
      recompress(result.merged, k, z, opt.eps, metric, opt.oracle);
  sim.record_storage(0, sim.point_words(parts[0].size() + result.merged.size() +
                                        final_mbc.reps.size()));
  result.coreset = final_mbc.reps;
  result.stats = sim.stats();
  return result;
}

}  // namespace kc::mpc
