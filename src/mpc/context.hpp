// Shared execution context for algorithm entry points.
//
// PRs 4/6/7 grew the same three environment fields — a `ThreadPool*`, a
// prebuilt SoA `PointBuffer*`, and a `FaultInjector*` — independently on
// every per-algorithm Options struct (five MPC variants, the radius
// oracle, Charikar).  `ExecContext` consolidates them, plus the transport
// backend the MPC simulator routes messages through, into one struct
// passed by const-ref: the *environment* a call runs in, kept separate
// from the *knobs* that select algorithm behavior (which stay in the
// slimmed Options structs).  Every pointer is optional and non-owning;
// a default-constructed context means "single-threaded, no prebuilt
// buffer, no fault injection, in-process transport".
//
// This is a leaf header (forward declarations only) so core/ and mpc/
// can both include it without dragging in the pool, buffer, fault, or
// transport definitions.

#pragma once

namespace kc {

class ThreadPool;

namespace kernels {
template <typename T>
class BasicPointBuffer;
using PointBuffer = BasicPointBuffer<double>;
}  // namespace kernels

namespace mpc {

class FaultInjector;
class Transport;

/// Execution environment shared by the MPC algorithms and the extraction
/// tail.  All pointers optional, non-owning; callees must outlive the call.
struct ExecContext {
  /// Runs parallel phases; nullptr = sequential (bit-identical results).
  ThreadPool* pool = nullptr;
  /// Prebuilt SoA coordinates of the working set, when the caller has one
  /// (avoids a re-pack at the kernel boundary); nullptr = pack on demand.
  const kernels::PointBuffer* buffer = nullptr;
  /// Deterministic fault schedule; nullptr (or inactive) = no injection.
  FaultInjector* faults = nullptr;
  /// Message transport for the MPC simulator; nullptr = in-process local.
  Transport* transport = nullptr;
};

}  // namespace mpc
}  // namespace kc
