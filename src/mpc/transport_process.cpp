// Forked worker endpoints over Unix-domain socket pairs.
//
// Parent → worker:  [u8 op][u64 len][frame bytes]     op: 0 frame, 1 exit
// Worker → parent:  [u8 status][u64 len][echo bytes]  status: 0 ok, 1 bad
//
// The worker fully decodes each frame (checksum verification included),
// re-encodes the decoded message, and echoes it; the parent decodes the
// echo and delivers *that* message, so wire serialization sits on the
// result path.  Workers are forked before any thread pool exists (the
// pipeline opens the transport first) and terminate via `_exit(0)` —
// no atexit hooks, no sanitizer leak sweep of the duplicated heap.

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <utility>
#include <vector>

#include "mpc/transport.hpp"
#include "mpc/wire.hpp"
#include "util/check.hpp"

namespace kc::mpc {

namespace {

constexpr std::uint8_t kOpFrame = 0;
constexpr std::uint8_t kOpShutdown = 1;
constexpr std::size_t kProtoHeaderBytes = 1 + 8;  // op/status byte + length
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 40;

bool write_all(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking read used on the worker side (the parent closing its end of
/// the socket unblocks it with EOF).
bool read_all(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

enum class ReadResult : std::uint8_t { Ok, Eof, Timeout };

/// Parent-side read with a poll deadline per chunk.
ReadResult read_with_deadline(int fd, void* buf, std::size_t len,
                              int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadResult::Eof;
    }
    if (pr == 0) return ReadResult::Timeout;
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return ReadResult::Eof;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return ReadResult::Ok;
}

/// Reaps a child, retrying on EINTR.  Returns false when the child was
/// already reaped (ECHILD); any other failure is a caller bug.
bool reap(pid_t pid) noexcept {
  for (;;) {
    const pid_t r = ::waitpid(pid, nullptr, 0);
    if (r == pid) return true;
    if (r < 0 && errno == EINTR) continue;
    KC_EXPECTS(r < 0 && errno == ECHILD);
    return false;
  }
}

/// SIGKILL + reap with checked returns: ESRCH (already gone) is the only
/// tolerated kill failure, EINTR the only transient waitpid outcome.
void terminate_and_reap(pid_t pid) noexcept {
  if (::kill(pid, SIGKILL) != 0) KC_EXPECTS(errno == ESRCH);
  reap(pid);
}

[[noreturn]] void worker_main(int fd) {
  std::vector<std::uint8_t> buf;
  for (;;) {
    std::uint8_t op = 0;
    std::uint64_t len = 0;
    if (!read_all(fd, &op, sizeof op) || op == kOpShutdown) break;
    if (!read_all(fd, &len, sizeof len) || len > kMaxFrameBytes) break;
    buf.resize(len);
    if (len > 0 && !read_all(fd, buf.data(), len)) break;

    Message m;
    std::uint8_t status =
        wire::decode(buf.data(), buf.size(), &m) == wire::DecodeStatus::Ok
            ? std::uint8_t{0}
            : std::uint8_t{1};
    if (status != 0) {
      const std::uint64_t zero = 0;
      if (!write_all(fd, &status, sizeof status) ||
          !write_all(fd, &zero, sizeof zero))
        break;
      continue;
    }
    const std::vector<std::uint8_t> echo = wire::encode(m);
    const std::uint64_t elen = echo.size();
    if (!write_all(fd, &status, sizeof status) ||
        !write_all(fd, &elen, sizeof elen) ||
        !write_all(fd, echo.data(), echo.size()))
      break;
  }
  ::_exit(0);
}

}  // namespace

ProcessTransport::ProcessTransport(ProcessTransportOptions opts)
    : opts_(opts) {
  KC_EXPECTS(opts_.timeout_ms > 0);
}

ProcessTransport::~ProcessTransport() { close_all(); }

void ProcessTransport::open(int machines, int dim) {
  KC_EXPECTS(machines >= 1 && dim >= 1);
  if (!workers_.empty()) {
    // Re-open from the simulator constructor after the pipeline already
    // forked the endpoints (before its thread pool came up).
    KC_EXPECTS(machines == machines_ && dim == dim_);
    return;
  }
  machines_ = machines;
  dim_ = dim;
  workers_.resize(static_cast<std::size_t>(machines));
  for (int i = 0; i < machines; ++i) {
    int sv[2] = {-1, -1};
    KC_EXPECTS(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
    const pid_t pid = ::fork();
    KC_EXPECTS(pid >= 0);
    if (pid == 0) {
      // kc-lint-allow(syscalls): child-side fd hygiene straight after
      // fork; there is no recovery path before _exit and no observer
      ::close(sv[0]);
      // Drop inherited parent-side ends of earlier workers.
      for (int j = 0; j < i; ++j)
        // kc-lint-allow(syscalls): same child-side fd hygiene as above
        ::close(workers_[static_cast<std::size_t>(j)].fd);
      worker_main(sv[1]);
    }
    // kc-lint-allow(syscalls): parent drops the child's end; the socket
    // stays usable through sv[0] whether or not this close reports EIO
    ::close(sv[1]);
    auto& w = workers_[static_cast<std::size_t>(i)];
    w.fd = sv[0];
    w.pid = pid;
    w.alive = true;
    w.reaped = false;
  }
}

bool ProcessTransport::worker_alive(int id) const noexcept {
  return id >= 0 && id < workers() &&
         workers_[static_cast<std::size_t>(id)].alive;
}

void ProcessTransport::fail_worker(Worker& w) noexcept {
  if (!w.alive) return;
  w.alive = false;
  if (w.fd >= 0) {
    // kc-lint-allow(syscalls): the endpoint is already failed; closing is
    // best-effort teardown and the fd is unusable either way
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0 && !w.reaped) {
    terminate_and_reap(w.pid);
    w.reaped = true;
  }
  ++wire_.worker_failures;
}

void ProcessTransport::kill_worker(int id) {
  KC_EXPECTS(id >= 0 && id < workers());
  Worker& w = workers_[static_cast<std::size_t>(id)];
  if (!w.alive || w.reaped) return;
  terminate_and_reap(w.pid);
  w.reaped = true;
  // fd stays open and `alive` stays set: the next delivery hits the real
  // broken-pipe/EOF path and records the loss.
}

DeliveryStatus ProcessTransport::read_response(
    Worker& w, std::uint8_t* status, std::vector<std::uint8_t>* frame) {
  const auto finish = [&](ReadResult r) {
    if (r == ReadResult::Timeout) {
      ++wire_.timeouts;
      fail_worker(w);  // the byte stream cannot be resynced
      return DeliveryStatus::Timeout;
    }
    fail_worker(w);
    return DeliveryStatus::WorkerLost;
  };
  ReadResult r = read_with_deadline(w.fd, status, sizeof *status,
                                    opts_.timeout_ms);
  if (r != ReadResult::Ok) return finish(r);
  std::uint64_t len = 0;
  r = read_with_deadline(w.fd, &len, sizeof len, opts_.timeout_ms);
  if (r != ReadResult::Ok) return finish(r);
  if (len > kMaxFrameBytes) {
    fail_worker(w);
    return DeliveryStatus::Corrupt;
  }
  frame->resize(len);
  if (len > 0) {
    r = read_with_deadline(w.fd, frame->data(), len, opts_.timeout_ms);
    if (r != ReadResult::Ok) return finish(r);
  }
  return DeliveryStatus::Delivered;
}

Delivery ProcessTransport::deliver(Message msg) {
  Delivery d;
  KC_EXPECTS(msg.to >= 0 && msg.to < workers());
  Worker& w = workers_[static_cast<std::size_t>(msg.to)];
  if (!w.alive) {
    d.status = DeliveryStatus::WorkerLost;
    return d;
  }

  const std::vector<std::uint8_t> frame = wire::encode(msg);
  const std::uint8_t op = kOpFrame;
  const std::uint64_t len = frame.size();
  if (!write_all(w.fd, &op, sizeof op) ||
      !write_all(w.fd, &len, sizeof len) ||
      !write_all(w.fd, frame.data(), frame.size())) {
    fail_worker(w);
    d.status = DeliveryStatus::WorkerLost;
    return d;
  }
  // One logical crossing per attempt — the sender→receiver leg.  The echo
  // leg exists because compute lives in the parent (see transport.hpp)
  // and is not double-counted.
  wire_.bytes += kProtoHeaderBytes + frame.size();
  wire_.frames += 1;

  std::uint8_t status = 0;
  std::vector<std::uint8_t> echo;
  const DeliveryStatus rs = read_response(w, &status, &echo);
  if (rs != DeliveryStatus::Delivered) {
    d.status = rs;
    return d;
  }
  if (status != 0) {
    ++wire_.corrupt_frames;
    d.status = DeliveryStatus::Corrupt;
    return d;
  }
  Message decoded;
  if (wire::decode(echo.data(), echo.size(), &decoded) !=
      wire::DecodeStatus::Ok) {
    ++wire_.corrupt_frames;
    d.status = DeliveryStatus::Corrupt;
    return d;
  }
  d.msg = std::move(decoded);
  d.status = DeliveryStatus::Delivered;
  return d;
}

void ProcessTransport::close_all() noexcept {
  for (auto& w : workers_) {
    if (w.fd >= 0) {
      if (w.alive) {
        const std::uint8_t op = kOpShutdown;
        (void)write_all(w.fd, &op, sizeof op);
      }
      // kc-lint-allow(syscalls): best-effort teardown in a noexcept path;
      // the worker exits on EOF even if the close return is lost
      ::close(w.fd);
      w.fd = -1;
    }
    w.alive = false;
  }
  for (auto& w : workers_) {
    if (w.pid > 0 && !w.reaped) {
      reap(w.pid);
      w.reaped = true;
    }
  }
}

std::unique_ptr<ProcessTransport> make_process_transport(
    ProcessTransportOptions opts) {
  return std::make_unique<ProcessTransport>(opts);
}

}  // namespace kc::mpc
