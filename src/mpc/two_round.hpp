// Algorithm 2: the deterministic 2-round MPC coreset (paper §3, Theorem 10).
//
// Round 1.  Each machine M_i computes, for j = 0..⌈log2(z+1)⌉, the oracle
//   radius V_i[j] for the k-center problem with 2^j − 1 outliers on its
//   local set P_i, and broadcasts the vector V_i to all machines.
//
// Round 2.  From the shared radius tables every machine computes
//     r̂ = min { r ∈ R : Σ_ℓ (2^{min{j : V_ℓ[j] ≤ r}} − 1) ≤ 2z },
//   its own outlier guess ĵ_i = min{j : V_i[j] ≤ r̂}, and builds the local
//   mini-ball covering MBCConstruction(P_i, k, 2^{ĵ_i}−1, ε) reusing the
//   radius V_i[ĵ_i] it already computed (the paper's determinism argument in
//   Lemma 9).  All coverings are sent to the coordinator.
//
// Coordinator.  ∪_i P*_i is an (ε,k,z)-mini-ball covering of P (Lemma 9);
//   it is recompressed with a fresh MBCConstruction, giving an
//   (ε', k, z)-coreset with ε' = 2ε + ε² ≤ 3ε (Lemma 5 + Lemma 3).
//
// This mechanism is what removes the Ω(z)-per-machine term: the r̂ rule
// guarantees Σ_i (2^{ĵ_i} − 1) ≤ 2z, so the total number of "outlier slots"
// shipped to the coordinator is ≤ 2z even under adversarial distributions.

#pragma once

#include <cstdint>
#include <vector>

#include "core/radius_oracle.hpp"
#include "core/types.hpp"
#include "mpc/simulator.hpp"

namespace kc::mpc {

struct TwoRoundOptions {
  double eps = 0.5;
  OracleOptions oracle;  ///< radius oracle used for the V_i tables
};

struct TwoRoundResult {
  WeightedSet coreset;        ///< final coreset at the coordinator
  WeightedSet merged;         ///< ∪_i P*_i before recompression (diagnostics)
  double eps_effective = 0.0; ///< 2ε + ε² after the coordinator recompression
  double r_hat = 0.0;         ///< the agreed radius threshold
  std::int64_t sum_outlier_guesses = 0;  ///< Σ_i (2^{ĵ_i} − 1), must be ≤ 2z
  std::vector<std::size_t> local_coreset_sizes;
  MpcStats stats;
};

/// Runs Algorithm 2 on a pre-partitioned input.  parts.size() = number of
/// machines; machine 0 is the coordinator and also holds parts[0].  The
/// context supplies the execution environment (pool, fault injector,
/// transport — see mpc/context.hpp); a default-constructed context means
/// sequential, fault-free, in-process.
[[nodiscard]] TwoRoundResult two_round_coreset(
    const std::vector<WeightedSet>& parts, int k, std::int64_t z,
    const Metric& metric, const ExecContext& ctx = {},
    const TwoRoundOptions& opt = {});

}  // namespace kc::mpc
