// Algorithm 6: the randomized 1-round MPC coreset (paper §7.1, Theorem 33).
//
// Assumes the input is distributed uniformly at random over the machines.
// Then with probability ≥ 1 − 1/n² every machine holds at most
// z' = min(6z/m + 3·log2 n, z) outliers (Lemma 32 / Chernoff), so each
// machine can build an (ε, k, z')-mini-ball covering of its local set and
// ship it to the coordinator in a single communication round.  The
// coordinator merges (Lemma 4) and recompresses (Lemma 5).

#pragma once

#include <cstdint>
#include <vector>

#include "core/radius_oracle.hpp"
#include "core/types.hpp"
#include "mpc/simulator.hpp"

namespace kc::mpc {

struct OneRoundOptions {
  double eps = 0.5;
  OracleOptions oracle;
};

struct OneRoundResult {
  WeightedSet coreset;
  WeightedSet merged;
  double eps_effective = 0.0;
  std::int64_t z_local = 0;  ///< the per-machine outlier budget z'
  std::vector<std::size_t> local_coreset_sizes;
  MpcStats stats;
};

/// Runs Algorithm 6 on a pre-partitioned input (parts should come from
/// PartitionKind::Random for the guarantee to hold; the algorithm itself is
/// deterministic given the partition).  `n_total` is |P| (used for the
/// 3·log n term).
[[nodiscard]] OneRoundResult one_round_coreset(
    const std::vector<WeightedSet>& parts, int k, std::int64_t z,
    std::size_t n_total, const Metric& metric, const ExecContext& ctx = {},
    const OneRoundOptions& opt = {});

}  // namespace kc::mpc
