#include <utility>

#include "mpc/transport.hpp"
#include "util/check.hpp"

namespace kc::mpc {

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::Local:
      return "local";
    case Backend::Process:
      return "process";
  }
  return "?";
}

bool parse_backend(const std::string& s, Backend* out) noexcept {
  if (s == "local") {
    *out = Backend::Local;
    return true;
  }
  if (s == "process") {
    *out = Backend::Process;
    return true;
  }
  return false;
}

const char* to_string(DeliveryStatus s) noexcept {
  switch (s) {
    case DeliveryStatus::Delivered:
      return "delivered";
    case DeliveryStatus::WorkerLost:
      return "worker-lost";
    case DeliveryStatus::Corrupt:
      return "corrupt";
    case DeliveryStatus::Timeout:
      return "timeout";
  }
  return "?";
}

void LocalTransport::open(int machines, int dim) {
  KC_EXPECTS(machines >= 1 && dim >= 1);
}

Delivery LocalTransport::deliver(Message msg) {
  // The in-process hand-off: the very object the sender built lands in
  // the inbox, nothing crosses a boundary, no wire bytes accrue.
  Delivery d;
  d.status = DeliveryStatus::Delivered;
  d.msg = std::move(msg);
  return d;
}

std::unique_ptr<Transport> make_local_transport() {
  return std::make_unique<LocalTransport>();
}

std::unique_ptr<Transport> make_transport(Backend b) {
  if (b == Backend::Process) return make_process_transport();
  return make_local_transport();
}

}  // namespace kc::mpc
