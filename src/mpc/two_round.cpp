#include "mpc/two_round.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/coreset.hpp"
#include "core/mbc.hpp"
#include "util/check.hpp"

namespace kc::mpc {

namespace {

// ⌈log2(z+1)⌉ — the index of the last outlier guess 2^J − 1 ≥ … ≥ z.
int guess_levels(std::int64_t z) {
  int j = 0;
  while ((std::int64_t{1} << j) - 1 < z) ++j;
  return j;  // J; valid guesses are j = 0..J
}

// The r̂ rule of Round 2.  `tables[ℓ][j]` = V_ℓ[j].  Returns the smallest
// r among all table entries such that every machine has some V_ℓ[j] ≤ r and
// Σ_ℓ (2^{min{j : V_ℓ[j] ≤ r}} − 1) ≤ 2z.  The sum is non-increasing in r,
// so we binary-search the sorted candidate set.  Empty tables (machines
// that are dead or whose broadcast was lost to fault injection) are
// skipped: the rule is evaluated over the tables this machine actually
// holds — still a well-defined threshold, though the global Σ ≤ 2z
// certificate is then no longer certified (the caller flags degradation).
double compute_r_hat(const std::vector<std::vector<double>>& tables,
                     std::int64_t z) {
  std::vector<double> candidates;
  for (const auto& t : tables)
    candidates.insert(candidates.end(), t.begin(), t.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  KC_EXPECTS(!candidates.empty());

  auto qualifies = [&](double r) {
    std::int64_t sum = 0;
    for (const auto& t : tables) {
      if (t.empty()) continue;  // unknown table: not this machine's problem
      int jmin = -1;
      for (std::size_t j = 0; j < t.size(); ++j) {
        if (t[j] <= r) {
          jmin = static_cast<int>(j);
          break;
        }
      }
      if (jmin < 0) return false;  // this machine has no valid guess at r
      sum += (std::int64_t{1} << jmin) - 1;
      if (sum > 2 * z) return false;
    }
    return sum <= 2 * z;
  };

  // Predicate is monotone (false … false true … true) over the sorted
  // candidates; find the first true.
  std::size_t lo = 0, hi = candidates.size() - 1;
  KC_EXPECTS(qualifies(candidates[hi]));  // r = max entry always qualifies
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (qualifies(candidates[mid]))
      hi = mid;
    else
      lo = mid + 1;
  }
  return candidates[lo];
}

}  // namespace

TwoRoundResult two_round_coreset(const std::vector<WeightedSet>& parts, int k,
                                 std::int64_t z, const Metric& metric,
                                 const ExecContext& ctx,
                                 const TwoRoundOptions& opt) {
  KC_EXPECTS(!parts.empty());
  KC_EXPECTS(z >= 0);
  const int m = static_cast<int>(parts.size());
  int dim = 1;
  for (const auto& part : parts)
    if (!part.empty()) {
      dim = part.front().p.dim();
      break;
    }

  Simulator sim(m, dim, ctx);
  const int levels = guess_levels(z) + 1;  // j = 0..J inclusive

  // Per-machine state living across rounds.
  std::vector<std::vector<double>> v_table(static_cast<std::size_t>(m));
  std::vector<std::vector<double>> rho_table(static_cast<std::size_t>(m));
  std::vector<MiniBallCovering> local_mbc(static_cast<std::size_t>(m));
  std::vector<double> r_hat_seen(static_cast<std::size_t>(m), 0.0);
  std::vector<double> rho_max_seen(static_cast<std::size_t>(m), 1.0);
  std::vector<std::int64_t> guess_of(static_cast<std::size_t>(m), 0);

  // ---- Round 1: compute V_i and broadcast. ----------------------------
  const int losses_before =
      sim.fault_sink().messages_lost + sim.fault_sink().machines_lost;
  sim.round([&](int id, std::vector<Message>& /*inbox*/,
                std::vector<Message>& outbox) {
    const auto uid = static_cast<std::size_t>(id);
    const WeightedSet& mine = parts[uid];
    sim.record_storage(id, sim.point_words(mine.size()));

    auto& V = v_table[uid];
    auto& R = rho_table[uid];
    V.resize(static_cast<std::size_t>(levels));
    R.resize(static_cast<std::size_t>(levels));
    for (int j = 0; j < levels; ++j) {
      const std::int64_t zj = (std::int64_t{1} << j) - 1;
      const RadiusEstimate est =
          estimate_radius(mine, k, zj, metric, opt.oracle);
      V[static_cast<std::size_t>(j)] = est.radius;
      R[static_cast<std::size_t>(j)] = est.rho;
    }
    Message msg;
    msg.scalars = V;
    msg.scalars.insert(msg.scalars.end(), R.begin(), R.end());
    for (int to = 0; to < m; ++to) {
      if (to == id) continue;
      Message copy = msg;
      copy.to = to;
      outbox.push_back(std::move(copy));
    }
  });
  // A lost broadcast (or a machine dead before broadcasting) means the
  // machines no longer share one table set: each still computes a valid
  // covering from what it holds, but the Σ ≤ 2z size certificate of
  // Theorem 10 is gone — the run must report the degraded bound.
  if (sim.fault_sink().messages_lost + sim.fault_sink().machines_lost >
      losses_before)
    sim.fault_sink().degraded = true;

  // ---- Round 2: agree on r̂, build local coverings, ship them. --------
  sim.round([&](int id, std::vector<Message>& inbox,
                std::vector<Message>& outbox) {
    const auto uid = static_cast<std::size_t>(id);
    const WeightedSet& mine = parts[uid];

    // Reassemble all tables (own + received) — with full delivery every
    // machine sees the same set and computes the same r̂ deterministically.
    std::vector<std::vector<double>> all_v(static_cast<std::size_t>(m));
    double rho_max = 1.0;
    all_v[uid] = v_table[uid];
    for (double r : rho_table[uid]) rho_max = std::max(rho_max, r);
    for (const auto& msg : inbox) {
      const auto from = static_cast<std::size_t>(msg.from);
      const auto half = msg.scalars.size() / 2;
      all_v[from].assign(msg.scalars.begin(),
                         msg.scalars.begin() + static_cast<std::ptrdiff_t>(half));
      for (std::size_t i = half; i < msg.scalars.size(); ++i)
        rho_max = std::max(rho_max, msg.scalars[i]);
    }
    // Storage at this moment: own points + m radius tables.
    sim.record_storage(
        id, sim.point_words(mine.size()) +
                static_cast<std::size_t>(m) * 2 * static_cast<std::size_t>(levels));

    const double r_hat = compute_r_hat(all_v, z);
    r_hat_seen[uid] = r_hat;
    rho_max_seen[uid] = rho_max;

    // ĵ_i = min{j : V_i[j] ≤ r̂}; exists by construction of r̂.
    int j_hat = -1;
    for (int j = 0; j < levels; ++j) {
      if (v_table[uid][static_cast<std::size_t>(j)] <= r_hat) {
        j_hat = j;
        break;
      }
    }
    KC_ENSURES(j_hat >= 0);
    guess_of[uid] = (std::int64_t{1} << j_hat) - 1;

    // MBCConstruction(P_i, k, 2^ĵ−1, ε) reusing the Round-1 radius; the
    // mini-ball radius ε·V_i[ĵ]/ρ ≤ ε·r̂/ρ ≤ ε·opt (Lemma 9).
    const double r_i = v_table[uid][static_cast<std::size_t>(j_hat)];
    MiniBallCovering mbc =
        mbc_with_radius(mine, opt.eps * r_i / rho_max, metric);
    mbc.oracle_radius = r_i;
    mbc.rho = rho_max;
    sim.record_storage(
        id, sim.point_words(mine.size() + mbc.reps.size()) +
                static_cast<std::size_t>(m) * 2 * static_cast<std::size_t>(levels));

    if (id != 0) {
      Message out;
      out.to = 0;
      out.payload = PointPayload(mbc.reps);
      outbox.push_back(std::move(out));
    }
    local_mbc[uid] = std::move(mbc);
  });

  // ---- Coordinator: merge and recompress. ------------------------------
  // Missing shipments (dead machines, lost messages) are recovered per the
  // injector's policy.  The rebuild re-derives the machine's deterministic
  // round-2 computation from its durable partition and the coordinator's
  // table view; a machine whose V table never existed (dead in round 1)
  // falls back to the always-valid full-z local covering.
  const GatherResult gathered = gather_with_recovery(
      sim, parts, local_mbc[0].reps, [&](int machine) -> WeightedSet {
        const auto ui = static_cast<std::size_t>(machine);
        if (!v_table[ui].empty()) {
          for (int j = 0; j < levels; ++j) {
            if (v_table[ui][static_cast<std::size_t>(j)] <= r_hat_seen[0]) {
              const double r_i = v_table[ui][static_cast<std::size_t>(j)];
              return mbc_with_radius(parts[ui],
                                     opt.eps * r_i / rho_max_seen[0], metric)
                  .reps;
            }
          }
        }
        return mbc_construct(parts[ui], k, z, opt.eps, metric, opt.oracle)
            .reps;
      });

  TwoRoundResult result;
  std::vector<WeightedSet> received;
  received.reserve(gathered.shipments.size());
  for (const auto& shipment : gathered.shipments) {
    result.local_coreset_sizes.push_back(shipment.size());
    received.push_back(shipment);
  }
  result.merged = merge_coresets(received);
  const MiniBallCovering final_mbc =
      recompress(result.merged, k, z, opt.eps, metric, opt.oracle);
  sim.record_storage(
      0, sim.point_words(parts[0].size() + result.merged.size() +
                         final_mbc.reps.size()));

  result.coreset = final_mbc.reps;
  result.eps_effective = compose_eps(opt.eps, opt.eps);
  result.r_hat = r_hat_seen[0];
  for (auto g : guess_of) result.sum_outlier_guesses += g;
  result.stats = sim.stats();
  return result;
}

}  // namespace kc::mpc
