// Messages exchanged between simulated MPC machines.
//
// A `Message` carries either a scalar vector (the V_i radius tables of
// Algorithm 2) or a weighted point set packed once into the SoA
// `PointPayload`; words-on-the-wire follow the model's accounting (one
// coordinate = 1 word, a weighted point in R^d = d+1 words).  Split out
// of simulator.hpp so the transport layer (mpc/transport.hpp, which the
// simulator routes through) can name `Message` without a cycle.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/point_buffer.hpp"
#include "util/check.hpp"

namespace kc::mpc {

/// Weighted-point message payload, packed once at send time into the
/// canonical SoA layout (coordinates columns + a weight column).  Re-sends
/// under fault retries ship the same packing — no per-attempt re-pack —
/// and transport truncation is a prefix cut: `size()` (and therefore
/// `Message::words`) accounts only the rows that were actually delivered.
class PointPayload {
 public:
  PointPayload() = default;

  explicit PointPayload(const WeightedSet& pts) {
    if (pts.empty()) return;
    coords_ = kernels::PointBuffer(pts);
    weights_.reserve(pts.size());
    for (const auto& wp : pts) weights_.push_back(wp.w);
    shipped_ = pts.size();
  }

  /// Reassembly from wire-decoded columns (mpc/wire.hpp).  All rows packed
  /// at send time travel in the frame — a truncated payload keeps its cut
  /// rows so the receiver's `cut_weight()` still accounts the lost weight —
  /// with the delivered prefix marked by `shipped`.
  PointPayload(kernels::PointBuffer coords, std::vector<std::int64_t> weights,
               std::size_t shipped)
      : coords_(std::move(coords)),
        weights_(std::move(weights)),
        shipped_(shipped) {
    KC_EXPECTS(coords_.size() == weights_.size());
    KC_EXPECTS(shipped_ <= weights_.size());
  }

  /// Rows delivered (≤ full_size() after truncation).
  [[nodiscard]] std::size_t size() const noexcept { return shipped_; }
  /// Rows packed at send time.
  [[nodiscard]] std::size_t full_size() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return shipped_ == 0; }
  [[nodiscard]] bool truncated() const noexcept {
    return shipped_ < weights_.size();
  }

  /// Transport truncation: keep only the first `keep` rows.
  void truncate_to(std::size_t keep) noexcept {
    if (keep < shipped_) shipped_ = keep;
  }

  /// Weight carried by the rows cut off by truncation.
  [[nodiscard]] std::int64_t cut_weight() const noexcept {
    std::int64_t w = 0;
    for (std::size_t i = shipped_; i < weights_.size(); ++i) w += weights_[i];
    return w;
  }

  /// Delivered rows unpacked to the AoS boundary type.
  [[nodiscard]] WeightedSet unpack() const {
    WeightedSet out;
    append_to(out);
    return out;
  }

  void append_to(WeightedSet& out) const {
    out.reserve(out.size() + shipped_);
    for (std::size_t i = 0; i < shipped_; ++i)
      out.push_back({coords_.point(i), weights_[i]});
  }

  /// Serialization access (mpc/wire.hpp): every packed row, including the
  /// cut tail of a truncated payload.
  [[nodiscard]] const kernels::PointBuffer& coords() const noexcept {
    return coords_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& weights() const noexcept {
    return weights_;
  }

 private:
  kernels::PointBuffer coords_;
  std::vector<std::int64_t> weights_;
  std::size_t shipped_ = 0;
};

/// A message between machines.  Either payload may be empty.
struct Message {
  int from = 0;
  int to = 0;
  std::vector<double> scalars;
  PointPayload payload;

  /// Words on the wire: scalars + (dim+1) per *delivered* weighted point
  /// (a truncated payload is accounted at its truncated size).
  [[nodiscard]] std::size_t words(int dim) const noexcept {
    return scalars.size() + payload.size() * static_cast<std::size_t>(dim + 1);
  }
};

}  // namespace kc::mpc
