#include "mpc/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace kc::mpc {

std::vector<std::vector<std::uint32_t>> partition_indices(
    const WeightedSet& pts, int m, PartitionKind kind, std::uint64_t seed) {
  KC_EXPECTS(m >= 1);
  std::vector<std::vector<std::uint32_t>> parts(static_cast<std::size_t>(m));
  switch (kind) {
    case PartitionKind::Random: {
      Rng rng(seed);
      for (std::size_t i = 0; i < pts.size(); ++i)
        parts[rng.uniform(static_cast<std::uint64_t>(m))].push_back(
            static_cast<std::uint32_t>(i));
      break;
    }
    case PartitionKind::EvenSorted: {
      std::vector<std::size_t> order(pts.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return pts[a].p[0] < pts[b].p[0];
      });
      // Equal contiguous blocks of the sorted order.
      const std::size_t n = pts.size();
      for (std::size_t r = 0; r < n; ++r) {
        const auto machine = static_cast<std::size_t>(
            (r * static_cast<std::size_t>(m)) / std::max<std::size_t>(n, 1));
        parts[machine].push_back(static_cast<std::uint32_t>(order[r]));
      }
      break;
    }
    case PartitionKind::RoundRobin: {
      for (std::size_t i = 0; i < pts.size(); ++i)
        parts[i % static_cast<std::size_t>(m)].push_back(
            static_cast<std::uint32_t>(i));
      break;
    }
  }
  return parts;
}

std::vector<WeightedSet> partition_points(const WeightedSet& pts, int m,
                                          PartitionKind kind,
                                          std::uint64_t seed) {
  const auto idx = partition_indices(pts, m, kind, seed);
  std::vector<WeightedSet> parts(idx.size());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    parts[r].reserve(idx[r].size());
    for (const std::uint32_t i : idx[r]) parts[r].push_back(pts[i]);
  }
  return parts;
}

const char* partition_name(PartitionKind kind) noexcept {
  switch (kind) {
    case PartitionKind::Random: return "random";
    case PartitionKind::EvenSorted: return "adversarial";
    case PartitionKind::RoundRobin: return "round-robin";
  }
  return "?";
}

}  // namespace kc::mpc
