#include "mpc/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace kc::mpc {

std::vector<WeightedSet> partition_points(const WeightedSet& pts, int m,
                                          PartitionKind kind,
                                          std::uint64_t seed) {
  KC_EXPECTS(m >= 1);
  std::vector<WeightedSet> parts(static_cast<std::size_t>(m));
  switch (kind) {
    case PartitionKind::Random: {
      Rng rng(seed);
      for (const auto& wp : pts)
        parts[rng.uniform(static_cast<std::uint64_t>(m))].push_back(wp);
      break;
    }
    case PartitionKind::EvenSorted: {
      std::vector<std::size_t> order(pts.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return pts[a].p[0] < pts[b].p[0];
      });
      // Equal contiguous blocks of the sorted order.
      const std::size_t n = pts.size();
      for (std::size_t r = 0; r < n; ++r) {
        const auto machine = static_cast<std::size_t>(
            (r * static_cast<std::size_t>(m)) / std::max<std::size_t>(n, 1));
        parts[machine].push_back(pts[order[r]]);
      }
      break;
    }
    case PartitionKind::RoundRobin: {
      for (std::size_t i = 0; i < pts.size(); ++i)
        parts[i % static_cast<std::size_t>(m)].push_back(pts[i]);
      break;
    }
  }
  return parts;
}

const char* partition_name(PartitionKind kind) noexcept {
  switch (kind) {
    case PartitionKind::Random: return "random";
    case PartitionKind::EvenSorted: return "adversarial";
    case PartitionKind::RoundRobin: return "round-robin";
  }
  return "?";
}

}  // namespace kc::mpc
