// Algorithm 7: the deterministic R-round MPC coreset (paper §7.2,
// Theorem 35) — a trade-off between rounds and storage per machine.
//
// With β = ⌈m^{1/R}⌉, the number of active machines shrinks by β each round:
// in round t, active machine M_i computes an (ε,k,z)-mini-ball covering of
// everything it has received and sends it to M_{⌈i/β⌉}.  After R rounds the
// coordinator holds a ((1+ε)^R − 1, k, z)-coreset of P (Lemma 34: errors
// compose via Lemma 5, unions via Lemma 4).

#pragma once

#include <cstdint>
#include <vector>

#include "core/radius_oracle.hpp"
#include "core/types.hpp"
#include "mpc/simulator.hpp"

namespace kc::mpc {

struct MultiRoundOptions {
  double eps = 0.25;
  int rounds = 2;  ///< R ≥ 1
  OracleOptions oracle;
};

struct MultiRoundResult {
  WeightedSet coreset;          ///< final covering held by machine 0
  double eps_effective = 0.0;   ///< (1+ε)^R − 1
  int beta = 0;                 ///< fan-in per round
  MpcStats stats;
};

[[nodiscard]] MultiRoundResult multi_round_coreset(
    const std::vector<WeightedSet>& parts, int k, std::int64_t z,
    const Metric& metric, const ExecContext& ctx = {},
    const MultiRoundOptions& opt = {});

}  // namespace kc::mpc
