#include "mpc/one_round.hpp"

#include <algorithm>
#include <cmath>

#include "core/coreset.hpp"
#include "core/mbc.hpp"
#include "util/check.hpp"

namespace kc::mpc {

OneRoundResult one_round_coreset(const std::vector<WeightedSet>& parts, int k,
                                 std::int64_t z, std::size_t n_total,
                                 const Metric& metric,
                                 const OneRoundOptions& opt) {
  KC_EXPECTS(!parts.empty());
  const int m = static_cast<int>(parts.size());
  int dim = 1;
  for (const auto& part : parts)
    if (!part.empty()) {
      dim = part.front().p.dim();
      break;
    }

  // z' = min(6z/m + 3·log2 n, z)   (Lemma 32).
  const double logn = n_total > 1 ? std::log2(static_cast<double>(n_total)) : 1.0;
  const auto z_local = std::min<std::int64_t>(
      z, static_cast<std::int64_t>(
             std::ceil(6.0 * static_cast<double>(z) / m + 3.0 * logn)));

  Simulator sim(m, dim, opt.pool);
  std::vector<MiniBallCovering> local(static_cast<std::size_t>(m));

  sim.round([&](int id, std::vector<Message>& /*inbox*/,
                std::vector<Message>& outbox) {
    const auto uid = static_cast<std::size_t>(id);
    const WeightedSet& mine = parts[uid];
    sim.record_storage(id, sim.point_words(mine.size()));
    MiniBallCovering mbc =
        mbc_construct(mine, k, z_local, opt.eps, metric, opt.oracle);
    sim.record_storage(id, sim.point_words(mine.size() + mbc.reps.size()));
    if (id != 0) {
      Message msg;
      msg.to = 0;
      msg.points = mbc.reps;
      outbox.push_back(std::move(msg));
    }
    local[uid] = std::move(mbc);
  });

  OneRoundResult result;
  result.z_local = z_local;
  std::vector<WeightedSet> received;
  received.push_back(local[0].reps);
  result.local_coreset_sizes.push_back(local[0].reps.size());
  for (const auto& msg : sim.inbox(0)) {
    received.push_back(msg.points);
    result.local_coreset_sizes.push_back(msg.points.size());
  }
  result.merged = merge_coresets(received);
  const MiniBallCovering final_mbc =
      recompress(result.merged, k, z, opt.eps, metric, opt.oracle);
  sim.record_storage(0, sim.point_words(parts[0].size() + result.merged.size() +
                                        final_mbc.reps.size()));
  result.coreset = final_mbc.reps;
  result.eps_effective = compose_eps(opt.eps, opt.eps);
  result.stats = sim.stats();
  return result;
}

}  // namespace kc::mpc
