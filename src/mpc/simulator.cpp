#include "mpc/simulator.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace kc::mpc {

std::size_t MpcStats::max_worker_words() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < peak_words.size(); ++i)
    best = std::max(best, peak_words[i]);
  return best;
}

std::size_t MpcStats::coordinator_words() const {
  return peak_words.empty() ? 0 : peak_words[0];
}

Simulator::Simulator(int m, int dim, ThreadPool* pool)
    : m_(m), dim_(dim), pool_(pool) {
  KC_EXPECTS(m >= 1);
  KC_EXPECTS(dim >= 1);
  inboxes_.resize(static_cast<std::size_t>(m));
  stats_.machines = m;
  stats_.dim = dim;
  stats_.threads = pool ? pool->num_threads() : 1;
  stats_.peak_words.assign(static_cast<std::size_t>(m), 0);
}

void Simulator::record_storage(int id, std::size_t words) {
  KC_EXPECTS(id >= 0 && id < m_);
  auto& peak = stats_.peak_words[static_cast<std::size_t>(id)];
  peak = std::max(peak, words);
}

std::vector<Message>& Simulator::inbox(int id) {
  KC_EXPECTS(id >= 0 && id < m_);
  return inboxes_[static_cast<std::size_t>(id)];
}

void Simulator::round(const RoundFn& fn) {
  std::vector<std::vector<Message>> outboxes(static_cast<std::size_t>(m_));

  // Map phase: one machine per task.  Each machine touches only its own
  // inbox/outbox (and whatever id-indexed state `fn` owns), so the pool
  // may schedule them in any order without affecting the result.
  Timer map_timer;
  const auto run_machine = [&](std::size_t id) {
    fn(static_cast<int>(id), inboxes_[id], outboxes[id]);
  };
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->parallel_for(static_cast<std::size_t>(m_), 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t id = begin; id < end; ++id)
                            run_machine(id);
                        });
  } else {
    for (std::size_t id = 0; id < static_cast<std::size_t>(m_); ++id)
      run_machine(id);
  }
  stats_.map_ms += map_timer.millis();

  // Route messages; this is the communication phase of the round.
  std::size_t round_words = 0;
  for (auto& box : inboxes_) box.clear();
  for (int from = 0; from < m_; ++from) {
    for (auto& msg : outboxes[static_cast<std::size_t>(from)]) {
      KC_EXPECTS(msg.to >= 0 && msg.to < m_);
      msg.from = from;
      // A self-addressed message is local data movement, not communication.
      if (msg.to != from) round_words += msg.words(dim_);
      inboxes_[static_cast<std::size_t>(msg.to)].push_back(std::move(msg));
    }
  }
  stats_.comm_words_per_round.push_back(round_words);
  stats_.total_comm_words += round_words;
  ++stats_.rounds;
}

}  // namespace kc::mpc
