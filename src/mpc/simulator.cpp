#include "mpc/simulator.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace kc::mpc {

std::size_t MpcStats::max_worker_words() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < peak_words.size(); ++i)
    best = std::max(best, peak_words[i]);
  return best;
}

std::size_t MpcStats::coordinator_words() const {
  return peak_words.empty() ? 0 : peak_words[0];
}

Simulator::Simulator(int m, int dim, ThreadPool* pool, FaultInjector* faults)
    : m_(m),
      dim_(dim),
      pool_(pool),
      faults_(faults != nullptr && faults->enabled() ? faults : nullptr) {
  KC_EXPECTS(m >= 1);
  KC_EXPECTS(dim >= 1);
  inboxes_.resize(static_cast<std::size_t>(m));
  stats_.machines = m;
  stats_.dim = dim;
  stats_.threads = pool ? pool->num_threads() : 1;
  stats_.peak_words.assign(static_cast<std::size_t>(m), 0);
}

void Simulator::record_storage(int id, std::size_t words) {
  KC_EXPECTS(id >= 0 && id < m_);
  auto& peak = stats_.peak_words[static_cast<std::size_t>(id)];
  peak = std::max(peak, words);
}

std::vector<Message>& Simulator::inbox(int id) {
  KC_EXPECTS(id >= 0 && id < m_);
  return inboxes_[static_cast<std::size_t>(id)];
}

MpcStats Simulator::stats() const {
  MpcStats out = stats_;
  if (faults_ != nullptr) out.faults = faults_->stats();
  return out;
}

void Simulator::round(const RoundFn& fn) {
  std::vector<std::vector<Message>> outboxes(static_cast<std::size_t>(m_));
  const int round_idx = stats_.rounds;

  // Fault pre-phase (sequential, *before* the parallel map): resolve every
  // crash/straggle decision from the counter-hashed plan so the schedule —
  // and everything downstream of it — is identical at any thread count.
  // Crash-at-round-start semantics: a crashed attempt does no observable
  // work; the machine re-executes from its checkpointed state on the next
  // attempt, up to the retry budget, after which it is permanently dead.
  std::vector<char> runs(static_cast<std::size_t>(m_), 1);
  if (faults_ != nullptr) {
    auto& fs = faults_->stats();
    const FaultPlan& plan = faults_->plan();
    const FaultConfig& fc = faults_->config();
    const int budget = fc.effective_retry_budget();
    for (int id = 0; id < m_; ++id) {
      const auto uid = static_cast<std::size_t>(id);
      if (!faults_->alive(id)) {
        runs[uid] = 0;
        continue;
      }
      int attempt = 0;
      while (plan.crash(round_idx, id, attempt)) {
        ++fs.crashes;
        if (attempt >= budget) {
          faults_->mark_dead(id);
          ++fs.machines_lost;
          runs[uid] = 0;
          break;
        }
        ++fs.retries;
        fs.backoff_ms += fc.backoff.delay_ms(attempt + 1);
        ++attempt;
      }
      if (runs[uid] != 0 && plan.straggle(round_idx, id)) {
        ++fs.straggles;
        fs.straggle_ms += fc.straggle_ms;
      }
    }
  }

  // Map phase: one machine per task.  Each machine touches only its own
  // inbox/outbox (and whatever id-indexed state `fn` owns), so the pool
  // may schedule them in any order without affecting the result.
  Timer map_timer;
  const auto run_machine = [&](std::size_t id) {
    if (runs[id] != 0) fn(static_cast<int>(id), inboxes_[id], outboxes[id]);
  };
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->parallel_for(static_cast<std::size_t>(m_), 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t id = begin; id < end; ++id)
                            run_machine(id);
                        });
  } else {
    for (std::size_t id = 0; id < static_cast<std::size_t>(m_); ++id)
      run_machine(id);
  }
  stats_.map_ms += map_timer.millis();

  // Route messages; this is the communication phase of the round.  Under
  // fault injection each delivery may take several attempts: every attempt
  // burns its bandwidth (the message was on the wire and lost), re-sends
  // past the first are accounted as such, and a message dropped on every
  // attempt is gone for good — the *semantic* consequence (lost weight,
  // degraded bound) is judged by the algorithm-layer recovery, which knows
  // what the message meant.
  std::size_t round_words = 0;
  for (auto& box : inboxes_) box.clear();
  for (int from = 0; from < m_; ++from) {
    for (auto& msg : outboxes[static_cast<std::size_t>(from)]) {
      KC_EXPECTS(msg.to >= 0 && msg.to < m_);
      msg.from = from;
      // A self-addressed message is local data movement, not communication
      // — and never faulted.
      if (msg.to == from) {
        inboxes_[static_cast<std::size_t>(msg.to)].push_back(std::move(msg));
        continue;
      }
      if (faults_ == nullptr) {
        round_words += msg.words(dim_);
        inboxes_[static_cast<std::size_t>(msg.to)].push_back(std::move(msg));
        continue;
      }
      auto& fs = faults_->stats();
      const FaultPlan& plan = faults_->plan();
      const FaultConfig& fc = faults_->config();
      const int budget = fc.effective_retry_budget();
      const std::size_t wire = msg.words(dim_);
      bool delivered = false;
      for (int attempt = 0; attempt <= budget; ++attempt) {
        round_words += wire;
        if (attempt > 0) {
          ++fs.resends;
          fs.resent_words += wire;
          fs.backoff_ms += fc.backoff.delay_ms(attempt);
        }
        if (plan.drop(round_idx, from, msg.to, attempt)) {
          ++fs.drops;
          continue;
        }
        if (msg.payload.full_size() > 0 &&
            plan.truncate(round_idx, from, msg.to, attempt)) {
          ++fs.truncations;
          // A truncated transfer fails its checksum and is retried like a
          // drop — except on the final attempt, where the surviving prefix
          // is delivered (partial data beats none; the receiver accounts
          // the cut weight and flags degradation).
          if (attempt < budget) continue;
          const std::size_t keep = static_cast<std::size_t>(
              plan.truncate_keep_fraction(round_idx, from, msg.to) *
              static_cast<double>(msg.payload.full_size()));
          msg.payload.truncate_to(keep);
          fs.lost_words += wire - msg.words(dim_);
        }
        delivered = true;
        break;
      }
      if (delivered) {
        inboxes_[static_cast<std::size_t>(msg.to)].push_back(std::move(msg));
      } else {
        ++fs.messages_lost;
        fs.lost_words += wire;
      }
    }
  }
  stats_.comm_words_per_round.push_back(round_words);
  stats_.total_comm_words += round_words;
  ++stats_.rounds;
}

}  // namespace kc::mpc
