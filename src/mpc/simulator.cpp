#include "mpc/simulator.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace kc::mpc {

std::size_t MpcStats::max_worker_words() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < peak_words.size(); ++i)
    best = std::max(best, peak_words[i]);
  return best;
}

std::size_t MpcStats::coordinator_words() const {
  return peak_words.empty() ? 0 : peak_words[0];
}

Simulator::Simulator(int m, int dim, const ExecContext& ctx)
    : m_(m),
      dim_(dim),
      pool_(ctx.pool),
      faults_(ctx.faults != nullptr && ctx.faults->enabled() ? ctx.faults
                                                             : nullptr) {
  KC_EXPECTS(m >= 1);
  KC_EXPECTS(dim >= 1);
  if (ctx.transport != nullptr) {
    transport_ = ctx.transport;
  } else {
    owned_transport_ = make_local_transport();
    transport_ = owned_transport_.get();
  }
  // No-op when the pipeline already opened the endpoints (the process
  // backend forks its workers before any thread pool exists).
  transport_->open(m, dim);
  inboxes_.resize(static_cast<std::size_t>(m));
  stats_.machines = m;
  stats_.dim = dim;
  stats_.threads = pool_ ? pool_->num_threads() : 1;
  stats_.peak_words.assign(static_cast<std::size_t>(m), 0);
}

void Simulator::record_storage(int id, std::size_t words) {
  KC_EXPECTS(id >= 0 && id < m_);
  auto& peak = stats_.peak_words[static_cast<std::size_t>(id)];
  peak = std::max(peak, words);
}

std::vector<Message>& Simulator::inbox(int id) {
  KC_EXPECTS(id >= 0 && id < m_);
  return inboxes_[static_cast<std::size_t>(id)];
}

MpcStats Simulator::stats() const {
  MpcStats out = stats_;
  out.faults = faults_ != nullptr ? faults_->stats() : real_faults_;
  out.backend = transport_->backend();
  out.wire = transport_->wire();
  return out;
}

void Simulator::round(const RoundFn& fn) {
  std::vector<std::vector<Message>> outboxes(static_cast<std::size_t>(m_));
  const int round_idx = stats_.rounds;

  // Fault pre-phase (sequential, *before* the parallel map): resolve every
  // crash/straggle decision from the counter-hashed plan so the schedule —
  // and everything downstream of it — is identical at any thread count.
  // Crash-at-round-start semantics: a crashed attempt does no observable
  // work; the machine re-executes from its checkpointed state on the next
  // attempt, up to the retry budget, after which it is permanently dead.
  std::vector<char> runs(static_cast<std::size_t>(m_), 1);
  if (faults_ != nullptr) {
    auto& fs = faults_->stats();
    const FaultPlan& plan = faults_->plan();
    const FaultConfig& fc = faults_->config();
    const int budget = fc.effective_retry_budget();
    for (int id = 0; id < m_; ++id) {
      const auto uid = static_cast<std::size_t>(id);
      if (!faults_->alive(id)) {
        runs[uid] = 0;
        continue;
      }
      int attempt = 0;
      while (plan.crash(round_idx, id, attempt)) {
        ++fs.crashes;
        if (attempt >= budget) {
          faults_->mark_dead(id);
          ++fs.machines_lost;
          runs[uid] = 0;
          break;
        }
        ++fs.retries;
        fs.backoff_ms += fc.backoff.delay_ms(attempt + 1);
        ++attempt;
      }
      if (runs[uid] != 0 && plan.straggle(round_idx, id)) {
        ++fs.straggles;
        fs.straggle_ms += fc.straggle_ms;
      }
    }
  }

  // Map phase: one machine per task.  Each machine touches only its own
  // inbox/outbox (and whatever id-indexed state `fn` owns), so the pool
  // may schedule them in any order without affecting the result.
  Timer map_timer;
  const auto run_machine = [&](std::size_t id) {
    if (runs[id] != 0) fn(static_cast<int>(id), inboxes_[id], outboxes[id]);
  };
  if (pool_ != nullptr && pool_->num_threads() > 1) {
    pool_->parallel_for(static_cast<std::size_t>(m_), 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t id = begin; id < end; ++id)
                            run_machine(id);
                        });
  } else {
    for (std::size_t id = 0; id < static_cast<std::size_t>(m_); ++id)
      run_machine(id);
  }
  stats_.map_ms += map_timer.millis();

  // Route messages through the transport; this is the communication phase
  // of the round.  Under fault injection each delivery may take several
  // attempts: every attempt burns its bandwidth — and is physically
  // transmitted, so measured wire bytes track the words accounting — re-
  // sends past the first are accounted as such, and a message dropped on
  // every attempt is gone for good; the *semantic* consequence (lost
  // weight, degraded bound) is judged by the algorithm-layer recovery,
  // which knows what the message meant.  Real transport failures land in
  // `fault_sink()` and, when retry budget exists, consume it like
  // injected drops.
  Timer route_timer;
  std::size_t round_words = 0;
  for (auto& box : inboxes_) box.clear();
  for (int from = 0; from < m_; ++from) {
    for (auto& msg : outboxes[static_cast<std::size_t>(from)]) {
      KC_EXPECTS(msg.to >= 0 && msg.to < m_);
      msg.from = from;
      // A self-addressed message is local data movement, not communication
      // — and never faulted.
      if (msg.to == from) {
        inboxes_[static_cast<std::size_t>(msg.to)].push_back(std::move(msg));
        continue;
      }
      const int to = msg.to;
      const std::size_t wire_words = msg.words(dim_);
      if (faults_ == nullptr) {
        round_words += wire_words;
        Delivery d = transport_->deliver(std::move(msg));
        if (d.status == DeliveryStatus::Delivered) {
          inboxes_[static_cast<std::size_t>(to)].push_back(std::move(d.msg));
        } else {
          ++real_faults_.messages_lost;
          real_faults_.lost_words += wire_words;
        }
        continue;
      }
      auto& fs = faults_->stats();
      const FaultPlan& plan = faults_->plan();
      const FaultConfig& fc = faults_->config();
      const int budget = fc.effective_retry_budget();
      bool delivered = false;
      for (int attempt = 0; attempt <= budget; ++attempt) {
        round_words += wire_words;
        if (attempt > 0) {
          ++fs.resends;
          fs.resent_words += wire_words;
          fs.backoff_ms += fc.backoff.delay_ms(attempt);
        }
        const bool inj_drop = plan.drop(round_idx, from, to, attempt);
        bool inj_trunc_retry = false;
        bool inj_trunc_final = false;
        std::size_t keep = 0;
        if (!inj_drop && msg.payload.full_size() > 0 &&
            plan.truncate(round_idx, from, to, attempt)) {
          ++fs.truncations;
          // A truncated transfer fails its checksum and is retried like a
          // drop — except on the final attempt, where the surviving prefix
          // is delivered (partial data beats none; the receiver accounts
          // the cut weight and flags degradation).
          if (attempt < budget) {
            inj_trunc_retry = true;
          } else {
            inj_trunc_final = true;
            keep = static_cast<std::size_t>(
                plan.truncate_keep_fraction(round_idx, from, to) *
                static_cast<double>(msg.payload.full_size()));
          }
        }
        // The attempt hits the physical wire regardless of the plan's
        // verdict — injected drops/truncations model transfers that failed
        // *after* burning their bandwidth.
        Delivery d = transport_->deliver(Message(msg));
        if (inj_drop) {
          ++fs.drops;
          continue;
        }
        if (inj_trunc_retry) continue;
        if (d.status != DeliveryStatus::Delivered) {
          // Real failure on an attempt the plan would have delivered: a
          // lost endpoint cannot come back, so stop burning the budget;
          // corrupt frames and timeouts retry like drops.
          if (d.status == DeliveryStatus::WorkerLost) break;
          continue;
        }
        if (inj_trunc_final) {
          d.msg.payload.truncate_to(keep);
          fs.lost_words += wire_words - d.msg.words(dim_);
        }
        inboxes_[static_cast<std::size_t>(to)].push_back(std::move(d.msg));
        delivered = true;
        break;
      }
      if (!delivered) {
        ++fs.messages_lost;
        fs.lost_words += wire_words;
      }
    }
  }
  transport_->end_round();
  stats_.route_ms += route_timer.millis();
  stats_.comm_words_per_round.push_back(round_words);
  stats_.total_comm_words += round_words;
  ++stats_.rounds;
}

}  // namespace kc::mpc
