#include "mpc/wire.hpp"

#include <cstring>

#include "dataset/kcb.hpp"  // dataset::fnv1a — the .kcb checksum, reused

namespace kc::mpc::wire {

namespace {

// magic + dim + from + to + n_scalars + full_rows + shipped_rows.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kChecksumBytes = 8;

// Sanity caps on header-claimed sizes, checked before any size arithmetic
// so a corrupt frame can neither overflow the byte count nor drive a huge
// allocation.  Generous: 2^40 elements is far past any simulated payload.
constexpr std::uint64_t kMaxElems = std::uint64_t{1} << 40;
constexpr std::uint32_t kMaxDim = 1u << 20;

void put_bytes(std::vector<std::uint8_t>& buf, const void* src,
               std::size_t len) {
  if (len == 0) return;  // empty vectors may hand us data() == nullptr
  const auto* b = static_cast<const std::uint8_t*>(src);
  buf.insert(buf.end(), b, b + len);
}

template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  put_bytes(buf, &v, sizeof v);
}

template <typename T>
T get(const std::uint8_t* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::size_t encoded_size(const Message& msg) noexcept {
  const std::size_t full = msg.payload.full_size();
  const auto dim =
      full > 0 ? static_cast<std::size_t>(msg.payload.coords().dim()) : 0;
  return kHeaderBytes + sizeof(double) * msg.scalars.size() +
         sizeof(double) * dim * full + sizeof(std::int64_t) * full +
         kChecksumBytes;
}

std::vector<std::uint8_t> encode(const Message& msg) {
  const auto& payload = msg.payload;
  const std::size_t full = payload.full_size();
  const int dim = full > 0 ? payload.coords().dim() : 0;

  std::vector<std::uint8_t> buf;
  buf.reserve(encoded_size(msg));
  put(buf, kMagic);
  put(buf, static_cast<std::uint32_t>(dim));
  put(buf, static_cast<std::int32_t>(msg.from));
  put(buf, static_cast<std::int32_t>(msg.to));
  put(buf, static_cast<std::uint64_t>(msg.scalars.size()));
  put(buf, static_cast<std::uint64_t>(full));
  put(buf, static_cast<std::uint64_t>(payload.size()));
  put_bytes(buf, msg.scalars.data(), sizeof(double) * msg.scalars.size());
  for (int j = 0; j < dim; ++j)
    put_bytes(buf, payload.coords().col(j), sizeof(double) * full);
  put_bytes(buf, payload.weights().data(), sizeof(std::int64_t) * full);
  put(buf, dataset::fnv1a(buf.data(), buf.size()));
  return buf;
}

const char* to_string(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::Ok:
      return "ok";
    case DecodeStatus::Truncated:
      return "truncated";
    case DecodeStatus::Corrupt:
      return "corrupt";
  }
  return "?";
}

DecodeStatus decode(const std::uint8_t* data, std::size_t len, Message* out) {
  if (len < kHeaderBytes + kChecksumBytes) return DecodeStatus::Truncated;
  if (get<std::uint32_t>(data) != kMagic) return DecodeStatus::Corrupt;
  const auto dim = get<std::uint32_t>(data + 4);
  const auto from = get<std::int32_t>(data + 8);
  const auto to = get<std::int32_t>(data + 12);
  const auto n_scalars = get<std::uint64_t>(data + 16);
  const auto full = get<std::uint64_t>(data + 24);
  const auto shipped = get<std::uint64_t>(data + 32);

  if (n_scalars > kMaxElems || full > kMaxElems || dim > kMaxDim)
    return DecodeStatus::Corrupt;
  if (shipped > full) return DecodeStatus::Corrupt;
  if (full > 0 && dim == 0) return DecodeStatus::Corrupt;

  const std::size_t need =
      kHeaderBytes + sizeof(double) * (n_scalars + std::size_t{dim} * full) +
      sizeof(std::int64_t) * full + kChecksumBytes;
  if (len < need) return DecodeStatus::Truncated;
  if (len > need) return DecodeStatus::Corrupt;

  const std::uint64_t want = get<std::uint64_t>(data + (need - kChecksumBytes));
  if (dataset::fnv1a(data, need - kChecksumBytes) != want)
    return DecodeStatus::Corrupt;

  const std::uint8_t* p = data + kHeaderBytes;
  std::vector<double> scalars(n_scalars);
  if (n_scalars > 0)
    std::memcpy(scalars.data(), p, sizeof(double) * n_scalars);
  p += sizeof(double) * n_scalars;

  PointPayload payload;
  if (full > 0) {
    kernels::PointBuffer coords(static_cast<int>(dim));
    coords.reserve(full);
    std::vector<double> row(dim);
    for (std::uint64_t i = 0; i < full; ++i) {
      for (std::uint32_t j = 0; j < dim; ++j)
        row[j] = get<double>(p + sizeof(double) * (std::size_t{j} * full + i));
      coords.append(row.data());
    }
    p += sizeof(double) * std::size_t{dim} * full;
    std::vector<std::int64_t> weights(full);
    std::memcpy(weights.data(), p, sizeof(std::int64_t) * full);
    payload = PointPayload(std::move(coords), std::move(weights), shipped);
  }

  out->from = from;
  out->to = to;
  out->scalars = std::move(scalars);
  out->payload = std::move(payload);
  return DecodeStatus::Ok;
}

}  // namespace kc::mpc::wire
