// Message transport backends for the MPC simulator.
//
// `Simulator::round` routes every non-self message through a `Transport`,
// which decides what "sending" physically means:
//
//  * `LocalTransport` — the historical in-process hand-off: the message
//    moves by std::move, nothing crosses a boundary, wire bytes stay 0.
//    Byte-identical to the pre-transport simulator.
//  * `ProcessTransport` — machine endpoints are forked worker processes
//    connected by Unix-domain socket pairs.  Every delivery serializes the
//    message into one checksummed frame (mpc/wire.hpp), ships it to the
//    receiving machine's worker, which decodes, verifies, re-encodes, and
//    echoes it back; the parent decodes the echo and that decoded message
//    is what lands in the inbox.  Bytes-on-the-wire are measured per
//    round and reported next to the model-predicted `comm_words`
//    (`wire_bytes` / `wire_ratio` columns).
//
// Division of labor (and its honest limit): the per-machine *computation*
// still runs in the parent — the algorithms are closures over per-machine
// state that the coordinator reads directly, so fully remoting compute
// would change the programming model.  Workers are communication
// endpoints: every payload physically leaves the parent, round-trips
// through the receiving machine's process with a checksum verification
// and a decode/re-encode cycle, and the delivered message is the one
// reconstructed from wire bytes — so serialization fidelity is on the
// result path, not decorative.
//
// Real failures (worker exit, short read/EOF, response timeout) surface
// as `DeliveryStatus` values; the simulator maps them onto the same
// `FaultStats`/recovery machinery as injected faults, so retry/reassign/
// degrade behave identically on both backends.

#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpc/message.hpp"

namespace kc::mpc {

enum class Backend : std::uint8_t { Local = 0, Process = 1 };

[[nodiscard]] const char* to_string(Backend b) noexcept;
/// Parses "local" / "process"; returns false (out untouched) otherwise.
[[nodiscard]] bool parse_backend(const std::string& s, Backend* out) noexcept;

enum class DeliveryStatus : std::uint8_t {
  Delivered = 0,
  WorkerLost = 1,  ///< endpoint process exited (EOF / broken pipe)
  Corrupt = 2,     ///< frame failed checksum or decode at either end
  Timeout = 3,     ///< no response within the configured deadline
};

[[nodiscard]] const char* to_string(DeliveryStatus s) noexcept;

/// Outcome of one physical delivery attempt.  `msg` is meaningful only
/// when `status == Delivered` — on the process backend it is the message
/// reconstructed from the echoed wire bytes.
struct Delivery {
  DeliveryStatus status = DeliveryStatus::Delivered;
  Message msg;
};

/// Measured transport traffic.  All zero on the local backend.
struct WireStats {
  std::uint64_t bytes = 0;   ///< frame + protocol-header bytes, all rounds
  std::uint64_t frames = 0;  ///< delivery attempts that hit the wire
  std::vector<std::uint64_t> bytes_per_round;
  int worker_failures = 0;  ///< endpoints lost (exit, EOF, timeout)
  int corrupt_frames = 0;   ///< checksum/decode failures observed
  int timeouts = 0;         ///< deliveries abandoned at the deadline
};

class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  [[nodiscard]] virtual Backend backend() const noexcept = 0;

  /// Prepares endpoints for `machines` machines in dimension `dim`.
  /// Idempotent for a matching topology (the pipeline opens the transport
  /// before spawning its thread pool — fork must precede threads — and
  /// the simulator's constructor re-opens as a no-op).
  virtual void open(int machines, int dim) = 0;

  /// Physically conveys one message to machine `msg.to`.  Consumes the
  /// message; the delivered copy comes back in the `Delivery`.
  [[nodiscard]] virtual Delivery deliver(Message msg) = 0;

  /// Round boundary: closes the current per-round byte window.
  void end_round() {
    wire_.bytes_per_round.push_back(wire_.bytes - round_mark_);
    round_mark_ = wire_.bytes;
  }

  [[nodiscard]] const WireStats& wire() const noexcept { return wire_; }

 protected:
  WireStats wire_;

 private:
  std::uint64_t round_mark_ = 0;
};

/// In-process pass-through (the historical simulator routing).
class LocalTransport final : public Transport {
 public:
  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::Local;
  }
  void open(int machines, int dim) override;
  [[nodiscard]] Delivery deliver(Message msg) override;
};

struct ProcessTransportOptions {
  /// Deadline for a worker's echo before the delivery is abandoned and
  /// the endpoint declared lost (its byte stream cannot be resynced).
  int timeout_ms = 30000;
};

/// Forked worker endpoints over Unix-domain socket pairs.
class ProcessTransport final : public Transport {
 public:
  explicit ProcessTransport(ProcessTransportOptions opts = {});
  ~ProcessTransport() override;

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::Process;
  }
  void open(int machines, int dim) override;
  [[nodiscard]] Delivery deliver(Message msg) override;

  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] bool worker_alive(int id) const noexcept;

  /// Test hook: SIGKILL worker `id` (reaping it) but leave its socket
  /// registered, so the next delivery exercises the real EOF/broken-pipe
  /// failure path rather than a pre-marked dead flag.
  void kill_worker(int id);

  /// Closes sockets, asks live workers to exit, and reaps every child.
  /// Idempotent; also run by the destructor.
  void close_all() noexcept;

 private:
  struct Worker {
    int fd = -1;
    pid_t pid = -1;
    bool alive = false;   ///< endpoint usable for deliveries
    bool reaped = false;  ///< waitpid already collected the child
  };

  void fail_worker(Worker& w) noexcept;  // close + reap + count the loss
  [[nodiscard]] DeliveryStatus read_response(Worker& w, std::uint8_t* status,
                                             std::vector<std::uint8_t>* frame);

  ProcessTransportOptions opts_;
  int machines_ = 0;
  int dim_ = 0;
  std::vector<Worker> workers_;
};

[[nodiscard]] std::unique_ptr<Transport> make_local_transport();
[[nodiscard]] std::unique_ptr<ProcessTransport> make_process_transport(
    ProcessTransportOptions opts = {});
/// Factory by backend tag (default options).
[[nodiscard]] std::unique_ptr<Transport> make_transport(Backend b);

}  // namespace kc::mpc
