// Baseline: Ceccarello–Pietracaprina–Pucci 1-round coreset [11]
// (the "MPC 1-round" rows of Table 1 the paper improves upon).
//
// Faithful-in-spirit reconstruction (see DESIGN.md, substitution #5 note):
// each machine summarises its local set by running Gonzalez until
// τ = (k+z)·⌈4/ε⌉^d + 1 centers.  By the packing bound applied with (k+z)
// centers and 0 outliers, the covering radius then satisfies
// δ ≤ ε·opt_{k+z,0}(P_i) ≤ ε·optk,z(P), so the weighted summary is an
// (ε,k,z)-mini-ball covering of P_i regardless of how outliers are
// distributed — at the cost of the *multiplicative* z·(1/ε)^d term in the
// summary size that the paper's 2-round algorithm replaces with an additive
// z and a log(z+1) table.  The coordinator merges the summaries; we also
// recompress for an apples-to-apples final coreset size.

#pragma once

#include <cstdint>
#include <vector>

#include "core/radius_oracle.hpp"
#include "core/types.hpp"
#include "mpc/simulator.hpp"

namespace kc::mpc {

struct CeccarelloOptions {
  double eps = 0.5;
  OracleOptions oracle;  ///< used only for the coordinator recompression
};

struct CeccarelloResult {
  WeightedSet coreset;
  WeightedSet merged;
  std::int64_t tau = 0;  ///< per-machine center budget (k+z)⌈4/ε⌉^d + 1
  std::vector<std::size_t> local_coreset_sizes;
  MpcStats stats;
};

[[nodiscard]] CeccarelloResult ceccarello_coreset(
    const std::vector<WeightedSet>& parts, int k, std::int64_t z,
    const Metric& metric, const ExecContext& ctx = {},
    const CeccarelloOptions& opt = {});

}  // namespace kc::mpc
