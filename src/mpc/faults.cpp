#include "mpc/faults.hpp"

#include "mpc/simulator.hpp"
#include "util/check.hpp"

namespace kc::mpc {

const char* to_string(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::Retry:
      return "retry";
    case RecoveryPolicy::Reassign:
      return "reassign";
    case RecoveryPolicy::Degrade:
      return "degrade";
  }
  return "retry";
}

bool parse_recovery_policy(const std::string& name,
                           RecoveryPolicy* out) noexcept {
  if (name == "retry") {
    *out = RecoveryPolicy::Retry;
    return true;
  }
  if (name == "reassign") {
    *out = RecoveryPolicy::Reassign;
    return true;
  }
  if (name == "degrade") {
    *out = RecoveryPolicy::Degrade;
    return true;
  }
  return false;
}

int choose_adopter(const FaultInjector& faults, int machines,
                   int dead) noexcept {
  for (int step = 1; step < machines; ++step) {
    const int id = (dead + step) % machines;
    if (id != 0 && faults.alive(id)) return id;
  }
  return 0;  // the coordinator adopts when no worker survives
}

void account_payload_truncation(FaultInjector* faults, const Message& msg) {
  if (faults == nullptr || !msg.payload.truncated()) return;
  faults->stats().lost_weight += msg.payload.cut_weight();
  faults->stats().degraded = true;
}

GatherResult gather_with_recovery(Simulator& sim,
                                  const std::vector<WeightedSet>& parts,
                                  WeightedSet own, const RebuildFn& rebuild) {
  const int m = sim.machines();
  KC_EXPECTS(static_cast<int>(parts.size()) == m);
  FaultInjector* faults = sim.faults();

  GatherResult out;
  out.shipments.resize(static_cast<std::size_t>(m));
  out.shipments[0] = std::move(own);
  std::vector<char> have(static_cast<std::size_t>(m), 0);
  have[0] = 1;
  for (auto& msg : sim.inbox(0)) {
    if (msg.from == 0) continue;  // the coordinator's own data is `own`
    account_payload_truncation(faults, msg);
    out.shipments[static_cast<std::size_t>(msg.from)] = msg.payload.unpack();
    have[static_cast<std::size_t>(msg.from)] = 1;
  }

  // Machines with an empty partition legitimately ship nothing of weight;
  // everything else that is absent must be recovered or written off.
  const auto missing = [&] {
    std::vector<int> miss;
    for (int i = 1; i < m; ++i)
      if (have[static_cast<std::size_t>(i)] == 0 &&
          !parts[static_cast<std::size_t>(i)].empty())
        miss.push_back(i);
    return miss;
  };

  // Shipments can go missing without an injector too: a real transport
  // failure (worker exit, short read, timeout) loses the message just the
  // same.  Reassign passes need the injector's policy/plan machinery, but
  // the Lemma-4 write-off below is honest on any backend via the
  // simulator's fault sink.
  std::vector<int> miss = missing();
  if (miss.empty()) return out;

  if (faults != nullptr && faults->config().policy == RecoveryPolicy::Reassign) {
    const FaultConfig& fc = faults->config();
    for (int pass = 0; pass < fc.max_recovery_rounds && !miss.empty();
         ++pass) {
      ++faults->stats().recovery_rounds;
      // Adopters are fixed deterministically before the round; the round
      // itself still runs under the fault plan (an adopter may crash, a
      // recovered shipment may drop — the next pass tries again).
      std::vector<std::pair<int, int>> tasks;  // (orphan, adopter)
      tasks.reserve(miss.size());
      for (int i : miss) tasks.emplace_back(i, choose_adopter(*faults, m, i));
      sim.round([&](int id, std::vector<Message>& /*inbox*/,
                    std::vector<Message>& outbox) {
        for (const auto& [orphan, adopter] : tasks) {
          if (adopter != id) continue;
          WeightedSet summary = rebuild(orphan);
          // The adopter now holds its own partition, the orphan partition
          // it re-read, and the rebuilt summary.
          sim.record_storage(
              id, sim.point_words(
                      parts[static_cast<std::size_t>(id)].size() +
                      parts[static_cast<std::size_t>(orphan)].size() +
                      summary.size()));
          Message msg;
          msg.to = 0;
          msg.scalars.push_back(static_cast<double>(orphan));
          msg.payload = PointPayload(summary);
          outbox.push_back(std::move(msg));
        }
      });
      for (auto& msg : sim.inbox(0)) {
        if (msg.scalars.empty()) continue;
        const int orphan = static_cast<int>(msg.scalars[0]);
        if (orphan <= 0 || orphan >= m ||
            have[static_cast<std::size_t>(orphan)] != 0)
          continue;
        account_payload_truncation(faults, msg);
        out.shipments[static_cast<std::size_t>(orphan)] =
            msg.payload.unpack();
        have[static_cast<std::size_t>(orphan)] = 1;
        ++faults->stats().partitions_reassigned;
      }
      miss = missing();
    }
  }

  // Lemma 4: the union of the surviving coverings is still a valid
  // covering of the surviving points — the result degrades to a
  // (k, z + lost_weight) guarantee instead of failing.
  for (int i : miss) {
    sim.fault_sink().lost_weight +=
        total_weight(parts[static_cast<std::size_t>(i)]);
    sim.fault_sink().degraded = true;
  }
  return out;
}

}  // namespace kc::mpc
