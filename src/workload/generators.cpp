#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/box.hpp"
#include "util/check.hpp"

namespace kc {

namespace {

// Uniform sample from the unit ball of the given norm (rejection from the
// cube works for every norm at the small dimensions we target).
Point sample_unit_ball(Rng& rng, int dim, Norm norm) {
  const Metric metric{norm};
  Point origin(dim, 0.0);
  for (;;) {
    Point p(dim);
    for (int i = 0; i < dim; ++i) p[i] = rng.uniform_real(-1.0, 1.0);
    if (metric.dist(p, origin) <= 1.0) return p;
  }
}

// Cluster-center lattice: place k centers on a coarse integer lattice scaled
// by `spacing`, guaranteeing pairwise distance ≥ spacing in every norm.
PointSet lattice_centers(int k, int dim, double spacing) {
  const int per_axis = static_cast<int>(
      std::ceil(std::pow(static_cast<double>(k), 1.0 / dim)));
  PointSet out;
  out.reserve(static_cast<std::size_t>(k));
  std::vector<int> idx(static_cast<std::size_t>(dim), 0);
  while (static_cast<int>(out.size()) < k) {
    Point c(dim);
    for (int i = 0; i < dim; ++i)
      c[i] = spacing * static_cast<double>(idx[static_cast<std::size_t>(i)]);
    out.push_back(c);
    // increment mixed-radix counter
    for (int i = 0; i < dim; ++i) {
      if (++idx[static_cast<std::size_t>(i)] < per_axis) break;
      idx[static_cast<std::size_t>(i)] = 0;
      KC_EXPECTS(i + 1 < dim || static_cast<int>(out.size()) >= k);
    }
  }
  return out;
}

// Certified diameter lower bound: double farthest-point probe.
double diameter_lb(const std::vector<Point>& pts, const Metric& metric) {
  if (pts.size() < 2) return 0.0;
  std::size_t a = 0;
  double best = -1.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double d = metric.dist(pts[0], pts[i]);
    if (d > best) {
      best = d;
      a = i;
    }
  }
  double diam = best;
  for (std::size_t i = 0; i < pts.size(); ++i)
    diam = std::max(diam, metric.dist(pts[a], pts[i]));
  return diam;
}

}  // namespace

PlantedInstance make_planted(const PlantedConfig& cfg) {
  KC_EXPECTS(cfg.k >= 1);
  KC_EXPECTS(cfg.z >= 0);
  KC_EXPECTS(cfg.dim >= 1 && cfg.dim <= Point::kMaxDim);
  KC_EXPECTS(std::isfinite(cfg.cluster_radius) && cfg.cluster_radius > 0.0);
  KC_EXPECTS(std::isfinite(cfg.separation));
  KC_EXPECTS(cfg.separation >= 20.0);
  KC_EXPECTS(cfg.duplicates >= 1);
  const auto z = static_cast<std::size_t>(cfg.z);
  KC_EXPECTS(cfg.n >= static_cast<std::size_t>(cfg.k) * (z + 1) + z);

  PlantedInstance inst;
  inst.config = cfg;
  Rng rng(cfg.seed);
  const Metric metric{cfg.norm};
  const double spacing = cfg.separation * cfg.cluster_radius;

  inst.planted_centers = lattice_centers(cfg.k, cfg.dim, spacing);

  // Split the n - z cluster points over the k clusters.  skew = 0 gives an
  // even split; skew → 1 concentrates mass in the first cluster while every
  // cluster keeps its mandatory z+1 points.
  const std::size_t cluster_total = cfg.n - z;
  std::vector<std::size_t> sizes(static_cast<std::size_t>(cfg.k), z + 1);
  std::size_t assigned = static_cast<std::size_t>(cfg.k) * (z + 1);
  KC_EXPECTS(assigned <= cluster_total);
  std::size_t remaining = cluster_total - assigned;
  if (!cfg.cluster_sizes.empty()) {
    // Explicit split (heavy-tailed adversarial workloads plant it exactly).
    KC_EXPECTS(cfg.cluster_sizes.size() == static_cast<std::size_t>(cfg.k));
    std::size_t sum = 0;
    for (std::size_t s : cfg.cluster_sizes) {
      KC_EXPECTS(s >= z + 1);
      sum += s;
    }
    KC_EXPECTS(sum == cluster_total);
    sizes = cfg.cluster_sizes;
    remaining = 0;
  } else if (cfg.skew <= 0.0) {
    for (std::size_t i = 0; remaining > 0; i = (i + 1) % sizes.size()) {
      ++sizes[i];
      --remaining;
    }
  } else {
    // Geometric decay of the remainder across clusters.
    double weight = 1.0;
    std::vector<double> ws(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      ws[i] = weight;
      weight *= (1.0 - cfg.skew);
    }
    double wsum = 0.0;
    for (double w : ws) wsum += w;
    std::size_t given = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto extra =
          static_cast<std::size_t>(std::floor(static_cast<double>(remaining) * ws[i] / wsum));
      sizes[i] += extra;
      given += extra;
    }
    for (std::size_t i = 0; given < remaining; i = (i + 1) % sizes.size()) {
      ++sizes[i];
      ++given;
    }
  }

  std::vector<std::vector<Point>> clusters(static_cast<std::size_t>(cfg.k));
  for (int c = 0; c < cfg.k; ++c) {
    auto& cluster = clusters[static_cast<std::size_t>(c)];
    const std::size_t size = sizes[static_cast<std::size_t>(c)];
    cluster.reserve(size);
    // Near-duplicate flood: ⌈size/duplicates⌉ distinct samples, each
    // replicated with jitter ≤ 1e-9·R (stress for dedup-hostile summaries).
    const std::size_t distinct = (size + cfg.duplicates - 1) / cfg.duplicates;
    PointSet bases;
    bases.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
      const Point offset =
          sample_unit_ball(rng, cfg.dim, cfg.norm) * cfg.cluster_radius;
      bases.push_back(inst.planted_centers[static_cast<std::size_t>(c)] +
                      offset);
    }
    for (std::size_t i = 0; i < size; ++i) {
      Point p = bases[i / cfg.duplicates];
      if (cfg.duplicates > 1 && i % cfg.duplicates != 0)
        for (int dcoord = 0; dcoord < cfg.dim; ++dcoord)
          p[dcoord] += rng.uniform_real(-1e-9, 1e-9) * cfg.cluster_radius;
      cluster.push_back(p);
    }
  }

  // Outliers.  Spread: far along the negative first axis, pairwise
  // ≥ spacing apart.  Burst: one tight clump of diameter ≤ 2R at
  // −2·spacing — any ball covering the clump strands a ≥ z+1 cluster, so
  // the bracket certificate below still holds.
  PointSet outliers;
  outliers.reserve(z);
  for (std::size_t i = 0; i < z; ++i) {
    Point o(cfg.dim, 0.0);
    if (cfg.outliers == OutlierPattern::Burst) {
      o = sample_unit_ball(rng, cfg.dim, cfg.norm) * cfg.cluster_radius;
      o[0] -= 2.0 * spacing;
    } else {
      o[0] = -spacing * (2.0 + static_cast<double>(i));
      // jitter the remaining axes slightly so outliers are not collinear
      for (int dcoord = 1; dcoord < cfg.dim; ++dcoord)
        o[dcoord] = rng.uniform_real(0.0, cfg.cluster_radius);
    }
    outliers.push_back(o);
  }

  // Assemble: clusters (interleaved deterministically via shuffle) then
  // record outlier indices after shuffling everything together.
  std::vector<std::pair<Point, bool>> all;  // (point, is_outlier)
  all.reserve(cfg.n);
  for (const auto& cl : clusters)
    for (const auto& p : cl) all.emplace_back(p, false);
  for (const auto& o : outliers) all.emplace_back(o, true);
  // Fisher–Yates with our deterministic rng.
  for (std::size_t i = all.size(); i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    std::swap(all[i - 1], all[j]);
  }
  inst.points.reserve(all.size());
  inst.buffer = kernels::PointBuffer(cfg.dim);
  inst.buffer.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    inst.points.push_back({all[i].first, 1});
    inst.buffer.append(all[i].first);
    if (all[i].second) inst.outlier_indices.push_back(i);
  }

  // Certify the bracket.
  double hi = 0.0, lo = 0.0;
  for (int c = 0; c < cfg.k; ++c) {
    const auto& cl = clusters[static_cast<std::size_t>(c)];
    double far = 0.0;
    for (const auto& p : cl)
      far = std::max(far,
                     metric.dist(p, inst.planted_centers[static_cast<std::size_t>(c)]));
    hi = std::max(hi, far);
    lo = std::max(lo, diameter_lb(cl, metric) / 2.0);
  }
  inst.opt_hi = hi;
  inst.opt_lo = lo;
  KC_ENSURES(inst.opt_lo <= inst.opt_hi * (1.0 + 1e-12));
  // Bracket validity regime: opt_hi must be well below half the separation.
  KC_ENSURES(inst.opt_hi < spacing / 4.0);
  return inst;
}

PlantedInstance make_drifting(const PlantedConfig& cfg) {
  KC_EXPECTS(cfg.k >= 1);
  KC_EXPECTS(cfg.z >= 0);
  KC_EXPECTS(cfg.dim >= 1 && cfg.dim <= Point::kMaxDim);
  KC_EXPECTS(std::isfinite(cfg.cluster_radius) && cfg.cluster_radius > 0.0);
  KC_EXPECTS(cfg.separation >= 20.0);
  const auto z = static_cast<std::size_t>(cfg.z);
  KC_EXPECTS(cfg.n >= static_cast<std::size_t>(cfg.k) * (z + 1) + z);

  PlantedInstance inst;
  inst.config = cfg;
  Rng rng(cfg.seed);
  const Metric metric{cfg.norm};
  const double R = cfg.cluster_radius;
  const double spacing = cfg.separation * R;

  // Planted centers = drift midpoints on the usual lattice.
  inst.planted_centers = lattice_centers(cfg.k, cfg.dim, spacing);

  // Even split of the n − z cluster points; round-robin emission keeps the
  // per-cluster drift progress aligned with stream time.
  const std::size_t cluster_total = cfg.n - z;
  std::vector<std::size_t> sizes(static_cast<std::size_t>(cfg.k),
                                 cluster_total / static_cast<std::size_t>(cfg.k));
  for (std::size_t c = 0; c < cluster_total % static_cast<std::size_t>(cfg.k);
       ++c)
    ++sizes[c];

  // Cluster emissions in time order.  At stream progress λ ∈ [0, 1] cluster
  // c emits around anchor + (2λ − 1)·2R along its drift axis: the emission
  // center sweeps 4R end to end, so every member is within 2R + R = 3R of
  // the anchor and the standard certificate (separation 40R ≫ 4·3R) holds.
  std::vector<std::vector<Point>> clusters(static_cast<std::size_t>(cfg.k));
  std::vector<Point> emissions;
  emissions.reserve(cluster_total);
  {
    std::vector<std::size_t> emitted(static_cast<std::size_t>(cfg.k), 0);
    std::size_t c = 0;
    for (std::size_t u = 0; u < cluster_total; ++u) {
      while (emitted[c] >= sizes[c]) c = (c + 1) % sizes.size();
      const double lambda =
          cluster_total > 1
              ? static_cast<double>(u) / static_cast<double>(cluster_total - 1)
              : 0.5;
      Point p = sample_unit_ball(rng, cfg.dim, cfg.norm) * R +
                inst.planted_centers[c];
      p[static_cast<int>(c) % cfg.dim] += (2.0 * lambda - 1.0) * 2.0 * R;
      clusters[c].push_back(p);
      emissions.push_back(p);
      ++emitted[c];
      c = (c + 1) % sizes.size();
    }
  }

  // Spread outliers (same shape as make_planted's).
  PointSet outliers;
  outliers.reserve(z);
  for (std::size_t i = 0; i < z; ++i) {
    Point o(cfg.dim, 0.0);
    o[0] = -spacing * (2.0 + static_cast<double>(i));
    for (int dcoord = 1; dcoord < cfg.dim; ++dcoord)
      o[dcoord] = rng.uniform_real(0.0, R);
    outliers.push_back(o);
  }

  // Assemble in time order — no shuffle; outlier i surfaces at stream
  // position (i+1)·n/(z+1) (evenly interspersed, deterministic).
  inst.points.reserve(cfg.n);
  inst.buffer = kernels::PointBuffer(cfg.dim);
  inst.buffer.reserve(cfg.n);
  std::size_t next_outlier = 0;
  std::size_t next_cluster = 0;
  for (std::size_t t = 0; t < cfg.n; ++t) {
    const bool emit_outlier =
        next_outlier < z &&
        t + 1 == ((next_outlier + 1) * cfg.n) / (z + 1);
    const Point& p =
        emit_outlier ? outliers[next_outlier] : emissions[next_cluster];
    if (emit_outlier) {
      inst.outlier_indices.push_back(t);
      ++next_outlier;
    } else {
      ++next_cluster;
    }
    inst.points.push_back({p, 1});
    inst.buffer.append(p);
  }
  KC_ENSURES(next_outlier == z && next_cluster == cluster_total);

  // Certify the bracket exactly as make_planted does.
  double hi = 0.0, lo = 0.0;
  for (int c = 0; c < cfg.k; ++c) {
    const auto& cl = clusters[static_cast<std::size_t>(c)];
    double far = 0.0;
    for (const auto& p : cl)
      far = std::max(
          far,
          metric.dist(p, inst.planted_centers[static_cast<std::size_t>(c)]));
    hi = std::max(hi, far);
    lo = std::max(lo, diameter_lb(cl, metric) / 2.0);
  }
  inst.opt_hi = hi;
  inst.opt_lo = lo;
  KC_ENSURES(inst.opt_lo <= inst.opt_hi * (1.0 + 1e-12));
  KC_ENSURES(inst.opt_hi < spacing / 4.0);
  return inst;
}

WeightedSet make_uniform(std::size_t n, int dim, double side,
                         std::uint64_t seed) {
  KC_EXPECTS(std::isfinite(side) && "non-finite extent");
  Rng rng(seed);
  WeightedSet out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (int d = 0; d < dim; ++d) p[d] = rng.uniform_real(0.0, side);
    out.push_back({p, 1});
  }
  return out;
}

std::vector<GridPoint> discretize(const WeightedSet& pts, std::int64_t delta) {
  KC_EXPECTS(!pts.empty());
  Box box = Box::empty(pts.front().p.dim());
  for (const auto& wp : pts) box.extend(wp.p);
  const double span = std::max(box.max_side(), 1e-12);
  const double scale = static_cast<double>(delta - 1) / span;
  std::vector<GridPoint> out;
  out.reserve(pts.size());
  for (const auto& wp : pts) {
    Point scaled(wp.p.dim());
    for (int i = 0; i < wp.p.dim(); ++i)
      scaled[i] = (wp.p[i] - box.lo()[i]) * scale;
    out.push_back(snap_to_grid(scaled, delta));
  }
  return out;
}

}  // namespace kc
