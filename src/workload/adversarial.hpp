// Adversarial workload generators (robustness satellite of the fault PR).
//
// Three planted-instance families that stress the summaries in ways the
// default even/spread instance does not, while keeping the certified
// optimum bracket of generators.hpp (so tests can still assert quality
// bounds against opt_hi):
//
//  * outlier burst   — the z outliers form one tight clump of diameter
//    ≤ 2R.  To a local summary it looks exactly like a small cluster; the
//    outlier-guessing machinery must still refuse to spend a center on it
//    (any ball covering the clump strands a real ≥ z+1 cluster).
//  * near-duplicate flood — every distinct cluster point is replicated
//    into many copies jittered by ≤ 1e-9·R.  Stresses mini-ball coverings
//    and Gonzalez summaries whose size arguments assume spread inputs, and
//    any dedup-hostile bookkeeping (weights must add up exactly).
//  * heavy-tailed sizes — cluster masses follow a power law (first cluster
//    holds almost everything), the adversarial distribution for MPC
//    partitions: some machines see a single cluster, some see only tail.
//
// Scenarios are registered in `adversarial_scenarios()`; test_engine runs
// every registered pipeline against every scenario.

#pragma once

#include <cstdint>
#include <vector>

#include "workload/generators.hpp"

namespace kc {

/// The z outliers as one tight clump (OutlierPattern::Burst).
[[nodiscard]] PlantedInstance make_outlier_burst(std::size_t n, int k,
                                                 std::int64_t z, int dim,
                                                 Norm norm,
                                                 std::uint64_t seed);

/// Every cluster point replicated ~8× with ≤ 1e-9·R jitter.
[[nodiscard]] PlantedInstance make_duplicate_flood(std::size_t n, int k,
                                                   std::int64_t z, int dim,
                                                   Norm norm,
                                                   std::uint64_t seed);

/// Power-law cluster masses: cluster c gets a share ∝ (c+1)^−2 of the
/// free mass on top of its mandatory z+1 points.
[[nodiscard]] PlantedInstance make_heavy_tailed(std::size_t n, int k,
                                                std::int64_t z, int dim,
                                                Norm norm, std::uint64_t seed);

/// Drifting emission centers in time order (generators.hpp make_drifting):
/// the anti-prefix-calibration stream for one-pass summaries.
[[nodiscard]] PlantedInstance make_drifting_centers(std::size_t n, int k,
                                                    std::int64_t z, int dim,
                                                    Norm norm,
                                                    std::uint64_t seed);

/// A named adversarial instance family.
struct AdversarialScenario {
  const char* name;
  PlantedInstance (*make)(std::size_t n, int k, std::int64_t z, int dim,
                          Norm norm, std::uint64_t seed);
};

/// All registered scenarios, in stable order.
[[nodiscard]] const std::vector<AdversarialScenario>& adversarial_scenarios();

}  // namespace kc
