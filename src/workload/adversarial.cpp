#include "workload/adversarial.hpp"

#include <cmath>

#include "util/check.hpp"

namespace kc {

namespace {

PlantedConfig base_config(std::size_t n, int k, std::int64_t z, int dim,
                          Norm norm, std::uint64_t seed) {
  PlantedConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.z = z;
  cfg.dim = dim;
  cfg.norm = norm;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

PlantedInstance make_outlier_burst(std::size_t n, int k, std::int64_t z,
                                   int dim, Norm norm, std::uint64_t seed) {
  PlantedConfig cfg = base_config(n, k, z, dim, norm, seed);
  cfg.outliers = OutlierPattern::Burst;
  return make_planted(cfg);
}

PlantedInstance make_duplicate_flood(std::size_t n, int k, std::int64_t z,
                                     int dim, Norm norm, std::uint64_t seed) {
  PlantedConfig cfg = base_config(n, k, z, dim, norm, seed);
  cfg.duplicates = 8;
  return make_planted(cfg);
}

PlantedInstance make_heavy_tailed(std::size_t n, int k, std::int64_t z,
                                  int dim, Norm norm, std::uint64_t seed) {
  PlantedConfig cfg = base_config(n, k, z, dim, norm, seed);
  const auto zu = static_cast<std::size_t>(z);
  const std::size_t mandatory = static_cast<std::size_t>(k) * (zu + 1);
  KC_EXPECTS(n >= mandatory + zu);
  const std::size_t free_mass = n - zu - mandatory;

  // Power-law shares p_c ∝ (c+1)^−2 of the free mass; remainders go to the
  // head so the tail clusters stay at their mandatory minimum.
  std::vector<double> shares(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (int c = 0; c < k; ++c) {
    shares[static_cast<std::size_t>(c)] =
        1.0 / ((static_cast<double>(c) + 1.0) * (static_cast<double>(c) + 1.0));
    sum += shares[static_cast<std::size_t>(c)];
  }
  cfg.cluster_sizes.assign(static_cast<std::size_t>(k), zu + 1);
  std::size_t given = 0;
  for (int c = 0; c < k; ++c) {
    const auto extra = static_cast<std::size_t>(
        std::floor(static_cast<double>(free_mass) *
                   shares[static_cast<std::size_t>(c)] / sum));
    cfg.cluster_sizes[static_cast<std::size_t>(c)] += extra;
    given += extra;
  }
  cfg.cluster_sizes[0] += free_mass - given;
  return make_planted(cfg);
}

PlantedInstance make_drifting_centers(std::size_t n, int k, std::int64_t z,
                                      int dim, Norm norm, std::uint64_t seed) {
  return make_drifting(base_config(n, k, z, dim, norm, seed));
}

const std::vector<AdversarialScenario>& adversarial_scenarios() {
  static const std::vector<AdversarialScenario> scenarios = {
      {"outlier-burst", &make_outlier_burst},
      {"duplicate-flood", &make_duplicate_flood},
      {"heavy-tailed", &make_heavy_tailed},
      {"drifting-centers", &make_drifting_centers},
  };
  return scenarios;
}

}  // namespace kc
