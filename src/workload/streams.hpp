// Stream scripts: insertion-only orders, fully dynamic insert/delete
// scripts over [Δ]^d, and sliding-window arrival sequences.

#pragma once

#include <cstdint>
#include <vector>

#include "geometry/grid.hpp"
#include "geometry/point.hpp"
#include "util/rng.hpp"

namespace kc {

/// One fully-dynamic stream element (strict turnstile: the alive multiset
/// never goes negative).
struct GridUpdate {
  GridPoint p;
  int sign = +1;  ///< +1 insert, −1 delete
};

using DynamicScript = std::vector<GridUpdate>;

/// Builds a dynamic script whose *final* alive multiset equals `final_set`:
/// inserts all of `final_set` plus `chaff` extra points (drawn uniformly
/// from [Δ]^dim), then deletes exactly the chaff, with insert/delete
/// operations interleaved at random subject to the turnstile constraint.
/// This lets a test compare the sketch state after the full script against
/// an offline computation on `final_set`.
[[nodiscard]] DynamicScript make_dynamic_script(
    const std::vector<GridPoint>& final_set, std::size_t chaff,
    std::int64_t delta, int dim, std::uint64_t seed);

/// Random arrival order for an insertion-only stream: a permutation of
/// 0..n-1 (indices into the caller's point set).
[[nodiscard]] std::vector<std::size_t> shuffled_order(std::size_t n,
                                                      std::uint64_t seed);

/// Adversarial arrival order for the streaming algorithm: outliers first
/// (forces the algorithm to hold them), then cluster points sorted along
/// the first axis (keeps re-clustering pressure high).
[[nodiscard]] std::vector<std::size_t> adversarial_order(
    const std::vector<Point>& pts, const std::vector<std::size_t>& outliers);

}  // namespace kc
