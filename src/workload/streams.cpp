#include "workload/streams.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kc {

DynamicScript make_dynamic_script(const std::vector<GridPoint>& final_set,
                                  std::size_t chaff, std::int64_t delta,
                                  int dim, std::uint64_t seed) {
  Rng rng(seed);
  // Chaff points, drawn uniformly from the universe.
  std::vector<GridPoint> extra;
  extra.reserve(chaff);
  for (std::size_t i = 0; i < chaff; ++i) {
    GridPoint g;
    g.dim = dim;
    for (int d = 0; d < dim; ++d)
      g.c[static_cast<std::size_t>(d)] =
          static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(delta)));
    extra.push_back(g);
  }

  // Operations: insert(final) ∪ insert(chaff) ∪ delete(chaff).  Emit by
  // simulation so a delete can only follow its matching insert (strict
  // turnstile validity, even with duplicate chaff coordinates).
  std::vector<std::pair<GridPoint, bool>> inserts;  // (point, is_chaff)
  inserts.reserve(final_set.size() + chaff);
  for (const auto& g : final_set) inserts.emplace_back(g, false);
  for (const auto& g : extra) inserts.emplace_back(g, true);
  for (std::size_t i = inserts.size(); i > 1; --i)
    std::swap(inserts[i - 1], inserts[rng.uniform(i)]);

  DynamicScript script;
  script.reserve(final_set.size() + 2 * chaff);
  std::vector<GridPoint> alive_chaff;  // inserted but not yet deleted
  std::size_t next_insert = 0;
  while (next_insert < inserts.size() || !alive_chaff.empty()) {
    const bool can_insert = next_insert < inserts.size();
    const bool can_delete = !alive_chaff.empty();
    if (can_delete && (!can_insert || rng.bernoulli(0.4))) {
      const std::size_t pick = rng.uniform(alive_chaff.size());
      script.push_back({alive_chaff[pick], -1});
      std::swap(alive_chaff[pick], alive_chaff.back());
      alive_chaff.pop_back();
    } else {
      KC_DCHECK(can_insert);
      const auto& [g, is_chaff] = inserts[next_insert++];
      script.push_back({g, +1});
      if (is_chaff) alive_chaff.push_back(g);
    }
  }
  return script;
}

std::vector<std::size_t> shuffled_order(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.uniform(i)]);
  return order;
}

std::vector<std::size_t> adversarial_order(
    const std::vector<Point>& pts, const std::vector<std::size_t>& outliers) {
  std::vector<bool> is_outlier(pts.size(), false);
  for (auto i : outliers) is_outlier[i] = true;

  std::vector<std::size_t> order;
  order.reserve(pts.size());
  for (auto i : outliers) order.push_back(i);

  std::vector<std::size_t> rest;
  rest.reserve(pts.size() - outliers.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (!is_outlier[i]) rest.push_back(i);
  std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
    return pts[a][0] < pts[b][0];
  });
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

}  // namespace kc
