// Workload generators with certified optimum brackets.
//
// Computing optk,z exactly is infeasible at benchmark scale, so the
// experiment harness plants instances whose optimum is certified to lie in
// a bracket [opt_lo, opt_hi]:
//
//  * k clusters of radius ≤ R, cluster centers pairwise ≥ `separation`·R
//    apart, each holding ≥ z+1 points;
//  * exactly z outlier points, ≥ `separation`·R away from every cluster and
//    from each other.
//
// opt_hi = max over clusters of the distance from the planted center to its
// farthest member (covering the clusters with the planted centers and
// declaring the planted outliers leaves outlier weight exactly z).
// opt_lo = max over clusters of half a certified diameter lower bound: in
// any solution of radius < separation·R/2 each ball touches one cluster
// only, the z planted outliers exhaust the budget, so every cluster must be
// fully covered by a single ball of radius ≥ diam/2.
//
// Tests and benches assert algorithm guarantees against these brackets.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "geometry/grid.hpp"
#include "util/rng.hpp"

namespace kc {

/// Where the z planted outliers go.
enum class OutlierPattern : std::uint8_t {
  Spread,  ///< pairwise ≥ separation·R apart along the negative first axis
  Burst,   ///< one tight clump of diameter ≤ 2R (adversarial: looks like a
           ///< (z)-point cluster, but declaring it a cluster strands a real
           ///< cluster of ≥ z+1 points, so the bracket stays certified)
};

struct PlantedConfig {
  std::size_t n = 1000;   ///< total points incl. outliers
  int k = 3;
  std::int64_t z = 10;
  int dim = 2;
  double cluster_radius = 1.0;
  double separation = 40.0;  ///< × cluster_radius between cluster centers
  Norm norm = Norm::L2;
  std::uint64_t seed = 1;
  /// Cluster size skew: 0 = even split, 1 = strongly skewed (first cluster
  /// dominates).  Exercises the adversarial-distribution MPC cases.
  double skew = 0.0;
  /// Explicit per-cluster sizes (k entries, each ≥ z+1, summing to n − z).
  /// Empty = derive the split from `skew`.  Lets adversarial workloads
  /// plant heavy-tailed cluster-mass distributions exactly.
  std::vector<std::size_t> cluster_sizes;
  /// Outlier placement; see `OutlierPattern`.
  OutlierPattern outliers = OutlierPattern::Spread;
  /// Near-duplicate flood: every sampled cluster point is replicated into
  /// `duplicates` copies jittered by ≤ 1e-9·R (1 = no duplication).  All
  /// copies carry unit weight; the bracket is certified over the actual
  /// points, so it stays valid.
  std::size_t duplicates = 1;
};

struct PlantedInstance {
  WeightedSet points;             ///< unit weights; clusters then outliers
  /// Canonical SoA mirror of `points` (same order) — what the engine
  /// pipelines and kernels consume; `points` is the AoS boundary view.
  kernels::PointBuffer buffer;
  PointSet planted_centers;
  std::vector<std::size_t> outlier_indices;  ///< indices into `points`
  double opt_lo = 0.0;
  double opt_hi = 0.0;
  PlantedConfig config;
};

/// Builds a planted instance.  Requires n ≥ k·(z+1) + z so that every
/// cluster can hold ≥ z+1 points.
[[nodiscard]] PlantedInstance make_planted(const PlantedConfig& cfg);

/// Time-ordered drifting-centers instance: cluster c's *emission* center
/// moves along a per-cluster axis by 4·R over the course of the stream, and
/// points are emitted in time order (clusters round-robin, outliers
/// interspersed evenly) with NO shuffle — early prefixes see a different
/// distribution than late ones, the adversarial regime for one-pass
/// summaries whose thresholds are calibrated on a prefix.  The planted
/// center of each cluster is its drift midpoint; every member stays within
/// 3·R of it (2·R drift half-length + R sample radius), so with the default
/// separation of 40·R the usual bracket certificate applies unchanged.
/// `cfg.order`-style shuffling must NOT be layered on top (the drift is the
/// point); consume it with an empty arrival order.
[[nodiscard]] PlantedInstance make_drifting(const PlantedConfig& cfg);

/// Uniform noise in [0, side]^dim — used where no optimum certificate is
/// needed (sketch stress tests, spread sweeps).
[[nodiscard]] WeightedSet make_uniform(std::size_t n, int dim, double side,
                                       std::uint64_t seed);

/// Discretizes a real instance onto the integer grid [Δ]^dim: coordinates
/// scaled so the bounding box fits, then rounded.  Returns grid points in
/// the same order.  Collisions (distinct points mapping to one cell of G_0)
/// are allowed — the dynamic sketches count multiplicities.
[[nodiscard]] std::vector<GridPoint> discretize(const WeightedSet& pts,
                                                std::int64_t delta);

}  // namespace kc
