// ℓ0 / F0 estimation for strict-turnstile streams — the stand-in for the
// Kane–Nelson–Woodruff distinct-elements estimator [32] (DESIGN.md
// substitution #4; Algorithm 5 uses it through Lemma 24 to pick the finest
// grid with at most s non-empty cells).
//
// Level sampling: a t-wise-independent hash assigns each key a geometric
// level (key survives level ℓ with probability 2^{-ℓ}, nested).  Each level
// keeps a small s₀-sparse recovery sketch, s₀ = Θ(1/ε²).  The estimate is
// count(ℓ*)·2^{ℓ*} at the first level that decodes completely: its expected
// occupancy is between s₀/2 and s₀, so the subsample concentrates to a
// (1±O(ε)) estimate.  Deletions are handled for free because the level of
// a key is a function of the key alone.

#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sparse_recovery.hpp"

namespace kc::sketch {

class F0Estimator {
 public:
  /// eps = target relative accuracy; levels cover universes up to 2^max_level.
  F0Estimator(double eps, std::uint64_t seed, int max_level = 40);

  void update(std::uint64_t key, std::int64_t delta) noexcept;

  /// (1±O(ε))-estimate of |{key : count(key) ≠ 0}|; exact when the count is
  /// at most s₀.  Returns −1 when no level decodes (cannot happen for
  /// max_level ≥ log2(F0/s₀); kept as an explicit failure signal).
  [[nodiscard]] double estimate() const;

  [[nodiscard]] std::size_t sample_capacity() const noexcept { return s0_; }
  [[nodiscard]] std::size_t words() const;

 private:
  std::size_t s0_;
  PolyHash level_hash_;
  std::vector<SparseRecovery> levels_;
};

}  // namespace kc::sketch
