// 1-sparse detection cell for strict-turnstile streams.
//
// The classic (count, key-sum, fingerprint) triple: after a stream of
// updates (a, ξ) with non-negative final frequencies, the cell can decide
// whether the current frequency vector restricted to it is exactly
// 1-sparse, and if so recover (key, count) exactly.  The fingerprint
// Σ c_a · r^{embed(a)} (random r, Schwartz–Zippel) makes false positives
// vanishingly unlikely; buckets of the s-sparse recovery structure are made
// of these cells.

#pragma once

#include <cstdint>
#include <optional>

#include "sketch/field.hpp"

namespace kc::sketch {

class OneSparseCell {
 public:
  OneSparseCell() = default;
  /// r = fingerprint evaluation point (shared across cells of a sketch).
  explicit OneSparseCell(std::uint64_t r) : r_(r) {}

  void update(std::uint64_t key, std::int64_t delta) noexcept;

  /// Merge-subtract: remove `count` copies of `key` (used by peeling).
  void remove(std::uint64_t key, std::int64_t count) noexcept {
    update(key, -count);
  }

  [[nodiscard]] bool empty() const noexcept {
    return count_ == 0 && keysum_ == 0 && fingerprint_ == 0;
  }

  struct Recovered {
    std::uint64_t key = 0;
    std::int64_t count = 0;
  };

  /// If the cell currently holds exactly one distinct key with positive
  /// count, returns it; otherwise nullopt.  Sound for strict-turnstile
  /// vectors up to fingerprint collisions (probability < 2n/p per test).
  [[nodiscard]] std::optional<Recovered> recover() const noexcept;

  /// Words of storage (count + keysum + fingerprint).
  [[nodiscard]] static constexpr std::size_t words() noexcept { return 3; }

 private:
  std::uint64_t r_ = 3;            // evaluation point
  std::int64_t count_ = 0;         // Σ ξ
  std::uint64_t keysum_ = 0;       // Σ ξ·embed(key)  (mod p)
  std::uint64_t fingerprint_ = 0;  // Σ ξ·r^{embed(key)}  (mod p)
};

}  // namespace kc::sketch
