#include "sketch/one_sparse.hpp"

namespace kc::sketch {

namespace {
// ξ mod p for possibly-negative ξ.
std::uint64_t signed_mod(std::int64_t v) noexcept {
  if (v >= 0) return static_cast<std::uint64_t>(v) % kPrime;
  const std::uint64_t a = static_cast<std::uint64_t>(-v) % kPrime;
  return a == 0 ? 0 : kPrime - a;
}
}  // namespace

void OneSparseCell::update(std::uint64_t key, std::int64_t delta) noexcept {
  const std::uint64_t x = embed_key(key);
  const std::uint64_t d = signed_mod(delta);
  count_ += delta;
  keysum_ = add_mod(keysum_, mul_mod(d, x));
  fingerprint_ = add_mod(fingerprint_, mul_mod(d, pow_mod(r_, x)));
}

std::optional<OneSparseCell::Recovered> OneSparseCell::recover()
    const noexcept {
  if (count_ <= 0) return std::nullopt;
  const std::uint64_t c = static_cast<std::uint64_t>(count_) % kPrime;
  if (c == 0) return std::nullopt;
  // Candidate embedded key: keysum / count (mod p).
  const std::uint64_t x = mul_mod(keysum_, inv_mod(c));
  if (x == 0) return std::nullopt;
  // Verify against the fingerprint.
  if (fingerprint_ != mul_mod(c, pow_mod(r_, x))) return std::nullopt;
  return Recovered{x - 1, count_};  // embed_key(key) = key + 1 for key < p−1
}

}  // namespace kc::sketch
