#include "sketch/power_sum.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kc::sketch {

namespace {

std::uint64_t signed_mod(std::int64_t v) noexcept {
  if (v >= 0) return static_cast<std::uint64_t>(v) % kPrime;
  const std::uint64_t a = static_cast<std::uint64_t>(-v) % kPrime;
  return a == 0 ? 0 : kPrime - a;
}

// Horner evaluation of a polynomial given by coefficients c[0..deg]
// (c[i] multiplies x^i).
std::uint64_t eval_poly(const std::vector<std::uint64_t>& c,
                        std::uint64_t x) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = c.size(); i-- > 0;) {
    acc = mul_mod(acc, x);
    acc = add_mod(acc, c[i]);
  }
  return acc;
}

// Solves the t×t system  Σ_i X_i^j · w_i = S_j  (j = 0..t−1) by Gaussian
// elimination mod p.  Returns empty on singularity (distinct X_i make the
// Vandermonde system regular, so this only fires on invalid input).
std::vector<std::uint64_t> solve_vandermonde(
    const std::vector<std::uint64_t>& xs,
    const std::vector<std::uint64_t>& rhs) {
  const std::size_t t = xs.size();
  std::vector<std::vector<std::uint64_t>> a(t,
                                            std::vector<std::uint64_t>(t + 1));
  for (std::size_t j = 0; j < t; ++j) {
    for (std::size_t i = 0; i < t; ++i) a[j][i] = pow_mod(xs[i], j);
    a[j][t] = rhs[j];
  }
  for (std::size_t col = 0; col < t; ++col) {
    std::size_t pivot = col;
    while (pivot < t && a[pivot][col] == 0) ++pivot;
    if (pivot == t) return {};
    std::swap(a[col], a[pivot]);
    const std::uint64_t inv = inv_mod(a[col][col]);
    for (std::size_t c = col; c <= t; ++c) a[col][c] = mul_mod(a[col][c], inv);
    for (std::size_t row = 0; row < t; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const std::uint64_t f = a[row][col];
      for (std::size_t c = col; c <= t; ++c)
        a[row][c] = sub_mod(a[row][c], mul_mod(f, a[col][c]));
    }
  }
  std::vector<std::uint64_t> w(t);
  for (std::size_t i = 0; i < t; ++i) w[i] = a[i][t];
  return w;
}

}  // namespace

PowerSumSketch::PowerSumSketch(std::size_t capacity)
    : s_(std::max<std::size_t>(capacity, 1)) {
  syndromes_.assign(2 * s_, 0);
}

void PowerSumSketch::update(std::uint64_t key, std::int64_t delta) noexcept {
  const std::uint64_t x = embed_key(key);
  const std::uint64_t d = signed_mod(delta);
  std::uint64_t power = 1;  // X^j
  for (auto& sj : syndromes_) {
    sj = add_mod(sj, mul_mod(d, power));
    power = mul_mod(power, x);
  }
}

bool PowerSumSketch::empty() const noexcept {
  return std::all_of(syndromes_.begin(), syndromes_.end(),
                     [](std::uint64_t v) { return v == 0; });
}

std::vector<std::uint64_t> PowerSumSketch::berlekamp_massey() const {
  const auto& S = syndromes_;
  std::vector<std::uint64_t> C{1}, B{1};
  std::uint64_t b = 1;
  std::size_t L = 0, m = 1;
  for (std::size_t n = 0; n < S.size(); ++n) {
    // Discrepancy d = S[n] + Σ_{i=1..L} C[i]·S[n−i].
    std::uint64_t d = S[n];
    for (std::size_t i = 1; i <= L && i < C.size(); ++i)
      d = add_mod(d, mul_mod(C[i], S[n - i]));
    if (d == 0) {
      ++m;
      continue;
    }
    const std::uint64_t coef = mul_mod(d, inv_mod(b));
    if (2 * L <= n) {
      std::vector<std::uint64_t> T = C;
      if (C.size() < B.size() + m) C.resize(B.size() + m, 0);
      for (std::size_t i = 0; i < B.size(); ++i)
        C[i + m] = sub_mod(C[i + m], mul_mod(coef, B[i]));
      L = n + 1 - L;
      B = std::move(T);
      b = d;
      m = 1;
    } else {
      if (C.size() < B.size() + m) C.resize(B.size() + m, 0);
      for (std::size_t i = 0; i < B.size(); ++i)
        C[i + m] = sub_mod(C[i + m], mul_mod(coef, B[i]));
      ++m;
    }
  }
  C.resize(L + 1, 0);
  return C;  // connection polynomial, degree L
}

std::optional<std::vector<PowerSumSketch::Item>> PowerSumSketch::finish(
    std::vector<std::uint64_t> support) const {
  // Weights from the first |support| syndromes.
  std::vector<std::uint64_t> xs;
  xs.reserve(support.size());
  for (auto key : support) xs.push_back(embed_key(key));
  std::vector<std::uint64_t> rhs(syndromes_.begin(),
                                 syndromes_.begin() +
                                     static_cast<std::ptrdiff_t>(support.size()));
  const std::vector<std::uint64_t> w = solve_vandermonde(xs, rhs);
  if (w.size() != support.size()) return std::nullopt;

  // Verify against all 2s syndromes.
  std::vector<std::uint64_t> check(syndromes_.size(), 0);
  for (std::size_t i = 0; i < support.size(); ++i) {
    std::uint64_t power = 1;
    for (auto& cj : check) {
      cj = add_mod(cj, mul_mod(w[i], power));
      power = mul_mod(power, xs[i]);
    }
  }
  if (check != syndromes_) return std::nullopt;

  std::vector<Item> out;
  out.reserve(support.size());
  for (std::size_t i = 0; i < support.size(); ++i) {
    if (w[i] == 0) continue;
    // Strict turnstile: counts are small non-negative integers ≪ p.
    out.push_back({support[i], static_cast<std::int64_t>(w[i])});
  }
  std::sort(out.begin(), out.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  return out;
}

std::optional<std::vector<PowerSumSketch::Item>> PowerSumSketch::decode(
    std::uint64_t universe) const {
  if (empty()) return std::vector<Item>{};
  const std::vector<std::uint64_t> C = berlekamp_massey();
  const std::size_t L = C.size() - 1;
  if (L == 0 || L > s_) return std::nullopt;

  // Chien search: x is in the support iff C(X_x^{-1}) = 0.
  std::vector<std::uint64_t> support;
  for (std::uint64_t x = 0; x < universe; ++x) {
    if (eval_poly(C, inv_mod(embed_key(x))) == 0) {
      support.push_back(x);
      if (support.size() > L) return std::nullopt;
    }
  }
  if (support.size() != L) return std::nullopt;
  return finish(std::move(support));
}

std::optional<std::vector<PowerSumSketch::Item>>
PowerSumSketch::decode_candidates(
    const std::vector<std::uint64_t>& candidates) const {
  if (empty()) return std::vector<Item>{};
  const std::vector<std::uint64_t> C = berlekamp_massey();
  const std::size_t L = C.size() - 1;
  if (L == 0 || L > s_) return std::nullopt;

  std::vector<std::uint64_t> support;
  for (std::uint64_t x : candidates) {
    if (eval_poly(C, inv_mod(embed_key(x))) == 0) {
      support.push_back(x);
      if (support.size() > L) return std::nullopt;
    }
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  if (support.size() != L) return std::nullopt;
  return finish(std::move(support));
}

}  // namespace kc::sketch
