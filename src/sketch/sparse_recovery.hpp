// s-sparse recovery sketch for strict-turnstile streams — the stand-in for
// the Barkay–Porat–Shalem s-sample recovery structure [4] (DESIGN.md
// substitution #3; same black-box guarantee used by the paper's Lemma 22).
//
// Structure: `rows` independent hash rows, each with `2s` buckets of
// 1-sparse cells; decoding peels singleton buckets (recover → subtract
// everywhere → repeat), exactly as in invertible Bloom lookup tables.
// When the frequency vector has ≤ s non-zero keys, decoding recovers every
// (key, count) pair exactly with probability 1 − δ for rows = Θ(log(1/δ)).
// With more than s keys it either returns a partial sample or reports
// failure — Algorithm 5 only queries the grid level whose non-empty-cell
// count is below s.
//
// Space: rows · 2s cells · 3 words + O(rows) hash state.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sketch/hashing.hpp"
#include "sketch/one_sparse.hpp"

namespace kc::sketch {

class SparseRecovery {
 public:
  /// capacity = s; rows defaults to 4 (δ ≈ 2^-Θ(rows)).
  SparseRecovery(std::size_t capacity, std::uint64_t seed, int rows = 4);

  void update(std::uint64_t key, std::int64_t delta) noexcept;

  struct Item {
    std::uint64_t key = 0;
    std::int64_t count = 0;
  };
  struct DecodeResult {
    std::vector<Item> items;  ///< recovered (key, exact count) pairs
    bool complete = false;    ///< true iff the residual sketch is empty
  };

  /// Peeling decode.  Non-destructive (works on a copy of the cells).
  [[nodiscard]] DecodeResult decode() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t words() const noexcept {
    return cells_.size() * OneSparseCell::words() + hashes_.size() * 8 + 4;
  }

 private:
  std::size_t capacity_;
  std::size_t buckets_;  // per row
  std::vector<PolyHash> hashes_;
  std::vector<OneSparseCell> cells_;  // rows × buckets, row-major

  [[nodiscard]] std::size_t cell_index(std::size_t row,
                                       std::uint64_t key) const noexcept;
};

}  // namespace kc::sketch
