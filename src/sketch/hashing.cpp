#include "sketch/hashing.hpp"

#include "util/check.hpp"

namespace kc::sketch {

PolyHash::PolyHash(int independence, std::uint64_t seed) {
  KC_EXPECTS(independence >= 1);
  Rng rng(seed);
  coeffs_.resize(static_cast<std::size_t>(independence));
  for (auto& c : coeffs_) c = rng() % kPrime;
  // The leading coefficient of a degree-(t−1) polynomial should be nonzero
  // so the family has full degree (harmless either way for independence).
  if (coeffs_.size() > 1 && coeffs_.front() == 0) coeffs_.front() = 1;
}

std::uint64_t PolyHash::operator()(std::uint64_t key) const noexcept {
  const std::uint64_t x = embed_key(key);
  std::uint64_t acc = 0;
  for (const std::uint64_t c : coeffs_) {
    acc = mul_mod(acc, x);
    acc = add_mod(acc, c);
  }
  return acc;
}

int PolyHash::level(std::uint64_t key, int max_level) const noexcept {
  const std::uint64_t h = (*this)(key);
  // unit(key) < 2^{-ℓ}  ⇔  h < p / 2^ℓ.
  int lvl = 0;
  std::uint64_t threshold = kPrime >> 1;
  while (lvl < max_level && h < threshold) {
    ++lvl;
    threshold >>= 1;
  }
  return lvl;
}

}  // namespace kc::sketch
