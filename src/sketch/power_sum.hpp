// Deterministic s-sparse recovery via power sums (Prony / Reed–Solomon
// syndrome decoding) — the determinisation the paper sketches at the end of
// §1: "we can make the s-sample recovery sketch deterministic by using the
// Vandermonde matrix".
//
// The sketch maintains the 2s syndromes  S_j = Σ_x c_x · X_x^j  (mod p),
// X_x = embed(x), j = 0..2s−1 — exactly the products of the frequency
// vector with a Vandermonde measurement matrix.  If at most s keys have
// non-zero count, the support is recovered *deterministically*:
// Berlekamp–Massey finds the minimal connection polynomial whose roots are
// the X_x^{-1}; root finding enumerates the universe (a Chien search —
// practical for the demo universes this extension targets, as the paper
// itself notes the missing piece is a *deterministic sparsity test*, not
// the recovery); the counts follow from solving the Vandermonde system.
// decode() verifies the recovered set against all 2s syndromes and reports
// failure when the vector was not s-sparse.
//
// Space: 2s words.  Update cost: O(s) field ops.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sketch/field.hpp"

namespace kc::sketch {

class PowerSumSketch {
 public:
  explicit PowerSumSketch(std::size_t capacity);

  void update(std::uint64_t key, std::int64_t delta) noexcept;

  struct Item {
    std::uint64_t key = 0;
    std::int64_t count = 0;
  };

  /// Deterministic decode with a Chien search over keys [0, universe).
  /// Returns nullopt when the stream is not s-sparse (verification failure)
  /// or the linear algebra degenerates (cannot happen for valid strict-
  /// turnstile inputs within capacity).
  [[nodiscard]] std::optional<std::vector<Item>> decode(
      std::uint64_t universe) const;

  /// Decode against an explicit candidate key list (when the caller knows a
  /// superset of the support — avoids the universe scan).
  [[nodiscard]] std::optional<std::vector<Item>> decode_candidates(
      const std::vector<std::uint64_t>& candidates) const;

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return s_; }
  [[nodiscard]] std::size_t words() const noexcept { return syndromes_.size(); }

 private:
  std::size_t s_;
  std::vector<std::uint64_t> syndromes_;  // S_0..S_{2s-1}

  [[nodiscard]] std::vector<std::uint64_t> berlekamp_massey() const;
  [[nodiscard]] std::optional<std::vector<Item>> finish(
      std::vector<std::uint64_t> support) const;
};

}  // namespace kc::sketch
