// t-wise independent hashing over F_p (polynomial hash family).
//
// A degree-(t−1) polynomial with uniform coefficients evaluated at the key
// is a t-wise independent family — the independence level the s-sample
// recovery analysis of Barkay–Porat–Shalem [4] requires (Θ(log(1/δ))-wise).

#pragma once

#include <cstdint>
#include <vector>

#include "sketch/field.hpp"
#include "util/rng.hpp"

namespace kc::sketch {

class PolyHash {
 public:
  /// `independence` = t ≥ 1; coefficients drawn deterministically from seed.
  PolyHash(int independence, std::uint64_t seed);

  /// Hash value in [0, p).
  [[nodiscard]] std::uint64_t operator()(std::uint64_t key) const noexcept;

  /// Hash value in [0, range), range ≥ 1 (negligible modulo bias: p ≫ range).
  [[nodiscard]] std::uint64_t bucket(std::uint64_t key,
                                     std::uint64_t range) const noexcept {
    return (*this)(key) % range;
  }

  /// Hash value in [0, 1).
  [[nodiscard]] double unit(std::uint64_t key) const noexcept {
    return static_cast<double>((*this)(key)) /
           static_cast<double>(kPrime);
  }

  /// Number of leading "subsample levels" the key survives: the largest
  /// ℓ ≥ 0 with unit(key) < 2^{-ℓ}, capped at `max_level`.  Used by the F0
  /// estimator's nested level sampling.
  [[nodiscard]] int level(std::uint64_t key, int max_level) const noexcept;

  [[nodiscard]] int independence() const noexcept {
    return static_cast<int>(coeffs_.size());
  }

 private:
  std::vector<std::uint64_t> coeffs_;  // degree t−1 … 0
};

}  // namespace kc::sketch
