// Arithmetic in the prime field F_p, p = 2^61 − 1 (Mersenne).
//
// All sketch fingerprints, hash families, and the deterministic power-sum
// recovery operate over this field: p is large enough that point counts
// (≤ n < 2^40) and cell ids (< 2^60) embed injectively, and the Mersenne
// structure gives fast reduction.

#pragma once

#include <cstdint>

namespace kc::sketch {

inline constexpr std::uint64_t kPrime = (std::uint64_t{1} << 61) - 1;

/// Reduction of a 128-bit value modulo 2^61−1.
[[nodiscard]] constexpr std::uint64_t reduce128(__uint128_t x) noexcept {
  // Fold twice: x = hi·2^61 + lo ≡ hi + lo (mod p).
  std::uint64_t lo = static_cast<std::uint64_t>(x) & kPrime;
  std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
  std::uint64_t r = lo + hi;  // ≤ 2p, two conditional subtractions reduce
  if (r >= kPrime) r -= kPrime;
  if (r >= kPrime) r -= kPrime;
  return r;
}

[[nodiscard]] constexpr std::uint64_t add_mod(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  std::uint64_t r = a + b;  // a, b < 2^61 so no overflow in 64 bits
  if (r >= kPrime) r -= kPrime;
  return r;
}

[[nodiscard]] constexpr std::uint64_t sub_mod(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  return a >= b ? a - b : a + kPrime - b;
}

[[nodiscard]] constexpr std::uint64_t mul_mod(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  return reduce128(static_cast<__uint128_t>(a) * b);
}

[[nodiscard]] constexpr std::uint64_t pow_mod(std::uint64_t base,
                                              std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  base %= kPrime;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base);
    base = mul_mod(base, base);
    exp >>= 1;
  }
  return result;
}

/// Multiplicative inverse (a must be non-zero mod p).
[[nodiscard]] constexpr std::uint64_t inv_mod(std::uint64_t a) noexcept {
  return pow_mod(a, kPrime - 2);
}

/// Canonical embedding of a 64-bit key into [1, p): keys must be < p − 1.
[[nodiscard]] constexpr std::uint64_t embed_key(std::uint64_t key) noexcept {
  return (key % (kPrime - 1)) + 1;
}

}  // namespace kc::sketch
