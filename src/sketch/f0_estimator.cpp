#include "sketch/f0_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kc::sketch {

F0Estimator::F0Estimator(double eps, std::uint64_t seed, int max_level)
    : s0_(static_cast<std::size_t>(
          std::max(16.0, std::ceil(16.0 / (eps * eps))))),
      level_hash_(/*independence=*/7, splitmix64(seed)) {
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  KC_EXPECTS(max_level >= 1);
  Rng rng(splitmix64(seed ^ 0x9e3779b97f4a7c15ULL));
  levels_.reserve(static_cast<std::size_t>(max_level) + 1);
  for (int l = 0; l <= max_level; ++l)
    levels_.emplace_back(s0_, rng(), /*rows=*/4);
}

void F0Estimator::update(std::uint64_t key, std::int64_t delta) noexcept {
  const int lvl =
      level_hash_.level(key, static_cast<int>(levels_.size()) - 1);
  // Nested levels: a key surviving to level ℓ is present in 0..ℓ.
  for (int l = 0; l <= lvl; ++l)
    levels_[static_cast<std::size_t>(l)].update(key, delta);
}

double F0Estimator::estimate() const {
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const auto dec = levels_[l].decode();
    if (dec.complete)
      return static_cast<double>(dec.items.size()) *
             std::pow(2.0, static_cast<double>(l));
  }
  return -1.0;
}

std::size_t F0Estimator::words() const {
  std::size_t total = 8;  // level hash coefficients
  for (const auto& lvl : levels_) total += lvl.words();
  return total;
}

}  // namespace kc::sketch
