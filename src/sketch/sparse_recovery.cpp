#include "sketch/sparse_recovery.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kc::sketch {

SparseRecovery::SparseRecovery(std::size_t capacity, std::uint64_t seed,
                               int rows)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  KC_EXPECTS(rows >= 2);
  buckets_ = std::max<std::size_t>(2 * capacity_, 8);
  Rng rng(seed);
  const std::uint64_t fp_point = 2 + rng() % (kPrime - 3);
  for (int r = 0; r < rows; ++r)
    hashes_.emplace_back(/*independence=*/7, rng());
  cells_.assign(static_cast<std::size_t>(rows) * buckets_,
                OneSparseCell(fp_point));
}

std::size_t SparseRecovery::cell_index(std::size_t row,
                                       std::uint64_t key) const noexcept {
  return row * buckets_ + hashes_[row].bucket(key, buckets_);
}

void SparseRecovery::update(std::uint64_t key, std::int64_t delta) noexcept {
  for (std::size_t r = 0; r < hashes_.size(); ++r)
    cells_[cell_index(r, key)].update(key, delta);
}

SparseRecovery::DecodeResult SparseRecovery::decode() const {
  std::vector<OneSparseCell> work = cells_;
  DecodeResult out;

  // Peel: scan for recoverable singleton cells until a full pass makes no
  // progress.  Each recovered key is subtracted from every row.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < work.size(); ++i) {
      const auto rec = work[i].recover();
      if (!rec) continue;
      out.items.push_back({rec->key, rec->count});
      for (std::size_t r = 0; r < hashes_.size(); ++r) {
        const std::size_t idx = r * buckets_ + hashes_[r].bucket(rec->key, buckets_);
        work[idx].remove(rec->key, rec->count);
      }
      progress = true;
    }
  }
  out.complete = std::all_of(work.begin(), work.end(),
                             [](const OneSparseCell& c) { return c.empty(); });
  // Duplicate keys can appear if a key is recovered from two rows before
  // subtraction… it cannot: subtraction happens immediately after each
  // recovery.  Sort for deterministic output.
  std::sort(out.items.begin(), out.items.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  return out;
}

}  // namespace kc::sketch
