// Algorithm 5: fully dynamic streaming (ε,k,z)-coreset over [Δ]^d
// (paper §5, Theorem 21).
//
// Grids G_0..G_⌈log Δ⌉ partition the universe into cells of side 2^i.  For
// every grid the structure maintains
//   * an s-sparse recovery sketch S(G_i) over the cell ids, with
//     s = k(4√d/ε)^d + z, and
//   * an F0 estimator F(G_i) for the number of non-empty cells,
// under point insertions and deletions (strict turnstile).  A query finds
// the finest grid whose estimated non-empty-cell count is ≤ s, recovers all
// of its non-empty cells with exact point counts, and reports the weighted
// cell centers — a *relaxed* (ε,k,z)-coreset (Lemmas 25–26: if
// 2^j ≤ (ε/√d)·opt < 2^{j+1} then G_j has ≤ s non-empty cells and its cell
// centers displace points by ≤ (√d/2)·2^j ≤ ε·opt/… within the ε budget).
//
// The `deterministic_recovery` option swaps the randomized peeling sketch
// for the power-sum (Vandermonde) sketch of power_sum.hpp — the paper's §1
// determinisation remark — at the cost of a universe scan during decoding
// (intended for the small-Δ demos; see DESIGN.md).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"
#include "geometry/grid.hpp"
#include "sketch/f0_estimator.hpp"
#include "sketch/power_sum.hpp"
#include "sketch/sparse_recovery.hpp"

namespace kc::dynamic {

struct DynamicCoresetOptions {
  int k = 2;
  std::int64_t z = 4;
  double eps = 0.5;
  std::int64_t delta = 256;  ///< universe side Δ
  int dim = 2;
  double f0_eps = 0.5;       ///< F0 accuracy (constant factor suffices)
  std::uint64_t seed = 1;
  bool deterministic_recovery = false;  ///< power-sum variant (extension)
};

class DynamicCoreset {
 public:
  explicit DynamicCoreset(const DynamicCoresetOptions& opt);

  /// Insert (sign = +1) or delete (sign = −1) one point of [Δ]^d.
  void update(const GridPoint& p, int sign);

  struct QueryResult {
    WeightedSet coreset;          ///< weighted cell centers (relaxed coreset)
    int level = -1;               ///< grid level used
    std::size_t nonempty_cells = 0;
    double cell_side = 0.0;
    bool ok = false;
  };
  [[nodiscard]] QueryResult query() const;

  /// s = k(4√d/ε)^d + z — the per-grid sample budget.
  [[nodiscard]] std::int64_t sample_budget() const noexcept { return s_; }

  /// Total sketch storage in words (the measured Table-1 quantity).
  [[nodiscard]] std::size_t words() const;

  [[nodiscard]] const GridHierarchy& grids() const noexcept { return grids_; }
  [[nodiscard]] std::int64_t live_points() const noexcept { return live_; }

 private:
  DynamicCoresetOptions opt_;
  GridHierarchy grids_;
  std::int64_t s_;
  std::vector<sketch::SparseRecovery> recovery_;      // randomized path
  std::vector<sketch::PowerSumSketch> det_recovery_;  // deterministic path
  std::vector<sketch::F0Estimator> f0_;
  std::int64_t live_ = 0;

  [[nodiscard]] std::optional<std::vector<std::pair<std::uint64_t, std::int64_t>>>
  recover_level(int level) const;
};

/// The sample budget formula s = k(4√d/ε)^d + z.
[[nodiscard]] std::int64_t dynamic_sample_budget(int k, std::int64_t z,
                                                 double eps, int dim);

}  // namespace kc::dynamic
