// DynamicKCenter is header-only (thin composition of DynamicCoreset and the
// offline solver); this translation unit pins the vtable-free class into
// the kc_dynamic library and verifies the header is self-contained.
#include "dynamic/dynamic_kcenter.hpp"
