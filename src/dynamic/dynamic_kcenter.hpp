// Fully dynamic (3+ε)-approximate k-center with outliers — the application
// the paper derives from Algorithm 5 (§1, §5): after every update, run a
// greedy offline algorithm on the maintained relaxed coreset.  The update
// time is sketch-polylog; the query time depends only on the coreset size
// O(k/ε^d + z), independent of the number of live points — the property the
// paper highlights against the Ω(n)-space dynamic algorithms of [28, 6].

#pragma once

#include "core/solver.hpp"
#include "dynamic/dynamic_coreset.hpp"

namespace kc::dynamic {

class DynamicKCenter {
 public:
  explicit DynamicKCenter(const DynamicCoresetOptions& opt,
                          Norm norm = Norm::L2)
      : coreset_(opt), metric_(norm), opt_(opt) {}

  void insert(const GridPoint& p) { coreset_.update(p, +1); }
  void erase(const GridPoint& p) { coreset_.update(p, -1); }

  struct DynamicSolution {
    Solution solution;       ///< centers + radius on the coreset
    std::size_t coreset_size = 0;
    int grid_level = -1;
    bool ok = false;
  };

  /// Extracts the current coreset and solves k-center with z outliers on it
  /// (Charikar greedy → 3(1+ε)-style end-to-end factor).
  [[nodiscard]] DynamicSolution solve() const {
    DynamicSolution out;
    const auto q = coreset_.query();
    if (!q.ok) return out;
    out.ok = true;
    out.coreset_size = q.coreset.size();
    out.grid_level = q.level;
    if (!q.coreset.empty())
      out.solution =
          solve_kcenter_outliers(q.coreset, opt_.k, opt_.z, metric_);
    return out;
  }

  [[nodiscard]] const DynamicCoreset& coreset() const noexcept {
    return coreset_;
  }

 private:
  DynamicCoreset coreset_;
  Metric metric_;
  DynamicCoresetOptions opt_;
};

}  // namespace kc::dynamic
