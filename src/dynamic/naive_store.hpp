// Baseline for the fully dynamic model: an exact multiset point store.
//
// This is what the Ω(n)-space dynamic algorithms the paper compares against
// ([28], [6]) fundamentally keep: every live point.  Queries are exact
// (the store *is* the live set), updates are O(log n), but storage grows
// linearly with the live-set size — the row against which Algorithm 5's
// polylog(Δ) sketch words are compared in the T1-DYN bench.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "geometry/grid.hpp"
#include "geometry/point.hpp"
#include "util/check.hpp"

namespace kc::dynamic {

class NaivePointStore {
 public:
  explicit NaivePointStore(int dim) : dim_(dim) {}

  void update(const GridPoint& p, int sign) {
    KC_EXPECTS(p.dim == dim_);
    std::array<std::int64_t, Point::kMaxDim> key = p.c;
    auto& cnt = counts_[key];
    cnt += sign;
    KC_EXPECTS(cnt >= 0);
    if (cnt == 0) counts_.erase(key);
    live_ += sign;
    peak_entries_ = std::max(peak_entries_, counts_.size());
  }

  /// The exact live multiset as a weighted set.
  [[nodiscard]] WeightedSet live_set() const {
    WeightedSet out;
    out.reserve(counts_.size());
    for (const auto& [key, cnt] : counts_) {
      Point p(dim_);
      for (int i = 0; i < dim_; ++i)
        p[i] = static_cast<double>(key[static_cast<std::size_t>(i)]);
      out.push_back({p, cnt});
    }
    return out;
  }

  [[nodiscard]] std::int64_t live_points() const noexcept { return live_; }

  /// Storage in words: one point (d words) + one count per distinct
  /// location — grows with the data, unlike the sketches.
  [[nodiscard]] std::size_t words() const noexcept {
    return counts_.size() * static_cast<std::size_t>(dim_ + 1);
  }
  [[nodiscard]] std::size_t peak_words() const noexcept {
    return peak_entries_ * static_cast<std::size_t>(dim_ + 1);
  }

 private:
  int dim_;
  std::map<std::array<std::int64_t, Point::kMaxDim>, std::int64_t> counts_;
  std::int64_t live_ = 0;
  std::size_t peak_entries_ = 0;
};

}  // namespace kc::dynamic
