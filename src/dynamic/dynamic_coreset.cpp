#include "dynamic/dynamic_coreset.hpp"

#include <cmath>

#include "util/check.hpp"

namespace kc::dynamic {

std::int64_t dynamic_sample_budget(int k, std::int64_t z, double eps,
                                   int dim) {
  const double per_center =
      std::pow(4.0 * std::sqrt(static_cast<double>(dim)) / eps, dim);
  // The 1e-9 guard keeps exact powers (e.g. (4√2)² = 32) from rounding up.
  return static_cast<std::int64_t>(
             std::ceil(static_cast<double>(k) * per_center - 1e-9)) +
         z;
}

DynamicCoreset::DynamicCoreset(const DynamicCoresetOptions& opt)
    : opt_(opt),
      grids_(opt.delta, opt.dim),
      s_(dynamic_sample_budget(opt.k, opt.z, opt.eps, opt.dim)) {
  KC_EXPECTS(opt.k >= 1);
  KC_EXPECTS(opt.z >= 0);
  KC_EXPECTS(opt.eps > 0.0 && opt.eps <= 1.0);
  Rng rng(opt.seed);
  for (int l = 0; l < grids_.levels(); ++l) {
    if (opt.deterministic_recovery) {
      det_recovery_.emplace_back(static_cast<std::size_t>(s_));
    } else {
      recovery_.emplace_back(static_cast<std::size_t>(s_), rng(), /*rows=*/4);
    }
    // The level-sampling ladder of F(G_l) only needs to span the number of
    // cells in G_l (≤ log2 of its universe size), not a generic 2^40 range.
    int f0_levels = 1;
    while ((std::uint64_t{1} << f0_levels) < grids_.universe_size(l))
      ++f0_levels;
    f0_.emplace_back(opt.f0_eps, rng(), f0_levels + 1);
  }
}

void DynamicCoreset::update(const GridPoint& p, int sign) {
  KC_EXPECTS(sign == +1 || sign == -1);
  KC_EXPECTS(p.dim == opt_.dim);
  live_ += sign;
  KC_EXPECTS(live_ >= 0);  // strict turnstile
  for (int l = 0; l < grids_.levels(); ++l) {
    const std::uint64_t cell = grids_.cell_id(p, l);
    if (opt_.deterministic_recovery)
      det_recovery_[static_cast<std::size_t>(l)].update(cell, sign);
    else
      recovery_[static_cast<std::size_t>(l)].update(cell, sign);
    f0_[static_cast<std::size_t>(l)].update(cell, sign);
  }
}

std::optional<std::vector<std::pair<std::uint64_t, std::int64_t>>>
DynamicCoreset::recover_level(int level) const {
  std::vector<std::pair<std::uint64_t, std::int64_t>> cells;
  if (opt_.deterministic_recovery) {
    const auto dec = det_recovery_[static_cast<std::size_t>(level)].decode(
        grids_.universe_size(level));
    if (!dec) return std::nullopt;
    for (const auto& item : *dec) cells.emplace_back(item.key, item.count);
  } else {
    const auto dec = recovery_[static_cast<std::size_t>(level)].decode();
    if (!dec.complete) return std::nullopt;
    for (const auto& item : dec.items) cells.emplace_back(item.key, item.count);
  }
  return cells;
}

DynamicCoreset::QueryResult DynamicCoreset::query() const {
  QueryResult res;
  if (live_ == 0) {
    res.ok = true;
    res.level = grids_.levels() - 1;
    return res;
  }
  for (int l = 0; l < grids_.levels(); ++l) {
    // Fast filter via the F0 estimate, then attempt full recovery; if the
    // estimate was optimistic the recovery fails and we move one level up.
    const double est = f0_[static_cast<std::size_t>(l)].estimate();
    if (est < 0 ||
        est > static_cast<double>(s_) * (1.0 + opt_.f0_eps)) {
      continue;
    }
    const auto cells = recover_level(l);
    if (!cells) continue;
    res.coreset.reserve(cells->size());
    std::int64_t total = 0;
    for (const auto& [cell, count] : *cells) {
      KC_ENSURES(count > 0);
      res.coreset.push_back({grids_.cell_center(cell, l), count});
      total += count;
    }
    KC_ENSURES(total == live_);
    res.level = l;
    res.nonempty_cells = cells->size();
    res.cell_side = static_cast<double>(grids_.cell_side(l));
    res.ok = true;
    return res;
  }
  return res;  // ok = false: no level decodable (should not happen)
}

std::size_t DynamicCoreset::words() const {
  std::size_t total = 0;
  for (const auto& r : recovery_) total += r.words();
  for (const auto& r : det_recovery_) total += r.words();
  for (const auto& f : f0_) total += f.words();
  return total;
}

}  // namespace kc::dynamic
