// MPC pipelines: the paper's three algorithms (2-round deterministic,
// 1-round randomized, R-round trade-off) and the two Table-1 baselines
// (Ceccarello et al. 1-round, Guha et al. local-z), all running on the
// same measured `mpc::Simulator` and reporting the same storage /
// communication quantities.
//
// Shared extra keys: "merged_size" (coordinator inbound before
// recompression), "coord_words", plus per-algorithm diagnostics
// ("r_hat"/"sum_guesses"/"eps_effective", "z_local", "beta", "tau").

#include <memory>

#include "engine/builtin.hpp"
#include "engine/registry.hpp"
#include "mpc/ceccarello.hpp"
#include "mpc/faults.hpp"
#include "mpc/guha.hpp"
#include "mpc/multi_round.hpp"
#include "mpc/one_round.hpp"
#include "mpc/partition.hpp"
#include "mpc/simulator.hpp"
#include "mpc/transport.hpp"
#include "mpc/two_round.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace kc::engine {

namespace {

class MpcPipeline : public Pipeline {
 public:
  [[nodiscard]] std::string model() const final { return "mpc"; }

  [[nodiscard]] PipelineResult run(const Workload& w,
                                   const PipelineConfig& cfg) const final {
    const auto parts = mpc::partition_points(
        w.planted.points, cfg.machines, partition_kind(cfg),
        cfg.partition_seed);
    int dim = 1;
    for (const auto& part : parts)
      if (!part.empty()) {
        dim = part.front().p.dim();
        break;
      }
    // One transport per run, opened (for the process backend: workers
    // forked) *before* the thread pool exists — forking a multi-threaded
    // parent is unsafe, and the simulator's own open() is then a no-op.
    std::unique_ptr<mpc::Transport> transport = mpc::make_transport(cfg.backend);
    transport->open(cfg.machines, dim);
    // One pool per run: the simulator fans the per-machine map phase out
    // over it, and the extraction tail reuses it for the batch kernels.
    // Outputs are bit-identical for every cfg.num_threads (the registered
    // pipelines are swept over thread counts in tests/test_parallel.cpp).
    ThreadPool pool(cfg.num_threads);
    // One injector per run: plan + policy + accounting + the permanent dead
    // set.  Inactive (all probabilities zero) makes every simulator path
    // byte-identical to the fault-free build.
    mpc::FaultInjector faults(cfg.fault_config());
    mpc::ExecContext ctx;
    ctx.pool = &pool;
    ctx.faults = &faults;
    ctx.transport = transport.get();
    PipelineResult res;
    Timer timer;
    const mpc::MpcStats stats = run_mpc(parts, w, cfg, res, ctx);
    res.report.build_ms = timer.millis();
    res.report.rounds = stats.rounds;
    res.report.words = stats.max_worker_words();
    res.report.comm_words = stats.total_comm_words;
    res.report.set("coord_words",
                   static_cast<double>(stats.coordinator_words()));
    res.report.set("threads", static_cast<double>(stats.threads));
    res.report.set("map_ms", stats.map_ms);
    // Measured wire traffic is stamped only for the process backend: the
    // local hand-off moves no bytes, and leaving the keys out keeps
    // local-backend reports byte-identical to the historical ones.
    if (cfg.backend == mpc::Backend::Process)
      stamp_wire_extras(res.report, stats);
    if (faults.enabled()) stamp_fault_extras(res.report, stats.faults);
    mpc::ExecContext tail;
    tail.pool = &pool;
    extract_and_evaluate(res, w.planted.points, cfg, w, tail);
    return res;
  }

 protected:
  /// Which partition the pipeline feeds the simulator (the randomized
  /// 1-round algorithm overrides this: its guarantee needs Random).
  [[nodiscard]] virtual mpc::PartitionKind partition_kind(
      const PipelineConfig& cfg) const {
    return cfg.partition;
  }

  /// Runs the algorithm, fills `res.coreset` + algorithm-specific extras,
  /// and returns the simulator stats.  `ctx` carries the run's execution
  /// environment: the pool driving the map phase, the (possibly inactive)
  /// fault plan, and the already-opened transport.
  [[nodiscard]] virtual mpc::MpcStats run_mpc(
      const std::vector<WeightedSet>& parts, const Workload& w,
      const PipelineConfig& cfg, PipelineResult& res,
      const mpc::ExecContext& ctx) const = 0;

 private:
  /// Measured transport traffic next to the predicted words accounting.
  /// `wire_ratio` compares bytes actually crossing the socket against the
  /// model's `comm_words` at 8 bytes/word; framing overhead keeps it above
  /// 1, and one re-encoded crossing per attempt keeps it well under 2 for
  /// any non-trivial payload.
  static void stamp_wire_extras(PipelineReport& rep,
                                const mpc::MpcStats& stats) {
    rep.set("wire_bytes", static_cast<double>(stats.wire.bytes));
    rep.set("wire_frames", static_cast<double>(stats.wire.frames));
    if (stats.total_comm_words > 0)
      rep.set("wire_ratio",
              static_cast<double>(stats.wire.bytes) /
                  (8.0 * static_cast<double>(stats.total_comm_words)));
    rep.set("route_ms", stats.route_ms);
    if (stats.wire.worker_failures > 0)
      rep.set("wire_worker_failures",
              static_cast<double>(stats.wire.worker_failures));
  }

  /// Fault accounting lands in the report only when injection was active,
  /// keeping fault-free reports byte-identical to the pre-fault ones.
  static void stamp_fault_extras(PipelineReport& rep,
                                 const mpc::FaultStats& fs) {
    rep.set("fault_crashes", static_cast<double>(fs.crashes));
    rep.set("fault_drops", static_cast<double>(fs.drops));
    rep.set("fault_truncations", static_cast<double>(fs.truncations));
    rep.set("fault_straggles", static_cast<double>(fs.straggles));
    rep.set("fault_retries", static_cast<double>(fs.retries));
    rep.set("fault_resends", static_cast<double>(fs.resends));
    rep.set("fault_resent_words", static_cast<double>(fs.resent_words));
    rep.set("fault_lost_words", static_cast<double>(fs.lost_words));
    rep.set("fault_lost_weight", static_cast<double>(fs.lost_weight));
    rep.set("fault_machines_lost", static_cast<double>(fs.machines_lost));
    rep.set("fault_messages_lost", static_cast<double>(fs.messages_lost));
    rep.set("fault_reassigned", static_cast<double>(fs.partitions_reassigned));
    rep.set("fault_recovery_rounds", static_cast<double>(fs.recovery_rounds));
    rep.set("fault_backoff_ms", fs.backoff_ms);
    rep.set("fault_straggle_ms", fs.straggle_ms);
    rep.set("degraded", fs.degraded ? 1.0 : 0.0);
  }
};

class TwoRoundPipeline final : public MpcPipeline {
 public:
  [[nodiscard]] std::string name() const override { return "mpc-2round"; }
  [[nodiscard]] std::string description() const override {
    return "deterministic 2-round MPC coreset (Algorithm 2, Theorem 10)";
  }

 protected:
  [[nodiscard]] mpc::MpcStats run_mpc(const std::vector<WeightedSet>& parts,
                                      const Workload&,
                                      const PipelineConfig& cfg,
                                      PipelineResult& res,
                                      const mpc::ExecContext& ctx)
      const override {
    mpc::TwoRoundOptions opt;
    opt.eps = cfg.eps;
    auto out =
        mpc::two_round_coreset(parts, cfg.k, cfg.z, cfg.metric(), ctx, opt);
    res.coreset = std::move(out.coreset);
    res.report.set("merged_size", static_cast<double>(out.merged.size()));
    res.report.set("r_hat", out.r_hat);
    res.report.set("sum_guesses",
                   static_cast<double>(out.sum_outlier_guesses));
    res.report.set("eps_effective", out.eps_effective);
    return out.stats;
  }
};

class OneRoundPipeline final : public MpcPipeline {
 public:
  [[nodiscard]] std::string name() const override { return "mpc-1round"; }
  [[nodiscard]] std::string description() const override {
    return "randomized 1-round MPC coreset (Algorithm 6, Theorem 33)";
  }

 protected:
  [[nodiscard]] mpc::PartitionKind partition_kind(
      const PipelineConfig&) const override {
    return mpc::PartitionKind::Random;  // Lemma 32's distribution assumption
  }

  [[nodiscard]] mpc::MpcStats run_mpc(const std::vector<WeightedSet>& parts,
                                      const Workload& w,
                                      const PipelineConfig& cfg,
                                      PipelineResult& res,
                                      const mpc::ExecContext& ctx)
      const override {
    mpc::OneRoundOptions opt;
    opt.eps = cfg.eps;
    auto out = mpc::one_round_coreset(parts, cfg.k, cfg.z, w.n(), cfg.metric(),
                                      ctx, opt);
    res.coreset = std::move(out.coreset);
    res.report.set("merged_size", static_cast<double>(out.merged.size()));
    res.report.set("z_local", static_cast<double>(out.z_local));
    res.report.set("eps_effective", out.eps_effective);
    return out.stats;
  }
};

class MultiRoundPipeline final : public MpcPipeline {
 public:
  [[nodiscard]] std::string name() const override { return "mpc-rround"; }
  [[nodiscard]] std::string description() const override {
    return "deterministic R-round MPC trade-off (Algorithm 7, Theorem 35)";
  }
  [[nodiscard]] double quality_bound() const override {
    return 6.0;  // (1+eps)^R − 1 composed error needs extra headroom
  }

 protected:
  [[nodiscard]] mpc::MpcStats run_mpc(const std::vector<WeightedSet>& parts,
                                      const Workload&,
                                      const PipelineConfig& cfg,
                                      PipelineResult& res,
                                      const mpc::ExecContext& ctx)
      const override {
    mpc::MultiRoundOptions opt;
    opt.eps = cfg.eps;
    opt.rounds = cfg.rounds;
    auto out =
        mpc::multi_round_coreset(parts, cfg.k, cfg.z, cfg.metric(), ctx, opt);
    res.coreset = std::move(out.coreset);
    res.report.set("beta", static_cast<double>(out.beta));
    res.report.set("eps_effective", out.eps_effective);
    return out.stats;
  }
};

class CeccarelloPipeline final : public MpcPipeline {
 public:
  [[nodiscard]] std::string name() const override { return "mpc-ceccarello"; }
  [[nodiscard]] std::string description() const override {
    return "Ceccarello et al. 1-round baseline (multiplicative z budget)";
  }

 protected:
  [[nodiscard]] mpc::MpcStats run_mpc(const std::vector<WeightedSet>& parts,
                                      const Workload&,
                                      const PipelineConfig& cfg,
                                      PipelineResult& res,
                                      const mpc::ExecContext& ctx)
      const override {
    mpc::CeccarelloOptions opt;
    opt.eps = cfg.eps;
    auto out =
        mpc::ceccarello_coreset(parts, cfg.k, cfg.z, cfg.metric(), ctx, opt);
    res.coreset = std::move(out.coreset);
    res.report.set("merged_size", static_cast<double>(out.merged.size()));
    res.report.set("tau", static_cast<double>(out.tau));
    return out.stats;
  }
};

class GuhaPipeline final : public MpcPipeline {
 public:
  [[nodiscard]] std::string name() const override { return "mpc-guha"; }
  [[nodiscard]] std::string description() const override {
    return "Guha et al. local-z aggregation baseline (ablation)";
  }

 protected:
  [[nodiscard]] mpc::MpcStats run_mpc(const std::vector<WeightedSet>& parts,
                                      const Workload&,
                                      const PipelineConfig& cfg,
                                      PipelineResult& res,
                                      const mpc::ExecContext& ctx)
      const override {
    mpc::GuhaOptions opt;
    opt.eps = cfg.eps;
    auto out =
        mpc::guha_local_z_coreset(parts, cfg.k, cfg.z, cfg.metric(), ctx, opt);
    res.coreset = std::move(out.coreset);
    res.report.set("merged_size", static_cast<double>(out.merged.size()));
    return out.stats;
  }
};

}  // namespace

void register_mpc_pipelines(Registry& reg) {
  reg.add("mpc-2round", [] { return std::make_unique<TwoRoundPipeline>(); });
  reg.add("mpc-1round", [] { return std::make_unique<OneRoundPipeline>(); });
  reg.add("mpc-rround", [] { return std::make_unique<MultiRoundPipeline>(); });
  reg.add("mpc-ceccarello",
          [] { return std::make_unique<CeccarelloPipeline>(); });
  reg.add("mpc-guha", [] { return std::make_unique<GuhaPipeline>(); });
}

}  // namespace kc::engine
