// The engine layer: one pipeline abstraction over every computation model.
//
// The paper's central claim is that a single coreset notion (Definition 1,
// Lemmas 3–5) serves offline, MPC, insertion-only streaming, and fully
// dynamic computation.  This layer makes that uniformity executable: every
// algorithm in the repo — the paper's Algorithms 1/2/3/5/6/7 and the
// Table-1 baselines (Ceccarello et al., Guha et al., McCutchen–Khuller,
// the sliding-window structure) — is wrapped as a `Pipeline` that
//
//   1. consumes the same `Workload` (a planted instance plus derived
//      arrival order / turnstile script),
//   2. builds its summary under its own model's rules, and
//   3. extracts a `Solution` and a `PipelineReport` with the quantities
//      Table 1 compares: radius/quality, coreset size, storage words,
//      rounds, communication, timings.
//
// Pipelines are registered by name in `kc::engine::registry()`
// (registry.hpp); the `kcenter_cli` driver (tools/), the `bench_table1_*`
// harnesses, and `tests/test_engine.cpp` all compose workloads × pipelines
// through this one seam, so features like new metrics, sharded drivers, or
// batched execution are added here once instead of per harness.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "geometry/grid.hpp"
#include "mpc/context.hpp"
#include "mpc/faults.hpp"
#include "mpc/partition.hpp"
#include "mpc/transport.hpp"
#include "stream/insertion_only.hpp"
#include "util/jsonlog.hpp"
#include "workload/generators.hpp"
#include "workload/streams.hpp"

namespace kc {
class ThreadPool;  // util/parallel.hpp
}

namespace kc::dataset {
class DataSource;  // dataset/source.hpp
}

namespace kc::engine {

/// Everything a pipeline run is parameterized by: the shared problem
/// parameters (k, z, ε, metric) plus the model-specific knobs.  Knobs a
/// model does not use are ignored by its pipelines.
struct PipelineConfig {
  // Shared problem parameters.
  int k = 3;
  std::int64_t z = 16;
  double eps = 0.5;
  int dim = 2;
  Norm norm = Norm::L2;
  std::uint64_t seed = 1;  ///< sketch/randomized-pipeline seed

  /// Thread-pool size for the fan-out paths (the MPC per-machine map phase
  /// and the chunk-parallel batch kernels of the extraction tail).  1 =
  /// sequential (the default), 0 = hardware_concurrency.  Reports are
  /// bit-identical for every value — threading only changes wall time
  /// (pinned by tests/test_parallel.cpp).
  int num_threads = 1;

  /// Extract a Solution from the summary at all (solve on the summary,
  /// evaluate on ground truth).  Storage-shape-only consumers (e.g. the
  /// T1-MPC z sweep) switch it off to skip the extraction tail entirely;
  /// the result then carries only the summary and the report's storage /
  /// communication fields.
  bool with_extraction = true;

  /// Also run the direct offline solve on the ground-truth set so the
  /// report carries `radius_direct` and `quality`.  Costly on large
  /// instances; harness rows that compare against a planted bracket
  /// instead (e.g. McCutchen–Khuller in T1-STREAM) switch it off.
  /// Direct solves on the workload's own `planted.points` are memoized in
  /// the workload, so running many pipelines on one workload (the CLI's
  /// `--pipeline all`) pays for it once.
  bool with_direct_solve = true;

  // MPC knobs.
  int machines = 8;
  /// Message transport the MPC simulator routes through: `Local` is the
  /// in-process hand-off (byte-identical to the historical simulator),
  /// `Process` forks one worker endpoint per machine and ships every
  /// message as a checksummed wire frame, reporting measured
  /// `wire_bytes`/`wire_ratio` next to the predicted `comm_words`.
  /// Result columns are byte-identical across backends at a fixed seed.
  mpc::Backend backend = mpc::Backend::Local;
  mpc::PartitionKind partition = mpc::PartitionKind::EvenSorted;
  std::uint64_t partition_seed = 1;
  int rounds = 2;  ///< R for the R-round trade-off pipeline

  // MPC fault-injection knobs (mpc/faults.hpp).  All probabilities default
  // to 0 — an inactive plan takes exactly the pre-fault code paths, so
  // fault-free reports are byte-identical with or without these fields.
  std::uint64_t fault_seed = 0;
  double fault_crash = 0.0;     ///< per machine-round-attempt crash prob
  double fault_drop = 0.0;      ///< per message-attempt drop prob
  double fault_truncate = 0.0;  ///< per point-message-attempt truncation prob
  double fault_straggle = 0.0;  ///< per machine-round straggler prob
  int fault_retries = 2;        ///< transport retry budget
  mpc::RecoveryPolicy fault_policy = mpc::RecoveryPolicy::Retry;

  /// The MPC fault plan these knobs describe.
  [[nodiscard]] mpc::FaultConfig fault_config() const {
    mpc::FaultConfig fc;
    fc.seed = fault_seed;
    fc.crash_prob = fault_crash;
    fc.drop_prob = fault_drop;
    fc.truncate_prob = fault_truncate;
    fc.straggle_prob = fault_straggle;
    fc.retry_budget = fault_retries;
    fc.policy = fault_policy;
    return fc;
  }

  // Streaming knobs.
  stream::ThresholdPolicy policy = stream::ThresholdPolicy::Ours;
  std::int64_t window = 0;  ///< sliding-window length W; 0 = whole stream

  // Dynamic (turnstile) knobs.
  std::int64_t delta = 256;  ///< universe side Δ of [Δ]^d
  bool deterministic_recovery = false;

  [[nodiscard]] Metric metric() const { return Metric{norm}; }
};

/// Memoized direct solves on a workload's planted points, shared by every
/// pipeline run on that workload (not thread-safe; runs are sequential).
struct DirectSolveCache {
  struct Entry {
    int k = 0;
    std::int64_t z = 0;
    Norm norm = Norm::L2;
    double radius = 0.0;
  };
  std::vector<Entry> entries;
};

/// A concrete problem instance in the form every pipeline consumes: the
/// planted points (with their certified optimum bracket) plus the derived
/// views the sequential models need.  Build one with `make_workload` or
/// fill the fields directly when a harness needs specific seeds.
struct Workload {
  PlantedInstance planted;

  /// Arrival order for the streaming pipelines (indices into
  /// `planted.points`); empty = input order.
  std::vector<std::size_t> order;

  /// Turnstile script for the dynamic pipeline.  Empty = insert the
  /// discretized points in order (no deletions).
  DynamicScript script;

  /// Discretized view of `planted.points` on [Δ]^dim backing `script`.
  /// Empty = the dynamic pipeline discretizes with the config's Δ itself.
  std::vector<GridPoint> grid;

  /// Shared across pipeline runs on this workload; see
  /// `PipelineConfig::with_direct_solve`.
  std::shared_ptr<DirectSolveCache> direct_cache =
      std::make_shared<DirectSolveCache>();

  /// Out-of-core dataset behind this workload (null = fully in-memory).
  /// When set and `planted.points` is empty, dataset-capable pipelines
  /// (`Pipeline::supports_dataset`) stream chunks from it instead of
  /// touching the planted fields; peak memory then stays O(chunk),
  /// independent of the source size.  Build with `make_dataset_workload`,
  /// or copy the source into memory with `materialize_workload` for the
  /// remaining pipelines.
  std::shared_ptr<dataset::DataSource> source;

  /// True when pipelines must stream from `source` (set, and no
  /// materialized points shadow it).
  [[nodiscard]] bool from_dataset() const noexcept {
    return source != nullptr && planted.points.empty();
  }

  /// Instance size: the materialized point count, or the dataset size for
  /// a dataset-backed workload (out of line — `DataSource` is incomplete
  /// here).
  [[nodiscard]] std::size_t n() const noexcept;

  /// The planted instance's canonical SoA buffer, or null when a harness
  /// filled the fields by hand and left it empty/stale.  Pipelines hand
  /// this to the solver/evaluation layers so nothing re-packs the input.
  [[nodiscard]] const kernels::PointBuffer* buffer() const noexcept {
    return (!planted.points.empty() &&
            planted.buffer.size() == planted.points.size())
               ? &planted.buffer
               : nullptr;
  }
};

/// Standard workload: a planted instance with cfg's (k, z, dim, norm, seed)
/// and a shuffled arrival order derived from cfg.seed.
[[nodiscard]] Workload make_workload(std::size_t n, const PipelineConfig& cfg);

/// Dataset-backed workload: no planted points, no certified bracket; the
/// arrival order is the source's sequential order.  Dataset-capable
/// pipelines stream from it within fixed memory.
[[nodiscard]] Workload make_dataset_workload(
    std::shared_ptr<dataset::DataSource> src);

/// Copies a dataset into an ordinary in-memory workload (unit weights,
/// sequential order, SoA buffer built alongside) for pipelines without a
/// streaming path.  Throws std::runtime_error when the source exceeds
/// `max_points` (materializing it would defeat out-of-core operation —
/// use a dataset-capable pipeline instead) or its dim exceeds the `Point`
/// boundary limit.
[[nodiscard]] Workload materialize_workload(dataset::DataSource& src,
                                            std::size_t max_points =
                                                8'000'000);

/// What a pipeline run measured.  `words` is the model's headline storage
/// metric (MPC: peak worker words; streaming: peak stored words; dynamic:
/// sketch words; offline: coreset words); everything model-specific beyond
/// the common fields lands in `extra` under stable keys (see each
/// pipeline's description).
struct PipelineReport {
  std::string pipeline;
  std::string model;  ///< "offline" | "mpc" | "stream" | "dynamic"
  std::size_t n = 0;
  int k = 0;
  std::int64_t z = 0;
  double eps = 0.0;

  std::size_t coreset_size = 0;
  std::size_t words = 0;
  int rounds = 0;               ///< communication rounds (MPC pipelines)
  std::size_t comm_words = 0;   ///< total communication volume (MPC)

  double radius = 0.0;         ///< extracted centers evaluated on ground truth
  double radius_direct = 0.0;  ///< direct solve on ground truth (if enabled)
  double quality = 0.0;        ///< radius / radius_direct (1.0 when disabled)

  double build_ms = 0.0;  ///< summary construction (the model's online part)
  double solve_ms = 0.0;  ///< solve on the summary only (ground-truth
                          ///< evaluation and the optional direct solve are
                          ///< reported as "eval_ms" / "direct_ms" extras)

  std::vector<std::pair<std::string, double>> extra;

  void set(const std::string& key, double value);
  [[nodiscard]] double get(const std::string& key, double def = 0.0) const;

  /// Flattens the report into JSON fields (common fields + extras) for the
  /// `engine_pipeline` trajectory records of kcenter_cli and the benches.
  [[nodiscard]] std::vector<bench::JsonField> json_fields() const;
};

struct PipelineResult {
  /// The summary the model shipped/maintained.  Empty for solution-only
  /// baselines (McCutchen–Khuller keeps exact support points and answers
  /// queries directly — the very cost the paper's coresets remove).
  WeightedSet coreset;
  /// Centers extracted from the summary, radius evaluated on the
  /// pipeline's ground-truth set (the original points, the window
  /// contents, or the discretized live set — see `Pipeline::run`).
  Solution solution;
  PipelineReport report;
};

/// Interface every computation model implements.  Pipelines are stateless;
/// `run` is a pure function of (workload, config).
class Pipeline {
 public:
  virtual ~Pipeline() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string model() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;

  /// Whether the pipeline's summary preserves total weight (Definition 2).
  /// False for the baselines that cap or drop weights (sliding-window
  /// clamps alive counts at z+1; McCutchen–Khuller has no summary).
  [[nodiscard]] virtual bool preserves_weight() const { return true; }

  /// Generous certified bound on radius / opt for the extracted solution
  /// (approximation factor × coreset slack, with headroom for the planted
  /// bracket); tests assert `report.radius ≤ quality_bound() · opt_hi`.
  [[nodiscard]] virtual double quality_bound() const { return 5.0; }

  /// Whether `run` can stream a dataset-backed workload
  /// (`Workload::from_dataset`) chunk-by-chunk within fixed memory.  The
  /// sequential one-pass models (insertion-only streaming, dynamic)
  /// support it; the others require `materialize_workload` first.
  [[nodiscard]] virtual bool supports_dataset() const { return false; }

  /// Runs the model end to end and fills coreset/solution/report.  The
  /// common report fields (pipeline/model/n/k/z/eps) are stamped by
  /// `execute`; implementations fill the measured ones.
  [[nodiscard]] virtual PipelineResult run(const Workload& w,
                                           const PipelineConfig& cfg) const = 0;

  /// `run` + stamping of the identification fields.  Call this, not `run`.
  [[nodiscard]] PipelineResult execute(const Workload& w,
                                       const PipelineConfig& cfg) const;
};

/// Shared tail of every pipeline: solve k-center-with-outliers on the
/// summary (Charikar greedy, the paper's "offline algorithm on the
/// coreset"), evaluate the centers on `ground_truth`, and—when
/// `cfg.with_direct_solve`—compare against the direct solve.  Fills
/// solution, radius, radius_direct, quality, and solve_ms.  No-op on an
/// empty summary or when `cfg.with_extraction` is off.  `w` is the
/// workload the run consumes: direct solves are memoized in its cache
/// when `ground_truth` is the workload's own planted point set.  `ctx`
/// carries the extraction tail's execution environment (mpc/context.hpp):
/// `ctx.pool` runs the solver's batch kernels chunk-parallel — results
/// are bit-identical with or without it — and `ctx.buffer` is a SoA
/// buffer of `ground_truth` in the same order, for pipelines whose ground
/// truth is NOT the planted set (window contents, discretized live set);
/// when null and `ground_truth` is the planted set, the workload's
/// canonical buffer is used automatically.
void extract_and_evaluate(PipelineResult& res, const WeightedSet& ground_truth,
                          const PipelineConfig& cfg, const Workload& w,
                          const mpc::ExecContext& ctx = {});

/// Variant for solution-only pipelines that already hold centers: evaluate
/// them on `ground_truth` and fill radius/radius_direct/quality.
void evaluate_centers(PipelineResult& res, PointSet centers,
                      const WeightedSet& ground_truth,
                      const PipelineConfig& cfg, const Workload& w,
                      const mpc::ExecContext& ctx = {});

/// Out-of-core variant of `extract_and_evaluate`: solve on the summary,
/// then evaluate the centers against the *source* one chunk at a time
/// (dataset/source.hpp `chunked_radius_with_outliers` — bit-identical to
/// the in-memory evaluation).  `transform` optionally rewrites each chunk
/// before evaluation (the dynamic pipeline's grid-space ground truth).
/// The direct solve is never run (it needs the full set in memory);
/// `quality` is reported as 1.0, mirroring `with_direct_solve = false`.
void extract_and_evaluate_source(
    PipelineResult& res, dataset::DataSource& src, const PipelineConfig& cfg,
    const std::function<void(const kernels::BufferView<double>&,
                             kernels::PointBuffer&)>& transform = nullptr);

}  // namespace kc::engine
