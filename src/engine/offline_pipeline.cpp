// Offline pipeline: MBCConstruction (Algorithm 1) on the full point set,
// then the shared extraction tail.  The reference configuration every
// distributed/streaming pipeline's quality is compared against.

#include <memory>

#include "core/mbc.hpp"
#include "engine/builtin.hpp"
#include "engine/registry.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace kc::engine {

namespace {

class OfflinePipeline final : public Pipeline {
 public:
  [[nodiscard]] std::string name() const override { return "offline"; }
  [[nodiscard]] std::string model() const override { return "offline"; }
  [[nodiscard]] std::string description() const override {
    return "MBCConstruction (Algorithm 1) + Charikar extraction";
  }

  [[nodiscard]] PipelineResult run(const Workload& w,
                                   const PipelineConfig& cfg) const override {
    const Metric metric = cfg.metric();
    ThreadPool pool(cfg.num_threads);
    OracleOptions oracle;
    oracle.exec.pool = &pool;
    oracle.exec.buffer = w.buffer();  // canonical SoA input — no re-pack
    PipelineResult res;
    Timer timer;
    const MiniBallCovering mbc =
        mbc_construct(w.planted.points, cfg.k, cfg.z, cfg.eps, metric, oracle);
    res.report.build_ms = timer.millis();
    res.coreset = mbc.reps;
    res.report.words =
        res.coreset.size() * static_cast<std::size_t>(cfg.dim + 1);
    res.report.set("cover_radius", mbc.cover_radius);
    res.report.set("oracle_radius", mbc.oracle_radius);
    res.report.set("threads", static_cast<double>(pool.num_threads()));
    mpc::ExecContext tail;
    tail.pool = &pool;
    extract_and_evaluate(res, w.planted.points, cfg, w, tail);
    return res;
  }
};

}  // namespace

void register_offline_pipelines(Registry& reg) {
  reg.add("offline", [] { return std::make_unique<OfflinePipeline>(); });
}

}  // namespace kc::engine
