#include "engine/registry.hpp"

#include "engine/builtin.hpp"
#include "util/check.hpp"

namespace kc::engine {

void Registry::add(const std::string& name, Factory factory) {
  KC_EXPECTS(!name.empty());
  KC_EXPECTS(factory != nullptr);
  const auto [it, inserted] = factories_.emplace(name, std::move(factory));
  static_cast<void>(it);
  KC_EXPECTS(inserted && "pipeline name already registered");
}

bool Registry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::unique_ptr<Pipeline> Registry::make(const std::string& name) const {
  const auto it = factories_.find(name);
  KC_EXPECTS(it != factories_.end() && "unknown pipeline name");
  auto pipeline = it->second();
  KC_ENSURES(pipeline != nullptr);
  return pipeline;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

Registry& registry() {
  static Registry reg = [] {
    Registry r;
    register_offline_pipelines(r);
    register_mpc_pipelines(r);
    register_stream_pipelines(r);
    register_dynamic_pipelines(r);
    return r;
  }();
  return reg;
}

PipelineResult run(const std::string& name, const Workload& w,
                   const PipelineConfig& cfg) {
  return registry().make(name)->execute(w, cfg);
}

}  // namespace kc::engine
