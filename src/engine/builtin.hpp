// kc-lint-allow(layering): internal registration hooks for registry.cpp
// and the per-model pipeline TUs, deliberately not exported via the
// umbrella header.
//
// Internal: explicit registration hooks for the built-in pipelines, one
// per computation model (offline_pipeline.cpp, mpc_pipelines.cpp,
// stream_pipelines.cpp, dynamic_pipeline.cpp).  Called once by
// `registry()`; not part of the public engine API.

#pragma once

namespace kc::engine {

class Registry;

void register_offline_pipelines(Registry& reg);
void register_mpc_pipelines(Registry& reg);
void register_stream_pipelines(Registry& reg);
void register_dynamic_pipelines(Registry& reg);

}  // namespace kc::engine
