#include "engine/pipeline.hpp"

#include <sstream>
#include <stdexcept>

#include "core/cost.hpp"
#include "core/solver.hpp"
#include "dataset/source.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace kc::engine {

std::size_t Workload::n() const noexcept {
  if (!planted.points.empty() || source == nullptr)
    return planted.points.size();
  return static_cast<std::size_t>(source->size());
}

Workload make_workload(std::size_t n, const PipelineConfig& cfg) {
  PlantedConfig pc;
  pc.n = n;
  pc.k = cfg.k;
  pc.z = cfg.z;
  pc.dim = cfg.dim;
  pc.norm = cfg.norm;
  pc.seed = cfg.seed;
  Workload w;
  w.planted = make_planted(pc);
  w.order = shuffled_order(n, cfg.seed + 1);
  return w;
}

Workload make_dataset_workload(std::shared_ptr<dataset::DataSource> src) {
  KC_EXPECTS(src != nullptr);
  Workload w;
  w.planted.config.n = static_cast<std::size_t>(src->size());
  w.planted.config.dim = src->dim();
  w.source = std::move(src);
  return w;
}

Workload materialize_workload(dataset::DataSource& src,
                              std::size_t max_points) {
  if (src.size() > max_points) {
    std::ostringstream os;
    os << "dataset " << src.describe() << " has " << src.size()
       << " points; materializing more than " << max_points
       << " defeats out-of-core operation — use a dataset-capable pipeline "
          "(stream-insertion, dynamic) instead";
    throw std::runtime_error(os.str());
  }
  if (src.dim() > Point::kMaxDim) {
    std::ostringstream os;
    os << "dataset " << src.describe() << " has dim " << src.dim()
       << ", above the Point limit of " << Point::kMaxDim;
    throw std::runtime_error(os.str());
  }
  Workload w;
  const auto n = static_cast<std::size_t>(src.size());
  w.planted.points.reserve(n);
  w.planted.buffer = kernels::PointBuffer(src.dim());
  w.planted.buffer.reserve(n);
  dataset::ChunkedReader reader(src);
  dataset::ChunkedReader::Chunk ch;
  Point p(src.dim());
  while (reader.next(ch)) {
    for (std::size_t i = 0; i < ch.view.size(); ++i) {
      for (int j = 0; j < ch.view.dim(); ++j) p[j] = ch.view.col(j)[i];
      w.planted.points.push_back({p, 1});
      w.planted.buffer.append(p);
    }
  }
  w.planted.config.n = n;
  w.planted.config.dim = src.dim();
  return w;
}

void PipelineReport::set(const std::string& key, double value) {
  for (auto& [k_, v] : extra) {
    if (k_ == key) {
      v = value;
      return;
    }
  }
  extra.emplace_back(key, value);
}

double PipelineReport::get(const std::string& key, double def) const {
  for (const auto& [k_, v] : extra)
    if (k_ == key) return v;
  return def;
}

std::vector<bench::JsonField> PipelineReport::json_fields() const {
  std::vector<bench::JsonField> fields;
  fields.reserve(extra.size() + 14);
  fields.emplace_back("pipeline", pipeline);
  fields.emplace_back("model", model);
  fields.emplace_back("n", static_cast<long long>(n));
  fields.emplace_back("k", k);
  fields.emplace_back("z", static_cast<long long>(z));
  fields.emplace_back("eps", eps);
  fields.emplace_back("coreset", static_cast<long long>(coreset_size));
  fields.emplace_back("words", static_cast<long long>(words));
  fields.emplace_back("rounds", rounds);
  fields.emplace_back("comm_words", static_cast<long long>(comm_words));
  fields.emplace_back("radius", radius);
  fields.emplace_back("radius_direct", radius_direct);
  fields.emplace_back("quality", quality);
  fields.emplace_back("build_ms", build_ms);
  fields.emplace_back("solve_ms", solve_ms);
  for (const auto& [key, value] : extra) fields.emplace_back(key, value);
  return fields;
}

PipelineResult Pipeline::execute(const Workload& w,
                                 const PipelineConfig& cfg) const {
  if (w.from_dataset() && !supports_dataset()) {
    std::ostringstream os;
    os << "pipeline '" << name()
       << "' cannot stream a dataset-backed workload; materialize_workload "
          "it first or pick a dataset-capable pipeline";
    throw std::runtime_error(os.str());
  }
  PipelineResult res = run(w, cfg);
  res.report.pipeline = name();
  res.report.model = model();
  res.report.n = w.n();
  res.report.k = cfg.k;
  res.report.z = cfg.z;
  res.report.eps = cfg.eps;
  res.report.coreset_size = res.coreset.size();
  return res;
}

namespace {

/// Resolves the SoA buffer to evaluate `ground_truth` through: the
/// caller-supplied one when given, else the workload's canonical buffer
/// when `ground_truth` IS the workload's planted point set (harnesses that
/// fill Workload fields by hand may leave it empty).  Null otherwise — the
/// consumers below then fall back to packing / scalar scans.
const kernels::PointBuffer* ground_truth_buffer(
    const WeightedSet& ground_truth, const Workload& w,
    const kernels::PointBuffer* gt_buffer) {
  if (gt_buffer != nullptr && gt_buffer->size() == ground_truth.size())
    return gt_buffer;
  return &ground_truth == &w.planted.points ? w.buffer() : nullptr;
}

/// Direct solve on `ground_truth`, memoized in the workload's cache when
/// `ground_truth` is the workload's own planted point set (the common
/// case: 8 of the 10 built-in pipelines share it, so `--pipeline all`
/// pays for the most expensive step once).
double direct_radius(const WeightedSet& ground_truth,
                     const PipelineConfig& cfg, const Workload& w,
                     PipelineReport& report, ThreadPool* pool,
                     const kernels::PointBuffer* gt_buffer) {
  const bool cacheable =
      &ground_truth == &w.planted.points && w.direct_cache != nullptr;
  if (cacheable) {
    for (const auto& e : w.direct_cache->entries)
      if (e.k == cfg.k && e.z == cfg.z && e.norm == cfg.norm) return e.radius;
  }
  Timer timer;
  OracleOptions oracle;
  oracle.exec.pool = pool;
  oracle.exec.buffer = ground_truth_buffer(ground_truth, w, gt_buffer);
  const Solution direct =
      solve_kcenter_outliers(ground_truth, cfg.k, cfg.z, cfg.metric(), oracle);
  report.set("direct_ms", timer.millis());
  if (cacheable)
    w.direct_cache->entries.push_back({cfg.k, cfg.z, cfg.norm, direct.radius});
  return direct.radius;
}

}  // namespace

void extract_and_evaluate(PipelineResult& res, const WeightedSet& ground_truth,
                          const PipelineConfig& cfg, const Workload& w,
                          const mpc::ExecContext& ctx) {
  if (!cfg.with_extraction || res.coreset.empty()) return;
  const Metric metric = cfg.metric();
  Timer timer;
  OracleOptions oracle;
  oracle.exec.pool = ctx.pool;
  const Solution via =
      solve_kcenter_outliers(res.coreset, cfg.k, cfg.z, metric, oracle);
  const double small_ms = timer.millis();
  evaluate_centers(res, via.centers, ground_truth, cfg, w, ctx);
  res.report.solve_ms += small_ms;
}

void evaluate_centers(PipelineResult& res, PointSet centers,
                      const WeightedSet& ground_truth,
                      const PipelineConfig& cfg, const Workload& w,
                      const mpc::ExecContext& ctx) {
  ThreadPool* pool = ctx.pool;
  const kernels::PointBuffer* gt_buffer = ctx.buffer;
  const Metric metric = cfg.metric();
  const kernels::PointBuffer* buf =
      ground_truth_buffer(ground_truth, w, gt_buffer);
  Timer timer;
  const double on_full =
      radius_with_outliers(ground_truth, centers, cfg.z, metric, buf);
  res.report.set("eval_ms", timer.millis());
  res.solution = Solution{std::move(centers), on_full};
  res.report.radius = on_full;
  if (cfg.with_direct_solve) {
    const double direct =
        direct_radius(ground_truth, cfg, w, res.report, pool, gt_buffer);
    res.report.radius_direct = direct;
    // Same guard as the QUALITY benches: degenerate direct radius → 1.0.
    res.report.quality = direct > 0 ? on_full / direct : 1.0;
  } else {
    res.report.quality = 1.0;
  }
}

void extract_and_evaluate_source(
    PipelineResult& res, dataset::DataSource& src, const PipelineConfig& cfg,
    const std::function<void(const kernels::BufferView<double>&,
                             kernels::PointBuffer&)>& transform) {
  if (!cfg.with_extraction || res.coreset.empty()) return;
  const Metric metric = cfg.metric();
  Timer timer;
  const Solution via =
      solve_kcenter_outliers(res.coreset, cfg.k, cfg.z, metric);
  res.report.solve_ms += timer.millis();
  timer.reset();
  const double on_full = dataset::chunked_radius_with_outliers(
      src, via.centers, cfg.z, metric, {}, transform);
  res.report.set("eval_ms", timer.millis());
  res.solution = Solution{via.centers, on_full};
  res.report.radius = on_full;
  // The direct solve needs the whole set in memory; on the out-of-core path
  // quality is reported as 1.0, matching `with_direct_solve = false`.
  res.report.quality = 1.0;
}

}  // namespace kc::engine
