// Fully dynamic pipeline: Algorithm 5's sketch hierarchy over [Δ]^d.
//
// The workload's real-valued points are discretized onto the integer grid
// (workload/generators.hpp discretize); the sketch is driven either by the
// workload's turnstile script (inserts + deletes whose final alive set is
// the discretized instance) or, when no script is given, by plain
// insertions.  Ground truth for quality is the live set *in grid
// coordinates* — the space the relaxed coreset lives in.

#include <algorithm>
#include <memory>

#include "dataset/source.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "engine/builtin.hpp"
#include "engine/registry.hpp"
#include "geometry/box.hpp"
#include "util/timer.hpp"

namespace kc::engine {

namespace {

class DynamicPipeline final : public Pipeline {
 public:
  [[nodiscard]] std::string name() const override { return "dynamic"; }
  [[nodiscard]] std::string model() const override { return "dynamic"; }
  [[nodiscard]] std::string description() const override {
    return "fully dynamic (turnstile) coreset sketch over [Delta]^d "
           "(Algorithm 5, Theorem 21)";
  }
  [[nodiscard]] double quality_bound() const override {
    return 8.0;  // relaxed coreset: cell-center displacement adds slack
  }
  [[nodiscard]] bool supports_dataset() const override { return true; }

  [[nodiscard]] PipelineResult run(const Workload& w,
                                   const PipelineConfig& cfg) const override {
    dynamic::DynamicCoresetOptions opt;
    opt.k = cfg.k;
    opt.z = cfg.z;
    opt.eps = cfg.eps;
    opt.delta = cfg.delta;
    opt.dim = cfg.dim;
    opt.seed = cfg.seed;
    opt.deterministic_recovery = cfg.deterministic_recovery;

    if (w.from_dataset()) return run_from_source(*w.source, cfg, opt);

    const std::vector<GridPoint> grid =
        w.grid.empty() ? discretize(w.planted.points, cfg.delta) : w.grid;
    DynamicScript script = w.script;
    if (script.empty()) {
      script.reserve(grid.size());
      for (const auto& g : grid) script.push_back({g, +1});
    }

    PipelineResult res;
    dynamic::DynamicCoreset dc(opt);
    Timer timer;
    for (const auto& up : script) dc.update(up.p, up.sign);
    res.report.build_ms = timer.millis();

    const auto q = dc.query();
    res.report.words = dc.words();
    res.report.set("grid_space", 1.0);  // radius is in [Δ]^d coordinates
    res.report.set("ok", q.ok ? 1.0 : 0.0);
    res.report.set("level", static_cast<double>(q.level));
    res.report.set("nonempty_cells", static_cast<double>(q.nonempty_cells));
    res.report.set("cell_side", q.cell_side);
    res.report.set("levels", static_cast<double>(dc.grids().levels()));
    res.report.set("sample_budget", static_cast<double>(dc.sample_budget()));
    res.report.set("live", static_cast<double>(dc.live_points()));
    res.report.set(
        "update_us",
        script.empty() ? 0.0
                       : res.report.build_ms * 1e3 /
                             static_cast<double>(script.size()));
    if (!q.ok) return res;  // no recoverable level: report without a summary

    res.coreset = q.coreset;
    // Ground truth in grid coordinates: the live multiset after the script
    // (make_dynamic_script guarantees it equals the discretized instance).
    // Built as AoS + SoA side by side so the evaluation tail runs on the
    // buffer directly.
    WeightedSet live;
    live.reserve(grid.size());
    kernels::PointBuffer live_buf(cfg.dim);
    live_buf.reserve(grid.size());
    for (const auto& g : grid) {
      live.push_back({g.to_point(), 1});
      live_buf.append(live.back().p);
    }
    mpc::ExecContext tail;
    tail.buffer = &live_buf;
    extract_and_evaluate(res, live, cfg, w, tail);
    return res;
  }

 private:
  /// Out-of-core run: one discretizing pass feeds the sketch, a second
  /// (chunk-transformed) pass evaluates.  The scaling constants come from
  /// the source's exact bbox — min/max commute, so they equal the ones
  /// `discretize` derives from the materialized set, making every snapped
  /// coordinate (and hence sketch, coreset, and radius) bit-identical to
  /// the in-memory run.  Memory stays O(chunk + sketch) at any n.
  [[nodiscard]] static PipelineResult run_from_source(
      dataset::DataSource& src, const PipelineConfig& cfg,
      const dynamic::DynamicCoresetOptions& opt) {
    KC_EXPECTS(src.dim() == cfg.dim && cfg.dim <= Point::kMaxDim);
    Point lo(cfg.dim), hi(cfg.dim);
    for (int j = 0; j < cfg.dim; ++j) {
      lo[j] = src.box_lo()[static_cast<std::size_t>(j)];
      hi[j] = src.box_hi()[static_cast<std::size_t>(j)];
    }
    const Box box(lo, hi);
    const double span = std::max(box.max_side(), 1e-12);
    const double scale = static_cast<double>(cfg.delta - 1) / span;
    const auto snap_row = [&box, scale, &cfg](
                              const kernels::BufferView<double>& v,
                              std::size_t i) {
      Point scaled(cfg.dim);
      for (int j = 0; j < cfg.dim; ++j)
        scaled[j] = (v.col(j)[i] - box.lo()[j]) * scale;
      return snap_to_grid(scaled, cfg.delta);
    };

    PipelineResult res;
    dynamic::DynamicCoreset dc(opt);
    Timer timer;
    {
      dataset::ChunkedReader reader(src);
      dataset::ChunkedReader::Chunk ch;
      while (reader.next(ch))
        for (std::size_t i = 0; i < ch.view.size(); ++i)
          dc.update(snap_row(ch.view, i), +1);
    }
    res.report.build_ms = timer.millis();

    const auto q = dc.query();
    res.report.words = dc.words();
    res.report.set("grid_space", 1.0);
    res.report.set("ok", q.ok ? 1.0 : 0.0);
    res.report.set("level", static_cast<double>(q.level));
    res.report.set("nonempty_cells", static_cast<double>(q.nonempty_cells));
    res.report.set("cell_side", q.cell_side);
    res.report.set("levels", static_cast<double>(dc.grids().levels()));
    res.report.set("sample_budget", static_cast<double>(dc.sample_budget()));
    res.report.set("live", static_cast<double>(dc.live_points()));
    res.report.set("update_us",
                   src.size() == 0
                       ? 0.0
                       : res.report.build_ms * 1e3 /
                             static_cast<double>(src.size()));
    if (!q.ok) return res;

    res.coreset = q.coreset;
    // Ground truth in grid coordinates, produced chunk-by-chunk by the
    // same snapping the sketch consumed.
    extract_and_evaluate_source(
        res, src, cfg,
        [&snap_row](const kernels::BufferView<double>& in,
                    kernels::PointBuffer& scratch) {
          for (std::size_t i = 0; i < in.size(); ++i)
            scratch.append(snap_row(in, i).to_point());
        });
    return res;
  }
};

}  // namespace

void register_dynamic_pipelines(Registry& reg) {
  reg.add("dynamic", [] { return std::make_unique<DynamicPipeline>(); });
}

}  // namespace kc::engine
