// String-keyed pipeline factory (the engine's composition seam).
//
// `registry()` is the process-wide registry, pre-populated with every
// built-in pipeline (explicit registration — no static-initializer tricks,
// which static libraries dead-strip):
//
//   offline          MBCConstruction (Alg. 1) + Charikar       [§2]
//   mpc-2round       deterministic 2-round MPC (Alg. 2)        [§3, Thm 10]
//   mpc-1round       randomized 1-round MPC (Alg. 6)           [§7.1, Thm 33]
//   mpc-rround       R-round storage trade-off (Alg. 7)        [§7.2, Thm 35]
//   mpc-ceccarello   1-round baseline, multiplicative z  [Ceccarello et al.]
//   mpc-guha         local-z ablation baseline               [Guha et al.]
//   stream-insertion insertion-only coreset (Alg. 3)           [§4.3, Thm 18]
//   stream-mk        McCutchen–Khuller baseline (solution-only)
//   stream-sliding   sliding-window structure (query-only summary) [§6]
//   dynamic          fully dynamic sketch (Alg. 5)             [§5, Thm 21]
//
// Adding a pipeline = implement `Pipeline`, register it here (or from user
// code via `registry().add`), and it is immediately runnable from
// kcenter_cli, the bench harnesses, and tests/test_engine.cpp — which
// iterates every registered name, so an unregistered or broken pipeline
// fails CI.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/pipeline.hpp"

namespace kc::engine {

class Registry {
 public:
  using Factory = std::function<std::unique_ptr<Pipeline>()>;

  /// Registers a factory under `name`.  Names are unique; re-registering
  /// an existing name is a contract violation.
  void add(const std::string& name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the pipeline registered under `name`; contract violation
  /// for unknown names (use `contains` to probe).
  [[nodiscard]] std::unique_ptr<Pipeline> make(const std::string& name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// The process-wide registry with all built-in pipelines registered.
[[nodiscard]] Registry& registry();

/// Convenience: instantiate `name` from the registry and execute it.
[[nodiscard]] PipelineResult run(const std::string& name, const Workload& w,
                                 const PipelineConfig& cfg);

}  // namespace kc::engine
