// Streaming pipelines: the paper's insertion-only coreset (Algorithm 3),
// the McCutchen–Khuller solution-only baseline, and the sliding-window
// structure (query-only summary; weights capped at z+1).
//
// All three consume the workload's arrival order.  The sliding-window
// pipeline's ground truth is the window contents (the last W arrivals);
// the other two summarize the whole stream.

#include <algorithm>
#include <memory>

#include "dataset/source.hpp"
#include "engine/builtin.hpp"
#include "engine/registry.hpp"
#include "geometry/box.hpp"
#include "stream/insertion_only.hpp"
#include "stream/mccutchen_khuller.hpp"
#include "stream/sliding_window.hpp"
#include "util/timer.hpp"

namespace kc::engine {

namespace {

/// Arrival order view: the workload's order, or input order when empty.
std::size_t arrival(const Workload& w, std::size_t i) {
  return w.order.empty() ? i : w.order[i];
}

class InsertionPipeline final : public Pipeline {
 public:
  [[nodiscard]] std::string name() const override { return "stream-insertion"; }
  [[nodiscard]] std::string model() const override { return "stream"; }
  [[nodiscard]] std::string description() const override {
    return "insertion-only streaming coreset (Algorithm 3, Theorem 18); "
           "the threshold policy knob selects ours vs the Ceccarello shape";
  }

  [[nodiscard]] bool supports_dataset() const override { return true; }

  [[nodiscard]] PipelineResult run(const Workload& w,
                                   const PipelineConfig& cfg) const override {
    const Metric metric = cfg.metric();
    PipelineResult res;
    stream::InsertionOnlyStream s(cfg.k, cfg.z, cfg.eps, cfg.dim, metric,
                                  cfg.policy);
    Timer timer;
    if (w.from_dataset()) {
      // Out-of-core: feed the stream chunk-by-chunk in the source's
      // sequential order.  The per-point insertions are identical to the
      // in-memory loop below under an empty arrival order, so summary and
      // report are bit-identical to a materialized run; only this path's
      // memory stays O(chunk + coreset) regardless of n.
      dataset::DataSource& src = *w.source;
      KC_EXPECTS(src.dim() == cfg.dim && cfg.dim <= Point::kMaxDim);
      dataset::ChunkedReader reader(src);
      dataset::ChunkedReader::Chunk ch;
      Point p(cfg.dim);
      while (reader.next(ch))
        for (std::size_t i = 0; i < ch.view.size(); ++i) {
          for (int j = 0; j < cfg.dim; ++j) p[j] = ch.view.col(j)[i];
          s.insert_weighted(p, 1);
        }
    } else {
      for (std::size_t i = 0; i < w.n(); ++i)
        s.insert_weighted(w.planted.points[arrival(w, i)].p,
                          w.planted.points[arrival(w, i)].w);
    }
    res.report.build_ms = timer.millis();
    res.coreset = s.coreset();
    res.report.words = s.peak_words();
    res.report.set("peak_size", static_cast<double>(s.peak_size()));
    res.report.set("threshold", static_cast<double>(s.threshold()));
    res.report.set("doublings", static_cast<double>(s.doublings()));
    res.report.set("r", s.r());
    if (w.from_dataset()) {
      extract_and_evaluate_source(res, *w.source, cfg);
    } else {
      extract_and_evaluate(res, w.planted.points, cfg, w);
    }
    return res;
  }
};

class McCutchenKhullerPipeline final : public Pipeline {
 public:
  [[nodiscard]] std::string name() const override { return "stream-mk"; }
  [[nodiscard]] std::string model() const override { return "stream"; }
  [[nodiscard]] std::string description() const override {
    return "McCutchen-Khuller (4+eps) streaming baseline: exact support "
           "points, solution-only (no coreset)";
  }
  [[nodiscard]] bool preserves_weight() const override { return false; }
  [[nodiscard]] double quality_bound() const override { return 7.0; }

  [[nodiscard]] PipelineResult run(const Workload& w,
                                   const PipelineConfig& cfg) const override {
    const Metric metric = cfg.metric();
    PipelineResult res;
    stream::McCutchenKhuller mk(cfg.k, cfg.z, cfg.eps, metric);
    Timer timer;
    for (std::size_t i = 0; i < w.n(); ++i)
      mk.insert(w.planted.points[arrival(w, i)].p);
    res.report.build_ms = timer.millis();
    res.report.words =
        mk.peak_points() * static_cast<std::size_t>(cfg.dim + 1);
    res.report.set("peak_points", static_cast<double>(mk.peak_points()));
    res.report.set("instances", static_cast<double>(mk.instances()));
    if (cfg.with_extraction) {
      Timer solve;
      const Solution sol = mk.query();
      res.report.solve_ms = solve.millis();
      evaluate_centers(res, sol.centers, w.planted.points, cfg, w);
    }
    return res;
  }
};

class SlidingWindowPipeline final : public Pipeline {
 public:
  [[nodiscard]] std::string name() const override { return "stream-sliding"; }
  [[nodiscard]] std::string model() const override { return "stream"; }
  [[nodiscard]] std::string description() const override {
    return "sliding-window structure (De Berg-Monemizadeh-Zhong shape, "
           "Theorem 30 space): query-only covering with weights capped at "
           "z+1";
  }
  [[nodiscard]] bool preserves_weight() const override { return false; }
  [[nodiscard]] double quality_bound() const override {
    return 12.0;  // factor-2 ladder × reanchoring × solver, see sliding_window.hpp
  }

  [[nodiscard]] PipelineResult run(const Workload& w,
                                   const PipelineConfig& cfg) const override {
    const Metric metric = cfg.metric();
    const std::int64_t n = static_cast<std::int64_t>(w.n());
    const std::int64_t W = cfg.window > 0 ? cfg.window : n;
    // Radius ladder spanning the instance's scale: the bounding-box
    // diameter upper-bounds opt; 12 factor-2 levels below it reach any
    // plausible optimum of a planted workload.
    Box box = Box::empty(cfg.dim);
    for (const auto& wp : w.planted.points) box.extend(wp.p);
    const double r_max = std::max(box.is_empty() ? 1.0 : box.diameter(metric),
                                  1e-6);
    const double r_min = r_max / 4096.0;

    PipelineResult res;
    stream::SlidingWindow sw(cfg.k, cfg.z, cfg.eps, cfg.dim, W, r_min, r_max,
                             metric);
    Timer timer;
    for (std::int64_t t = 1; t <= n; ++t)
      sw.insert(w.planted.points[arrival(w, static_cast<std::size_t>(t - 1))].p,
                t);
    res.report.build_ms = timer.millis();
    const auto q = sw.query(n);
    res.coreset = q.coreset;
    res.report.words =
        sw.peak_records() * static_cast<std::size_t>(cfg.dim + 1);
    res.report.set("level", static_cast<double>(q.level));
    res.report.set("guess", q.guess);
    res.report.set("cover_radius", q.cover_radius);
    res.report.set("levels", static_cast<double>(sw.levels()));
    res.report.set("cap_per_level", static_cast<double>(sw.cap_per_level()));
    res.report.set("peak_records", static_cast<double>(sw.peak_records()));
    res.report.set("ok", q.level >= 0 ? 1.0 : 0.0);

    // Ground truth = the window contents: arrivals with t in (n-W, n],
    // gathered as AoS + SoA side by side so the evaluation tail runs on
    // the buffer directly.
    WeightedSet window;
    const std::int64_t first = std::max<std::int64_t>(n - W, 0);
    window.reserve(static_cast<std::size_t>(n - first));
    kernels::PointBuffer window_buf(cfg.dim);
    window_buf.reserve(static_cast<std::size_t>(n - first));
    for (std::int64_t t = first; t < n; ++t) {
      window.push_back(
          w.planted.points[arrival(w, static_cast<std::size_t>(t))]);
      window_buf.append(window.back().p);
    }
    mpc::ExecContext tail;
    tail.buffer = &window_buf;
    extract_and_evaluate(res, window, cfg, w, tail);
    return res;
  }
};

}  // namespace

void register_stream_pipelines(Registry& reg) {
  reg.add("stream-insertion",
          [] { return std::make_unique<InsertionPipeline>(); });
  reg.add("stream-mk",
          [] { return std::make_unique<McCutchenKhullerPipeline>(); });
  reg.add("stream-sliding",
          [] { return std::make_unique<SlidingWindowPipeline>(); });
}

}  // namespace kc::engine
