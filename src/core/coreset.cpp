#include "core/coreset.hpp"

#include <cmath>

namespace kc {

double compose_eps_rounds(double eps, int rounds) noexcept {
  return std::pow(1.0 + eps, rounds) - 1.0;
}

MiniBallCovering recompress(const WeightedSet& merged, int k, std::int64_t z,
                            double eps, const Metric& metric,
                            const OracleOptions& oracle) {
  return mbc_construct(merged, k, z, eps, metric, oracle);
}

}  // namespace kc
