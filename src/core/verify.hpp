// Verification utilities: exact checks of the mini-ball-covering properties
// (Definition 2) and empirical checks of the coreset sandwich
// (Definition 1).  Used throughout the test suite and by the QUALITY bench.

#pragma once

#include <cstdint>

#include "core/mbc.hpp"
#include "core/types.hpp"

namespace kc {

/// Definition-2 structural check against the original input:
///  * every input point is assigned to exactly one representative,
///  * each representative's weight equals the total weight of its group,
///  * total weight is preserved,
///  * every representative is an input point (subset property).
/// Returns true iff all hold.
[[nodiscard]] bool check_mbc_structure(const WeightedSet& input,
                                       const MiniBallCovering& mbc);

/// Maximum distance from an input point to its representative.  The
/// covering property requires this ≤ ε·optk,z(P); tests compare it against
/// ε·opt_hi of a planted instance.
[[nodiscard]] double max_assignment_dist(const WeightedSet& input,
                                         const MiniBallCovering& mbc,
                                         const Metric& metric);

/// Representatives pairwise strictly farther than `radius` apart — the
/// separation invariant the greedy pass maintains (drives the Lemma-6/7
/// size bounds).
[[nodiscard]] bool check_separation(const WeightedSet& reps, double radius,
                                    const Metric& metric);

/// Definition-1(2) expansion check: for a candidate solution B (centers +
/// radius r) feasible on the coreset (uncovered coreset weight ≤ z), the
/// expanded balls with radius r + slack must leave uncovered weight ≤ z on
/// the original set.  Returns true iff that holds.
[[nodiscard]] bool check_expansion_property(const WeightedSet& original,
                                            const WeightedSet& coreset,
                                            const PointSet& centers,
                                            double radius, double slack,
                                            std::int64_t z,
                                            const Metric& metric);

}  // namespace kc
