#include "core/radius_oracle.hpp"

#include <cmath>

#include "core/charikar.hpp"
#include "core/gonzalez.hpp"
#include "util/check.hpp"

namespace kc {

std::int64_t summary_center_budget(int k, std::int64_t z, double gamma,
                                   int dim) {
  KC_EXPECTS(gamma > 0.0 && gamma <= 1.0);
  const auto per_center =
      static_cast<std::int64_t>(std::pow(std::ceil(4.0 / gamma), dim));
  return static_cast<std::int64_t>(k) * per_center + z + 1;
}

namespace {

RadiusEstimate charikar_estimate(const WeightedSet& pts, int k, std::int64_t z,
                                 const Metric& metric, double beta,
                                 const mpc::ExecContext& exec) {
  CharikarOptions copt;
  copt.beta = beta;
  copt.exec = exec;
  const CharikarResult res = charikar_oracle(pts, k, z, metric, copt);
  return {res.radius, 3.0 * (1.0 + beta)};
}

RadiusEstimate summary_estimate(const WeightedSet& pts, int k, std::int64_t z,
                                const Metric& metric, double gamma,
                                double beta, const mpc::ExecContext& exec) {
  if (pts.empty()) return {0.0, 1.0};
  const int dim = pts.front().p.dim();
  const std::int64_t tau = summary_center_budget(k, z, gamma, dim);
  if (static_cast<std::int64_t>(pts.size()) <= tau) {
    // Summary would be the whole input: fall back to Charikar directly.
    return charikar_estimate(pts, k, z, metric, beta, exec);
  }
  const GonzalezResult g = gonzalez(pts, static_cast<int>(tau), metric,
                                    /*stop_radius=*/0.0, exec.pool,
                                    exec.buffer);
  const double delta = g.delta.back();  // ≤ γ·opt by the packing bound
  const WeightedSet summary = gonzalez_summary(pts, g);
  // The caller's buffer mirrors `pts`, not the summary; the Charikar oracle
  // packs the (small) summary itself, once for its whole ladder.
  mpc::ExecContext summary_exec = exec;
  summary_exec.buffer = nullptr;
  const RadiusEstimate rs =
      charikar_estimate(summary, k, z, metric, beta, summary_exec);
  // opt(P) ≤ opt(S) + δ ≤ r_S + δ, and
  // r_S + δ ≤ ρ_C·opt(S) + δ ≤ ρ_C(opt+δ) + δ ≤ (ρ_C(1+γ) + γ)·opt.
  const double rho = rs.rho * (1.0 + gamma) + gamma;
  return {rs.radius + delta, rho};
}

}  // namespace

RadiusEstimate estimate_radius(const WeightedSet& pts, int k, std::int64_t z,
                               const Metric& metric, const OracleOptions& opt) {
  switch (opt.kind) {
    case OracleKind::Charikar:
      return charikar_estimate(pts, k, z, metric, opt.beta, opt.exec);
    case OracleKind::Summary:
      return summary_estimate(pts, k, z, metric, opt.gamma, opt.beta,
                              opt.exec);
    case OracleKind::Auto:
      if (pts.size() > opt.auto_threshold)
        return summary_estimate(pts, k, z, metric, opt.gamma, opt.beta,
                                opt.exec);
      return charikar_estimate(pts, k, z, metric, opt.beta, opt.exec);
  }
  return {0.0, 1.0};  // unreachable
}

}  // namespace kc
