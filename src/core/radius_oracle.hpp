// Radius oracles: two-sided estimates of optk,z(P).
//
// Every mini-ball-covering construction in the paper consumes the radius r
// reported by `Greedy` [14] together with its approximation factor: it
// needs  opt ≤ r ≤ ρ·opt  (lower side for the covering property, upper side
// for the size bound, Lemma 7).  We expose that contract as RadiusEstimate
// and provide three implementations:
//
//  * Charikar      — the paper's choice: ladder-searched Charikar greedy,
//                    ρ = 3(1+β) with respect to the discrete-center optimum
//                    (see charikar.hpp for the discretisation discussion).
//  * Summary       — fast path: Gonzalez summary of size k(4/γ)^d + z + 1
//                    (covering radius δ ≤ γ·opt by the packing bound),
//                    Charikar on the summary, r = r_S + δ.  Factor
//                    ρ = ρ_C(1+γ) + γ; cost O(n·(k(4/γ)^d+z)) instead of
//                    the ladder of greedy passes over the full input.
//  * Auto          — Summary when the input is large, Charikar otherwise.
//
// Both underlying passes (Gonzalez relaxation, Charikar greedy) run on the
// performance layer — inline kernels + hash-grid neighborhoods, see
// geometry/kernels.hpp and docs/ARCHITECTURE.md — so the Charikar oracle is
// usable well beyond the sizes the original O(ladder·k·n²) rescan allowed.
//
// All guarantees are stated for positive-integer-weighted inputs, matching
// the weighted problem of the paper.

#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "mpc/context.hpp"

namespace kc {

struct RadiusEstimate {
  double radius = 0.0;  ///< estimate r with opt ≤ r ≤ rho·opt
  double rho = 1.0;     ///< stated approximation factor of `radius`
};

enum class OracleKind : std::uint8_t { Charikar, Summary, Auto };

struct OracleOptions {
  OracleKind kind = OracleKind::Auto;
  double beta = 0.25;      ///< Charikar ladder density
  double gamma = 0.5;      ///< Summary oracle target δ/opt ratio
  std::size_t auto_threshold = 600;  ///< Auto: input size above which Summary is used
  /// Execution environment (mpc/context.hpp): `exec.pool` runs the
  /// chunk-parallel batch kernels (results are bit-identical with or
  /// without); `exec.buffer` is a prebuilt SoA buffer of the input in the
  /// same order, letting the Gonzalez and Charikar passes skip their own
  /// AoS→SoA re-pack (ignored when null or stale — results are identical
  /// either way).  Fault/transport members are unused here.
  mpc::ExecContext exec;
};

/// Computes a two-sided estimate of optk,z(pts).
[[nodiscard]] RadiusEstimate estimate_radius(const WeightedSet& pts, int k,
                                             std::int64_t z, const Metric& metric,
                                             const OracleOptions& opt = {});

/// The τ(γ) center budget that forces the Gonzalez covering radius down to
/// ≤ γ·optk,z (packing bound, Lemma 6): k·⌈4/γ⌉^d + z + 1.
[[nodiscard]] std::int64_t summary_center_budget(int k, std::int64_t z,
                                                 double gamma, int dim);

}  // namespace kc
