#include "core/solver.hpp"

#include <limits>

#include "core/brute_force.hpp"
#include "core/charikar.hpp"
#include "core/cost.hpp"
#include "core/gonzalez.hpp"
#include "util/check.hpp"

namespace kc {

Solution solve_kcenter_outliers(const WeightedSet& pts, int k, std::int64_t z,
                                const Metric& metric,
                                const OracleOptions& oracle) {
  KC_EXPECTS(!pts.empty());
  // The oracle's prebuilt buffer (when supplied) mirrors `pts`; it feeds
  // the Gonzalez compression, the Charikar ladder (when uncompressed), and
  // the final evaluation — one pack for the whole solve.
  const kernels::PointBuffer* buffer =
      (oracle.exec.buffer != nullptr &&
       oracle.exec.buffer->size() == pts.size())
          ? oracle.exec.buffer
          : nullptr;
  CharikarOptions copt;
  copt.beta = oracle.beta;
  copt.exec = oracle.exec;
  copt.exec.buffer = buffer;

  // The Charikar greedy is O(ladder · k · n²); above the threshold we first
  // compress with a Gonzalez summary (covering radius ≤ γ·opt by the
  // packing bound), which perturbs the optimum by ≤ γ·opt — a constant
  // absorbed into the solver's approximation factor.
  const WeightedSet* work = &pts;
  WeightedSet summary;
  if (pts.size() > oracle.auto_threshold) {
    const int dim = pts.front().p.dim();
    const std::int64_t tau = summary_center_budget(k, z, oracle.gamma, dim);
    if (static_cast<std::int64_t>(pts.size()) > tau) {
      const GonzalezResult g = gonzalez(pts, static_cast<int>(tau), metric,
                                        /*stop_radius=*/0.0, oracle.exec.pool,
                                        buffer);
      summary = gonzalez_summary(pts, g);
      work = &summary;
      copt.exec.buffer = nullptr;  // the buffer mirrors pts, not the summary
    }
  }

  const CharikarResult res = charikar_oracle(*work, k, z, metric, copt);
  PointSet centers = res.centers;
  // The radius we report is the exact outlier-aware radius of the chosen
  // centers on the *original* weighted set.
  return evaluate(pts, std::move(centers), z, metric, buffer);
}

Solution solve_kcenter_outliers_exact(const WeightedSet& pts, int k,
                                      std::int64_t z, const Metric& metric,
                                      std::uint64_t budget) {
  KC_EXPECTS(!pts.empty());
  // C(n, k) within budget → exact discrete-center enumeration.
  std::uint64_t combos = 1;
  bool feasible = true;
  for (int i = 1; i <= k && feasible; ++i) {
    combos = combos * (pts.size() - static_cast<std::size_t>(k) +
                       static_cast<std::size_t>(i)) /
             static_cast<std::uint64_t>(i);
    if (combos > budget) feasible = false;
  }
  if (feasible && static_cast<std::size_t>(k) <= pts.size())
    return brute_force_kcenter(pts, k, z, metric);
  return solve_kcenter_outliers(pts, k, z, metric);
}

Labeling classify(const WeightedSet& pts, const Solution& sol,
                  const Metric& metric) {
  KC_EXPECTS(!sol.centers.empty());
  Labeling out;
  out.labels.reserve(pts.size());
  // Tolerance mirrors check_expansion_property: absorb fp rounding so a
  // point exactly on the boundary counts as covered.
  const double limit = sol.radius * (1.0 + 1e-12) + 1e-300;
  for (const auto& wp : pts) {
    int best = -1;
    double best_key = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < sol.centers.size(); ++c) {
      const double key = metric.dist_key(wp.p, sol.centers[c]);
      if (key < best_key) {
        best_key = key;
        best = static_cast<int>(c);
      }
    }
    if (metric.key_to_dist(best_key) > limit) {
      out.labels.push_back(-1);
      out.outlier_weight += wp.w;
    } else {
      out.labels.push_back(best);
    }
  }
  return out;
}

PipelineQuality compare_on_full(const WeightedSet& full,
                                const WeightedSet& coreset, int k,
                                std::int64_t z, const Metric& metric,
                                const OracleOptions& oracle) {
  PipelineQuality q;
  const Solution via = solve_kcenter_outliers(coreset, k, z, metric, oracle);
  q.radius_via_coreset =
      radius_with_outliers(full, via.centers, z, metric);
  const Solution direct = solve_kcenter_outliers(full, k, z, metric, oracle);
  q.radius_direct = direct.radius;
  q.ratio = q.radius_direct > 0 ? q.radius_via_coreset / q.radius_direct : 1.0;
  return q;
}

}  // namespace kc
