#include "core/mbc.hpp"

#include <cmath>

#include "core/gonzalez.hpp"
#include "util/check.hpp"

namespace kc {

MiniBallCovering mbc_with_radius(const WeightedSet& pts, double radius,
                                 const Metric& metric) {
  KC_EXPECTS(radius >= 0.0);
  MiniBallCovering out;
  out.cover_radius = radius;
  out.assignment.reserve(pts.size());
  const double key =
      (metric.norm() == Norm::L2) ? radius * radius : radius;

  for (const auto& wp : pts) {
    KC_EXPECTS(wp.w > 0);
    bool placed = false;
    for (std::size_t r = 0; r < out.reps.size(); ++r) {
      if (metric.dist_key(wp.p, out.reps[r].p) <= key) {
        out.reps[r].w += wp.w;
        out.assignment.push_back(static_cast<std::uint32_t>(r));
        placed = true;
        break;
      }
    }
    if (!placed) {
      out.assignment.push_back(static_cast<std::uint32_t>(out.reps.size()));
      out.reps.push_back(wp);
    }
  }
  return out;
}

MiniBallCovering mbc_construct(const WeightedSet& pts, int k, std::int64_t z,
                               double eps, const Metric& metric,
                               const OracleOptions& oracle) {
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  if (pts.empty()) return {};
  const RadiusEstimate est = estimate_radius(pts, k, z, metric, oracle);
  // Mini-ball radius ε·r/ρ ≤ ε·opt (covering property); since r ≥ opt the
  // representatives are pairwise > (ε/ρ)·opt apart, giving the Lemma-7 size
  // bound k(4ρ/ε)^d + z.
  MiniBallCovering out =
      mbc_with_radius(pts, eps * est.radius / est.rho, metric);
  out.oracle_radius = est.radius;
  out.rho = est.rho;
  return out;
}

MiniBallCovering mbc_via_gonzalez(const WeightedSet& pts, int k,
                                  std::int64_t z, double eps,
                                  const Metric& metric) {
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  if (pts.empty()) return {};
  const int dim = pts.front().p.dim();
  const std::int64_t tau = summary_center_budget(k, z, eps, dim);
  const GonzalezResult g = gonzalez(
      pts, static_cast<int>(std::min<std::int64_t>(
               tau, static_cast<std::int64_t>(pts.size()))),
      metric);
  MiniBallCovering out;
  out.reps = gonzalez_summary(pts, g);
  out.assignment = g.assignment;
  out.cover_radius = g.delta.back();
  out.rho = 1.0;  // oracle-free
  return out;
}

double mbc_size_bound(int k, std::int64_t z, double eps, double rho, int dim) {
  return static_cast<double>(k) * std::pow(4.0 * rho / eps, dim) +
         static_cast<double>(z);
}

WeightedSet merge_coresets(const std::vector<WeightedSet>& parts) {
  WeightedSet out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace kc
