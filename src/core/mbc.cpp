#include "core/mbc.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "core/gonzalez.hpp"
#include "geometry/grid_index.hpp"
#include "geometry/kernels.hpp"
#include "util/check.hpp"

namespace kc {

namespace {

// Below this input size the grid build costs more than it prunes.
constexpr std::size_t kGridMinPoints = 32;

// Rep count at which the covering pass switches from the early-exit linear
// scan to grid probes.  The scan touches first-hit-position inline
// distances per point (cheap, and small while reps are few); a grid probe
// costs 3^d hash lookups regardless, so it only wins once the rep set is
// large.  Switching mid-pass is output-invariant: both sides assign to the
// lowest-index representative within the radius.
constexpr std::size_t kGridSwitchReps = 256;

// Covering pass with grid acceleration: representatives are indexed in a
// hash grid with cell width = radius, so each point probes only the 3^d
// neighboring cells instead of scanning every representative.  To match
// the scalar reference exactly we assign to the *lowest-index*
// representative within the radius (the scalar scan returns the first
// hit in rep order, which is the same thing).  The grid is built lazily
// once the rep set reaches `switch_reps`.
template <Norm N>
MiniBallCovering mbc_hybrid_impl(const WeightedSet& pts, double radius,
                                 std::size_t switch_reps) {
  MiniBallCovering out;
  out.cover_radius = radius;
  out.assignment.reserve(pts.size());
  const double key = kernels::dist_to_key(N, radius);
  const int dim = pts.front().p.dim();

  // SoA mirror of the rep coordinates for the pre-grid phase: the
  // "first rep within radius" probe runs through the blocked vectorized
  // scan (identical first hit).  Not maintained once the grid takes over.
  kernels::PointBuffer repbuf(dim);
  repbuf.reserve(switch_reps);

  std::optional<GridIndex> grid;
  const auto ensure_grid = [&] {
    if (grid || out.reps.size() < switch_reps) return;
    grid.emplace(radius, dim);
    for (std::size_t r = 0; r < out.reps.size(); ++r)
      grid->insert(out.reps[r].p, static_cast<std::uint32_t>(r));
  };
  ensure_grid();

  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  for (const auto& wp : pts) {
    KC_EXPECTS(wp.w > 0);
    const double* q = wp.p.coords().data();
    std::uint32_t best = kNone;
    if (grid) {
      grid->for_each_candidate(q, 1,
                               [&](std::span<const std::uint32_t> cell) {
                                 for (const std::uint32_t r : cell) {
                                   if (r < best &&
                                       kernels::raw_key<N>(
                                           q, out.reps[r].p.coords().data(),
                                           dim) <= key)
                                     best = r;
                                 }
                               });
    } else {
      const std::size_t hit = kernels::first_within<N>(repbuf, q, key);
      if (hit < repbuf.size()) best = static_cast<std::uint32_t>(hit);
    }
    if (best != kNone) {
      out.reps[best].w += wp.w;
      out.assignment.push_back(best);
    } else {
      const auto id = static_cast<std::uint32_t>(out.reps.size());
      out.assignment.push_back(id);
      out.reps.push_back(wp);
      if (grid) {
        grid->insert(q, id);
      } else {
        repbuf.append(q);
        ensure_grid();
      }
    }
  }
  return out;
}

MiniBallCovering mbc_by_norm(const WeightedSet& pts, double radius,
                             const Metric& metric, std::size_t switch_reps) {
  switch (metric.norm()) {
    case Norm::L2:
      return mbc_hybrid_impl<Norm::L2>(pts, radius, switch_reps);
    case Norm::Linf:
      return mbc_hybrid_impl<Norm::Linf>(pts, radius, switch_reps);
    case Norm::L1:
      return mbc_hybrid_impl<Norm::L1>(pts, radius, switch_reps);
    case Norm::Custom: break;  // callers exclude Custom
  }
  return mbc_with_radius_scalar(pts, radius, metric);  // unreachable
}

}  // namespace

MiniBallCovering mbc_with_radius_scalar(const WeightedSet& pts, double radius,
                                        const Metric& metric) {
  KC_EXPECTS(radius >= 0.0);
  MiniBallCovering out;
  out.cover_radius = radius;
  out.assignment.reserve(pts.size());
  const double key = metric.dist_to_key(radius);

  for (const auto& wp : pts) {
    KC_EXPECTS(wp.w > 0);
    bool placed = false;
    for (std::size_t r = 0; r < out.reps.size(); ++r) {
      if (metric.dist_key(wp.p, out.reps[r].p) <= key) {
        out.reps[r].w += wp.w;
        out.assignment.push_back(static_cast<std::uint32_t>(r));
        placed = true;
        break;
      }
    }
    if (!placed) {
      out.assignment.push_back(static_cast<std::uint32_t>(out.reps.size()));
      out.reps.push_back(wp);
    }
  }
  return out;
}

MiniBallCovering mbc_with_radius(const WeightedSet& pts, double radius,
                                 const Metric& metric) {
  KC_EXPECTS(radius >= 0.0);
  if (metric.norm() == Norm::Custom || radius <= 0.0 ||
      pts.size() < kGridMinPoints)
    return mbc_with_radius_scalar(pts, radius, metric);
  return mbc_by_norm(pts, radius, metric, kGridSwitchReps);
}

MiniBallCovering mbc_with_radius_grid(const WeightedSet& pts, double radius,
                                      const Metric& metric) {
  KC_EXPECTS(radius > 0.0);
  KC_EXPECTS(metric.norm() != Norm::Custom);
  if (pts.empty()) {
    MiniBallCovering out;
    out.cover_radius = radius;
    return out;
  }
  return mbc_by_norm(pts, radius, metric, /*switch_reps=*/0);
}

MiniBallCovering mbc_construct(const WeightedSet& pts, int k, std::int64_t z,
                               double eps, const Metric& metric,
                               const OracleOptions& oracle) {
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  if (pts.empty()) return {};
  const RadiusEstimate est = estimate_radius(pts, k, z, metric, oracle);
  // Mini-ball radius ε·r/ρ ≤ ε·opt (covering property); since r ≥ opt the
  // representatives are pairwise > (ε/ρ)·opt apart, giving the Lemma-7 size
  // bound k(4ρ/ε)^d + z.
  MiniBallCovering out =
      mbc_with_radius(pts, eps * est.radius / est.rho, metric);
  out.oracle_radius = est.radius;
  out.rho = est.rho;
  return out;
}

MiniBallCovering mbc_via_gonzalez(const WeightedSet& pts, int k,
                                  std::int64_t z, double eps,
                                  const Metric& metric) {
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  if (pts.empty()) return {};
  const int dim = pts.front().p.dim();
  const std::int64_t tau = summary_center_budget(k, z, eps, dim);
  const GonzalezResult g = gonzalez(
      pts, static_cast<int>(std::min<std::int64_t>(
               tau, static_cast<std::int64_t>(pts.size()))),
      metric);
  MiniBallCovering out;
  out.reps = gonzalez_summary(pts, g);
  out.assignment = g.assignment;
  out.cover_radius = g.delta.back();
  out.rho = 1.0;  // oracle-free
  return out;
}

double mbc_size_bound(int k, std::int64_t z, double eps, double rho, int dim) {
  return static_cast<double>(k) * std::pow(4.0 * rho / eps, dim) +
         static_cast<double>(z);
}

WeightedSet merge_coresets(const std::vector<WeightedSet>& parts) {
  WeightedSet out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace kc
