// Shared problem types for the k-center problem with z outliers.

#pragma once

#include <cstdint>
#include <vector>

#include "geometry/metric.hpp"
#include "geometry/point.hpp"

namespace kc {

/// Problem parameters: number of centers k, outlier weight budget z, and
/// coreset error parameter ε ∈ (0, 1].
struct ParamsKZ {
  int k = 1;
  std::int64_t z = 0;
  double eps = 0.5;
};

/// A ball b(center, radius).
struct Ball {
  Point center;
  double radius = 0.0;
};

/// A k-center solution: k centers plus the common radius.  `radius` is the
/// radius needed to cover all but (weight ≤ z) points of the instance the
/// solution was evaluated on.
struct Solution {
  PointSet centers;
  double radius = 0.0;
};

}  // namespace kc
