#include "core/cost.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace kc {

std::vector<double> nearest_center_dist(const WeightedSet& pts,
                                        const PointSet& centers,
                                        const Metric& metric) {
  KC_EXPECTS(!centers.empty());
  std::vector<double> out;
  out.reserve(pts.size());
  for (const auto& wp : pts) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : centers) {
      const double key = metric.dist_key(wp.p, c);
      if (key < best) best = key;
    }
    out.push_back(metric.key_to_dist(best));
  }
  return out;
}

double radius_with_outliers(const WeightedSet& pts, const PointSet& centers,
                            std::int64_t z, const Metric& metric) {
  if (pts.empty()) return 0.0;
  const std::vector<double> dist = nearest_center_dist(pts, centers, metric);

  // Pair distances with weights, sort descending by distance, and walk from
  // the farthest point: once the accumulated weight would exceed z, the
  // current point must be covered, so its distance is the required radius.
  std::vector<std::pair<double, std::int64_t>> dw;
  dw.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    KC_EXPECTS(pts[i].w > 0);
    dw.emplace_back(dist[i], pts[i].w);
  }
  std::sort(dw.begin(), dw.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::int64_t acc = 0;
  for (const auto& [d, w] : dw) {
    if (acc + w > z) return d;
    acc += w;
  }
  return 0.0;  // total weight ≤ z: everything may be an outlier
}

std::int64_t uncovered_weight(const WeightedSet& pts, const PointSet& centers,
                              double r, const Metric& metric) {
  const std::vector<double> dist = nearest_center_dist(pts, centers, metric);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (dist[i] > r) acc += pts[i].w;
  return acc;
}

Solution evaluate(const WeightedSet& pts, PointSet centers, std::int64_t z,
                  const Metric& metric) {
  Solution sol;
  sol.radius = radius_with_outliers(pts, centers, z, metric);
  sol.centers = std::move(centers);
  return sol;
}

}  // namespace kc
