#include "core/cost.hpp"

#include <algorithm>
#include <limits>

#include "geometry/kernels.hpp"
#include "util/check.hpp"

namespace kc {

namespace {

// Batched nearest-center keys over a prebuilt SoA buffer: one min-relax
// sweep per center, centers in ascending order — the same per-point
// minimisation sequence as the scalar loop, so bit-identical keys.
template <Norm N>
std::vector<double> nearest_center_keys(const kernels::PointBuffer& buf,
                                        const PointSet& centers) {
  const std::size_t n = buf.size();
  std::vector<double> keys(n, std::numeric_limits<double>::infinity());
  std::vector<double> scratch(n);
  for (const auto& c : centers)
    kernels::min_keys<N>(buf, c.coords().data(), keys.data(), scratch.data());
  return keys;
}

}  // namespace

std::vector<double> nearest_center_dist(const WeightedSet& pts,
                                        const PointSet& centers,
                                        const Metric& metric,
                                        const kernels::PointBuffer* buf) {
  KC_EXPECTS(!centers.empty());
  if (buf != nullptr && buf->size() == pts.size() &&
      metric.norm() != Norm::Custom && !pts.empty()) {
    std::vector<double> keys;
    switch (metric.norm()) {
      case Norm::L2:
        keys = nearest_center_keys<Norm::L2>(*buf, centers);
        break;
      case Norm::Linf:
        keys = nearest_center_keys<Norm::Linf>(*buf, centers);
        break;
      case Norm::L1:
        keys = nearest_center_keys<Norm::L1>(*buf, centers);
        break;
      case Norm::Custom: break;  // excluded above
    }
    for (auto& k : keys) k = metric.key_to_dist(k);
    return keys;
  }
  std::vector<double> out;
  out.reserve(pts.size());
  for (const auto& wp : pts) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : centers) {
      const double key = metric.dist_key(wp.p, c);
      if (key < best) best = key;
    }
    out.push_back(metric.key_to_dist(best));
  }
  return out;
}

double radius_with_outliers(const WeightedSet& pts, const PointSet& centers,
                            std::int64_t z, const Metric& metric,
                            const kernels::PointBuffer* buf) {
  if (pts.empty()) return 0.0;
  const std::vector<double> dist =
      nearest_center_dist(pts, centers, metric, buf);

  // Pair distances with weights, sort descending by distance, and walk from
  // the farthest point: once the accumulated weight would exceed z, the
  // current point must be covered, so its distance is the required radius.
  std::vector<std::pair<double, std::int64_t>> dw;
  dw.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    KC_EXPECTS(pts[i].w > 0);
    dw.emplace_back(dist[i], pts[i].w);
  }
  std::sort(dw.begin(), dw.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::int64_t acc = 0;
  for (const auto& [d, w] : dw) {
    if (acc + w > z) return d;
    acc += w;
  }
  return 0.0;  // total weight ≤ z: everything may be an outlier
}

std::int64_t uncovered_weight(const WeightedSet& pts, const PointSet& centers,
                              double r, const Metric& metric,
                              const kernels::PointBuffer* buf) {
  const std::vector<double> dist =
      nearest_center_dist(pts, centers, metric, buf);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (dist[i] > r) acc += pts[i].w;
  return acc;
}

Solution evaluate(const WeightedSet& pts, PointSet centers, std::int64_t z,
                  const Metric& metric, const kernels::PointBuffer* buf) {
  Solution sol;
  sol.radius = radius_with_outliers(pts, centers, z, metric, buf);
  sol.centers = std::move(centers);
  return sol;
}

}  // namespace kc
