// Coreset composition helpers (Lemmas 4 and 5 of the paper).
//
// Lemma 4 (union): mini-ball coverings of disjoint parts, built with outlier
// budgets z_i satisfying optk,zi(P_i) ≤ optk,z(P), union into an
// (ε,k,z)-mini-ball covering of P.  Concatenation is `merge_coresets` in
// mbc.hpp; this header adds the re-compression step and error-composition
// arithmetic used by the MPC coordinator and the R-round algorithm.
//
// Lemma 5 (transitivity): an (ε,·)-covering of a (γ,·)-covering of P is an
// (ε+γ+εγ,·)-covering of P.  `compose_eps` computes that error, and
// `recompress` applies a fresh MBCConstruction on top of an existing
// coreset (what the coordinator does with ∪P*_i).

#pragma once

#include <cstdint>

#include "core/mbc.hpp"

namespace kc {

/// Error parameter after stacking a fresh ε-covering on a γ-covering
/// (Lemma 5): ε + γ + εγ = (1+ε)(1+γ) − 1.
[[nodiscard]] constexpr double compose_eps(double eps, double gamma) noexcept {
  return (1.0 + eps) * (1.0 + gamma) - 1.0;
}

/// Error after R rounds of ε-compositions (Theorem 35): (1+ε)^R − 1.
[[nodiscard]] double compose_eps_rounds(double eps, int rounds) noexcept;

/// Coordinator-side re-compression: MBCConstruction(Q, k, z, ε) on an
/// already-merged coreset Q.  Returns the covering together with metadata;
/// by Lemma 5 the result is a (compose_eps(ε, γ_in), k, z)-covering of the
/// original point set when Q was a γ_in-covering of it.
[[nodiscard]] MiniBallCovering recompress(const WeightedSet& merged, int k,
                                          std::int64_t z, double eps,
                                          const Metric& metric,
                                          const OracleOptions& oracle = {});

}  // namespace kc
