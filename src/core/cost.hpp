// Cost evaluation for k-center with outliers.
//
// The objective optk,z(P) is the smallest r such that k balls of radius r
// cover all of P except points of total weight ≤ z.  Given a fixed center
// set C, `radius_with_outliers` computes the exact optimal radius for C:
// the smallest r such that the weight of points farther than r from C is
// at most z.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kc {

/// Distance from each point of `pts` to its nearest center.
[[nodiscard]] std::vector<double> nearest_center_dist(const WeightedSet& pts,
                                                      const PointSet& centers,
                                                      const Metric& metric);

/// Smallest radius r such that the total weight of points with
/// dist(p, centers) > r is at most z.  Returns 0 when the total weight of
/// all points is ≤ z (everything may be an outlier) or when every point
/// coincides with a center.
[[nodiscard]] double radius_with_outliers(const WeightedSet& pts,
                                          const PointSet& centers,
                                          std::int64_t z, const Metric& metric);

/// Total weight of points strictly farther than r from every center.
[[nodiscard]] std::int64_t uncovered_weight(const WeightedSet& pts,
                                            const PointSet& centers, double r,
                                            const Metric& metric);

/// Evaluates `sol.centers` on `pts` and returns the solution with its exact
/// radius on that instance.
[[nodiscard]] Solution evaluate(const WeightedSet& pts, PointSet centers,
                                std::int64_t z, const Metric& metric);

}  // namespace kc
