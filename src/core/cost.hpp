// Cost evaluation for k-center with outliers.
//
// The objective optk,z(P) is the smallest r such that k balls of radius r
// cover all of P except points of total weight ≤ z.  Given a fixed center
// set C, `radius_with_outliers` computes the exact optimal radius for C:
// the smallest r such that the weight of points farther than r from C is
// at most z.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kc {

/// Distance from each point of `pts` to its nearest center.
///
/// `buf` (optional) is a prebuilt SoA buffer of `pts` in the same order
/// (e.g. the workload's canonical buffer): built-in norms then run the
/// batched min-relax kernel per center instead of the AoS scalar scan.
/// Per-point minimisation visits centers in the same ascending order either
/// way, so the result is bit-identical.  Ignored when null, stale (size
/// mismatch), or under a custom metric.
[[nodiscard]] std::vector<double> nearest_center_dist(
    const WeightedSet& pts, const PointSet& centers, const Metric& metric,
    const kernels::PointBuffer* buf = nullptr);

/// Smallest radius r such that the total weight of points with
/// dist(p, centers) > r is at most z.  Returns 0 when the total weight of
/// all points is ≤ z (everything may be an outlier) or when every point
/// coincides with a center.  `buf`: see `nearest_center_dist`.
[[nodiscard]] double radius_with_outliers(
    const WeightedSet& pts, const PointSet& centers, std::int64_t z,
    const Metric& metric, const kernels::PointBuffer* buf = nullptr);

/// Total weight of points strictly farther than r from every center.
/// `buf`: see `nearest_center_dist`.
[[nodiscard]] std::int64_t uncovered_weight(
    const WeightedSet& pts, const PointSet& centers, double r,
    const Metric& metric, const kernels::PointBuffer* buf = nullptr);

/// Evaluates `sol.centers` on `pts` and returns the solution with its exact
/// radius on that instance.  `buf`: see `nearest_center_dist`.
[[nodiscard]] Solution evaluate(const WeightedSet& pts, PointSet centers,
                                std::int64_t z, const Metric& metric,
                                const kernels::PointBuffer* buf = nullptr);

}  // namespace kc
