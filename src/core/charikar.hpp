// Charikar–Khuller–Mount–Narasimhan greedy for k-center with outliers [14]
// — the `Greedy(P, k, z)` subroutine of the paper.
//
// Single guess: given a radius guess r, repeatedly pick the input point
// whose ball b(·, r) covers the most uncovered weight and remove everything
// within the expanded ball b(·, 3r).  If after k picks the uncovered weight
// is ≤ z the guess *succeeds*; the k expanded balls of radius 3r are a
// feasible solution.  The classic guarantee: every guess r ≥ optk,z(P)
// succeeds, and success is monotone in r.
//
// Oracle: we binary-search the smallest successful guess r₀ over a
// (1+β)-dense geometric ladder of candidate radii.  The returned value
// r_out = 3·r₀ then satisfies the two-sided bound the mini-ball
// constructions need:
//
//    optk,z(P)  ≤  r_out  ≤  ρ · optk,z(P),       ρ = 3(1+β)·c_disc
//
// The lower bound is unconditional (success at r₀ exhibits k balls of
// radius 3r₀ covering all but ≤ z weight).  For the upper bound, the ladder
// contains a candidate within factor (1+β) above any value in its range and
// in R^d a pairwise distance d* with optk,z ∈ [d*/2, d*] always exists, so
// the smallest successful candidate is ≤ 2(1+β)·opt in the worst case
// (c_disc = 2); on the instances of interest success at the first candidate
// ≥ opt makes c_disc = 1.  We report ρ conservatively as 6(1+β); tests
// verify the bound empirically with planted-opt instances.

#pragma once

#include <cstdint>
#include <optional>

#include "core/types.hpp"
#include "mpc/context.hpp"

namespace kc {

class ThreadPool;  // util/parallel.hpp

struct CharikarRun {
  PointSet centers;       ///< ≤ k greedy centers (disk centers, radius 3r)
  std::int64_t uncovered = 0;  ///< weight left uncovered by the expanded balls
  bool success = false;   ///< uncovered ≤ z
};

/// One greedy pass with a fixed radius guess.  Built-in norms run the
/// grid-accelerated pass: candidate ball weights are computed once from
/// grid-bucketed neighborhoods and maintained *incrementally* as points are
/// covered, so the per-round cost is O(n) plus the (one-time) total size of
/// the r-balls touched, instead of the O(n²) rescan per round of the
/// reference below.  Results are bit-identical to the reference (pinned by
/// tests/test_kernels.cpp).  `pool` (optional) fans the initial
/// candidate-weight pass out over deterministic chunks — same results at
/// every thread count.  `buffer` (optional) is a prebuilt SoA buffer of
/// `pts` in the same order; when null the grid pass packs one itself.
[[nodiscard]] CharikarRun charikar_run(const WeightedSet& pts, int k,
                                       std::int64_t z, double r,
                                       const Metric& metric,
                                       ThreadPool* pool = nullptr,
                                       const kernels::PointBuffer* buffer =
                                           nullptr);

/// Reference implementation of `charikar_run`: the plain O(k · n²) rescan.
/// Fallback for custom metrics and degenerate radii, and the ground truth
/// for the grid-path equivalence tests.
[[nodiscard]] CharikarRun charikar_run_scalar(const WeightedSet& pts, int k,
                                              std::int64_t z, double r,
                                              const Metric& metric);

struct CharikarResult {
  double radius = 0.0;   ///< r_out = 3·r₀ (two-sided opt estimate, see above)
  double rho = 0.0;      ///< stated approximation factor of `radius`
  PointSet centers;      ///< centers of the successful run (balls radius r_out)
};

struct CharikarOptions {
  double beta = 0.25;    ///< ladder density; ρ grows with (1+β)
  int max_ladder = 96;   ///< ladder length cap (range 2^{-max_ladder}·hi .. hi)
  /// Execution environment (mpc/context.hpp): `exec.pool` is forwarded to
  /// every charikar_run; `exec.buffer` is a prebuilt SoA buffer of `pts`
  /// in the same order — when null the oracle builds one itself, once,
  /// shared by every ladder guess (ignored when stale; results are
  /// identical either way).  Fault/transport members are unused here.
  mpc::ExecContext exec;
};

/// Full oracle: ladder construction + binary search for the smallest
/// successful guess.  Handles degenerate cases (n ≤ z total weight → radius
/// 0 with arbitrary centers; all points equal → radius 0).
[[nodiscard]] CharikarResult charikar_oracle(const WeightedSet& pts, int k,
                                             std::int64_t z,
                                             const Metric& metric,
                                             const CharikarOptions& opt = {});

}  // namespace kc
