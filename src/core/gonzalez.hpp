// Gonzalez farthest-point traversal [26].
//
// Selects centers greedily: each new center is the point farthest from the
// already-selected ones.  Two classic facts the library relies on:
//
//  * With t centers the covering radius δ_t is a 2-approximation of the
//    optimal t-center radius (no outliers).
//  * The selected points are pairwise ≥ δ_t apart, so by the packing bound
//    (Lemma 6 of the paper) running until τ = k(4/ε)^d + z + 1 centers
//    forces δ_τ ≤ ε · optk,z(P).  This yields the oracle-free mini-ball
//    covering used as the fast path / ablation (see core/mbc.hpp).
//
// Weights are irrelevant to center selection but are carried through the
// assignment so callers can build weighted summaries.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kc {

class ThreadPool;  // util/parallel.hpp

struct GonzalezResult {
  /// Indices into the input set, in selection order.
  std::vector<std::size_t> center_indices;
  /// delta[t] = max distance of any point to the first (t+1) centers,
  /// i.e. the covering radius after t+1 centers have been selected.
  std::vector<double> delta;
  /// assignment[i] = index into center_indices of the nearest center.
  std::vector<std::uint32_t> assignment;

  [[nodiscard]] PointSet centers(const WeightedSet& pts) const {
    PointSet out;
    out.reserve(center_indices.size());
    for (auto i : center_indices) out.push_back(pts[i].p);
    return out;
  }
};

/// Runs the traversal until `max_centers` centers are selected or the
/// covering radius drops to ≤ `stop_radius` (pass 0 to disable the radius
/// stop).  O(n · #centers) time, O(n) extra space.  `pool` (optional) runs
/// the relaxation sweeps through the chunk-parallel kernel for large n —
/// selected centers and assignments are bit-identical at every thread
/// count (ordered first-max-wins reduction).  `buffer` (optional) is a
/// prebuilt SoA buffer of `pts` in the same order; when null the traversal
/// packs one itself.  Results are identical either way.
[[nodiscard]] GonzalezResult gonzalez(
    const WeightedSet& pts, int max_centers, const Metric& metric,
    double stop_radius = 0.0, ThreadPool* pool = nullptr,
    const kernels::PointBuffer* buffer = nullptr);

/// Weighted summary induced by a traversal: one point per center, weight =
/// total weight of the points assigned to it.  Every input point is within
/// the final covering radius of its representative.
[[nodiscard]] WeightedSet gonzalez_summary(const WeightedSet& pts,
                                           const GonzalezResult& g);

}  // namespace kc
