#include "core/brute_force.hpp"

#include <limits>
#include <vector>

#include "core/cost.hpp"
#include "util/check.hpp"

namespace kc {

namespace {

// Number of k-subsets of n elements, saturating at a cap.
std::uint64_t binom_capped(std::size_t n, int k, std::uint64_t cap) {
  std::uint64_t r = 1;
  for (int i = 1; i <= k; ++i) {
    r = r * (n - static_cast<std::size_t>(k) + static_cast<std::size_t>(i)) /
        static_cast<std::uint64_t>(i);
    if (r > cap) return cap + 1;
  }
  return r;
}

}  // namespace

Solution brute_force_kcenter(const WeightedSet& pts, int k, std::int64_t z,
                             const Metric& metric) {
  KC_EXPECTS(k >= 1);
  KC_EXPECTS(!pts.empty());
  const std::size_t n = pts.size();
  const int kk = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(k), n));
  KC_EXPECTS(binom_capped(n, kk, 2'000'000) <= 2'000'000);

  std::vector<std::size_t> idx(static_cast<std::size_t>(kk));
  for (int i = 0; i < kk; ++i) idx[static_cast<std::size_t>(i)] = static_cast<std::size_t>(i);

  Solution best;
  best.radius = std::numeric_limits<double>::infinity();

  auto eval_current = [&] {
    PointSet centers;
    centers.reserve(idx.size());
    for (auto i : idx) centers.push_back(pts[i].p);
    const double r = radius_with_outliers(pts, centers, z, metric);
    if (r < best.radius) {
      best.radius = r;
      best.centers = std::move(centers);
    }
  };

  // Iterate over all kk-combinations of {0..n-1} in lexicographic order.
  while (true) {
    eval_current();
    int i = kk - 1;
    while (i >= 0 &&
           idx[static_cast<std::size_t>(i)] ==
               n - static_cast<std::size_t>(kk) + static_cast<std::size_t>(i))
      --i;
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < kk; ++j)
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
  }
  return best;
}

double brute_force_radius(const WeightedSet& pts, int k, std::int64_t z,
                          const Metric& metric) {
  return brute_force_kcenter(pts, k, z, metric).radius;
}

}  // namespace kc
