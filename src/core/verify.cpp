#include "core/verify.hpp"

#include <algorithm>
#include <vector>

#include "core/cost.hpp"
#include "util/check.hpp"

namespace kc {

bool check_mbc_structure(const WeightedSet& input,
                         const MiniBallCovering& mbc) {
  if (mbc.assignment.size() != input.size()) return false;

  std::vector<std::int64_t> group_w(mbc.reps.size(), 0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint32_t r = mbc.assignment[i];
    if (r >= mbc.reps.size()) return false;
    group_w[r] += input[i].w;
  }
  std::int64_t total_reps = 0;
  for (std::size_t r = 0; r < mbc.reps.size(); ++r) {
    if (group_w[r] != mbc.reps[r].w) return false;
    total_reps += mbc.reps[r].w;
  }
  if (total_reps != total_weight(input)) return false;

  // Subset property: each representative must be one of the input points
  // (coordinates equal); representatives coincide with the first member of
  // their group in the greedy constructions.
  for (const auto& rep : mbc.reps) {
    const bool found = std::any_of(
        input.begin(), input.end(),
        [&](const WeightedPoint& wp) { return wp.p == rep.p; });
    if (!found) return false;
  }
  return true;
}

double max_assignment_dist(const WeightedSet& input,
                           const MiniBallCovering& mbc, const Metric& metric) {
  KC_EXPECTS(mbc.assignment.size() == input.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double d = metric.dist(input[i].p, mbc.reps[mbc.assignment[i]].p);
    worst = std::max(worst, d);
  }
  return worst;
}

bool check_separation(const WeightedSet& reps, double radius,
                      const Metric& metric) {
  for (std::size_t i = 0; i < reps.size(); ++i)
    for (std::size_t j = i + 1; j < reps.size(); ++j)
      if (metric.dist(reps[i].p, reps[j].p) <= radius) return false;
  return true;
}

bool check_expansion_property(const WeightedSet& original,
                              const WeightedSet& coreset,
                              const PointSet& centers, double radius,
                              double slack, std::int64_t z,
                              const Metric& metric) {
  // Candidate solution must be feasible on the coreset…
  if (uncovered_weight(coreset, centers, radius, metric) > z) return false;
  // …then expansion by `slack` must make it feasible on the original set.
  // A small relative tolerance absorbs floating-point rounding in the
  // distance computations.
  const double r_expanded = (radius + slack) * (1.0 + 1e-12);
  return uncovered_weight(original, centers, r_expanded, metric) <= z;
}

}  // namespace kc
