// End-of-pipeline solver: extract an actual k-center-with-outliers solution
// from a coreset, and evaluate it back on the original instance.
//
// The paper's pipelines all end this way (§1, "About the approximation
// factor"): run an offline algorithm on the coreset; its factor multiplies
// into the final (1±ε) guarantee.  We use the Charikar greedy as that
// offline algorithm, giving a 3(1+ε)-style end-to-end approximation.

#pragma once

#include <cstdint>

#include "core/radius_oracle.hpp"
#include "core/types.hpp"

namespace kc {

/// Solves k-center with z outliers on `pts` (typically a coreset) and
/// returns centers with their exact radius on `pts`.
[[nodiscard]] Solution solve_kcenter_outliers(const WeightedSet& pts, int k,
                                              std::int64_t z,
                                              const Metric& metric,
                                              const OracleOptions& oracle = {});

/// The paper's "optimal but slow algorithm on the coreset → (1+ε) overall"
/// path (§1, "About the approximation factor"): exact discrete-center
/// search when C(|pts|, k) is small, otherwise falls back to the greedy
/// solver.  `budget` caps the number of center sets enumerated.
[[nodiscard]] Solution solve_kcenter_outliers_exact(
    const WeightedSet& pts, int k, std::int64_t z, const Metric& metric,
    std::uint64_t budget = 2'000'000);

/// Cluster labels for a solution: labels[i] = index of the nearest center
/// covering point i, or −1 if point i is an outlier.  Outliers are chosen
/// exactly as in the cost model: the points farther than `sol.radius` from
/// every center (their total weight is ≤ z whenever sol.radius came from
/// radius_with_outliers on the same instance).
struct Labeling {
  std::vector<int> labels;        ///< per input point; −1 = outlier
  std::int64_t outlier_weight = 0;
};
[[nodiscard]] Labeling classify(const WeightedSet& pts, const Solution& sol,
                                const Metric& metric);

/// Quality of a coreset pipeline: solve on the coreset, evaluate the same
/// centers on the full set, and compare with solving on the full set
/// directly.  ratio = radius(via coreset, on full) / radius(direct, on
/// full); ≤ 1+O(ε) for a valid coreset.
struct PipelineQuality {
  double radius_via_coreset = 0.0;  ///< coreset centers evaluated on full P
  double radius_direct = 0.0;       ///< direct solve evaluated on full P
  double ratio = 0.0;
};

[[nodiscard]] PipelineQuality compare_on_full(const WeightedSet& full,
                                              const WeightedSet& coreset,
                                              int k, std::int64_t z,
                                              const Metric& metric,
                                              const OracleOptions& oracle = {});

}  // namespace kc
