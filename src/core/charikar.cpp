#include "core/charikar.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace kc {

CharikarRun charikar_run(const WeightedSet& pts, int k, std::int64_t z,
                         double r, const Metric& metric) {
  KC_EXPECTS(k >= 1);
  CharikarRun out;
  const std::size_t n = pts.size();
  std::vector<bool> covered(n, false);
  std::int64_t uncovered_w = 0;
  for (const auto& wp : pts) uncovered_w += wp.w;

  // dist_key thresholds: compare squared distances under L2.
  const double r_key = (metric.norm() == Norm::L2) ? r * r : r;
  const double r3 = 3.0 * r;
  const double r3_key = (metric.norm() == Norm::L2) ? r3 * r3 : r3;

  for (int t = 0; t < k && uncovered_w > z; ++t) {
    // Pick the point whose r-ball covers the most uncovered weight.
    std::int64_t best_w = -1;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t wsum = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (covered[j]) continue;
        if (metric.dist_key(pts[i].p, pts[j].p) <= r_key) wsum += pts[j].w;
      }
      if (wsum > best_w) {
        best_w = wsum;
        best_i = i;
      }
    }
    out.centers.push_back(pts[best_i].p);
    // Remove everything inside the expanded ball b(best_i, 3r).
    for (std::size_t j = 0; j < n; ++j) {
      if (covered[j]) continue;
      if (metric.dist_key(pts[best_i].p, pts[j].p) <= r3_key) {
        covered[j] = true;
        uncovered_w -= pts[j].w;
      }
    }
  }
  out.uncovered = uncovered_w;
  out.success = uncovered_w <= z;
  return out;
}

CharikarResult charikar_oracle(const WeightedSet& pts, int k, std::int64_t z,
                               const Metric& metric,
                               const CharikarOptions& opt) {
  KC_EXPECTS(k >= 1);
  KC_EXPECTS(z >= 0);
  CharikarResult res;
  res.rho = 6.0 * (1.0 + opt.beta);
  if (pts.empty()) return res;

  std::int64_t total_w = 0;
  for (const auto& wp : pts) total_w += wp.w;
  if (total_w <= z) {
    // Everything may be an outlier: optimal radius is 0.
    res.radius = 0.0;
    res.centers.push_back(pts.front().p);
    return res;
  }

  // Upper bound for the ladder: covering radius of a single ball centred at
  // pts[0]; optk,z ≤ opt1,0 ≤ hi.
  double hi = 0.0;
  for (const auto& wp : pts) hi = std::max(hi, metric.dist(pts.front().p, wp.p));
  if (hi == 0.0) {
    // All points coincide.
    res.radius = 0.0;
    res.centers.push_back(pts.front().p);
    return res;
  }

  // Candidate ladder: c_j = hi / (1+β)^j, j = 0..max_ladder.  Success is
  // monotone (larger radius keeps succeeding), so the predicate is true on
  // a prefix of j; binary-search the boundary.
  const double growth = 1.0 + opt.beta;
  auto candidate = [&](int j) { return hi / std::pow(growth, j); };

  CharikarRun best_run = charikar_run(pts, k, z, candidate(0), metric);
  KC_ENSURES(best_run.success);  // r = hi ≥ opt always succeeds
  int best_j = 0;

  int lo_j = 0, hi_j = opt.max_ladder;
  while (lo_j < hi_j) {
    const int mid = lo_j + (hi_j - lo_j + 1) / 2;
    CharikarRun run = charikar_run(pts, k, z, candidate(mid), metric);
    if (run.success) {
      lo_j = mid;
      best_run = std::move(run);
      best_j = mid;
    } else {
      hi_j = mid - 1;
    }
  }

  res.radius = 3.0 * candidate(best_j);
  res.centers = std::move(best_run.centers);
  KC_ENSURES(!res.centers.empty());
  return res;
}

}  // namespace kc
