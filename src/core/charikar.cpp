#include "core/charikar.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/grid_index.hpp"
#include "geometry/kernels.hpp"
#include "util/check.hpp"

namespace kc {

namespace {

// Below this size the grid build costs more than it prunes.
constexpr std::size_t kGridMinPoints = 32;

// Grid-accelerated greedy pass.  Invariant maintained across rounds:
//   cand[i] = total weight of the *uncovered* points within distance r of
//             point i  (exactly the wsum the reference recomputes per
//             round — weights are integers, so the incremental updates
//             are exact).
// Each pair (i, j) with dist(i, j) <= r is touched at most twice (once in
// the initial count, once when j is covered), so the total work is
// O(Σ|ball_r|) plus O(k·n) for the argmax scans — instead of the
// reference's O(k·n²).
template <Norm N>
CharikarRun charikar_run_grid(const WeightedSet& pts, int k, std::int64_t z,
                              double r, ThreadPool* pool,
                              const kernels::PointBuffer* prebuilt) {
  CharikarRun out;
  const std::size_t n = pts.size();
  const int dim = pts.front().p.dim();
  kernels::PointBuffer local;
  if (prebuilt == nullptr || prebuilt->size() != n)
    local = kernels::PointBuffer(pts);
  const kernels::PointBuffer& buf =
      (prebuilt != nullptr && prebuilt->size() == n) ? *prebuilt : local;
  std::vector<std::int64_t> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = pts[i].w;
  std::vector<std::uint8_t> covered(n, 0);
  std::int64_t uncovered_w = 0;
  for (const std::int64_t wi : w) uncovered_w += wi;

  const double r_key = kernels::dist_to_key(N, r);
  const double r3 = 3.0 * r;
  const double r3_key = kernels::dist_to_key(N, r3);

  GridIndex grid(r, dim);
  grid.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    grid.insert(pts[i].p, static_cast<std::uint32_t>(i));
  const int reach3 = grid.reach_for(r3);

  // Initial candidate ball weights (nothing covered yet).  This is the
  // O(Σ|ball_r|) bulk of the pass; each point's count is independent and
  // writes only cand[i], so the range fans out over the pool (deterministic
  // chunks, disjoint writes — bit-identical at every thread count).
  std::vector<std::int64_t> cand(n, 0);
  const auto init_cand = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const double* q = pts[i].p.coords().data();
      std::int64_t sum = 0;
      grid.for_each_candidate(q, 1, [&](std::span<const std::uint32_t> cell) {
        sum += kernels::count_within<N>(buf, cell.data(), cell.size(), q,
                                        r_key, w.data(), nullptr);
      });
      cand[i] = sum;
    }
  };
  if (pool != nullptr && pool->num_threads() > 1)
    pool->parallel_for(n, /*grain=*/256, init_cand);
  else
    init_cand(0, n);

  std::vector<std::uint32_t> ball;  // flattened 3r-ball candidates, reused
  for (int t = 0; t < k && uncovered_w > z; ++t) {
    // argmax over cand, first max wins — identical tie-breaking to the
    // reference's per-round rescan.
    std::int64_t best_w = -1;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (cand[i] > best_w) {
        best_w = cand[i];
        best_i = i;
      }
    }
    out.centers.push_back(pts[best_i].p);
    // Remove everything inside the expanded ball b(best_i, 3r), paying the
    // candidate-weight decrements for each newly covered point as we go.
    // The (2·reach3+1)^d neighbor cells are flattened into one candidate
    // list (concatenation preserves cell enumeration order, and the grid
    // never repeats an index) so the distance filter fans out over the
    // whole ball; the mutation applies serially in that same order.
    const double* qc = pts[best_i].p.coords().data();
    ball.clear();
    grid.for_each_candidate(qc, reach3,
                            [&](std::span<const std::uint32_t> cell) {
                              ball.insert(ball.end(), cell.begin(),
                                          cell.end());
                            });
    const std::int64_t removed = kernels::mark_within_parallel<N>(
        buf, ball.data(), ball.size(), qc, r3_key, w.data(), covered.data(),
        [&](std::uint32_t j) {
          const double* qj = pts[j].p.coords().data();
          const std::int64_t wj = w[j];
          grid.for_each_candidate(
              qj, 1, [&](std::span<const std::uint32_t> inner) {
                for (const std::uint32_t i : inner) {
                  if (buf.key_to<N>(i, qj) <= r_key) cand[i] -= wj;
                }
              });
        },
        pool);
    uncovered_w -= removed;
  }
  out.uncovered = uncovered_w;
  out.success = uncovered_w <= z;
  return out;
}

}  // namespace

CharikarRun charikar_run_scalar(const WeightedSet& pts, int k, std::int64_t z,
                                double r, const Metric& metric) {
  KC_EXPECTS(k >= 1);
  CharikarRun out;
  const std::size_t n = pts.size();
  std::vector<bool> covered(n, false);
  std::int64_t uncovered_w = 0;
  for (const auto& wp : pts) uncovered_w += wp.w;

  // dist_key thresholds: compare squared distances under L2.
  const double r_key = metric.dist_to_key(r);
  const double r3 = 3.0 * r;
  const double r3_key = metric.dist_to_key(r3);

  for (int t = 0; t < k && uncovered_w > z; ++t) {
    // Pick the point whose r-ball covers the most uncovered weight.
    std::int64_t best_w = -1;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t wsum = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (covered[j]) continue;
        if (metric.dist_key(pts[i].p, pts[j].p) <= r_key) wsum += pts[j].w;
      }
      if (wsum > best_w) {
        best_w = wsum;
        best_i = i;
      }
    }
    out.centers.push_back(pts[best_i].p);
    // Remove everything inside the expanded ball b(best_i, 3r).
    for (std::size_t j = 0; j < n; ++j) {
      if (covered[j]) continue;
      if (metric.dist_key(pts[best_i].p, pts[j].p) <= r3_key) {
        covered[j] = true;
        uncovered_w -= pts[j].w;
      }
    }
  }
  out.uncovered = uncovered_w;
  out.success = uncovered_w <= z;
  return out;
}

CharikarRun charikar_run(const WeightedSet& pts, int k, std::int64_t z,
                         double r, const Metric& metric, ThreadPool* pool,
                         const kernels::PointBuffer* buffer) {
  KC_EXPECTS(k >= 1);
  if (metric.norm() == Norm::Custom || r <= 0.0 ||
      pts.size() < kGridMinPoints)
    return charikar_run_scalar(pts, k, z, r, metric);
  switch (metric.norm()) {
    case Norm::L2:
      return charikar_run_grid<Norm::L2>(pts, k, z, r, pool, buffer);
    case Norm::Linf:
      return charikar_run_grid<Norm::Linf>(pts, k, z, r, pool, buffer);
    case Norm::L1:
      return charikar_run_grid<Norm::L1>(pts, k, z, r, pool, buffer);
    case Norm::Custom: break;  // handled above
  }
  return charikar_run_scalar(pts, k, z, r, metric);  // unreachable
}

CharikarResult charikar_oracle(const WeightedSet& pts, int k, std::int64_t z,
                               const Metric& metric,
                               const CharikarOptions& opt) {
  KC_EXPECTS(k >= 1);
  KC_EXPECTS(z >= 0);
  CharikarResult res;
  res.rho = 6.0 * (1.0 + opt.beta);
  if (pts.empty()) return res;

  std::int64_t total_w = 0;
  for (const auto& wp : pts) total_w += wp.w;
  if (total_w <= z) {
    // Everything may be an outlier: optimal radius is 0.
    res.radius = 0.0;
    res.centers.push_back(pts.front().p);
    return res;
  }

  // Upper bound for the ladder: covering radius of a single ball centred at
  // pts[0]; optk,z ≤ opt1,0 ≤ hi.
  double hi = 0.0;
  for (const auto& wp : pts) hi = std::max(hi, metric.dist(pts.front().p, wp.p));
  // kc-lint-allow(numerics): hi is a max of exact distances; 0.0 means all
  // points coincide and the ladder below would be empty.
  if (hi == 0.0) {
    // All points coincide.
    res.radius = 0.0;
    res.centers.push_back(pts.front().p);
    return res;
  }

  // Candidate ladder: c_j = hi / (1+β)^j, j = 0..max_ladder.  Success is
  // monotone (larger radius keeps succeeding), so the predicate is true on
  // a prefix of j; binary-search the boundary.
  const double growth = 1.0 + opt.beta;
  auto candidate = [&](int j) { return hi / std::pow(growth, j); };

  // One SoA pack shared by every ladder guess: use the caller's prebuilt
  // buffer when it matches, else pack here — never once per guess.
  kernels::PointBuffer local;
  const kernels::PointBuffer* buffer = opt.exec.buffer;
  if ((buffer == nullptr || buffer->size() != pts.size()) &&
      metric.norm() != Norm::Custom && pts.size() >= kGridMinPoints) {
    local = kernels::PointBuffer(pts);
    buffer = &local;
  }

  CharikarRun best_run = charikar_run(pts, k, z, candidate(0), metric,
                                      opt.exec.pool, buffer);
  KC_ENSURES(best_run.success);  // r = hi ≥ opt always succeeds
  int best_j = 0;

  int lo_j = 0, hi_j = opt.max_ladder;
  while (lo_j < hi_j) {
    const int mid = lo_j + (hi_j - lo_j + 1) / 2;
    CharikarRun run = charikar_run(pts, k, z, candidate(mid), metric,
                                   opt.exec.pool, buffer);
    if (run.success) {
      lo_j = mid;
      best_run = std::move(run);
      best_j = mid;
    } else {
      hi_j = mid - 1;
    }
  }

  res.radius = 3.0 * candidate(best_j);
  res.centers = std::move(best_run.centers);
  KC_ENSURES(!res.centers.empty());
  return res;
}

}  // namespace kc
