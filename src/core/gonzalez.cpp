#include "core/gonzalez.hpp"

#include <limits>

#include "geometry/kernels.hpp"
#include "util/check.hpp"

namespace kc {

namespace {

// Shared selection loop: `relax(center_coords, label)` relaxes every
// point's nearest-center key against the new center and returns the
// farthest point under the relaxed keys (first max wins).
template <typename Relax>
GonzalezResult run_traversal(const WeightedSet& pts, int max_centers,
                             const Metric& metric, double stop_radius,
                             Relax&& relax) {
  GonzalezResult res;
  const std::size_t n = pts.size();
  res.assignment.assign(n, 0);
  std::size_t next = 0;  // first center: index 0 (deterministic)
  for (int t = 0; t < max_centers && static_cast<std::size_t>(t) < n; ++t) {
    res.center_indices.push_back(next);
    const kernels::RelaxResult rr =
        relax(pts[next].p, static_cast<std::uint32_t>(t), res.assignment);
    const double radius = metric.key_to_dist(rr.far_key);
    res.delta.push_back(radius);
    next = rr.far_idx;
    if (stop_radius > 0.0 && radius <= stop_radius) break;
    // kc-lint-allow(numerics): a max of exact distances is 0.0 only when
    // every remaining point coincides with a selected center.
    if (radius == 0.0) break;  // all points coincide with selected centers
  }
  return res;
}

}  // namespace

GonzalezResult gonzalez(const WeightedSet& pts, int max_centers,
                        const Metric& metric, double stop_radius,
                        ThreadPool* pool,
                        const kernels::PointBuffer* buffer) {
  KC_EXPECTS(max_centers >= 1);
  if (pts.empty()) return {};
  const std::size_t n = pts.size();
  std::vector<double> key(n, std::numeric_limits<double>::infinity());

  if (metric.norm() == Norm::Custom) {
    // Scalar fallback: a user-supplied distance cannot go through the
    // inline kernels.
    return run_traversal(
        pts, max_centers, metric, stop_radius,
        [&](const Point& c, std::uint32_t label,
            std::vector<std::uint32_t>& assign) {
          kernels::RelaxResult rr;
          for (std::size_t i = 0; i < n; ++i) {
            const double k2 = metric.dist_key(pts[i].p, c);
            if (k2 < key[i]) {
              key[i] = k2;
              assign[i] = label;
            }
            if (key[i] > rr.far_key) {
              rr.far_key = key[i];
              rr.far_idx = i;
            }
          }
          return rr;
        });
  }

  kernels::PointBuffer local;
  if (buffer == nullptr || buffer->size() != n)
    local = kernels::PointBuffer(pts);
  const kernels::PointBuffer& buf =
      (buffer != nullptr && buffer->size() == n) ? *buffer : local;
  std::vector<double> scratch(n);
  auto kernel_run = [&]<Norm N>() {
    return run_traversal(pts, max_centers, metric, stop_radius,
                         [&](const Point& c, std::uint32_t label,
                             std::vector<std::uint32_t>& assign) {
                           return kernels::relax_min_keys_parallel<N>(
                               buf, c.coords().data(), label, key.data(),
                               assign.data(), scratch.data(), pool);
                         });
  };
  switch (metric.norm()) {
    case Norm::L2: return kernel_run.template operator()<Norm::L2>();
    case Norm::Linf: return kernel_run.template operator()<Norm::Linf>();
    case Norm::L1: return kernel_run.template operator()<Norm::L1>();
    case Norm::Custom: break;  // handled above
  }
  return {};  // unreachable
}

WeightedSet gonzalez_summary(const WeightedSet& pts, const GonzalezResult& g) {
  WeightedSet out;
  out.reserve(g.center_indices.size());
  for (auto idx : g.center_indices) out.push_back({pts[idx].p, 0});
  for (std::size_t i = 0; i < pts.size(); ++i)
    out[g.assignment[i]].w += pts[i].w;
  // Centers selected after the last full relaxation can end up with zero
  // assigned weight only if n < #centers, which gonzalez() prevents.
  for (const auto& wp : out) KC_ENSURES(wp.w > 0);
  return out;
}

}  // namespace kc
