#include "core/gonzalez.hpp"

#include <limits>

#include "util/check.hpp"

namespace kc {

GonzalezResult gonzalez(const WeightedSet& pts, int max_centers,
                        const Metric& metric, double stop_radius) {
  KC_EXPECTS(max_centers >= 1);
  GonzalezResult res;
  const std::size_t n = pts.size();
  if (n == 0) return res;

  // dist_key[i] = distance key from point i to the nearest selected center.
  std::vector<double> key(n, std::numeric_limits<double>::infinity());
  res.assignment.assign(n, 0);

  std::size_t next = 0;  // first center: index 0 (deterministic)
  for (int t = 0; t < max_centers && static_cast<std::size_t>(t) < n; ++t) {
    res.center_indices.push_back(next);
    const Point& c = pts[next].p;
    // Relax all distances against the new center, tracking the farthest
    // point for the next iteration.
    double far_key = -1.0;
    std::size_t far_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double k2 = metric.dist_key(pts[i].p, c);
      if (k2 < key[i]) {
        key[i] = k2;
        res.assignment[i] = static_cast<std::uint32_t>(t);
      }
      if (key[i] > far_key) {
        far_key = key[i];
        far_idx = i;
      }
    }
    const double radius = metric.key_to_dist(far_key);
    res.delta.push_back(radius);
    next = far_idx;
    if (stop_radius > 0.0 && radius <= stop_radius) break;
    if (radius == 0.0) break;  // all points coincide with selected centers
  }
  return res;
}

WeightedSet gonzalez_summary(const WeightedSet& pts, const GonzalezResult& g) {
  WeightedSet out;
  out.reserve(g.center_indices.size());
  for (auto idx : g.center_indices) out.push_back({pts[idx].p, 0});
  for (std::size_t i = 0; i < pts.size(); ++i)
    out[g.assignment[i]].w += pts[i].w;
  // Centers selected after the last full relaxation can end up with zero
  // assigned weight only if n < #centers, which gonzalez() prevents.
  for (const auto& wp : out) KC_ENSURES(wp.w > 0);
  return out;
}

}  // namespace kc
