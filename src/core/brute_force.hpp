// Exact discrete-center optimum for tiny instances (test reference).
//
// Enumerates all k-subsets of the input points as center sets and takes the
// one whose outlier-aware radius is smallest.  This is the *discrete*
// optimum (centers restricted to input points); it over-estimates the
// continuous optimum by at most a factor 2.  Intended for n ≤ ~20, k ≤ 4.

#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace kc {

/// Exact optimal solution with centers ⊆ pts.  Aborts (contract violation)
/// if the search space is unreasonably large (C(n,k) > ~2·10^6).
[[nodiscard]] Solution brute_force_kcenter(const WeightedSet& pts, int k,
                                           std::int64_t z, const Metric& metric);

/// Radius only.
[[nodiscard]] double brute_force_radius(const WeightedSet& pts, int k,
                                        std::int64_t z, const Metric& metric);

}  // namespace kc
