// Mini-ball coverings (paper §2).
//
// An (ε,k,z)-mini-ball covering of a weighted set P is a weighted subset
// P* ⊆ P that partitions P into groups Q_i, each within distance
// ε·optk,z(P) of its representative q_i ∈ P*, with w(q_i) = w(Q_i)
// (Definition 2).  Lemma 3: every mini-ball covering is an (ε,k,z)-coreset.
//
// This module provides:
//  * `mbc_with_radius`  — the greedy covering pass shared by Algorithm 1
//                         (MBCConstruction) and Algorithm 4 (UpdateCoreset):
//                         scan points, assign each to the first
//                         representative within the mini-ball radius,
//                         promote it to a representative otherwise.
//  * `mbc_construct`    — Algorithm 1: obtain r with opt ≤ r ≤ ρ·opt from a
//                         radius oracle, then cover with radius ε·r/ρ.
//                         Guarantees: covering radius ≤ ε·opt and
//                         |P*| ≤ k(4ρ/ε)^d + z (Lemma 7, ρ-generalised).
//  * `mbc_via_gonzalez` — oracle-free construction used as the fast path
//                         and the ABL-ORACLE ablation: run Gonzalez until
//                         τ = k(4/ε)^d + z + 1 centers; the packing bound
//                         (Lemma 6) forces the covering radius ≤ ε·opt.
//  * `mbc_size_bound`   — the Lemma-7 size bound, used by tests.

#pragma once

#include <cstdint>
#include <vector>

#include "core/radius_oracle.hpp"
#include "core/types.hpp"

namespace kc {

/// A mini-ball covering together with construction metadata.  `reps` is the
/// coreset; `assignment` maps each input index to its representative's index
/// in `reps` (kept for verification; algorithms that must not store it can
/// ignore it — it is not counted as part of the coreset).
struct MiniBallCovering {
  WeightedSet reps;
  std::vector<std::uint32_t> assignment;
  double cover_radius = 0.0;   ///< mini-ball radius actually used
  double oracle_radius = 0.0;  ///< r returned by the oracle (0 if oracle-free)
  double rho = 1.0;            ///< stated factor of oracle_radius
};

/// Greedy covering pass with an explicit mini-ball radius (Algorithm 4,
/// UpdateCoreset).  Scan order is input order; representatives keep their
/// original coordinates and accumulate the weight of the points they absorb.
/// Postcondition: representatives are pairwise > radius apart.
///
/// Built-in norms run adaptively: an early-exit linear scan while the rep
/// set is small, then a hash grid (geometry/grid_index.hpp) of the
/// representatives so each point probes only grid-adjacent reps.  Either
/// way the result is bit-identical to the scalar reference below (pinned by
/// tests/test_kernels.cpp).
[[nodiscard]] MiniBallCovering mbc_with_radius(const WeightedSet& pts,
                                               double radius,
                                               const Metric& metric);

/// Grid-from-the-start variant (no adaptive switch).  Exposed so the
/// equivalence tests and benches can exercise the grid path regardless of
/// the adaptive threshold.  Requires a built-in norm and radius > 0.
[[nodiscard]] MiniBallCovering mbc_with_radius_grid(const WeightedSet& pts,
                                                    double radius,
                                                    const Metric& metric);

/// Reference implementation of `mbc_with_radius`: the plain O(n·|reps|)
/// scan.  Used as the fallback for custom metrics and degenerate radii, and
/// as the ground truth for the grid-path equivalence tests.
[[nodiscard]] MiniBallCovering mbc_with_radius_scalar(const WeightedSet& pts,
                                                      double radius,
                                                      const Metric& metric);

/// Algorithm 1, MBCConstruction(P, k, z, ε): radius oracle + greedy cover
/// with mini-ball radius ε·r/ρ.
[[nodiscard]] MiniBallCovering mbc_construct(const WeightedSet& pts, int k,
                                             std::int64_t z, double eps,
                                             const Metric& metric,
                                             const OracleOptions& oracle = {});

/// Oracle-free construction via Gonzalez + packing bound; covering radius is
/// ≤ ε·optk,z(P) by Lemma 6, size ≤ k·⌈4/ε⌉^d + z + 1.
[[nodiscard]] MiniBallCovering mbc_via_gonzalez(const WeightedSet& pts, int k,
                                                std::int64_t z, double eps,
                                                const Metric& metric);

/// Lemma 7 size bound, ρ-generalised: k·(4ρ/ε)^d + z.
[[nodiscard]] double mbc_size_bound(int k, std::int64_t z, double eps,
                                    double rho, int dim);

/// Lemma 4 (union property): concatenates mini-ball coverings of disjoint
/// parts into a covering of the union.
[[nodiscard]] WeightedSet merge_coresets(const std::vector<WeightedSet>& parts);

}  // namespace kc
