#include "lowerbound/sliding_lb.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/box.hpp"
#include "util/check.hpp"

namespace kc::lowerbound {

namespace {

// The lexicographically smallest `count` points of the grid {0..ζ}^d with
// cell side `side`, offset by `base`.
PointSet lex_smallest_grid_points(const Point& base, int zeta, double side,
                                  int dim, std::int64_t count) {
  PointSet out;
  std::vector<int> idx(static_cast<std::size_t>(dim), 0);
  while (static_cast<std::int64_t>(out.size()) < count) {
    Point p = base;
    for (int i = 0; i < dim; ++i)
      p[i] += side * static_cast<double>(idx[static_cast<std::size_t>(i)]);
    out.push_back(p);
    // lexicographic increment: last coordinate varies fastest
    int i = dim - 1;
    for (; i >= 0; --i) {
      if (++idx[static_cast<std::size_t>(i)] <= zeta) break;
      idx[static_cast<std::size_t>(i)] = 0;
    }
    KC_EXPECTS(i >= 0 || static_cast<std::int64_t>(out.size()) >= count);
  }
  return out;
}

// Γ_j: the odd cells of the (2λ−1)^d grid Π_j, minus the lexicographically
// smallest octant {∀i: π_i ≤ λ}.  Returned as 1-based cell labels.
std::vector<std::vector<int>> gamma_cells(int lambda, int dim) {
  std::vector<std::vector<int>> cells;
  std::vector<int> pi(static_cast<std::size_t>(dim), 1);
  for (;;) {
    bool odd = true;
    for (int i = 0; i < dim; ++i)
      if (pi[static_cast<std::size_t>(i)] % 2 == 0) odd = false;
    bool in_octant = true;
    for (int i = 0; i < dim; ++i)
      if (pi[static_cast<std::size_t>(i)] > lambda) in_octant = false;
    if (odd && !in_octant) cells.push_back(pi);
    int i = dim - 1;
    for (; i >= 0; --i) {
      if (++pi[static_cast<std::size_t>(i)] <= 2 * lambda - 1) break;
      pi[static_cast<std::size_t>(i)] = 1;
    }
    if (i < 0) break;
  }
  return cells;
}

}  // namespace

SlidingLb make_sliding_lb(const SlidingLbConfig& cfg) {
  const int d = cfg.dim;
  KC_EXPECTS(d >= 1 && d <= Point::kMaxDim);
  KC_EXPECTS(cfg.k >= 2 * d);
  KC_EXPECTS(cfg.z >= 1);
  KC_EXPECTS(cfg.eps <= 1.0 / 24.0 + 1e-12);

  SlidingLb lb;
  lb.config = cfg;
  int lambda = static_cast<int>(std::ceil(1.0 / (8.0 * cfg.eps) - 1e-9));
  if (lambda % 2 == 0) ++lambda;  // λ odd (paper's WLOG)
  lb.lambda = lambda;
  lb.config.eps = 1.0 / (8.0 * lambda);
  lb.groups = std::max(
      1, static_cast<int>(0.5 * std::log2(cfg.sigma)) - 1);
  lb.zeta = std::max(
      1, static_cast<int>(std::floor(std::pow(static_cast<double>(cfg.z),
                                              1.0 / d))));
  const auto lam_d = static_cast<std::int64_t>(std::pow(lambda, d));
  const auto half_d = static_cast<std::int64_t>(std::pow((lambda + 1) / 2, d));
  lb.subgroups = static_cast<int>(lam_d - half_d);
  KC_EXPECTS(lb.subgroups >= 1);

  const int clusters = cfg.k - 2 * d + 1;
  const double zeta = lb.zeta;
  const double top_extent =
      std::pow(2.0, lb.groups) * zeta * (2.0 * lambda - 1.0);
  const double gap = 3.0 * std::pow(2.0, lb.groups) * zeta * (2.0 * lambda);

  // Assemble per (cluster, group, subgroup), then order arrivals by
  // (j desc, ℓ desc, i desc) as the paper specifies.
  struct Piece {
    int cluster, group, subgroup;
    PointSet pts;
  };
  std::vector<Piece> pieces;
  const auto cells = gamma_cells(lambda, d);
  KC_EXPECTS(static_cast<int>(cells.size()) == lb.subgroups);

  for (int c = 0; c < clusters; ++c) {
    Point cluster_base(d, 0.0);
    cluster_base[0] = static_cast<double>(c) * (top_extent + gap);
    for (int j = 1; j <= lb.groups; ++j) {
      const double cell_side = std::pow(2.0, j) * zeta;  // Π_j cell side
      for (int l = 1; l <= lb.subgroups; ++l) {
        const auto& pi = cells[static_cast<std::size_t>(l - 1)];
        Point base = cluster_base;
        for (int i = 0; i < d; ++i)
          base[i] += cell_side *
                     static_cast<double>(pi[static_cast<std::size_t>(i)] - 1);
        Piece piece;
        piece.cluster = c;
        piece.group = j;
        piece.subgroup = l;
        piece.pts = lex_smallest_grid_points(base, lb.zeta, std::pow(2.0, j),
                                             d, cfg.z + 1);
        pieces.push_back(std::move(piece));
      }
    }
  }
  std::sort(pieces.begin(), pieces.end(), [](const Piece& a, const Piece& b) {
    if (a.group != b.group) return a.group > b.group;
    if (a.subgroup != b.subgroup) return a.subgroup > b.subgroup;
    return a.cluster > b.cluster;
  });
  for (const auto& piece : pieces) {
    for (const auto& p : piece.pts) {
      lb.points.push_back(p);
      lb.tags.push_back({piece.cluster, piece.group, piece.subgroup});
    }
  }
  return lb;
}

PointSet SlidingLb::adversarial_sets(const PointSet& subgroup,
                                     int j_star) const {
  KC_EXPECTS(!subgroup.empty());
  const int d = config.dim;
  const double zeta = this->zeta;
  const double offset = std::pow(2.0, j_star) * zeta * (2.0 * lambda);
  const auto z = config.z;

  PointSet out;
  for (int alpha = 0; alpha < d; ++alpha) {
    double lo = subgroup[0][alpha], hi = subgroup[0][alpha];
    std::vector<double> lo_all(static_cast<std::size_t>(d)),
        hi_all(static_cast<std::size_t>(d));
    for (int b = 0; b < d; ++b) {
      lo_all[static_cast<std::size_t>(b)] = subgroup[0][b];
      hi_all[static_cast<std::size_t>(b)] = subgroup[0][b];
      for (const auto& q : subgroup) {
        lo_all[static_cast<std::size_t>(b)] =
            std::min(lo_all[static_cast<std::size_t>(b)], q[b]);
        hi_all[static_cast<std::size_t>(b)] =
            std::max(hi_all[static_cast<std::size_t>(b)], q[b]);
      }
    }
    lo = lo_all[static_cast<std::size_t>(alpha)];
    hi = hi_all[static_cast<std::size_t>(alpha)];
    for (std::int64_t iota = 0; iota <= z; ++iota) {
      Point plus(d), minus(d);
      for (int b = 0; b < d; ++b) {
        const double span = hi_all[static_cast<std::size_t>(b)] -
                            lo_all[static_cast<std::size_t>(b)];
        const double interp =
            lo_all[static_cast<std::size_t>(b)] +
            (z > 0 ? static_cast<double>(iota) * span / static_cast<double>(z)
                   : 0.0);
        plus[b] = interp;
        minus[b] = interp;
      }
      plus[alpha] = hi + offset;
      minus[alpha] = lo - offset;
      out.push_back(plus);
      out.push_back(minus);
    }
  }
  return out;
}

double SlidingLb::spread_ratio() const {
  const Metric linf{Norm::Linf};
  return compute_spread(points, linf).ratio();
}

}  // namespace kc::lowerbound
