// Lower-bound construction for the fully dynamic streaming model
// (paper §5.2, Theorem 28, Figure 5): Ω((k/ε^d)·log Δ + z).
//
// Each cluster C_i consists of g = ½log2(Δ) − 2 groups G_i^1..G_i^g; group
// G_i^m is a (λ+1)^d integer grid with cell side 2^m minus its
// lexicographically smallest octant — the omitted octant hosts the smaller
// groups recursively, so each group contributes (λ+1)^d − (λ/2+1)^d
// = Ω(1/ε^d) points and the whole cluster Ω((1/ε^d)·log Δ).  The
// adversarial continuation for a dropped point p* ∈ G_{i*}^{m*} deletes all
// groups of scale ≥ m* (other than p*'s own members below m*) and inserts
// the P± points at distance 2^{m*}(h+r), replaying the insertion-only
// argument at scale 2^{m*}.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "geometry/grid.hpp"

namespace kc::lowerbound {

struct DynamicLbConfig {
  int dim = 2;
  int k = 5;            ///< ≥ 2d
  std::int64_t z = 2;
  std::int64_t delta = 1 << 12;  ///< Δ; must satisfy Δ ≥ ((2k+z)(1/4ε+d))²
  double eps = 0.0;     ///< 0 → largest admissible 1/(8d)
};

struct DynamicLb {
  DynamicLbConfig config;
  int lambda = 0;       ///< λ with λ/2 integer
  double h = 0.0, r = 0.0;
  int groups = 0;       ///< g = ½log2 Δ − 2
  int clusters = 0;     ///< k − 2d + 1

  /// All points (real coordinates — integer-valued by construction, before
  /// the translation to [Δ]^d).
  PointSet points;
  /// group_of[i] = scale m ∈ [1..g] of point i, or 0 for outliers.
  std::vector<int> group_of;
  /// cluster_of[i] = cluster index ∈ [0..clusters), or −1 for outliers.
  std::vector<int> cluster_of;

  /// Maximum coordinate span Δ' (must be ≤ Δ — verified by tests).
  [[nodiscard]] double coordinate_span() const;

  /// Continuation for a dropped p* of scale m*: the P± points at distance
  /// 2^{m*}(h+r) along each axis, weight 2 each.
  [[nodiscard]] WeightedSet continuation(const Point& p_star, int m_star) const;
  /// Witness centers at distance 2^{m*}·h (Claim-14 analogue at scale m*).
  [[nodiscard]] PointSet witness_centers(const Point& p_star, int m_star) const;

  /// Points remaining after the adversary deletes every group of scale
  /// ≥ m_star in all clusters (the continuation's deletion phase).
  [[nodiscard]] PointSet after_deletions(int m_star) const;
};

[[nodiscard]] DynamicLb make_dynamic_lb(const DynamicLbConfig& cfg);

}  // namespace kc::lowerbound
