#include "lowerbound/dynamic_lb.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kc::lowerbound {

namespace {

// Emits group G^m: the (λ+1)^d grid with cell side 2^m, minus the
// lexicographically smallest octant {all coordinates ≤ λ/2·2^m}.
void emit_group(PointSet& out, const Point& base, int lambda, int m, int dim) {
  const double side = std::pow(2.0, m);
  const int half = lambda / 2;
  std::vector<int> idx(static_cast<std::size_t>(dim), 0);
  for (;;) {
    bool in_octant = true;
    for (int i = 0; i < dim; ++i)
      if (idx[static_cast<std::size_t>(i)] > half) {
        in_octant = false;
        break;
      }
    if (!in_octant) {
      Point p = base;
      for (int i = 0; i < dim; ++i)
        p[i] += side * static_cast<double>(idx[static_cast<std::size_t>(i)]);
      out.push_back(p);
    }
    int i = 0;
    for (; i < dim; ++i) {
      if (++idx[static_cast<std::size_t>(i)] <= lambda) break;
      idx[static_cast<std::size_t>(i)] = 0;
    }
    if (i == dim) return;
  }
}

}  // namespace

DynamicLb make_dynamic_lb(const DynamicLbConfig& cfg) {
  const int d = cfg.dim;
  KC_EXPECTS(d >= 1 && d <= Point::kMaxDim);
  KC_EXPECTS(cfg.k >= 2 * d);
  KC_EXPECTS(cfg.z >= 0);
  KC_EXPECTS(cfg.delta >= 64);

  DynamicLb lb;
  lb.config = cfg;
  double eps = cfg.eps;
  if (eps <= 0.0) eps = 1.0 / (8.0 * d);
  KC_EXPECTS(eps <= 1.0 / (8.0 * d) + 1e-12);
  // λ = 1/(4dε) with λ/2 an integer (the paper's WLOG): round up to even.
  int lambda = static_cast<int>(std::ceil(1.0 / (4.0 * d * eps) - 1e-9));
  if (lambda % 2 != 0) ++lambda;
  lb.lambda = lambda;
  lb.config.eps = 1.0 / (4.0 * d * lambda);
  lb.h = d * (lambda + 2) / 2.0;
  lb.r = std::sqrt(lb.h * lb.h - 2.0 * lb.h + d);
  lb.groups = std::max(
      1, static_cast<int>(0.5 * std::log2(static_cast<double>(cfg.delta))) - 2);
  lb.clusters = cfg.k - 2 * d + 1;

  const double gap =
      std::pow(2.0, lb.groups + 2) * (lb.h + lb.r);  // 2^{g+2}(h+r)
  const double cluster_extent =
      static_cast<double>(lambda) * std::pow(2.0, lb.groups);

  // Outliers along the negative first axis, spaced by the same gap.
  for (std::int64_t i = 1; i <= cfg.z; ++i) {
    Point o(d, 0.0);
    o[0] = -gap * static_cast<double>(i);
    lb.points.push_back(o);
    lb.group_of.push_back(0);
    lb.cluster_of.push_back(-1);
  }
  // Clusters with nested groups G^1..G^g.
  for (int c = 0; c < lb.clusters; ++c) {
    Point base(d, 0.0);
    base[0] = static_cast<double>(c) * (cluster_extent + gap);
    for (int m = 1; m <= lb.groups; ++m) {
      const std::size_t before = lb.points.size();
      emit_group(lb.points, base, lambda, m, d);
      for (std::size_t i = before; i < lb.points.size(); ++i) {
        lb.group_of.push_back(m);
        lb.cluster_of.push_back(c);
      }
    }
  }
  KC_ENSURES(lb.group_of.size() == lb.points.size());
  return lb;
}

double DynamicLb::coordinate_span() const {
  double lo = 0.0, hi = 0.0;
  for (const auto& p : points)
    for (int i = 0; i < config.dim; ++i) {
      lo = std::min(lo, p[i]);
      hi = std::max(hi, p[i]);
    }
  return hi - lo;
}

WeightedSet DynamicLb::continuation(const Point& p_star, int m_star) const {
  const double scale = std::pow(2.0, m_star);
  WeightedSet out;
  for (int j = 0; j < config.dim; ++j) {
    Point plus = p_star;
    plus[j] += scale * (h + r);
    Point minus = p_star;
    minus[j] -= scale * (h + r);
    out.push_back({plus, 2});
    out.push_back({minus, 2});
  }
  return out;
}

PointSet DynamicLb::witness_centers(const Point& p_star, int m_star) const {
  const double scale = std::pow(2.0, m_star);
  PointSet out;
  for (int j = 0; j < config.dim; ++j) {
    Point plus = p_star;
    plus[j] += scale * h;
    Point minus = p_star;
    minus[j] -= scale * h;
    out.push_back(plus);
    out.push_back(minus);
  }
  return out;
}

PointSet DynamicLb::after_deletions(int m_star) const {
  PointSet out;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (group_of[i] <= m_star) out.push_back(points[i]);
  return out;
}

}  // namespace kc::lowerbound
