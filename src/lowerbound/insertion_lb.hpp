// Lower-bound constructions for the insertion-only streaming model
// (paper §4.1–§4.2, Figures 2, 3, 4, 8).
//
// Lemma 12 (Ω(k/ε^d)): z outliers on the negative x-axis plus k−2d+1
// clusters, each a d-dimensional integer grid of side λ = 1/(4dε).  If a
// coreset drops any cluster point p*, the adversary appends the 2d points
// P⁺ ∪ P⁻ at distance h+r from p* along each axis; then
//   * optk,z(P(t')) ≥ (h+r)/2                         (Claim 13),
//   * optk,z(P*(t')) ≤ r  — 2d balls of radius r centred at c_j^± cover
//     Ci* ∪ P⁺ ∪ P⁻ minus p*                          (Claims 14/38),
//   * r < (1−ε)(h+r)/2                                 (Lemma 41),
// so the coreset underestimates the optimum by more than a (1−ε) factor.
//
// Lemma 15 (Ω(k+z), also randomized): the line instance p_i = i.
//
// The generators expose every derived quantity (λ, h, r) and the explicit
// witness covers, so tests and the FIG2-3/FIG4/FIG8 benches can verify each
// claim numerically with the exact radius evaluator.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kc::lowerbound {

struct InsertionLbConfig {
  int dim = 2;
  int k = 5;            ///< must be ≥ 2d
  std::int64_t z = 3;
  double eps = 0.0;     ///< 0 → use the largest admissible ε = 1/(8d)
};

struct InsertionLb {
  InsertionLbConfig config;
  double lambda = 0.0;  ///< grid side λ = 1/(4dε), integer by construction
  double h = 0.0;       ///< d(λ+2)/2
  double r = 0.0;       ///< √(h²−2h+d)
  int clusters = 0;     ///< k − 2d + 1
  std::size_t cluster_size = 0;  ///< (λ+1)^d

  PointSet points;                 ///< P(t): outliers then clusters
  std::vector<std::size_t> outlier_indices;
  /// start index of each cluster in `points` (clusters are contiguous).
  std::vector<std::size_t> cluster_offsets;

  /// The adversarial continuation for a dropped point p*: the 2d points of
  /// P⁺ ∪ P⁻ (each of weight 2 per the paper).
  [[nodiscard]] WeightedSet continuation(const Point& p_star) const;

  /// The 2d witness centers c_j^± at distance h from p* along each axis;
  /// balls of radius r around them cover Ci* ∪ P⁺ ∪ P⁻ \ {p*} (Claim 38).
  [[nodiscard]] PointSet witness_centers(const Point& p_star) const;

  /// Lemma 41: r < (1−ε)(h+r)/2 must hold.
  [[nodiscard]] bool lemma41_holds() const;
};

/// Builds the Lemma-12 instance.  Requires k ≥ 2d and ε ≤ 1/(8d); λ is
/// rounded up so 1/(4dε) is an integer (the paper's WLOG).
[[nodiscard]] InsertionLb make_insertion_lb(const InsertionLbConfig& cfg);

/// Lemma 15 line instance: points 1..k+z on the line, plus the (k+z+1)-st
/// continuation point.
struct OmegaZLb {
  PointSet points;       ///< p_i = i, i = 1..k+z
  Point next;            ///< p_{k+z+1}
  int k = 0;
  std::int64_t z = 0;
};
[[nodiscard]] OmegaZLb make_omega_z_lb(int k, std::int64_t z);

}  // namespace kc::lowerbound
