// Lower-bound construction for the sliding-window model (paper §6,
// Theorem 30, Figures 6–7): Ω((kz/ε^d)·log σ) under L∞.
//
// λ = 1/(8ε) (odd), g = ½log2(σ) − 1, ζ = ⌊z^{1/d}⌋,
// s = λ^d − ((λ+1)/2)^d.  Each of the k−2d+1 clusters consists of g groups;
// group j consists of s subgroups of z+1 points each (the lexicographically
// smallest z+1 points of a (ζ+1)^d grid with cell side 2^j), the subgroups
// sitting in the odd cells of a (2λ−1)^d grid Π_j with cell side 2^j·ζ
// minus its smallest octant (which recursively hosts groups < j).
//
// Points arrive in decreasing (j, ℓ, i) order, so every point's expiration
// time is distinct and meaningful.  Claim 31: if the algorithm forgets the
// expiration time of p* ∈ G_{i*}^{j*,ℓ*}, the adversary inserts the 2d
// point sets P_α^± (z+1 points each at L∞ distance 2^{j*}ζ·2λ) and
// re-inserts expiring subgroup members, making
//   opt(t⁻) ≥ 2^{j*}ζλ   and   opt(t⁺) ≤ 2^{j*}ζ(2λ−1)/2,
// a ratio of 1 − 1/(2λ) = 1 − 4ε < 1 − 3ε.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kc::lowerbound {

struct SlidingLbConfig {
  int dim = 2;
  int k = 5;          ///< ≥ 2d
  std::int64_t z = 4;
  double sigma = 1 << 10;  ///< target spread ratio; must be ≥ (kz/ε)²
  double eps = 1.0 / 24.0; ///< ≤ 1/24
};

struct SlidingLb {
  SlidingLbConfig config;
  int lambda = 0;   ///< odd λ = 1/(8ε)
  int groups = 0;   ///< g
  int zeta = 0;     ///< ζ = ⌊z^{1/d}⌋
  int subgroups = 0;///< s per group

  /// Arrival-ordered stream; arrival time of points[i] is i (one per tick).
  PointSet points;
  struct Tag {
    int cluster = -1;   ///< cluster index
    int group = 0;      ///< j (1..g)
    int subgroup = 0;   ///< ℓ (1..s)
  };
  std::vector<Tag> tags;

  /// The 2d adversarial sets P_α^± for a dropped p* in subgroup (j*, ℓ*):
  /// 2d·(z+1) points (Claim 31's insertion phase).
  [[nodiscard]] PointSet adversarial_sets(const PointSet& subgroup,
                                          int j_star) const;

  /// L∞ spread ratio σ' of the construction (must be ≤ σ).
  [[nodiscard]] double spread_ratio() const;
};

[[nodiscard]] SlidingLb make_sliding_lb(const SlidingLbConfig& cfg);

}  // namespace kc::lowerbound
