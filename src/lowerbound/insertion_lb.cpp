#include "lowerbound/insertion_lb.hpp"

#include <cmath>

#include "util/check.hpp"

namespace kc::lowerbound {

namespace {

// Enumerates the integer grid {0..λ}^d shifted by `base`.
void emit_grid(PointSet& out, const Point& base, int lambda, int dim) {
  std::vector<int> idx(static_cast<std::size_t>(dim), 0);
  for (;;) {
    Point p = base;
    for (int i = 0; i < dim; ++i)
      p[i] += static_cast<double>(idx[static_cast<std::size_t>(i)]);
    out.push_back(p);
    int i = 0;
    for (; i < dim; ++i) {
      if (++idx[static_cast<std::size_t>(i)] <= lambda) break;
      idx[static_cast<std::size_t>(i)] = 0;
    }
    if (i == dim) return;
  }
}

}  // namespace

InsertionLb make_insertion_lb(const InsertionLbConfig& cfg) {
  const int d = cfg.dim;
  KC_EXPECTS(d >= 1 && d <= Point::kMaxDim);
  KC_EXPECTS(cfg.k >= 2 * d);
  KC_EXPECTS(cfg.z >= 0);

  InsertionLb lb;
  lb.config = cfg;
  // λ = 1/(4dε) must be a positive integer: with the default ε = 1/(8d),
  // λ = 2.  For smaller ε we round λ up (equivalently shrink ε slightly,
  // which only strengthens the requirement).
  double eps = cfg.eps;
  if (eps <= 0.0) eps = 1.0 / (8.0 * d);
  KC_EXPECTS(eps <= 1.0 / (8.0 * d) + 1e-12);
  const int lambda =
      static_cast<int>(std::ceil(1.0 / (4.0 * d * eps) - 1e-9));
  lb.config.eps = 1.0 / (4.0 * d * lambda);  // exact ε for integer λ
  lb.lambda = lambda;
  lb.h = d * (lambda + 2) / 2.0;
  lb.r = std::sqrt(lb.h * lb.h - 2.0 * lb.h + d);
  lb.clusters = cfg.k - 2 * d + 1;
  lb.cluster_size = 1;
  for (int i = 0; i < d; ++i)
    lb.cluster_size *= static_cast<std::size_t>(lambda + 1);

  const double gap = 4.0 * (lb.h + lb.r);

  // Outliers o_i = (−4(h+r)·i, 0, …, 0), i = 1..z.
  for (std::int64_t i = 1; i <= cfg.z; ++i) {
    Point o(d, 0.0);
    o[0] = -gap * static_cast<double>(i);
    lb.outlier_indices.push_back(lb.points.size());
    lb.points.push_back(o);
  }
  // Clusters: grids of side λ, consecutive clusters shifted by λ + 4(h+r).
  for (int c = 0; c < lb.clusters; ++c) {
    lb.cluster_offsets.push_back(lb.points.size());
    Point base(d, 0.0);
    base[0] = static_cast<double>(c) * (lambda + gap);
    emit_grid(lb.points, base, lambda, d);
  }
  return lb;
}

WeightedSet InsertionLb::continuation(const Point& p_star) const {
  const int d = config.dim;
  WeightedSet out;
  out.reserve(2 * static_cast<std::size_t>(d));
  for (int j = 0; j < d; ++j) {
    Point plus = p_star;
    plus[j] += h + r;
    Point minus = p_star;
    minus[j] -= h + r;
    out.push_back({plus, 2});
    out.push_back({minus, 2});
  }
  return out;
}

PointSet InsertionLb::witness_centers(const Point& p_star) const {
  const int d = config.dim;
  PointSet out;
  out.reserve(2 * static_cast<std::size_t>(d));
  for (int j = 0; j < d; ++j) {
    Point plus = p_star;
    plus[j] += h;
    Point minus = p_star;
    minus[j] -= h;
    out.push_back(plus);
    out.push_back(minus);
  }
  return out;
}

bool InsertionLb::lemma41_holds() const {
  return r < (1.0 - config.eps) * (r + h) / 2.0;
}

OmegaZLb make_omega_z_lb(int k, std::int64_t z) {
  KC_EXPECTS(k >= 1);
  KC_EXPECTS(z >= 0);
  OmegaZLb lb;
  lb.k = k;
  lb.z = z;
  const std::int64_t n = static_cast<std::int64_t>(k) + z;
  lb.points.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 1; i <= n; ++i)
    lb.points.push_back(Point{static_cast<double>(i)});
  lb.next = Point{static_cast<double>(n + 1)};
  return lb;
}

}  // namespace kc::lowerbound
