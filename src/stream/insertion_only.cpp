#include "stream/insertion_only.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace kc::stream {

std::size_t stream_threshold(int k, std::int64_t z, double eps, int dim,
                             ThresholdPolicy policy) {
  const double per_center = std::pow(16.0 / eps, dim);
  switch (policy) {
    case ThresholdPolicy::Ours:
      return static_cast<std::size_t>(static_cast<double>(k) * per_center) +
             static_cast<std::size_t>(z);
    case ThresholdPolicy::Ceccarello:
      return static_cast<std::size_t>(
          (static_cast<double>(k) + static_cast<double>(z)) * per_center);
  }
  return 0;  // unreachable
}

InsertionOnlyStream::InsertionOnlyStream(int k, std::int64_t z, double eps,
                                         int dim, const Metric& metric,
                                         ThresholdPolicy policy)
    : k_(k), z_(z), eps_(eps), dim_(dim), metric_(metric), reps_buf_(dim) {
  KC_EXPECTS(k >= 1);
  KC_EXPECTS(z >= 0);
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  threshold_ = stream_threshold(k, z, eps, dim, policy);
  KC_EXPECTS(threshold_ >= static_cast<std::size_t>(k) + static_cast<std::size_t>(z) + 1);
}

void InsertionOnlyStream::insert_weighted(const Point& p, std::int64_t w) {
  KC_EXPECTS(w > 0);
  ++seen_;
  // Try to assign p to an existing representative within (ε/2)·r.  While
  // r == 0 this absorbs exact duplicates only.  Built-in norms probe the
  // SoA mirror with the blocked first-within scan (same first hit as the
  // scalar rep loop); a custom metric falls back to that loop.
  const double join = (eps_ / 2.0) * r_;
  const double join_key = metric_.norm() == Norm::L2 ? join * join : join;
  bool placed = false;
  if (metric_.norm() != Norm::Custom) {
    const std::size_t hit = first_rep_within(p.coords().data(), join_key);
    if (hit < reps_.size()) {
      reps_[hit].w += w;
      placed = true;
    }
  } else {
    for (auto& rep : reps_) {
      if (metric_.dist_key(p, rep.p) <= join_key) {
        rep.w += w;
        placed = true;
        break;
      }
    }
  }
  if (!placed) {
    reps_.push_back({p, w});
    reps_buf_.append(p);
  }
  peak_ = std::max(peak_, reps_.size());

  // Bootstrap: first sensible lower bound once k+z+1 distinct points exist.
  // kc-lint-allow(numerics): r_ == 0.0 is the exact not-yet-bootstrapped
  // sentinel (set only by initialization, never by arithmetic).
  if (r_ == 0.0 &&
      reps_.size() >= static_cast<std::size_t>(k_) +
                          static_cast<std::size_t>(z_) + 1) {
    double min_key = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < reps_.size(); ++i)
      for (std::size_t j = i + 1; j < reps_.size(); ++j)
        min_key = std::min(min_key, metric_.dist_key(reps_[i].p, reps_[j].p));
    const double delta = metric_.key_to_dist(min_key);
    KC_ENSURES(delta > 0.0);  // P* never stores coinciding points
    r_ = delta / 2.0;
  }

  // Recompression loop: double r until the size drops below the threshold.
  while (reps_.size() >= threshold_) {
    KC_EXPECTS(r_ > 0.0);
    r_ *= 2.0;
    ++doublings_;
    const MiniBallCovering mbc =
        mbc_with_radius(reps_, (eps_ / 2.0) * r_, metric_);
    reps_ = mbc.reps;
    rebuild_reps_buf();
  }
}

std::size_t InsertionOnlyStream::first_rep_within(const double* q,
                                                  double join_key) const {
  switch (metric_.norm()) {
    case Norm::L2:
      return kernels::first_within<Norm::L2>(reps_buf_, q, join_key);
    case Norm::Linf:
      return kernels::first_within<Norm::Linf>(reps_buf_, q, join_key);
    case Norm::L1:
      return kernels::first_within<Norm::L1>(reps_buf_, q, join_key);
    case Norm::Custom: break;  // callers exclude Custom
  }
  KC_DCHECK(false);
  return reps_buf_.size();
}

void InsertionOnlyStream::rebuild_reps_buf() {
  reps_buf_.clear();
  reps_buf_.reserve(reps_.size());
  for (const auto& rep : reps_) reps_buf_.append(rep.p);
}

void InsertionOnlyStream::absorb(const InsertionOnlyStream& other) {
  KC_EXPECTS(other.k_ == k_ && other.z_ == z_);
  KC_EXPECTS(other.eps_ == eps_ && other.dim_ == dim_);
  // max of two valid lower bounds is a valid lower bound for the union.
  r_ = std::max(r_, other.r_);
  seen_ += other.seen_;
  for (const auto& rep : other.reps_) {
    // Re-cover at the merged radius; weights ride along.  Reuse the
    // insertion path minus the seen_ accounting (already added above).
    --seen_;
    insert_weighted(rep.p, rep.w);
  }
  peak_ = std::max(peak_, reps_.size());
}

}  // namespace kc::stream
