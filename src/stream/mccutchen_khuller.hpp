// Baseline: McCutchen–Khuller streaming k-center with outliers [34]
// ((4+ε)-approximation, O(kz/ε) stored points, general metric spaces).
//
// Reconstruction of their phase-doubling structure (documented substitution
// — see DESIGN.md): we run L = ⌈log2(1+1)/log2(1+ε)⌉-style parallel
// instances whose radius ladders are offset by (1+ε)^g, the classic trick
// that turns a doubling algorithm's factor-2 guess granularity into (1+ε).
// Each instance maintains:
//
//  * ≤ k + z cluster anchors, pairwise > 2r apart (if more existed, the
//    pigeonhole argument shows opt > r and the instance doubles r);
//  * per anchor, the z+1 most recent support points (exact points — this is
//    what makes the space Θ(kz) rather than Θ(k+z); with only aggregated
//    weights the structure would be a coreset, which is the paper's
//    improvement) plus an overflow weight;
//  * on doubling, all stored points are re-clustered at the new radius.
//
// A query solves k-center-with-outliers (Charikar) on the stored weighted
// points of the viable instance with the smallest radius.

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kc::stream {

class McCutchenKhuller {
 public:
  McCutchenKhuller(int k, std::int64_t z, double eps, const Metric& metric);

  void insert(const Point& p);

  /// Solution extracted from the best instance (centers + radius evaluated
  /// on the stored summary; callers evaluate on ground truth for quality).
  [[nodiscard]] Solution query() const;

  /// Stored points across all instances right now.
  [[nodiscard]] std::size_t stored_points() const noexcept;
  /// Peak over the stream so far (the measured O(kz/ε) space).
  [[nodiscard]] std::size_t peak_points() const noexcept { return peak_; }
  [[nodiscard]] int instances() const noexcept {
    return static_cast<int>(instances_.size());
  }

 private:
  struct Cluster {
    Point anchor;
    /// ≤ z+1 most recent members; weights > 1 appear when re-clustering
    /// folds an overflow weight back in.
    std::vector<WeightedPoint> support;
    std::int64_t overflow = 0;  ///< members beyond the stored support
  };
  struct Instance {
    double r = 0.0;               ///< current radius guess (0 = warm-up)
    std::vector<Cluster> clusters;
  };

  void insert_into(Instance& inst, const Point& p, std::int64_t weight);
  void maybe_double(Instance& inst);
  [[nodiscard]] WeightedSet stored_weighted(const Instance& inst) const;

  int k_;
  std::int64_t z_;
  double eps_;
  Metric metric_;
  std::vector<Instance> instances_;
  std::size_t peak_ = 0;
  std::size_t seen_ = 0;
};

}  // namespace kc::stream
