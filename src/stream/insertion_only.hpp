// Algorithm 3: the space-optimal insertion-only streaming coreset
// (paper §4.3, Theorem 18).
//
// Maintains a lower bound r ≤ optk,z(P(t)) and a weighted set P* such that
// every point seen so far is within ε·r of some representative:
//
//  * a new point joins a representative within (ε/2)·r, else becomes one;
//  * r starts at 0; once |P*| = k+z+1, r ← Δ/2 (half the min pairwise
//    distance — two of those points share an optimal ball, so Δ/2 ≤ opt);
//  * whenever |P*| ≥ k(16/ε)^d + z the packing bound (Lemma 6) proves
//    2r ≤ opt, so r doubles and P* is recompressed with UpdateCoreset
//    (Algorithm 4) at radius (ε/2)·r.  Reassignment errors telescope:
//    Σ (ε/2)·r/2^i ≤ ε·r (Lemma 16).
//
// Space: |P*| ≤ k(16/ε)^d + z — optimal by the paper's Theorem 11 lower
// bound.  The same class also implements the Ceccarello-et-al.-style
// baseline [11] whose recompression threshold is (k+z)(16/ε)^d, i.e. the
// multiplicative z/ε^d space the paper's threshold improves to an additive
// z (Table 1 rows "insertion-only").

#pragma once

#include <cstdint>

#include "core/mbc.hpp"
#include "core/types.hpp"

namespace kc::stream {

enum class ThresholdPolicy : std::uint8_t {
  Ours,        ///< k(16/ε)^d + z   (Algorithm 3)
  Ceccarello,  ///< (k+z)(16/ε)^d   (baseline shape, multiplicative z)
};

class InsertionOnlyStream {
 public:
  InsertionOnlyStream(int k, std::int64_t z, double eps, int dim,
                      const Metric& metric,
                      ThresholdPolicy policy = ThresholdPolicy::Ours);

  /// Handles the arrival of one (unit-weight) point.
  void insert(const Point& p) { insert_weighted(p, 1); }

  /// Weighted arrival (the paper's weighted problem: positive integer
  /// weights; the outlier budget z bounds outlier *weight*).
  void insert_weighted(const Point& p, std::int64_t w);

  /// Mergeable-summaries extension (Lemma 4 applied to streams): absorbs
  /// another summary built with the same (k, z, ε, metric).  The merged
  /// lower bound is max(r, other.r) — valid because optk,z of a union
  /// dominates optk,z of each part — and the absorbed representatives are
  /// re-covered at radius (ε/2)·r.  The covering guarantee right after a
  /// merge is (3/2)·ε·opt (one extra ε/2·r hop); it telescopes back to
  /// ε·opt after subsequent doublings exactly as in Lemma 16.  Callers that
  /// need a strict ε merge should construct the summaries with (2/3)·ε.
  void absorb(const InsertionOnlyStream& other);

  /// Current coreset P*(t) — an (ε,k,z)-mini-ball covering of P(t).
  [[nodiscard]] const WeightedSet& coreset() const noexcept { return reps_; }

  /// Current lower-bound radius r ≤ optk,z(P(t)).
  [[nodiscard]] double r() const noexcept { return r_; }

  /// Recompression threshold for |P*|.
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  /// Largest |P*| ever reached (the measured space; ≤ threshold()).
  [[nodiscard]] std::size_t peak_size() const noexcept { return peak_; }

  /// Peak storage in words (points are d+1 words; r and counters O(1)).
  [[nodiscard]] std::size_t peak_words() const noexcept {
    return peak_ * static_cast<std::size_t>(dim_ + 1) + 4;
  }

  /// Number of r-doublings performed (diagnostics).
  [[nodiscard]] int doublings() const noexcept { return doublings_; }

  [[nodiscard]] std::size_t points_seen() const noexcept { return seen_; }

 private:
  /// First rep index with dist_key(q, rep) ≤ join_key (built-in norms; the
  /// blocked vectorized scan of geometry/kernels.hpp), or reps_.size().
  [[nodiscard]] std::size_t first_rep_within(const double* q,
                                             double join_key) const;
  /// Re-packs reps_buf_ from reps_ (after a recompression replaced reps_).
  void rebuild_reps_buf();

  int k_;
  std::int64_t z_;
  double eps_;
  int dim_;
  Metric metric_;
  std::size_t threshold_;
  WeightedSet reps_;
  /// SoA mirror of the rep coordinates, maintained incrementally (append on
  /// new rep, rebuild after recompression) so the per-arrival "join an
  /// existing rep" probe runs through the blocked vectorized scan instead
  /// of re-packing — identical first hit, see geometry/kernels.hpp.
  kernels::PointBuffer reps_buf_;
  double r_ = 0.0;
  std::size_t peak_ = 0;
  std::size_t seen_ = 0;
  int doublings_ = 0;
};

/// The |P*| threshold for a policy: k(16/ε)^d + z or (k+z)(16/ε)^d.
[[nodiscard]] std::size_t stream_threshold(int k, std::int64_t z, double eps,
                                           int dim, ThresholdPolicy policy);

}  // namespace kc::stream
