#include "stream/mccutchen_khuller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/charikar.hpp"
#include "core/cost.hpp"
#include "util/check.hpp"

namespace kc::stream {

namespace {
// Offsets (1+ε)^g, g = 0..L−1, with (1+ε)^L ≥ 2: the union of the offset
// doubling ladders is (1+ε)-dense.
std::vector<double> ladder_offsets(double eps) {
  std::vector<double> offsets;
  double v = 1.0;
  while (v < 2.0) {
    offsets.push_back(v);
    v *= (1.0 + eps);
  }
  return offsets;
}
}  // namespace

McCutchenKhuller::McCutchenKhuller(int k, std::int64_t z, double eps,
                                   const Metric& metric)
    : k_(k), z_(z), eps_(eps), metric_(metric) {
  KC_EXPECTS(k >= 1);
  KC_EXPECTS(z >= 0);
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  for (double off : ladder_offsets(eps)) {
    Instance inst;
    inst.r = -off;  // negative encodes "warm-up with this offset"
    instances_.push_back(std::move(inst));
  }
}

void McCutchenKhuller::insert_into(Instance& inst, const Point& p,
                                   std::int64_t weight) {
  const double r = std::max(inst.r, 0.0);
  const double join = 2.0 * r;
  const double join_key = metric_.norm() == Norm::L2 ? join * join : join;
  for (auto& c : inst.clusters) {
    if (metric_.dist_key(p, c.anchor) <= join_key) {
      c.support.push_back({p, weight});
      while (c.support.size() > static_cast<std::size_t>(z_) + 1) {
        c.overflow += c.support.front().w;  // oldest member demoted to weight
        c.support.erase(c.support.begin());
      }
      return;
    }
  }
  Cluster fresh;
  fresh.anchor = p;
  fresh.support.push_back({p, weight});
  inst.clusters.push_back(std::move(fresh));
}

void McCutchenKhuller::maybe_double(Instance& inst) {
  // Pigeonhole: > k+z anchors pairwise > 2r means opt > r → double.
  while (inst.clusters.size() >
         static_cast<std::size_t>(k_) + static_cast<std::size_t>(z_)) {
    if (inst.r < 0.0) {
      // Warm-up ends: bootstrap from the minimum anchor distance.
      double min_key = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < inst.clusters.size(); ++i)
        for (std::size_t j = i + 1; j < inst.clusters.size(); ++j)
          min_key = std::min(min_key,
                             metric_.dist_key(inst.clusters[i].anchor,
                                              inst.clusters[j].anchor));
      const double delta = metric_.key_to_dist(min_key);
      const double offset = -inst.r;
      inst.r = std::max(delta / 2.0, 1e-300) * offset;
    } else {
      inst.r *= 2.0;
    }
    // Re-cluster everything stored at the new radius; overflow weights ride
    // on their anchor coordinates.
    std::vector<Cluster> old;
    old.swap(inst.clusters);
    for (const auto& c : old) {
      if (c.overflow > 0) insert_into(inst, c.anchor, c.overflow);
      for (const auto& wp : c.support) insert_into(inst, wp.p, wp.w);
    }
  }
}

void McCutchenKhuller::insert(const Point& p) {
  ++seen_;
  for (auto& inst : instances_) {
    insert_into(inst, p, 1);
    maybe_double(inst);
  }
  peak_ = std::max(peak_, stored_points());
}

std::size_t McCutchenKhuller::stored_points() const noexcept {
  std::size_t total = 0;
  for (const auto& inst : instances_)
    for (const auto& c : inst.clusters) total += 1 + c.support.size();
  return total;
}

WeightedSet McCutchenKhuller::stored_weighted(const Instance& inst) const {
  WeightedSet out;
  for (const auto& c : inst.clusters) {
    if (c.overflow > 0) out.push_back({c.anchor, c.overflow});
    for (const auto& wp : c.support) out.push_back(wp);
  }
  return out;
}

Solution McCutchenKhuller::query() const {
  Solution best;
  best.radius = std::numeric_limits<double>::infinity();
  for (const auto& inst : instances_) {
    const WeightedSet stored = stored_weighted(inst);
    if (stored.empty()) continue;
    const CharikarResult res = charikar_oracle(stored, k_, z_, metric_);
    const Solution sol = evaluate(stored, res.centers, z_, metric_);
    // Stored summary displaces true points by ≤ 2r (overflow demotion), so
    // account that slack when comparing instances.
    const double adjusted = sol.radius + 2.0 * std::max(inst.r, 0.0);
    if (adjusted < best.radius) {
      best.radius = adjusted;
      best.centers = sol.centers;
    }
  }
  if (!std::isfinite(best.radius)) best.radius = 0.0;
  return best;
}

}  // namespace kc::stream
