// Sliding-window k-center with outliers: the De Berg–Monemizadeh–Zhong
// structure [18], whose O((kz/ε^d)·log σ) space the paper's Theorem 30
// proves optimal.  Reconstructed from its interface (documented
// substitution, DESIGN.md #5):
//
//  * A ladder of levels ℓ with radius guesses 2^ℓ spanning [r_min, r_max]
//    (≈ log σ levels).
//  * Per level, a set of mini-clusters: representative coordinate plus the
//    z+1 most recent members (point + arrival time) and the time of the
//    last join.  A point joins the first mini-cluster whose representative
//    is within ε·2^ℓ, else founds a new one.
//  * Capacity per level: cap = k(16/ε)^d + z mini-clusters.  Overflowing
//    levels evict the mini-cluster with the oldest last-join time and
//    become *unsafe* until that cluster's members have all expired
//    (unsafe_until = evicted.last_join + W) — by then the eviction is
//    provably harmless.  If the guess 2^ℓ ≥ opt(window), the packing bound
//    keeps the level within cap, so the level containing opt is always
//    safe.
//  * Window weights are exact-but-capped: the stored members of a cluster
//    are its most recent, so the number of alive members is known exactly
//    whenever it is ≤ z+1, and any larger count may be clamped to z+1
//    without affecting outlier decisions (budget ≤ z).
//
// query(t) returns, for the smallest safe level with ≤ cap alive clusters,
// the alive representatives with capped weights — a mini-ball covering of
// the window with radius ≤ 2ε·2^ℓ ≤ 4ε·opt (the factor-2 ladder and the
// reanchoring to an alive member each cost a factor ≤ 2; callers absorb
// this constant into ε).

#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kc::stream {

class SlidingWindow {
 public:
  /// Window length W (in arrivals); radius ladder spans [r_min, r_max].
  SlidingWindow(int k, std::int64_t z, double eps, int dim, std::int64_t window,
                double r_min, double r_max, const Metric& metric);

  /// Point arriving at time t (strictly increasing).
  void insert(const Point& p, std::int64_t t);

  struct QueryResult {
    WeightedSet coreset;   ///< covering of the window (weights capped at z+1)
    int level = -1;        ///< ladder level used (−1: no safe level)
    double guess = 0.0;    ///< radius guess 2^ℓ·r_min of that level
    double cover_radius = 0.0;  ///< covering slack of the coreset
  };
  [[nodiscard]] QueryResult query(std::int64_t now) const;

  [[nodiscard]] int levels() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] std::size_t cap_per_level() const noexcept { return cap_; }
  /// Stored (point, timestamp) records across all levels right now.
  [[nodiscard]] std::size_t stored_records() const noexcept;
  [[nodiscard]] std::size_t peak_records() const noexcept { return peak_; }

 private:
  struct Member {
    Point p;
    std::int64_t t = 0;
  };
  struct MiniCluster {
    Point rep;
    std::vector<Member> recent;  ///< ≤ z+1, oldest first
    std::int64_t last_join = 0;
  };
  struct Level {
    double radius = 0.0;              ///< join radius ε·2^ℓ·r_min
    double guess = 0.0;               ///< the radius guess 2^ℓ·r_min
    std::vector<MiniCluster> clusters;
    std::int64_t unsafe_until = 0;    ///< queries invalid before this time
  };

  int k_;
  std::int64_t z_;
  double eps_;
  std::int64_t window_;
  Metric metric_;
  std::size_t cap_ = 0;
  std::vector<Level> levels_;
  std::size_t peak_ = 0;
};

}  // namespace kc::stream
