#include "stream/sliding_window.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kc::stream {

SlidingWindow::SlidingWindow(int k, std::int64_t z, double eps, int dim,
                             std::int64_t window, double r_min, double r_max,
                             const Metric& metric)
    : k_(k), z_(z), eps_(eps), window_(window), metric_(metric) {
  KC_EXPECTS(k >= 1);
  KC_EXPECTS(z >= 0);
  KC_EXPECTS(eps > 0.0 && eps <= 1.0);
  KC_EXPECTS(window >= 1);
  KC_EXPECTS(r_min > 0.0 && r_max >= r_min);
  cap_ = static_cast<std::size_t>(
             static_cast<double>(k) * std::pow(16.0 / eps, dim)) +
         static_cast<std::size_t>(z);
  for (double guess = r_min; guess <= 2.0 * r_max; guess *= 2.0) {
    Level lvl;
    lvl.guess = guess;
    lvl.radius = eps * guess;
    levels_.push_back(std::move(lvl));
  }
}

void SlidingWindow::insert(const Point& p, std::int64_t t) {
  for (auto& lvl : levels_) {
    const double key =
        metric_.norm() == Norm::L2 ? lvl.radius * lvl.radius : lvl.radius;
    bool placed = false;
    for (auto& c : lvl.clusters) {
      if (metric_.dist_key(p, c.rep) <= key) {
        c.recent.push_back({p, t});
        if (c.recent.size() > static_cast<std::size_t>(z_) + 1)
          c.recent.erase(c.recent.begin());
        c.last_join = t;
        placed = true;
        break;
      }
    }
    if (!placed) {
      MiniCluster fresh;
      fresh.rep = p;
      fresh.recent.push_back({p, t});
      fresh.last_join = t;
      lvl.clusters.push_back(std::move(fresh));
    }
    // Drop clusters whose every stored member expired — they cannot matter
    // for any current or future window.
    std::erase_if(lvl.clusters, [&](const MiniCluster& c) {
      return c.last_join <= t - window_;
    });
    // Capacity: evict the stalest cluster and mark the level unsafe until
    // the evicted cluster's members have all left the window.
    while (lvl.clusters.size() > cap_) {
      auto stalest = std::min_element(
          lvl.clusters.begin(), lvl.clusters.end(),
          [](const MiniCluster& a, const MiniCluster& b) {
            return a.last_join < b.last_join;
          });
      lvl.unsafe_until =
          std::max(lvl.unsafe_until, stalest->last_join + window_);
      lvl.clusters.erase(stalest);
    }
  }
  peak_ = std::max(peak_, stored_records());
}

std::size_t SlidingWindow::stored_records() const noexcept {
  std::size_t total = 0;
  for (const auto& lvl : levels_)
    for (const auto& c : lvl.clusters) total += 1 + c.recent.size();
  return total;
}

SlidingWindow::QueryResult SlidingWindow::query(std::int64_t now) const {
  const std::int64_t horizon = now - window_;  // alive ⇔ t > horizon
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    const Level& lvl = levels_[li];
    if (lvl.unsafe_until > now) continue;

    WeightedSet coreset;
    bool ok = true;
    for (const auto& c : lvl.clusters) {
      // Alive members among the stored most-recent z+1.
      std::int64_t alive = 0;
      const Member* newest_alive = nullptr;
      for (const auto& m : c.recent) {
        if (m.t > horizon) {
          ++alive;
          newest_alive = &m;
        }
      }
      if (alive == 0) continue;
      // If every stored member is alive the true count may exceed z+1;
      // clamp — outlier budgets never need more.
      const bool saturated =
          c.recent.size() == static_cast<std::size_t>(z_) + 1 &&
          static_cast<std::size_t>(alive) == c.recent.size();
      const std::int64_t w = saturated ? z_ + 1 : alive;
      // Re-anchor on an alive member so the coreset is a subset of the
      // window (costs ≤ 2·radius of covering slack).
      coreset.push_back({newest_alive->p, std::max<std::int64_t>(w, 1)});
      if (coreset.size() > cap_) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    QueryResult res;
    res.coreset = std::move(coreset);
    res.level = static_cast<int>(li);
    res.guess = lvl.guess;
    res.cover_radius = 2.0 * lvl.radius;
    return res;
  }
  return {};
}

}  // namespace kc::stream
