// Chunked dataset sources: the contract that feeds the streaming/dynamic
// pipelines (and the MPC partitioner's gather) without ever materializing
// the full point set.
//
// A `DataSource` serves column-major chunks of a fixed, finite point
// sequence.  The two implementations bracket the design space:
//
//  * `KcbSource` — an mmap'ed `.kcb` file.  Chunks are zero-copy
//    `BufferView`s aliasing the mapping (pointer-identity is a tested
//    contract); `prefetch` issues posix_madvise(WILLNEED) for the next
//    chunk while the current one is consumed.
//  * `GeneratedSource` — a deterministic on-the-fly workload at arbitrary
//    n.  Point i is a pure function of (config, i) (counter-based
//    splitmix64, no sequential RNG state), so the content is independent
//    of chunking, and two passes — or two differently-budgeted readers —
//    see identical bytes.  Chunks materialize into two alternating
//    fixed-size slots (the double buffer).
//
// `ChunkedReader` drives a source sequentially under a fixed memory
// budget: it sizes chunks so that two slots fit the budget, hands out one
// chunk per `next`, and prefetches the following chunk's range before
// returning — by the time the caller finishes streaming chunk i, chunk
// i+1's pages are (best effort) resident.  Peak memory is O(budget),
// independent of n: that is the invariant bench_scale's RSS trajectory
// pins.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dataset/kcb.hpp"
#include "geometry/metric.hpp"
#include "geometry/point_buffer.hpp"

namespace kc::dataset {

/// A finite sequence of unit-weight points served in column-major chunks.
class DataSource {
 public:
  virtual ~DataSource() = default;

  [[nodiscard]] virtual int dim() const = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Exact per-coordinate bounding box over all points (min/max — the same
  /// values `Box::extend` over the materialized set would produce), so
  /// consumers needing global extent (the dynamic pipeline's [Δ]^d
  /// discretization) stay single-pass.
  [[nodiscard]] virtual const std::vector<double>& box_lo() const = 0;
  [[nodiscard]] virtual const std::vector<double>& box_hi() const = 0;

  /// Rows [offset, offset+count); count ≥ 1, offset+count ≤ size().  The
  /// returned view stays valid until the *second* following chunk() call
  /// (double-buffer contract; mmap-backed views are valid for the source's
  /// lifetime).
  [[nodiscard]] virtual kernels::BufferView<double> chunk(
      std::uint64_t offset, std::size_t count) = 0;

  /// Advisory: the caller will read rows [offset, offset+count) soon.
  virtual void prefetch(std::uint64_t offset, std::size_t count) {
    (void)offset;
    (void)count;
  }

  /// Advisory: the caller is done with rows [offset, offset+count) — a
  /// previously returned chunk past its validity window.  Mmap-backed
  /// sources drop the pages (MappedKcb::release) so peak RSS stays
  /// O(chunk budget) at any n; in-memory sources ignore it.
  virtual void release(std::uint64_t offset, std::size_t count) {
    (void)offset;
    (void)count;
  }

  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Zero-copy source over an mmap'ed `.kcb` file.
class KcbSource final : public DataSource {
 public:
  explicit KcbSource(const std::string& path)
      : map_(path), path_(path) {}

  [[nodiscard]] int dim() const override { return map_.dim(); }
  [[nodiscard]] std::uint64_t size() const override { return map_.size(); }
  [[nodiscard]] const std::vector<double>& box_lo() const override {
    return map_.box_lo();
  }
  [[nodiscard]] const std::vector<double>& box_hi() const override {
    return map_.box_hi();
  }
  [[nodiscard]] kernels::BufferView<double> chunk(
      std::uint64_t offset, std::size_t count) override;
  void prefetch(std::uint64_t offset, std::size_t count) override {
    map_.prefetch(offset, count);
  }
  void release(std::uint64_t offset, std::size_t count) override {
    map_.release(offset, count);
  }
  [[nodiscard]] std::string describe() const override { return path_; }

  [[nodiscard]] const MappedKcb& mapped() const noexcept { return map_; }

 private:
  MappedKcb map_;
  std::string path_;
};

/// Configuration of the deterministic generated source (no certified
/// optimum bracket — this is the scale workload, not the planted one).
struct GeneratedConfig {
  std::uint64_t n = 1'000'000;
  int dim = 2;
  int k = 3;               ///< clusters on a lattice of pitch `separation`
  double cluster_radius = 1.0;
  double separation = 40.0;       ///< × cluster_radius between lattice sites
  std::uint32_t outlier_permille = 2;  ///< ~2/1000 points are far outliers
  std::uint64_t seed = 1;
};

/// Deterministic on-the-fly source: point i is a pure function of
/// (config, i), so content is chunking-invariant and reproducible across
/// machines (integer hashing + exact double arithmetic only).
class GeneratedSource final : public DataSource {
 public:
  explicit GeneratedSource(const GeneratedConfig& cfg);

  [[nodiscard]] int dim() const override { return cfg_.dim; }
  [[nodiscard]] std::uint64_t size() const override { return cfg_.n; }
  [[nodiscard]] const std::vector<double>& box_lo() const override {
    return box_lo_;
  }
  [[nodiscard]] const std::vector<double>& box_hi() const override {
    return box_hi_;
  }
  [[nodiscard]] kernels::BufferView<double> chunk(
      std::uint64_t offset, std::size_t count) override;
  [[nodiscard]] std::string describe() const override;

  /// Point i's coordinates (length dim) — the pure per-index function.
  void point_at(std::uint64_t i, double* out) const;

 private:
  GeneratedConfig cfg_;
  std::vector<double> centers_;  ///< k lattice centers, row-major k×dim
  std::vector<double> box_lo_, box_hi_;
  int per_axis_ = 1;             ///< lattice sites per axis
  std::uint64_t seed_mix_ = 0;   ///< pre-mixed seed of the per-index hash
  kernels::PointBuffer slots_[2];  ///< double buffer for chunk views
  std::vector<double> row_;        ///< one-row staging scratch
  int active_ = 0;
};

/// Options of the chunked streaming pass.
struct ReaderOptions {
  /// Total chunk memory (two slots).  The reader derives
  /// chunk_points = budget / (2 · 8 · dim), floored at 1024.
  std::size_t budget_bytes = 32u << 20;
  /// Explicit chunk size in points; overrides the budget when nonzero
  /// (chunk-boundary tests sweep this).
  std::size_t chunk_points = 0;
};

/// Sequential fixed-budget chunk iterator with one-chunk lookahead
/// prefetch.
class ChunkedReader {
 public:
  struct Chunk {
    kernels::BufferView<double> view;
    std::uint64_t offset = 0;  ///< row index of view row 0 in the source
  };

  explicit ChunkedReader(DataSource& src, const ReaderOptions& opts = {});

  /// Fills `out` with the next chunk; false at end of the sequence.  Also
  /// releases the chunk handed out two calls ago (the double-buffer
  /// validity window has passed), so an mmap-backed pass holds at most a
  /// bounded number of chunks resident regardless of n.
  bool next(Chunk& out);

  void reset() noexcept {
    pos_ = 0;
    last_count_ = old_count_ = 0;
  }

  [[nodiscard]] std::size_t chunk_points() const noexcept { return chunk_; }

 private:
  DataSource& src_;
  std::size_t chunk_ = 0;
  std::uint64_t pos_ = 0;
  // The two most recently returned chunks (offset, count): `last_` is
  // still inside the validity contract, `old_` is released on the next
  // call.  count == 0 marks an empty slot.
  std::uint64_t last_offset_ = 0, old_offset_ = 0;
  std::size_t last_count_ = 0, old_count_ = 0;
};

/// Optional per-chunk rewrite for `chunked_radius_with_outliers`: fills
/// `scratch` (cleared by the caller) with the transformed image of `in`
/// — e.g. the dynamic pipeline's [Δ]^d discretization.
using ChunkTransform = std::function<void(
    const kernels::BufferView<double>& in, kernels::PointBuffer& scratch)>;

/// Exact `radius_with_outliers` over a source, one chunk at a time: the
/// smallest r such that at most z points are farther than r from their
/// nearest center.  Bit-identical to the in-memory evaluation (same
/// per-point kernel accumulation, ascending-center minimisation; the
/// (z+1)-largest selection is value-equal under ties).  Peak memory is
/// O(chunk), independent of n.  Built-in norms only.
[[nodiscard]] double chunked_radius_with_outliers(
    DataSource& src, const PointSet& centers, std::int64_t z,
    const Metric& metric, const ReaderOptions& opts = {},
    const ChunkTransform& transform = nullptr);

/// Streams a source into a `.kcb` file (fixed memory; returns points
/// written).
std::uint64_t write_kcb(const std::string& path, DataSource& src,
                        const ReaderOptions& opts = {});

}  // namespace kc::dataset
