#include "dataset/text_import.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "dataset/kcb.hpp"
#include "geometry/point.hpp"
#include "util/check.hpp"

namespace kc::dataset {

namespace {

[[noreturn]] void fail(const std::string& path, std::size_t lineno,
                       const std::string& what) {
  std::ostringstream os;
  os << path;
  if (lineno != 0) os << ":" << lineno;
  os << ": " << what;
  throw std::runtime_error(os.str());
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

/// Full-cell numeric parse: the entire (trimmed) cell must be consumed, so
/// "1.5abc" is rejected instead of silently reading 1.5.
bool parse_cell(const std::string& cell, double& out) {
  std::size_t b = 0, e = cell.size();
  while (b < e && std::isspace(static_cast<unsigned char>(cell[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(cell[e - 1])) != 0)
    --e;
  if (b == e) return false;
  const std::string t = cell.substr(b, e - b);
  char* end = nullptr;
  out = std::strtod(t.c_str(), &end);
  return end == t.c_str() + t.size();
}

/// Strict CSV walk: calls `row(lineno, cols)` for every data line.  Skips
/// blanks, `#` comments, and at most one leading header line (a first data
/// line in which *no* cell parses as a number).  Everything else malformed
/// throws with line (and column) position.
void walk_csv(const std::string& path,
              const std::function<void(std::size_t,
                                       const std::vector<double>&)>& row) {
  std::ifstream in(path);
  if (!in) fail(path, 0, "cannot open");
  std::string line;
  std::size_t lineno = 0;
  bool seen_data = false;
  int dim = -1;
  std::vector<double> cols;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_blank(line)) continue;
    const std::size_t first =
        line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;

    cols.clear();
    std::stringstream ss(line);
    std::string cell;
    std::size_t col = 0;
    std::size_t bad_col = 0;   // first unparseable column (1-based), 0 = none
    std::size_t parsed = 0;
    while (std::getline(ss, cell, ',')) {
      ++col;
      double v = 0.0;
      if (!parse_cell(cell, v)) {
        if (bad_col == 0) bad_col = col;
        continue;
      }
      ++parsed;
      if (bad_col == 0) cols.push_back(v);
    }
    if (bad_col != 0) {
      // A first line of pure non-numbers is a header; anything else is an
      // error at the offending cell.
      if (!seen_data && parsed == 0) continue;
      std::ostringstream os;
      os << "column " << bad_col << ": not a number";
      fail(path, lineno, os.str());
    }
    if (cols.empty()) fail(path, lineno, "no columns");
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (!std::isfinite(cols[c])) {
        std::ostringstream os;
        os << "column " << (c + 1) << ": non-finite value";
        fail(path, lineno, os.str());
      }
    }
    if (dim < 0) dim = static_cast<int>(cols.size());
    if (static_cast<int>(cols.size()) != dim) {
      std::ostringstream os;
      os << "has " << cols.size() << " columns, expected " << dim;
      fail(path, lineno, os.str());
    }
    seen_data = true;
    row(lineno, cols);
  }
}

}  // namespace

WeightedSet read_csv_points(const std::string& path, bool weighted) {
  WeightedSet pts;
  walk_csv(path, [&](std::size_t lineno, const std::vector<double>& cols) {
    std::int64_t w = 1;
    std::size_t dim = cols.size();
    if (weighted) {
      if (cols.size() < 2)
        fail(path, lineno, "--weighted needs >= 2 columns");
      const double wv = cols.back();
      if (!(wv >= 1.0) || wv != std::floor(wv) ||
          wv > 9.0e18)
        fail(path, lineno, "weight must be a positive integer");
      w = static_cast<std::int64_t>(wv);
      dim = cols.size() - 1;
    }
    if (dim > static_cast<std::size_t>(Point::kMaxDim)) {
      std::ostringstream os;
      os << "dim " << dim << " exceeds the Point limit of " << Point::kMaxDim
         << " (convert to .kcb for wide data)";
      fail(path, lineno, os.str());
    }
    pts.push_back(
        {Point(std::span<const double>(cols.data(), dim)), w});
  });
  if (pts.empty()) fail(path, 0, "no points parsed");
  return pts;
}

std::uint64_t csv_to_kcb(const std::string& csv_path,
                         const std::string& kcb_path) {
  // Pass 1: count rows (and fix dim) under the same strict validation the
  // writing pass uses, so the writer can lay out columns up front.
  std::uint64_t n = 0;
  int dim = -1;
  walk_csv(csv_path, [&](std::size_t, const std::vector<double>& cols) {
    ++n;
    dim = static_cast<int>(cols.size());
  });
  if (n == 0) fail(csv_path, 0, "no points parsed");

  KcbWriter writer(kcb_path, dim, n);
  walk_csv(csv_path, [&](std::size_t, const std::vector<double>& cols) {
    writer.append(cols.data());
  });
  writer.finish();
  return n;
}

std::uint64_t mtx_to_kcb(const std::string& mtx_path,
                         const std::string& kcb_path) {
  std::ifstream in(mtx_path);
  if (!in) fail(mtx_path, 0, "cannot open");
  std::string line;
  std::size_t lineno = 0;

  // Banner: "%%MatrixMarket matrix array real general" (case-insensitive).
  if (!std::getline(in, line)) fail(mtx_path, 1, "empty file");
  ++lineno;
  std::string lower = line;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower.rfind("%%matrixmarket", 0) != 0)
    fail(mtx_path, 1, "not a MatrixMarket file (missing %%MatrixMarket banner)");
  const auto has = [&lower](const char* tok) {
    return lower.find(tok) != std::string::npos;
  };
  if (!has(" matrix ") && lower.find(" matrix") == std::string::npos)
    fail(mtx_path, 1, "banner: expected object 'matrix'");
  if (!has("array"))
    fail(mtx_path, 1,
         "banner: only the dense 'array' format is supported (got sparse "
         "'coordinate'?)");
  if (!has("real"))
    fail(mtx_path, 1, "banner: only 'real' values are supported");
  if (!has("general"))
    fail(mtx_path, 1, "banner: only 'general' symmetry is supported");

  // Comments, then the size line: "<n> <dim>".
  std::uint64_t n = 0;
  int dim = 0;
  for (;;) {
    if (!std::getline(in, line)) fail(mtx_path, lineno, "missing size line");
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_blank(line) || line[0] == '%') continue;
    std::istringstream ss(line);
    long long rows = 0, cols = 0;
    std::string extra;
    if (!(ss >> rows >> cols) || (ss >> extra) || rows < 1 || cols < 1)
      fail(mtx_path, lineno, "malformed size line (want '<rows> <cols>')");
    n = static_cast<std::uint64_t>(rows);
    dim = static_cast<int>(cols);
    break;
  }

  // Values arrive column-major — exactly the writer's column mode.
  KcbWriter writer(kcb_path, dim, n);
  const std::uint64_t need = n * static_cast<std::uint64_t>(dim);
  std::uint64_t got = 0;
  int cur_col = -1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_blank(line)) continue;
    std::istringstream ss(line);
    std::string tok;
    while (ss >> tok) {
      double v = 0.0;
      if (!parse_cell(tok, v)) fail(mtx_path, lineno, "not a number: " + tok);
      if (!std::isfinite(v)) fail(mtx_path, lineno, "non-finite value");
      if (got == need)
        fail(mtx_path, lineno, "trailing garbage after the declared values");
      const int col = static_cast<int>(got / n);
      if (col != cur_col) {
        writer.begin_column(col);
        cur_col = col;
      }
      writer.column_value(v);
      ++got;
    }
  }
  if (got != need) {
    std::ostringstream os;
    os << "expected " << need << " values, got " << got;
    fail(mtx_path, lineno, os.str());
  }
  writer.finish();
  return n;
}

}  // namespace kc::dataset
