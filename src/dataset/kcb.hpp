// The `.kcb` on-disk dataset format: a direct image of the column-major
// `PointBuffer`, built to be mmap'ed and consumed zero-copy.
//
// Everything in this repo streams coordinates column-wise, so the file
// stores exactly what the kernels read: `dim` contiguous float64 columns of
// length `n` (stride = n).  A reader maps the file and hands out
// `BufferView<double>` slices whose `col(j)` pointers alias the mapping —
// no parse, no re-pack, no copy; the OS page cache is the only buffer.
//
// Layout (version 1, all integers little-or-big endian as written — the
// header carries an endianness marker and readers reject a mismatch rather
// than byte-swapping):
//
//   [0, 64)              KcbHeader (fixed 64 bytes, see below)
//   [64, 64 + 16·dim)    bounding box: dim float64 lows, then dim highs
//                        (exact per-coordinate min/max — lets consumers
//                        that need global extent, e.g. the dynamic
//                        pipeline's [Δ]^d discretization, run in one pass)
//   [4096, 4096 + 8·n·dim)
//                        the data image: column j occupies the 8·n bytes
//                        starting at 4096 + j·8·n.  The 4096 data offset
//                        page-aligns every column start for mmap +
//                        posix_madvise.
//
// Integrity: `header_checksum` (FNV-1a 64 over the header bytes with the
// checksum field itself zeroed) is validated on every open; `data_checksum`
// (FNV-1a 64 over the dim per-column FNV-1a digests, each digest taken over
// that column's bytes in row order) is validated on demand
// (`MappedKcb::verify_data`) so opening a 10M-point file stays O(1) —
// checksumming it would fault in every page and defeat out-of-core reads.
//
// Weights: none.  A `.kcb` file is a unit-weight point set (the scale
// pipelines consume raw streams); weighted instances stay on the CSV path.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point_buffer.hpp"

namespace kc::dataset {

inline constexpr char kKcbMagic[4] = {'K', 'C', 'B', '1'};
inline constexpr std::uint32_t kKcbEndianMarker = 0x01020304u;
inline constexpr std::uint32_t kKcbVersion = 1;
inline constexpr std::uint64_t kKcbDataOffset = 4096;

/// Fixed 64-byte header at offset 0 of every `.kcb` file.
struct KcbHeader {
  char magic[4];            ///< "KCB1"
  std::uint32_t endian;     ///< kKcbEndianMarker as written by the producer
  std::uint32_t version;    ///< kKcbVersion
  std::uint32_t dtype;      ///< 0 = float64 (the only dtype of version 1)
  std::uint32_t dim;        ///< columns
  std::uint32_t reserved;   ///< 0
  std::uint64_t n;          ///< rows
  std::uint64_t data_checksum;    ///< combined per-column FNV-1a (see above)
  std::uint64_t header_checksum;  ///< FNV-1a of this struct with field = 0
  char pad[16];             ///< zero
};
static_assert(sizeof(KcbHeader) == 64, "KcbHeader must be exactly 64 bytes");

/// FNV-1a 64-bit over a byte range (the format's checksum primitive).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t len,
                                  std::uint64_t seed = 0xcbf29ce484222325ull);

/// Streaming `.kcb` writer with a fixed memory budget: rows are buffered in
/// a bounded SoA chunk and flushed column-piece-wise via positioned writes,
/// so writing a 10M-point file holds only the chunk in memory.  `n` must be
/// known up front (column offsets depend on it); the text importers count
/// rows in a first pass.
///
/// Two mutually exclusive filling modes:
///  * row mode — `append(coords)` n times (CSV importer, generators);
///  * column mode — for each j in 0..dim-1: `begin_column(j)`,
///    `column_value(v)` n times (Matrix-Market dense arrays arrive in
///    exactly this order).
/// Either way, `finish()` seals the file (bbox, checksums, header).
class KcbWriter {
 public:
  /// Opens `path` for writing (truncates).  Throws std::runtime_error on
  /// I/O failure.  `chunk_rows` bounds the row-mode buffer (per column).
  KcbWriter(const std::string& path, int dim, std::uint64_t n,
            std::size_t chunk_rows = 1u << 16);
  ~KcbWriter();

  KcbWriter(const KcbWriter&) = delete;
  KcbWriter& operator=(const KcbWriter&) = delete;

  /// Row mode: appends one row of `dim()` finite coordinates.
  void append(const double* coords);

  /// Column mode: starts column j (columns must arrive in ascending order,
  /// each immediately after the previous one is complete).
  void begin_column(int j);
  /// Column mode: appends the next value of the current column.
  void column_value(double v);

  /// Flushes, writes bbox + checksums + header, closes.  Throws if the row
  /// / value count does not match the promised n·dim.
  void finish();

  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

 private:
  void write_at(std::uint64_t offset, const void* data, std::size_t len);
  void flush_rows();
  void flush_column();

  std::string path_;
  int fd_ = -1;
  int dim_ = 0;
  std::uint64_t n_ = 0;
  std::size_t chunk_rows_ = 0;

  // Row mode.
  std::vector<double> chunk_;  ///< SoA: column j at [j·chunk_rows_, …)
  std::size_t buffered_ = 0;
  std::uint64_t rows_written_ = 0;

  // Column mode.
  int current_col_ = -1;
  std::uint64_t col_written_ = 0;
  std::vector<double> colbuf_;

  bool column_mode_ = false;
  bool finished_ = false;

  std::vector<std::uint64_t> col_fnv_;  ///< per-column running digests
  std::vector<double> box_lo_, box_hi_;
};

/// Read-only mmap of a `.kcb` file.  Opening validates the header (magic,
/// endianness, version, dtype, header checksum, exact file size) and
/// advises the kernel of sequential access; `view()` aliases the mapping.
class MappedKcb {
 public:
  /// Throws std::runtime_error with a precise reason on any malformed file.
  explicit MappedKcb(const std::string& path);
  ~MappedKcb();

  MappedKcb(MappedKcb&& other) noexcept;
  MappedKcb& operator=(MappedKcb&&) = delete;
  MappedKcb(const MappedKcb&) = delete;
  MappedKcb& operator=(const MappedKcb&) = delete;

  [[nodiscard]] int dim() const noexcept { return static_cast<int>(header_.dim); }
  [[nodiscard]] std::uint64_t size() const noexcept { return header_.n; }
  [[nodiscard]] const KcbHeader& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<double>& box_lo() const noexcept {
    return box_lo_;
  }
  [[nodiscard]] const std::vector<double>& box_hi() const noexcept {
    return box_hi_;
  }

  /// Zero-copy view of the whole file: col(j) points into the mapping at
  /// file offset 4096 + j·8·n.
  [[nodiscard]] kernels::BufferView<double> view() const noexcept {
    return kernels::BufferView<double>(data_, header_.n,
                                       header_.n, dim());
  }

  /// First mapped data element (for pointer-identity tests).
  [[nodiscard]] const double* data() const noexcept { return data_; }

  /// Recomputes the per-column digests over the mapping and compares with
  /// the header (full sequential read — on demand only).
  [[nodiscard]] bool verify_data() const;

  /// posix_madvise(WILLNEED) on rows [offset, offset+count) of every
  /// column — the ChunkedReader's lookahead prefetch.
  void prefetch(std::uint64_t offset, std::uint64_t count) const;

  /// madvise(DONTNEED) on rows [offset, offset+count) of every column: the
  /// ChunkedReader's trailing-edge page drop, which keeps residency — and
  /// hence peak RSS — O(chunk budget) at any file size.  Non-destructive:
  /// the mapping is read-only, so a released page re-faults from the page
  /// cache / file on the next access.  Page ranges are shrunk inward to
  /// whole pages so neighbouring live chunks are never zapped.
  void release(std::uint64_t offset, std::uint64_t count) const;

 private:
  KcbHeader header_{};
  std::vector<double> box_lo_, box_hi_;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  const double* data_ = nullptr;
};

/// Writes an in-memory buffer as `.kcb` (tests, small conversions).
void write_kcb(const std::string& path, const kernels::PointBuffer& buf);

}  // namespace kc::dataset
