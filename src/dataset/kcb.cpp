#include "dataset/kcb.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace kc::dataset {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("kcb: " + path + ": " + what);
}

std::uint64_t header_digest(KcbHeader h) {
  h.header_checksum = 0;
  return fnv1a(&h, sizeof h);
}

/// The file's combined data checksum: FNV-1a over the per-column digests in
/// column order (each per-column digest is FNV-1a over that column's bytes
/// in row order — computable incrementally by any write order that fills
/// each column front to back).
std::uint64_t combine_digests(const std::vector<std::uint64_t>& cols) {
  return fnv1a(cols.data(), cols.size() * sizeof(std::uint64_t));
}

/// Checked advisory madvise: the hint may be ignored (ENOMEM under
/// pressure degrades to no readahead / no release), but EINVAL means a
/// misaligned or out-of-range request — a caller bug, not a kernel mood.
void advise(void* addr, std::size_t len, int advice) {
  const int rc = ::posix_madvise(addr, len, advice);
  KC_EXPECTS(rc != EINVAL);
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// KcbWriter
// ---------------------------------------------------------------------------

KcbWriter::KcbWriter(const std::string& path, int dim, std::uint64_t n,
                     std::size_t chunk_rows)
    : path_(path), dim_(dim), n_(n), chunk_rows_(chunk_rows) {
  KC_EXPECTS(dim >= 1);
  KC_EXPECTS(n >= 1);
  KC_EXPECTS(chunk_rows >= 1);
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) fail(path_, std::string("cannot open: ") + std::strerror(errno));
  chunk_.resize(chunk_rows_ * static_cast<std::size_t>(dim_));
  col_fnv_.assign(static_cast<std::size_t>(dim_), 0xcbf29ce484222325ull);
  box_lo_.assign(static_cast<std::size_t>(dim_),
                 std::numeric_limits<double>::infinity());
  box_hi_.assign(static_cast<std::size_t>(dim_),
                 -std::numeric_limits<double>::infinity());
  // Reserve the header region now so a crashed conversion leaves an
  // unmistakably invalid file (zero magic) rather than a truncated-valid one.
  const char zeros[64] = {};
  write_at(0, zeros, sizeof zeros);
}

KcbWriter::~KcbWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void KcbWriter::write_at(std::uint64_t offset, const void* data,
                         std::size_t len) {
  const auto* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t w = ::pwrite(fd_, p, len, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      fail(path_, std::string("write failed: ") + std::strerror(errno));
    }
    p += w;
    offset += static_cast<std::uint64_t>(w);
    len -= static_cast<std::size_t>(w);
  }
}

void KcbWriter::flush_rows() {
  if (buffered_ == 0) return;
  for (int j = 0; j < dim_; ++j) {
    const double* col = chunk_.data() + static_cast<std::size_t>(j) * chunk_rows_;
    const std::uint64_t off =
        kKcbDataOffset +
        (static_cast<std::uint64_t>(j) * n_ + rows_written_) * sizeof(double);
    write_at(off, col, buffered_ * sizeof(double));
    col_fnv_[static_cast<std::size_t>(j)] =
        fnv1a(col, buffered_ * sizeof(double),
              col_fnv_[static_cast<std::size_t>(j)]);
  }
  rows_written_ += buffered_;
  buffered_ = 0;
}

void KcbWriter::append(const double* coords) {
  KC_EXPECTS(!finished_ && !column_mode_);
  if (rows_written_ + buffered_ >= n_)
    fail(path_, "more rows appended than the promised n");
  for (int j = 0; j < dim_; ++j) {
    const double v = coords[j];
    KC_EXPECTS(std::isfinite(v) && "non-finite coordinate");
    chunk_[static_cast<std::size_t>(j) * chunk_rows_ + buffered_] = v;
    auto& lo = box_lo_[static_cast<std::size_t>(j)];
    auto& hi = box_hi_[static_cast<std::size_t>(j)];
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (++buffered_ == chunk_rows_) flush_rows();
}

void KcbWriter::begin_column(int j) {
  KC_EXPECTS(!finished_);
  KC_EXPECTS(rows_written_ == 0 && buffered_ == 0 && "mixing fill modes");
  column_mode_ = true;
  if (current_col_ >= 0) {
    flush_column();
    if (col_written_ != n_) fail(path_, "previous column incomplete");
  }
  if (j != current_col_ + 1) fail(path_, "columns must arrive in order");
  current_col_ = j;
  col_written_ = 0;
  colbuf_.clear();
  colbuf_.reserve(chunk_rows_);
}

void KcbWriter::column_value(double v) {
  KC_EXPECTS(column_mode_ && current_col_ >= 0 && !finished_);
  KC_EXPECTS(std::isfinite(v) && "non-finite coordinate");
  if (col_written_ + colbuf_.size() >= n_)
    fail(path_, "more values than the promised n in column");
  colbuf_.push_back(v);
  const auto j = static_cast<std::size_t>(current_col_);
  if (v < box_lo_[j]) box_lo_[j] = v;
  if (v > box_hi_[j]) box_hi_[j] = v;
  if (colbuf_.size() == chunk_rows_) {
    const std::uint64_t off =
        kKcbDataOffset +
        (static_cast<std::uint64_t>(current_col_) * n_ + col_written_) *
            sizeof(double);
    write_at(off, colbuf_.data(), colbuf_.size() * sizeof(double));
    col_fnv_[j] = fnv1a(colbuf_.data(), colbuf_.size() * sizeof(double),
                        col_fnv_[j]);
    col_written_ += colbuf_.size();
    colbuf_.clear();
  }
}

void KcbWriter::flush_column() {
  if (colbuf_.empty()) return;
  const auto j = static_cast<std::size_t>(current_col_);
  const std::uint64_t off =
      kKcbDataOffset +
      (static_cast<std::uint64_t>(current_col_) * n_ + col_written_) *
          sizeof(double);
  write_at(off, colbuf_.data(), colbuf_.size() * sizeof(double));
  col_fnv_[j] =
      fnv1a(colbuf_.data(), colbuf_.size() * sizeof(double), col_fnv_[j]);
  col_written_ += colbuf_.size();
  colbuf_.clear();
}

void KcbWriter::finish() {
  KC_EXPECTS(!finished_);
  if (column_mode_) {
    flush_column();
    if (current_col_ != dim_ - 1 || col_written_ != n_)
      fail(path_, "column-mode fill incomplete");
  } else {
    flush_rows();
    if (rows_written_ != n_)
      fail(path_, "fewer rows appended than the promised n");
  }

  // Bounding box, then the sealed header.
  write_at(sizeof(KcbHeader), box_lo_.data(),
           box_lo_.size() * sizeof(double));
  write_at(sizeof(KcbHeader) + box_lo_.size() * sizeof(double),
           box_hi_.data(), box_hi_.size() * sizeof(double));

  KcbHeader h{};
  std::memcpy(h.magic, kKcbMagic, sizeof h.magic);
  h.endian = kKcbEndianMarker;
  h.version = kKcbVersion;
  h.dtype = 0;
  h.dim = static_cast<std::uint32_t>(dim_);
  h.reserved = 0;
  h.n = n_;
  h.data_checksum = combine_digests(col_fnv_);
  h.header_checksum = header_digest(h);
  write_at(0, &h, sizeof h);

  if (::fsync(fd_) != 0)
    fail(path_, std::string("fsync failed: ") + std::strerror(errno));
  const int close_rc = ::close(fd_);
  fd_ = -1;  // even a failed close leaves the descriptor unusable
  if (close_rc != 0)
    fail(path_, std::string("close failed: ") + std::strerror(errno));
  finished_ = true;
}

// ---------------------------------------------------------------------------
// MappedKcb
// ---------------------------------------------------------------------------

MappedKcb::MappedKcb(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, std::string("cannot open: ") + std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);  // kc-lint-allow(syscalls): best-effort cleanup before
                  // the throw below reports the primary fstat failure
    fail(path, std::string("stat failed: ") + std::strerror(errno));
  }
  const auto file_len = static_cast<std::uint64_t>(st.st_size);
  if (file_len < sizeof(KcbHeader)) {
    ::close(fd);  // kc-lint-allow(syscalls): best-effort cleanup before
                  // the throw below reports the truncation
    fail(path, "truncated: shorter than the 64-byte header");
  }

  map_len_ = static_cast<std::size_t>(file_len);
  map_ = ::mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, fd, 0);
  // kc-lint-allow(syscalls): read-only descriptor; the mapping keeps its
  // own reference, so a close failure cannot affect the read path
  ::close(fd);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    fail(path, std::string("mmap failed: ") + std::strerror(errno));
  }

  // The destructor does not run when the constructor throws, so every
  // rejection path unmaps first.
  const auto reject = [&](const std::string& what) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    fail(path, what);
  };

  std::memcpy(&header_, map_, sizeof header_);
  if (std::memcmp(header_.magic, kKcbMagic, sizeof header_.magic) != 0)
    reject("not a .kcb file (bad magic)");
  if (header_.endian != kKcbEndianMarker)
    reject("endianness mismatch: file written on an incompatible "
           "architecture (no byte-swapping reader in version 1)");
  if (header_.version != kKcbVersion)
    reject("unsupported version " + std::to_string(header_.version) +
           " (this reader handles version 1)");
  if (header_.dtype != 0)
    reject("unsupported dtype " + std::to_string(header_.dtype) +
           " (version 1 stores float64)");
  if (header_.header_checksum != header_digest(header_))
    reject("header checksum mismatch (corrupted header)");
  if (header_.dim < 1 || header_.n < 1)
    reject("degenerate dim/n in header");
  const std::uint64_t bbox_end =
      sizeof(KcbHeader) + 2ull * header_.dim * sizeof(double);
  if (bbox_end > kKcbDataOffset)
    reject("dim too large for the version-1 bbox region");
  const std::uint64_t want =
      kKcbDataOffset + header_.n * header_.dim * sizeof(double);
  if (file_len != want)
    reject("truncated or padded: file is " + std::to_string(file_len) +
           " bytes, header promises " + std::to_string(want));

  const auto* base = static_cast<const char*>(map_);
  box_lo_.resize(header_.dim);
  box_hi_.resize(header_.dim);
  std::memcpy(box_lo_.data(), base + sizeof(KcbHeader),
              header_.dim * sizeof(double));
  std::memcpy(box_hi_.data(),
              base + sizeof(KcbHeader) + header_.dim * sizeof(double),
              header_.dim * sizeof(double));
  data_ = reinterpret_cast<const double*>(base + kKcbDataOffset);

#if defined(POSIX_MADV_SEQUENTIAL)
  // The chunked readers walk each column front to back; tell the kernel.
  advise(const_cast<char*>(base + kKcbDataOffset),
         map_len_ - kKcbDataOffset, POSIX_MADV_SEQUENTIAL);
#endif
}

MappedKcb::~MappedKcb() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

MappedKcb::MappedKcb(MappedKcb&& other) noexcept
    : header_(other.header_),
      box_lo_(std::move(other.box_lo_)),
      box_hi_(std::move(other.box_hi_)),
      map_(other.map_),
      map_len_(other.map_len_),
      data_(other.data_) {
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
}

bool MappedKcb::verify_data() const {
  std::vector<std::uint64_t> digests(header_.dim);
  for (std::uint32_t j = 0; j < header_.dim; ++j)
    digests[j] = fnv1a(data_ + static_cast<std::uint64_t>(j) * header_.n,
                       header_.n * sizeof(double));
  return combine_digests(digests) == header_.data_checksum;
}

void MappedKcb::prefetch(std::uint64_t offset, std::uint64_t count) const {
#if defined(POSIX_MADV_WILLNEED)
  if (offset >= header_.n || count == 0) return;
  count = std::min(count, header_.n - offset);
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const auto* base = static_cast<const char*>(map_);
  for (std::uint32_t j = 0; j < header_.dim; ++j) {
    const std::uint64_t begin =
        kKcbDataOffset +
        (static_cast<std::uint64_t>(j) * header_.n + offset) * sizeof(double);
    const std::uint64_t end = begin + count * sizeof(double);
    const std::uint64_t aligned = begin / page * page;
    advise(const_cast<char*>(base + aligned), end - aligned,
           POSIX_MADV_WILLNEED);
  }
#else
  (void)offset;
  (void)count;
#endif
}

void MappedKcb::release(std::uint64_t offset, std::uint64_t count) const {
  if (offset >= header_.n || count == 0) return;
  count = std::min(count, header_.n - offset);
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  auto* base = static_cast<char*>(map_);
  for (std::uint32_t j = 0; j < header_.dim; ++j) {
    const std::uint64_t begin =
        kKcbDataOffset +
        (static_cast<std::uint64_t>(j) * header_.n + offset) * sizeof(double);
    const std::uint64_t end = begin + count * sizeof(double);
    // Shrink inward: partially covered boundary pages may back a live
    // neighbouring chunk, so only fully covered pages are dropped.
    const std::uint64_t aligned_begin = (begin + page - 1) / page * page;
    const std::uint64_t aligned_end = end / page * page;
    if (aligned_end <= aligned_begin) continue;
#if defined(MADV_DONTNEED)
    // kc-lint-allow(syscalls): MADV_DONTNEED is advisory page release; a
    // refusal costs memory, never correctness (pages refault from the file)
    ::madvise(base + aligned_begin, aligned_end - aligned_begin,
              MADV_DONTNEED);
#elif defined(POSIX_MADV_DONTNEED)
    advise(base + aligned_begin, aligned_end - aligned_begin,
           POSIX_MADV_DONTNEED);
#endif
  }
}

void write_kcb(const std::string& path, const kernels::PointBuffer& buf) {
  KC_EXPECTS(!buf.empty());
  KcbWriter w(path, buf.dim(), buf.size());
  std::vector<double> row(static_cast<std::size_t>(buf.dim()));
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (int j = 0; j < buf.dim(); ++j) row[static_cast<std::size_t>(j)] = buf.col(j)[i];
    w.append(row.data());
  }
  w.finish();
}

}  // namespace kc::dataset
