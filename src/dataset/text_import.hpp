// Strict text importers: CSV and Matrix-Market → in-memory points or `.kcb`.
//
// Both CLIs used to carry private CSV loaders that silently *skipped* any
// line std::stod could not fully parse and silently *accepted* trailing
// garbage inside a cell ("1.5abc" parsed as 1.5).  This is the one shared
// parser now: every cell must be a complete finite number, every data line
// must have a consistent column count, and every rejection names the line
// (and column) that caused it.  The only forgiven line is a single leading
// header (first non-comment line that parses as no numbers at all) — real
// CSV exports have one.
//
// Errors are reported as std::runtime_error ("path:line: reason") so the
// CLIs can print them and exit while tests can assert on them.

#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace kc::dataset {

/// Parses a CSV of points: one point per line, comma-separated float64
/// coordinates; with `weighted`, the last column is a positive integer
/// weight.  Blank lines and `#` comments are skipped; one leading header
/// line is tolerated; anything else malformed throws with the line number.
[[nodiscard]] WeightedSet read_csv_points(const std::string& path,
                                          bool weighted = false);

/// Converts a CSV of unit-weight points to `.kcb` in two passes (count,
/// then parse + stream to the writer) — fixed memory at any n.  Returns the
/// number of points written.
std::uint64_t csv_to_kcb(const std::string& csv_path,
                         const std::string& kcb_path);

/// Converts a Matrix-Market dense array ("matrix array real general",
/// size line `n dim`, values in column-major order) to `.kcb`.  The value
/// order matches the writer's column mode exactly, so the conversion is a
/// single streaming pass.  Returns the number of points written.
std::uint64_t mtx_to_kcb(const std::string& mtx_path,
                         const std::string& kcb_path);

}  // namespace kc::dataset
