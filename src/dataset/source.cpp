#include "dataset/source.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>

#include "geometry/kernels.hpp"
#include "util/check.hpp"

namespace kc::dataset {

// ---------------------------------------------------------------------------
// KcbSource

kernels::BufferView<double> KcbSource::chunk(std::uint64_t offset,
                                             std::size_t count) {
  KC_EXPECTS(count >= 1 && offset + count <= map_.size());
  // subview keeps the mapping's stride (= n), so col(j) pointers alias the
  // file image directly — zero-copy by construction.
  return map_.view().subview(static_cast<std::size_t>(offset), count);
}

// ---------------------------------------------------------------------------
// GeneratedSource

namespace {

// Counter-based mixing (same construction as the fault plan's hashing): a
// pure u64 -> u64 finalizer, so draw streams are functions of (seed, index)
// with no sequential state.
inline std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from the top 53 bits (exact double arithmetic —
// reproducible across platforms).
inline double u01(std::uint64_t u) noexcept {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace

GeneratedSource::GeneratedSource(const GeneratedConfig& cfg) : cfg_(cfg) {
  KC_EXPECTS(cfg_.n >= 1);
  KC_EXPECTS(cfg_.dim >= 1);
  KC_EXPECTS(cfg_.k >= 1);
  KC_EXPECTS(cfg_.cluster_radius > 0.0 && cfg_.separation > 0.0);

  // Smallest lattice with per_axis^dim >= k sites.
  int per_axis = 1;
  auto sites = [&](int m) {
    std::uint64_t s = 1;
    for (int j = 0; j < cfg_.dim; ++j) {
      s *= static_cast<std::uint64_t>(m);
      if (s >= static_cast<std::uint64_t>(cfg_.k)) return s;
    }
    return s;
  };
  while (sites(per_axis) < static_cast<std::uint64_t>(cfg_.k)) ++per_axis;

  const double pitch = cfg_.separation * cfg_.cluster_radius;
  centers_.assign(static_cast<std::size_t>(cfg_.k) *
                      static_cast<std::size_t>(cfg_.dim),
                  0.0);
  for (int c = 0; c < cfg_.k; ++c) {
    int idx = c;
    for (int j = 0; j < cfg_.dim; ++j) {
      centers_[static_cast<std::size_t>(c) * cfg_.dim + j] =
          pitch * (idx % per_axis);
      idx /= per_axis;
    }
  }
  per_axis_ = per_axis;
  seed_mix_ = splitmix64(cfg_.seed ^ 0x6b63622d67656e31ull);

  slots_[0] = kernels::PointBuffer(cfg_.dim);
  slots_[1] = kernels::PointBuffer(cfg_.dim);
  row_.resize(static_cast<std::size_t>(cfg_.dim));

  // Exact bbox in one streaming pass (point_at is pure, so this pass sees
  // exactly the bytes every later chunked pass will see).
  box_lo_.assign(static_cast<std::size_t>(cfg_.dim),
                 std::numeric_limits<double>::infinity());
  box_hi_.assign(static_cast<std::size_t>(cfg_.dim),
                 -std::numeric_limits<double>::infinity());
  for (std::uint64_t i = 0; i < cfg_.n; ++i) {
    point_at(i, row_.data());
    for (int j = 0; j < cfg_.dim; ++j) {
      box_lo_[static_cast<std::size_t>(j)] =
          std::min(box_lo_[static_cast<std::size_t>(j)], row_[j]);
      box_hi_[static_cast<std::size_t>(j)] =
          std::max(box_hi_[static_cast<std::size_t>(j)], row_[j]);
    }
  }
}

void GeneratedSource::point_at(std::uint64_t i, double* out) const {
  std::uint64_t s = splitmix64(seed_mix_ ^ (i * 0xd1342543de82ef95ull));
  const auto next = [&s]() noexcept { return s = splitmix64(s); };
  const double pitch = cfg_.separation * cfg_.cluster_radius;
  if (next() % 1000 < cfg_.outlier_permille) {
    // Far outlier: uniform in a cube that dwarfs the cluster lattice.
    const double half = pitch * (per_axis_ + 2);
    for (int j = 0; j < cfg_.dim; ++j)
      out[j] = (2.0 * u01(next()) - 1.0) * half;
    return;
  }
  const std::uint64_t c = next() % static_cast<std::uint64_t>(cfg_.k);
  const double* ctr = centers_.data() + c * static_cast<std::uint64_t>(cfg_.dim);
  for (int j = 0; j < cfg_.dim; ++j)
    out[j] = ctr[j] + (2.0 * u01(next()) - 1.0) * cfg_.cluster_radius;
}

kernels::BufferView<double> GeneratedSource::chunk(std::uint64_t offset,
                                                   std::size_t count) {
  KC_EXPECTS(count >= 1 && offset + count <= cfg_.n);
  kernels::PointBuffer& slot = slots_[active_];
  active_ ^= 1;
  slot.clear();
  slot.reserve(count);
  for (std::uint64_t i = offset; i < offset + count; ++i) {
    point_at(i, row_.data());
    slot.append(row_.data());
  }
  return slot.view();
}

std::string GeneratedSource::describe() const {
  std::ostringstream os;
  os << "generated(n=" << cfg_.n << ", dim=" << cfg_.dim << ", k=" << cfg_.k
     << ", seed=" << cfg_.seed << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// ChunkedReader

ChunkedReader::ChunkedReader(DataSource& src, const ReaderOptions& opts)
    : src_(src) {
  if (opts.chunk_points != 0) {
    chunk_ = opts.chunk_points;
  } else {
    // Two slots of 8-byte coords per dimension must fit the budget.
    const std::size_t per_point =
        2u * sizeof(double) * static_cast<std::size_t>(src.dim());
    chunk_ = std::max<std::size_t>(1024, opts.budget_bytes / per_point);
  }
  KC_ENSURES(chunk_ >= 1);
}

bool ChunkedReader::next(Chunk& out) {
  const std::uint64_t n = src_.size();
  if (pos_ >= n) return false;
  // Trailing edge: the chunk from two calls ago left the validity window
  // with the previous call — drop its pages before faulting in new ones,
  // so residency stays O(budget) at any n.
  if (old_count_ != 0) src_.release(old_offset_, old_count_);
  old_offset_ = last_offset_;
  old_count_ = last_count_;
  const std::size_t count =
      static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, n - pos_));
  out.view = src_.chunk(pos_, count);
  out.offset = pos_;
  last_offset_ = pos_;
  last_count_ = count;
  pos_ += count;
  // Lookahead: advise the next chunk's pages in while this one streams.
  if (pos_ < n)
    src_.prefetch(pos_,
                  static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, n - pos_)));
  return true;
}

// ---------------------------------------------------------------------------
// Chunked evaluation

namespace {

template <Norm N>
double chunked_radius_impl(DataSource& src, const PointSet& centers,
                           std::int64_t z, const Metric& metric,
                           const ReaderOptions& opts,
                           const ChunkTransform& transform) {
  ChunkedReader reader(src, opts);
  // Min-heap of the z+1 largest nearest-center distances seen so far; its
  // top after the full pass is the (z+1)-th largest overall — exactly the
  // radius the in-memory descending walk returns for unit weights.
  std::priority_queue<double, std::vector<double>, std::greater<double>> top;
  const auto keep = static_cast<std::size_t>(z) + 1;

  kernels::PointBuffer scratch_buf(src.dim());
  std::vector<double> keys, scratch;
  ChunkedReader::Chunk ch;
  while (reader.next(ch)) {
    kernels::BufferView<double> view = ch.view;
    if (transform) {
      scratch_buf.clear();
      transform(ch.view, scratch_buf);
      view = scratch_buf.view();
    }
    const std::size_t m = view.size();
    keys.assign(m, std::numeric_limits<double>::infinity());
    scratch.resize(m);
    // Centers in ascending order — the same per-point minimisation sequence
    // as core/cost.cpp's nearest_center_keys, hence bit-identical keys.
    for (const auto& c : centers)
      kernels::min_keys<N>(view, c.coords().data(), keys.data(),
                           scratch.data());
    for (std::size_t i = 0; i < m; ++i) {
      const double d = metric.key_to_dist(keys[i]);
      if (top.size() < keep) {
        top.push(d);
      } else if (d > top.top()) {
        top.pop();
        top.push(d);
      }
    }
  }
  // Fewer than z+1 points in total: everything may be an outlier.
  if (top.size() < keep) return 0.0;
  return top.top();
}

}  // namespace

double chunked_radius_with_outliers(DataSource& src, const PointSet& centers,
                                    std::int64_t z, const Metric& metric,
                                    const ReaderOptions& opts,
                                    const ChunkTransform& transform) {
  KC_EXPECTS(!centers.empty());
  KC_EXPECTS(z >= 0);
  KC_EXPECTS(metric.norm() != Norm::Custom);
  switch (metric.norm()) {
    case Norm::L2:
      return chunked_radius_impl<Norm::L2>(src, centers, z, metric, opts,
                                           transform);
    case Norm::Linf:
      return chunked_radius_impl<Norm::Linf>(src, centers, z, metric, opts,
                                             transform);
    case Norm::L1:
      return chunked_radius_impl<Norm::L1>(src, centers, z, metric, opts,
                                           transform);
    case Norm::Custom: break;
  }
  KC_EXPECTS(false && "unreachable norm");
  return 0.0;
}

// ---------------------------------------------------------------------------
// Source -> .kcb

std::uint64_t write_kcb(const std::string& path, DataSource& src,
                        const ReaderOptions& opts) {
  KcbWriter writer(path, src.dim(), src.size());
  ChunkedReader reader(src, opts);
  std::vector<double> row(static_cast<std::size_t>(src.dim()));
  ChunkedReader::Chunk ch;
  while (reader.next(ch)) {
    for (std::size_t i = 0; i < ch.view.size(); ++i) {
      for (int j = 0; j < ch.view.dim(); ++j) row[static_cast<std::size_t>(j)] =
          ch.view.col(j)[i];
      writer.append(row.data());
    }
  }
  writer.finish();
  return src.size();
}

}  // namespace kc::dataset
