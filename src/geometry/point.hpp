// Value-type point in R^d with a small inline coordinate store.
//
// The library targets metric spaces of constant doubling dimension; all of
// its experiments run in R^d for small d, so Point keeps up to kMaxDim
// coordinates inline (no heap allocation, cheap copies).  Weighted points
// carry positive integer weights as required by the weighted k-center
// problem (paper §1).

#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace kc {

class Point {
 public:
  static constexpr int kMaxDim = 8;

  Point() noexcept : dim_(0) {}

  explicit Point(int dim, double fill = 0.0) : dim_(dim) {
    KC_EXPECTS(dim >= 1 && dim <= kMaxDim);
    coords_.fill(0.0);
    for (int i = 0; i < dim_; ++i) coords_[static_cast<std::size_t>(i)] = fill;
  }

  Point(std::initializer_list<double> cs) : dim_(static_cast<int>(cs.size())) {
    KC_EXPECTS(dim_ >= 1 && dim_ <= kMaxDim);
    coords_.fill(0.0);
    int i = 0;
    for (double c : cs) coords_[static_cast<std::size_t>(i++)] = c;
  }

  explicit Point(std::span<const double> cs)
      : dim_(static_cast<int>(cs.size())) {
    KC_EXPECTS(dim_ >= 1 && dim_ <= kMaxDim);
    coords_.fill(0.0);
    for (int i = 0; i < dim_; ++i) coords_[static_cast<std::size_t>(i)] = cs[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] int dim() const noexcept { return dim_; }

  [[nodiscard]] double operator[](int i) const noexcept {
    KC_DCHECK(i >= 0 && i < dim_);
    return coords_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double& operator[](int i) noexcept {
    KC_DCHECK(i >= 0 && i < dim_);
    return coords_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::span<const double> coords() const noexcept {
    return {coords_.data(), static_cast<std::size_t>(dim_)};
  }

  friend bool operator==(const Point& a, const Point& b) noexcept {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }
  friend bool operator!=(const Point& a, const Point& b) noexcept {
    return !(a == b);
  }

  /// Component-wise arithmetic (used by workload generators and the
  /// lower-bound constructions when translating cluster templates).
  [[nodiscard]] Point operator+(const Point& o) const;
  [[nodiscard]] Point operator-(const Point& o) const;
  [[nodiscard]] Point operator*(double s) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<double, kMaxDim> coords_{};
  int dim_;
};

/// Point with a positive integer weight.  The weighted k-center problem
/// bounds the total *weight* of outliers by z; coresets are weighted point
/// sets (Definition 1).
struct WeightedPoint {
  Point p;
  std::int64_t w = 1;
};

using PointSet = std::vector<Point>;
using WeightedSet = std::vector<WeightedPoint>;

/// Total weight of a weighted set.
[[nodiscard]] std::int64_t total_weight(const WeightedSet& s) noexcept;

/// Lifts an unweighted set to unit weights.
[[nodiscard]] WeightedSet with_unit_weights(const PointSet& s);

/// Drops weights (used where only geometry matters, e.g. plotting extents).
[[nodiscard]] PointSet strip_weights(const WeightedSet& s);

}  // namespace kc
