// Hash-grid over points in R^d with cell width tied to a query radius.
//
// Not to be confused with geometry/grid.hpp (the paper's hierarchical grids
// over the *discrete* universe [Δ]^d used by the dynamic sketches): this is
// the performance layer's spatial index over arbitrary real coordinates.
// Cells are axis-aligned hypercubes of side `cell_width`; a point lands in
// the cell given by floor(coord / cell_width) per axis.  Because each
// built-in norm dominates the per-coordinate difference (|a−b|_∞ ≤ ‖a−b‖
// for L1, L2, and L∞), any point within norm-distance r of a query lies in
// a cell whose per-axis index differs by at most ⌈r / cell_width⌉ from the
// query's cell — so `for_each_candidate` enumerates the (2·reach+1)^d
// neighboring cells and is guaranteed to yield a *superset* of the true
// r-ball.  Callers always filter with an exact distance check, so the index
// only prunes, never decides.
//
// Cells are keyed by their exact integer coordinates (no lossy packing):
// hash collisions are resolved by the map, so distinct cells are never
// merged and a neighbor enumeration visits each bucket exactly once — the
// incremental-weight bookkeeping in core/charikar.cpp relies on that.
// Extreme coordinate/width ratios are clamped to ±2^61 before the cast;
// clamping is monotone and contracts index differences, so the superset
// guarantee survives even degenerate inputs.
//
// Custom metrics get no grid (a user distance need not relate to
// coordinates); the consumers keep their scalar fallbacks for that case.

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geometry/point.hpp"

namespace kc {

class GridIndex {
 public:
  /// cell_width must be > 0; dim in [1, Point::kMaxDim].
  GridIndex(double cell_width, int dim);

  [[nodiscard]] double cell_width() const noexcept { return width_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  void reserve(std::size_t n);

  /// Registers point `idx` at the given coordinates (length dim()).
  void insert(const double* coords, std::uint32_t idx);
  void insert(const Point& p, std::uint32_t idx) {
    KC_DCHECK(p.dim() == dim_);
    insert(p.coords().data(), idx);
  }

  /// Smallest cell reach whose neighborhood certainly contains every point
  /// within norm-distance `radius` of a query: ⌈radius / cell_width⌉.
  [[nodiscard]] int reach_for(double radius) const noexcept {
    return static_cast<int>(std::ceil(radius / width_));
  }

  /// Invokes f(span<const uint32_t>) once per non-empty cell within
  /// `reach` cells of q's cell along every axis.  The union of the spans is
  /// a superset of every indexed point within cell_width·reach of q (under
  /// L1, L2, and L∞), with no index repeated.
  template <typename F>
  void for_each_candidate(const double* q, int reach, F&& f) const {
    CellKey key = key_for(q);
    const CellKey base = key;
    // Odometer over the (2·reach+1)^dim offset box.
    std::array<int, Point::kMaxDim> off{};
    for (int j = 0; j < dim_; ++j) {
      off[static_cast<std::size_t>(j)] = -reach;
      key.c[static_cast<std::size_t>(j)] =
          base.c[static_cast<std::size_t>(j)] - reach;
    }
    for (;;) {
      const auto it = cells_.find(key);
      if (it != cells_.end())
        f(std::span<const std::uint32_t>(it->second));
      int j = 0;
      for (; j < dim_; ++j) {
        const auto sj = static_cast<std::size_t>(j);
        if (off[sj] < reach) {
          ++off[sj];
          key.c[sj] = base.c[sj] + off[sj];
          break;
        }
        off[sj] = -reach;
        key.c[sj] = base.c[sj] - reach;
      }
      if (j == dim_) break;
    }
  }

 private:
  struct CellKey {
    std::array<std::int64_t, Point::kMaxDim> c{};

    friend bool operator==(const CellKey& a, const CellKey& b) noexcept {
      return a.c == b.c;
    }
  };

  // Stateful (dim-aware) hasher: only the first dim_ slots carry
  // information (the rest stay zero), so mixing just those keeps the
  // per-lookup cost proportional to the actual dimension.
  struct CellKeyHash {
    int dim = Point::kMaxDim;

    std::size_t operator()(const CellKey& k) const noexcept {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int j = 0; j < dim; ++j) {
        std::uint64_t x =
            static_cast<std::uint64_t>(k.c[static_cast<std::size_t>(j)]) + h;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        h = x;
      }
      return static_cast<std::size_t>(h);
    }
  };

  [[nodiscard]] CellKey key_for(const double* coords) const noexcept;

  double width_;
  int dim_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> cells_;
};

}  // namespace kc
