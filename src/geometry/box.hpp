// Axis-aligned bounding box; used by workload generators and to compute
// spread ratios (σ = d_max / d_min) for the sliding-window experiments.

#pragma once

#include "geometry/metric.hpp"
#include "geometry/point.hpp"

namespace kc {

class Box {
 public:
  Box() = default;
  Box(Point lo, Point hi);

  /// Empty box of dimension `dim` (extend() grows it).
  [[nodiscard]] static Box empty(int dim);

  void extend(const Point& p);

  [[nodiscard]] bool contains(const Point& p) const;
  [[nodiscard]] const Point& lo() const noexcept { return lo_; }
  [[nodiscard]] const Point& hi() const noexcept { return hi_; }
  [[nodiscard]] double side(int i) const { return hi_[i] - lo_[i]; }
  [[nodiscard]] double max_side() const;
  [[nodiscard]] bool is_empty() const noexcept { return empty_; }

  /// Diameter of the box under `metric` (distance between corners).
  [[nodiscard]] double diameter(const Metric& metric) const;

 private:
  Point lo_, hi_;
  bool empty_ = true;
};

/// Bounding box of a point set.
[[nodiscard]] Box bounding_box(const PointSet& pts);

/// Spread statistics of a point set: the largest and smallest non-zero
/// pairwise distance (brute force — intended for tests and the lower-bound
/// constructions, whose sizes are modest).
struct Spread {
  double d_min = 0.0;
  double d_max = 0.0;
  [[nodiscard]] double ratio() const { return d_min > 0 ? d_max / d_min : 0.0; }
};
[[nodiscard]] Spread compute_spread(const PointSet& pts, const Metric& metric);

}  // namespace kc
