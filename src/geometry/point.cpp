#include "geometry/point.hpp"

#include <sstream>

namespace kc {

Point Point::operator+(const Point& o) const {
  KC_EXPECTS(dim_ == o.dim_);
  Point r(dim_);
  for (int i = 0; i < dim_; ++i) r[i] = (*this)[i] + o[i];
  return r;
}

Point Point::operator-(const Point& o) const {
  KC_EXPECTS(dim_ == o.dim_);
  Point r(dim_);
  for (int i = 0; i < dim_; ++i) r[i] = (*this)[i] - o[i];
  return r;
}

Point Point::operator*(double s) const {
  Point r(dim_);
  for (int i = 0; i < dim_; ++i) r[i] = (*this)[i] * s;
  return r;
}

std::string Point::to_string() const {
  std::ostringstream out;
  out << '(';
  for (int i = 0; i < dim_; ++i) {
    if (i) out << ", ";
    out << (*this)[i];
  }
  out << ')';
  return out.str();
}

std::int64_t total_weight(const WeightedSet& s) noexcept {
  std::int64_t w = 0;
  for (const auto& wp : s) w += wp.w;
  return w;
}

WeightedSet with_unit_weights(const PointSet& s) {
  WeightedSet out;
  out.reserve(s.size());
  for (const auto& p : s) out.push_back({p, 1});
  return out;
}

PointSet strip_weights(const WeightedSet& s) {
  PointSet out;
  out.reserve(s.size());
  for (const auto& wp : s) out.push_back(wp.p);
  return out;
}

}  // namespace kc
