// Metric abstraction for R^d under the L2, L∞, and L1 norms, plus
// user-supplied distances.
//
// All algorithms in the library are written against this class rather than
// against a hard-coded norm: the paper's results hold in any metric space of
// constant doubling dimension, and its sliding-window lower bound (§6) is
// stated under L∞, so both norms must be first-class.  The Custom kind lets
// adopters plug in any distance over coordinate tuples (e.g. a weighted
// norm or a learned embedding distance); correctness of the paper's
// guarantees then requires that the supplied function is a metric with
// bounded doubling dimension — the triangle inequality and packing bounds
// are used throughout.  The doubling dimension of R^d is Θ(d) under each
// built-in norm; `doubling_dimension` returns the constant the size bounds
// use.

#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>

#include "geometry/kernels.hpp"  // defines Norm + the inline kernels
#include "geometry/point.hpp"

namespace kc {

/// User-supplied distance; must satisfy the metric axioms.
using DistanceFn = std::function<double(const Point&, const Point&)>;

class Metric {
 public:
  explicit Metric(Norm norm = Norm::L2) noexcept : norm_(norm) {
    KC_EXPECTS(norm != Norm::Custom);  // Custom requires a function
  }

  /// Custom metric from a distance function.
  explicit Metric(DistanceFn fn)
      : norm_(Norm::Custom),
        custom_(std::make_shared<DistanceFn>(std::move(fn))) {
    KC_EXPECTS(static_cast<bool>(*custom_));
  }

  [[nodiscard]] Norm norm() const noexcept { return norm_; }

  /// Defined inline (dispatching to the geometry/kernels.hpp kernels) so
  /// even non-batched call sites pay no out-of-line call per distance.
  [[nodiscard]] double dist(const Point& a, const Point& b) const {
    KC_DCHECK(a.dim() == b.dim());
    if (norm_ == Norm::Custom) return (*custom_)(a, b);
    return kernels::dist(norm_, a.coords().data(), b.coords().data(), a.dim());
  }

  /// Monotone "fast key" — squared distance under L2 (avoids the sqrt in
  /// inner loops); equals dist for every other kind.
  [[nodiscard]] double dist_key(const Point& a, const Point& b) const {
    KC_DCHECK(a.dim() == b.dim());
    if (norm_ == Norm::Custom) return (*custom_)(a, b);
    return kernels::dist_key(norm_, a.coords().data(), b.coords().data(),
                             a.dim());
  }

  /// Converts a key produced by dist_key back to a distance.
  [[nodiscard]] double key_to_dist(double key) const noexcept {
    return norm_ == Norm::L2 ? std::sqrt(key) : key;
  }

  /// Converts a distance threshold to a key threshold: `dist(a,b) <= r` iff
  /// `dist_key(a,b) <= dist_to_key(r)` for r >= 0 (built-in norms).
  [[nodiscard]] double dist_to_key(double r) const noexcept {
    return norm_ == Norm::L2 ? r * r : r;
  }

  /// Doubling dimension of (R^d, norm): the smallest D such that every ball
  /// is covered by 2^D balls of half the radius.  For L∞ it is exactly d;
  /// for L2/L1 it is Θ(d); custom metrics are the caller's responsibility
  /// (we return d as the conventional parameter of the size bounds).
  [[nodiscard]] static int doubling_dimension(int dim) noexcept { return dim; }

  [[nodiscard]] const char* name() const noexcept;

 private:
  Norm norm_;
  std::shared_ptr<const DistanceFn> custom_;
};

}  // namespace kc
