// Flat structure-of-arrays point storage — the canonical in-memory layout.
//
// Every hot loop in the library streams through coordinates column-wise
// (one contiguous array per dimension), so points live in a
// `BasicPointBuffer<T>`: column j holds coordinate j of every point.  The
// AoS `Point` (geometry/point.hpp) remains the *boundary* representation —
// convenient for construction, tests, and per-item APIs — and `point(i)`
// unpacks one row on demand.  Workload generators emit a buffer alongside
// the AoS set, pipelines pass it down, and the kernels in
// geometry/kernels.hpp consume it (or any slice of it) directly, so no
// layer re-packs coordinates at a kernel boundary.
//
// Storage modes:
//  * `PointBuffer`  (T = double) — the default; kernel results over it are
//    bit-identical to the historical AoS scalar loops (dimension-ascending
//    accumulation per point, pinned by tests/test_simd.cpp).
//  * `PointBufferF` (T = float)  — half the memory traffic; coordinates are
//    rounded to float32 once at append time, while every kernel still
//    *accumulates in float64*.  The only error source is the storage
//    rounding: each coordinate is perturbed by ≤ 2⁻²⁴ relative, so an L2
//    key drifts by ≤ ~2⁻²³ relative (plus one rounding per dimension) —
//    the documented ULP bound asserted by tests/test_simd.cpp.
//
// `BufferView<T>` is a non-owning slice (offset + count) of a buffer: the
// columns keep the parent's stride, so taking a view copies nothing and
// kernels run on arbitrary sub-ranges (MPC machine blocks, stream windows,
// chunk-parallel splits) with no re-pack.
//
// Unlike `Point` (capped at kMaxDim), a buffer supports any dim ≥ 1 when
// filled through `append(const double*)`; only the `Point`-boundary
// conveniences require dim ≤ Point::kMaxDim.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/point.hpp"
#include "util/check.hpp"

namespace kc {

enum class Norm : std::uint8_t { L2, Linf, L1, Custom };

namespace kernels {

/// Non-owning slice of a `BasicPointBuffer`: rows [0, size()) map to rows
/// [offset, offset+count) of the parent, columns keep the parent's stride.
template <typename T>
class BufferView {
 public:
  using value_type = T;

  BufferView() = default;
  BufferView(const T* base, std::size_t stride, std::size_t count,
             int dim) noexcept
      : base_(base), stride_(stride), n_(count), dim_(dim) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Column j (coordinate j of every row in the slice), length size().
  [[nodiscard]] const T* col(int j) const noexcept {
    KC_DCHECK(j >= 0 && j < dim_);
    return base_ + static_cast<std::size_t>(j) * stride_;
  }

  /// Sub-slice [offset, offset+count) of this view.
  [[nodiscard]] BufferView subview(std::size_t offset,
                                   std::size_t count) const noexcept {
    KC_DCHECK(offset + count <= n_);
    return BufferView(base_ + offset, stride_, count, dim_);
  }

  /// Alias for `subview` matching `BasicPointBuffer::view(offset, count)`,
  /// so generic kernels (e.g. the blocked `first_within`) accept owning
  /// buffers and slices interchangeably.
  [[nodiscard]] BufferView view(std::size_t offset,
                                std::size_t count) const noexcept {
    return subview(offset, count);
  }

  /// Distance key of row i to query coordinates q, accumulated in float64
  /// in dimension-ascending order (bit-identical to the scalar AoS loop
  /// when T = double).
  template <Norm N>
  [[nodiscard]] double key_to(std::size_t i, const double* q) const noexcept {
    KC_DCHECK(i < n_);
    if constexpr (N == Norm::L2) {
      double s = 0.0;
      for (int j = 0; j < dim_; ++j) {
        const double diff = static_cast<double>(col(j)[i]) - q[j];
        s += diff * diff;
      }
      return s;
    } else if constexpr (N == Norm::Linf) {
      double m = 0.0;
      for (int j = 0; j < dim_; ++j) {
        const double diff = std::fabs(static_cast<double>(col(j)[i]) - q[j]);
        if (diff > m) m = diff;
      }
      return m;
    } else {
      double s = 0.0;
      for (int j = 0; j < dim_; ++j)
        s += std::fabs(static_cast<double>(col(j)[i]) - q[j]);
      return s;
    }
  }

 private:
  const T* base_ = nullptr;
  std::size_t stride_ = 0;
  std::size_t n_ = 0;
  int dim_ = 0;
};

/// Owning SoA coordinate store with incremental append.  Columns share one
/// allocation with stride = capacity; growing re-packs (amortized, like
/// std::vector).  Append-only: rows are never mutated in place, matching
/// the read-only contract the kernels assume.
template <typename T>
class BasicPointBuffer {
 public:
  using value_type = T;

  BasicPointBuffer() = default;

  /// Empty appendable buffer of the given dimension (any dim ≥ 1; `Point`
  /// conveniences additionally require dim ≤ Point::kMaxDim).
  explicit BasicPointBuffer(int dim) : dim_(dim) { KC_EXPECTS(dim >= 1); }

  explicit BasicPointBuffer(const WeightedSet& pts) {
    if (pts.empty()) return;
    dim_ = pts.front().p.dim();
    reserve(pts.size());
    for (const auto& wp : pts) append(wp.p);
  }

  explicit BasicPointBuffer(const PointSet& pts) {
    if (pts.empty()) return;
    dim_ = pts.front().dim();
    reserve(pts.size());
    for (const auto& p : pts) append(p);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  /// Column j (coordinate j of every point), length size().
  [[nodiscard]] const T* col(int j) const noexcept {
    KC_DCHECK(j >= 0 && j < dim_);
    return data_.data() + static_cast<std::size_t>(j) * cap_;
  }

  void reserve(std::size_t n) {
    if (n > cap_) relayout(n);
  }

  /// Appends one row from raw coordinates (length dim()).  Coordinates are
  /// stored as T — for T = float this is the one narrowing point of the
  /// float32 storage mode.  NaN/Inf coordinates are rejected here, at the
  /// single SoA ingest point, so no non-finite value ever reaches the
  /// distance kernels (whose comparisons silently misbehave under NaN).
  void append(const double* coords) {
    KC_DCHECK(dim_ >= 1);
    if (n_ == cap_) relayout(cap_ < 8 ? 8 : cap_ * 2);
    for (int j = 0; j < dim_; ++j) {
      KC_EXPECTS(std::isfinite(coords[j]) && "non-finite coordinate");
      data_[static_cast<std::size_t>(j) * cap_ + n_] =
          static_cast<T>(coords[j]);
    }
    ++n_;
  }

  void append(const Point& p) {
    KC_DCHECK(p.dim() == dim_);
    append(p.coords().data());
  }

  /// Drops all rows, keeping dim and capacity (for rebuild-in-place
  /// consumers like the streaming recompression).
  void clear() noexcept { n_ = 0; }

  /// Row i unpacked to the AoS boundary type (requires dim ≤ kMaxDim).
  [[nodiscard]] Point point(std::size_t i) const {
    KC_DCHECK(i < n_);
    KC_EXPECTS(dim_ >= 1 && dim_ <= Point::kMaxDim);
    Point p(dim_);
    for (int j = 0; j < dim_; ++j) p[j] = static_cast<double>(col(j)[i]);
    return p;
  }

  /// Whole-buffer view, and the [offset, offset+count) slice.
  [[nodiscard]] BufferView<T> view() const noexcept {
    return BufferView<T>(data_.data(), cap_, n_, dim_);
  }
  [[nodiscard]] BufferView<T> view(std::size_t offset,
                                   std::size_t count) const noexcept {
    KC_DCHECK(offset + count <= n_);
    return BufferView<T>(data_.data() + offset, cap_, count, dim_);
  }

  /// Distance key of point i to query coordinates q (see BufferView).
  template <Norm N>
  [[nodiscard]] double key_to(std::size_t i, const double* q) const noexcept {
    return view().template key_to<N>(i, q);
  }

 private:
  void relayout(std::size_t new_cap) {
    std::vector<T> next(new_cap * static_cast<std::size_t>(dim_));
    for (int j = 0; j < dim_; ++j) {
      const T* src = data_.data() + static_cast<std::size_t>(j) * cap_;
      T* dst = next.data() + static_cast<std::size_t>(j) * new_cap;
      for (std::size_t i = 0; i < n_; ++i) dst[i] = src[i];
    }
    data_ = std::move(next);
    cap_ = new_cap;
  }

  std::vector<T> data_;
  std::size_t n_ = 0;
  std::size_t cap_ = 0;
  int dim_ = 0;
};

/// Float64 storage — the canonical representation (bit-exact kernels).
using PointBuffer = BasicPointBuffer<double>;
/// Float32 storage with float64 accumulation (documented ULP bound).
using PointBufferF = BasicPointBuffer<float>;

}  // namespace kernels
}  // namespace kc
