#include "geometry/box.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kc {

Box::Box(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)), empty_(false) {
  KC_EXPECTS(lo_.dim() == hi_.dim());
  for (int i = 0; i < lo_.dim(); ++i) KC_EXPECTS(lo_[i] <= hi_[i]);
}

Box Box::empty(int dim) {
  Box b;
  b.lo_ = Point(dim, std::numeric_limits<double>::infinity());
  b.hi_ = Point(dim, -std::numeric_limits<double>::infinity());
  b.empty_ = true;
  return b;
}

void Box::extend(const Point& p) {
  if (lo_.dim() == 0) {
    lo_ = p;
    hi_ = p;
    empty_ = false;
    return;
  }
  KC_EXPECTS(p.dim() == lo_.dim());
  for (int i = 0; i < p.dim(); ++i) {
    lo_[i] = std::min(lo_[i], p[i]);
    hi_[i] = std::max(hi_[i], p[i]);
  }
  empty_ = false;
}

bool Box::contains(const Point& p) const {
  KC_EXPECTS(!empty_ && p.dim() == lo_.dim());
  for (int i = 0; i < p.dim(); ++i)
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  return true;
}

double Box::max_side() const {
  KC_EXPECTS(!empty_);
  double m = 0.0;
  for (int i = 0; i < lo_.dim(); ++i) m = std::max(m, side(i));
  return m;
}

double Box::diameter(const Metric& metric) const {
  KC_EXPECTS(!empty_);
  return metric.dist(lo_, hi_);
}

Box bounding_box(const PointSet& pts) {
  KC_EXPECTS(!pts.empty());
  Box b = Box::empty(pts.front().dim());
  for (const auto& p : pts) b.extend(p);
  return b;
}

Spread compute_spread(const PointSet& pts, const Metric& metric) {
  Spread s;
  s.d_min = std::numeric_limits<double>::infinity();
  s.d_max = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double d = metric.dist(pts[i], pts[j]);
      if (d > 0.0) s.d_min = std::min(s.d_min, d);
      s.d_max = std::max(s.d_max, d);
    }
  }
  if (!std::isfinite(s.d_min)) s.d_min = 0.0;
  return s;
}

}  // namespace kc
