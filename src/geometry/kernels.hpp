// Inline distance kernels over SoA point buffers — the performance layer.
//
// Every algorithm in the library bottoms out in one of four loops: a
// point-to-point distance, a "relax all distances against one new center"
// sweep (Gonzalez), a "first representative within this radius" probe
// (mini-ball coverings, streaming inserts), or a "how much weight sits
// inside this ball" scan (Charikar).  This header provides those loops as
// header-inline, norm-templated kernels over any SoA buffer or slice
// (geometry/point_buffer.hpp); `Metric` (geometry/metric.hpp) dispatches
// its scalar calls here, and the hot paths in core/ call the batch
// primitives directly.
//
// Floating-point contract: for each norm the kernels accumulate in the
// exact same order as the historical scalar code (dimension-ascending per
// point), so a kernel-computed distance key is bit-identical to
// `Metric::dist_key` on float64 storage.  The differential suite in
// tests/test_simd.cpp pins this down across norms × dimensions × sizes ×
// slice offsets; it is what lets the SoA-migrated paths claim "no
// behavioral change".
//
// Vectorization: the batch kernels dispatch on the buffer's dimension to
// compile-time-specialized bodies for d ∈ {1, 2, 3, 4, 8} that fuse all
// per-point work into one pass with the dimension loop fully unrolled;
// the per-lane operation sequence is identical to the scalar reference,
// so vectorizing *across points* changes no bits.  The hot loops carry a
// `KC_SIMD_LOOP` pragma (ivdep) and are verified to auto-vectorize at -O3
// (see docs/ARCHITECTURE.md "Memory layout"; CI additionally runs the
// differential suite under -msse4.2 and -mavx2).  Other dimensions fall
// back to `compute_keys_generic`, the retained column-at-a-time reference
// that doubles as the bit-equality ground truth.
//
// Storage types: kernels are generic over the buffer's scalar type.
// Float64 buffers are bit-exact; float32 buffers (PointBufferF) round
// coordinates once at append time and still accumulate in float64 — see
// point_buffer.hpp for the documented error bound.
//
// `Norm::Custom` is deliberately outside this layer: a user-supplied
// distance function cannot be inlined or bucketed, so callers must keep a
// scalar fallback (they all do).
//
// The `_parallel` variants split the scanned range into the deterministic
// chunks of `kc::ThreadPool` and reduce the per-chunk partials in ascending
// chunk order, so their results are bit-identical to the scalar kernels at
// every thread count (pinned by tests/test_parallel.cpp).  Pass a null pool
// (or one with a single thread) to get the serial kernel unchanged.

#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/point_buffer.hpp"
#include "util/parallel.hpp"

// Vectorization hint for the fused per-point loops: the arrays a kernel
// writes (keys/assign/out) never alias the coordinate columns it reads
// (caller contract, unchanged since PR 2), so dependence analysis may
// assume no loop-carried dependences.
#if defined(__clang__)
#define KC_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define KC_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define KC_SIMD_LOOP
#endif

namespace kc {

namespace kernels {

/// Monotone distance key between two coordinate arrays: squared distance
/// under L2 (avoids the sqrt), the distance itself under L∞/L1.
template <Norm N>
[[nodiscard]] inline double raw_key(const double* a, const double* b,
                                    int d) noexcept {
  static_assert(N != Norm::Custom, "custom metrics have no inline kernel");
  if constexpr (N == Norm::L2) {
    double s = 0.0;
    for (int i = 0; i < d; ++i) {
      const double diff = a[i] - b[i];
      s += diff * diff;
    }
    return s;
  } else if constexpr (N == Norm::Linf) {
    double m = 0.0;
    for (int i = 0; i < d; ++i) {
      const double diff = std::fabs(a[i] - b[i]);
      if (diff > m) m = diff;
    }
    return m;
  } else {
    double s = 0.0;
    for (int i = 0; i < d; ++i) s += std::fabs(a[i] - b[i]);
    return s;
  }
}

/// Runtime-norm dispatch to `raw_key` (for call sites that hold a `Norm`
/// value rather than a template parameter, e.g. the inline Metric methods).
[[nodiscard]] inline double dist_key(Norm n, const double* a, const double* b,
                                     int d) noexcept {
  switch (n) {
    case Norm::L2: return raw_key<Norm::L2>(a, b, d);
    case Norm::Linf: return raw_key<Norm::Linf>(a, b, d);
    case Norm::L1: return raw_key<Norm::L1>(a, b, d);
    case Norm::Custom: break;
  }
  KC_DCHECK(false);  // custom metrics never reach the kernel layer
  return 0.0;
}

/// Actual distance (key with the L2 sqrt applied).
[[nodiscard]] inline double dist(Norm n, const double* a, const double* b,
                                 int d) noexcept {
  const double key = dist_key(n, a, b, d);
  return n == Norm::L2 ? std::sqrt(key) : key;
}

/// Converts a key back to a distance.
[[nodiscard]] inline double key_to_dist(Norm n, double key) noexcept {
  return n == Norm::L2 ? std::sqrt(key) : key;
}

/// Converts a distance threshold to a key threshold (`dist <= r` iff
/// `key <= dist_to_key(n, r)` for r >= 0).
[[nodiscard]] inline double dist_to_key(Norm n, double r) noexcept {
  return n == Norm::L2 ? r * r : r;
}

namespace detail {

// The dimension-dispatch switches below guarantee a fixed-D body only ever
// runs with D == buf.dim() == the query's length, but after inlining GCC's
// -Warray-bounds speculates into the dead branches (a d=3 query reaching
// the unrolled D=8 body it can never take) and warns on q[j], j >= 3.
// Silence that false positive for the fixed-dimension bodies only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

/// The dimensions with a compile-time-specialized fused kernel body.
constexpr bool has_fixed_dim(int d) noexcept {
  return d == 1 || d == 2 || d == 3 || d == 4 || d == 8;
}

template <int D, typename Buf>
[[nodiscard]] inline std::array<const typename Buf::value_type*, D> col_ptrs(
    const Buf& buf, std::size_t offset) noexcept {
  std::array<const typename Buf::value_type*, D> c;
  for (int j = 0; j < D; ++j) c[static_cast<std::size_t>(j)] = buf.col(j) + offset;
  return c;
}

/// Per-point key under norm N from D column pointers — the unrolled body
/// shared by every fixed-dimension kernel.  Accumulation is
/// dimension-ascending, identical to `raw_key`.
template <Norm N, int D, typename T>
[[nodiscard]] inline double key_at(const std::array<const T*, D>& c,
                                   const double* q, std::size_t i) noexcept {
  if constexpr (N == Norm::L2) {
    double s = 0.0;
    for (int j = 0; j < D; ++j) {
      const double diff =
          static_cast<double>(c[static_cast<std::size_t>(j)][i]) - q[j];
      s += diff * diff;
    }
    return s;
  } else if constexpr (N == Norm::Linf) {
    double m = 0.0;
    for (int j = 0; j < D; ++j) {
      const double diff = std::fabs(
          static_cast<double>(c[static_cast<std::size_t>(j)][i]) - q[j]);
      if (diff > m) m = diff;
    }
    return m;
  } else {
    double s = 0.0;
    for (int j = 0; j < D; ++j)
      s += std::fabs(static_cast<double>(c[static_cast<std::size_t>(j)][i]) -
                     q[j]);
    return s;
  }
}

/// Fixed-dimension `compute_keys`: one fused pass, dimension loop unrolled,
/// vectorized across points.
template <Norm N, int D, typename Buf>
inline void compute_keys_fixed(const Buf& buf, const double* q, double* out,
                               std::size_t begin, std::size_t end) noexcept {
  const auto c = col_ptrs<D>(buf, begin);
  double* o = out + begin;
  const std::size_t n = end - begin;
  KC_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) o[i] = key_at<N, D>(c, q, i);
}

/// Fixed-dimension fused relax: keys[i] = min(keys[i], key(i, q)) with
/// assign[i] = label on improvement.  Branchless selects so the loop
/// vectorizes; the stored values match the branching scalar loop exactly.
template <Norm N, int D, typename Buf>
inline void relax_fixed(const Buf& buf, const double* q, std::uint32_t label,
                        double* keys, std::uint32_t* assign, std::size_t begin,
                        std::size_t end) noexcept {
  const auto c = col_ptrs<D>(buf, begin);
  double* k = keys + begin;
  std::uint32_t* a = assign + begin;
  const std::size_t n = end - begin;
  KC_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    const double s = key_at<N, D>(c, q, i);
    const bool hit = s < k[i];
    k[i] = hit ? s : k[i];
    a[i] = hit ? label : a[i];
  }
}

/// Fixed-dimension fused min: keys[i] = min(keys[i], key(i, q)).
template <Norm N, int D, typename Buf>
inline void min_keys_fixed(const Buf& buf, const double* q, double* keys,
                           std::size_t begin, std::size_t end) noexcept {
  const auto c = col_ptrs<D>(buf, begin);
  double* k = keys + begin;
  const std::size_t n = end - begin;
  KC_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    const double s = key_at<N, D>(c, q, i);
    k[i] = s < k[i] ? s : k[i];
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace detail

/// `compute_keys_generic` restricted to the index range [begin, end): the
/// retained column-at-a-time reference pass (the historical PR-2 kernel).
/// Per-point accumulation is dimension-ascending regardless of the range
/// split, so out[i] == key_to<N>(i, q) for every i in the range.  Ground
/// truth for the fixed-dimension bodies (tests/test_simd.cpp) and the
/// fallback for dimensions without one.
template <Norm N, typename Buf>
inline void compute_keys_generic_range(const Buf& buf, const double* q,
                                       double* out, std::size_t begin,
                                       std::size_t end) noexcept {
  for (std::size_t i = begin; i < end; ++i) out[i] = 0.0;
  for (int j = 0; j < buf.dim(); ++j) {
    const auto* c = buf.col(j);
    const double qj = q[j];
    if constexpr (N == Norm::L2) {
      for (std::size_t i = begin; i < end; ++i) {
        const double diff = static_cast<double>(c[i]) - qj;
        out[i] += diff * diff;
      }
    } else if constexpr (N == Norm::Linf) {
      for (std::size_t i = begin; i < end; ++i) {
        const double diff = std::fabs(static_cast<double>(c[i]) - qj);
        if (diff > out[i]) out[i] = diff;
      }
    } else {
      for (std::size_t i = begin; i < end; ++i)
        out[i] += std::fabs(static_cast<double>(c[i]) - qj);
    }
  }
}

template <Norm N, typename Buf>
inline void compute_keys_generic(const Buf& buf, const double* q,
                                 double* out) noexcept {
  compute_keys_generic_range<N>(buf, q, out, 0, buf.size());
}

/// Writes the distance key of every buffered point to `q` into out[begin,
/// end).  Dispatches on the buffer's dimension to the fused vectorized
/// bodies; bit-identical to `compute_keys_generic_range` for every
/// dimension (same per-point accumulation order).
template <Norm N, typename Buf>
inline void compute_keys_range(const Buf& buf, const double* q, double* out,
                               std::size_t begin, std::size_t end) noexcept {
  switch (buf.dim()) {
    case 1: detail::compute_keys_fixed<N, 1>(buf, q, out, begin, end); return;
    case 2: detail::compute_keys_fixed<N, 2>(buf, q, out, begin, end); return;
    case 3: detail::compute_keys_fixed<N, 3>(buf, q, out, begin, end); return;
    case 4: detail::compute_keys_fixed<N, 4>(buf, q, out, begin, end); return;
    case 8: detail::compute_keys_fixed<N, 8>(buf, q, out, begin, end); return;
    default: compute_keys_generic_range<N>(buf, q, out, begin, end); return;
  }
}

template <Norm N, typename Buf>
inline void compute_keys(const Buf& buf, const double* q,
                         double* out) noexcept {
  compute_keys_range<N>(buf, q, out, 0, buf.size());
}

struct RelaxResult {
  std::size_t far_idx = 0;  ///< first index attaining the max relaxed key
  double far_key = -1.0;    ///< max over i of the relaxed keys[i]
};

/// Max over keys[begin, end), first max wins (the historical Gonzalez
/// tie-breaking: an ascending scan updating on strict `>`).  Implemented
/// as two vectorizable passes — a max-value reduction, then the first
/// index attaining it — which is provably the same result: the serial
/// scan's far_key is max(keys) when that exceeds the -1 sentinel, and its
/// far_idx is the first index attaining the max (later equal keys fail
/// the strict `>`).  Distance keys are never NaN, so the max reduction is
/// order-independent.
[[nodiscard]] inline RelaxResult far_scan(const double* keys,
                                          std::size_t begin,
                                          std::size_t end) noexcept {
  // Single blocked pass.  Per block: a max reduction with four independent
  // accumulators (GCC will not vectorize a single-accumulator FP max
  // without -ffast-math, but the explicitly reassociated form SLP-
  // vectorizes to packed max ops), then only blocks that improve the
  // running max are rescanned — O(log #blocks) expected, and the block is
  // still in L1.  Strict `>` across ascending blocks + first-index within
  // the improving block reproduce the serial first-max-wins scan exactly.
  constexpr std::size_t kB = 256;
  RelaxResult best;
  for (std::size_t b = begin; b < end; b += kB) {
    const std::size_t e = b + kB < end ? b + kB : end;
    double m0 = -1.0, m1 = -1.0, m2 = -1.0, m3 = -1.0;
    std::size_t i = b;
    for (; i + 4 <= e; i += 4) {
      m0 = keys[i] > m0 ? keys[i] : m0;
      m1 = keys[i + 1] > m1 ? keys[i + 1] : m1;
      m2 = keys[i + 2] > m2 ? keys[i + 2] : m2;
      m3 = keys[i + 3] > m3 ? keys[i + 3] : m3;
    }
    for (; i < e; ++i) m0 = keys[i] > m0 ? keys[i] : m0;
    m0 = m1 > m0 ? m1 : m0;
    m2 = m3 > m2 ? m3 : m2;
    const double m = m2 > m0 ? m2 : m0;
    if (m > best.far_key) {
      for (std::size_t j = b; j < e; ++j) {
        if (keys[j] == m) {
          best = {j, m};
          break;
        }
      }
    }
  }
  return best;
}

namespace detail {

/// Relaxation over [begin, end) without the far reduction: fused fixed-dim
/// body when available, else the generic pass through `scratch`.
template <Norm N, typename Buf>
inline void relax_range(const Buf& buf, const double* q, std::uint32_t label,
                        double* keys, std::uint32_t* assign, double* scratch,
                        std::size_t begin, std::size_t end) noexcept {
  switch (buf.dim()) {
    case 1: relax_fixed<N, 1>(buf, q, label, keys, assign, begin, end); return;
    case 2: relax_fixed<N, 2>(buf, q, label, keys, assign, begin, end); return;
    case 3: relax_fixed<N, 3>(buf, q, label, keys, assign, begin, end); return;
    case 4: relax_fixed<N, 4>(buf, q, label, keys, assign, begin, end); return;
    case 8: relax_fixed<N, 8>(buf, q, label, keys, assign, begin, end); return;
    default: break;
  }
  compute_keys_generic_range<N>(buf, q, scratch, begin, end);
  for (std::size_t i = begin; i < end; ++i) {
    if (scratch[i] < keys[i]) {
      keys[i] = scratch[i];
      assign[i] = label;
    }
  }
}

}  // namespace detail

/// One Gonzalez relaxation sweep: keys[i] = min(keys[i], key(i, q)) with
/// assign[i] = label on improvement, returning the farthest point under the
/// *relaxed* keys (first max wins, matching the historical scalar loop).
/// `scratch` must have room for buf.size() doubles (used only on the
/// generic-dimension fallback; the fixed-dimension bodies fuse the relax
/// into the key computation and never touch it).
template <Norm N, typename Buf>
inline RelaxResult relax_min_keys(const Buf& buf, const double* q,
                                  std::uint32_t label, double* keys,
                                  std::uint32_t* assign,
                                  double* scratch) noexcept {
  const std::size_t n = buf.size();
  detail::relax_range<N>(buf, q, label, keys, assign, scratch, 0, n);
  return far_scan(keys, 0, n);
}

/// keys[i] = min(keys[i], key(i, q)) without assignment tracking — the
/// nearest-center evaluation sweep (core/cost.cpp).
template <Norm N, typename Buf>
inline void min_keys(const Buf& buf, const double* q, double* keys,
                     double* scratch) noexcept {
  const std::size_t n = buf.size();
  switch (buf.dim()) {
    case 1: detail::min_keys_fixed<N, 1>(buf, q, keys, 0, n); return;
    case 2: detail::min_keys_fixed<N, 2>(buf, q, keys, 0, n); return;
    case 3: detail::min_keys_fixed<N, 3>(buf, q, keys, 0, n); return;
    case 4: detail::min_keys_fixed<N, 4>(buf, q, keys, 0, n); return;
    case 8: detail::min_keys_fixed<N, 8>(buf, q, keys, 0, n); return;
    default: break;
  }
  compute_keys_generic_range<N>(buf, q, scratch, 0, n);
  for (std::size_t i = 0; i < n; ++i)
    if (scratch[i] < keys[i]) keys[i] = scratch[i];
}

/// Block size of `first_within`: keys are computed for one block at a time
/// into a stack buffer (vectorized), then scanned in ascending order, so
/// the early exit costs at most one block of extra work.
constexpr std::size_t kFirstWithinBlock = 128;

/// First index i (ascending) with key(i, q) <= key_thresh, or buf.size()
/// when no point is within the threshold — the "join an existing
/// representative" probe of the covering passes and the streaming insert
/// path.  Identical result to the scalar first-hit scan (exact
/// comparisons, ascending order).
template <Norm N, typename Buf>
[[nodiscard]] inline std::size_t first_within(const Buf& buf, const double* q,
                                              double key_thresh) noexcept {
  const std::size_t n = buf.size();
  // Scalar early-exit prefix first: the covering probes hit within the
  // first few representatives far more often than not, and a full
  // 128-wide block of keys is wasted work there.
  constexpr std::size_t kPrefix = 16;
  const std::size_t p = std::min(kPrefix, n);
  for (std::size_t i = 0; i < p; ++i)
    if (buf.template key_to<N>(i, q) <= key_thresh) return i;
  double tmp[kFirstWithinBlock];
  for (std::size_t b = p; b < n; b += kFirstWithinBlock) {
    const std::size_t len = std::min(kFirstWithinBlock, n - b);
    compute_keys_range<N>(buf.view(b, len), q, tmp, 0, len);
    for (std::size_t i = 0; i < len; ++i)
      if (tmp[i] <= key_thresh) return b + i;
  }
  return n;
}

/// Total weight of the not-yet-covered candidates within the key threshold:
/// the Charikar "how much uncovered weight does this ball grab" scan over a
/// grid-bucketed candidate list.  Pass covered == nullptr when nothing is
/// covered yet.
template <Norm N, typename Buf>
[[nodiscard]] inline std::int64_t count_within(
    const Buf& buf, const std::uint32_t* idx, std::size_t m, const double* q,
    double key_thresh, const std::int64_t* w,
    const std::uint8_t* covered) noexcept {
  std::int64_t sum = 0;
  for (std::size_t t = 0; t < m; ++t) {
    const std::uint32_t j = idx[t];
    if (covered != nullptr && covered[j] != 0) continue;
    if (buf.template key_to<N>(j, q) <= key_thresh) sum += w[j];
  }
  return sum;
}

/// Marks every uncovered candidate within the key threshold as covered,
/// invoking `on_covered(j)` once per newly covered index, and returns the
/// total weight removed (the Charikar 3r-ball removal).
template <Norm N, typename Buf, typename F>
inline std::int64_t mark_within(const Buf& buf, const std::uint32_t* idx,
                                std::size_t m, const double* q,
                                double key_thresh, const std::int64_t* w,
                                std::uint8_t* covered, F&& on_covered) {
  std::int64_t removed = 0;
  for (std::size_t t = 0; t < m; ++t) {
    const std::uint32_t j = idx[t];
    if (covered[j] != 0) continue;
    if (buf.template key_to<N>(j, q) <= key_thresh) {
      covered[j] = 1;
      removed += w[j];
      on_covered(j);
    }
  }
  return removed;
}

// Default chunk grain of the parallel kernels: below this many points the
// serial kernel wins (chunk dispatch costs more than the scan).
constexpr std::size_t kParallelGrain = 8192;

/// Chunk-parallel `relax_min_keys`.  Each chunk relaxes its own disjoint
/// slice of keys/assign; the farthest point is then reduced over the
/// per-chunk first-max results in ascending chunk order with a strict `>`,
/// which reproduces the serial loop's first-max-wins tie-breaking exactly.
template <Norm N, typename Buf>
inline RelaxResult relax_min_keys_parallel(const Buf& buf, const double* q,
                                           std::uint32_t label, double* keys,
                                           std::uint32_t* assign,
                                           double* scratch, ThreadPool* pool,
                                           std::size_t grain = kParallelGrain) {
  const std::size_t n = buf.size();
  if (pool == nullptr || pool->num_threads() <= 1 || n <= grain)
    return relax_min_keys<N>(buf, q, label, keys, assign, scratch);
  const std::size_t chunks = pool->chunk_count(n, grain);
  std::vector<RelaxResult> part(chunks);
  pool->parallel_for_chunks(
      n, grain, [&](std::size_t c, std::size_t begin, std::size_t end) {
        detail::relax_range<N>(buf, q, label, keys, assign, scratch, begin,
                               end);
        part[c] = far_scan(keys, begin, end);
      });
  RelaxResult res = part[0];
  for (std::size_t c = 1; c < chunks; ++c)
    if (part[c].far_key > res.far_key) res = part[c];
  return res;
}

/// Chunk-parallel `count_within`: per-chunk integer partial sums, added in
/// ascending chunk order (integer addition — bit-identical to the serial
/// scan regardless of the split).  For a single large candidate list; the
/// Charikar init pass instead fans out one level up (parallel over query
/// points, serial counts per ball), which covers the same work with less
/// dispatch — use this variant when there is one big list and no outer
/// fan-out.  Contract pinned by tests/test_parallel.cpp.
template <Norm N, typename Buf>
[[nodiscard]] inline std::int64_t count_within_parallel(
    const Buf& buf, const std::uint32_t* idx, std::size_t m, const double* q,
    double key_thresh, const std::int64_t* w, const std::uint8_t* covered,
    ThreadPool* pool, std::size_t grain = kParallelGrain) {
  if (pool == nullptr || pool->num_threads() <= 1 || m <= grain)
    return count_within<N>(buf, idx, m, q, key_thresh, w, covered);
  const std::size_t chunks = pool->chunk_count(m, grain);
  std::vector<std::int64_t> part(chunks, 0);
  pool->parallel_for_chunks(
      m, grain, [&](std::size_t c, std::size_t begin, std::size_t end) {
        part[c] = count_within<N>(buf, idx + begin, end - begin, q,
                                  key_thresh, w, covered);
      });
  std::int64_t sum = 0;
  for (std::size_t c = 0; c < chunks; ++c) sum += part[c];
  return sum;
}

/// Chunk-parallel `mark_within`.  The candidate filter (the distance scan)
/// runs concurrently with `covered` read-only; the mutation — marking,
/// weight removal, `on_covered` — is applied on the calling thread in
/// ascending chunk order, with the already-covered re-check preserved, so
/// the covered set, the removed weight, and the `on_covered` invocation
/// order all match the serial kernel exactly (even when idx holds
/// duplicates).
template <Norm N, typename Buf, typename F>
inline std::int64_t mark_within_parallel(const Buf& buf,
                                         const std::uint32_t* idx,
                                         std::size_t m, const double* q,
                                         double key_thresh,
                                         const std::int64_t* w,
                                         std::uint8_t* covered, F&& on_covered,
                                         ThreadPool* pool,
                                         std::size_t grain = kParallelGrain) {
  if (pool == nullptr || pool->num_threads() <= 1 || m <= grain)
    return mark_within<N>(buf, idx, m, q, key_thresh, w, covered,
                          std::forward<F>(on_covered));
  const std::size_t chunks = pool->chunk_count(m, grain);
  std::vector<std::vector<std::uint32_t>> hits(chunks);
  pool->parallel_for_chunks(
      m, grain, [&](std::size_t c, std::size_t begin, std::size_t end) {
        auto& h = hits[c];
        for (std::size_t t = begin; t < end; ++t) {
          const std::uint32_t j = idx[t];
          if (covered[j] == 0 && buf.template key_to<N>(j, q) <= key_thresh)
            h.push_back(j);
        }
      });
  std::int64_t removed = 0;
  for (const auto& h : hits) {
    for (const std::uint32_t j : h) {
      if (covered[j] != 0) continue;  // duplicate occurrence in idx
      covered[j] = 1;
      removed += w[j];
      on_covered(j);
    }
  }
  return removed;
}

}  // namespace kernels
}  // namespace kc
