// Inline distance kernels and flat point buffers — the performance layer.
//
// Every algorithm in the library bottoms out in one of three loops: a
// point-to-point distance, a "relax all distances against one new center"
// sweep (Gonzalez), or a "how much weight sits inside this ball" scan
// (Charikar, mini-ball coverings).  This header provides those loops as
// header-inline, norm-templated kernels over raw coordinate arrays so the
// compiler can inline and vectorize them; `Metric` (geometry/metric.hpp)
// dispatches its scalar calls here, and the hot paths in core/ call the
// batch primitives directly.
//
// Floating-point contract: for each norm the kernels accumulate in the
// exact same order as the historical scalar code (dimension-ascending), so
// a kernel-computed distance key is bit-identical to `Metric::dist_key`.
// The equivalence tests in tests/test_kernels.cpp pin this down; it is what
// lets the grid-accelerated paths in core/ claim "no behavioral change".
//
// `Norm::Custom` is deliberately outside this layer: a user-supplied
// distance function cannot be inlined or bucketed, so callers must keep a
// scalar fallback (they all do).
//
// The `_parallel` variants split the scanned range into the deterministic
// chunks of `kc::ThreadPool` and reduce the per-chunk partials in ascending
// chunk order, so their results are bit-identical to the scalar kernels at
// every thread count (pinned by tests/test_parallel.cpp).  Pass a null pool
// (or one with a single thread) to get the scalar kernel unchanged.

#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/point.hpp"
#include "util/parallel.hpp"

namespace kc {

enum class Norm : std::uint8_t { L2, Linf, L1, Custom };

namespace kernels {

/// Monotone distance key between two coordinate arrays: squared distance
/// under L2 (avoids the sqrt), the distance itself under L∞/L1.
template <Norm N>
[[nodiscard]] inline double raw_key(const double* a, const double* b,
                                    int d) noexcept {
  static_assert(N != Norm::Custom, "custom metrics have no inline kernel");
  if constexpr (N == Norm::L2) {
    double s = 0.0;
    for (int i = 0; i < d; ++i) {
      const double diff = a[i] - b[i];
      s += diff * diff;
    }
    return s;
  } else if constexpr (N == Norm::Linf) {
    double m = 0.0;
    for (int i = 0; i < d; ++i) {
      const double diff = std::fabs(a[i] - b[i]);
      if (diff > m) m = diff;
    }
    return m;
  } else {
    double s = 0.0;
    for (int i = 0; i < d; ++i) s += std::fabs(a[i] - b[i]);
    return s;
  }
}

/// Runtime-norm dispatch to `raw_key` (for call sites that hold a `Norm`
/// value rather than a template parameter, e.g. the inline Metric methods).
[[nodiscard]] inline double dist_key(Norm n, const double* a, const double* b,
                                     int d) noexcept {
  switch (n) {
    case Norm::L2: return raw_key<Norm::L2>(a, b, d);
    case Norm::Linf: return raw_key<Norm::Linf>(a, b, d);
    case Norm::L1: return raw_key<Norm::L1>(a, b, d);
    case Norm::Custom: break;
  }
  KC_DCHECK(false);  // custom metrics never reach the kernel layer
  return 0.0;
}

/// Actual distance (key with the L2 sqrt applied).
[[nodiscard]] inline double dist(Norm n, const double* a, const double* b,
                                 int d) noexcept {
  const double key = dist_key(n, a, b, d);
  return n == Norm::L2 ? std::sqrt(key) : key;
}

/// Converts a key back to a distance.
[[nodiscard]] inline double key_to_dist(Norm n, double key) noexcept {
  return n == Norm::L2 ? std::sqrt(key) : key;
}

/// Converts a distance threshold to a key threshold (`dist <= r` iff
/// `key <= dist_to_key(n, r)` for r >= 0).
[[nodiscard]] inline double dist_to_key(Norm n, double r) noexcept {
  return n == Norm::L2 ? r * r : r;
}

/// Flat structure-of-arrays coordinate store: column j holds coordinate j
/// of every point contiguously, so the batch kernels below stream through
/// one cache-friendly array per dimension instead of hopping across Point
/// objects.  Built once per algorithm invocation from the caller's
/// WeightedSet/PointSet; read-only afterwards.
class PointBuffer {
 public:
  PointBuffer() = default;

  explicit PointBuffer(const WeightedSet& pts) {
    build(pts.size(), pts.empty() ? 0 : pts.front().p.dim(),
          [&](std::size_t i) -> const Point& { return pts[i].p; });
  }

  explicit PointBuffer(const PointSet& pts) {
    build(pts.size(), pts.empty() ? 0 : pts.front().dim(),
          [&](std::size_t i) -> const Point& { return pts[i]; });
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Column j (coordinate j of every point), length size().
  [[nodiscard]] const double* col(int j) const noexcept {
    KC_DCHECK(j >= 0 && j < dim_);
    return cols_.data() + static_cast<std::size_t>(j) * n_;
  }

  /// Distance key of point i to query coordinates q, accumulated in the
  /// same dimension order as `raw_key` (bit-identical results).
  template <Norm N>
  [[nodiscard]] double key_to(std::size_t i, const double* q) const noexcept {
    KC_DCHECK(i < n_);
    if constexpr (N == Norm::L2) {
      double s = 0.0;
      for (int j = 0; j < dim_; ++j) {
        const double diff = col(j)[i] - q[j];
        s += diff * diff;
      }
      return s;
    } else if constexpr (N == Norm::Linf) {
      double m = 0.0;
      for (int j = 0; j < dim_; ++j) {
        const double diff = std::fabs(col(j)[i] - q[j]);
        if (diff > m) m = diff;
      }
      return m;
    } else {
      double s = 0.0;
      for (int j = 0; j < dim_; ++j) s += std::fabs(col(j)[i] - q[j]);
      return s;
    }
  }

 private:
  template <typename At>
  void build(std::size_t n, int dim, At&& at) {
    n_ = n;
    dim_ = dim;
    cols_.resize(n * static_cast<std::size_t>(dim));
    for (std::size_t i = 0; i < n; ++i) {
      const Point& p = at(i);
      KC_DCHECK(p.dim() == dim);
      for (int j = 0; j < dim; ++j)
        cols_[static_cast<std::size_t>(j) * n + i] = p[j];
    }
  }

  std::vector<double> cols_;
  std::size_t n_ = 0;
  int dim_ = 0;
};

/// `compute_keys` restricted to the index range [begin, end).  Per-point
/// accumulation is dimension-ascending regardless of the range split, so
/// out[i] == key_to<N>(i, q) for every i in the range.
template <Norm N>
inline void compute_keys_range(const PointBuffer& buf, const double* q,
                               double* out, std::size_t begin,
                               std::size_t end) noexcept {
  for (std::size_t i = begin; i < end; ++i) out[i] = 0.0;
  for (int j = 0; j < buf.dim(); ++j) {
    const double* c = buf.col(j);
    const double qj = q[j];
    if constexpr (N == Norm::L2) {
      for (std::size_t i = begin; i < end; ++i) {
        const double diff = c[i] - qj;
        out[i] += diff * diff;
      }
    } else if constexpr (N == Norm::Linf) {
      for (std::size_t i = begin; i < end; ++i) {
        const double diff = std::fabs(c[i] - qj);
        if (diff > out[i]) out[i] = diff;
      }
    } else {
      for (std::size_t i = begin; i < end; ++i)
        out[i] += std::fabs(c[i] - qj);
    }
  }
}

/// Writes the distance key of every buffered point to `q` into out[0..n).
/// Column-at-a-time passes: each inner loop is a straight-line stream over
/// two contiguous arrays, which the compiler vectorizes.  Accumulation per
/// point is still dimension-ascending, so out[i] == key_to<N>(i, q).
template <Norm N>
inline void compute_keys(const PointBuffer& buf, const double* q,
                         double* out) noexcept {
  compute_keys_range<N>(buf, q, out, 0, buf.size());
}

struct RelaxResult {
  std::size_t far_idx = 0;  ///< first index attaining the max relaxed key
  double far_key = -1.0;    ///< max over i of the relaxed keys[i]
};

/// One Gonzalez relaxation sweep: keys[i] = min(keys[i], key(i, q)) with
/// assign[i] = label on improvement, returning the farthest point under the
/// *relaxed* keys (first max wins, matching the historical scalar loop).
/// `scratch` must have room for buf.size() doubles.
template <Norm N>
inline RelaxResult relax_min_keys(const PointBuffer& buf, const double* q,
                                  std::uint32_t label, double* keys,
                                  std::uint32_t* assign,
                                  double* scratch) noexcept {
  compute_keys<N>(buf, q, scratch);
  RelaxResult res;
  const std::size_t n = buf.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (scratch[i] < keys[i]) {
      keys[i] = scratch[i];
      assign[i] = label;
    }
    if (keys[i] > res.far_key) {
      res.far_key = keys[i];
      res.far_idx = i;
    }
  }
  return res;
}

/// Total weight of the not-yet-covered candidates within the key threshold:
/// the Charikar "how much uncovered weight does this ball grab" scan over a
/// grid-bucketed candidate list.  Pass covered == nullptr when nothing is
/// covered yet.
template <Norm N>
[[nodiscard]] inline std::int64_t count_within(
    const PointBuffer& buf, const std::uint32_t* idx, std::size_t m,
    const double* q, double key_thresh, const std::int64_t* w,
    const std::uint8_t* covered) noexcept {
  std::int64_t sum = 0;
  for (std::size_t t = 0; t < m; ++t) {
    const std::uint32_t j = idx[t];
    if (covered != nullptr && covered[j] != 0) continue;
    if (buf.key_to<N>(j, q) <= key_thresh) sum += w[j];
  }
  return sum;
}

/// Marks every uncovered candidate within the key threshold as covered,
/// invoking `on_covered(j)` once per newly covered index, and returns the
/// total weight removed (the Charikar 3r-ball removal).
template <Norm N, typename F>
inline std::int64_t mark_within(const PointBuffer& buf,
                                const std::uint32_t* idx, std::size_t m,
                                const double* q, double key_thresh,
                                const std::int64_t* w, std::uint8_t* covered,
                                F&& on_covered) {
  std::int64_t removed = 0;
  for (std::size_t t = 0; t < m; ++t) {
    const std::uint32_t j = idx[t];
    if (covered[j] != 0) continue;
    if (buf.key_to<N>(j, q) <= key_thresh) {
      covered[j] = 1;
      removed += w[j];
      on_covered(j);
    }
  }
  return removed;
}

// Default chunk grain of the parallel kernels: below this many points the
// scalar kernel wins (chunk dispatch costs more than the scan).
constexpr std::size_t kParallelGrain = 8192;

/// Chunk-parallel `relax_min_keys`.  Each chunk relaxes its own disjoint
/// slice of keys/assign; the farthest point is then reduced over the
/// per-chunk first-max results in ascending chunk order with a strict `>`,
/// which reproduces the scalar loop's first-max-wins tie-breaking exactly.
template <Norm N>
inline RelaxResult relax_min_keys_parallel(const PointBuffer& buf,
                                           const double* q,
                                           std::uint32_t label, double* keys,
                                           std::uint32_t* assign,
                                           double* scratch, ThreadPool* pool,
                                           std::size_t grain = kParallelGrain) {
  const std::size_t n = buf.size();
  if (pool == nullptr || pool->num_threads() <= 1 || n <= grain)
    return relax_min_keys<N>(buf, q, label, keys, assign, scratch);
  const std::size_t chunks = pool->chunk_count(n, grain);
  std::vector<RelaxResult> part(chunks);
  pool->parallel_for_chunks(
      n, grain, [&](std::size_t c, std::size_t begin, std::size_t end) {
        compute_keys_range<N>(buf, q, scratch, begin, end);
        RelaxResult r;
        for (std::size_t i = begin; i < end; ++i) {
          if (scratch[i] < keys[i]) {
            keys[i] = scratch[i];
            assign[i] = label;
          }
          if (keys[i] > r.far_key) {
            r.far_key = keys[i];
            r.far_idx = i;
          }
        }
        part[c] = r;
      });
  RelaxResult res = part[0];
  for (std::size_t c = 1; c < chunks; ++c)
    if (part[c].far_key > res.far_key) res = part[c];
  return res;
}

/// Chunk-parallel `count_within`: per-chunk integer partial sums, added in
/// ascending chunk order (integer addition — bit-identical to the scalar
/// scan regardless of the split).  For a single large candidate list; the
/// Charikar init pass instead fans out one level up (parallel over query
/// points, scalar counts per ball), which covers the same work with less
/// dispatch — use this variant when there is one big list and no outer
/// fan-out.  Contract pinned by tests/test_parallel.cpp.
template <Norm N>
[[nodiscard]] inline std::int64_t count_within_parallel(
    const PointBuffer& buf, const std::uint32_t* idx, std::size_t m,
    const double* q, double key_thresh, const std::int64_t* w,
    const std::uint8_t* covered, ThreadPool* pool,
    std::size_t grain = kParallelGrain) {
  if (pool == nullptr || pool->num_threads() <= 1 || m <= grain)
    return count_within<N>(buf, idx, m, q, key_thresh, w, covered);
  const std::size_t chunks = pool->chunk_count(m, grain);
  std::vector<std::int64_t> part(chunks, 0);
  pool->parallel_for_chunks(
      m, grain, [&](std::size_t c, std::size_t begin, std::size_t end) {
        part[c] = count_within<N>(buf, idx + begin, end - begin, q,
                                  key_thresh, w, covered);
      });
  std::int64_t sum = 0;
  for (std::size_t c = 0; c < chunks; ++c) sum += part[c];
  return sum;
}

/// Chunk-parallel `mark_within`.  The candidate filter (the distance scan)
/// runs concurrently with `covered` read-only; the mutation — marking,
/// weight removal, `on_covered` — is applied on the calling thread in
/// ascending chunk order, with the already-covered re-check preserved, so
/// the covered set, the removed weight, and the `on_covered` invocation
/// order all match the scalar kernel exactly (even when idx holds
/// duplicates).
template <Norm N, typename F>
inline std::int64_t mark_within_parallel(const PointBuffer& buf,
                                         const std::uint32_t* idx,
                                         std::size_t m, const double* q,
                                         double key_thresh,
                                         const std::int64_t* w,
                                         std::uint8_t* covered, F&& on_covered,
                                         ThreadPool* pool,
                                         std::size_t grain = kParallelGrain) {
  if (pool == nullptr || pool->num_threads() <= 1 || m <= grain)
    return mark_within<N>(buf, idx, m, q, key_thresh, w, covered,
                          std::forward<F>(on_covered));
  const std::size_t chunks = pool->chunk_count(m, grain);
  std::vector<std::vector<std::uint32_t>> hits(chunks);
  pool->parallel_for_chunks(
      m, grain, [&](std::size_t c, std::size_t begin, std::size_t end) {
        auto& h = hits[c];
        for (std::size_t t = begin; t < end; ++t) {
          const std::uint32_t j = idx[t];
          if (covered[j] == 0 && buf.key_to<N>(j, q) <= key_thresh)
            h.push_back(j);
        }
      });
  std::int64_t removed = 0;
  for (const auto& h : hits) {
    for (const std::uint32_t j : h) {
      if (covered[j] != 0) continue;  // duplicate occurrence in idx
      covered[j] = 1;
      removed += w[j];
      on_covered(j);
    }
  }
  return removed;
}

}  // namespace kernels
}  // namespace kc
