// Hierarchical grids over the discrete universe [Δ]^d (paper §5).
//
// The fully dynamic streaming algorithm (Algorithm 5) imposes grids
// G_0, …, G_⌈log Δ⌉ on [Δ]^d, where cells of G_i are hypercubes of side 2^i.
// A GridHierarchy maps an integer point to its cell id at each level, maps
// cell ids back to cell centers (the "relaxed coreset" representatives), and
// reports per-level universe sizes (needed by the sketches).
//
// Cell ids pack the per-axis cell coordinates into one 64-bit word, which
// requires d·⌈log2(Δ)⌉ ≤ 60 bits — ample for the discrete universes the
// dynamic model targets (d ≤ 4, Δ ≤ 2^15 by default).

#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.hpp"

namespace kc {

/// Point with integer coordinates in [0, Δ)^d.  The paper states the
/// universe as {1..Δ}^d; we use 0-based coordinates internally.
struct GridPoint {
  std::array<std::int64_t, Point::kMaxDim> c{};
  int dim = 0;

  [[nodiscard]] Point to_point() const {
    Point p(dim);
    for (int i = 0; i < dim; ++i) p[i] = static_cast<double>(c[static_cast<std::size_t>(i)]);
    return p;
  }

  friend bool operator==(const GridPoint& a, const GridPoint& b) noexcept {
    if (a.dim != b.dim) return false;
    for (int i = 0; i < a.dim; ++i)
      if (a.c[static_cast<std::size_t>(i)] != b.c[static_cast<std::size_t>(i)]) return false;
    return true;
  }
};

/// Rounds a real point onto the grid (coordinates clamped to [0, Δ)).
[[nodiscard]] GridPoint snap_to_grid(const Point& p, std::int64_t delta);

class GridHierarchy {
 public:
  /// delta = universe side Δ (must be ≥ 2); dim = dimension d.
  GridHierarchy(std::int64_t delta, int dim);

  [[nodiscard]] std::int64_t delta() const noexcept { return delta_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Number of levels = ⌈log2 Δ⌉ + 1 (levels 0..⌈log2 Δ⌉; level L has a
  /// single cell covering the whole universe).
  [[nodiscard]] int levels() const noexcept { return levels_; }

  /// Side length of cells at `level` (2^level).
  [[nodiscard]] std::int64_t cell_side(int level) const noexcept {
    return std::int64_t{1} << level;
  }

  /// Number of cells along one axis at `level`.
  [[nodiscard]] std::int64_t cells_per_axis(int level) const noexcept;

  /// Total number of cells at `level` (the sketch universe size U).
  [[nodiscard]] std::uint64_t universe_size(int level) const noexcept;

  /// Packs the cell containing `p` at `level` into a single id in
  /// [0, universe_size(level)).
  [[nodiscard]] std::uint64_t cell_id(const GridPoint& p, int level) const;

  /// Center of the cell with id `id` at `level`, as a real point
  /// (the representative used by the relaxed coreset).
  [[nodiscard]] Point cell_center(std::uint64_t id, int level) const;

  /// Lower corner (integer) of the cell — used in tests.
  [[nodiscard]] GridPoint cell_corner(std::uint64_t id, int level) const;

 private:
  std::int64_t delta_;
  int dim_;
  int levels_;
  int bits_per_axis_;  // for packing at level 0
};

}  // namespace kc
