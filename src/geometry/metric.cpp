#include "geometry/metric.hpp"

// The distance computations themselves (dist / dist_key / key_to_dist) are
// defined inline in metric.hpp on top of geometry/kernels.hpp; only the
// cold plumbing lives out of line.

namespace kc {

const char* Metric::name() const noexcept {
  switch (norm_) {
    case Norm::L2: return "L2";
    case Norm::Linf: return "Linf";
    case Norm::L1: return "L1";
    case Norm::Custom: return "custom";
  }
  return "?";
}

}  // namespace kc
