#include "geometry/metric.hpp"

#include <cmath>

namespace kc {

double Metric::dist(const Point& a, const Point& b) const {
  KC_DCHECK(a.dim() == b.dim());
  const int d = a.dim();
  switch (norm_) {
    case Norm::L2: {
      double s = 0.0;
      for (int i = 0; i < d; ++i) {
        const double diff = a[i] - b[i];
        s += diff * diff;
      }
      return std::sqrt(s);
    }
    case Norm::Linf: {
      double m = 0.0;
      for (int i = 0; i < d; ++i) {
        const double diff = std::fabs(a[i] - b[i]);
        if (diff > m) m = diff;
      }
      return m;
    }
    case Norm::L1: {
      double s = 0.0;
      for (int i = 0; i < d; ++i) s += std::fabs(a[i] - b[i]);
      return s;
    }
    case Norm::Custom:
      return (*custom_)(a, b);
  }
  return 0.0;  // unreachable
}

double Metric::dist_key(const Point& a, const Point& b) const {
  if (norm_ != Norm::L2) return dist(a, b);
  KC_DCHECK(a.dim() == b.dim());
  double s = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

double Metric::key_to_dist(double key) const noexcept {
  return norm_ == Norm::L2 ? std::sqrt(key) : key;
}

const char* Metric::name() const noexcept {
  switch (norm_) {
    case Norm::L2: return "L2";
    case Norm::Linf: return "Linf";
    case Norm::L1: return "L1";
    case Norm::Custom: return "custom";
  }
  return "?";
}

}  // namespace kc
