#include "geometry/grid.hpp"

#include <algorithm>
#include <cmath>

namespace kc {

GridPoint snap_to_grid(const Point& p, std::int64_t delta) {
  KC_EXPECTS(delta >= 2);
  GridPoint g;
  g.dim = p.dim();
  for (int i = 0; i < p.dim(); ++i) {
    auto v = static_cast<std::int64_t>(std::llround(p[i]));
    v = std::clamp<std::int64_t>(v, 0, delta - 1);
    g.c[static_cast<std::size_t>(i)] = v;
  }
  return g;
}

namespace {
int ceil_log2(std::int64_t v) {
  int l = 0;
  std::int64_t x = 1;
  while (x < v) {
    x <<= 1;
    ++l;
  }
  return l;
}
}  // namespace

GridHierarchy::GridHierarchy(std::int64_t delta, int dim)
    : delta_(delta), dim_(dim) {
  KC_EXPECTS(delta >= 2);
  KC_EXPECTS(dim >= 1 && dim <= Point::kMaxDim);
  bits_per_axis_ = ceil_log2(delta);
  levels_ = bits_per_axis_ + 1;
  // Packing requires d * bits_per_axis <= 62.
  KC_EXPECTS(dim_ * bits_per_axis_ <= 62);
}

std::int64_t GridHierarchy::cells_per_axis(int level) const noexcept {
  const std::int64_t side = cell_side(level);
  return (delta_ + side - 1) / side;
}

std::uint64_t GridHierarchy::universe_size(int level) const noexcept {
  std::uint64_t u = 1;
  const auto per_axis = static_cast<std::uint64_t>(cells_per_axis(level));
  for (int i = 0; i < dim_; ++i) u *= per_axis;
  return u;
}

std::uint64_t GridHierarchy::cell_id(const GridPoint& p, int level) const {
  KC_EXPECTS(level >= 0 && level < levels_);
  KC_EXPECTS(p.dim == dim_);
  const auto per_axis = static_cast<std::uint64_t>(cells_per_axis(level));
  std::uint64_t id = 0;
  for (int i = 0; i < dim_; ++i) {
    const std::int64_t ci = p.c[static_cast<std::size_t>(i)];
    KC_EXPECTS(ci >= 0 && ci < delta_);
    const auto cell = static_cast<std::uint64_t>(ci >> level);
    id = id * per_axis + cell;
  }
  return id;
}

Point GridHierarchy::cell_center(std::uint64_t id, int level) const {
  const GridPoint corner = cell_corner(id, level);
  const double half = 0.5 * static_cast<double>(cell_side(level));
  Point p(dim_);
  for (int i = 0; i < dim_; ++i)
    p[i] = static_cast<double>(corner.c[static_cast<std::size_t>(i)]) + half;
  return p;
}

GridPoint GridHierarchy::cell_corner(std::uint64_t id, int level) const {
  KC_EXPECTS(level >= 0 && level < levels_);
  const auto per_axis = static_cast<std::uint64_t>(cells_per_axis(level));
  GridPoint g;
  g.dim = dim_;
  for (int i = dim_ - 1; i >= 0; --i) {
    const std::uint64_t cell = id % per_axis;
    id /= per_axis;
    g.c[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(cell) * cell_side(level);
  }
  return g;
}

}  // namespace kc
