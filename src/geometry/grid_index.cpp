#include "geometry/grid_index.hpp"

namespace kc {

GridIndex::GridIndex(double cell_width, int dim)
    : width_(cell_width), dim_(dim),
      cells_(/*bucket_count=*/0, CellKeyHash{dim}) {
  KC_EXPECTS(cell_width > 0.0);
  KC_EXPECTS(dim >= 1 && dim <= Point::kMaxDim);
}

void GridIndex::reserve(std::size_t n) { cells_.reserve(n); }

GridIndex::CellKey GridIndex::key_for(const double* coords) const noexcept {
  // Clamp before the cast: floor(c/w) can exceed the int64 range for
  // degenerate coordinate/width ratios, and the clamp (being monotone and
  // contracting) preserves the neighbor-enumeration superset guarantee.
  constexpr double kClamp = 2305843009213693952.0;  // 2^61
  CellKey key;
  for (int j = 0; j < dim_; ++j) {
    double cell = std::floor(coords[j] / width_);
    if (cell > kClamp) cell = kClamp;
    if (cell < -kClamp) cell = -kClamp;
    key.c[static_cast<std::size_t>(j)] = static_cast<std::int64_t>(cell);
  }
  return key;
}

void GridIndex::insert(const double* coords, std::uint32_t idx) {
  cells_[key_for(coords)].push_back(idx);
  ++count_;
}

}  // namespace kc
