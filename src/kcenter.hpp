// Umbrella header for the kcenter library.
//
// Re-exports every public module header behind the kc:: namespace so that
// downstream code (examples, experiment harnesses, external users) can
// depend on the library with a single include:
//
//   #include "kcenter.hpp"
//
// The modules mirror the paper's structure — de Berg, Biabani &
// Monemizadeh, "k-Center Clustering with Outliers in the MPC and Streaming
// Model" (IPDPS 2023):
//
//   core        (ε,k,z)-coreset machinery, mini-ball covers, offline
//               solvers (Gonzalez, Charikar, brute force), cost/verify
//   dataset     .kcb on-disk container, mmap zero-copy sources, chunked
//               out-of-core readers, CSV / Matrix-Market importers
//   geometry    points, metric spaces, bounding boxes, grids
//   dynamic     fully dynamic coreset + k-center maintenance
//   lowerbound  insertion-only / sliding-window / dynamic lower bounds
//   mpc         MPC simulator and the one-/two-/multi-round algorithms
//   sketch      F0 estimation and sparse recovery used by lower bounds
//   stream      insertion-only and sliding-window streaming algorithms
//   util        contracts, CSV, flags, JSON log, RNG, stats, tables, timers
//   workload    planted-instance generators and stream drivers
//   engine      registry-backed pipeline layer unifying all four models

#pragma once

// util — foundational helpers used by every other module.
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/jsonlog.hpp"
#include "util/parallel.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/rss.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

// geometry — points, metrics, and spatial decomposition, plus the
// performance layer (inline kernels + radius-tuned hash grid).
#include "geometry/box.hpp"
#include "geometry/grid.hpp"
#include "geometry/grid_index.hpp"
#include "geometry/kernels.hpp"
#include "geometry/metric.hpp"
#include "geometry/point.hpp"
#include "geometry/point_buffer.hpp"

// dataset — out-of-core ingest: the .kcb binary container, mmap-backed
// zero-copy sources, chunked readers, and text importers.
#include "dataset/kcb.hpp"
#include "dataset/source.hpp"
#include "dataset/text_import.hpp"

// core — problem types, coresets, and offline solvers.
#include "core/brute_force.hpp"
#include "core/charikar.hpp"
#include "core/coreset.hpp"
#include "core/cost.hpp"
#include "core/gonzalez.hpp"
#include "core/mbc.hpp"
#include "core/radius_oracle.hpp"
#include "core/solver.hpp"
#include "core/types.hpp"
#include "core/verify.hpp"

// sketch — linear sketches backing the communication lower bounds.
#include "sketch/f0_estimator.hpp"
#include "sketch/field.hpp"
#include "sketch/hashing.hpp"
#include "sketch/one_sparse.hpp"
#include "sketch/power_sum.hpp"
#include "sketch/sparse_recovery.hpp"

// mpc — massively parallel computation simulator and algorithms, plus
// deterministic fault injection and recovery.
#include "mpc/ceccarello.hpp"
#include "mpc/faults.hpp"
#include "mpc/guha.hpp"
#include "mpc/multi_round.hpp"
#include "mpc/one_round.hpp"
#include "mpc/partition.hpp"
#include "mpc/simulator.hpp"
#include "mpc/transport.hpp"
#include "mpc/two_round.hpp"
#include "mpc/wire.hpp"

// stream — insertion-only and sliding-window algorithms.
#include "stream/insertion_only.hpp"
#include "stream/mccutchen_khuller.hpp"
#include "stream/sliding_window.hpp"

// dynamic — fully dynamic maintenance under insertions and deletions.
#include "dynamic/dynamic_coreset.hpp"
#include "dynamic/dynamic_kcenter.hpp"
#include "dynamic/naive_store.hpp"

// lowerbound — hard-instance constructions matching the paper's bounds.
#include "lowerbound/dynamic_lb.hpp"
#include "lowerbound/insertion_lb.hpp"
#include "lowerbound/sliding_lb.hpp"

// workload — reproducible instance generators and stream drivers.
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"
#include "workload/streams.hpp"

// engine — the registry-backed pipeline layer: every computation model
// (offline, MPC, streaming, dynamic) behind one Workload → coreset →
// Solution → PipelineReport interface, runnable by name.
#include "engine/pipeline.hpp"
#include "engine/registry.hpp"
