#include "util/rng.hpp"

#include <cmath>

namespace kc {

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
    // kc-lint-allow(numerics): Marsaglia rejection — s == 0.0 is the exact
    // degenerate draw (log(0) below), not a tolerance question.
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace kc
