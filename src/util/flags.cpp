#include "util/flags.hpp"

#include <cstdlib>

namespace kc {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // boolean presence flag
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long long Flags::get_int(const std::string& name, long long def) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> Flags::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const auto& k : known)
      if (k == name) {
        found = true;
        break;
      }
    if (!found) out.push_back(name);  // values_ is a sorted map
  }
  return out;
}

}  // namespace kc
