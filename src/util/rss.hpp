// Portable process-memory probes for the bench harnesses.
//
// The out-of-core dataset layer's contract is "peak RSS independent of n";
// the scale harness (bench/bench_scale.cpp) records the high-water mark to
// prove it, and util/jsonlog.cpp stamps it into *every* bench JSON record
// so any trajectory (BENCH_engine.json, BENCH_hotpaths.json,
// BENCH_scale.json) carries the memory footprint of the run that produced
// it.  Backed by getrusage(RUSAGE_SELF) on POSIX; returns 0 where the
// platform offers no probe (records then carry an honest 0, never a guess).

#pragma once

#include <cstddef>

namespace kc {

/// High-water resident set size of this process, in bytes (monotone over
/// the process lifetime — record *before* allocating comparison baselines).
/// 0 when the platform provides no probe.
[[nodiscard]] std::size_t peak_rss_bytes();

/// Current resident set size in bytes (Linux: /proc/self/statm), 0 when
/// unavailable.  Spot probe only — prefer `peak_rss_bytes` for budgets.
[[nodiscard]] std::size_t current_rss_bytes();

}  // namespace kc
