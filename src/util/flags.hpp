// Tiny command-line flag parser for the example and bench binaries.
//
// Usage:
//   kc::Flags flags(argc, argv);
//   int n   = flags.get_int("n", 10000);
//   double e = flags.get_double("eps", 0.25);
//   bool quick = flags.has("quick");
//
// Accepted syntaxes: --name=value, --name value, --flag (boolean presence).

#pragma once

#include <map>
#include <string>
#include <vector>

namespace kc {

class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const;
  [[nodiscard]] long long get_int(const std::string& name, long long def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags that were passed but are not in `known`, in sorted order.
  /// Strict drivers (kcenter_cli) reject such typos with usage text instead
  /// of silently ignoring them.
  [[nodiscard]] std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace kc
