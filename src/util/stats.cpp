#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kc {

void Summary::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Summary::mean() const {
  KC_EXPECTS(!values_.empty());
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Summary::sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

double Summary::stddev() const {
  KC_EXPECTS(!values_.empty());
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  KC_EXPECTS(!values_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  KC_EXPECTS(!values_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Summary::percentile(double q) const {
  KC_EXPECTS(!values_.empty());
  KC_EXPECTS(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  KC_EXPECTS(x.size() == y.size());
  KC_EXPECTS(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    KC_EXPECTS(x[i] > 0 && y[i] > 0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  // kc-lint-allow(numerics): exact degenerate-fit sentinel — denom is
  // identically 0.0 (not merely tiny) only when every x coincides.
  KC_EXPECTS(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace kc
