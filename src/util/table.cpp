#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace kc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  KC_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  KC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << pad;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < widths.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(int indent) const {
  std::fputs(to_string(indent).c_str(), stdout);
  std::fflush(stdout);
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  unsigned long long uv = neg ? static_cast<unsigned long long>(-v)
                              : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(uv);
  std::string out;
  int group = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (group == 3) {
      out.push_back(',');
      group = 0;
    }
    out.push_back(*it);
    ++group;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace kc
