#include "util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/check.hpp"

namespace kc {

namespace {

// Set while a thread is executing a pool task (worker threads permanently,
// the caller only while it helps drain the queue).  A parallel_for issued
// from such a thread runs inline — see the nesting note in the header.
thread_local bool tl_in_pool_task = false;

// Oversubscription factor: more chunks than threads lets uneven chunk
// costs (e.g. MPC machines with adversarial partitions) rebalance.
constexpr std::size_t kChunksPerThread = 4;

// Chunk c of a balanced split of [0, n) into `chunks` pieces (the first
// n % chunks pieces are one element longer).
std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                std::size_t chunks,
                                                std::size_t c) noexcept {
  const std::size_t per = n / chunks;
  const std::size_t rem = n % chunks;
  const std::size_t begin = c * per + std::min(c, rem);
  return {begin, begin + per + (c < rem ? 1 : 0)};
}

}  // namespace

int resolve_num_threads(int num_threads) noexcept {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(resolve_num_threads(num_threads)) {
  const int workers = num_threads_ - 1;  // the caller is the last executor
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::chunk_count(std::size_t n,
                                    std::size_t grain) const noexcept {
  if (n == 0) return 0;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t by_grain = (n + grain - 1) / grain;
  const std::size_t cap =
      static_cast<std::size_t>(num_threads_) * kChunksPerThread;
  return std::clamp<std::size_t>(by_grain, 1, cap);
}

void ThreadPool::worker_loop() {
  tl_in_pool_task = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const RangeFn& fn) {
  parallel_for_chunks(
      n, grain,
      [&fn](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        fn(begin, end);
      });
}

void ThreadPool::parallel_for_chunks(std::size_t n, std::size_t grain,
                                     const ChunkFn& fn) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count(n, grain);

  // Inline path: sequential pool, nested call from a pool task, or a
  // single chunk.  Same chunk ids and ranges, ascending order.
  if (workers_.empty() || tl_in_pool_task || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = chunk_range(n, chunks, c);
      fn(c, begin, end);
    }
    return;
  }

  struct Job {
    std::size_t done = 0;  // guarded by the pool mutex
    std::vector<std::exception_ptr> errors;
  };
  Job job;
  job.errors.resize(chunks);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    KC_EXPECTS(!stop_);
    for (std::size_t c = 0; c < chunks; ++c) {
      queue_.emplace_back([this, &job, &fn, n, chunks, c] {
        try {
          const auto [begin, end] = chunk_range(n, chunks, c);
          fn(c, begin, end);
        } catch (...) {
          job.errors[c] = std::current_exception();
        }
        {
          const std::lock_guard<std::mutex> inner(mu_);
          ++job.done;
          if (job.done == chunks) done_cv_.notify_all();
        }
      });
    }
  }
  work_cv_.notify_all();

  // The caller participates: drain tasks (ours or a concurrent caller's)
  // until this job's chunks all completed.
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (job.done == chunks) break;
      if (queue_.empty()) {
        done_cv_.wait(lock, [&] { return job.done == chunks; });
        break;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tl_in_pool_task = true;
    task();
    tl_in_pool_task = false;
  }

  for (std::size_t c = 0; c < chunks; ++c)
    if (job.errors[c]) std::rethrow_exception(job.errors[c]);
}

}  // namespace kc
