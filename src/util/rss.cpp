#include "util/rss.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#endif

namespace kc {

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::size_t>(ru.ru_maxrss);
#else
  // Linux/BSD report kilobytes.
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(rss_pages) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace kc
