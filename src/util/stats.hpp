// Small summary-statistics accumulator used by the bench harnesses to
// aggregate repeated trials (mean / stddev / min / max / percentiles).

#pragma once

#include <cstddef>
#include <vector>

namespace kc {

class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  ///< sample standard deviation
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double sum() const;

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Least-squares slope of log(y) against log(x); used to report empirical
/// scaling exponents ("storage grows like n^0.5") in the bench output.
[[nodiscard]] double loglog_slope(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace kc
