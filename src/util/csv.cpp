#include "util/csv.hpp"

#include "util/check.hpp"

namespace kc {

namespace {
// RFC 4180 quoting: wrap in quotes when the cell contains a comma, a quote,
// or a newline; double embedded quotes.
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), columns_(columns.size()) {
  KC_EXPECTS(!columns.empty());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  KC_EXPECTS(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace kc
