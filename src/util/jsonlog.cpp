#include "util/jsonlog.hpp"

#include <cstdio>
#include <fstream>

#include "util/rss.hpp"

namespace kc::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string JsonField::to_json() const {
  // Built with append() — a const char* first operand to operator+ trips a
  // GCC 12 -Wrestrict false positive (see examples/mpc_cluster.cpp).
  std::string out;
  out.append("\"").append(json_escape(key_)).append("\": ");
  char buf[64];
  switch (kind_) {
    case Kind::Int:
      std::snprintf(buf, sizeof buf, "%lld", int_);
      out.append(buf);
      break;
    case Kind::Double:
      std::snprintf(buf, sizeof buf, "%.10g", double_);
      out.append(buf);
      break;
    case Kind::Str:
      out.append("\"").append(json_escape(str_)).append("\"");
      break;
  }
  return out;
}

JsonLog JsonLog::from_flags(const Flags& flags) {
  JsonLog log;
  log.path_ = flags.get_string("json", "");
  log.tag_ = flags.get_string("json-tag", "");
  return log;
}

namespace {

template <typename Range>
void record_impl(const std::string& path, const std::string& tag,
                 const std::string& experiment, const Range& fields) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: cannot append bench record to %s\n",
                 path.c_str());
    return;
  }
  out << "{" << JsonField("experiment", experiment).to_json();
  for (const auto& f : fields) out << ", " << f.to_json();
  // Every record carries the process high-water RSS at record time, so any
  // trajectory doubles as a memory-footprint trajectory (0 = no probe).
  out << ", "
      << JsonField("peak_rss_mb",
                   static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0))
             .to_json();
  if (!tag.empty()) out << ", " << JsonField("tag", tag).to_json();
  out << "}\n";
}

}  // namespace

void JsonLog::record(const std::string& experiment,
                     std::initializer_list<JsonField> fields) const {
  if (!enabled()) return;
  record_impl(path_, tag_, experiment, fields);
}

void JsonLog::record(const std::string& experiment,
                     const std::vector<JsonField>& fields) const {
  if (!enabled()) return;
  record_impl(path_, tag_, experiment, fields);
}

}  // namespace kc::bench
