// Precondition / invariant checking helpers.
//
// KC_EXPECTS / KC_ENSURES follow the Core Guidelines contract idiom: they
// document and enforce pre/postconditions.  They stay active in all build
// types for cheap checks (the library is an algorithms reference, so
// correctness beats the last few percent of speed); use KC_DCHECK for
// checks that are too expensive outside debug builds.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace kc::detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[kcoreset] %s violated: %s at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}
}  // namespace kc::detail

#define KC_EXPECTS(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                             \
          : ::kc::detail::contract_failure("precondition", #cond, __FILE__,  \
                                           __LINE__))

#define KC_ENSURES(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                             \
          : ::kc::detail::contract_failure("postcondition", #cond, __FILE__, \
                                           __LINE__))

#ifndef NDEBUG
#define KC_DCHECK(cond) KC_EXPECTS(cond)
#else
#define KC_DCHECK(cond) static_cast<void>(0)
#endif
