// Minimal CSV writer so bench harnesses can dump raw series next to the
// human-readable tables (for plotting / post-processing).

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace kc {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header line.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Appends one row; cell count must match the header.
  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace kc
