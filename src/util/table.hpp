// Aligned console-table printer.  The bench harnesses use this to emit
// paper-style result tables (one row per configuration / algorithm).

#pragma once

#include <string>
#include <vector>

namespace kc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment, a header rule, and `indent` leading
  /// spaces per line.
  [[nodiscard]] std::string to_string(int indent = 2) const;

  /// Convenience: render straight to stdout.
  void print(int indent = 2) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` significant decimals, trimming zeros.
[[nodiscard]] std::string fmt(double v, int prec = 3);
/// Formats an integer with thousands separators ("1,234,567").
[[nodiscard]] std::string fmt_count(long long v);

}  // namespace kc
