// Deterministic retry/backoff schedule.
//
// A pure function from attempt number to simulated delay: no clocks, no
// randomness, so the same schedule is reproduced on every run and at every
// thread count.  The MPC fault injector (mpc/faults.hpp) uses it to account
// the latency cost of crash re-executions and message re-sends; a future
// multi-process backend (kcenterd) can reuse the same schedule for real
// sleeps without changing any accounting.

#pragma once

#include <algorithm>

namespace kc {

/// Capped exponential backoff: attempt a (1-based) waits
/// min(max_ms, base_ms · factor^{a−1}).
struct Backoff {
  double base_ms = 1.0;
  double factor = 2.0;
  double max_ms = 64.0;

  [[nodiscard]] double delay_ms(int attempt) const noexcept {
    double d = base_ms;
    for (int a = 1; a < attempt; ++a) {
      d *= factor;
      if (d >= max_ms) return max_ms;
    }
    return std::min(d, max_ms);
  }

  /// Total simulated wait across attempts 1..n.
  [[nodiscard]] double total_ms(int attempts) const noexcept {
    double sum = 0.0;
    for (int a = 1; a <= attempts; ++a) sum += delay_ms(a);
    return sum;
  }
};

}  // namespace kc
