// Deterministic pseudo-random number generation for all stochastic components.
//
// Every random choice in the library flows from an explicit 64-bit seed so
// that tests and benchmark runs are exactly reproducible.  We provide
// splitmix64 (used for seeding and as a cheap mixer / finalizer) and
// xoshiro256** (the main generator), both public-domain algorithms by
// Blackman & Vigna.

#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace kc {

/// Mixes a 64-bit value into a well-distributed 64-bit output.
/// splitmix64's finalizer; also usable as a hash for 64-bit keys.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator, so it can
/// be used with <random> distributions as well as with the helpers below.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) {
      sm += 0x9e3779b97f4a7c15ULL;
      s = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// true with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Derives an independent child generator; used to hand sub-seeds to
  /// machines / sketches without correlating their streams.
  [[nodiscard]] Rng fork() noexcept { return Rng(splitmix64((*this)())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;

  friend class RngNormalAccess;
};

}  // namespace kc
