// Append-only JSON-lines bench/telemetry log.
//
// Shared by the experiment harnesses in bench/ and the kcenter_cli driver
// in tools/: every binary that accepts `--json <path>` appends one `{...}`
// record per measurement so performance and quality trajectories across
// PRs accumulate in one file (see BENCH_hotpaths.json, BENCH_engine.json).
// Lives in the library (not bench/) so that tools built against
// kc::kcenter alone can emit records; the namespace stays kc::bench
// because the record format is the bench-trajectory format.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/flags.hpp"

namespace kc::bench {

/// One typed field of a JSON bench record.
class JsonField {
 public:
  JsonField(std::string key, long long v)
      : key_(std::move(key)), kind_(Kind::Int), int_(v) {}
  JsonField(std::string key, int v) : JsonField(std::move(key),
                                               static_cast<long long>(v)) {}
  JsonField(std::string key, double v)
      : key_(std::move(key)), kind_(Kind::Double), double_(v) {}
  JsonField(std::string key, std::string v)
      : key_(std::move(key)), kind_(Kind::Str), str_(std::move(v)) {}
  JsonField(std::string key, const char* v)
      : JsonField(std::move(key), std::string(v)) {}

  /// Serializes as `"key": value`.
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { Int, Double, Str };
  std::string key_;
  Kind kind_;
  long long int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

/// Append-only JSON-lines bench log (one `{...}` record per line), enabled
/// by the harness-wide `--json <path>` flag.  Every record carries the
/// experiment id plus the caller's fields, and an optional `tag` (from
/// `--json-tag`, e.g. a commit id) so trajectories across PRs can be told
/// apart in one file.  Disabled (no file touched) when the flag is absent.
class JsonLog {
 public:
  JsonLog() = default;  ///< disabled

  /// Reads `--json <path>` and `--json-tag <tag>`.
  [[nodiscard]] static JsonLog from_flags(const Flags& flags);

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  /// Appends one record: `{"experiment": ..., <fields>..., "tag": ...}`.
  /// No-op when disabled.
  void record(const std::string& experiment,
              std::initializer_list<JsonField> fields) const;

  /// Same, for field sets assembled at runtime (the engine reports carry a
  /// variable number of model-specific metrics).
  void record(const std::string& experiment,
              const std::vector<JsonField>& fields) const;

 private:
  std::string path_;
  std::string tag_;
};

}  // namespace kc::bench
