// Deterministic fixed-size thread pool — the library's only threading
// primitive.
//
// Everything that fans out in this repo (the MPC simulator's per-machine
// map phase, the chunked batch kernels in geometry/kernels.hpp) runs
// through `kc::ThreadPool`, under one contract: **outputs are bit-identical
// to the sequential run, for every thread count, on every run.**  The rule
// that makes this hold is *determinism by ordered reduction*:
//
//  * work is split into chunks whose boundaries are a pure function of
//    (n, grain, num_threads) — never of scheduling;
//  * chunks write only disjoint state while running concurrently;
//  * anything that combines per-chunk results (a max, a sum, a merge) is
//    reduced on the calling thread in ascending chunk order after all
//    chunks finish.
//
// With that discipline the pool is free to execute chunks in any order on
// any thread.  `num_threads == 1` spawns no threads at all and runs every
// chunk inline on the caller — the bit-identical sequential fallback the
// tests pin against.
//
// Nesting: a `parallel_for` issued from inside a pool task runs inline on
// that task's thread (same chunk ids and ranges, sequential).  This makes
// it safe for parallel MPC machines to call library code that itself takes
// a pool — the inner fan-out degrades to sequential instead of
// deadlocking on the shared queue.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kc {

/// Resolves a user-facing thread-count knob: values <= 0 mean "use the
/// hardware" (`hardware_concurrency`, at least 1).
[[nodiscard]] int resolve_num_threads(int num_threads) noexcept;

class ThreadPool {
 public:
  /// `num_threads <= 0` resolves to `hardware_concurrency`.  The pool owns
  /// `num_threads - 1` worker threads; the caller of `parallel_for`
  /// participates as the remaining executor, so `num_threads == 1` is a
  /// pure inline (sequential) pool with no threads and no locking.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Number of chunks `parallel_for` will split [0, n) into for this grain:
  /// ceil(n / grain), capped at 4 chunks per thread (enough slack for
  /// uneven chunk costs without drowning in scheduling overhead).  Pure
  /// function of (n, grain, num_threads()) — callers sizing per-chunk
  /// partial-result arrays rely on this.
  [[nodiscard]] std::size_t chunk_count(std::size_t n,
                                        std::size_t grain) const noexcept;

  using RangeFn = std::function<void(std::size_t begin, std::size_t end)>;
  using ChunkFn =
      std::function<void(std::size_t chunk, std::size_t begin, std::size_t end)>;

  /// Runs `fn(begin, end)` over a deterministic chunking of [0, n) with at
  /// least `grain` indices per chunk (except possibly the last).  Blocks
  /// until every chunk finished.  If any chunk throws, the exception from
  /// the lowest-numbered failing chunk is rethrown after all chunks
  /// completed (the pool stays usable).
  void parallel_for(std::size_t n, std::size_t grain, const RangeFn& fn);

  /// Like `parallel_for` but also hands `fn` the chunk index, for callers
  /// that accumulate per-chunk partial results and reduce them in chunk
  /// order.  Chunk `c` always covers the same range for a given
  /// (n, grain, num_threads()).
  void parallel_for_chunks(std::size_t n, std::size_t grain, const ChunkFn& fn);

  /// Maps i -> fn(i) over [0, n), returning results in index order.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, std::size_t grain,
                                            Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    return out;
  }

 private:
  void worker_loop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty or stop
  std::condition_variable done_cv_;  ///< callers: their job completed
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace kc
