// ABL-GUESS — the outlier-guessing mechanism ablation (paper §3).
//
// Workload: "cloud and clusters" — every machine's slice of a wide uniform
// cloud looks like local outliers, but globally the cloud must largely be
// covered.  Three mechanisms:
//   * ours (Algorithm 2): one round of V_i tables; Σ(2^ĵ−1) ≤ 2z globally;
//   * guha  (local-z [29]): every machine budgets the full z locally;
//   * ceccarello: per-machine (k+z)(4/ε)^d Gonzalez summary.
// Reported: coordinator inbound volume (merged size), peak worker words,
// quality.  Paper shape: ours' outlier-candidate volume is governed by 2z
// (log z tables), the baselines pay per machine.

#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "mpc/ceccarello.hpp"
#include "mpc/guha.hpp"
#include "mpc/partition.hpp"
#include "mpc/two_round.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::mpc;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int k = 2;
  const double eps = 0.5;
  const Metric metric{Norm::L2};

  banner("ABL-GUESS", "outlier guessing: Algorithm 2's log(z+1) tables vs "
                      "local-z [29] vs multiplicative-z [11]", seed);

  std::vector<std::int64_t> zs = quick ? std::vector<std::int64_t>{24, 48}
                                       : std::vector<std::int64_t>{24, 48, 96,
                                                                   192};
  Table t({"mechanism", "z", "cloud pts", "merged@coord", "worker words",
           "sum 2^j-1", "quality", "ms"});
  for (const auto z : zs) {
    const std::size_t n_cluster = quick ? 1500 : 3000;
    const std::size_t n_cloud = static_cast<std::size_t>(5 * z);
    const WeightedSet pts = cloud_and_clusters(n_cluster, n_cloud, k, seed);
    const int m = 10;
    const auto parts = partition_points(pts, m, PartitionKind::RoundRobin, 0);

    {
      TwoRoundOptions opt;
      opt.eps = eps;
      Timer timer;
      const auto res = two_round_coreset(parts, k, z, metric, {}, opt);
      t.add_row({"ours (r-hat rule)", fmt_count(z),
                 fmt_count(static_cast<long long>(n_cloud)),
                 fmt_count(static_cast<long long>(res.merged.size())),
                 fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                 fmt_count(res.sum_outlier_guesses),
                 fmt(quality_ratio(pts, res.coreset, k, z, metric), 3),
                 fmt(timer.millis(), 0)});
    }
    {
      GuhaOptions opt;
      opt.eps = eps;
      Timer timer;
      const auto res = guha_local_z_coreset(parts, k, z, metric, {}, opt);
      t.add_row({"guha local-z", fmt_count(z),
                 fmt_count(static_cast<long long>(n_cloud)),
                 fmt_count(static_cast<long long>(res.merged.size())),
                 fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                 "-", fmt(quality_ratio(pts, res.coreset, k, z, metric), 3),
                 fmt(timer.millis(), 0)});
    }
    {
      CeccarelloOptions opt;
      opt.eps = eps;
      Timer timer;
      const auto res = ceccarello_coreset(parts, k, z, metric, {}, opt);
      t.add_row({"ceccarello", fmt_count(z),
                 fmt_count(static_cast<long long>(n_cloud)),
                 fmt_count(static_cast<long long>(res.merged.size())),
                 fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                 "-", fmt(quality_ratio(pts, res.coreset, k, z, metric), 3),
                 fmt(timer.millis(), 0)});
    }
  }
  t.print();
  shape_note("ours ships the fewest points to the coordinator and its "
             "outlier-slot total is capped at 2z; local-z keeps every "
             "locally-outlier-looking cloud point on every machine "
             "(linear-z), the paper's motivating gap");
  return 0;
}
