#include "bench_support.hpp"

#include <cmath>
#include <cstdio>

#include "core/cost.hpp"
#include "util/rng.hpp"
#include "workload/streams.hpp"

namespace kc::bench {

void banner(const std::string& experiment_id, const std::string& description,
            std::uint64_t seed) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("seed=%llu (all randomness derives from this)\n",
              static_cast<unsigned long long>(seed));
  std::printf("==============================================================="
              "=================\n");
}

void shape_note(const std::string& text) {
  std::printf("  shape: %s\n", text.c_str());
}

PlantedInstance standard_instance(std::size_t n, int k, std::int64_t z,
                                  std::uint64_t seed, int dim) {
  PlantedConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.z = z;
  cfg.dim = dim;
  cfg.seed = seed;
  return make_planted(cfg);
}

Table1Setup table1_setup(int argc, char** argv,
                         const std::string& experiment_id,
                         const std::string& description, int default_k,
                         double default_eps) {
  const Flags flags(argc, argv);
  Table1Setup setup;
  setup.quick = flags.has("quick");
  setup.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  setup.k = static_cast<int>(flags.get_int("k", default_k));
  setup.eps = flags.get_double("eps", default_eps);
  setup.csv_path = flags.has("csv") ? flags.get_string("csv", "t1.csv") : "";
  setup.json = JsonLog::from_flags(flags);
  banner(experiment_id, description, setup.seed);
  return setup;
}

engine::Workload table1_workload(std::size_t n, int k, std::int64_t z,
                                 std::uint64_t inst_seed, int dim,
                                 std::uint64_t order_seed) {
  engine::Workload w;
  w.planted = standard_instance(n, k, z, inst_seed, dim);
  w.order = shuffled_order(n, order_seed);
  return w;
}

WeightedSet cloud_and_clusters(std::size_t n_cluster, std::size_t n_cloud,
                               int k, std::uint64_t seed) {
  PlantedConfig cfg;
  cfg.n = n_cluster;
  cfg.k = k;
  cfg.z = 0;
  cfg.dim = 2;
  cfg.seed = seed;
  const auto planted = make_planted(cfg);
  WeightedSet pts = planted.points;
  Rng rng(seed ^ 0xabcdefULL);
  // The cloud spans the cluster lattice's extent plus margin.
  const double hi = 40.0 * std::ceil(std::sqrt(static_cast<double>(k))) + 5.0;
  for (std::size_t i = 0; i < n_cloud; ++i) {
    Point p{rng.uniform_real(-5.0, hi), rng.uniform_real(-5.0, hi)};
    pts.push_back({p, 1});
  }
  return pts;
}

double quality_ratio(const WeightedSet& full, const WeightedSet& coreset,
                     int k, std::int64_t z, const Metric& metric) {
  const Solution via = solve_kcenter_outliers(coreset, k, z, metric);
  const double on_full = radius_with_outliers(full, via.centers, z, metric);
  const Solution direct = solve_kcenter_outliers(full, k, z, metric);
  return direct.radius > 0 ? on_full / direct.radius : 1.0;
}

}  // namespace kc::bench
