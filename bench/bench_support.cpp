#include "bench_support.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/cost.hpp"
#include "util/rng.hpp"

namespace kc::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string JsonField::to_json() const {
  // Built with append() — a const char* first operand to operator+ trips a
  // GCC 12 -Wrestrict false positive (see examples/mpc_cluster.cpp).
  std::string out;
  out.append("\"").append(json_escape(key_)).append("\": ");
  char buf[64];
  switch (kind_) {
    case Kind::Int:
      std::snprintf(buf, sizeof buf, "%lld", int_);
      out.append(buf);
      break;
    case Kind::Double:
      std::snprintf(buf, sizeof buf, "%.10g", double_);
      out.append(buf);
      break;
    case Kind::Str:
      out.append("\"").append(json_escape(str_)).append("\"");
      break;
  }
  return out;
}

JsonLog JsonLog::from_flags(const Flags& flags) {
  JsonLog log;
  log.path_ = flags.get_string("json", "");
  log.tag_ = flags.get_string("json-tag", "");
  return log;
}

void JsonLog::record(const std::string& experiment,
                     std::initializer_list<JsonField> fields) const {
  if (!enabled()) return;
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: cannot append bench record to %s\n",
                 path_.c_str());
    return;
  }
  out << "{" << JsonField("experiment", experiment).to_json();
  for (const auto& f : fields) out << ", " << f.to_json();
  if (!tag_.empty()) out << ", " << JsonField("tag", tag_).to_json();
  out << "}\n";
}

void banner(const std::string& experiment_id, const std::string& description,
            std::uint64_t seed) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("seed=%llu (all randomness derives from this)\n",
              static_cast<unsigned long long>(seed));
  std::printf("==============================================================="
              "=================\n");
}

void shape_note(const std::string& text) {
  std::printf("  shape: %s\n", text.c_str());
}

PlantedInstance standard_instance(std::size_t n, int k, std::int64_t z,
                                  std::uint64_t seed, int dim) {
  PlantedConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.z = z;
  cfg.dim = dim;
  cfg.seed = seed;
  return make_planted(cfg);
}

WeightedSet cloud_and_clusters(std::size_t n_cluster, std::size_t n_cloud,
                               int k, std::uint64_t seed) {
  PlantedConfig cfg;
  cfg.n = n_cluster;
  cfg.k = k;
  cfg.z = 0;
  cfg.dim = 2;
  cfg.seed = seed;
  const auto planted = make_planted(cfg);
  WeightedSet pts = planted.points;
  Rng rng(seed ^ 0xabcdefULL);
  // The cloud spans the cluster lattice's extent plus margin.
  const double hi = 40.0 * std::ceil(std::sqrt(static_cast<double>(k))) + 5.0;
  for (std::size_t i = 0; i < n_cloud; ++i) {
    Point p{rng.uniform_real(-5.0, hi), rng.uniform_real(-5.0, hi)};
    pts.push_back({p, 1});
  }
  return pts;
}

double quality_ratio(const WeightedSet& full, const WeightedSet& coreset,
                     int k, std::int64_t z, const Metric& metric) {
  const Solution via = solve_kcenter_outliers(coreset, k, z, metric);
  const double on_full = radius_with_outliers(full, via.centers, z, metric);
  const Solution direct = solve_kcenter_outliers(full, k, z, metric);
  return direct.radius > 0 ? on_full / direct.radius : 1.0;
}

}  // namespace kc::bench
