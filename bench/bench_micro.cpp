// Micro-benchmarks (google-benchmark): per-operation costs of the core
// primitives — MBC construction, radius oracles, streaming insertion,
// sketch updates/decodes, dynamic updates.

#include <benchmark/benchmark.h>

#include "core/charikar.hpp"
#include "core/gonzalez.hpp"
#include "core/mbc.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "sketch/f0_estimator.hpp"
#include "sketch/power_sum.hpp"
#include "sketch/sparse_recovery.hpp"
#include "stream/insertion_only.hpp"
#include "workload/generators.hpp"

namespace {

const kc::Metric kL2{kc::Norm::L2};

kc::PlantedInstance instance(std::size_t n) {
  kc::PlantedConfig cfg;
  cfg.n = n;
  cfg.k = 3;
  cfg.z = 16;
  cfg.dim = 2;
  cfg.seed = 42;
  return kc::make_planted(cfg);
}

void BM_Gonzalez(benchmark::State& state) {
  const auto inst = instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kc::gonzalez(inst.points, 64, kL2));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Gonzalez)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_CharikarOracle(benchmark::State& state) {
  const auto inst = instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kc::charikar_oracle(inst.points, 3, 16, kL2));
  }
}
BENCHMARK(BM_CharikarOracle)->Arg(256)->Arg(512)->Arg(1024);

void BM_MbcConstruct(benchmark::State& state) {
  const auto inst = instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kc::mbc_construct(inst.points, 3, 16, 0.5, kL2));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MbcConstruct)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_StreamInsert(benchmark::State& state) {
  const auto inst = instance(1 << 14);
  std::size_t i = 0;
  kc::stream::InsertionOnlyStream s(3, 16, 0.5, 2, kL2);
  for (auto _ : state) {
    s.insert(inst.points[i % inst.points.size()].p);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamInsert);

void BM_SparseUpdate(benchmark::State& state) {
  kc::sketch::SparseRecovery sk(static_cast<std::size_t>(state.range(0)), 1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    sk.update(kc::splitmix64(key++), +1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseUpdate)->Arg(64)->Arg(512);

void BM_SparseDecode(benchmark::State& state) {
  kc::sketch::SparseRecovery sk(static_cast<std::size_t>(state.range(0)), 1);
  for (std::int64_t i = 0; i < state.range(0); ++i)
    sk.update(kc::splitmix64(static_cast<std::uint64_t>(i)), +1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sk.decode());
  }
}
BENCHMARK(BM_SparseDecode)->Arg(64)->Arg(512);

void BM_F0Update(benchmark::State& state) {
  kc::sketch::F0Estimator est(0.5, 1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    est.update(kc::splitmix64(key++), +1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_F0Update);

void BM_PowerSumUpdate(benchmark::State& state) {
  kc::sketch::PowerSumSketch sk(static_cast<std::size_t>(state.range(0)));
  std::uint64_t key = 0;
  for (auto _ : state) {
    sk.update(key++ % 1024, +1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PowerSumUpdate)->Arg(16)->Arg(64);

void BM_DynamicUpdate(benchmark::State& state) {
  kc::dynamic::DynamicCoresetOptions opt;
  opt.k = 2;
  opt.z = 8;
  opt.eps = 1.0;
  opt.delta = state.range(0);
  opt.dim = 2;
  opt.seed = 7;
  kc::dynamic::DynamicCoreset dc(opt);
  kc::Rng rng(9);
  // Pre-generate points to keep the loop tight.
  std::vector<kc::GridPoint> pts;
  for (int i = 0; i < 1024; ++i) {
    kc::GridPoint p;
    p.dim = 2;
    p.c[0] = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(opt.delta)));
    p.c[1] = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(opt.delta)));
    pts.push_back(p);
  }
  std::size_t i = 0;
  std::int64_t sign = +1;
  for (auto _ : state) {
    dc.update(pts[i % pts.size()], static_cast<int>(sign));
    if (++i % pts.size() == 0) sign = -sign;  // keep the live set bounded
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicUpdate)->Arg(1 << 8)->Arg(1 << 12);

}  // namespace

BENCHMARK_MAIN();
