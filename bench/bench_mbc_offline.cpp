// FIG1 / ABL-ORACLE — mini-ball coverings (paper §2).
//
// Part 1 reproduces Figure 1 numerically: a 2-cluster instance with 5
// outliers, its mini-ball covering, the representative weights, and the
// covering radius versus ε·opt.
//
// Part 2 is the scaling study: MBC size and build time vs n, ε, k, z —
// the Lemma-7 shape k(4ρ/ε)^d + z.
//
// Part 3 is the ABL-ORACLE ablation: Charikar-ladder oracle vs the
// Gonzalez summary oracle vs the oracle-free Gonzalez-packing construction
// (size / covering radius / oracle factor / time).
//
// Part 4 is the HOTPATH timing: the radius oracle, the covering pass, and
// the full construction at n=50k (8k under --quick), recorded to the JSON
// bench log (--json <path>) so the perf trajectory has committed points —
// see BENCH_hotpaths.json at the repo root.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/mbc.hpp"
#include "core/verify.hpp"
#include "geometry/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

// One timed variant of the Part-5 kernel-throughput measurement.
struct KernelTiming {
  double wall_ms = 0.0;
  double check = 0.0;  // anti-DCE checksum; must agree across variants
};

/// Times `sweeps` relax sweeps (rotating centers, persistent keys — the
/// Gonzalez inner-loop access pattern) through one of three bodies:
///  variant 0: the historical AoS scalar loop (branchy relax + inline
///             first-max-wins far tracking over row-major Points),
///  variant 1: the SoA column-at-a-time reference (compute_keys_generic +
///             branchy relax + far_scan),
///  variant 2: the dispatched fused SIMD path (relax_min_keys).
/// All three are semantically identical; the checksum pins that here too.
template <kc::Norm N>
KernelTiming kernel_relax_timing(const std::vector<kc::Point>& aos,
                                 const kc::kernels::PointBuffer& buf,
                                 std::size_t sweeps, int variant) {
  using namespace kc;
  const std::size_t n = aos.size();
  const int dim = buf.dim();
  std::vector<double> keys(n, 1e300), scratch(n);
  std::vector<std::uint32_t> assign(n, 0);
  KernelTiming out;
  Timer timer;
  for (std::size_t s = 0; s < sweeps; ++s) {
    const double* c = aos[(s * 37) % n].coords().data();
    const auto label = static_cast<std::uint32_t>(s);
    kernels::RelaxResult rr;
    if (variant == 0) {
      double far_key = -1.0;
      std::size_t far_idx = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double k2 = kernels::raw_key<N>(aos[i].coords().data(), c, dim);
        if (k2 < keys[i]) {
          keys[i] = k2;
          assign[i] = label;
        }
        if (keys[i] > far_key) {
          far_key = keys[i];
          far_idx = i;
        }
      }
      rr = {far_idx, far_key};
    } else if (variant == 1) {
      kernels::compute_keys_generic<N>(buf, c, scratch.data());
      for (std::size_t i = 0; i < n; ++i) {
        if (scratch[i] < keys[i]) {
          keys[i] = scratch[i];
          assign[i] = label;
        }
      }
      rr = kernels::far_scan(keys.data(), 0, n);
    } else {
      rr = kernels::relax_min_keys<N>(buf, c, label, keys.data(),
                                      assign.data(), scratch.data());
    }
    out.check += rr.far_key + static_cast<double>(rr.far_idx);
  }
  out.wall_ms = timer.millis();
  out.check += keys[n / 2] + static_cast<double>(assign[n / 4]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Metric metric{Norm::L2};
  const JsonLog json = JsonLog::from_flags(flags);

  banner("FIG1/ABL-ORACLE", "mini-ball coverings: the Figure-1 example, "
                            "Lemma-7 scaling, the oracle ablation, and the "
                            "hot-path timings", seed);

  // ---- Part 1: the Figure-1 example ---------------------------------------
  {
    const auto inst = standard_instance(300, 2, 5, seed);
    const double eps = 0.5;
    const MiniBallCovering mbc = mbc_construct(inst.points, 2, 5, eps, metric);
    std::printf("\n[Fig 1] k=2 balls, z=5 outliers, n=300, eps=%g:\n", eps);
    Table t({"quantity", "value"});
    t.add_row({"input points", "300"});
    t.add_row({"mini-balls (reps)",
               fmt_count(static_cast<long long>(mbc.reps.size()))});
    t.add_row({"total weight preserved",
               fmt_count(total_weight(mbc.reps))});
    t.add_row({"covering radius used", fmt(mbc.cover_radius, 4)});
    t.add_row({"max point-to-rep distance",
               fmt(max_assignment_dist(inst.points, mbc, metric), 4)});
    t.add_row({"eps * opt (budget, via opt_hi)", fmt(eps * inst.opt_hi, 4)});
    t.add_row({"oracle radius r (opt<=r<=rho*opt)", fmt(mbc.oracle_radius, 4)});
    t.add_row({"stated rho", fmt(mbc.rho, 2)});
    t.print();
    // The five heaviest reps illustrate the weight structure of Figure 1.
    WeightedSet sorted = mbc.reps;
    std::sort(sorted.begin(), sorted.end(),
              [](const WeightedPoint& a, const WeightedPoint& b) {
                return a.w > b.w;
              });
    std::printf("  heaviest representatives: ");
    for (std::size_t i = 0; i < sorted.size() && i < 5; ++i)
      std::printf("w=%lld at %s  ", static_cast<long long>(sorted[i].w),
                  sorted[i].p.to_string().c_str());
    std::printf("\n");
  }

  // ---- Part 2: Lemma-7 scaling ---------------------------------------------
  {
    std::printf("\n[Lemma 7 scaling] size vs (n, eps, z):\n");
    Table t({"n", "k", "z", "eps", "size", "bound k(4rho/eps)^d+z",
             "cover dist / eps*opt_hi", "build ms"});
    std::vector<std::size_t> ns = quick
                                      ? std::vector<std::size_t>{2000, 8000}
                                      : std::vector<std::size_t>{2000, 8000,
                                                                 32000};
    for (const auto n : ns) {
      const auto inst = standard_instance(n, 3, 16, seed + 1);
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 16, 0.5, metric);
      const double ms = timer.millis();
      t.add_row({fmt_count(static_cast<long long>(n)), "3", "16", "0.5",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt_count(static_cast<long long>(
                     mbc_size_bound(3, 16, 0.5, mbc.rho, 2))),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (0.5 * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("lemma7_scaling",
                  {{"n", static_cast<long long>(n)},
                   {"k", 3},
                   {"z", 16},
                   {"d", 2},
                   {"eps", 0.5},
                   {"size", static_cast<long long>(mbc.reps.size())},
                   {"wall_ms", ms}});
    }
    for (const double eps : {1.0, 0.5, 0.25}) {
      const auto inst = standard_instance(8000, 3, 16, seed + 2);
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 16, eps, metric);
      t.add_row({"8,000", "3", "16", fmt(eps, 2),
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt_count(static_cast<long long>(
                     mbc_size_bound(3, 16, eps, mbc.rho, 2))),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(timer.millis(), 1)});
    }
    for (const std::int64_t z : {4LL, 64LL, 256LL}) {
      const auto inst = standard_instance(8000, 3, z, seed + 3);
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, z, 0.5, metric);
      t.add_row({"8,000", "3", fmt_count(z), "0.5",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt_count(static_cast<long long>(
                     mbc_size_bound(3, z, 0.5, mbc.rho, 2))),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (0.5 * inst.opt_hi),
                     3),
                 fmt(timer.millis(), 1)});
    }
    t.print();
    shape_note("size saturates in n, grows ~(1/eps)^d in eps and +z in z; "
               "covering distance stays below the eps*opt budget (ratio<1)");
  }

  // ---- Part 3: oracle ablation ---------------------------------------------
  {
    // n pinned at 4000: this comparison is about constants, not scale
    // (the Part-4 hot-path timing is where the Charikar path is pushed to
    // n=50k on top of the grid-accelerated greedy).
    std::printf("\n[ABL-ORACLE] radius-oracle choice on n=%d:\n", 4000);
    const auto inst = standard_instance(4000, 3, 24, seed + 4);
    Table t({"construction", "size", "r/opt_hi", "stated rho",
             "max cover / eps*opt_hi", "ms"});
    const double eps = 0.5;
    {
      OracleOptions o;
      o.kind = OracleKind::Charikar;
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 24, eps, metric, o);
      const double ms = timer.millis();
      t.add_row({"charikar-ladder",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt(mbc.oracle_radius / inst.opt_hi, 2), fmt(mbc.rho, 2),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("abl_oracle", {{"construction", "charikar-ladder"},
                                 {"n", 4000},
                                 {"k", 3},
                                 {"z", 24},
                                 {"d", 2},
                                 {"wall_ms", ms}});
    }
    {
      OracleOptions o;
      o.kind = OracleKind::Summary;
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 24, eps, metric, o);
      const double ms = timer.millis();
      t.add_row({"gonzalez-summary",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt(mbc.oracle_radius / inst.opt_hi, 2), fmt(mbc.rho, 2),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("abl_oracle", {{"construction", "gonzalez-summary"},
                                 {"n", 4000},
                                 {"k", 3},
                                 {"z", 24},
                                 {"d", 2},
                                 {"wall_ms", ms}});
    }
    {
      Timer timer;
      const MiniBallCovering mbc =
          mbc_via_gonzalez(inst.points, 3, 24, eps, metric);
      const double ms = timer.millis();
      t.add_row({"gonzalez-packing (oracle-free)",
                 fmt_count(static_cast<long long>(mbc.reps.size())), "-",
                 "1 (packing)",
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("abl_oracle", {{"construction", "gonzalez-packing"},
                                 {"n", 4000},
                                 {"k", 3},
                                 {"z", 24},
                                 {"d", 2},
                                 {"wall_ms", ms}});
    }
    t.print();
    shape_note("all three satisfy the covering budget; the Charikar path "
               "gives the tightest r, the packing path avoids the oracle "
               "entirely at a τ = k(4/eps)^d + z size");
  }

  // ---- Part 4: hot-path timings (the perf trajectory) ----------------------
  {
    const auto hot_n = static_cast<std::size_t>(
        flags.get_int("hot-n", quick ? 8000 : 50000));
    const int k = 3;
    const std::int64_t z = 16;
    const double eps = 0.5;
    std::printf("\n[HOTPATH] radius oracle + covering pass at n=%zu "
                "(Charikar oracle, d=2):\n", hot_n);
    const auto inst = standard_instance(hot_n, k, z, seed + 5);
    OracleOptions o;
    o.kind = OracleKind::Charikar;

    Timer t_oracle;
    const RadiusEstimate est = estimate_radius(inst.points, k, z, metric, o);
    const double oracle_ms = t_oracle.millis();

    const double cover_r = eps * est.radius / est.rho;
    Timer t_cover;
    const MiniBallCovering cover =
        mbc_with_radius(inst.points, cover_r, metric);
    const double cover_ms = t_cover.millis();

    Timer t_total;
    const MiniBallCovering mbc =
        mbc_construct(inst.points, k, z, eps, metric, o);
    const double total_ms = t_total.millis();

    Table t({"stage", "ms", "detail"});
    t.add_row({"estimate_radius (charikar)", fmt(oracle_ms, 1),
               "r=" + fmt(est.radius, 3) + " rho=" + fmt(est.rho, 2)});
    t.add_row({"mbc_with_radius", fmt(cover_ms, 1),
               "reps=" + fmt_count(static_cast<long long>(cover.reps.size()))});
    t.add_row({"mbc_construct (end-to-end)", fmt(total_ms, 1),
               "reps=" + fmt_count(static_cast<long long>(mbc.reps.size()))});
    t.print();
    const auto n_ll = static_cast<long long>(hot_n);
    json.record("hotpath_radius_oracle", {{"n", n_ll},
                                          {"k", k},
                                          {"z", static_cast<long long>(z)},
                                          {"d", 2},
                                          {"oracle", "charikar"},
                                          {"wall_ms", oracle_ms}});
    json.record("hotpath_mbc_cover",
                {{"n", n_ll},
                 {"k", k},
                 {"z", static_cast<long long>(z)},
                 {"d", 2},
                 {"radius", cover_r},
                 {"reps", static_cast<long long>(cover.reps.size())},
                 {"wall_ms", cover_ms}});
    json.record("hotpath_mbc_construct", {{"n", n_ll},
                                          {"k", k},
                                          {"z", static_cast<long long>(z)},
                                          {"d", 2},
                                          {"oracle", "charikar"},
                                          {"eps", eps},
                                          {"wall_ms", total_ms}});
  }

  // ---- Part 5: kernel throughput (points/sec, scalar vs SIMD) --------------
  {
    const auto hot_n = static_cast<std::size_t>(
        flags.get_int("hot-n", quick ? 8000 : 50000));
    // Enough sweeps that each variant runs ~10⁷ point-relaxations.
    const std::size_t sweeps = std::max<std::size_t>(4, 12000000 / hot_n);
    std::printf("\n[KERNEL] relax sweep throughput at n=%zu (%zu sweeps, "
                "persistent keys, rotating centers):\n", hot_n, sweeps);
    Table t({"d", "norm", "variant", "ms", "Mpts/s", "vs scalar"});

    struct Config { int dim; Norm norm; const char* name; };
    const Config configs[] = {{2, Norm::L2, "l2"},
                              {3, Norm::L2, "l2"},
                              {8, Norm::L2, "l2"},
                              {2, Norm::L1, "l1"}};
    const char* variant_names[] = {"scalar_aos", "generic_soa", "simd_soa"};
    for (const auto& cfg : configs) {
      Rng rng(seed + 90 + static_cast<std::uint64_t>(cfg.dim));
      std::vector<Point> aos;
      aos.reserve(hot_n);
      kernels::PointBuffer buf(cfg.dim);
      buf.reserve(hot_n);
      for (std::size_t i = 0; i < hot_n; ++i) {
        Point p(cfg.dim);
        for (int j = 0; j < cfg.dim; ++j) p[j] = rng.uniform_real(0.0, 100.0);
        aos.push_back(p);
        buf.append(p);
      }
      KernelTiming r[3];
      for (int v = 0; v < 3; ++v) {
        r[v] = cfg.norm == Norm::L2
                   ? kernel_relax_timing<Norm::L2>(aos, buf, sweeps, v)
                   : kernel_relax_timing<Norm::L1>(aos, buf, sweeps, v);
        if (r[v].check != r[0].check)
          std::printf("  WARNING: %s checksum mismatch (%.17g vs %.17g)\n",
                      variant_names[v], r[v].check, r[0].check);
        const double pts = static_cast<double>(hot_n) *
                           static_cast<double>(sweeps);
        const double pts_per_sec = pts / (r[v].wall_ms * 1e-3);
        t.add_row({fmt_count(cfg.dim), cfg.name, variant_names[v],
                   fmt(r[v].wall_ms, 1), fmt(pts_per_sec * 1e-6, 1),
                   fmt(r[0].wall_ms / r[v].wall_ms, 2) + "x"});
        json.record("hotpath_kernel_throughput",
                    {{"n", static_cast<long long>(hot_n)},
                     {"d", cfg.dim},
                     {"norm", cfg.name},
                     {"variant", variant_names[v]},
                     {"sweeps", static_cast<long long>(sweeps)},
                     {"wall_ms", r[v].wall_ms},
                     {"pts_per_sec", pts_per_sec}});
      }
    }
    t.print();
    shape_note("the fused SoA path sustains the highest points/sec; the "
               "gap to scalar_aos widens with dimension (contiguous "
               "columns amortize the query broadcast)");
  }
  return 0;
}
