// FIG1 / ABL-ORACLE — mini-ball coverings (paper §2).
//
// Part 1 reproduces Figure 1 numerically: a 2-cluster instance with 5
// outliers, its mini-ball covering, the representative weights, and the
// covering radius versus ε·opt.
//
// Part 2 is the scaling study: MBC size and build time vs n, ε, k, z —
// the Lemma-7 shape k(4ρ/ε)^d + z.
//
// Part 3 is the ABL-ORACLE ablation: Charikar-ladder oracle vs the
// Gonzalez summary oracle vs the oracle-free Gonzalez-packing construction
// (size / covering radius / oracle factor / time).
//
// Part 4 is the HOTPATH timing: the radius oracle, the covering pass, and
// the full construction at n=50k (8k under --quick), recorded to the JSON
// bench log (--json <path>) so the perf trajectory has committed points —
// see BENCH_hotpaths.json at the repo root.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "core/mbc.hpp"
#include "core/verify.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Metric metric{Norm::L2};
  const JsonLog json = JsonLog::from_flags(flags);

  banner("FIG1/ABL-ORACLE", "mini-ball coverings: the Figure-1 example, "
                            "Lemma-7 scaling, the oracle ablation, and the "
                            "hot-path timings", seed);

  // ---- Part 1: the Figure-1 example ---------------------------------------
  {
    const auto inst = standard_instance(300, 2, 5, seed);
    const double eps = 0.5;
    const MiniBallCovering mbc = mbc_construct(inst.points, 2, 5, eps, metric);
    std::printf("\n[Fig 1] k=2 balls, z=5 outliers, n=300, eps=%g:\n", eps);
    Table t({"quantity", "value"});
    t.add_row({"input points", "300"});
    t.add_row({"mini-balls (reps)",
               fmt_count(static_cast<long long>(mbc.reps.size()))});
    t.add_row({"total weight preserved",
               fmt_count(total_weight(mbc.reps))});
    t.add_row({"covering radius used", fmt(mbc.cover_radius, 4)});
    t.add_row({"max point-to-rep distance",
               fmt(max_assignment_dist(inst.points, mbc, metric), 4)});
    t.add_row({"eps * opt (budget, via opt_hi)", fmt(eps * inst.opt_hi, 4)});
    t.add_row({"oracle radius r (opt<=r<=rho*opt)", fmt(mbc.oracle_radius, 4)});
    t.add_row({"stated rho", fmt(mbc.rho, 2)});
    t.print();
    // The five heaviest reps illustrate the weight structure of Figure 1.
    WeightedSet sorted = mbc.reps;
    std::sort(sorted.begin(), sorted.end(),
              [](const WeightedPoint& a, const WeightedPoint& b) {
                return a.w > b.w;
              });
    std::printf("  heaviest representatives: ");
    for (std::size_t i = 0; i < sorted.size() && i < 5; ++i)
      std::printf("w=%lld at %s  ", static_cast<long long>(sorted[i].w),
                  sorted[i].p.to_string().c_str());
    std::printf("\n");
  }

  // ---- Part 2: Lemma-7 scaling ---------------------------------------------
  {
    std::printf("\n[Lemma 7 scaling] size vs (n, eps, z):\n");
    Table t({"n", "k", "z", "eps", "size", "bound k(4rho/eps)^d+z",
             "cover dist / eps*opt_hi", "build ms"});
    std::vector<std::size_t> ns = quick
                                      ? std::vector<std::size_t>{2000, 8000}
                                      : std::vector<std::size_t>{2000, 8000,
                                                                 32000};
    for (const auto n : ns) {
      const auto inst = standard_instance(n, 3, 16, seed + 1);
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 16, 0.5, metric);
      const double ms = timer.millis();
      t.add_row({fmt_count(static_cast<long long>(n)), "3", "16", "0.5",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt_count(static_cast<long long>(
                     mbc_size_bound(3, 16, 0.5, mbc.rho, 2))),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (0.5 * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("lemma7_scaling",
                  {{"n", static_cast<long long>(n)},
                   {"k", 3},
                   {"z", 16},
                   {"d", 2},
                   {"eps", 0.5},
                   {"size", static_cast<long long>(mbc.reps.size())},
                   {"wall_ms", ms}});
    }
    for (const double eps : {1.0, 0.5, 0.25}) {
      const auto inst = standard_instance(8000, 3, 16, seed + 2);
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 16, eps, metric);
      t.add_row({"8,000", "3", "16", fmt(eps, 2),
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt_count(static_cast<long long>(
                     mbc_size_bound(3, 16, eps, mbc.rho, 2))),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(timer.millis(), 1)});
    }
    for (const std::int64_t z : {4LL, 64LL, 256LL}) {
      const auto inst = standard_instance(8000, 3, z, seed + 3);
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, z, 0.5, metric);
      t.add_row({"8,000", "3", fmt_count(z), "0.5",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt_count(static_cast<long long>(
                     mbc_size_bound(3, z, 0.5, mbc.rho, 2))),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (0.5 * inst.opt_hi),
                     3),
                 fmt(timer.millis(), 1)});
    }
    t.print();
    shape_note("size saturates in n, grows ~(1/eps)^d in eps and +z in z; "
               "covering distance stays below the eps*opt budget (ratio<1)");
  }

  // ---- Part 3: oracle ablation ---------------------------------------------
  {
    // n pinned at 4000: this comparison is about constants, not scale
    // (the Part-4 hot-path timing is where the Charikar path is pushed to
    // n=50k on top of the grid-accelerated greedy).
    std::printf("\n[ABL-ORACLE] radius-oracle choice on n=%d:\n", 4000);
    const auto inst = standard_instance(4000, 3, 24, seed + 4);
    Table t({"construction", "size", "r/opt_hi", "stated rho",
             "max cover / eps*opt_hi", "ms"});
    const double eps = 0.5;
    {
      OracleOptions o;
      o.kind = OracleKind::Charikar;
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 24, eps, metric, o);
      const double ms = timer.millis();
      t.add_row({"charikar-ladder",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt(mbc.oracle_radius / inst.opt_hi, 2), fmt(mbc.rho, 2),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("abl_oracle", {{"construction", "charikar-ladder"},
                                 {"n", 4000},
                                 {"k", 3},
                                 {"z", 24},
                                 {"d", 2},
                                 {"wall_ms", ms}});
    }
    {
      OracleOptions o;
      o.kind = OracleKind::Summary;
      Timer timer;
      const MiniBallCovering mbc =
          mbc_construct(inst.points, 3, 24, eps, metric, o);
      const double ms = timer.millis();
      t.add_row({"gonzalez-summary",
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt(mbc.oracle_radius / inst.opt_hi, 2), fmt(mbc.rho, 2),
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("abl_oracle", {{"construction", "gonzalez-summary"},
                                 {"n", 4000},
                                 {"k", 3},
                                 {"z", 24},
                                 {"d", 2},
                                 {"wall_ms", ms}});
    }
    {
      Timer timer;
      const MiniBallCovering mbc =
          mbc_via_gonzalez(inst.points, 3, 24, eps, metric);
      const double ms = timer.millis();
      t.add_row({"gonzalez-packing (oracle-free)",
                 fmt_count(static_cast<long long>(mbc.reps.size())), "-",
                 "1 (packing)",
                 fmt(max_assignment_dist(inst.points, mbc, metric) /
                         (eps * inst.opt_hi),
                     3),
                 fmt(ms, 1)});
      json.record("abl_oracle", {{"construction", "gonzalez-packing"},
                                 {"n", 4000},
                                 {"k", 3},
                                 {"z", 24},
                                 {"d", 2},
                                 {"wall_ms", ms}});
    }
    t.print();
    shape_note("all three satisfy the covering budget; the Charikar path "
               "gives the tightest r, the packing path avoids the oracle "
               "entirely at a τ = k(4/eps)^d + z size");
  }

  // ---- Part 4: hot-path timings (the perf trajectory) ----------------------
  {
    const auto hot_n = static_cast<std::size_t>(
        flags.get_int("hot-n", quick ? 8000 : 50000));
    const int k = 3;
    const std::int64_t z = 16;
    const double eps = 0.5;
    std::printf("\n[HOTPATH] radius oracle + covering pass at n=%zu "
                "(Charikar oracle, d=2):\n", hot_n);
    const auto inst = standard_instance(hot_n, k, z, seed + 5);
    OracleOptions o;
    o.kind = OracleKind::Charikar;

    Timer t_oracle;
    const RadiusEstimate est = estimate_radius(inst.points, k, z, metric, o);
    const double oracle_ms = t_oracle.millis();

    const double cover_r = eps * est.radius / est.rho;
    Timer t_cover;
    const MiniBallCovering cover =
        mbc_with_radius(inst.points, cover_r, metric);
    const double cover_ms = t_cover.millis();

    Timer t_total;
    const MiniBallCovering mbc =
        mbc_construct(inst.points, k, z, eps, metric, o);
    const double total_ms = t_total.millis();

    Table t({"stage", "ms", "detail"});
    t.add_row({"estimate_radius (charikar)", fmt(oracle_ms, 1),
               "r=" + fmt(est.radius, 3) + " rho=" + fmt(est.rho, 2)});
    t.add_row({"mbc_with_radius", fmt(cover_ms, 1),
               "reps=" + fmt_count(static_cast<long long>(cover.reps.size()))});
    t.add_row({"mbc_construct (end-to-end)", fmt(total_ms, 1),
               "reps=" + fmt_count(static_cast<long long>(mbc.reps.size()))});
    t.print();
    const auto n_ll = static_cast<long long>(hot_n);
    json.record("hotpath_radius_oracle", {{"n", n_ll},
                                          {"k", k},
                                          {"z", static_cast<long long>(z)},
                                          {"d", 2},
                                          {"oracle", "charikar"},
                                          {"wall_ms", oracle_ms}});
    json.record("hotpath_mbc_cover",
                {{"n", n_ll},
                 {"k", k},
                 {"z", static_cast<long long>(z)},
                 {"d", 2},
                 {"radius", cover_r},
                 {"reps", static_cast<long long>(cover.reps.size())},
                 {"wall_ms", cover_ms}});
    json.record("hotpath_mbc_construct", {{"n", n_ll},
                                          {"k", k},
                                          {"z", static_cast<long long>(z)},
                                          {"d", 2},
                                          {"oracle", "charikar"},
                                          {"eps", eps},
                                          {"wall_ms", total_ms}});
  }
  return 0;
}
