// T1-SW — sliding-window row of Table 1: the algorithm of [18] uses
// O((kz/ε^d)·log σ) space and Theorem 30 shows that is optimal.
//
// Sweep 1 (σ): streams with spread ratio σ; measured peak stored records
// should grow ~ linearly in log σ.
// Sweep 2 (z): linear growth in z (each mini-cluster keeps z+1 recents).
// Each query is validated against an offline solve of the exact window.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "core/cost.hpp"
#include "stream/sliding_window.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

// Stream with controlled spread: cluster jitter ~1 plus excursions up to σ.
kc::PointSet spread_stream(std::size_t n, double sigma, std::uint64_t seed) {
  kc::Rng rng(seed);
  kc::PointSet out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    kc::Point p(1);
    if (rng.bernoulli(0.05)) {
      p[0] = rng.uniform_real(0.0, sigma);  // excursion
    } else {
      p[0] = 100.0 + rng.uniform_real(0.0, 1.0);
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::stream;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int k = static_cast<int>(flags.get_int("k", 2));
  const double eps = flags.get_double("eps", 1.0);
  const std::int64_t W = flags.get_int("window", 500);
  const Metric metric{Norm::L2};

  banner("T1-SW", "sliding-window space vs spread ratio and z ([18] + "
                  "Theorem 30)", seed);

  // ---- Sweep 1: σ ---------------------------------------------------------
  const std::int64_t z1 = 4;
  std::vector<double> sigmas =
      quick ? std::vector<double>{1 << 4, 1 << 8}
            : std::vector<double>{1 << 4, 1 << 6, 1 << 8, 1 << 10, 1 << 12};
  Table t1({"sigma", "levels", "peak records", "coreset@end", "level",
            "ms"});
  std::vector<double> lx, recs;
  for (const double sigma : sigmas) {
    SlidingWindow sw(k, z1, eps, 1, W, 1.0, sigma, metric);
    const std::size_t n = quick ? 3000 : 8000;
    const auto pts = spread_stream(n, sigma, seed + 5);
    Timer timer;
    for (std::size_t i = 0; i < pts.size(); ++i)
      sw.insert(pts[i], static_cast<std::int64_t>(i + 1));
    const double ms = timer.millis();
    const auto q = sw.query(static_cast<std::int64_t>(pts.size()));
    t1.add_row({fmt_count(static_cast<long long>(sigma)),
                std::to_string(sw.levels()),
                fmt_count(static_cast<long long>(sw.peak_records())),
                fmt_count(static_cast<long long>(q.coreset.size())),
                std::to_string(q.level), fmt(ms, 0)});
    lx.push_back(std::log2(sigma));
    recs.push_back(static_cast<double>(sw.peak_records()));
  }
  std::printf("\n[Sweep 1] spread dependence (k=%d, z=%lld, eps=%g, W=%lld):"
              "\n", k, static_cast<long long>(z1), eps,
              static_cast<long long>(W));
  t1.print();
  if (lx.size() >= 2)
    shape_note("peak records ~ (log sigma)^" + fmt(loglog_slope(lx, recs), 2) +
               " — the log sigma factor of [18], optimal by Theorem 30");

  // ---- Sweep 2: z ---------------------------------------------------------
  const double sigma2 = 1 << 8;
  std::vector<std::int64_t> zs = quick ? std::vector<std::int64_t>{2, 8}
                                       : std::vector<std::int64_t>{2, 8, 32};
  Table t2({"z", "peak records", "records/level", "quality vs window"});
  for (const auto z : zs) {
    SlidingWindow sw(k, z, eps, 1, W, 1.0, sigma2, metric);
    const std::size_t n = quick ? 3000 : 6000;
    const auto pts = spread_stream(n, sigma2, seed + 9);
    for (std::size_t i = 0; i < pts.size(); ++i)
      sw.insert(pts[i], static_cast<std::int64_t>(i + 1));
    const auto now = static_cast<std::int64_t>(pts.size());
    const auto q = sw.query(now);
    // Offline window reference.
    WeightedSet window;
    for (std::size_t i = pts.size() - static_cast<std::size_t>(W);
         i < pts.size(); ++i)
      window.push_back({pts[i], 1});
    double quality = -1.0;
    if (q.level >= 0 && !q.coreset.empty())
      quality = quality_ratio(window, q.coreset, k, z, metric);
    t2.add_row({fmt_count(z),
                fmt_count(static_cast<long long>(sw.peak_records())),
                fmt(static_cast<double>(sw.peak_records()) / sw.levels(), 1),
                fmt(quality, 3)});
  }
  std::printf("\n[Sweep 2] z-dependence (sigma=%g):\n", sigma2);
  t2.print();
  shape_note("records grow ~ linearly in z (each mini-cluster stores z+1 "
             "recents) — the kz/eps^d factor of Table 1");
  return 0;
}
