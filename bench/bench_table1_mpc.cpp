// T1-MPC — regenerates the MPC rows of Table 1 empirically.
//
// For each n (m = ⌈√n⌉ machines) we run:
//   * ceccarello-1r : the 1-round baseline [11] (multiplicative z budget),
//     adversarial partition;
//   * ours-1r       : Algorithm 6 (randomized), random partition;
//   * ours-2r       : Algorithm 2 (deterministic), adversarial partition;
// and report measured peak worker words, coordinator words, communication,
// merged/final coreset sizes, and the quality ratio.
//
// Paper shape targets (Table 1):
//   * worker storage ~ √n for every algorithm (slope ≈ 0.5 in n);
//   * the baseline's storage carries the multiplicative z term — on the
//     z sweep its worker words grow ~linearly in z while ours-2r grows only
//     through the +z at the coordinator and the log(z+1) tables;
//   * ours-2r tolerates the adversarial partition (all outliers on one
//     machine) with no blowup.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "mpc/ceccarello.hpp"
#include "mpc/one_round.hpp"
#include "mpc/partition.hpp"
#include "mpc/two_round.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::mpc;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double eps = flags.get_double("eps", 0.5);
  const int k = static_cast<int>(flags.get_int("k", 4));
  const Metric metric{Norm::L2};

  banner("T1-MPC", "Table 1 MPC rows: measured storage/communication per "
                   "algorithm", seed);

  // ---- Sweep 1: n grows, z = √n/4 ------------------------------------
  std::vector<std::size_t> ns = quick
                                    ? std::vector<std::size_t>{1 << 12, 1 << 13}
                                    : std::vector<std::size_t>{1 << 12, 1 << 13,
                                                               1 << 14, 1 << 15};
  Table t1({"algorithm", "n", "m", "z", "worker words", "coord words",
            "comm words", "merged", "final", "quality", "ms"});
  std::vector<double> xs, ours2_worker;
  for (const auto n : ns) {
    const auto m = static_cast<int>(std::lround(std::sqrt(n)));
    const std::int64_t z = static_cast<std::int64_t>(std::sqrt(n)) / 4;
    const auto inst = standard_instance(n, k, z, seed);

    {  // baseline
      const auto parts =
          partition_points(inst.points, m, PartitionKind::EvenSorted, seed);
      Timer timer;
      CeccarelloOptions opt;
      opt.eps = eps;
      const auto res = ceccarello_coreset(parts, k, z, metric, opt);
      t1.add_row({"ceccarello-1r", fmt_count(static_cast<long long>(n)),
                  std::to_string(m), fmt_count(z),
                  fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                  fmt_count(static_cast<long long>(res.stats.coordinator_words())),
                  fmt_count(static_cast<long long>(res.stats.total_comm_words)),
                  fmt_count(static_cast<long long>(res.merged.size())),
                  fmt_count(static_cast<long long>(res.coreset.size())),
                  fmt(quality_ratio(inst.points, res.coreset, k, z, metric), 3),
                  fmt(timer.millis(), 0)});
    }
    {  // ours, 1 round randomized
      const auto parts =
          partition_points(inst.points, m, PartitionKind::Random, seed + 1);
      Timer timer;
      OneRoundOptions opt;
      opt.eps = eps;
      const auto res = one_round_coreset(parts, k, z, n, metric, opt);
      t1.add_row({"ours-1r", fmt_count(static_cast<long long>(n)),
                  std::to_string(m), fmt_count(z),
                  fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                  fmt_count(static_cast<long long>(res.stats.coordinator_words())),
                  fmt_count(static_cast<long long>(res.stats.total_comm_words)),
                  fmt_count(static_cast<long long>(res.merged.size())),
                  fmt_count(static_cast<long long>(res.coreset.size())),
                  fmt(quality_ratio(inst.points, res.coreset, k, z, metric), 3),
                  fmt(timer.millis(), 0)});
    }
    {  // ours, 2 rounds deterministic, adversarial
      const auto parts =
          partition_points(inst.points, m, PartitionKind::EvenSorted, seed);
      Timer timer;
      TwoRoundOptions opt;
      opt.eps = eps;
      const auto res = two_round_coreset(parts, k, z, metric, opt);
      t1.add_row({"ours-2r", fmt_count(static_cast<long long>(n)),
                  std::to_string(m), fmt_count(z),
                  fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                  fmt_count(static_cast<long long>(res.stats.coordinator_words())),
                  fmt_count(static_cast<long long>(res.stats.total_comm_words)),
                  fmt_count(static_cast<long long>(res.merged.size())),
                  fmt_count(static_cast<long long>(res.coreset.size())),
                  fmt(quality_ratio(inst.points, res.coreset, k, z, metric), 3),
                  fmt(timer.millis(), 0)});
      xs.push_back(static_cast<double>(n));
      ours2_worker.push_back(static_cast<double>(res.stats.max_worker_words()));
    }
  }
  std::printf("\n[Sweep 1] storage vs n (z = sqrt(n)/4, eps=%g, k=%d, "
              "d=2):\n", eps, k);
  t1.print();
  if (xs.size() >= 2)
    shape_note("ours-2r worker words ~ n^" +
               fmt(loglog_slope(xs, ours2_worker), 2) +
               " (Theorem 10 predicts ~ n^0.5)");

  // ---- Sweep 2: z grows at fixed n — the baseline's multiplicative z ---
  // Parameters chosen so the baseline's per-machine budget τ = (k+z)(4/ε)^d
  // stays below the machine load for small z (multiplicative growth
  // visible) and saturates at n/m for large z (ships everything).
  const std::size_t n2 = quick ? (1 << 13) : (1 << 14);
  const int m2 = 32;
  const int k2 = 2;
  const double eps2 = 1.0;
  std::vector<std::int64_t> zs =
      quick ? std::vector<std::int64_t>{4, 16}
            : std::vector<std::int64_t>{4, 8, 16, 32};
  Table t2({"algorithm", "z", "tau/machine", "worker words", "coord words",
            "merged@coord", "final"});
  std::vector<double> zxs, base_merged, ours_merged;
  for (const auto z : zs) {
    const auto inst = standard_instance(n2, k2, z, seed + 2);
    const auto parts =
        partition_points(inst.points, m2, PartitionKind::EvenSorted, seed);
    {
      CeccarelloOptions opt;
      opt.eps = eps2;
      const auto res = ceccarello_coreset(parts, k2, z, metric, opt);
      t2.add_row({"ceccarello-1r", fmt_count(z), fmt_count(res.tau),
                  fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                  fmt_count(static_cast<long long>(res.stats.coordinator_words())),
                  fmt_count(static_cast<long long>(res.merged.size())),
                  fmt_count(static_cast<long long>(res.coreset.size()))});
      zxs.push_back(static_cast<double>(z));
      base_merged.push_back(static_cast<double>(res.merged.size()));
    }
    {
      TwoRoundOptions opt;
      opt.eps = eps2;
      const auto res = two_round_coreset(parts, k2, z, metric, opt);
      t2.add_row({"ours-2r", fmt_count(z), "-",
                  fmt_count(static_cast<long long>(res.stats.max_worker_words())),
                  fmt_count(static_cast<long long>(res.stats.coordinator_words())),
                  fmt_count(static_cast<long long>(res.merged.size())),
                  fmt_count(static_cast<long long>(res.coreset.size()))});
      ours_merged.push_back(static_cast<double>(res.merged.size()));
    }
  }
  std::printf("\n[Sweep 2] z-dependence at n=%zu, m=%d, eps=%g "
              "(adversarial partition):\n", n2, m2, eps2);
  t2.print();
  if (zxs.size() >= 2) {
    shape_note("coordinator-inbound slope in z: baseline " +
               fmt(loglog_slope(zxs, base_merged), 2) + " (tau ~ z per "
               "machine, saturating at n/m), ours-2r " +
               fmt(loglog_slope(zxs, ours_merged), 2) +
               " (additive: Σ(2^j−1) ≤ 2z across ALL machines)");
  }
  std::printf("  note: ours-2r workers also hold the m·2·(log z+2)-word "
              "radius tables (the broadcast of Round 1) — the sqrt(n)"
              "·log(z+1) term of Theorem 10.\n");
  return 0;
}
