// T1-MPC — regenerates the MPC rows of Table 1 empirically, running every
// algorithm through the engine layer (kc::engine::registry()) so each row
// is exactly `one pipeline × one workload × one config`.
//
// For each n (m = ⌈√n⌉ machines) we run:
//   * mpc-ceccarello : the 1-round baseline [11] (multiplicative z budget),
//     adversarial partition;
//   * mpc-1round     : Algorithm 6 (randomized), random partition;
//   * mpc-2round     : Algorithm 2 (deterministic), adversarial partition;
// and report measured peak worker words, coordinator words, communication,
// merged/final coreset sizes, and the quality ratio.
//
// Paper shape targets (Table 1):
//   * worker storage ~ √n for every algorithm (slope ≈ 0.5 in n);
//   * the baseline's storage carries the multiplicative z term — on the
//     z sweep its worker words grow ~linearly in z while ours-2r grows only
//     through the +z at the coordinator and the log(z+1) tables;
//   * ours-2r tolerates the adversarial partition (all outliers on one
//     machine) with no blowup.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "engine/registry.hpp"
#include "mpc/partition.hpp"

namespace {

using namespace kc;
using namespace kc::bench;

/// One engine run = one table row; returns the report for the shape notes.
engine::PipelineReport run_row(Table& table, const std::string& pipeline,
                               const char* label, const engine::Workload& w,
                               const engine::PipelineConfig& cfg,
                               const JsonLog& json) {
  const auto res = engine::run(pipeline, w, cfg);
  const auto& r = res.report;
  table.add_row({label, fmt_count(static_cast<long long>(r.n)),
                 std::to_string(cfg.machines), fmt_count(r.z),
                 fmt_count(static_cast<long long>(r.words)),
                 fmt_count(static_cast<long long>(r.get("coord_words"))),
                 fmt_count(static_cast<long long>(r.comm_words)),
                 fmt_count(static_cast<long long>(r.get("merged_size"))),
                 fmt_count(static_cast<long long>(r.coreset_size)),
                 fmt(r.quality, 3), fmt(r.build_ms, 0)});
  json.record("engine_pipeline", r.json_fields());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup =
      table1_setup(argc, argv, "T1-MPC",
                   "Table 1 MPC rows: measured storage/communication per "
                   "algorithm",
                   /*default_k=*/4, /*default_eps=*/0.5);
  const std::uint64_t seed = setup.seed;

  engine::PipelineConfig base;
  base.k = setup.k;
  base.eps = setup.eps;
  base.dim = 2;

  // ---- Sweep 1: n grows, z = √n/4 ------------------------------------
  std::vector<std::size_t> ns = setup.quick
                                    ? std::vector<std::size_t>{1 << 12, 1 << 13}
                                    : std::vector<std::size_t>{1 << 12, 1 << 13,
                                                               1 << 14, 1 << 15};
  Table t1({"algorithm", "n", "m", "z", "worker words", "coord words",
            "comm words", "merged", "final", "quality", "ms"});
  std::vector<double> xs, ours2_worker;
  for (const auto n : ns) {
    const auto m = static_cast<int>(std::lround(std::sqrt(n)));
    const std::int64_t z = static_cast<std::int64_t>(std::sqrt(n)) / 4;
    engine::Workload w;
    w.planted = standard_instance(n, setup.k, z, seed);

    engine::PipelineConfig cfg = base;
    cfg.z = z;
    cfg.machines = m;

    cfg.partition = mpc::PartitionKind::EvenSorted;
    cfg.partition_seed = seed;
    run_row(t1, "mpc-ceccarello", "ceccarello-1r", w, cfg, setup.json);

    cfg.partition_seed = seed + 1;  // mpc-1round partitions randomly
    run_row(t1, "mpc-1round", "ours-1r", w, cfg, setup.json);

    cfg.partition_seed = seed;
    const auto r2 = run_row(t1, "mpc-2round", "ours-2r", w, cfg, setup.json);
    xs.push_back(static_cast<double>(n));
    ours2_worker.push_back(static_cast<double>(r2.words));
  }
  std::printf("\n[Sweep 1] storage vs n (z = sqrt(n)/4, eps=%g, k=%d, "
              "d=2):\n", setup.eps, setup.k);
  t1.print();
  if (xs.size() >= 2)
    shape_note("ours-2r worker words ~ n^" +
               fmt(loglog_slope(xs, ours2_worker), 2) +
               " (Theorem 10 predicts ~ n^0.5)");

  // ---- Sweep 2: z grows at fixed n — the baseline's multiplicative z ---
  // Parameters chosen so the baseline's per-machine budget τ = (k+z)(4/ε)^d
  // stays below the machine load for small z (multiplicative growth
  // visible) and saturates at n/m for large z (ships everything).
  const std::size_t n2 = setup.quick ? (1 << 13) : (1 << 14);
  std::vector<std::int64_t> zs =
      setup.quick ? std::vector<std::int64_t>{4, 16}
                  : std::vector<std::int64_t>{4, 8, 16, 32};
  engine::PipelineConfig cfg2 = base;
  cfg2.k = 2;
  cfg2.eps = 1.0;
  cfg2.machines = 32;
  cfg2.partition = mpc::PartitionKind::EvenSorted;
  cfg2.partition_seed = seed;
  cfg2.with_extraction = false;  // this sweep reports storage shape only
  Table t2({"algorithm", "z", "tau/machine", "worker words", "coord words",
            "merged@coord", "final"});
  std::vector<double> zxs, base_merged, ours_merged;
  for (const auto z : zs) {
    engine::Workload w;
    w.planted = standard_instance(n2, cfg2.k, z, seed + 2);
    cfg2.z = z;
    {
      const auto res = engine::run("mpc-ceccarello", w, cfg2);
      const auto& r = res.report;
      t2.add_row({"ceccarello-1r", fmt_count(z),
                  fmt_count(static_cast<long long>(r.get("tau"))),
                  fmt_count(static_cast<long long>(r.words)),
                  fmt_count(static_cast<long long>(r.get("coord_words"))),
                  fmt_count(static_cast<long long>(r.get("merged_size"))),
                  fmt_count(static_cast<long long>(r.coreset_size))});
      setup.json.record("engine_pipeline", r.json_fields());
      zxs.push_back(static_cast<double>(z));
      base_merged.push_back(r.get("merged_size"));
    }
    {
      const auto res = engine::run("mpc-2round", w, cfg2);
      const auto& r = res.report;
      t2.add_row({"ours-2r", fmt_count(z), "-",
                  fmt_count(static_cast<long long>(r.words)),
                  fmt_count(static_cast<long long>(r.get("coord_words"))),
                  fmt_count(static_cast<long long>(r.get("merged_size"))),
                  fmt_count(static_cast<long long>(r.coreset_size))});
      setup.json.record("engine_pipeline", r.json_fields());
      ours_merged.push_back(r.get("merged_size"));
    }
  }
  std::printf("\n[Sweep 2] z-dependence at n=%zu, m=%d, eps=%g "
              "(adversarial partition):\n", n2, cfg2.machines, cfg2.eps);
  t2.print();
  if (zxs.size() >= 2) {
    shape_note("coordinator-inbound slope in z: baseline " +
               fmt(loglog_slope(zxs, base_merged), 2) + " (tau ~ z per "
               "machine, saturating at n/m), ours-2r " +
               fmt(loglog_slope(zxs, ours_merged), 2) +
               " (additive: Σ(2^j−1) ≤ 2z across ALL machines)");
  }
  std::printf("  note: ours-2r workers also hold the m·2·(log z+2)-word "
              "radius tables (the broadcast of Round 1) — the sqrt(n)"
              "·log(z+1) term of Theorem 10.\n");

  // ---- Sweep 3: measured map-phase speedup on real cores ---------------
  // The rows above *simulate* m machines; here the simulator fans the
  // per-machine map phase out over a kc::ThreadPool, so the speedup column
  // is measured wall time, not model accounting.  Outputs are bit-identical
  // at every thread count (ordered-reduction determinism); the radius
  // column makes that visible.
  const std::size_t n3 = setup.quick ? (1 << 13) : (1 << 14);
  const auto m3 = static_cast<int>(std::lround(std::sqrt(n3)));
  const std::int64_t z3 = static_cast<std::int64_t>(std::sqrt(n3)) / 4;
  engine::Workload w3;
  w3.planted = standard_instance(n3, setup.k, z3, seed);
  engine::PipelineConfig cfg3 = base;
  cfg3.z = z3;
  cfg3.machines = m3;
  cfg3.partition = mpc::PartitionKind::EvenSorted;
  cfg3.partition_seed = seed;
  cfg3.with_direct_solve = false;  // direct solve would swamp the map timing

  Table t3({"algorithm", "threads", "map ms", "build ms", "speedup",
            "radius"});
  double speedup_at_4 = 0.0;
  for (const std::string& pipeline : {std::string("mpc-2round"),
                                      std::string("mpc-ceccarello")}) {
    double map1 = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      cfg3.num_threads = threads;
      const auto res = engine::run(pipeline, w3, cfg3);
      const auto& r = res.report;
      const double map_ms = r.get("map_ms");
      if (threads == 1) map1 = map_ms;
      const double speedup = map_ms > 0.0 ? map1 / map_ms : 1.0;
      if (pipeline == "mpc-2round" && threads == 4) speedup_at_4 = speedup;
      t3.add_row({pipeline, std::to_string(threads), fmt(map_ms, 1),
                  fmt(r.build_ms, 1), fmt(speedup, 2) + "x",
                  fmt(r.radius, 4)});
      setup.json.record("engine_pipeline", r.json_fields());
    }
  }
  std::printf("\n[Sweep 3] measured map-phase wall time vs threads "
              "(n=%zu, m=%d, z=%lld, adversarial partition):\n", n3, m3,
              static_cast<long long>(z3));
  t3.print();
  shape_note("mpc-2round map-phase speedup at 4 threads: " +
             fmt(speedup_at_4, 2) +
             "x (radius column identical across thread counts — "
             "determinism by ordered reduction)");

  // ---- Sweep 4: measured wire traffic on the process backend -----------
  // Same rows as Sweep 1, but every message physically crosses a Unix-
  // domain socket to a forked worker endpoint as a checksummed frame.
  // `wire bytes` is measured traffic; `pred bytes` is the model's
  // comm_words at 8 bytes/word.  The ratio stays in (1, 2]: framing adds
  // a fixed 57-byte overhead per message and truncated payloads ship
  // their cut tail, but nothing is double-counted.  Result columns are
  // byte-identical to the local-backend rows above (the differential
  // suite in tests/test_transport.cpp pins this).
  const std::size_t n4 = setup.quick ? (1 << 12) : (1 << 13);
  const auto m4 = static_cast<int>(std::lround(std::sqrt(n4)));
  const std::int64_t z4 = static_cast<std::int64_t>(std::sqrt(n4)) / 4;
  engine::Workload w4;
  w4.planted = standard_instance(n4, setup.k, z4, seed);
  engine::PipelineConfig cfg4 = base;
  cfg4.z = z4;
  cfg4.machines = m4;
  cfg4.partition_seed = seed;
  cfg4.backend = mpc::Backend::Process;
  cfg4.with_direct_solve = false;

  Table t4({"algorithm", "m", "comm words", "pred bytes", "wire bytes",
            "ratio", "frames", "route ms", "radius"});
  double worst_ratio = 0.0;
  for (const std::string& pipeline :
       {std::string("mpc-ceccarello"), std::string("mpc-1round"),
        std::string("mpc-2round")}) {
    cfg4.partition =
        pipeline == "mpc-1round" ? mpc::PartitionKind::Random
                                 : mpc::PartitionKind::EvenSorted;
    const auto res = engine::run(pipeline, w4, cfg4);
    const auto& r = res.report;
    const double pred = 8.0 * static_cast<double>(r.comm_words);
    const double ratio = r.get("wire_ratio");
    worst_ratio = std::max(worst_ratio, ratio);
    t4.add_row({pipeline, std::to_string(m4),
                fmt_count(static_cast<long long>(r.comm_words)),
                fmt_count(static_cast<long long>(pred)),
                fmt_count(static_cast<long long>(r.get("wire_bytes"))),
                fmt(ratio, 3),
                fmt_count(static_cast<long long>(r.get("wire_frames"))),
                fmt(r.get("route_ms"), 1), fmt(r.radius, 4)});
    setup.json.record("engine_pipeline", r.json_fields());
  }
  std::printf("\n[Sweep 4] measured wire traffic, process backend "
              "(n=%zu, m=%d, z=%lld, forked worker endpoints):\n", n4, m4,
              static_cast<long long>(z4));
  t4.print();
  shape_note("worst wire_bytes / (8*comm_words) ratio: " +
             fmt(worst_ratio, 3) + " (within the 2x framing budget)");
  return 0;
}
