// FIG5 — the fully dynamic lower-bound construction (Theorem 28):
// Ω((k/ε^d)·log Δ + z).
//
// For a ladder of Δ we instantiate the construction, report the number of
// scale groups g = ½log2 Δ − 2 and the per-cluster point count
// Ω((1/ε^d)·log Δ), check that the construction fits the universe
// (span ≤ Δ for admissible Δ), and verify the scale-m* continuation claim
// (the insertion-only contradiction replayed at scale 2^{m*}).  Finally we
// feed the instance to Algorithm 5 and report how many cells its finest
// decodable grid retains — growing with log Δ, matching the bound's shape.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "core/cost.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "geometry/grid.hpp"
#include "lowerbound/dynamic_lb.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::lowerbound;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Metric metric{Norm::L2};

  banner("FIG5", "Theorem 28 construction: Omega((k/eps^d) log Delta + z)",
         seed);

  std::vector<std::int64_t> deltas =
      quick ? std::vector<std::int64_t>{1 << 10, 1 << 13}
            : std::vector<std::int64_t>{1 << 10, 1 << 13, 1 << 16, 1 << 19};
  Table t1({"Delta", "g=groups", "pts/cluster", "|P(t)|", "span<=Delta",
            "ratio claim"});
  std::vector<double> lx, per_cluster;
  for (const auto delta : deltas) {
    DynamicLbConfig cfg;
    cfg.dim = 2;
    cfg.k = 5;
    cfg.z = 2;
    cfg.delta = delta;
    const auto lb = make_dynamic_lb(cfg);

    std::size_t cluster_pts = 0;
    for (std::size_t i = 0; i < lb.points.size(); ++i)
      if (lb.cluster_of[i] == 0) ++cluster_pts;

    // Scale-m* continuation claim at m* = groups/2.
    const int m_star = std::max(1, lb.groups / 2);
    Point p_star(cfg.dim);
    for (std::size_t i = 0; i < lb.points.size(); ++i)
      if (lb.group_of[i] == m_star && lb.cluster_of[i] == 0) {
        p_star = lb.points[i];
        break;
      }
    WeightedSet coreset;
    for (const auto& p : lb.after_deletions(m_star))
      if (!(p == p_star)) coreset.push_back({p, 1});
    for (const auto& wp : lb.continuation(p_star, m_star))
      coreset.push_back(wp);
    PointSet centers = lb.witness_centers(p_star, m_star);
    for (int c = 1; c < lb.clusters; ++c)
      for (std::size_t i = 0; i < lb.points.size(); ++i)
        if (lb.cluster_of[i] == c && lb.group_of[i] <= m_star) {
          centers.push_back(lb.points[i]);
          break;
        }
    const double r_est = radius_with_outliers(coreset, centers, cfg.z, metric);
    const double scale = std::pow(2.0, m_star);
    const double underestimate = std::max(scale * lb.r, lb.lambda * scale);
    const double true_lb = scale * (lb.h + lb.r) / 2.0;
    const bool ratio_ok = r_est <= underestimate + 1e-9 &&
                          underestimate < (1.0 - lb.config.eps) * true_lb +
                                              lb.lambda * scale;

    t1.add_row({fmt_count(delta), std::to_string(lb.groups),
                fmt_count(static_cast<long long>(cluster_pts)),
                fmt_count(static_cast<long long>(lb.points.size())),
                lb.coordinate_span() <= static_cast<double>(delta) ? "ok"
                                                                   : "n/a",
                ratio_ok ? "ok" : "FAIL"});
    lx.push_back(std::log2(static_cast<double>(delta)));
    per_cluster.push_back(static_cast<double>(cluster_pts));
  }
  std::printf("\n[Fig 5] construction over Delta (k=5, z=2, d=2, "
              "eps=1/16):\n");
  t1.print();
  if (lx.size() >= 2)
    shape_note("points-per-cluster ~ (log Delta)^" +
               fmt(loglog_slope(lx, per_cluster), 2) +
               " — the log Delta factor a dynamic coreset must pay "
               "(Theorem 28)");

  // ---- Algorithm 5 on the construction ------------------------------------
  Table t2({"Delta", "s budget", "cells kept", "grid level", "live"});
  for (const auto delta : quick ? std::vector<std::int64_t>{1 << 10}
                                : std::vector<std::int64_t>{1 << 10, 1 << 13}) {
    DynamicLbConfig cfg;
    cfg.dim = 2;
    cfg.k = 5;
    cfg.z = 2;
    cfg.delta = delta;
    const auto lb = make_dynamic_lb(cfg);
    dynamic::DynamicCoresetOptions opt;
    opt.k = cfg.k;
    opt.z = cfg.z;
    opt.eps = 1.0;
    opt.delta = 2 * delta;  // head-room for the shifted coordinates
    opt.dim = 2;
    opt.seed = seed;
    dynamic::DynamicCoreset dc(opt);
    // Shift construction into [Δ']^2 (outliers have negative x).
    double min_x = 0.0;
    for (const auto& p : lb.points) min_x = std::min(min_x, p[0]);
    for (const auto& p : lb.points) {
      Point q = p;
      q[0] -= min_x;
      dc.update(snap_to_grid(q, opt.delta), +1);
    }
    const auto q = dc.query();
    t2.add_row({fmt_count(delta), fmt_count(dc.sample_budget()),
                fmt_count(static_cast<long long>(q.coreset.size())),
                std::to_string(q.level), fmt_count(dc.live_points())});
  }
  std::printf("\n[Algorithm 5 on the LB instance]\n");
  t2.print();
  shape_note("the sketch keeps the whole instance at a fine level — "
             "the construction forces any (eps,k,z)-coreset to retain all "
             "non-outlier points (Claim 29)");
  return 0;
}
