// APP-DYN — the fully dynamic (3+ε) k-center application (paper §1/§5):
// update and solve costs must be independent of the number of live points
// (they depend on the sketch and coreset sizes only), unlike the Ω(n)-space
// dynamic algorithms of [28, 6].

#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "dynamic/dynamic_kcenter.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::dynamic;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  banner("APP-DYN", "dynamic (3+eps) k-center: update/solve cost vs live "
                    "points", seed);

  DynamicCoresetOptions opt;
  opt.k = 2;
  opt.z = 8;
  opt.eps = 1.0;
  opt.delta = 1 << 10;
  opt.dim = 2;
  opt.seed = seed;

  std::vector<std::size_t> ns = quick
                                    ? std::vector<std::size_t>{512, 2048}
                                    : std::vector<std::size_t>{512, 2048, 8192,
                                                               16384};
  Table t({"live points", "sketch words", "update us", "solve ms",
           "coreset", "radius"});
  std::vector<double> xs, upd;
  for (const auto n : ns) {
    DynamicKCenter dyn(opt);
    const auto inst = standard_instance(n, opt.k, opt.z, seed + 1);
    const auto grid = discretize(inst.points, opt.delta);
    Timer t_updates;
    for (const auto& g : grid) dyn.insert(g);
    const double us_per_update =
        t_updates.micros() / static_cast<double>(grid.size());
    Timer t_solve;
    const auto sol = dyn.solve();
    const double solve_ms = t_solve.millis();
    t.add_row({fmt_count(static_cast<long long>(n)),
               fmt_count(static_cast<long long>(dyn.coreset().words())),
               fmt(us_per_update, 1), fmt(solve_ms, 1),
               fmt_count(static_cast<long long>(sol.coreset_size)),
               sol.ok ? fmt(sol.solution.radius, 3) : "-"});
    xs.push_back(static_cast<double>(n));
    upd.push_back(us_per_update);
  }
  t.print();
  if (xs.size() >= 2)
    shape_note("per-update cost slope in n: " + fmt(loglog_slope(xs, upd), 2) +
               " (≈0: independent of the live-set size; sketch words are "
               "exactly constant)");
  return 0;
}
