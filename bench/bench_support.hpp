// Shared helpers for the experiment harnesses: banner printing, the
// "cloud + clusters" separating workload, quality evaluation, and the
// common Table-1 setup (flag parsing + planted instances + engine
// workloads).  The JSON bench log lives in the library
// (src/util/jsonlog.hpp) so tools/ can use it too.

#pragma once

#include <cstdint>
#include <string>

#include "core/solver.hpp"
#include "core/types.hpp"
#include "engine/pipeline.hpp"
#include "util/flags.hpp"
#include "util/jsonlog.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace kc::bench {

/// Prints the standard experiment banner (id, description, seed) so every
/// run is self-describing and reproducible.
void banner(const std::string& experiment_id, const std::string& description,
            std::uint64_t seed);

/// Prints a one-line observed-shape note (e.g. a log-log slope).
void shape_note(const std::string& text);

/// Planted instance sized for MPC/stream sweeps.
[[nodiscard]] PlantedInstance standard_instance(std::size_t n, int k,
                                                std::int64_t z,
                                                std::uint64_t seed,
                                                int dim = 2);

/// The shared preamble of the bench_table1_* harnesses: parse the common
/// flags (--quick, --seed, --k, --eps, --json, --json-tag), print the
/// banner, and hand back everything the sweeps need.  Deduplicates the
/// copy-pasted setup blocks the three harnesses used to carry.
struct Table1Setup {
  bool quick = false;
  std::uint64_t seed = 1;
  int k = 0;
  double eps = 0.0;
  std::string csv_path;  ///< from --csv; empty = no raw-series dump
  JsonLog json;
};
[[nodiscard]] Table1Setup table1_setup(int argc, char** argv,
                                       const std::string& experiment_id,
                                       const std::string& description,
                                       int default_k, double default_eps);

/// Engine workload over a standard Table-1 instance: planted points from
/// `inst_seed`, arrival order from `order_seed` (the harnesses pin both so
/// refactors reproduce historical numbers exactly).
[[nodiscard]] engine::Workload table1_workload(std::size_t n, int k,
                                               std::int64_t z,
                                               std::uint64_t inst_seed,
                                               int dim,
                                               std::uint64_t order_seed);

/// The ABL-GUESS separating workload: k dense planted clusters plus a wide
/// uniform cloud whose points look like outliers locally but are globally
/// structured (see DESIGN.md).
[[nodiscard]] WeightedSet cloud_and_clusters(std::size_t n_cluster,
                                             std::size_t n_cloud, int k,
                                             std::uint64_t seed);

/// Solve on `coreset`, evaluate the centers on `full`, and return the ratio
/// against a direct solve on `full` (the QUALITY metric).
[[nodiscard]] double quality_ratio(const WeightedSet& full,
                                   const WeightedSet& coreset, int k,
                                   std::int64_t z, const Metric& metric);

}  // namespace kc::bench
