// Shared helpers for the experiment harnesses: banner printing, the
// "cloud + clusters" separating workload, and quality evaluation.

#pragma once

#include <cstdint>
#include <string>

#include "core/solver.hpp"
#include "core/types.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace kc::bench {

/// Prints the standard experiment banner (id, description, seed) so every
/// run is self-describing and reproducible.
void banner(const std::string& experiment_id, const std::string& description,
            std::uint64_t seed);

/// Prints a one-line observed-shape note (e.g. a log-log slope).
void shape_note(const std::string& text);

/// Planted instance sized for MPC/stream sweeps.
[[nodiscard]] PlantedInstance standard_instance(std::size_t n, int k,
                                                std::int64_t z,
                                                std::uint64_t seed,
                                                int dim = 2);

/// The ABL-GUESS separating workload: k dense planted clusters plus a wide
/// uniform cloud whose points look like outliers locally but are globally
/// structured (see DESIGN.md).
[[nodiscard]] WeightedSet cloud_and_clusters(std::size_t n_cluster,
                                             std::size_t n_cloud, int k,
                                             std::uint64_t seed);

/// Solve on `coreset`, evaluate the centers on `full`, and return the ratio
/// against a direct solve on `full` (the QUALITY metric).
[[nodiscard]] double quality_ratio(const WeightedSet& full,
                                   const WeightedSet& coreset, int k,
                                   std::int64_t z, const Metric& metric);

}  // namespace kc::bench
