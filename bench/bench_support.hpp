// Shared helpers for the experiment harnesses: banner printing, the
// "cloud + clusters" separating workload, quality evaluation, and the JSON
// bench log that records the repo's performance trajectory.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include "core/solver.hpp"
#include "core/types.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace kc::bench {

/// Prints the standard experiment banner (id, description, seed) so every
/// run is self-describing and reproducible.
void banner(const std::string& experiment_id, const std::string& description,
            std::uint64_t seed);

/// Prints a one-line observed-shape note (e.g. a log-log slope).
void shape_note(const std::string& text);

/// Planted instance sized for MPC/stream sweeps.
[[nodiscard]] PlantedInstance standard_instance(std::size_t n, int k,
                                                std::int64_t z,
                                                std::uint64_t seed,
                                                int dim = 2);

/// The ABL-GUESS separating workload: k dense planted clusters plus a wide
/// uniform cloud whose points look like outliers locally but are globally
/// structured (see DESIGN.md).
[[nodiscard]] WeightedSet cloud_and_clusters(std::size_t n_cluster,
                                             std::size_t n_cloud, int k,
                                             std::uint64_t seed);

/// Solve on `coreset`, evaluate the centers on `full`, and return the ratio
/// against a direct solve on `full` (the QUALITY metric).
[[nodiscard]] double quality_ratio(const WeightedSet& full,
                                   const WeightedSet& coreset, int k,
                                   std::int64_t z, const Metric& metric);

/// One typed field of a JSON bench record.
class JsonField {
 public:
  JsonField(std::string key, long long v)
      : key_(std::move(key)), kind_(Kind::Int), int_(v) {}
  JsonField(std::string key, int v) : JsonField(std::move(key),
                                               static_cast<long long>(v)) {}
  JsonField(std::string key, double v)
      : key_(std::move(key)), kind_(Kind::Double), double_(v) {}
  JsonField(std::string key, std::string v)
      : key_(std::move(key)), kind_(Kind::Str), str_(std::move(v)) {}
  JsonField(std::string key, const char* v)
      : JsonField(std::move(key), std::string(v)) {}

  /// Serializes as `"key": value`.
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { Int, Double, Str };
  std::string key_;
  Kind kind_;
  long long int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

/// Append-only JSON-lines bench log (one `{...}` record per line), enabled
/// by the harness-wide `--json <path>` flag.  Every record carries the
/// experiment id plus the caller's fields, and an optional `tag` (from
/// `--json-tag`, e.g. a commit id) so trajectories across PRs can be told
/// apart in one file.  Disabled (no file touched) when the flag is absent.
class JsonLog {
 public:
  JsonLog() = default;  ///< disabled

  /// Reads `--json <path>` and `--json-tag <tag>`.
  [[nodiscard]] static JsonLog from_flags(const Flags& flags);

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  /// Appends one record: `{"experiment": ..., <fields>..., "tag": ...}`.
  /// No-op when disabled.
  void record(const std::string& experiment,
              std::initializer_list<JsonField> fields) const;

 private:
  std::string path_;
  std::string tag_;
};

}  // namespace kc::bench
