// FIG2-3 / FIG4 / FIG8 — the insertion-only lower-bound constructions.
//
// For Figures 2–3 (Lemma 12) we instantiate the instance over d and ε,
// print the derived quantities (λ, h, r), and verify every claim of the
// proof numerically:
//   * Lemma 41:  r < (1−ε)(h+r)/2;
//   * Claim 38:  the 2d witness balls of radius r cover the cluster ∪ P±
//                minus p*, for every choice of p*;
//   * Claim 13:  the k+z+1 witness points are pairwise ≥ h+r apart;
//   * the resulting adversarial gap (1−ε)·(h+r)/2 − r > 0.
// We then run Algorithm 3 on P(t) and report its stored size against the
// Ω(k/ε^d + z) bound — the upper and lower bounds bracket each other.
//
// For Figure 4 (Lemma 15) we print the Ω(z) line construction and the
// radius collapse when any point is dropped.
//
// Figure 8 is the appendix geometry behind Claim 38; the same verification
// loop covers it (it is the per-axis center construction).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "core/brute_force.hpp"
#include "core/cost.hpp"
#include "lowerbound/insertion_lb.hpp"
#include "stream/insertion_only.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::lowerbound;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Metric metric{Norm::L2};

  banner("FIG2-3/FIG4/FIG8", "insertion-only lower-bound constructions "
                             "(Lemmas 12 & 15) verified numerically", seed);

  // ---- Figures 2–3: Lemma 12 over (d, ε) ---------------------------------
  struct Config {
    int d;
    double eps;  // 0 = default 1/(8d)
  };
  std::vector<Config> configs = quick
                                    ? std::vector<Config>{{1, 0.0}, {2, 0.0}}
                                    : std::vector<Config>{{1, 0.0},
                                                          {1, 1.0 / 16.0},
                                                          {2, 0.0},
                                                          {2, 1.0 / 32.0},
                                                          {3, 0.0}};
  Table t1({"d", "eps", "lambda", "h", "r", "cluster size", "|P(t)|",
            "lemma41", "claim38", "claim13 sep", "gap"});
  for (const auto& c : configs) {
    InsertionLbConfig cfg;
    cfg.dim = c.d;
    cfg.k = 2 * c.d + 3;
    cfg.z = 3;
    cfg.eps = c.eps;
    const auto lb = make_insertion_lb(cfg);

    // Claim 38 verification over every p* in cluster 0.
    bool claim38 = true;
    const std::size_t c0 = lb.cluster_offsets[0];
    for (std::size_t off = 0; off < lb.cluster_size && claim38; ++off) {
      const Point p_star = lb.points[c0 + off];
      const PointSet centers = lb.witness_centers(p_star);
      for (std::size_t i = 0; i < lb.cluster_size && claim38; ++i) {
        if (i == off) continue;
        double best = 1e300;
        for (const auto& w : centers)
          best = std::min(best, metric.dist(lb.points[c0 + i], w));
        if (best > lb.r + 1e-9) claim38 = false;
      }
      for (const auto& wp : lb.continuation(p_star)) {
        double best = 1e300;
        for (const auto& w : centers) best = std::min(best, metric.dist(wp.p, w));
        if (best > lb.r + 1e-9) claim38 = false;
      }
    }

    // Claim 13: witness separation ≥ h+r.
    const Point p_star = lb.points[c0];
    PointSet witness{p_star};
    for (const auto& wp : lb.continuation(p_star)) witness.push_back(wp.p);
    for (int cl = 1; cl < lb.clusters; ++cl)
      witness.push_back(
          lb.points[lb.cluster_offsets[static_cast<std::size_t>(cl)]]);
    for (auto idx : lb.outlier_indices) witness.push_back(lb.points[idx]);
    double min_sep = 1e300;
    for (std::size_t i = 0; i < witness.size(); ++i)
      for (std::size_t j = i + 1; j < witness.size(); ++j)
        min_sep = std::min(min_sep, metric.dist(witness[i], witness[j]));

    const double gap = (1.0 - lb.config.eps) * (lb.h + lb.r) / 2.0 - lb.r;
    t1.add_row({std::to_string(c.d), fmt(lb.config.eps, 4),
                fmt(lb.lambda, 0), fmt(lb.h, 3), fmt(lb.r, 3),
                fmt_count(static_cast<long long>(lb.cluster_size)),
                fmt_count(static_cast<long long>(lb.points.size())),
                lb.lemma41_holds() ? "ok" : "FAIL", claim38 ? "ok" : "FAIL",
                fmt(min_sep / (lb.h + lb.r), 3), fmt(gap, 3)});
  }
  std::printf("\n[Fig 2-3] Lemma 12 construction (every claim checked):\n");
  t1.print();
  shape_note("cluster size = (lambda+1)^d = Omega(1/eps^d) points the "
             "coreset MUST retain; gap > 0 certifies the contradiction");

  // ---- Upper bound meets lower bound --------------------------------------
  Table t2({"d", "eps", "LB points (must store)", "Alg-3 threshold",
            "Alg-3 stored on LB instance"});
  for (const auto& c : configs) {
    InsertionLbConfig cfg;
    cfg.dim = c.d;
    cfg.k = 2 * c.d + 3;
    cfg.z = 3;
    cfg.eps = c.eps;
    const auto lb = make_insertion_lb(cfg);
    const std::size_t must_store =
        static_cast<std::size_t>(lb.clusters) * lb.cluster_size +
        static_cast<std::size_t>(cfg.z);
    stream::InsertionOnlyStream s(cfg.k, cfg.z, lb.config.eps, c.d, metric);
    for (const auto& p : lb.points) s.insert(p);
    t2.add_row({std::to_string(c.d), fmt(lb.config.eps, 4),
                fmt_count(static_cast<long long>(must_store)),
                fmt_count(static_cast<long long>(s.threshold())),
                fmt_count(static_cast<long long>(s.coreset().size()))});
  }
  std::printf("\n[Theorem 11 vs Theorem 18] lower bound vs Algorithm 3 on "
              "the same instance:\n");
  t2.print();
  shape_note("Algorithm 3 stores every LB point (it must) and its threshold "
             "k(16/eps)^d + z tracks the Omega(k/eps^d + z) bound, constants "
             "apart — the paper's optimality claim");

  // ---- Figure 4: Lemma 15 Ω(z) -------------------------------------------
  Table t3({"k", "z", "|P(t)|", "opt after arrival (discrete)",
            "opt if any point dropped"});
  std::vector<std::pair<int, std::int64_t>> kzs =
      quick ? std::vector<std::pair<int, std::int64_t>>{{2, 4}}
            : std::vector<std::pair<int, std::int64_t>>{{2, 4}, {3, 8},
                                                        {4, 12}};
  for (const auto& [k, z] : kzs) {
    const auto lb = make_omega_z_lb(k, z);
    WeightedSet all = with_unit_weights(lb.points);
    all.push_back({lb.next, 1});
    const double opt_full = brute_force_radius(all, k, z, metric);
    double worst_dropped = 0.0;
    for (std::size_t drop = 0; drop < lb.points.size(); ++drop) {
      WeightedSet coreset;
      for (std::size_t i = 0; i < lb.points.size(); ++i)
        if (i != drop) coreset.push_back({lb.points[i], 1});
      coreset.push_back({lb.next, 1});
      worst_dropped =
          std::max(worst_dropped, brute_force_radius(coreset, k, z, metric));
    }
    t3.add_row({std::to_string(k), fmt_count(z),
                fmt_count(static_cast<long long>(lb.points.size())),
                fmt(opt_full, 3), fmt(worst_dropped, 3)});
  }
  std::printf("\n[Fig 4] Lemma 15 line instance (Omega(k+z), holds for "
              "randomized too):\n");
  t3.print();
  shape_note("dropping ANY of the k+z points collapses the coreset optimum "
             "to 0 while the true optimum is positive — all k+z points must "
             "be stored");
  return 0;
}
