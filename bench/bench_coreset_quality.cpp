// QUALITY — the Definition-1 sandwich, end to end, for every pipeline.
//
// All pipelines build a coreset of the same planted instance; we solve on
// each coreset, evaluate the centers on the full set, and report the ratio
// against the direct solve (same offline solver everywhere, so coreset
// error is isolated).  Paper shape: ratios ≤ 1 + O(ε), shrinking with ε.

#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "core/mbc.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "mpc/multi_round.hpp"
#include "mpc/one_round.hpp"
#include "mpc/partition.hpp"
#include "mpc/two_round.hpp"
#include "stream/insertion_only.hpp"
#include "workload/streams.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int k = 3;
  const std::int64_t z = 12;
  const Metric metric{Norm::L2};

  banner("QUALITY", "coreset pipelines: radius(via coreset)/radius(direct) "
                    "per eps", seed);

  std::vector<double> epses = quick ? std::vector<double>{1.0, 0.5}
                                    : std::vector<double>{1.0, 0.5, 0.25};
  Table t({"pipeline", "eps", "coreset size", "ratio"});
  Summary worst;
  for (const double eps : epses) {
    const std::size_t n = quick ? 1500 : 4000;
    const auto inst = standard_instance(n, k, z, seed);

    {
      const auto mbc = mbc_construct(inst.points, k, z, eps, metric);
      const double ratio = quality_ratio(inst.points, mbc.reps, k, z, metric);
      t.add_row({"offline MBC", fmt(eps, 2),
                 fmt_count(static_cast<long long>(mbc.reps.size())),
                 fmt(ratio, 4)});
      worst.add(ratio);
    }
    {
      const auto parts = mpc::partition_points(
          inst.points, 8, mpc::PartitionKind::EvenSorted, seed);
      mpc::TwoRoundOptions opt;
      opt.eps = eps;
      const auto res = mpc::two_round_coreset(parts, k, z, metric, {}, opt);
      const double ratio =
          quality_ratio(inst.points, res.coreset, k, z, metric);
      t.add_row({"MPC 2-round", fmt(eps, 2),
                 fmt_count(static_cast<long long>(res.coreset.size())),
                 fmt(ratio, 4)});
      worst.add(ratio);
    }
    {
      const auto parts = mpc::partition_points(
          inst.points, 8, mpc::PartitionKind::Random, seed + 1);
      mpc::OneRoundOptions opt;
      opt.eps = eps;
      const auto res =
          mpc::one_round_coreset(parts, k, z, n, metric, {}, opt);
      const double ratio =
          quality_ratio(inst.points, res.coreset, k, z, metric);
      t.add_row({"MPC 1-round", fmt(eps, 2),
                 fmt_count(static_cast<long long>(res.coreset.size())),
                 fmt(ratio, 4)});
      worst.add(ratio);
    }
    {
      const auto parts = mpc::partition_points(
          inst.points, 9, mpc::PartitionKind::RoundRobin, seed);
      mpc::MultiRoundOptions opt;
      opt.eps = eps / 2.0;  // (1+ε/2)²−1 ≈ ε
      opt.rounds = 2;
      const auto res = mpc::multi_round_coreset(parts, k, z, metric, {}, opt);
      const double ratio =
          quality_ratio(inst.points, res.coreset, k, z, metric);
      t.add_row({"MPC R-round (R=2)", fmt(eps, 2),
                 fmt_count(static_cast<long long>(res.coreset.size())),
                 fmt(ratio, 4)});
      worst.add(ratio);
    }
    {
      stream::InsertionOnlyStream s(k, z, eps, 2, metric);
      for (auto idx : shuffled_order(n, seed + 2))
        s.insert(inst.points[idx].p);
      const double ratio =
          quality_ratio(inst.points, s.coreset(), k, z, metric);
      t.add_row({"insertion-only stream", fmt(eps, 2),
                 fmt_count(static_cast<long long>(s.coreset().size())),
                 fmt(ratio, 4)});
      worst.add(ratio);
    }
    {
      dynamic::DynamicCoresetOptions opt;
      opt.k = k;
      opt.z = z;
      opt.eps = eps;
      opt.delta = 1 << 10;
      opt.dim = 2;
      opt.seed = seed + 3;
      dynamic::DynamicCoreset dc(opt);
      const auto grid = discretize(inst.points, opt.delta);
      for (const auto& g : grid) dc.update(g, +1);
      const auto q = dc.query();
      if (q.ok && !q.coreset.empty()) {
        // Evaluate in grid coordinates.
        WeightedSet live;
        for (const auto& g : grid) live.push_back({g.to_point(), 1});
        const double ratio = quality_ratio(live, q.coreset, k, z, metric);
        t.add_row({"dynamic sketch", fmt(eps, 2),
                   fmt_count(static_cast<long long>(q.coreset.size())),
                   fmt(ratio, 4)});
        worst.add(ratio);
      }
    }
  }
  t.print();
  shape_note("worst ratio " + fmt(worst.max(), 3) + ", median " +
             fmt(worst.median(), 3) +
             " — within 1+O(eps) of the direct solve for every pipeline "
             "(Lemma 3 / Definition 1)");
  return 0;
}
