// T1-MPC-RR — the R-round trade-off of Theorem 35 (Algorithm 7).
//
// Fixed n and m; R = 1..4.  Measured max machine storage should follow
// n^{1/(R+1)}·(k/ε^d+z)^{R/(R+1)} (decreasing in R), while the error
// parameter grows as (1+ε)^R − 1 and rounds increase.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "mpc/multi_round.hpp"
#include "mpc/partition.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::mpc;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double eps = flags.get_double("eps", 0.25);
  const int k = static_cast<int>(flags.get_int("k", 3));
  const std::int64_t z = flags.get_int("z", 32);
  const std::size_t n = quick ? (1 << 13) : (1 << 15);
  const int m = static_cast<int>(flags.get_int("m", 64));
  const Metric metric{Norm::L2};

  banner("T1-MPC-RR", "Theorem 35: rounds R vs storage per machine", seed);
  std::printf("n=%zu, m=%d, k=%d, z=%lld, eps=%g, d=2\n\n", n, m, k,
              static_cast<long long>(z), eps);

  const auto inst = standard_instance(n, k, z, seed);
  const auto parts =
      partition_points(inst.points, m, PartitionKind::RoundRobin, seed);

  Table table({"R", "beta", "eps_eff", "max machine words", "pred words",
               "comm words", "final size", "quality", "ms"});
  std::vector<double> rs, storage;
  for (int R = 1; R <= (quick ? 3 : 4); ++R) {
    MultiRoundOptions opt;
    opt.eps = eps;
    opt.rounds = R;
    Timer timer;
    const auto res = multi_round_coreset(parts, k, z, metric, {}, opt);
    const double ms = timer.millis();
    // Theorem 35 prediction (up to constants): n^{1/(R+1)}(k/ε^d+z)^{R/(R+1)}
    const double core_term =
        static_cast<double>(k) / std::pow(eps, 2) + static_cast<double>(z);
    const double pred = std::pow(static_cast<double>(n), 1.0 / (R + 1)) *
                        std::pow(core_term, static_cast<double>(R) / (R + 1));
    std::size_t max_words = res.stats.coordinator_words();
    for (auto w : res.stats.peak_words) max_words = std::max(max_words, w);
    table.add_row({std::to_string(R), std::to_string(res.beta),
                   fmt(res.eps_effective, 3),
                   fmt_count(static_cast<long long>(max_words)),
                   fmt_count(static_cast<long long>(pred)),
                   fmt_count(static_cast<long long>(res.stats.total_comm_words)),
                   fmt_count(static_cast<long long>(res.coreset.size())),
                   fmt(quality_ratio(inst.points, res.coreset, k, z, metric), 3),
                   fmt(ms, 0)});
    rs.push_back(static_cast<double>(R));
    storage.push_back(static_cast<double>(max_words));
  }
  table.print();
  if (storage.size() >= 2 && storage.back() < storage.front())
    shape_note("max storage decreases with R as Theorem 35 predicts "
               "(crossover once beta*coreset < n/m)");
  else
    shape_note("storage flat: per-round coresets already below n/m at this "
               "scale; increase n for the full trade-off");
  return 0;
}
