// T1-STREAM — the insertion-only rows of Table 1.
//
// Sweep 1 (z): peak stored points of Algorithm 3 (threshold k(16/ε)^d + z)
// vs the Ceccarello-style policy ((k+z)(16/ε)^d) vs McCutchen–Khuller
// (O(kz/ε) stored points).  Paper shape: ours grows *additively* in z, the
// baseline and MK multiplicatively.
//
// Sweep 2 (ε): all policies grow like (1/ε)^d; MK like 1/ε.
// Also reports end-solution quality for MK ((4+ε)-style) vs the coreset
// pipeline ((3+ε)(1+ε)-style).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_support.hpp"
#include "core/cost.hpp"
#include "stream/insertion_only.hpp"
#include "stream/mccutchen_khuller.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"
#include "workload/streams.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::stream;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const int dim = 1;  // d=1 keeps thresholds reachable at bench scale
  const Metric metric{Norm::L2};

  banner("T1-STREAM", "Table 1 insertion-only rows: peak stored points",
         seed);

  // Optional raw-series dump for plotting: --csv <path>.
  std::unique_ptr<CsvWriter> csv;
  if (flags.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        flags.get_string("csv", "t1_stream.csv"),
        std::vector<std::string>{"sweep", "algorithm", "z", "eps", "peak",
                                 "bound"});
  }

  // ---- Sweep 1: z --------------------------------------------------------
  const double eps1 = 1.0;
  std::vector<std::int64_t> zs = quick
                                     ? std::vector<std::int64_t>{16, 64}
                                     : std::vector<std::int64_t>{16, 64, 256,
                                                                 512};
  Table t1({"algorithm", "z", "bound", "peak stored", "final", "quality",
            "ms"});
  std::vector<double> zxs, ours_peak, base_peak, mk_peak;
  for (const auto z : zs) {
    const std::size_t n = quick ? 6000 : 20000;
    const auto inst = standard_instance(n, k, z, seed, dim);
    const auto order = shuffled_order(n, seed + 7);
    {
      InsertionOnlyStream s(k, z, eps1, dim, metric, ThresholdPolicy::Ours);
      Timer timer;
      for (auto idx : order) s.insert(inst.points[idx].p);
      t1.add_row({"ours", fmt_count(z),
                  fmt_count(static_cast<long long>(s.threshold())),
                  fmt_count(static_cast<long long>(s.peak_size())),
                  fmt_count(static_cast<long long>(s.coreset().size())),
                  fmt(quality_ratio(inst.points, s.coreset(), k, z, metric), 3),
                  fmt(timer.millis(), 0)});
      zxs.push_back(static_cast<double>(z));
      ours_peak.push_back(static_cast<double>(s.peak_size()));
      if (csv)
        csv->write_row({"z", "ours", std::to_string(z), fmt(eps1, 2),
                        std::to_string(s.peak_size()),
                        std::to_string(s.threshold())});
    }
    {
      InsertionOnlyStream s(k, z, eps1, dim, metric,
                            ThresholdPolicy::Ceccarello);
      Timer timer;
      for (auto idx : order) s.insert(inst.points[idx].p);
      t1.add_row({"ceccarello", fmt_count(z),
                  fmt_count(static_cast<long long>(s.threshold())),
                  fmt_count(static_cast<long long>(s.peak_size())),
                  fmt_count(static_cast<long long>(s.coreset().size())),
                  fmt(quality_ratio(inst.points, s.coreset(), k, z, metric), 3),
                  fmt(timer.millis(), 0)});
      base_peak.push_back(static_cast<double>(s.peak_size()));
      if (csv)
        csv->write_row({"z", "ceccarello", std::to_string(z), fmt(eps1, 2),
                        std::to_string(s.peak_size()),
                        std::to_string(s.threshold())});
    }
    {
      McCutchenKhuller mk(k, z, eps1, metric);
      Timer timer;
      for (auto idx : order) mk.insert(inst.points[idx].p);
      const Solution sol = mk.query();
      const double on_full =
          radius_with_outliers(inst.points, sol.centers, z, metric);
      t1.add_row({"mccutchen-khuller", fmt_count(z), "-",
                  fmt_count(static_cast<long long>(mk.peak_points())), "-",
                  fmt(inst.opt_hi > 0 ? on_full / inst.opt_hi : 0.0, 3),
                  fmt(timer.millis(), 0)});
      mk_peak.push_back(static_cast<double>(mk.peak_points()));
      if (csv)
        csv->write_row({"z", "mccutchen-khuller", std::to_string(z),
                        fmt(eps1, 2), std::to_string(mk.peak_points()), "-"});
    }
  }
  std::printf("\n[Sweep 1] z-dependence (eps=%g, d=%d, k=%d):\n", eps1, dim,
              k);
  t1.print();
  if (zxs.size() >= 2) {
    shape_note("peak-vs-z slope: ours " + fmt(loglog_slope(zxs, ours_peak), 2) +
               " (additive z), ceccarello " +
               fmt(loglog_slope(zxs, base_peak), 2) +
               ", mccutchen-khuller " + fmt(loglog_slope(zxs, mk_peak), 2) +
               " (multiplicative z)");
  }

  // ---- Sweep 2: ε --------------------------------------------------------
  const std::int64_t z2 = 32;
  std::vector<double> epses = quick ? std::vector<double>{1.0, 0.5}
                                    : std::vector<double>{1.0, 0.5, 0.25};
  Table t2({"algorithm", "eps", "bound", "peak stored", "final", "quality"});
  for (const double eps : epses) {
    const std::size_t n = quick ? 6000 : 20000;
    const auto inst = standard_instance(n, k, z2, seed + 3, dim);
    const auto order = shuffled_order(n, seed + 11);
    {
      InsertionOnlyStream s(k, z2, eps, dim, metric, ThresholdPolicy::Ours);
      for (auto idx : order) s.insert(inst.points[idx].p);
      t2.add_row({"ours", fmt(eps, 2),
                  fmt_count(static_cast<long long>(s.threshold())),
                  fmt_count(static_cast<long long>(s.peak_size())),
                  fmt_count(static_cast<long long>(s.coreset().size())),
                  fmt(quality_ratio(inst.points, s.coreset(), k, z2, metric),
                      3)});
    }
    {
      McCutchenKhuller mk(k, z2, eps, metric);
      for (auto idx : order) mk.insert(inst.points[idx].p);
      const Solution sol = mk.query();
      const double on_full =
          radius_with_outliers(inst.points, sol.centers, z2, metric);
      t2.add_row({"mccutchen-khuller", fmt(eps, 2), "-",
                  fmt_count(static_cast<long long>(mk.peak_points())), "-",
                  fmt(inst.opt_hi > 0 ? on_full / inst.opt_hi : 0.0, 3)});
    }
  }
  std::printf("\n[Sweep 2] eps-dependence (z=%lld, d=%d):\n",
              static_cast<long long>(z2), dim);
  t2.print();
  shape_note("ours grows like k(16/eps)^d + z; the lower bound (Theorem 11) "
             "is Omega(k/eps^d + z) — same shape, constant apart");
  return 0;
}
