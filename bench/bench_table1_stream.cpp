// T1-STREAM — the insertion-only rows of Table 1, each row one engine
// pipeline run (stream-insertion under both threshold policies, and the
// McCutchen–Khuller baseline).
//
// Sweep 1 (z): peak stored points of Algorithm 3 (threshold k(16/ε)^d + z)
// vs the Ceccarello-style policy ((k+z)(16/ε)^d) vs McCutchen–Khuller
// (O(kz/ε) stored points).  Paper shape: ours grows *additively* in z, the
// baseline and MK multiplicatively.
//
// Sweep 2 (ε): all policies grow like (1/ε)^d; MK like 1/ε.
// Also reports end-solution quality for MK ((4+ε)-style) vs the coreset
// pipeline ((3+ε)(1+ε)-style).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_support.hpp"
#include "engine/registry.hpp"
#include "util/csv.hpp"

namespace {

using namespace kc;
using namespace kc::bench;

struct StreamRow {
  engine::PipelineReport report;
  double peak = 0.0;  ///< peak stored points (the Table-1 space metric)
};

StreamRow run_insertion(const engine::Workload& w, engine::PipelineConfig cfg,
                        stream::ThresholdPolicy policy, const JsonLog& json) {
  cfg.policy = policy;
  const auto res = engine::run("stream-insertion", w, cfg);
  json.record("engine_pipeline", res.report.json_fields());
  return {res.report, res.report.get("peak_size")};
}

StreamRow run_mk(const engine::Workload& w, engine::PipelineConfig cfg,
                 const JsonLog& json) {
  cfg.with_direct_solve = false;  // MK quality is reported against opt_hi
  const auto res = engine::run("stream-mk", w, cfg);
  json.record("engine_pipeline", res.report.json_fields());
  return {res.report, res.report.get("peak_points")};
}

}  // namespace

int main(int argc, char** argv) {
  const auto setup =
      table1_setup(argc, argv, "T1-STREAM",
                   "Table 1 insertion-only rows: peak stored points",
                   /*default_k=*/3, /*default_eps=*/0.5);
  const std::uint64_t seed = setup.seed;
  const int dim = 1;  // d=1 keeps thresholds reachable at bench scale

  engine::PipelineConfig base;
  base.k = setup.k;
  base.dim = dim;

  // Optional raw-series dump for plotting: --csv <path>.
  std::unique_ptr<CsvWriter> csv;
  if (!setup.csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(
        setup.csv_path,
        std::vector<std::string>{"sweep", "algorithm", "z", "eps", "peak",
                                 "bound"});
  }

  // ---- Sweep 1: z --------------------------------------------------------
  const double eps1 = 1.0;
  std::vector<std::int64_t> zs = setup.quick
                                     ? std::vector<std::int64_t>{16, 64}
                                     : std::vector<std::int64_t>{16, 64, 256,
                                                                 512};
  Table t1({"algorithm", "z", "bound", "peak stored", "final", "quality",
            "ms"});
  std::vector<double> zxs, ours_peak, base_peak, mk_peak;
  for (const auto z : zs) {
    const std::size_t n = setup.quick ? 6000 : 20000;
    const auto w = table1_workload(n, setup.k, z, seed, dim, seed + 7);
    engine::PipelineConfig cfg = base;
    cfg.z = z;
    cfg.eps = eps1;
    {
      const auto row =
          run_insertion(w, cfg, stream::ThresholdPolicy::Ours, setup.json);
      t1.add_row({"ours", fmt_count(z),
                  fmt_count(static_cast<long long>(row.report.get("threshold"))),
                  fmt_count(static_cast<long long>(row.peak)),
                  fmt_count(static_cast<long long>(row.report.coreset_size)),
                  fmt(row.report.quality, 3), fmt(row.report.build_ms, 0)});
      zxs.push_back(static_cast<double>(z));
      ours_peak.push_back(row.peak);
      if (csv)
        csv->write_row({"z", "ours", std::to_string(z), fmt(eps1, 2),
                        std::to_string(static_cast<long long>(row.peak)),
                        std::to_string(static_cast<long long>(
                            row.report.get("threshold")))});
    }
    {
      const auto row = run_insertion(w, cfg, stream::ThresholdPolicy::Ceccarello,
                                     setup.json);
      t1.add_row({"ceccarello", fmt_count(z),
                  fmt_count(static_cast<long long>(row.report.get("threshold"))),
                  fmt_count(static_cast<long long>(row.peak)),
                  fmt_count(static_cast<long long>(row.report.coreset_size)),
                  fmt(row.report.quality, 3), fmt(row.report.build_ms, 0)});
      base_peak.push_back(row.peak);
      if (csv)
        csv->write_row({"z", "ceccarello", std::to_string(z), fmt(eps1, 2),
                        std::to_string(static_cast<long long>(row.peak)),
                        std::to_string(static_cast<long long>(
                            row.report.get("threshold")))});
    }
    {
      const auto row = run_mk(w, cfg, setup.json);
      const double opt_hi = w.planted.opt_hi;
      t1.add_row({"mccutchen-khuller", fmt_count(z), "-",
                  fmt_count(static_cast<long long>(row.peak)), "-",
                  fmt(opt_hi > 0 ? row.report.radius / opt_hi : 0.0, 3),
                  fmt(row.report.build_ms, 0)});
      mk_peak.push_back(row.peak);
      if (csv)
        csv->write_row({"z", "mccutchen-khuller", std::to_string(z),
                        fmt(eps1, 2),
                        std::to_string(static_cast<long long>(row.peak)),
                        "-"});
    }
  }
  std::printf("\n[Sweep 1] z-dependence (eps=%g, d=%d, k=%d):\n", eps1, dim,
              setup.k);
  t1.print();
  if (zxs.size() >= 2) {
    shape_note("peak-vs-z slope: ours " + fmt(loglog_slope(zxs, ours_peak), 2) +
               " (additive z), ceccarello " +
               fmt(loglog_slope(zxs, base_peak), 2) +
               ", mccutchen-khuller " + fmt(loglog_slope(zxs, mk_peak), 2) +
               " (multiplicative z)");
  }

  // ---- Sweep 2: ε --------------------------------------------------------
  const std::int64_t z2 = 32;
  std::vector<double> epses = setup.quick ? std::vector<double>{1.0, 0.5}
                                          : std::vector<double>{1.0, 0.5, 0.25};
  Table t2({"algorithm", "eps", "bound", "peak stored", "final", "quality"});
  for (const double eps : epses) {
    const std::size_t n = setup.quick ? 6000 : 20000;
    const auto w = table1_workload(n, setup.k, z2, seed + 3, dim, seed + 11);
    engine::PipelineConfig cfg = base;
    cfg.z = z2;
    cfg.eps = eps;
    {
      const auto row =
          run_insertion(w, cfg, stream::ThresholdPolicy::Ours, setup.json);
      t2.add_row({"ours", fmt(eps, 2),
                  fmt_count(static_cast<long long>(row.report.get("threshold"))),
                  fmt_count(static_cast<long long>(row.peak)),
                  fmt_count(static_cast<long long>(row.report.coreset_size)),
                  fmt(row.report.quality, 3)});
    }
    {
      const auto row = run_mk(w, cfg, setup.json);
      const double opt_hi = w.planted.opt_hi;
      t2.add_row({"mccutchen-khuller", fmt(eps, 2), "-",
                  fmt_count(static_cast<long long>(row.peak)), "-",
                  fmt(opt_hi > 0 ? row.report.radius / opt_hi : 0.0, 3)});
    }
  }
  std::printf("\n[Sweep 2] eps-dependence (z=%lld, d=%d):\n",
              static_cast<long long>(z2), dim);
  t2.print();
  shape_note("ours grows like k(16/eps)^d + z; the lower bound (Theorem 11) "
             "is Omega(k/eps^d + z) — same shape, constant apart");
  return 0;
}
