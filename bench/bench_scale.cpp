// bench_scale — out-of-core ingest throughput and memory at scale.
//
// Pins the dataset-layer claims (BENCH_scale.json trajectory, gated in CI
// at smoke size by tools/check_bench.py --scale):
//
//  * fixed memory — streaming a `.kcb` through the dataset-capable
//    pipelines holds O(chunk) state, so peak RSS after the largest-n disk
//    run stays within a small factor of the smallest-n one (RSS is a
//    process-wide high-water mark: under an O(n) regression the 10M row
//    would sit ~10x above the 1M row, not within 1.5x);
//  * no ingest tax — streaming from disk sustains >= 50% of the in-memory
//    path's summary-build points/sec at the smallest size;
//  * bit-identity — disk and in-memory runs of the same pipeline report
//    identical result columns (coreset / words / radius).
//
// One "scale_convert" record per generated file, one "scale_ingest" record
// per (n, pipeline, source) run; every record carries peak_rss_mb (stamped
// by the JSON log).  Disk runs come first, in ascending n — the high-water
// mark makes that ordering load-bearing — and the in-memory comparison
// runs last, at the smallest size only (materializing the largest would
// defeat the point).
//
//   bench_scale --quick --json scale_smoke.json --json-tag smoke
//   bench_scale --json BENCH_scale.json --json-tag "PR8"  # committed rows
//
// Flags: --quick (200k/600k instead of 1M/10M), --dir <tmp dir for .kcb
// files> [.], --keep (leave the generated files), --k/--z/--eps/--seed,
// --json/--json-tag.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "dataset/source.hpp"
#include "engine/registry.hpp"
#include "util/rss.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace kc;

/// Points/sec of the summary-build phase (the ingest rate the gates
/// compare; solve/eval time is excluded — it does not scan the input).
double ingest_rate(std::uint64_t n, double build_ms) {
  return build_ms <= 0.0 ? 0.0
                         : static_cast<double>(n) / (build_ms * 1e-3);
}

void record_run(const bench::JsonLog& json, Table& table,
                const engine::PipelineReport& r, std::uint64_t n, int dim,
                const std::string& source) {
  const double rate = ingest_rate(n, r.build_ms);
  json.record("scale_ingest",
              {bench::JsonField("n", static_cast<long long>(n)),
               bench::JsonField("dim", dim),
               bench::JsonField("k", r.k),
               bench::JsonField("z", static_cast<long long>(r.z)),
               bench::JsonField("eps", r.eps),
               bench::JsonField("pipeline", r.pipeline),
               bench::JsonField("source", source),
               bench::JsonField("build_ms", r.build_ms),
               bench::JsonField("solve_ms", r.solve_ms),
               bench::JsonField("pts_per_sec", rate),
               bench::JsonField("coreset",
                                static_cast<long long>(r.coreset_size)),
               bench::JsonField("words", static_cast<long long>(r.words)),
               bench::JsonField("radius", r.radius)});
  table.add_row({fmt_count(static_cast<long long>(n)), r.pipeline, source,
                 fmt(r.build_ms, 1), fmt(rate / 1e6, 2),
                 fmt_count(static_cast<long long>(r.coreset_size)),
                 fmt(r.radius, 4),
                 fmt(static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0),
                     1)});
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bench::JsonLog json = bench::JsonLog::from_flags(flags);
  bench::banner("SCALE-INGEST",
                "out-of-core .kcb ingest: throughput, fixed-memory RSS, and "
                "disk-vs-memory result identity",
                seed);

  const std::vector<std::uint64_t> sizes =
      quick ? std::vector<std::uint64_t>{200'000, 600'000}
            : std::vector<std::uint64_t>{1'000'000, 10'000'000};

  engine::PipelineConfig cfg;
  cfg.k = static_cast<int>(flags.get_int("k", 3));
  cfg.z = flags.get_int("z", 100);
  cfg.eps = flags.get_double("eps", 0.5);
  cfg.dim = 2;
  cfg.seed = seed;
  // The direct solve needs the whole set in memory; both sources run
  // without it so their reports stay comparable column for column.
  cfg.with_direct_solve = false;

  const std::string dir = flags.get_string("dir", ".");
  const std::vector<std::string> pipelines{"stream-insertion", "dynamic"};
  const auto kcb_path = [&dir](std::uint64_t n) {
    return dir + "/scale_" + std::to_string(n) + ".kcb";
  };

  Table table({"n", "pipeline", "source", "build ms", "Mpts/s", "coreset",
               "radius", "peak RSS MB"});

  // Phase 1: convert + disk runs, ascending n.
  for (const std::uint64_t n : sizes) {
    dataset::GeneratedConfig gcfg;
    gcfg.n = n;
    gcfg.dim = cfg.dim;
    gcfg.k = cfg.k;
    gcfg.seed = seed;
    dataset::GeneratedSource gen(gcfg);

    const std::string path = kcb_path(n);
    Timer timer;
    const std::uint64_t written = dataset::write_kcb(path, gen);
    const double write_ms = timer.millis();
    json.record("scale_convert",
                {bench::JsonField("n", static_cast<long long>(written)),
                 bench::JsonField("dim", cfg.dim),
                 bench::JsonField("write_ms", write_ms),
                 bench::JsonField("pts_per_sec", ingest_rate(n, write_ms))});

    auto src = std::make_shared<dataset::KcbSource>(path);
    const engine::Workload w = engine::make_dataset_workload(src);
    for (const auto& name : pipelines)
      record_run(json, table, engine::run(name, w, cfg).report, n, cfg.dim,
                 "kcb");
  }

  // Phase 2: the in-memory comparison, smallest size only, after every
  // disk measurement (it raises the high-water mark past the chunk
  // budget — by design, that is what the disk rows must stay under).
  {
    dataset::KcbSource src(kcb_path(sizes.front()));
    const engine::Workload w = engine::materialize_workload(src);
    for (const auto& name : pipelines)
      record_run(json, table, engine::run(name, w, cfg).report,
                 sizes.front(), cfg.dim, "memory");
  }

  if (!flags.has("keep"))
    for (const std::uint64_t n : sizes) std::remove(kcb_path(n).c_str());

  table.print();
  bench::shape_note(
      "disk rows' peak RSS must be flat in n (fixed chunk budget), and the "
      "kcb/memory rows at the smallest n must agree in every result column");
  return 0;
}
