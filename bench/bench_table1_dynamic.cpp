// T1-DYN — the fully dynamic rows of Table 1 (Algorithm 5, Theorem 21).
//
// Sweep 1 (Δ): measured sketch words vs Δ.  The paper bound is
// O((k/ε^d+z)·log^4(kΔ/εδ)); our substituted sketches are polylog too —
// the point of the row is that storage is polylog in Δ while a point store
// would be linear in the live-set size; we report the measured slope in
// log Δ.
//
// Sweep 2 (z): additive z in the sample budget s = k(4√d/ε)^d + z.
//
// Every configuration also validates the coreset: weights equal the live
// count and the relaxed coreset solves to within a constant of the offline
// direct solve on the live set.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "core/cost.hpp"
#include "dynamic/dynamic_coreset.hpp"
#include "dynamic/naive_store.hpp"
#include "util/timer.hpp"
#include "workload/streams.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::dynamic;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int k = static_cast<int>(flags.get_int("k", 2));
  const Metric metric{Norm::L2};

  banner("T1-DYN", "Table 1 fully dynamic rows: sketch words vs Delta and z",
         seed);

  // ---- Sweep 1: Δ ---------------------------------------------------------
  const std::int64_t z1 = 8;
  std::vector<std::int64_t> deltas =
      quick ? std::vector<std::int64_t>{1 << 6, 1 << 8}
            : std::vector<std::int64_t>{1 << 6, 1 << 8, 1 << 10, 1 << 12};
  Table t1({"Delta", "levels", "s", "sketch words", "naive-store words",
            "live", "coreset", "level used", "quality", "update us"});
  std::vector<double> lx, words;
  for (const auto delta : deltas) {
    DynamicCoresetOptions opt;
    opt.k = k;
    opt.z = z1;
    opt.eps = 1.0;
    opt.delta = delta;
    opt.dim = 2;
    opt.seed = seed;
    DynamicCoreset dc(opt);

    const std::size_t n = quick ? 400 : 1200;
    const auto inst = standard_instance(n, k, z1, seed + 1);
    const auto grid = discretize(inst.points, delta);
    const auto script =
        make_dynamic_script(grid, n / 2, delta, 2, seed + 2);
    NaivePointStore naive(2);  // the Ω(n)-space baseline ([28], [6])
    Timer timer;
    for (const auto& up : script) dc.update(up.p, up.sign);
    const double per_update_us =
        timer.micros() / static_cast<double>(script.size());
    for (const auto& up : script) naive.update(up.p, up.sign);

    const auto q = dc.query();
    WeightedSet live;
    for (const auto& g : grid) live.push_back({g.to_point(), 1});
    const double quality =
        q.ok && !q.coreset.empty()
            ? quality_ratio(live, q.coreset, k, z1, metric)
            : -1.0;
    t1.add_row({fmt_count(delta), std::to_string(dc.grids().levels()),
                fmt_count(dc.sample_budget()),
                fmt_count(static_cast<long long>(dc.words())),
                fmt_count(static_cast<long long>(naive.peak_words())),
                fmt_count(dc.live_points()),
                fmt_count(static_cast<long long>(q.coreset.size())),
                std::to_string(q.level), fmt(quality, 3),
                fmt(per_update_us, 1)});
    lx.push_back(std::log2(static_cast<double>(delta)));
    words.push_back(static_cast<double>(dc.words()));
  }
  std::printf("\n[Sweep 1] Delta-dependence (k=%d, z=%lld, eps=1, d=2):\n", k,
              static_cast<long long>(z1));
  t1.print();
  if (lx.size() >= 2) {
    // Fit words against log2(Delta) on a log-log axis of (logΔ, words):
    const double slope = loglog_slope(lx, words);
    shape_note("sketch words ~ (log Delta)^" + fmt(slope, 2) +
               " — polylog in Delta (paper: log^4).  The naive store is "
               "smaller at this modest live-set size but grows linearly "
               "with the data (slope 1 in n; see APP-DYN for the sketch's "
               "slope-0), which is the Table-1 separation");
  }

  // ---- Sweep 2: z ---------------------------------------------------------
  const std::int64_t delta2 = 1 << 8;
  std::vector<std::int64_t> zs = quick ? std::vector<std::int64_t>{4, 16}
                                       : std::vector<std::int64_t>{4, 16, 64};
  Table t2({"z", "s", "sketch words", "coreset", "quality"});
  for (const auto z : zs) {
    DynamicCoresetOptions opt;
    opt.k = k;
    opt.z = z;
    opt.eps = 1.0;
    opt.delta = delta2;
    opt.dim = 2;
    opt.seed = seed + 3;
    DynamicCoreset dc(opt);
    const std::size_t n = quick ? 400 : 1000;
    const auto inst = standard_instance(n, k, z, seed + 4);
    const auto grid = discretize(inst.points, delta2);
    for (const auto& g : grid) dc.update(g, +1);
    const auto q = dc.query();
    WeightedSet live;
    for (const auto& g : grid) live.push_back({g.to_point(), 1});
    t2.add_row({fmt_count(z), fmt_count(dc.sample_budget()),
                fmt_count(static_cast<long long>(dc.words())),
                fmt_count(static_cast<long long>(q.coreset.size())),
                fmt(q.ok && !q.coreset.empty()
                        ? quality_ratio(live, q.coreset, k, z, metric)
                        : -1.0,
                    3)});
  }
  std::printf("\n[Sweep 2] z-dependence (Delta=%lld):\n",
              static_cast<long long>(delta2));
  t2.print();
  shape_note("s and sketch words grow additively in z (paper: k/eps^d + z "
             "inside the polylog)");
  return 0;
}
