// T1-DYN — the fully dynamic rows of Table 1 (Algorithm 5, Theorem 21),
// each configuration one run of the engine's "dynamic" pipeline; the
// harness keeps only the naive point-store baseline (the Ω(n)-space
// comparison row) and the sweep/printing glue.
//
// Sweep 1 (Δ): measured sketch words vs Δ.  The paper bound is
// O((k/ε^d+z)·log^4(kΔ/εδ)); our substituted sketches are polylog too —
// the point of the row is that storage is polylog in Δ while a point store
// would be linear in the live-set size; we report the measured slope in
// log Δ.
//
// Sweep 2 (z): additive z in the sample budget s = k(4√d/ε)^d + z.
//
// Every configuration also validates the coreset: weights equal the live
// count and the relaxed coreset solves to within a constant of the offline
// direct solve on the live set.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "dynamic/naive_store.hpp"
#include "engine/registry.hpp"
#include "workload/streams.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  const auto setup =
      table1_setup(argc, argv, "T1-DYN",
                   "Table 1 fully dynamic rows: sketch words vs Delta and z",
                   /*default_k=*/2, /*default_eps=*/1.0);
  const std::uint64_t seed = setup.seed;

  engine::PipelineConfig base;
  base.k = setup.k;
  base.eps = setup.eps;
  base.dim = 2;

  // ---- Sweep 1: Δ ---------------------------------------------------------
  const std::int64_t z1 = 8;
  std::vector<std::int64_t> deltas =
      setup.quick ? std::vector<std::int64_t>{1 << 6, 1 << 8}
                  : std::vector<std::int64_t>{1 << 6, 1 << 8, 1 << 10, 1 << 12};
  Table t1({"Delta", "levels", "s", "sketch words", "naive-store words",
            "live", "coreset", "level used", "quality", "update us"});
  std::vector<double> lx, words;
  for (const auto delta : deltas) {
    engine::PipelineConfig cfg = base;
    cfg.z = z1;
    cfg.delta = delta;
    cfg.seed = seed;

    const std::size_t n = setup.quick ? 400 : 1200;
    engine::Workload w;
    w.planted = standard_instance(n, cfg.k, z1, seed + 1);
    w.grid = discretize(w.planted.points, delta);
    w.script = make_dynamic_script(w.grid, n / 2, delta, 2, seed + 2);

    const auto res = engine::run("dynamic", w, cfg);
    const auto& r = res.report;
    setup.json.record("engine_pipeline", r.json_fields());

    dynamic::NaivePointStore naive(2);  // the Ω(n)-space baseline ([28], [6])
    for (const auto& up : w.script) naive.update(up.p, up.sign);

    const bool usable = r.get("ok") > 0 && r.coreset_size > 0;
    t1.add_row({fmt_count(delta),
                std::to_string(static_cast<int>(r.get("levels"))),
                fmt_count(static_cast<long long>(r.get("sample_budget"))),
                fmt_count(static_cast<long long>(r.words)),
                fmt_count(static_cast<long long>(naive.peak_words())),
                fmt_count(static_cast<long long>(r.get("live"))),
                fmt_count(static_cast<long long>(r.coreset_size)),
                std::to_string(static_cast<int>(r.get("level"))),
                fmt(usable ? r.quality : -1.0, 3),
                fmt(r.get("update_us"), 1)});
    lx.push_back(std::log2(static_cast<double>(delta)));
    words.push_back(static_cast<double>(r.words));
  }
  std::printf("\n[Sweep 1] Delta-dependence (k=%d, z=%lld, eps=%g, d=2):\n",
              setup.k, static_cast<long long>(z1), setup.eps);
  t1.print();
  if (lx.size() >= 2) {
    // Fit words against log2(Delta) on a log-log axis of (logΔ, words):
    const double slope = loglog_slope(lx, words);
    shape_note("sketch words ~ (log Delta)^" + fmt(slope, 2) +
               " — polylog in Delta (paper: log^4).  The naive store is "
               "smaller at this modest live-set size but grows linearly "
               "with the data (slope 1 in n; see APP-DYN for the sketch's "
               "slope-0), which is the Table-1 separation");
  }

  // ---- Sweep 2: z ---------------------------------------------------------
  const std::int64_t delta2 = 1 << 8;
  std::vector<std::int64_t> zs = setup.quick
                                     ? std::vector<std::int64_t>{4, 16}
                                     : std::vector<std::int64_t>{4, 16, 64};
  Table t2({"z", "s", "sketch words", "coreset", "quality"});
  for (const auto z : zs) {
    engine::PipelineConfig cfg = base;
    cfg.z = z;
    cfg.delta = delta2;
    cfg.seed = seed + 3;

    const std::size_t n = setup.quick ? 400 : 1000;
    engine::Workload w;
    w.planted = standard_instance(n, cfg.k, z, seed + 4);
    w.grid = discretize(w.planted.points, delta2);
    // No script: the pipeline inserts the discretized points in order.

    const auto res = engine::run("dynamic", w, cfg);
    const auto& r = res.report;
    setup.json.record("engine_pipeline", r.json_fields());
    const bool usable = r.get("ok") > 0 && r.coreset_size > 0;
    t2.add_row({fmt_count(z),
                fmt_count(static_cast<long long>(r.get("sample_budget"))),
                fmt_count(static_cast<long long>(r.words)),
                fmt_count(static_cast<long long>(r.coreset_size)),
                fmt(usable ? r.quality : -1.0, 3)});
  }
  std::printf("\n[Sweep 2] z-dependence (Delta=%lld):\n",
              static_cast<long long>(delta2));
  t2.print();
  shape_note("s and sketch words grow additively in z (paper: k/eps^d + z "
             "inside the polylog)");
  return 0;
}
