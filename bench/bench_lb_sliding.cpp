// FIG6-7 — the sliding-window lower-bound construction (Theorem 30):
// Ω((kz/ε^d)·log σ) under L∞, answering the open question of [18].
//
// For each (k, z, ε, σ) we instantiate the construction, report the group
// count g = ½log σ − 1, subgroups s = λ^d − ((λ+1)/2)^d and the total point
// count Θ(k·z·s·g), verify σ' ≤ σ, and check the Claim-31 quantities: the
// adversarial sets P±_α sit at L∞ distance 2^{j*}ζ·2λ, the group diameter
// is 2^{j*}ζ(2λ−1), and the resulting optimum ratio equals 1−4ε < 1−3ε —
// the drop a (1±ε)-approximation cannot survive if it forgot an expiry.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"
#include "geometry/box.hpp"
#include "lowerbound/sliding_lb.hpp"

int main(int argc, char** argv) {
  using namespace kc;
  using namespace kc::bench;
  using namespace kc::lowerbound;
  const Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const Metric linf{Norm::Linf};

  banner("FIG6-7", "Theorem 30 construction: Omega((kz/eps^d) log sigma) "
                   "under L-infinity", seed);

  struct Config {
    int k;
    std::int64_t z;
    double sigma;
  };
  std::vector<Config> configs =
      quick ? std::vector<Config>{{5, 4, 1 << 12}}
            : std::vector<Config>{{5, 4, 1 << 12},
                                  {5, 9, 1 << 12},
                                  {7, 4, 1 << 12},
                                  {5, 4, 1 << 16}};
  Table t({"k", "z", "sigma", "lambda", "g", "subgrp", "zeta", "|P|",
           "sigma'<=sigma", "gap dist", "diam", "ratio=1-4eps"});
  for (const auto& c : configs) {
    SlidingLbConfig cfg;
    cfg.dim = 2;
    cfg.k = c.k;
    cfg.z = c.z;
    cfg.sigma = c.sigma;
    const auto lb = make_sliding_lb(cfg);

    // Claim-31 quantities at j* = groups/2, subgroup 1 of cluster 0.
    const int j_star = std::max(1, lb.groups / 2);
    PointSet subgroup;
    for (std::size_t i = 0; i < lb.points.size(); ++i)
      if (lb.tags[i].cluster == 0 && lb.tags[i].group == j_star &&
          lb.tags[i].subgroup == 1)
        subgroup.push_back(lb.points[i]);
    const auto adv = lb.adversarial_sets(subgroup, j_star);
    double min_gap = 1e300;
    for (const auto& a : adv)
      for (const auto& s : subgroup)
        min_gap = std::min(min_gap, linf.dist(a, s));
    const double expected_gap =
        std::pow(2.0, j_star) * lb.zeta * 2.0 * lb.lambda;

    PointSet group_pts;
    for (std::size_t i = 0; i < lb.points.size(); ++i)
      if (lb.tags[i].cluster == 0 && lb.tags[i].group <= j_star)
        group_pts.push_back(lb.points[i]);
    const double diam = compute_spread(group_pts, linf).d_max;
    const double diam_bound =
        std::pow(2.0, j_star) * lb.zeta * (2.0 * lb.lambda - 1.0);

    const double ratio = (2.0 * lb.lambda - 1.0) / (2.0 * lb.lambda);
    const bool all_ok = lb.spread_ratio() <= cfg.sigma + 1e-6 &&
                        std::abs(min_gap - expected_gap) < 1e-6 &&
                        diam <= diam_bound + 1e-9 &&
                        std::abs(ratio - (1.0 - 4.0 * lb.config.eps)) < 1e-12;
    t.add_row({std::to_string(c.k), fmt_count(c.z),
               fmt_count(static_cast<long long>(c.sigma)),
               std::to_string(lb.lambda), std::to_string(lb.groups),
               std::to_string(lb.subgroups), std::to_string(lb.zeta),
               fmt_count(static_cast<long long>(lb.points.size())),
               lb.spread_ratio() <= cfg.sigma + 1e-6 ? "ok" : "FAIL",
               fmt(min_gap, 1), fmt(diam, 1),
               all_ok ? fmt(ratio, 4) : "FAIL"});
  }
  t.print();
  shape_note("|P| = (k-2d+1) * g * s * (z+1) = Theta((kz/eps^d) log sigma) "
             "distinct expiry times the algorithm must track; the ratio "
             "1-4eps < 1-3eps certifies the (1±eps) violation (Claim 31)");

  // Growth of the instance with each parameter (the Ω-shape itself).
  Table t2({"varying", "value", "|P| (points = expiry slots)"});
  for (const std::int64_t z : {4LL, 9LL, 16LL}) {
    SlidingLbConfig cfg;
    cfg.dim = 2;
    cfg.k = 5;
    cfg.z = z;
    cfg.sigma = 1 << 12;
    const auto lb = make_sliding_lb(cfg);
    t2.add_row({"z", fmt_count(z),
                fmt_count(static_cast<long long>(lb.points.size()))});
  }
  for (const double sig : {double(1 << 8), double(1 << 12), double(1 << 16)}) {
    SlidingLbConfig cfg;
    cfg.dim = 2;
    cfg.k = 5;
    cfg.z = 4;
    cfg.sigma = sig;
    const auto lb = make_sliding_lb(cfg);
    t2.add_row({"sigma", fmt_count(static_cast<long long>(sig)),
                fmt_count(static_cast<long long>(lb.points.size()))});
  }
  std::printf("\n[Instance growth]\n");
  t2.print();
  return 0;
}
