// kcenter_cli — the engine driver: run any registered pipeline (or all of
// them) on a generated workload under any metric, and report the Table-1
// quantities uniformly.  One JSON record per run with --json (the format
// the repo's BENCH_engine.json trajectory and the CI engine-smoke artifact
// use).
//
//   kcenter_cli --list
//   kcenter_cli --pipeline mpc-2round --n 8192 --m 64 --partition adversarial
//   kcenter_cli --pipeline all --n 4000 --k 3 --z 16 --eps 0.5 --norm linf
//               --json engine.json --json-tag "$(git rev-parse --short HEAD)"
//
// Unknown flags are an error (usage text + exit 2), so a typo'd flag in a
// CI smoke step fails the job instead of silently running the defaults.

#include <cstdio>
#include <string>
#include <vector>

#include "kcenter.hpp"

namespace {

using namespace kc;

constexpr const char kUsage[] =
    "usage: kcenter_cli [flags]   (defaults in brackets)\n"
    "  --list                        print the pipeline catalogue and exit\n"
    "  --pipeline <name>|all [all]   registered pipeline name (see --list)\n"
    "  --n/--k/--z/--eps/--dim       problem parameters [4000/3/16/0.5/2]\n"
    "  --norm l2|l1|linf             metric [l2]\n"
    "  --seed <s>                    instance + sketch seed [1]\n"
    "  --threads <N>                 thread-pool size for the MPC map phase\n"
    "                                and batch kernels; 0 = hardware [1]\n"
    "  --m/--partition/--rounds      MPC knobs [8/adversarial/2]\n"
    "  --policy ours|ceccarello      insertion-only threshold policy [ours]\n"
    "  --window <W>                  sliding-window length (0 = whole stream)\n"
    "  --delta <D>                   dynamic universe side [256]\n"
    "  --det-recovery                dynamic: deterministic power-sum sketch\n"
    "  --no-direct                   skip the direct solve (radius only)\n"
    "  --json <path> --json-tag <t>  append one JSON record per pipeline run\n"
    "  --help                        print this text and exit\n";

const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> flags{
      "list",   "pipeline", "n",      "k",        "z",           "eps",
      "dim",    "norm",     "seed",   "threads",  "m",           "partition",
      "rounds", "policy",   "window", "delta",    "det-recovery",
      "no-direct", "json",  "json-tag", "help"};
  return flags;
}

Norm parse_norm(const std::string& name) {
  if (name == "l1") return Norm::L1;
  if (name == "linf") return Norm::Linf;
  if (name != "l2")
    std::fprintf(stderr, "warning: unknown norm '%s', using l2\n",
                 name.c_str());
  return Norm::L2;
}

mpc::PartitionKind parse_partition(const std::string& name) {
  if (name == "random") return mpc::PartitionKind::Random;
  if (name == "roundrobin") return mpc::PartitionKind::RoundRobin;
  if (name != "adversarial")
    std::fprintf(stderr, "warning: unknown partition '%s', using adversarial\n",
                 name.c_str());
  return mpc::PartitionKind::EvenSorted;
}

void print_catalogue() {
  std::printf("registered pipelines (kc::engine::registry()):\n\n");
  Table table({"name", "model", "description"});
  for (const auto& name : engine::registry().names()) {
    const auto pipeline = engine::registry().make(name);
    table.add_row({name, pipeline->model(), pipeline->description()});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const auto unknown = flags.unknown_flags(known_flags());
  if (!unknown.empty() || !flags.positional().empty()) {
    for (const auto& name : unknown)
      std::fprintf(stderr, "error: unknown flag '--%s'\n", name.c_str());
    // Single-dash typos ("-threads") and stray words land here: the CLI
    // takes no positional arguments, so any are a mistake.
    for (const auto& arg : flags.positional())
      std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (flags.has("list")) {
    print_catalogue();
    return 0;
  }

  engine::PipelineConfig cfg;
  cfg.k = static_cast<int>(flags.get_int("k", 3));
  cfg.z = flags.get_int("z", 16);
  cfg.eps = flags.get_double("eps", 0.5);
  cfg.dim = static_cast<int>(flags.get_int("dim", 2));
  cfg.norm = parse_norm(flags.get_string("norm", "l2"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.with_direct_solve = !flags.has("no-direct");
  cfg.machines = static_cast<int>(flags.get_int("m", 8));
  cfg.partition = parse_partition(flags.get_string("partition", "adversarial"));
  cfg.partition_seed = cfg.seed;
  cfg.rounds = static_cast<int>(flags.get_int("rounds", 2));
  cfg.policy = flags.get_string("policy", "ours") == "ceccarello"
                   ? stream::ThresholdPolicy::Ceccarello
                   : stream::ThresholdPolicy::Ours;
  cfg.window = flags.get_int("window", 0);
  cfg.delta = flags.get_int("delta", 256);
  cfg.deterministic_recovery = flags.has("det-recovery");
  cfg.num_threads = static_cast<int>(flags.get_int("threads", 1));

  const auto n = static_cast<std::size_t>(flags.get_int("n", 4000));
  const std::string which = flags.get_string("pipeline", "all");
  std::vector<std::string> names;
  if (which == "all") {
    names = engine::registry().names();
  } else if (engine::registry().contains(which)) {
    names.push_back(which);
  } else {
    std::fprintf(stderr, "error: unknown pipeline '%s'; --list shows the "
                         "catalogue\n", which.c_str());
    return 1;
  }

  const bench::JsonLog json = bench::JsonLog::from_flags(flags);
  const engine::Workload workload = engine::make_workload(n, cfg);

  std::printf("kcenter_cli: n=%zu k=%d z=%lld eps=%g dim=%d norm=%s seed=%llu "
              "(planted opt in [%.4f, %.4f])\n\n",
              n, cfg.k, static_cast<long long>(cfg.z), cfg.eps, cfg.dim,
              cfg.metric().name(),
              static_cast<unsigned long long>(cfg.seed),
              workload.planted.opt_lo, workload.planted.opt_hi);

  Table table({"pipeline", "model", "coreset", "words", "rounds", "comm",
               "radius", "quality", "build ms", "solve ms"});
  bool any_grid_space = false;
  for (const auto& name : names) {
    const auto res = engine::run(name, workload, cfg);
    const auto& r = res.report;
    const bool grid_space = r.get("grid_space") > 0;
    any_grid_space = any_grid_space || grid_space;
    table.add_row({r.pipeline, r.model,
                   fmt_count(static_cast<long long>(r.coreset_size)),
                   fmt_count(static_cast<long long>(r.words)),
                   std::to_string(r.rounds),
                   fmt_count(static_cast<long long>(r.comm_words)),
                   fmt(r.radius, 4) + (grid_space ? "*" : ""),
                   cfg.with_direct_solve ? fmt(r.quality, 3) : "-",
                   fmt(r.build_ms, 1), fmt(r.solve_ms, 1)});
    json.record("engine_pipeline", r.json_fields());
  }
  table.print();
  if (any_grid_space)
    std::printf("\n  * radius in discretized [Delta]^d coordinates (scale "
                "set by --delta); compare via the scale-free quality "
                "column, not across rows.\n");
  return 0;
}
