// kcenter_cli — the engine driver: run any registered pipeline (or all of
// them) on a generated workload under any metric, and report the Table-1
// quantities uniformly.  One JSON record per run with --json (the format
// the repo's BENCH_engine.json trajectory and the CI engine-smoke artifact
// use).
//
//   kcenter_cli --list
//   kcenter_cli --pipeline mpc-2round --n 8192 --m 64 --partition adversarial
//   kcenter_cli --pipeline all --n 4000 --k 3 --z 16 --eps 0.5 --norm linf
//               --json engine.json --json-tag "$(git rev-parse --short HEAD)"
//
// Unknown flags are an error (usage text + exit 2), so a typo'd flag in a
// CI smoke step fails the job instead of silently running the defaults.

#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "kcenter.hpp"

namespace {

using namespace kc;

constexpr const char kUsage[] =
    "usage: kcenter_cli [flags]   (defaults in brackets)\n"
    "  --list                        print the pipeline catalogue and exit\n"
    "  --pipeline <name>|all [all]   registered pipeline name (see --list)\n"
    "  --n/--k/--z/--eps/--dim       problem parameters [4000/3/16/0.5/2]\n"
    "  --norm l2|l1|linf             metric [l2]\n"
    "  --seed <s>                    instance + sketch seed [1]\n"
    "  --threads <N>                 thread-pool size for the MPC map phase\n"
    "                                and batch kernels; 0 = hardware [1]\n"
    "  --m/--partition/--rounds      MPC knobs [8/adversarial/2]\n"
    "  --machines <m>                alias for --m\n"
    "  --backend local|process       MPC message transport [local].\n"
    "                                process forks one worker endpoint per\n"
    "                                machine and ships every message as a\n"
    "                                checksummed wire frame, reporting\n"
    "                                measured wire_bytes/wire_ratio next to\n"
    "                                the predicted comm_words; result\n"
    "                                columns are byte-identical to local\n"
    "  --policy ours|ceccarello      insertion-only threshold policy [ours]\n"
    "  --window <W>                  sliding-window length (0 = whole stream)\n"
    "  --delta <D>                   dynamic universe side [256]\n"
    "  --det-recovery                dynamic: deterministic power-sum sketch\n"
    "  --input <csv|kcb>             cluster a file instead of a generated\n"
    "                                workload.  CSV: one point per line\n"
    "                                (strict parse; with --weighted the\n"
    "                                last column is an integer weight).\n"
    "                                .kcb (see kcb_convert): streamed out\n"
    "                                of core in fixed memory by dataset-\n"
    "                                capable pipelines; others materialize\n"
    "                                the file if it is small enough\n"
    "  --weighted                    --input: last CSV column is a weight\n"
    "  --fault-seed <s>              MPC fault-schedule seed [0]\n"
    "  --fault-crash/--fault-drop    per-attempt crash / message-drop\n"
    "                                probabilities [0/0]\n"
    "  --fault-truncate <p>          point-message truncation probability [0]\n"
    "  --fault-straggle <p>          per machine-round straggler prob [0]\n"
    "  --fault-retries <r>           transport retry budget [2]\n"
    "  --fault-policy retry|reassign|degrade\n"
    "                                recovery past the retry budget [retry]\n"
    "  --no-direct                   skip the direct solve (radius only)\n"
    "  --json <path> --json-tag <t>  append one JSON record per pipeline run\n"
    "  --help                        print this text and exit\n";

const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> flags{
      "list",   "pipeline", "n",      "k",        "z",           "eps",
      "dim",    "norm",     "seed",   "threads",  "m",           "machines",
      "backend", "partition",
      "rounds", "policy",   "window", "delta",    "det-recovery",
      "no-direct", "json",  "json-tag", "input",  "weighted",
      "fault-seed", "fault-crash", "fault-drop", "fault-truncate",
      "fault-straggle", "fault-retries", "fault-policy", "help"};
  return flags;
}

Norm parse_norm(const std::string& name) {
  if (name == "l1") return Norm::L1;
  if (name == "linf") return Norm::Linf;
  if (name != "l2")
    std::fprintf(stderr, "warning: unknown norm '%s', using l2\n",
                 name.c_str());
  return Norm::L2;
}

mpc::PartitionKind parse_partition(const std::string& name) {
  if (name == "random") return mpc::PartitionKind::Random;
  if (name == "roundrobin") return mpc::PartitionKind::RoundRobin;
  if (name != "adversarial")
    std::fprintf(stderr, "warning: unknown partition '%s', using adversarial\n",
                 name.c_str());
  return mpc::PartitionKind::EvenSorted;
}

void print_catalogue() {
  std::printf("registered pipelines (kc::engine::registry()):\n\n");
  Table table({"name", "model", "description"});
  for (const auto& name : engine::registry().names()) {
    const auto pipeline = engine::registry().make(name);
    table.add_row({name, pipeline->model(), pipeline->description()});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const auto unknown = flags.unknown_flags(known_flags());
  if (!unknown.empty() || !flags.positional().empty()) {
    for (const auto& name : unknown)
      std::fprintf(stderr, "error: unknown flag '--%s'\n", name.c_str());
    // Single-dash typos ("-threads") and stray words land here: the CLI
    // takes no positional arguments, so any are a mistake.
    for (const auto& arg : flags.positional())
      std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (flags.has("list")) {
    print_catalogue();
    return 0;
  }

  engine::PipelineConfig cfg;
  cfg.k = static_cast<int>(flags.get_int("k", 3));
  cfg.z = flags.get_int("z", 16);
  cfg.eps = flags.get_double("eps", 0.5);
  cfg.dim = static_cast<int>(flags.get_int("dim", 2));
  cfg.norm = parse_norm(flags.get_string("norm", "l2"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.with_direct_solve = !flags.has("no-direct");
  // --machines is the transport-era alias of --m; given both, --machines
  // wins (it is the more explicit spelling).
  cfg.machines = static_cast<int>(
      flags.has("machines") ? flags.get_int("machines", 8)
                            : flags.get_int("m", 8));
  if (cfg.machines < 1) {
    std::fprintf(stderr, "error: --machines must be >= 1 (got %d)\n",
                 cfg.machines);
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (!mpc::parse_backend(flags.get_string("backend", "local"),
                          &cfg.backend)) {
    std::fprintf(stderr, "error: unknown --backend '%s' (local|process)\n",
                 flags.get_string("backend", "local").c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  cfg.partition = parse_partition(flags.get_string("partition", "adversarial"));
  cfg.partition_seed = cfg.seed;
  cfg.rounds = static_cast<int>(flags.get_int("rounds", 2));
  cfg.policy = flags.get_string("policy", "ours") == "ceccarello"
                   ? stream::ThresholdPolicy::Ceccarello
                   : stream::ThresholdPolicy::Ours;
  cfg.window = flags.get_int("window", 0);
  cfg.delta = flags.get_int("delta", 256);
  cfg.deterministic_recovery = flags.has("det-recovery");
  cfg.num_threads = static_cast<int>(flags.get_int("threads", 1));
  cfg.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  cfg.fault_crash = flags.get_double("fault-crash", 0.0);
  cfg.fault_drop = flags.get_double("fault-drop", 0.0);
  cfg.fault_truncate = flags.get_double("fault-truncate", 0.0);
  cfg.fault_straggle = flags.get_double("fault-straggle", 0.0);
  cfg.fault_retries = static_cast<int>(flags.get_int("fault-retries", 2));
  if (!mpc::parse_recovery_policy(flags.get_string("fault-policy", "retry"),
                                  &cfg.fault_policy)) {
    std::fprintf(stderr,
                 "error: unknown --fault-policy '%s' (retry|reassign|"
                 "degrade)\n",
                 flags.get_string("fault-policy", "retry").c_str());
    return 2;
  }
  const bool faults_active = cfg.fault_config().active();

  const auto n = static_cast<std::size_t>(flags.get_int("n", 4000));
  const std::string which = flags.get_string("pipeline", "all");
  std::vector<std::string> names;
  if (which == "all") {
    names = engine::registry().names();
  } else if (engine::registry().contains(which)) {
    names.push_back(which);
  } else {
    std::fprintf(stderr, "error: unknown pipeline '%s'; --list shows the "
                         "catalogue\n", which.c_str());
    return 1;
  }

  // The transport flags only mean something to the MPC model.  Asking for
  // a forked-worker backend (or a machine count) on a named non-MPC
  // pipeline is a misread of what the flag does, so it is an error rather
  // than a silent no-op; `--pipeline all` stays allowed (the MPC rows use
  // the backend, the rest ignore it).
  if (which != "all" &&
      (cfg.backend != mpc::Backend::Local || flags.has("machines"))) {
    const auto pipeline = engine::registry().make(which);
    if (pipeline->model() != "mpc") {
      std::fprintf(stderr,
                   "error: --backend/--machines apply to MPC pipelines only; "
                   "'%s' is model '%s'\n",
                   which.c_str(), pipeline->model().c_str());
      std::fputs(kUsage, stderr);
      return 2;
    }
  }

  const bench::JsonLog json = bench::JsonLog::from_flags(flags);
  engine::Workload workload;
  if (flags.has("input")) {
    // External instance: no certified optimum bracket, so quality-bound
    // enforcement below is skipped (quality vs the direct solve remains).
    const std::string input = flags.get_string("input", "");
    const bool is_kcb =
        input.size() >= 4 && input.compare(input.size() - 4, 4, ".kcb") == 0;
    try {
      if (is_kcb) {
        auto src = std::make_shared<dataset::KcbSource>(input);
        cfg.dim = src->dim();
        workload = engine::make_dataset_workload(std::move(src));
        if (cfg.with_direct_solve) {
          // The direct solve needs the full set in memory — the very thing
          // the out-of-core path avoids.  Radius stays exact (chunked
          // evaluation); only the quality column is dropped.
          std::printf("note: .kcb input streams out of core; direct solve "
                      "disabled (quality column omitted)\n");
          cfg.with_direct_solve = false;
        }
      } else {
        WeightedSet pts =
            dataset::read_csv_points(input, flags.has("weighted"));
        cfg.dim = pts.front().p.dim();
        workload.planted.buffer = kernels::PointBuffer(pts);
        workload.planted.points = std::move(pts);
        workload.planted.config.n = workload.planted.points.size();
        workload.order = shuffled_order(workload.n(), cfg.seed + 1);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    workload = engine::make_workload(n, cfg);
  }

  if (workload.from_dataset()) {
    std::printf("kcenter_cli: dataset %s: n=%zu k=%d z=%lld eps=%g dim=%d "
                "norm=%s seed=%llu (streamed out of core)\n\n",
                workload.source->describe().c_str(), workload.n(), cfg.k,
                static_cast<long long>(cfg.z), cfg.eps, cfg.dim,
                cfg.metric().name(),
                static_cast<unsigned long long>(cfg.seed));
  } else {
    std::printf("kcenter_cli: n=%zu k=%d z=%lld eps=%g dim=%d norm=%s "
                "seed=%llu (planted opt in [%.4f, %.4f])\n\n",
                workload.n(), cfg.k, static_cast<long long>(cfg.z), cfg.eps,
                cfg.dim, cfg.metric().name(),
                static_cast<unsigned long long>(cfg.seed),
                workload.planted.opt_lo, workload.planted.opt_hi);
  }

  std::vector<std::string> header{"pipeline", "model", "coreset", "words",
                                  "rounds", "comm", "radius", "quality",
                                  "build ms", "solve ms"};
  if (faults_active) header.push_back("status");
  Table table(header);
  bool any_grid_space = false;
  bool silent_violation = false;
  // Pipelines without a streaming path fall back to one shared in-memory
  // copy of the dataset, built lazily on first use; when the source is too
  // large to materialize they are skipped (with a note) instead of blowing
  // the memory budget the out-of-core path exists to keep.
  engine::Workload materialized;
  std::string materialize_error;
  std::vector<std::string> skipped;
  for (const auto& name : names) {
    const auto pipeline = engine::registry().make(name);
    const engine::Workload* run_on = &workload;
    if (workload.from_dataset() && !pipeline->supports_dataset()) {
      if (materialized.planted.points.empty() && materialize_error.empty()) {
        try {
          materialized = engine::materialize_workload(*workload.source);
        } catch (const std::exception& e) {
          materialize_error = e.what();
        }
      }
      if (!materialize_error.empty()) {
        skipped.push_back(name);
        continue;
      }
      run_on = &materialized;
    }
    const auto res = pipeline->execute(*run_on, cfg);
    const auto& r = res.report;
    const bool grid_space = r.get("grid_space") > 0;
    any_grid_space = any_grid_space || grid_space;
    std::vector<std::string> row{
        r.pipeline, r.model, fmt_count(static_cast<long long>(r.coreset_size)),
        fmt_count(static_cast<long long>(r.words)), std::to_string(r.rounds),
        fmt_count(static_cast<long long>(r.comm_words)),
        fmt(r.radius, 4) + (grid_space ? "*" : ""),
        cfg.with_direct_solve ? fmt(r.quality, 3) : "-", fmt(r.build_ms, 1),
        fmt(r.solve_ms, 1)};
    if (faults_active) {
      // Fault-injected MPC runs must either meet the registered quality
      // bound or carry the explicit degraded flag; a silent violation is a
      // bug and fails the invocation (the CI chaos leg relies on this).
      std::string status = "-";
      if (r.model == "mpc") {
        const bool degraded = r.get("degraded") > 0;
        const double opt_hi = workload.planted.opt_hi;
        const bool meets = opt_hi <= 0.0 ||
                           r.radius <= pipeline->quality_bound() * opt_hi +
                                           1e-9;
        status = degraded ? "DEGRADED" : (meets ? "VALID" : "BOUND-VIOLATED");
        if (!degraded && !meets) silent_violation = true;
      }
      row.push_back(status);
    }
    table.add_row(row);
    json.record("engine_pipeline", r.json_fields());
  }
  table.print();
  if (!skipped.empty()) {
    std::printf("\n  skipped (no streaming path, and the dataset cannot be "
                "materialized): ");
    for (std::size_t i = 0; i < skipped.size(); ++i)
      std::printf("%s%s", i ? ", " : "", skipped[i].c_str());
    std::printf("\n  reason: %s\n", materialize_error.c_str());
  }
  if (any_grid_space)
    std::printf("\n  * radius in discretized [Delta]^d coordinates (scale "
                "set by --delta); compare via the scale-free quality "
                "column, not across rows.\n");
  if (silent_violation) {
    std::fprintf(stderr,
                 "error: a fault-injected MPC run exceeded its quality bound "
                 "without reporting degradation\n");
    return 1;
  }
  return 0;
}
