#!/usr/bin/env sh
# Format (or check) every tracked C++ file with the repo .clang-format.
#
#   tools/format.sh           reformat in place
#   tools/format.sh --check   dry run, exit nonzero on any diff (CI mode)
#
# tests/lint_fixtures/ is excluded: those files exist to contain
# violations and their line numbers are pinned by golden expected.txt
# files, so no tool may rewrite them.
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not found on PATH" >&2
  echo "format.sh: install LLVM (apt install clang-format) or rely on the CI format leg" >&2
  exit 2
fi

MODE="-i"
if [ "${1:-}" = "--check" ]; then
  MODE="--dry-run -Werror"
fi

# shellcheck disable=SC2086
git ls-files '*.hpp' '*.cpp' ':!tests/lint_fixtures' | xargs -r clang-format $MODE
